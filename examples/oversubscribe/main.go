// Oversubscribe: the blocking LibASL configuration of Bench-6
// (Fig. 8h). When there are more runnable workers than CPUs, spinning
// waiters waste the co-scheduled threads' cycles, so LibASL swaps its
// substrate: the underlying FIFO lock becomes the futex-style barging
// mutex (the pthread stand-in) and standby competitors sleep in a
// back-off loop instead of polling hot — the paper's exact
// substitution, selected here with FactoryASLBlocking.
//
//	go run ./examples/oversubscribe
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	// Twice as many workers as processors: guaranteed CPU
	// over-subscription.
	workers := 2 * runtime.GOMAXPROCS(0) * 2
	bigs := workers / 2
	const (
		slo      = int64(3 * time.Millisecond)
		duration = 2 * time.Second
	)

	run := func(name string, factory locks.Factory, sloNs int64) stats.Summary {
		lock := factory()
		var stop atomic.Bool
		recs := make([]*stats.ClassedRecorder, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			class := core.Big
			if i >= bigs {
				class = core.Little
			}
			rec := stats.NewClassedRecorder()
			recs[i] = rec
			wg.Add(1)
			go func(class core.Class) {
				defer wg.Done()
				w := core.NewWorker(core.WorkerConfig{Class: class})
				for !stop.Load() {
					var lat int64
					if sloNs >= 0 {
						w.EpochStart(0)
						lock.Acquire(w)
						workload.Spin(500)
						lock.Release(w)
						lat = w.EpochEnd(0, sloNs)
					} else {
						s := w.Now()
						lock.Acquire(w)
						workload.Spin(500)
						lock.Release(w)
						lat = w.Now() - s
					}
					rec.Record(class, lat)
					workload.Spin(1500)
				}
			}(class)
		}
		time.Sleep(duration)
		stop.Store(true)
		wg.Wait()
		merged := stats.NewClassedRecorder()
		for _, r := range recs {
			merged.Merge(r)
		}
		return merged.Summarize(name, duration)
	}

	fmt.Printf("%d workers on %d procs (2x over-subscribed)\n", workers, runtime.GOMAXPROCS(0))
	rows := []stats.Summary{
		run("pthread", locks.FactoryPthread(), -1),
		run("libasl-blocking", locks.FactoryASLBlocking(), slo),
	}
	fmt.Print(stats.FormatSummaries(rows))
	fmt.Printf("SLO was %v; blocking LibASL should improve throughput while keeping little P99 under it\n",
		time.Duration(slo))
}
