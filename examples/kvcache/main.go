// KVCache: a Kyoto-Cabinet-style cache served by asymmetric worker
// pools under LibASL, with a live per-second report of throughput and
// per-class P99 — the pattern of the paper's database evaluation
// (§4.2) reduced to an example. The slot-level locks and the method
// lock are all ASL mutexes, and every operation is one epoch.
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dbbench"
	"repro/internal/dbs/kyoto"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		slo      = int64(300 * time.Microsecond)
		seconds  = 3
		epochID  = 1
		bigPool  = 4
		litePool = 4
	)
	db := kyoto.New(locks.FactoryASL(), dbbench.DefaultPadder(), kyoto.Config{})
	mix := workload.YCSBA()

	var stop atomic.Bool
	recs := make([]*stats.ClassedRecorder, bigPool+litePool)
	var epoch atomic.Int64 // current reporting window
	var wg sync.WaitGroup
	for i := 0; i < bigPool+litePool; i++ {
		class := core.Big
		if i >= bigPool {
			class = core.Little
		}
		rec := stats.NewClassedRecorder()
		recs[i] = rec
		wg.Add(1)
		go func(id int, class core.Class) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewXoshiro256(uint64(id)*977 + 3)
			for !stop.Load() {
				op := mix.Draw(rng.Uint64())
				w.EpochStart(epochID)
				db.Do(w, rng, op)
				lat := w.EpochEnd(epochID, slo)
				rec.Record(class, lat)
			}
		}(i, class)
	}

	for s := 1; s <= seconds; s++ {
		time.Sleep(time.Second)
		epoch.Add(1)
		merged := stats.NewClassedRecorder()
		for _, r := range recs {
			merged.Merge(r)
		}
		sum := merged.Summarize("kvcache", time.Duration(s)*time.Second)
		fmt.Printf("[t=%ds] %9.0f ops/s | big P99 %9v | little P99 %9v | SLO %v | keys %d\n",
			s, sum.Throughput, time.Duration(sum.BigP99), time.Duration(sum.LittleP99),
			time.Duration(slo), db.Len())
	}
	stop.Store(true)
	wg.Wait()
}
