// Quickstart: the minimal LibASL usage pattern.
//
// Classify your workers (Big = latency-tolerant fast path, Little =
// the workers you allow to be reordered), annotate the latency-
// critical region as an epoch with an SLO, and use ASLMutex where you
// would use a sync.Mutex. Big-class workers take the immediate FIFO
// path; little-class workers become standby competitors whose reorder
// window is tuned automatically so their P99 epoch latency stays at
// the SLO.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/stats"
)

func main() {
	mu := locks.NewASLMutexDefault()
	var counter int64

	const (
		epochID = 0
		slo     = int64(200 * time.Microsecond)
		workers = 4
		iters   = 5000
	)

	hist := make([]*stats.Histogram, 2*workers)
	var wg sync.WaitGroup
	for i := 0; i < 2*workers; i++ {
		class := core.Big
		if i >= workers {
			class = core.Little
		}
		h := stats.NewHistogram()
		hist[i] = h
		wg.Add(1)
		go func(class core.Class) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: class})
			for j := 0; j < iters; j++ {
				// The epoch marks the latency-critical region (paper
				// Fig. 6); it may contain any number of lock
				// acquisitions.
				w.EpochStart(epochID)
				mu.Lock(w)
				counter++
				mu.Unlock(w)
				lat := w.EpochEnd(epochID, slo)
				h.Record(lat)
			}
		}(class)
	}
	wg.Wait()

	big, little := stats.NewHistogram(), stats.NewHistogram()
	for i, h := range hist {
		if i < workers {
			big.Merge(h)
		} else {
			little.Merge(h)
		}
	}
	fmt.Printf("counter        = %d (expected %d)\n", counter, 2*workers*iters)
	fmt.Printf("big    P99     = %v\n", time.Duration(big.P99()))
	fmt.Printf("little P99     = %v (SLO %v)\n", time.Duration(little.P99()), time.Duration(slo))
}
