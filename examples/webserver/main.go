// Webserver: the paper's Fig. 6 usage model on a request-handling
// service. Each request handler is one epoch with a coarse-grained
// latency SLO; the handler takes several different locks on different
// code paths, none of which need to know about the SLO — LibASL
// transparently budgets the reorder windows from the epoch feedback.
//
// The "server" here is an in-process request loop (the repository is
// offline); swap serveOne for an http.Handler body and the pattern is
// unchanged.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// service is a tiny session store with two locks, mirroring the
// two-lock request handler of the paper's Fig. 6.
type service struct {
	sessions *locks.ASLMutex // lock_1: the session table
	audit    *locks.ASLMutex // lock_2: the audit log
	table    map[uint64]uint64
	log      []uint64
}

func newService() *service {
	return &service{
		sessions: locks.NewASLMutexDefault(),
		audit:    locks.NewASLMutexDefault(),
		table:    make(map[uint64]uint64),
	}
}

// serveOne handles one request: a read-modify-write on the session
// table and, on one code path, an audit append (paper Fig. 6's
// if/else over two critical sections).
func (s *service) serveOne(w *core.Worker, rng prng.Source) {
	id := prng.Uint64n(rng, 4096)
	s.sessions.Lock(w)
	s.table[id]++
	workload.Spin(200)
	s.sessions.Unlock(w)

	if id%4 == 0 {
		s.audit.Lock(w)
		s.log = append(s.log, id)
		workload.Spin(100)
		s.audit.Unlock(w)
	}
}

func main() {
	const (
		requestEpoch = 5 // the epoch id from the paper's Fig. 6
		slo          = int64(500 * time.Microsecond)
		duration     = 2 * time.Second
	)
	svc := newService()
	var served atomic.Int64
	var stop atomic.Bool
	recs := make([]*stats.ClassedRecorder, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		class := core.Big
		if i >= 4 {
			class = core.Little
		}
		rec := stats.NewClassedRecorder()
		recs[i] = rec
		wg.Add(1)
		go func(id int, class core.Class) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewXoshiro256(uint64(id) + 1)
			for !stop.Load() {
				w.EpochStart(requestEpoch)
				svc.serveOne(w, rng)
				lat := w.EpochEnd(requestEpoch, slo)
				rec.Record(class, lat)
				served.Add(1)
			}
		}(i, class)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	merged := stats.NewClassedRecorder()
	for _, r := range recs {
		merged.Merge(r)
	}
	s := merged.Summarize("webserver", duration)
	fmt.Printf("served %d requests (%.0f req/s)\n", served.Load(), s.Throughput)
	fmt.Printf("big P99 %v | little P99 %v | SLO %v\n",
		time.Duration(s.BigP99), time.Duration(s.LittleP99), time.Duration(slo))
}
