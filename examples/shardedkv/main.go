// ShardedKV walkthrough: the same sharded KV service run four ways —
// with plain sync.Mutex shard locks, with ASL shard locks, with the
// flat-combining pipeline (AsyncStore) over ASL locks, and with
// skew-adaptive resharding on top of the pipeline — under an
// asymmetric big/little worker pool on a zipfian-skewed YCSB-A mix,
// then served over TCP (kvserver/kvclient) with per-request SLO
// classes standing in for the per-goroutine classing.
//
// The comparison shows the paper's trade on a service-shaped system:
// the class-oblivious mutex serves everyone alike and lets slow
// little-core holders inflate the big-core tail, while the ASL shard
// locks route big-core competitors onto the FIFO fast path and keep
// little-core competitors standing by within their epoch's reorder
// window, so big-core P99 collapses and little-core P99 tracks the
// SLO instead of the queue depth.
//
//	go run ./examples/shardedkv
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kvclient"
	"repro/internal/kvserver"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/shardedkv"
	"repro/internal/stats"
	"repro/internal/workload"
)

const (
	numShards = 8
	keyspace  = 1 << 14
	slo       = int64(500 * time.Microsecond)
	duration  = 2 * time.Second
	epochID   = 1
)

// runService serves the mix for the configured duration over a fresh
// store built with the given shard-lock factory. With pipeline set,
// operations run through the flat-combining AsyncStore front end:
// callers enqueue onto per-shard rings and whoever wins the shard
// lock's try — big cores preferentially — executes the whole queue
// under one lock take. With reshard set, a skew detector watches the
// per-shard traffic share and lock-wait fraction and splits sustained
// hot shards mid-run (the zipf head concentrates on a couple of
// shards; fission spreads the convoy).
func runService(name string, factory locks.Factory, useSLO, pipeline, reshard bool, threads, bigsN int, cal workload.Calibration) stats.Summary {
	shim := workload.DefaultShim()
	csUnits := cal.Units(2 * time.Microsecond)
	cfg := shardedkv.Config{
		Shards:  numShards,
		NewLock: factory,
		// Emulate the AMP: little-class holders keep the shard lock
		// CSFactor (3.75x) longer, as on the paper's M1 testbed.
		CSPad: func(w *core.Worker) { workload.Spin(shim.CSUnits(csUnits, w.Class())) },
	}
	if reshard {
		cfg.Reshard = &shardedkv.ReshardConfig{
			SkewFactor: 1.2,
			Window:     50 * time.Millisecond,
			MaxShards:  4 * numShards,
		}
	}
	st := shardedkv.New(cfg)
	// Both front ends satisfy the one shardedkv.KV surface; the service
	// loop never needs to know which one it is driving.
	var api shardedkv.KV = st
	var async *shardedkv.AsyncStore
	if pipeline {
		async = shardedkv.NewAsync(st, shardedkv.AsyncConfig{MaxBatch: 16})
		api = async
	}
	loader := core.NewWorker(core.WorkerConfig{Class: core.Big})
	for k := uint64(0); k < keyspace; k += 2 {
		st.Put(loader, k, []byte("seed"))
	}

	mix := workload.YCSBA()
	keygen := workload.NewZipf(keyspace, 0.99)
	var stop atomic.Bool
	recs := make([]*stats.ClassedRecorder, threads)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		class := core.Big
		if i >= bigsN {
			class = core.Little
		}
		rec := stats.NewClassedRecorder()
		recs[i] = rec
		wg.Add(1)
		go func(id int, class core.Class) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewXoshiro256(uint64(id)*977 + 3)
			val := []byte("value-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
			for !stop.Load() {
				k := keygen.Draw(rng)
				var lat int64
				if useSLO {
					w.EpochStart(epochID)
					if mix.Draw(rng.Uint64()) == workload.OpGet {
						api.Get(w, k)
					} else {
						api.Put(w, k, val)
					}
					lat = w.EpochEnd(epochID, slo)
				} else {
					s := w.Now()
					if mix.Draw(rng.Uint64()) == workload.OpGet {
						api.Get(w, k)
					} else {
						api.Put(w, k, val)
					}
					lat = w.Now() - s
				}
				rec.Record(class, lat)
			}
		}(i, class)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	merged := stats.NewClassedRecorder()
	for _, r := range recs {
		merged.Merge(r)
	}
	// Batched epilogue: one MultiGet over 64 zipfian keys takes each
	// touched shard's lock once — at most numShards acquisitions for
	// 64 point-reads.
	bw := core.NewWorker(core.WorkerConfig{Class: core.Big})
	if async != nil {
		// Drain and retire the pipeline: Flush completes everything
		// enqueued so far, Close seals the front end. The wrapped
		// Store keeps serving the epilogues below.
		async.Flush(bw)
		async.Close(bw)
		c := async.AggregateCombineStats()
		fmt.Printf("  %-12s combining: %d ops over %d lock takes = %.2f ops/take; %d handoffs, queue highwater %d, big/little takes %d/%d\n",
			name+":", c.Combined, c.LockTakes, c.OpsPerLockTake(),
			c.Handoffs, c.DepthHW, c.BigTakes, c.LittleTakes)
	}
	if reshard {
		st.StopReshard()
		rs := st.ReshardStats()
		fmt.Printf("  %-12s reshard: %d splits over %d events, %d -> %d shards (map epoch %d)\n",
			name+":", rs.Splits, rs.Events, numShards, rs.Shards, rs.Epoch)
	}
	rng := prng.NewXoshiro256(12345)
	batchKeys := make([]uint64, 64)
	for i := range batchKeys {
		batchKeys[i] = keygen.Draw(rng)
	}
	before := st.AggregateStats().BatchLocks
	_, oks := st.MultiGet(bw, batchKeys)
	hits := 0
	for _, ok := range oks {
		if ok {
			hits++
		}
	}
	takes := st.AggregateStats().BatchLocks - before

	// Ordered-scan epilogue: one Range over a 4k-key window locks each
	// shard once, then merges the per-shard slices into ascending key
	// order — the data-dependent long critical section the reorder
	// window exists to absorb. MultiRange pushes two ranges through a
	// single pass over the shards.
	scanLo, scanHi := uint64(keyspace/4), uint64(keyspace/4+4095)
	scanned, ordered := 0, true
	var last uint64
	st.Range(bw, scanLo, scanHi, func(k uint64, _ []byte) bool {
		if scanned > 0 && k <= last {
			ordered = false
		}
		last = k
		scanned++
		return true
	})
	pair := st.MultiRange(bw, []shardedkv.RangeReq{
		{Lo: 0, Hi: 1023},
		{Lo: keyspace - 1024, Hi: keyspace - 1},
	})
	agg := st.AggregateStats()
	fmt.Printf("  %-12s %d shards served %d ops; MultiGet(64 keys) hit %d keys with %d lock takes\n",
		name+":", st.NumShards(), agg.Ops(), hits, takes)
	fmt.Printf("  %-12s Range[%d,%d] yielded %d keys (ordered=%v); MultiRange batch found %d+%d keys; %d per-shard scans\n",
		"", scanLo, scanHi, scanned, ordered, len(pair[0]), len(pair[1]), agg.Scans)
	return merged.Summarize(name, duration)
}

func main() {
	threads := 4
	bigsN := 2
	cal := workload.Calibrate()
	fmt.Printf("shardedkv walkthrough: %d shards, %d workers (%d big / %d little), GOMAXPROCS=%d\n",
		numShards, threads, bigsN, threads-bigsN, runtime.GOMAXPROCS(0))
	fmt.Printf("zipfian YCSB-A over %d keys, little SLO %v\n\n", keyspace, time.Duration(slo))

	// The blocking ASL flavour suits hosts where workers outnumber
	// cores (the common service deployment); on a big-iron host with
	// spare cores, swap in locks.FactoryASL() for the spinning stack.
	aslFactory := locks.FactoryASLBlocking()
	if runtime.GOMAXPROCS(0) >= 2*threads {
		aslFactory = locks.FactoryASL()
	}

	rows := []stats.Summary{
		runService("sync-mutex", locks.FactorySyncMutex(), false, false, false, threads, bigsN, cal),
		runService("libasl", aslFactory, true, false, false, threads, bigsN, cal),
		runService("pipe-asl", aslFactory, true, true, false, threads, bigsN, cal),
		runService("rs-pipe-asl", aslFactory, true, true, true, threads, bigsN, cal),
	}
	fmt.Println()
	fmt.Print(stats.FormatSummaries(rows))

	// Network epilogue: the same store served over TCP. Every request
	// carries an SLO class byte, so one connection mixes interactive
	// (big-class at the shard lock, admission bypass) and bulk
	// (little-class, bounded per-shard in-flight) operations — the
	// per-goroutine classing above becomes per-request classing here.
	fmt.Println("\nnetwork front end (kvserver + kvclient):")
	netStore := shardedkv.New(shardedkv.Config{Shards: numShards, NewLock: aslFactory})
	srv, err := kvserver.New(kvserver.Config{
		Store:          netStore,
		SLOInteractive: 100 * time.Microsecond,
		SLOBulk:        2 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	if err = srv.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	cl, err := kvclient.Dial(srv.Addr().String())
	if err != nil {
		panic(err)
	}
	cl.Put(kvserver.ClassInteractive, 1, []byte("interactive write"))
	cl.Put(kvserver.ClassBulk, 2, []byte("bulk write"))
	if v, ok, _ := cl.Get(kvserver.ClassInteractive, 2); ok {
		fmt.Printf("  interactive read of a bulk write over TCP: %q\n", v)
	}
	if sst, err := cl.Stats(); err == nil {
		fmt.Printf("  server saw %d interactive / %d bulk ops across %d shards\n",
			sst.Interactive.Ops, sst.Bulk.Ops, sst.Shards)
	}
	cl.Close()
	srv.Close()

	fmt.Printf("\nreading: with spare cores and emulated asymmetry, libasl holds big\n" +
		"P99 under sync-mutex's while little P99 stays bounded by the SLO —\n" +
		"the paper's Fig. 4 trade, realised per shard instead of per global\n" +
		"lock. pipe-asl pushes the same trade further: little cores enqueue\n" +
		"and big cores combine, so the hot shard serves whole queues per\n" +
		"lock take (ops/take above 1) instead of one handoff per op.\n" +
		"rs-pipe-asl adds skew-adaptive resharding: a shard that sustains a\n" +
		"convoy despite combining (deep queues, high lock-wait fraction)\n" +
		"splits in place — zero splits here simply means combining absorbed\n" +
		"the skew on this host. On a small or heavily loaded host the\n" +
		"wall-clock numbers are noisy; use cmd/kvbench -pipeline -reshard\n" +
		"for longer, repeated sweeps.\n")
}
