package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleAIMD shows the paper's window update (Algorithm 2): halve on
// an SLO violation, grow linearly by (100-PCT)% of the window while
// compliant.
func ExampleAIMD() {
	a := core.NewAIMD(core.AIMDConfig{InitWindow: 1 << 20, Percentile: 99})

	before := a.Window()
	a.Observe(2_000_000, 1_000_000) // latency 2ms > SLO 1ms: violation
	afterViolation := a.Window()
	a.Observe(500_000, 1_000_000) // compliant: grow by one unit
	afterCompliance := a.Window()

	fmt.Println(afterViolation == before/2, afterCompliance > afterViolation)
	// Output: true true
}

// ExampleWorker_nested shows nested epochs: the innermost epoch's
// window governs lock acquisition (§3.4).
func ExampleWorker_nested() {
	w := core.NewWorker(core.WorkerConfig{Class: core.Little})

	w.EpochStart(1) // outer: whole request
	w.EpochStart(2) // inner: one latency-critical step
	fmt.Println(w.CurrentEpoch())
	w.EpochEnd(2, 50_000)
	fmt.Println(w.CurrentEpoch())
	w.EpochEnd(1, 1_000_000)
	fmt.Println(w.InEpoch())
	// Output:
	// 2
	// 1
	// false
}

// ExampleSLORange builds the x-axis of a "variant SLOs" sweep.
func ExampleSLORange() {
	fmt.Println(core.SLORange(0, 100, 5))
	// Output: [0 25 50 75 100]
}
