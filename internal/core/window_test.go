package core

import (
	"testing"
	"testing/quick"
)

func TestAIMDDefaults(t *testing.T) {
	a := NewAIMD(AIMDConfig{})
	if a.Window() != DefaultInitWindow {
		t.Fatalf("initial window = %d, want %d", a.Window(), DefaultInitWindow)
	}
	if a.Unit() != DefaultInitWindow/100 {
		t.Fatalf("initial unit = %d, want %d", a.Unit(), DefaultInitWindow/100)
	}
}

func TestAIMDViolationHalves(t *testing.T) {
	a := NewAIMD(AIMDConfig{InitWindow: 1000})
	a.Observe(2000, 1000) // latency above SLO
	if a.Window() != 500 {
		t.Fatalf("window after violation = %d, want 500", a.Window())
	}
	// unit = 500 * 1/100 = 5, but floored at MinUnit.
	if a.Unit() != DefaultMinUnit {
		t.Fatalf("unit = %d, want MinUnit %d", a.Unit(), DefaultMinUnit)
	}
}

func TestAIMDComplianceGrowsLinearly(t *testing.T) {
	a := NewAIMD(AIMDConfig{InitWindow: 100_000})
	w0, u := a.Window(), a.Unit()
	for i := 1; i <= 10; i++ {
		a.Observe(10, 1_000_000)
		if got, want := a.Window(), w0+int64(i)*u; got != want {
			t.Fatalf("after %d compliant epochs window = %d, want %d", i, got, want)
		}
	}
}

func TestAIMDEquality(t *testing.T) {
	// latency == SLO is compliant (paper: "latency > SLO" triggers the
	// reduction).
	a := NewAIMD(AIMDConfig{InitWindow: 1000})
	a.Observe(1000, 1000)
	if a.Window() <= 1000 {
		t.Fatalf("latency == SLO must grow the window, got %d", a.Window())
	}
}

func TestAIMDWindowCapped(t *testing.T) {
	a := NewAIMD(AIMDConfig{InitWindow: 100, MaxWindow: 1000, MinUnit: 600})
	for i := 0; i < 100; i++ {
		a.Observe(0, 1<<40)
	}
	if a.Window() != 1000 {
		t.Fatalf("window = %d, want capped at 1000", a.Window())
	}
}

func TestAIMDRecoversFromZero(t *testing.T) {
	// Algorithm 2 as printed freezes at window 0 (unit truncates to 0);
	// the MinUnit floor must allow recovery once the SLO is met again.
	a := NewAIMD(AIMDConfig{InitWindow: 64})
	for i := 0; i < 30; i++ {
		a.Observe(1<<40, 1) // hopeless SLO: window collapses to 0
	}
	if a.Window() != 0 {
		t.Fatalf("window should be 0 after sustained violations, got %d", a.Window())
	}
	a.Observe(0, 1<<40) // compliant again
	if a.Window() <= 0 {
		t.Fatal("window must recover from 0 via the MinUnit floor")
	}
}

func TestAIMDPercentileScalesUnit(t *testing.T) {
	// With PCT=90, unit = 10% of the reduced window, so regrowth takes
	// ~10 compliant epochs — the paper's 100/(100-PCT) bound.
	a := NewAIMD(AIMDConfig{InitWindow: 1 << 20, Percentile: 90})
	a.Observe(2, 1) // violation: window = 1<<19, unit = 10% of that
	w, u := a.Window(), a.Unit()
	if u != w/10 {
		t.Fatalf("unit = %d, want %d (10%% of window)", u, w/10)
	}
	for i := 0; i < 10; i++ {
		a.Observe(0, 1<<40)
	}
	if got, want := a.Window(), w+10*u; got != want {
		t.Fatalf("after 10 compliant epochs window = %d, want %d", got, want)
	}
}

func TestAIMDReset(t *testing.T) {
	a := NewAIMD(AIMDConfig{InitWindow: 5000})
	a.Observe(10, 1<<40)
	a.Reset()
	if a.Window() != 5000 {
		t.Fatalf("reset window = %d, want 5000", a.Window())
	}
}

// TestAIMDInvariants property-checks the controller: the window never
// exceeds MaxWindow, never goes negative, violations never grow it,
// and compliance never shrinks it.
func TestAIMDInvariants(t *testing.T) {
	f := func(lat, slo uint32, steps uint8) bool {
		a := NewAIMD(AIMDConfig{InitWindow: 10_000, MaxWindow: 1_000_000})
		for i := 0; i < int(steps%64)+1; i++ {
			before := a.Window()
			a.Observe(int64(lat), int64(slo))
			after := a.Window()
			if after < 0 || after > 1_000_000 {
				return false
			}
			if int64(lat) > int64(slo) && after > before {
				return false
			}
			if int64(lat) <= int64(slo) && after < before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaticController(t *testing.T) {
	s := &Static{W: 777}
	s.Observe(1<<40, 1)
	if s.Window() != 777 {
		t.Fatal("static controller must never change")
	}
	s.Reset()
	if s.Window() != 777 {
		t.Fatal("static controller reset must be a no-op")
	}
}

func TestAdditiveController(t *testing.T) {
	a := NewAdditive(AIMDConfig{InitWindow: 1000, MinUnit: 100})
	w0 := a.Window()
	a.Observe(0, 1<<40)
	grown := a.Window()
	if grown <= w0 {
		t.Fatal("additive controller must grow on compliance")
	}
	a.Observe(1<<40, 1)
	if a.Window() != w0 {
		t.Fatalf("additive decrease should step back by one unit: %d", a.Window())
	}
	// Never negative.
	for i := 0; i < 100; i++ {
		a.Observe(1<<40, 1)
	}
	if a.Window() < 0 {
		t.Fatal("additive controller went negative")
	}
}

func TestMultiplicativeController(t *testing.T) {
	m := NewMultiplicative(AIMDConfig{InitWindow: 1000, MaxWindow: 1 << 20})
	m.Observe(0, 1<<40)
	if m.Window() != 2000 {
		t.Fatalf("multiplicative growth = %d, want 2000", m.Window())
	}
	m.Observe(1<<40, 1)
	if m.Window() != 1000 {
		t.Fatalf("multiplicative decrease = %d, want 1000", m.Window())
	}
	// Recovers from zero.
	for i := 0; i < 30; i++ {
		m.Observe(1<<40, 1)
	}
	m.Observe(0, 1<<40)
	if m.Window() <= 0 {
		t.Fatal("multiplicative controller must recover from 0")
	}
	// Capped.
	for i := 0; i < 100; i++ {
		m.Observe(0, 1<<40)
	}
	if m.Window() != 1<<20 {
		t.Fatalf("multiplicative cap = %d, want %d", m.Window(), 1<<20)
	}
}
