package core

import (
	"testing"
)

// fakeClock is a manually advanced clock for deterministic tests.
type fakeClock struct{ now int64 }

func (f *fakeClock) clock() Clock { return func() int64 { return f.now } }

func newTestWorker(c Class, fc *fakeClock) *Worker {
	return NewWorker(WorkerConfig{Class: c, Clock: fc.clock()})
}

func TestWorkerEpochLatency(t *testing.T) {
	fc := &fakeClock{}
	w := newTestWorker(Little, fc)
	w.EpochStart(3)
	fc.now += 12345
	if lat := w.EpochEnd(3, 1<<40); lat != 12345 {
		t.Fatalf("latency = %d, want 12345", lat)
	}
}

func TestWorkerBigSkipsFeedback(t *testing.T) {
	fc := &fakeClock{}
	w := newTestWorker(Big, fc)
	w0 := w.EpochWindow(0)
	w.EpochStart(0)
	fc.now += 1 << 30 // enormous latency, tiny SLO
	w.EpochEnd(0, 1)
	if w.EpochWindow(0) != w0 {
		t.Fatal("big-core workers must not adjust the window (Algorithm 2 line 21)")
	}
}

func TestWorkerLittleFeedback(t *testing.T) {
	fc := &fakeClock{}
	w := newTestWorker(Little, fc)
	w0 := w.EpochWindow(5)
	w.EpochStart(5)
	fc.now += 1 << 30
	w.EpochEnd(5, 1) // violation
	if got := w.EpochWindow(5); got != w0/2 {
		t.Fatalf("window after violation = %d, want %d", got, w0/2)
	}
	w.EpochStart(5)
	w.EpochEnd(5, 1<<40) // compliant
	if got := w.EpochWindow(5); got <= w0/2 {
		t.Fatalf("window should grow after compliance, got %d", got)
	}
}

func TestWorkerNestedEpochs(t *testing.T) {
	fc := &fakeClock{}
	w := newTestWorker(Little, fc)
	if w.InEpoch() {
		t.Fatal("fresh worker must not be in an epoch")
	}
	w.EpochStart(1)
	if w.CurrentEpoch() != 1 {
		t.Fatalf("current epoch = %d, want 1", w.CurrentEpoch())
	}
	w.EpochStart(2) // nested: inner epoch takes priority (§3.4)
	if w.CurrentEpoch() != 2 {
		t.Fatalf("inner epoch = %d, want 2", w.CurrentEpoch())
	}
	fc.now += 100
	w.EpochEnd(2, 1<<40)
	if w.CurrentEpoch() != 1 {
		t.Fatalf("after inner end, epoch = %d, want 1 (popped from stack)", w.CurrentEpoch())
	}
	w.EpochEnd(1, 1<<40)
	if w.InEpoch() {
		t.Fatal("after outer end, worker must be outside any epoch")
	}
}

func TestWorkerReorderWindowSelection(t *testing.T) {
	fc := &fakeClock{}
	w := newTestWorker(Little, fc)
	// Outside any epoch: the default maximum window applies so the
	// thread eventually acquires (Algorithm 3 line 5).
	if got := w.ReorderWindow(); got != DefaultMaxWindow {
		t.Fatalf("window outside epoch = %d, want max %d", got, DefaultMaxWindow)
	}
	w.EpochStart(7)
	if got := w.ReorderWindow(); got != w.EpochWindow(7) {
		t.Fatalf("window inside epoch = %d, want epoch 7's %d", got, w.EpochWindow(7))
	}
	// Nested epochs: the inner window governs.
	w.EpochStart(8)
	w.EpochEnd(8, 1) // hammer epoch 8's window down
	w.EpochStart(8)
	if got := w.ReorderWindow(); got != w.EpochWindow(8) {
		t.Fatalf("inner window = %d, want epoch 8's %d", got, w.EpochWindow(8))
	}
}

func TestWorkerEpochIDOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range epoch id")
		}
	}()
	w := NewWorker(WorkerConfig{Class: Little, MaxEpochs: 4})
	w.EpochStart(4)
}

func TestWorkerSetClass(t *testing.T) {
	fc := &fakeClock{}
	w := newTestWorker(Big, fc)
	w.SetClass(Little)
	if w.Class() != Little {
		t.Fatal("SetClass did not take effect")
	}
	// After migration to a little core, feedback applies.
	w.EpochStart(0)
	fc.now += 1 << 30
	w0 := w.EpochWindow(0)
	w.EpochEnd(0, 1)
	if w.EpochWindow(0) >= w0 {
		t.Fatal("migrated worker must run feedback")
	}
}

func TestWorkerCustomController(t *testing.T) {
	fc := &fakeClock{}
	w := NewWorker(WorkerConfig{
		Class:         Little,
		Clock:         fc.clock(),
		NewController: func() Controller { return &Static{W: 4242} },
	})
	w.EpochStart(0)
	fc.now += 1 << 30
	w.EpochEnd(0, 1)
	if got := w.EpochWindow(0); got != 4242 {
		t.Fatalf("custom controller window = %d, want 4242", got)
	}
}

func TestWorkerResetEpoch(t *testing.T) {
	fc := &fakeClock{}
	w := newTestWorker(Little, fc)
	init := w.EpochWindow(0)
	w.EpochStart(0)
	fc.now += 1 << 30
	w.EpochEnd(0, 1)
	w.ResetEpoch(0)
	if got := w.EpochWindow(0); got != init {
		t.Fatalf("reset window = %d, want %d", got, init)
	}
}

func TestWorkerDistinctEpochWindows(t *testing.T) {
	// Each epoch id keeps its own controller ("LibASL keeps individual
	// reorder windows for each epoch").
	fc := &fakeClock{}
	w := newTestWorker(Little, fc)
	w.EpochStart(1)
	fc.now += 1 << 30
	w.EpochEnd(1, 1) // violate epoch 1 only
	if w.EpochWindow(1) >= w.EpochWindow(2) {
		t.Fatal("epoch 1's violation must not affect epoch 2's window")
	}
}

func TestSLORange(t *testing.T) {
	got := SLORange(0, 100, 11)
	if len(got) != 11 || got[0] != 0 || got[10] != 100 || got[5] != 50 {
		t.Fatalf("SLORange = %v", got)
	}
	if one := SLORange(5, 5, 3); len(one) != 1 || one[0] != 5 {
		t.Fatalf("degenerate range = %v", one)
	}
}

func TestProfileSLOs(t *testing.T) {
	calls := []int64{}
	pts := ProfileSLOs([]int64{10, 20}, func(slo int64) ProfileResult {
		calls = append(calls, slo)
		return ProfileResult{Throughput: float64(slo) * 2, LittleP99: slo}
	})
	if len(calls) != 2 || calls[0] != 10 || calls[1] != 20 {
		t.Fatalf("run calls = %v", calls)
	}
	if pts[1].Throughput != 40 || pts[1].SLO != 20 || pts[1].LittleP99 != 20 {
		t.Fatalf("profile point = %+v", pts[1])
	}
	out := FormatProfile(pts)
	if out == "" {
		t.Fatal("FormatProfile returned empty")
	}
}
