// Package core implements the engine-independent parts of LibASL
// (PPoPP 2022): the AIMD reorder-window controller driven by latency
// SLOs (paper Algorithm 2), the epoch registry with nesting support,
// the worker/core-class model, and the SLO profiling helper described
// in §3.1 of the paper. Both the real lock library (internal/locks) and
// the discrete-event simulator (internal/simlock) build on this package,
// so the feedback behaviour being evaluated is literally the same code
// in both engines.
package core

// All durations in this package are int64 nanoseconds, compatible with
// time.Duration, matching the paper's u64-nanosecond interfaces.

// Default tuning constants. The paper gives the window and unit "a
// default size" that quickly adapts; it uses PCT=99 and a 100 ms
// maximum reorder window in the evaluation.
const (
	// DefaultPercentile is the SLO percentile (P99 in the paper).
	DefaultPercentile = 99
	// DefaultInitWindow is the initial reorder window before any
	// feedback has been observed.
	DefaultInitWindow = int64(10_000) // 10 µs
	// DefaultMaxWindow bounds the reorder window so the reorderable
	// lock stays starvation-free; it is also the window used by
	// LibASL-MAX and by threads outside any epoch.
	DefaultMaxWindow = int64(100_000_000) // 100 ms
	// DefaultMinUnit keeps the additive-increase step positive even
	// after deep multiplicative decreases. Algorithm 2 as printed sets
	// unit = window*(100-PCT)/100, which truncates to zero for windows
	// under 100 ns and would freeze the controller at window 0 forever;
	// a small floor restores the recovery behaviour shown in Fig. 8d.
	DefaultMinUnit = int64(64)
)

// Controller adjusts a reorder window from per-epoch latency feedback.
// Implementations must be cheap: Observe runs on every epoch_end.
type Controller interface {
	// Window returns the current reorder window in nanoseconds.
	Window() int64
	// Observe feeds one epoch completion: the measured latency and the
	// SLO that applied to it.
	Observe(latencyNs, sloNs int64)
	// Reset restores the initial state.
	Reset()
}

// AIMDConfig parameterises the paper's controller.
type AIMDConfig struct {
	Percentile int   // SLO percentile (1..99); 0 means DefaultPercentile
	InitWindow int64 // 0 means DefaultInitWindow
	MaxWindow  int64 // 0 means DefaultMaxWindow
	MinUnit    int64 // 0 means DefaultMinUnit
}

func (c AIMDConfig) withDefaults() AIMDConfig {
	if c.Percentile <= 0 || c.Percentile > 99 {
		c.Percentile = DefaultPercentile
	}
	if c.InitWindow <= 0 {
		c.InitWindow = DefaultInitWindow
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = DefaultMaxWindow
	}
	if c.MinUnit <= 0 {
		c.MinUnit = DefaultMinUnit
	}
	return c
}

// AIMD is the paper's controller (Algorithm 2, lines 19–30): on an SLO
// violation the window halves and the additive unit is recomputed as
// (100-PCT)% of the reduced window; otherwise the window grows by one
// unit. With PCT = 99 the window regrows to its pre-violation size after
// 100 compliant epochs, so the probability of a violating epoch is held
// near 1-PCT/100 — the TCP-congestion-control analogy made in §3.3.
type AIMD struct {
	cfg    AIMDConfig
	window int64
	unit   int64
}

// NewAIMD returns the paper's controller with the given configuration.
func NewAIMD(cfg AIMDConfig) *AIMD {
	a := &AIMD{cfg: cfg.withDefaults()}
	a.Reset()
	return a
}

// Window returns the current reorder window.
func (a *AIMD) Window() int64 { return a.window }

// Unit returns the current additive-increase step (exposed for tests).
func (a *AIMD) Unit() int64 { return a.unit }

// Observe applies the AIMD update for one completed epoch.
func (a *AIMD) Observe(latencyNs, sloNs int64) {
	if latencyNs > sloNs {
		a.window >>= 1
		a.unit = a.window * int64(100-a.cfg.Percentile) / 100
		if a.unit < a.cfg.MinUnit {
			a.unit = a.cfg.MinUnit
		}
	} else {
		a.window += a.unit
		if a.window > a.cfg.MaxWindow {
			a.window = a.cfg.MaxWindow
		}
	}
}

// Reset restores the initial window and unit.
func (a *AIMD) Reset() {
	a.window = a.cfg.InitWindow
	a.unit = a.window * int64(100-a.cfg.Percentile) / 100
	if a.unit < a.cfg.MinUnit {
		a.unit = a.cfg.MinUnit
	}
}

// Static is a controller with a fixed window; it implements the
// LibASL-OPT configuration of Figs. 8a and 8c (a hand-chosen static
// window, no runtime adjustment).
type Static struct{ W int64 }

// Window returns the fixed window.
func (s *Static) Window() int64 { return s.W }

// Observe is a no-op.
func (s *Static) Observe(latencyNs, sloNs int64) {}

// Reset is a no-op.
func (s *Static) Reset() {}

// Additive is an ablation controller: linear growth and linear decrease
// by the same unit. It reacts too slowly to bursts (see the ablation
// benchmarks) which is why the paper pairs linear growth with
// exponential reduction.
type Additive struct {
	cfg    AIMDConfig
	window int64
	unit   int64
}

// NewAdditive returns the additive-only ablation controller.
func NewAdditive(cfg AIMDConfig) *Additive {
	c := cfg.withDefaults()
	a := &Additive{cfg: c}
	a.Reset()
	return a
}

// Window returns the current reorder window.
func (a *Additive) Window() int64 { return a.window }

// Observe grows or shrinks the window by one unit.
func (a *Additive) Observe(latencyNs, sloNs int64) {
	if latencyNs > sloNs {
		a.window -= a.unit
		if a.window < 0 {
			a.window = 0
		}
	} else {
		a.window += a.unit
		if a.window > a.cfg.MaxWindow {
			a.window = a.cfg.MaxWindow
		}
	}
}

// Reset restores the initial window.
func (a *Additive) Reset() {
	a.window = a.cfg.InitWindow
	a.unit = a.window * int64(100-a.cfg.Percentile) / 100
	if a.unit < a.cfg.MinUnit {
		a.unit = a.cfg.MinUnit
	}
}

// Multiplicative is an ablation controller: exponential growth and
// exponential decrease. It oscillates around the SLO (violating far more
// than 1-PCT of epochs), demonstrating why the paper's growth is linear.
type Multiplicative struct {
	cfg    AIMDConfig
	window int64
}

// NewMultiplicative returns the multiplicative-only ablation controller.
func NewMultiplicative(cfg AIMDConfig) *Multiplicative {
	m := &Multiplicative{cfg: cfg.withDefaults()}
	m.Reset()
	return m
}

// Window returns the current reorder window.
func (m *Multiplicative) Window() int64 { return m.window }

// Observe doubles or halves the window.
func (m *Multiplicative) Observe(latencyNs, sloNs int64) {
	if latencyNs > sloNs {
		m.window >>= 1
	} else {
		if m.window == 0 {
			m.window = m.cfg.MinUnit
		}
		m.window <<= 1
		if m.window > m.cfg.MaxWindow {
			m.window = m.cfg.MaxWindow
		}
	}
}

// Reset restores the initial window.
func (m *Multiplicative) Reset() { m.window = m.cfg.InitWindow }
