package core

import (
	"testing"
	"testing/quick"
)

// Failure-injection and misuse tests for the epoch machinery (§3.4
// lists the misuse cases LibASL must survive).

func TestNestedSLOInversionPrioritisesInner(t *testing.T) {
	// "When the SLO of nested epochs are mistakenly set (outer epoch
	// has a tighter SLO), LibASL always prioritises the inner epoch":
	// the reorder window in force is always the innermost epoch's.
	fc := &fakeClock{}
	w := newTestWorker(Little, fc)
	w.EpochStart(0) // outer (tight SLO — misconfigured)
	w.EpochStart(1) // inner (loose SLO)
	if got := w.ReorderWindow(); got != w.EpochWindow(1) {
		t.Fatalf("window %d should come from the inner epoch (%d)", got, w.EpochWindow(1))
	}
	fc.now += 1000
	w.EpochEnd(1, 1<<40) // inner compliant
	fc.now += 1 << 30
	w.EpochEnd(0, 1) // outer violated
	// The outer violation must shrink only the outer epoch's window.
	if w.EpochWindow(1) <= w.EpochWindow(0) {
		t.Fatalf("inner window %d should exceed the violated outer's %d",
			w.EpochWindow(1), w.EpochWindow(0))
	}
}

func TestUnbalancedEpochEndIsHarmless(t *testing.T) {
	// Ending an epoch that never started must not corrupt the stack
	// (it reads a zero start timestamp, yielding a huge latency, which
	// only shrinks that epoch's own window).
	fc := &fakeClock{now: 1 << 20}
	w := newTestWorker(Little, fc)
	w.EpochEnd(3, 1000)
	if w.InEpoch() {
		t.Fatal("worker should not be inside an epoch")
	}
	// Subsequent normal use still works.
	w.EpochStart(3)
	fc.now += 10
	if lat := w.EpochEnd(3, 1<<40); lat != 10 {
		t.Fatalf("latency = %d, want 10", lat)
	}
}

func TestDeeplyNestedEpochs(t *testing.T) {
	fc := &fakeClock{}
	w := newTestWorker(Little, fc)
	const depth = 32
	for i := 0; i < depth; i++ {
		w.EpochStart(i)
	}
	for i := depth - 1; i >= 0; i-- {
		if w.CurrentEpoch() != i {
			t.Fatalf("current epoch = %d, want %d", w.CurrentEpoch(), i)
		}
		fc.now += 5
		w.EpochEnd(i, 1<<40)
	}
	if w.InEpoch() {
		t.Fatal("stack should be empty")
	}
}

func TestRepeatedSameEpochID(t *testing.T) {
	// Recursive nesting of the same id shares one controller; the
	// stack must still unwind correctly.
	fc := &fakeClock{}
	w := newTestWorker(Little, fc)
	w.EpochStart(7)
	w.EpochStart(7)
	fc.now += 100
	w.EpochEnd(7, 1<<40)
	if w.CurrentEpoch() != 7 {
		t.Fatalf("current epoch = %d, want 7 (outer instance)", w.CurrentEpoch())
	}
	w.EpochEnd(7, 1<<40)
	if w.InEpoch() {
		t.Fatal("stack should be empty")
	}
}

// TestQuickEpochStackInvariant: any interleave of starts and balanced
// ends keeps the worker's epoch stack consistent.
func TestQuickEpochStackInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		fc := &fakeClock{}
		w := newTestWorker(Little, fc)
		var stack []int
		for _, op := range ops {
			id := int(op % 8)
			if op%3 == 0 && len(stack) > 0 {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				fc.now += int64(op)
				w.EpochEnd(top, 1<<40)
			} else {
				stack = append(stack, id)
				w.EpochStart(id)
			}
			// Invariant: the worker agrees with the model stack.
			if len(stack) == 0 {
				if w.InEpoch() {
					return false
				}
			} else if w.CurrentEpoch() != stack[len(stack)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowNeverNegativeUnderAdversarialFeedback(t *testing.T) {
	f := func(lat []uint32) bool {
		a := NewAIMD(AIMDConfig{})
		for _, l := range lat {
			a.Observe(int64(l), int64(l%97)) // mostly violations
			if a.Window() < 0 || a.Window() > DefaultMaxWindow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
