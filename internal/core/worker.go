package core

import (
	"fmt"
	"time"
)

// Class identifies the computing-capacity class of the core a worker
// runs on. On real AMP hardware LibASL derives this from the core id;
// the Go library cannot observe physical core placement, so the
// application classifies its workers explicitly (e.g. the threads the
// scheduler keeps on big cores, or simply its latency-tolerant worker
// pool). The simulator assigns classes to simulated cores directly.
type Class int

const (
	// Big cores acquire with lock_immediately (paper Algorithm 3).
	Big Class = iota
	// Little cores acquire with lock_reorder and are the ones whose
	// epochs drive the window feedback.
	Little
)

// String returns "big" or "little".
func (c Class) String() string {
	if c == Big {
		return "big"
	}
	return "little"
}

// Clock returns the current time in nanoseconds. The real engine uses
// a monotonic clock (see NowFunc); the simulator passes its virtual
// clock, so epoch latencies and reorder windows are measured in virtual
// time there.
type Clock func() int64

// NowFunc is the default real-time clock: monotonic nanoseconds since
// process start (clock_gettime(CLOCK_MONOTONIC) underneath, the same
// ~45-cycle call the paper uses).
func NowFunc() Clock {
	start := time.Now()
	return func() int64 { return int64(time.Since(start)) }
}

// epochState is the 24-byte per-thread, per-epoch metadata of
// Algorithm 2: the reorder window lives inside the controller, start is
// the epoch_start timestamp.
type epochState struct {
	ctl   Controller
	start int64
}

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Class is the worker's core class.
	Class Class
	// Clock supplies time; nil means a process-monotonic real clock.
	Clock Clock
	// AIMD configures every epoch's controller. The zero value applies
	// the paper's defaults (PCT 99, 100 ms max window).
	AIMD AIMDConfig
	// NewController, if non-nil, overrides the controller constructor
	// (used by the ablation benchmarks and LibASL-OPT).
	NewController func() Controller
	// MaxEpochs bounds the number of distinct epoch ids (the paper's
	// MAX_EPOCH). 0 means 64.
	MaxEpochs int
}

// Worker is the per-thread state of LibASL: the current epoch, the
// nesting stack, and one window controller per epoch id. A Worker must
// only be used from one goroutine (it is the Go analogue of the paper's
// __thread data).
type Worker struct {
	class Class
	// hinted/hint hold the per-operation class override (see
	// SetClassHint). Worker is single-goroutine, so plain fields.
	hinted    bool
	hint      Class
	clock     Clock
	cfg       WorkerConfig
	epochs    []epochState
	cur       int // current epoch id, -1 when outside any epoch
	stack     []int
	maxWindow int64
}

// NewWorker returns a worker with the given configuration.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Clock == nil {
		cfg.Clock = NowFunc()
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 64
	}
	aimd := cfg.AIMD.withDefaults()
	w := &Worker{
		class:     cfg.Class,
		clock:     cfg.Clock,
		cfg:       cfg,
		epochs:    make([]epochState, cfg.MaxEpochs),
		cur:       -1,
		maxWindow: aimd.MaxWindow,
	}
	return w
}

// Class returns the worker's effective core class: the per-operation
// hint when one is installed (SetClassHint), the base class otherwise.
// Every consumer of class — lock acquire paths, combiner election,
// spin-vs-park waiting, CSPad keying — reads the class through here,
// so a hint re-classes a single operation end to end.
func (w *Worker) Class() Class {
	if w.hinted {
		return w.hint
	}
	return w.class
}

// BaseClass returns the worker's underlying class, ignoring any hint.
func (w *Worker) BaseClass() Class { return w.class }

// SetClass re-classifies the worker. The paper supports thread
// migration between asymmetric cores; the Go analogue is the
// application re-classifying a worker when its placement changes.
func (w *Worker) SetClass(c Class) { w.class = c }

// SetClassHint installs a per-operation class override: until
// ClearClassHint, Class() reports c instead of the base class. This is
// the ClassHint path of the serving layer — a request boundary (e.g. a
// network server mapping an SLO class byte) classes each operation
// individually, where SetClass would re-class the whole worker. Hints
// follow the worker's single-goroutine contract: install before the
// operation, clear after, never leave one across a return to the pool.
func (w *Worker) SetClassHint(c Class) { w.hinted, w.hint = true, c }

// ClearClassHint removes the per-operation class override.
func (w *Worker) ClearClassHint() { w.hinted = false }

// ClassHinted reports whether a per-operation class hint is installed.
func (w *Worker) ClassHinted() bool { return w.hinted }

// Now returns the worker's clock reading (exposed for harness use).
func (w *Worker) Now() int64 { return w.clock() }

// InEpoch reports whether the worker is currently inside an epoch.
func (w *Worker) InEpoch() bool { return w.cur >= 0 }

// CurrentEpoch returns the innermost epoch id, or -1.
func (w *Worker) CurrentEpoch() int { return w.cur }

func (w *Worker) state(id int) *epochState {
	if id < 0 || id >= len(w.epochs) {
		panic(fmt.Sprintf("core: epoch id %d out of range [0,%d)", id, len(w.epochs)))
	}
	st := &w.epochs[id]
	if st.ctl == nil {
		if w.cfg.NewController != nil {
			st.ctl = w.cfg.NewController()
		} else {
			st.ctl = NewAIMD(w.cfg.AIMD)
		}
	}
	return st
}

// EpochStart marks the beginning of epoch id (paper Algorithm 2,
// epoch_start). Nested epochs push the outer id on a stack; the
// innermost epoch's window governs lock acquisition, implementing the
// "always prioritise the inner epoch" rule of §3.4.
func (w *Worker) EpochStart(id int) {
	st := w.state(id)
	if w.cur >= 0 {
		w.stack = append(w.stack, w.cur)
	}
	w.cur = id
	st.start = w.clock()
}

// EpochEnd marks the end of epoch id with the given latency SLO in
// nanoseconds (epoch_end). It returns the measured epoch latency.
// Matching Algorithm 2, workers on big cores skip the window update:
// only reordered victims (little cores) drive the feedback. The
// effective class decides — an operation hinted Little (e.g. a
// bulk-class network request) drives its epoch's feedback even when
// the handling worker's base class is Big.
func (w *Worker) EpochEnd(id int, sloNs int64) (latencyNs int64) {
	st := w.state(id)
	latencyNs = w.clock() - st.start
	if w.Class() != Big {
		st.ctl.Observe(latencyNs, sloNs)
	}
	if n := len(w.stack); n > 0 {
		w.cur = w.stack[n-1]
		w.stack = w.stack[:n-1]
	} else {
		w.cur = -1
	}
	return latencyNs
}

// ReorderWindow returns the window a lock_reorder call should use right
// now (paper Algorithm 3): the innermost epoch's window when inside an
// epoch, otherwise the default maximum window, which guarantees the
// thread eventually enqueues even without any SLO annotation.
func (w *Worker) ReorderWindow() int64 {
	if w.cur < 0 {
		return w.maxWindow
	}
	return w.epochs[w.cur].ctl.Window()
}

// EpochWindow exposes epoch id's current window (for tests and traces).
func (w *Worker) EpochWindow(id int) int64 { return w.state(id).ctl.Window() }

// ResetEpoch resets epoch id's controller to its initial state.
func (w *Worker) ResetEpoch(id int) { w.state(id).ctl.Reset() }
