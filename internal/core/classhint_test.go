package core

import "testing"

// TestClassHint covers the per-operation class override: Class()
// follows the hint, BaseClass never does, and clearing restores the
// base class.
func TestClassHint(t *testing.T) {
	w := NewWorker(WorkerConfig{Class: Big})
	if w.Class() != Big || w.BaseClass() != Big || w.ClassHinted() {
		t.Fatalf("fresh worker: Class=%v BaseClass=%v hinted=%v", w.Class(), w.BaseClass(), w.ClassHinted())
	}
	w.SetClassHint(Little)
	if w.Class() != Little {
		t.Fatalf("hinted Little but Class() = %v", w.Class())
	}
	if w.BaseClass() != Big {
		t.Fatalf("hint leaked into BaseClass: %v", w.BaseClass())
	}
	if !w.ClassHinted() {
		t.Fatal("ClassHinted() false while hint installed")
	}
	w.ClearClassHint()
	if w.Class() != Big || w.ClassHinted() {
		t.Fatalf("after clear: Class=%v hinted=%v", w.Class(), w.ClassHinted())
	}
	// Re-hinting to the base class is a no-op for Class() but still a
	// hint (BaseClass changes must not show through until cleared).
	w.SetClassHint(Big)
	w.SetClass(Little)
	if w.Class() != Big {
		t.Fatalf("hint Big over base Little: Class() = %v", w.Class())
	}
	w.ClearClassHint()
	if w.Class() != Little {
		t.Fatalf("after clear with base Little: Class() = %v", w.Class())
	}
}

// TestClassHintDrivesEpochFeedback checks that EpochEnd keys its
// window-update gate off the effective class: a Big-based worker whose
// operation is hinted Little must drive the controller.
func TestClassHintDrivesEpochFeedback(t *testing.T) {
	now := int64(0)
	clock := func() int64 { return now }
	w := NewWorker(WorkerConfig{Class: Big, Clock: clock})
	before := w.EpochWindow(0)

	// Un-hinted Big: misses must NOT move the window.
	for i := 0; i < 8; i++ {
		w.EpochStart(0)
		now += 1000
		w.EpochEnd(0, 1) // latency far above SLO
	}
	if got := w.EpochWindow(0); got != before {
		t.Fatalf("big-class epochs moved the window: %d -> %d", before, got)
	}

	// Hinted Little: the same misses must shrink the window.
	w.SetClassHint(Little)
	for i := 0; i < 8; i++ {
		w.EpochStart(0)
		now += 1000
		w.EpochEnd(0, 1)
	}
	w.ClearClassHint()
	if got := w.EpochWindow(0); got >= before {
		t.Fatalf("little-hinted epochs left the window at %d (start %d)", got, before)
	}
}
