package locks

import (
	"testing"

	"repro/internal/core"
)

// TestClassProbeObservesHint drives one probe-wrapped lock of every
// factory family with a Big-based worker, hinting half the
// acquisitions Little, and asserts the probe saw the EFFECTIVE class —
// the per-operation ClassHint contract the serving layer's class
// mapping rests on.
func TestClassProbeObservesHint(t *testing.T) {
	factories := map[string]Factory{
		"asl":     FactoryASL(),
		"mutex":   FactorySyncMutex(),
		"mcs":     FactoryMCS(),
		"pthread": FactoryPthread(),
		"ticket":  FactoryTicket(),
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			l := WithClassProbe(f())
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			for i := 0; i < 10; i++ {
				if i%2 == 1 {
					w.SetClassHint(core.Little)
				}
				l.Acquire(w)
				l.Release(w)
				w.ClearClassHint()
			}
			st := l.Stats()
			if st.BigAcquires != 5 || st.LittleAcquires != 5 {
				t.Fatalf("probe saw big=%d little=%d, want 5/5", st.BigAcquires, st.LittleAcquires)
			}
		})
	}
}

// TestClassProbeTryAcquire checks the win/lose accounting: a held lock
// fails the try (counted) and a free one succeeds under the observed
// class.
func TestClassProbeTryAcquire(t *testing.T) {
	l := WithClassProbe(FactorySyncMutex()())
	wa := core.NewWorker(core.WorkerConfig{Class: core.Big})
	wb := core.NewWorker(core.WorkerConfig{Class: core.Little})

	l.Acquire(wa)
	if l.TryAcquire(wb) {
		t.Fatal("TryAcquire succeeded on a held lock")
	}
	l.Release(wa)
	if !l.TryAcquire(wb) {
		t.Fatal("TryAcquire failed on a free lock")
	}
	l.Release(wb)

	st := l.Stats()
	if st.TryFailed != 1 {
		t.Fatalf("TryFailed = %d, want 1", st.TryFailed)
	}
	if st.BigAcquires != 1 || st.LittleAcquires != 1 {
		t.Fatalf("acquires big=%d little=%d, want 1/1", st.BigAcquires, st.LittleAcquires)
	}
}
