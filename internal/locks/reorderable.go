package locks

import (
	"runtime"
	"time"

	"repro/internal/core"
)

// Reorderable is the paper's reorderable lock (Algorithm 1): a bounded
// reorder capability layered on an unmodified FIFO lock.
//
//   - LockImmediately appends the caller to the FIFO queue right away.
//   - LockReorder makes the caller a standby competitor: it polls the
//     lock's free state with binary-exponential back-off for at most
//     the given window, then enqueues. Competitors that arrive through
//     LockImmediately during that window therefore overtake it —
//     reordering bounded by the window.
//
// The underlying FIFO lock is not modified in any way; Unlock is a
// direct pass-through, and TryLock remains available (§3.3: "Since the
// reorderable lock is implemented atop of existing locks, both the
// trylock and the nested locking are supported").
type Reorderable struct {
	fifo FIFOLock
	// MaxWindow caps every reorder window, keeping the lock
	// starvation-free (§3.2). Zero means core.DefaultMaxWindow.
	MaxWindow int64
	// Clock supplies nanosecond time; nil means a process-monotonic
	// clock. Tests inject deterministic clocks here.
	Clock core.Clock
	// Sleeping selects the blocking flavour (footnote 3): standby
	// competitors yield via nanosleep-style time.Sleep in a back-off
	// manner instead of busy-waiting. Used for the over-subscription
	// experiments (Bench-6) where busy-waiting wastes a co-located
	// thread's CPU.
	Sleeping bool
}

// NewReorderable wraps the given FIFO lock. MCS is the paper's default.
// The clock is installed here, not lazily on first standby wait: two
// standby competitors racing to initialise it would be a data race
// (callers may still replace Clock before sharing the lock).
func NewReorderable(fifo FIFOLock) *Reorderable {
	return &Reorderable{fifo: fifo, Clock: core.NowFunc()}
}

func (r *Reorderable) clock() core.Clock {
	if r.Clock == nil {
		// Only reachable for a zero-value Reorderable that skipped the
		// constructor and is not yet shared.
		r.Clock = core.NowFunc()
	}
	return r.Clock
}

func (r *Reorderable) maxWindow() int64 {
	if r.MaxWindow <= 0 {
		return core.DefaultMaxWindow
	}
	return r.MaxWindow
}

// LockImmediately enqueues on the FIFO lock right away (Algorithm 1,
// lock_immediately). Big-core competitors use this path.
func (r *Reorderable) LockImmediately() { r.fifo.Lock() }

// LockReorder acquires the lock as a standby competitor with the given
// reorder window in nanoseconds (Algorithm 1, lock_reorder). The window
// is a hint, not a strict order constraint: when it expires the caller
// simply enqueues like everyone else.
func (r *Reorderable) LockReorder(windowNs int64) {
	if maxW := r.maxWindow(); windowNs > maxW {
		windowNs = maxW
	}
	if r.fifo.IsFree() {
		r.fifo.Lock()
		return
	}
	if windowNs > 0 {
		if r.Sleeping {
			r.standbySleeping(windowNs)
		} else {
			r.standbySpinning(windowNs)
		}
	}
	r.fifo.Lock()
}

// standbySpinning is the busy-waiting standby loop of Algorithm 1
// (lines 8–14): spin until the window ends, checking the lock's free
// state at binary-exponentially spaced intervals to keep contention on
// the lock word low.
func (r *Reorderable) standbySpinning(windowNs int64) {
	clock := r.clock()
	windowEnd := clock() + windowNs
	var cnt, nextCheck uint64 = 0, 1
	var s spinner
	for clock() < windowEnd {
		cnt++
		if cnt == nextCheck {
			if r.fifo.IsFree() {
				return
			}
			nextCheck <<= 1
		}
		s.spin()
	}
}

// standbySleeping is the blocking flavour: the standby competitor
// sleeps in exponentially growing slices instead of spinning, leaving
// the CPU to co-located threads (Bench-6).
func (r *Reorderable) standbySleeping(windowNs int64) {
	clock := r.clock()
	windowEnd := clock() + windowNs
	const minSleep = int64(10 * time.Microsecond)
	const maxSleep = int64(time.Millisecond)
	d := minSleep
	for {
		now := clock()
		if now >= windowEnd {
			return
		}
		if r.fifo.IsFree() {
			return
		}
		remaining := windowEnd - now
		slice := d
		if slice > remaining {
			slice = remaining
		}
		time.Sleep(time.Duration(slice))
		if d < maxSleep {
			d <<= 1
		}
		runtime.Gosched()
	}
}

// Lock acquires through the immediate path, making Reorderable a plain
// sync.Locker for code that is not class-aware.
func (r *Reorderable) Lock() { r.LockImmediately() }

// TryLock acquires the underlying lock iff it is free.
func (r *Reorderable) TryLock() bool { return r.fifo.TryLock() }

// IsFree reports whether the underlying lock is free.
func (r *Reorderable) IsFree() bool { return r.fifo.IsFree() }

// Unlock releases via the unmodified FIFO unlock (Algorithm 1,
// unlock_fifo pass-through).
func (r *Reorderable) Unlock() { r.fifo.Unlock() }
