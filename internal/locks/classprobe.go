package locks

import (
	"sync/atomic"

	"repro/internal/core"
)

// ClassProbe wraps a WLock and counts acquisitions by the class the
// lock OBSERVES — w.Class() at Acquire/TryAcquire time, i.e. the
// effective class after any per-operation hint (core.Worker.
// SetClassHint). It exists for the serving layer's class-mapping
// contract: a front end that tags each request with an SLO class must
// be able to assert (in tests) and report (in stats) that an
// interactive request really reached the shard lock as big-class and a
// bulk request as little-class. Counters are atomic; the wrapper adds
// two uncontended atomic adds per acquisition and nothing else.
type ClassProbe struct {
	inner WLock
	// acquires counts successful lock entries by observed class,
	// indexed by core.Class (Big = 0, Little = 1). Failed TryAcquires
	// are counted separately: they observe a class but never enter.
	acquires  [2]atomic.Uint64
	tryFailed atomic.Uint64
}

// WithClassProbe wraps l with class-observation counters.
func WithClassProbe(l WLock) *ClassProbe { return &ClassProbe{inner: l} }

// Acquire acquires the inner lock and records the observed class.
func (p *ClassProbe) Acquire(w *core.Worker) {
	p.inner.Acquire(w)
	p.acquires[w.Class()].Add(1)
}

// Release releases the inner lock.
func (p *ClassProbe) Release(w *core.Worker) { p.inner.Release(w) }

// TryAcquire tries the inner lock; wins are recorded under the
// observed class, losses under the failed-try counter.
func (p *ClassProbe) TryAcquire(w *core.Worker) bool {
	if p.inner.TryAcquire(w) {
		p.acquires[w.Class()].Add(1)
		return true
	}
	p.tryFailed.Add(1)
	return false
}

// Inner returns the wrapped lock.
func (p *ClassProbe) Inner() WLock { return p.inner }

// ClassProbeStats is a snapshot of a ClassProbe's counters.
type ClassProbeStats struct {
	// BigAcquires and LittleAcquires count successful lock entries
	// whose worker's effective class was Big / Little.
	BigAcquires, LittleAcquires uint64
	// TryFailed counts TryAcquire calls that lost.
	TryFailed uint64
}

// Stats snapshots the counters.
func (p *ClassProbe) Stats() ClassProbeStats {
	return ClassProbeStats{
		BigAcquires:    p.acquires[core.Big].Load(),
		LittleAcquires: p.acquires[core.Little].Load(),
		TryFailed:      p.tryFailed.Load(),
	}
}

// FactoryClassProbe wraps every lock f builds with a ClassProbe. The
// probes are reachable through the WLock values themselves (type-assert
// to *ClassProbe); callers that need them collected should capture
// them in their own NewLock closure instead.
func FactoryClassProbe(f Factory) Factory {
	return func() WLock { return WithClassProbe(f()) }
}
