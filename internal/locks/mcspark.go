package locks

import (
	"sync"
	"sync/atomic"
)

// mcsParkNode extends the MCS node with parking state so waiters can
// block instead of burning CPU.
type mcsParkNode struct {
	_      pad
	next   atomic.Pointer[mcsParkNode]
	locked atomic.Bool
	parked atomic.Bool
	wake   chan struct{}
	_      pad
}

// MCSPark is the spin-then-park MCS variant evaluated as "MCS-STP" in
// Bench-6 (Fig. 8h): waiters spin briefly, then block; the FIFO
// handover must then pay the full wake-up latency on the critical path,
// which is why the paper finds it 96% worse than pthread_mutex under
// core over-subscription.
type MCSPark struct {
	_      pad
	tail   atomic.Pointer[mcsParkNode]
	_      pad
	holder *mcsParkNode
	pool   sync.Pool
	// SpinBudget is how many spin iterations a waiter burns before
	// parking; 0 means a small default.
	SpinBudget uint
}

func (m *MCSPark) getNode() *mcsParkNode {
	n, ok := m.pool.Get().(*mcsParkNode)
	if !ok {
		// The wake channel lives as long as the node: a releaser from a
		// previous life of a pooled node may still be sending into it
		// after the node was recycled, so the slot must never be
		// reassigned. Stale tokens are drained on reuse below; one that
		// arrives after the drain only causes a spurious wake, which the
		// park loop absorbs by re-checking locked.
		n = &mcsParkNode{wake: make(chan struct{}, 1)}
	}
	n.next.Store(nil)
	n.locked.Store(false)
	n.parked.Store(false)
	select {
	case <-n.wake:
	default:
	}
	return n
}

// Lock enqueues the caller, spins briefly, then parks until granted.
func (m *MCSPark) Lock() {
	n := m.getNode()
	n.locked.Store(true)
	prev := m.tail.Swap(n)
	if prev != nil {
		prev.next.Store(n)
		budget := m.SpinBudget
		if budget == 0 {
			budget = 128
		}
		var s spinner
		for i := uint(0); i < budget; i++ {
			if !n.locked.Load() {
				m.holder = n
				return
			}
			s.spin()
		}
		// Park on the node's lifetime channel (created once in getNode
		// and drained on reuse, so it is never reassigned while a slow
		// releaser from an earlier life may still be sending into it).
		// Re-checking locked inside the loop makes spurious tokens —
		// a stale send that outran the drain — harmless.
		n.parked.Store(true)
		for n.locked.Load() {
			<-n.wake
		}
	}
	m.holder = n
}

// TryLock acquires the lock iff the queue is empty.
func (m *MCSPark) TryLock() bool {
	n := m.getNode()
	if m.tail.CompareAndSwap(nil, n) {
		m.holder = n
		return true
	}
	m.pool.Put(n)
	return false
}

// IsFree reports whether the queue is empty.
func (m *MCSPark) IsFree() bool { return m.tail.Load() == nil }

// Unlock hands the lock to the successor, waking it if parked.
func (m *MCSPark) Unlock() {
	n := m.holder
	m.holder = nil
	next := n.next.Load()
	if next == nil {
		if m.tail.CompareAndSwap(n, nil) {
			m.pool.Put(n)
			return
		}
		var s spinner
		for {
			if next = n.next.Load(); next != nil {
				break
			}
			s.spin()
		}
	}
	next.locked.Store(false)
	if next.parked.Load() {
		// Non-blocking send into a one-slot buffer: if a token is
		// already pending the waiter has a wakeup coming anyway.
		select {
		case next.wake <- struct{}{}:
		default:
		}
	}
	m.pool.Put(n)
}
