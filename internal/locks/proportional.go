package locks

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// propWaiter is one queued competitor of the proportional lock.
type propWaiter struct {
	granted atomic.Bool
	next    *propWaiter
	_       pad
}

// propQueue is a simple FIFO of waiters, guarded externally.
type propQueue struct {
	head, tail *propWaiter
}

func (q *propQueue) push(w *propWaiter) {
	w.next = nil
	if q.tail == nil {
		q.head, q.tail = w, w
		return
	}
	q.tail.next = w
	q.tail = w
}

func (q *propQueue) pop() *propWaiter {
	w := q.head
	if w == nil {
		return nil
	}
	q.head = w.next
	if q.head == nil {
		q.tail = nil
	}
	w.next = nil
	return w
}

func (q *propQueue) empty() bool { return q.head == nil }

// Proportional implements the paper's SHFL-PBn comparison point: a
// ShflLock-style reordering lock driven by a proportional-based static
// policy. Competitors are segregated into per-class queues (the paper
// splits asymmetric cores onto two ShflLock "nodes") and the release
// path admits exactly one little-core competitor after every N big-core
// handovers (§4, Evaluation Setup). It is one static trade-off between
// throughput and latency — the strawman LibASL's dynamic ordering is
// evaluated against (Fig. 5).
type Proportional struct {
	guard       TAS // short critical sections protecting the queue state
	locked      bool
	bigQ        propQueue
	littleQ     propQueue
	sinceLittle int
	pool        sync.Pool
	// N is the proportion: N big handovers per little handover. Zero
	// means DefaultProportion.
	N int
}

// DefaultProportion matches the paper's SHFL-PB10 configuration.
const DefaultProportion = 10

func (p *Proportional) proportion() int {
	if p.N <= 0 {
		return DefaultProportion
	}
	return p.N
}

func (p *Proportional) getWaiter() *propWaiter {
	if w, ok := p.pool.Get().(*propWaiter); ok {
		w.granted.Store(false)
		return w
	}
	return &propWaiter{}
}

// Lock acquires as a big-core competitor (the conservative default for
// plain Locker use).
func (p *Proportional) Lock() { p.LockClass(core.Big) }

// LockClass acquires the lock as a competitor of class c.
func (p *Proportional) LockClass(c core.Class) {
	p.guard.Lock()
	if !p.locked && p.bigQ.empty() && p.littleQ.empty() {
		p.locked = true
		p.guard.Unlock()
		return
	}
	w := p.getWaiter()
	if c == core.Big {
		p.bigQ.push(w)
	} else {
		p.littleQ.push(w)
	}
	p.guard.Unlock()
	var s spinner
	for !w.granted.Load() {
		s.spin()
	}
	p.pool.Put(w)
}

// TryLock acquires the lock iff it is free with no waiters.
func (p *Proportional) TryLock() bool {
	p.guard.Lock()
	ok := !p.locked && p.bigQ.empty() && p.littleQ.empty()
	if ok {
		p.locked = true
	}
	p.guard.Unlock()
	return ok
}

// IsFree reports whether the lock is free with no waiters.
func (p *Proportional) IsFree() bool {
	p.guard.Lock()
	free := !p.locked && p.bigQ.empty() && p.littleQ.empty()
	p.guard.Unlock()
	return free
}

// Unlock hands the lock over according to the proportional policy.
func (p *Proportional) Unlock() {
	p.guard.Lock()
	var w *propWaiter
	switch {
	case p.sinceLittle >= p.proportion() && !p.littleQ.empty():
		w = p.littleQ.pop()
		p.sinceLittle = 0
	case !p.bigQ.empty():
		w = p.bigQ.pop()
		p.sinceLittle++
	case !p.littleQ.empty():
		w = p.littleQ.pop()
		p.sinceLittle = 0
	default:
		p.locked = false
	}
	p.guard.Unlock()
	if w != nil {
		w.granted.Store(true)
	}
}
