package locks

import (
	"sync/atomic"

	"repro/internal/core"
)

// ContentionStats snapshots a Contended lock's counters. Attempts is
// every entry to the lock (Acquire calls plus TryAcquire calls);
// Contended is the subset that did not get the lock immediately — an
// Acquire whose opening try failed and had to queue/park/stand by, or
// a TryAcquire that returned false. Contended/Attempts is the
// lock-wait fraction the shardedkv skew detector feeds on: a shard
// whose traffic share is high but whose lock is never contended is
// merely busy, not a convoy, and splitting it buys nothing.
type ContentionStats struct {
	Attempts  uint64
	Contended uint64
}

// ContendedFrac returns Contended/Attempts (0 when idle).
func (s ContentionStats) ContendedFrac() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Contended) / float64(s.Attempts)
}

// Contended decorates any WLock with contention counters. The probe is
// an opening TryAcquire on the wrapped lock: if it wins, the acquire
// was immediate (uncontended); otherwise the acquire falls through to
// the blocking path and is counted contended. The paper's §3.3
// trylock argument makes this safe for the whole comparison set — the
// reorderable layer never modifies the base lock, so a try-then-lock
// sequence preserves each family's semantics. The one behavioural
// shift is that the opening try can barge past a queue the blocking
// path would have joined; that is exactly what the flat-combining
// pipeline's combiner election already does on these locks.
type Contended struct {
	inner     WLock
	attempts  atomic.Uint64
	contended atomic.Uint64
}

// WithContention wraps l with contention counters.
func WithContention(l WLock) *Contended { return &Contended{inner: l} }

// Acquire takes the lock, counting whether it was immediate.
func (c *Contended) Acquire(w *core.Worker) {
	c.attempts.Add(1)
	if c.inner.TryAcquire(w) {
		return
	}
	c.contended.Add(1)
	c.inner.Acquire(w)
}

// Release releases the lock.
func (c *Contended) Release(w *core.Worker) { c.inner.Release(w) }

// TryAcquire tries the lock; a failed try counts as contention (the
// caller met a holder).
func (c *Contended) TryAcquire(w *core.Worker) bool {
	c.attempts.Add(1)
	if c.inner.TryAcquire(w) {
		return true
	}
	c.contended.Add(1)
	return false
}

// Stats snapshots the counters.
func (c *Contended) Stats() ContentionStats {
	return ContentionStats{Attempts: c.attempts.Load(), Contended: c.contended.Load()}
}

// Inner returns the wrapped lock, for callers whose probes must not
// count as contention. The flat-combining pipeline elects combiners by
// hammering TryAcquire at a fixed cadence; a failed election probe
// means "someone is already combining", not "I waited", and counting
// it would drown the skew detector's real wait signal.
func (c *Contended) Inner() WLock { return c.inner }

// FactoryContended wraps every lock a factory builds with contention
// counters. The shardedkv store does this internally when dynamic
// resharding is enabled; the factory form is for callers that inject
// locks elsewhere and still want the wait signal.
func FactoryContended(f Factory) Factory {
	return func() WLock { return WithContention(f()) }
}
