package locks

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// The cross-family TryAcquire contract (free wins, held fails, exact
// accounting under mixed blocking/try competitors) is checked by the
// shared torture harness in harness_test.go; this file keeps only the
// Wrap fallback semantics that sit outside that contract.

// noTryLocker is a Locker without TryLock, exercising Wrap's blocking
// fallback.
type noTryLocker struct{ mu sync.Mutex }

func (n *noTryLocker) Lock()   { n.mu.Lock() }
func (n *noTryLocker) Unlock() { n.mu.Unlock() }

// TestWrapWithoutTryLock documents the degraded semantics for wrapped
// locks with no TryLock: TryAcquire falls back to a blocking acquire
// and always reports success.
func TestWrapWithoutTryLock(t *testing.T) {
	l := Wrap(&noTryLocker{})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	if !l.TryAcquire(w) {
		t.Fatal("fallback TryAcquire must report success")
	}
	l.Release(w)
	l.Acquire(w)
	l.Release(w)
}
