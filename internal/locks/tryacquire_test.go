package locks

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
)

// tryFactories is the comparison set whose TryAcquire must behave as a
// real try: success iff the lock was free, failure while it is held.
func tryFactories() []struct {
	name string
	f    Factory
} {
	return []struct {
		name string
		f    Factory
	}{
		{"pthread", FactoryPthread()},
		{"sync-mutex", FactorySyncMutex()},
		{"ticket", FactoryTicket()},
		{"mcs", FactoryMCS()},
		{"tas", FactoryTAS(core.Big, 0)},
		{"proportional", FactoryProportional(2)},
		{"asl", FactoryASL()},
		{"asl-blocking", FactoryASLBlocking()},
		{"cohort", func() WLock { return WrapCohort(NewCohortAMP()) }},
	}
}

// TestTryAcquireFreeAndHeld checks the two basic outcomes for every
// adapter: a try on a free lock wins (and its Release frees the lock
// again), a try on a held lock fails without blocking — for both
// worker classes, since class-aware adapters route the try through
// class-specific paths (cohortW picks the cohort, aslW skips the
// standby machinery).
func TestTryAcquireFreeAndHeld(t *testing.T) {
	for _, tf := range tryFactories() {
		t.Run(tf.name, func(t *testing.T) {
			for _, class := range []core.Class{core.Big, core.Little} {
				l := tf.f()
				w := core.NewWorker(core.WorkerConfig{Class: class})
				other := core.NewWorker(core.WorkerConfig{Class: core.Big})
				if !l.TryAcquire(w) {
					t.Fatalf("class %v: TryAcquire on a free lock failed", class)
				}
				if l.TryAcquire(other) {
					t.Fatalf("class %v: TryAcquire succeeded while held", class)
				}
				l.Release(w)
				if !l.TryAcquire(other) {
					t.Fatalf("class %v: TryAcquire after Release failed", class)
				}
				l.Release(other)
			}
		})
	}
}

// TestTryAcquireMutualExclusion mixes blocking Acquire and TryAcquire
// competitors over one shared counter; any mutual-exclusion violation
// shows up as a lost update (run with -race to catch the data race
// directly).
func TestTryAcquireMutualExclusion(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
	)
	for _, tf := range tryFactories() {
		t.Run(tf.name, func(t *testing.T) {
			l := tf.f()
			var counter int
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					class := core.Big
					if i%2 == 1 {
						class = core.Little
					}
					w := core.NewWorker(core.WorkerConfig{Class: class})
					for r := 0; r < rounds; r++ {
						if i%2 == 0 {
							// Try-path competitor: spin on the try.
							// Queue-based locks fail the try whenever
							// waiters are queued, so yield between tries.
							for !l.TryAcquire(w) {
								runtime.Gosched()
							}
						} else {
							l.Acquire(w)
						}
						counter++
						l.Release(w)
					}
				}(i)
			}
			wg.Wait()
			if counter != workers*rounds {
				t.Fatalf("lost updates: counter = %d, want %d", counter, workers*rounds)
			}
		})
	}
}

// noTryLocker is a Locker without TryLock, exercising Wrap's blocking
// fallback.
type noTryLocker struct{ mu sync.Mutex }

func (n *noTryLocker) Lock()   { n.mu.Lock() }
func (n *noTryLocker) Unlock() { n.mu.Unlock() }

// TestWrapWithoutTryLock documents the degraded semantics for wrapped
// locks with no TryLock: TryAcquire falls back to a blocking acquire
// and always reports success.
func TestWrapWithoutTryLock(t *testing.T) {
	l := Wrap(&noTryLocker{})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	if !l.TryAcquire(w) {
		t.Fatal("fallback TryAcquire must report success")
	}
	l.Release(w)
	l.Acquire(w)
	l.Release(w)
}
