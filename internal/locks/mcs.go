package locks

import (
	"sync"
	"sync/atomic"
)

// mcsNode is one waiter's queue node. Nodes are pooled per lock; a node
// is recycled only after the release protocol guarantees no other
// thread can still write to it (either the tail CAS proved there is no
// successor, or the successor's link write has been observed).
type mcsNode struct {
	_      pad
	next   atomic.Pointer[mcsNode]
	locked atomic.Bool
	_      pad
}

// MCS is the Mellor-Crummey–Scott queue spinlock: strict FIFO handover
// with each waiter spinning on its own cache line. It is the paper's
// representative fair lock (Figs. 1, 4, 8, 9, 10) and the default FIFO
// layer under the reorderable lock.
//
// The classic algorithm threads a queue node through the API; to keep
// the ergonomic sync.Locker interface, the node is drawn from a pool in
// Lock and parked in the lock until the matching Unlock (mutual
// exclusion makes the single holder slot race-free).
type MCS struct {
	_      pad
	tail   atomic.Pointer[mcsNode]
	_      pad
	holder *mcsNode // owned by the current lock holder
	pool   sync.Pool
}

func (m *MCS) getNode() *mcsNode {
	if n, ok := m.pool.Get().(*mcsNode); ok {
		n.next.Store(nil)
		n.locked.Store(false)
		return n
	}
	return &mcsNode{}
}

// Lock enqueues the caller and waits for the FIFO handover.
func (m *MCS) Lock() {
	n := m.getNode()
	n.locked.Store(true)
	prev := m.tail.Swap(n)
	if prev != nil {
		prev.next.Store(n)
		var s spinner
		for n.locked.Load() {
			s.spin()
		}
	}
	m.holder = n
}

// TryLock acquires the lock iff the queue is empty.
func (m *MCS) TryLock() bool {
	n := m.getNode()
	if m.tail.CompareAndSwap(nil, n) {
		m.holder = n
		return true
	}
	m.pool.Put(n)
	return false
}

// IsFree reports whether the queue is empty (no holder, no waiters).
func (m *MCS) IsFree() bool { return m.tail.Load() == nil }

// Unlock hands the lock to the queue successor, if any.
func (m *MCS) Unlock() {
	n := m.holder
	m.holder = nil
	next := n.next.Load()
	if next == nil {
		// No visible successor: try to swing the tail back to nil. If
		// that succeeds nobody can ever write n.next, so n is safe to
		// recycle. If it fails a successor is mid-enqueue; wait for its
		// link write.
		if m.tail.CompareAndSwap(n, nil) {
			m.pool.Put(n)
			return
		}
		var s spinner
		for {
			if next = n.next.Load(); next != nil {
				break
			}
			s.spin()
		}
	}
	next.locked.Store(false)
	m.pool.Put(n)
}
