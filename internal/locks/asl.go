package locks

import (
	"repro/internal/core"
)

// ASLMutex is LibASL's lock front end (paper Algorithm 3,
// asl_mutex_lock): competitors on big cores take the immediate FIFO
// path; competitors on little cores become standby competitors with the
// reorder window chosen by their current epoch's feedback controller
// (or the default maximum window outside any epoch, which guarantees
// eventual acquisition).
//
// The paper redirects pthread_mutex_lock to this function with
// weak-symbol replacement; Go has no symbol interposition, so the
// application passes its core.Worker explicitly (or binds one with
// Bind to obtain a plain sync.Locker, which is also how condition
// variables are supported via sync.Cond).
type ASLMutex struct {
	r *Reorderable
}

// NewASLMutex builds LibASL over the given FIFO lock (MCS in the
// paper's default configuration; a blocking lock such as BargingMutex
// for over-subscribed deployments, in which case set sleeping).
func NewASLMutex(fifo FIFOLock, sleeping bool) *ASLMutex {
	r := NewReorderable(fifo)
	r.Sleeping = sleeping
	return &ASLMutex{r: r}
}

// NewASLMutexDefault builds the paper's default stack: spinning
// reorderable lock over MCS.
func NewASLMutexDefault() *ASLMutex {
	return NewASLMutex(new(MCS), false)
}

// Reorderable exposes the underlying reorderable lock (for tests and
// for configuring Clock/MaxWindow).
func (m *ASLMutex) Reorderable() *Reorderable { return m.r }

// Lock acquires the lock on behalf of worker w (Algorithm 3).
func (m *ASLMutex) Lock(w *core.Worker) {
	if w.Class() == core.Big {
		m.r.LockImmediately()
		return
	}
	m.r.LockReorder(w.ReorderWindow())
}

// Unlock releases the lock. The worker is accepted for symmetry but the
// release path is the unmodified FIFO unlock.
func (m *ASLMutex) Unlock(w *core.Worker) { m.r.Unlock() }

// TryLock acquires the lock iff it is free, without queueing or
// standing by.
func (m *ASLMutex) TryLock(w *core.Worker) bool { return m.r.TryLock() }

// Bind returns a sync.Locker view of the mutex for the given worker,
// for use with APIs that require a plain Locker (e.g. sync.Cond — the
// paper supports condition variables the same way via litl).
func (m *ASLMutex) Bind(w *core.Worker) Locker { return boundASL{m: m, w: w} }

type boundASL struct {
	m *ASLMutex
	w *core.Worker
}

func (b boundASL) Lock()   { b.m.Lock(b.w) }
func (b boundASL) Unlock() { b.m.Unlock(b.w) }
