package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/prng"
)

// This file is the shared lock torture harness: one parameterized
// mutual-exclusion + progress + TryAcquire-consistency checker applied
// uniformly to every lock family in the package (and to the wrapper
// stacks the store actually deploys), replacing the per-family ad-hoc
// copies that used to live in locks_test.go and tryacquire_test.go.
// Run with -race: the intentionally non-atomic shared counter turns
// any exclusion bug into both a lost update and a detector hit.

// harnessFamily is one lock family under test.
type harnessFamily struct {
	name string
	f    Factory
}

// harnessFamilies enumerates every family. Wrapper stacks appear both
// bare and composed the way shardedkv composes them (Contended over
// Biased over a base lock).
func harnessFamilies() []harnessFamily {
	// Small bias windows so the torture run actually crosses
	// adopt/revoke transitions many times, not just once.
	bcfg := BiasedConfig{AdoptWindow: 16, RevokeTries: 4}
	return []harnessFamily{
		{"plain", FactorySyncMutex()},
		{"pthread", FactoryPthread()},
		{"tas", FactoryTAS(core.Big, 0)},
		{"ttas", func() WLock { return Wrap(new(TTAS)) }},
		{"backoff", func() WLock { return Wrap(new(Backoff)) }},
		{"ticket", FactoryTicket()},
		{"clh", func() WLock { return Wrap(new(CLH)) }},
		{"mcs", FactoryMCS()},
		{"mcspark", func() WLock { return Wrap(new(MCSPark)) }},
		{"proportional", FactoryProportional(2)},
		{"reorder", func() WLock { return Wrap(NewReorderable(new(MCS))) }},
		{"asl", FactoryASL()},
		{"asl-blocking", FactoryASLBlocking()},
		{"cohort", func() WLock { return WrapCohort(NewCohortAMP()) }},
		{"contended", FactoryContended(FactoryMCS())},
		{"biased", FactoryBiased(FactorySyncMutex(), bcfg)},
		{"biased-asl", FactoryBiased(FactoryASL(), bcfg)},
		{"contended-biased", FactoryContended(FactoryBiased(FactoryMCS(), bcfg))},
	}
}

// tortureLock is the core checker. Workers alternate core classes and
// split across three acquisition styles (spin-on-try, blocking,
// try-then-block) with randomized hold and think times; the critical
// section increments a deliberately non-atomic counter and an
// occupancy flag. Accounting is exact: each worker performs exactly
// `rounds` critical sections, so counter must equal workers*rounds —
// which doubles as the progress/fairness check, since a starved
// worker hangs the run instead of finishing short.
func tortureLock(t *testing.T, f Factory, workers, rounds int) {
	t.Helper()
	l := f()
	var (
		counter  int64 // protected by l, intentionally non-atomic
		inside   atomic.Int32
		overlaps atomic.Int32
		sink     atomic.Uint64
	)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			class := core.Big
			if wi%2 == 1 {
				class = core.Little
			}
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewSplitMix64(uint64(wi)*0x9e3779b9 + 7)
			var local uint64
			for r := 0; r < rounds; r++ {
				switch wi % 3 {
				case 0:
					// Spin-on-try competitor. Queue-based locks fail
					// the try whenever waiters are queued, and a
					// biased lock absorbs foreign probes, so yield
					// between tries.
					for !l.TryAcquire(w) {
						runtime.Gosched()
					}
				case 1:
					l.Acquire(w)
				default:
					if !l.TryAcquire(w) {
						l.Acquire(w)
					}
				}
				if inside.Add(1) != 1 {
					overlaps.Add(1)
				}
				counter++
				for h := rng.Uint64() % 8; h > 0; h-- { // randomized hold
					local += h
				}
				inside.Add(-1)
				l.Release(w)
				if rng.Uint64()%16 == 0 { // randomized think
					runtime.Gosched()
				}
			}
			sink.Add(local)
		}(wi)
	}
	wg.Wait()
	if overlaps.Load() != 0 {
		t.Fatalf("%d overlapping critical sections", overlaps.Load())
	}
	if counter != int64(workers*rounds) {
		t.Fatalf("lost updates: counter = %d, want %d", counter, workers*rounds)
	}
	// The lock must still be usable through the plain path.
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	l.Acquire(w)
	l.Release(w)
}

// tortureSize picks worker/round counts proportionate to the host and
// the -short budget.
func tortureSize(t *testing.T) (workers, rounds int) {
	workers, rounds = 8, 2500
	if testing.Short() {
		rounds = 500
	}
	if runtime.NumCPU() < 4 {
		// Spin locks on a starved host make progress only via
		// scheduler yields; keep the stress proportionate.
		workers, rounds = 4, 800
	}
	return workers, rounds
}

// TestTortureMutualExclusion runs the full checker over every family.
func TestTortureMutualExclusion(t *testing.T) {
	workers, rounds := tortureSize(t)
	for _, fam := range harnessFamilies() {
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			tortureLock(t, fam.f, workers, rounds)
		})
	}
}

// TestTortureTryConsistency pins the TryAcquire contract for every
// family and both worker classes: a try on a fresh lock wins, a try
// while the lock is held fails without blocking, a failed try leaves
// the lock intact, and a released lock is acquirable again. (A biased
// lock satisfies the same contract: pre-adoption it is a plain try,
// and a foreign try against a live bias reports failure.)
func TestTortureTryConsistency(t *testing.T) {
	for _, fam := range harnessFamilies() {
		t.Run(fam.name, func(t *testing.T) {
			for _, class := range []core.Class{core.Big, core.Little} {
				l := fam.f()
				w := core.NewWorker(core.WorkerConfig{Class: class})
				other := core.NewWorker(core.WorkerConfig{Class: core.Big})
				if !l.TryAcquire(w) {
					t.Fatalf("class %v: TryAcquire on a fresh lock failed", class)
				}
				if l.TryAcquire(other) {
					t.Fatalf("class %v: TryAcquire succeeded while held", class)
				}
				l.Release(w)
				if !l.TryAcquire(other) {
					t.Fatalf("class %v: TryAcquire after Release failed", class)
				}
				if l.TryAcquire(w) {
					t.Fatalf("class %v: second TryAcquire succeeded while held", class)
				}
				l.Release(other)
				// Usable through the blocking path afterwards.
				l.Acquire(w)
				l.Release(w)
			}
		})
	}
}

// TestTortureQuick is the property form: arbitrary small worker/round
// counts over a randomly picked family must keep exact accounting.
func TestTortureQuick(t *testing.T) {
	fams := harnessFamilies()
	f := func(pick, workers uint8, rounds uint16) bool {
		fam := fams[int(pick)%len(fams)]
		w := int(workers%4) + 1
		n := int(rounds%300) + 1
		l := fam.f()
		var counter int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				wk := core.NewWorker(core.WorkerConfig{Class: core.Class(i % 2)})
				for j := 0; j < n; j++ {
					if i%2 == 0 {
						for !l.TryAcquire(wk) {
							runtime.Gosched()
						}
					} else {
						l.Acquire(wk)
					}
					counter++
					l.Release(wk)
				}
			}(i)
		}
		wg.Wait()
		return counter == int64(w*n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
