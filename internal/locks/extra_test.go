package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func stressIters() int {
	if runtime.NumCPU() < 4 {
		return 2000
	}
	return 10000
}

func TestCLHMutualExclusion(t *testing.T) {
	var l CLH
	var counter int64
	var wg sync.WaitGroup
	iters := stressIters()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != int64(6*iters) {
		t.Fatalf("lost updates: %d", counter)
	}
	if !l.IsFree() {
		t.Fatal("CLH should be free at rest")
	}
}

func TestCLHTryLock(t *testing.T) {
	var l CLH
	if !l.TryLock() {
		t.Fatal("TryLock on free CLH must succeed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held CLH must fail")
	}
	l.Unlock()
	l.Lock()
	l.Unlock()
}

func TestCLHUnderReorderable(t *testing.T) {
	// CLH satisfies FIFOLock, so it can serve as the reorderable
	// lock's substrate.
	r := NewReorderable(new(CLH))
	var counter int64
	var wg sync.WaitGroup
	iters := stressIters() / 2
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if id%2 == 0 {
					r.LockImmediately()
				} else {
					r.LockReorder(1000)
				}
				counter++
				r.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if counter != int64(4*iters) {
		t.Fatalf("lost updates: %d", counter)
	}
}

func TestCohortMutualExclusion(t *testing.T) {
	c := NewCohortAMP()
	var counter int64
	var wg sync.WaitGroup
	iters := stressIters()
	for w := 0; w < 6; w++ {
		cohort := w % 2
		wg.Add(1)
		go func(cohort int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.LockCohort(cohort)
				counter++
				c.UnlockCohort(cohort)
			}
		}(cohort)
	}
	wg.Wait()
	if counter != int64(6*iters) {
		t.Fatalf("lost updates: %d", counter)
	}
}

func TestCohortCrossCohortProgress(t *testing.T) {
	// The batching budget must bound intra-cohort passing: a waiter in
	// the other cohort eventually acquires.
	c := NewCohort(2)
	c.Budget = 4
	stop := make(chan struct{})
	var cohort1Acquired atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.LockCohort(0)
				c.UnlockCohort(0)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.LockCohort(1)
			cohort1Acquired.Add(1)
			c.UnlockCohort(1)
		}
	}()
	for i := 0; i < 20000 && cohort1Acquired.Load() < 50; i++ {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if cohort1Acquired.Load() < 50 {
		t.Fatalf("cohort 1 starved: %d/50 acquisitions", cohort1Acquired.Load())
	}
}

func TestCohortWrapClassMapping(t *testing.T) {
	c := NewCohortAMP()
	wl := WrapCohort(c)
	big := core.NewWorker(core.WorkerConfig{Class: core.Big})
	little := core.NewWorker(core.WorkerConfig{Class: core.Little})
	wl.Acquire(big)
	wl.Release(big)
	wl.Acquire(little)
	wl.Release(little)
}

func TestCohortTryLock(t *testing.T) {
	c := NewCohortAMP()
	if !c.TryLock() {
		t.Fatal("TryLock on free cohort lock must succeed")
	}
	if c.TryLock() {
		t.Fatal("TryLock while held must fail")
	}
	c.Unlock()
	c.Lock()
	c.Unlock()
}

func TestFlatCombiningExecutesAll(t *testing.T) {
	var f FlatCombining
	var counter int64 // protected by the combiner's mutual exclusion
	var wg sync.WaitGroup
	iters := stressIters()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.Do(func() { counter++ })
			}
		}()
	}
	wg.Wait()
	if counter != int64(6*iters) {
		t.Fatalf("lost updates: %d", counter)
	}
	if f.Pending() != 0 {
		t.Fatalf("publication list not drained: %d", f.Pending())
	}
}

func TestFlatCombiningNoOverlap(t *testing.T) {
	var f FlatCombining
	var inside, overlaps atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				f.Do(func() {
					if inside.Add(1) != 1 {
						overlaps.Add(1)
					}
					inside.Add(-1)
				})
			}
		}()
	}
	wg.Wait()
	if overlaps.Load() != 0 {
		t.Fatalf("%d overlapping executions", overlaps.Load())
	}
}

func TestFlatCombiningSequentialResult(t *testing.T) {
	// Delegated operations must appear atomic: build a sequence where
	// each op reads-then-writes; any interleaving corrupts the chain.
	var f FlatCombining
	val := 0
	var wg sync.WaitGroup
	const per = 2000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Do(func() {
					v := val
					v++
					val = v
				})
			}
		}()
	}
	wg.Wait()
	if val != 4*per {
		t.Fatalf("val = %d, want %d", val, 4*per)
	}
}
