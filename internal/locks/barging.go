package locks

import (
	"sync"
	"sync/atomic"
)

// BargingMutex is a futex-style blocking mutex with barging, standing
// in for glibc's pthread_mutex_lock in the evaluation (see DESIGN.md).
// It reproduces the two properties the paper's analysis relies on:
//
//   - no FIFO order: a newly arriving thread can seize a just-released
//     lock ahead of sleeping waiters, so acquisition latency is
//     unstable and unfair;
//   - wake-up latency stays off the critical path under contention,
//     because the lock is handed to whoever is running, which is why
//     pthread_mutex beats spin-then-park FIFO locks when cores are
//     over-subscribed (Fig. 8h).
//
// The algorithm is the classic three-state futex mutex (0 free,
// 1 locked, 2 locked with possible sleepers), with a one-slot token
// channel playing the role of futex wake.
type BargingMutex struct {
	_     pad
	state atomic.Int32
	_     pad
	sema  chan struct{}
	once  sync.Once
}

func (m *BargingMutex) init() {
	m.once.Do(func() { m.sema = make(chan struct{}, 1) })
}

// Lock acquires the mutex, sleeping if contended. New arrivals barge
// ahead of sleepers, matching pthread semantics.
func (m *BargingMutex) Lock() {
	if m.state.CompareAndSwap(0, 1) {
		return
	}
	m.init()
	// Brief adaptive spin before sleeping, as glibc's adaptive mutex
	// and the Go runtime both do.
	var s spinner
	for i := 0; i < 32; i++ {
		if m.state.Load() == 0 && m.state.CompareAndSwap(0, 1) {
			return
		}
		s.spin()
	}
	for {
		// Mark contended; if the lock was free we now own it (in the
		// contended state, which only means Unlock will wake someone
		// unnecessarily — harmless).
		if m.state.Swap(2) == 0 {
			return
		}
		<-m.sema
	}
}

// TryLock acquires the mutex iff it is free.
func (m *BargingMutex) TryLock() bool { return m.state.CompareAndSwap(0, 1) }

// IsFree reports whether the mutex is currently free.
func (m *BargingMutex) IsFree() bool { return m.state.Load() == 0 }

// Unlock releases the mutex and wakes one sleeper if any may exist.
func (m *BargingMutex) Unlock() {
	if m.state.Swap(0) == 2 {
		m.init()
		select {
		case m.sema <- struct{}{}:
		default:
			// A wake token is already pending; one sleeper will run.
		}
	}
}
