package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// tryFactories is the base comparison set whose TryAcquire is a real
// try (success iff the lock was free), so the Contended counter
// arithmetic below is exact. Biased sits outside this set — its
// foreign-try semantics are pinned separately by
// TestContentionCountsBiasedForeignTry.
func tryFactories() []struct {
	name string
	f    Factory
} {
	return []struct {
		name string
		f    Factory
	}{
		{"pthread", FactoryPthread()},
		{"sync-mutex", FactorySyncMutex()},
		{"ticket", FactoryTicket()},
		{"mcs", FactoryMCS()},
		{"tas", FactoryTAS(core.Big, 0)},
		{"proportional", FactoryProportional(2)},
		{"asl", FactoryASL()},
		{"asl-blocking", FactoryASLBlocking()},
		{"cohort", func() WLock { return WrapCohort(NewCohortAMP()) }},
	}
}

// TestContentionCountsFreeAndHeld checks the counter semantics on
// every lock family: an acquire of a free lock is an uncontended
// attempt, a failed try on a held lock is a contended attempt, and a
// blocking acquire that had to wait is a contended attempt.
func TestContentionCountsFreeAndHeld(t *testing.T) {
	for _, tf := range tryFactories() {
		t.Run(tf.name, func(t *testing.T) {
			c := WithContention(tf.f())
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			other := core.NewWorker(core.WorkerConfig{Class: core.Little})

			c.Acquire(w)
			if s := c.Stats(); s.Attempts != 1 || s.Contended != 0 {
				t.Fatalf("after free Acquire: %+v, want 1 attempt, 0 contended", s)
			}
			if c.TryAcquire(other) {
				t.Fatal("TryAcquire succeeded while held")
			}
			if s := c.Stats(); s.Attempts != 2 || s.Contended != 1 {
				t.Fatalf("after failed try: %+v, want 2 attempts, 1 contended", s)
			}

			// A blocking acquire that finds the lock held must count
			// contended exactly once, then proceed when released.
			acquired := make(chan struct{})
			go func() {
				c.Acquire(other)
				close(acquired)
			}()
			// Wait until the waiter has registered its contended attempt.
			for {
				if s := c.Stats(); s.Contended >= 2 {
					break
				}
				runtime.Gosched()
			}
			c.Release(w)
			<-acquired
			c.Release(other)
			if s := c.Stats(); s.Attempts != 3 || s.Contended != 2 {
				t.Fatalf("after blocked Acquire: %+v, want 3 attempts, 2 contended", s)
			}

			// Uncontended again once free.
			if !c.TryAcquire(w) {
				t.Fatal("TryAcquire on a free lock failed")
			}
			c.Release(w)
			if s := c.Stats(); s.Attempts != 4 || s.Contended != 2 {
				t.Fatalf("after free try: %+v, want 4 attempts, 2 contended", s)
			}
		})
	}
}

// TestContentionMutualExclusion re-runs the try/acquire mixed-worker
// hammer through the Contended wrapper on every family: counting must
// not break mutual exclusion, attempts must cover every entry, and
// contended must never exceed attempts. Run with -race.
func TestContentionMutualExclusion(t *testing.T) {
	const (
		workers = 8
		rounds  = 1500
	)
	for _, tf := range tryFactories() {
		t.Run(tf.name, func(t *testing.T) {
			c := WithContention(tf.f())
			var counter int
			var tries atomic.Uint64
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					class := core.Big
					if i%2 == 1 {
						class = core.Little
					}
					w := core.NewWorker(core.WorkerConfig{Class: class})
					for r := 0; r < rounds; r++ {
						if i%2 == 0 {
							for !c.TryAcquire(w) {
								tries.Add(1)
								runtime.Gosched()
							}
							tries.Add(1)
						} else {
							c.Acquire(w)
						}
						counter++
						c.Release(w)
					}
				}(i)
			}
			wg.Wait()
			if counter != workers*rounds {
				t.Fatalf("lost updates: counter = %d, want %d", counter, workers*rounds)
			}
			s := c.Stats()
			wantAttempts := tries.Load() + uint64(workers/2*rounds)
			if s.Attempts != wantAttempts {
				t.Fatalf("Attempts = %d, want %d (every entry counted once)", s.Attempts, wantAttempts)
			}
			if s.Contended > s.Attempts {
				t.Fatalf("Contended %d exceeds Attempts %d", s.Contended, s.Attempts)
			}
			if f := s.ContendedFrac(); f < 0 || f > 1 {
				t.Fatalf("ContendedFrac = %v out of [0,1]", f)
			}
		})
	}
}

// TestContentionCountsBiasedForeignTry closes the seed-carried gap:
// the Contended counters must also cover the wrapped-TryAcquire-
// failure path where the inner lock is FREE but refuses the try —
// exactly what a live foreign bias does (the probe is absorbed). This
// is Biased's revoke-on-contention signal into the shardedkv skew
// detector: a biased shard under real foreign traffic accumulates
// contended attempts even though no one is queued, so the detector
// sees it without any special-casing. Pinned by test, not convention.
func TestContentionCountsBiasedForeignTry(t *testing.T) {
	owner := core.NewWorker(core.WorkerConfig{Class: core.Big})
	foreign := core.NewWorker(core.WorkerConfig{Class: core.Little})

	b := NewBiased(FactorySyncMutex()(), BiasedConfig{AdoptWindow: 64, RevokeTries: 100})
	c := WithContention(b)

	// One hinted slow take adopts the owner.
	b.HintAdopt(owner)
	c.Acquire(owner)
	c.Release(owner)
	if b.Owner() != owner {
		t.Fatal("owner not adopted at the hinted release")
	}
	if s := c.Stats(); s.Attempts != 1 || s.Contended != 0 {
		t.Fatalf("after adopting Acquire: %+v, want 1 attempt, 0 contended", s)
	}

	// The bias is live and the lock is FREE; a foreign TryAcquire
	// through Contended still fails (absorbed probe) and must count
	// as a contended attempt — the skew-detector feed.
	if c.TryAcquire(foreign) {
		t.Fatal("foreign TryAcquire succeeded against a live bias under the revoke budget")
	}
	if s := c.Stats(); s.Attempts != 2 || s.Contended != 1 {
		t.Fatalf("after absorbed foreign try: %+v, want 2 attempts, 1 contended", s)
	}
	if b.Owner() != owner {
		t.Fatal("absorbed probe must not revoke the bias")
	}

	// A foreign blocking Acquire routes through the same failed
	// opening try (contended++), then revokes on the slow path.
	c.Acquire(foreign)
	if s := c.Stats(); s.Attempts != 3 || s.Contended != 2 {
		t.Fatalf("after foreign blocking Acquire: %+v, want 3 attempts, 2 contended", s)
	}
	if b.Owner() != nil {
		t.Fatal("foreign blocking Acquire must revoke the bias")
	}
	c.Release(foreign)

	if bs := b.Stats(); bs.Adoptions != 1 || bs.Revocations != 1 || bs.ForeignTries != 2 {
		t.Fatalf("bias stats %+v, want 1 adoption, 1 revocation, 2 foreign tries", bs)
	}
}

// TestFactoryContended checks the factory wrapper yields independent
// counters per lock.
func TestFactoryContended(t *testing.T) {
	f := FactoryContended(FactorySyncMutex())
	l1, l2 := f(), f()
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	l1.Acquire(w)
	l1.Release(w)
	c1, ok1 := l1.(*Contended)
	c2, ok2 := l2.(*Contended)
	if !ok1 || !ok2 {
		t.Fatal("FactoryContended must build *Contended locks")
	}
	if s := c1.Stats(); s.Attempts != 1 {
		t.Fatalf("l1 attempts = %d, want 1", s.Attempts)
	}
	if s := c2.Stats(); s.Attempts != 0 {
		t.Fatalf("l2 attempts = %d, want 0 (counters must be per lock)", s.Attempts)
	}
}
