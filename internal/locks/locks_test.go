package locks

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// The shared mutual-exclusion / TryAcquire torture checker for every
// family lives in harness_test.go; this file keeps the per-family
// policy tests (FIFO order, barging, affinity, proportional grants)
// and the plain-Locker IsFree conformance the WLock surface hides.

// full is the interface every plain lock in this package satisfies.
type full interface {
	Locker
	TryLock() bool
	IsFree() bool
}

// allLocks enumerates every plain Locker implementation.
func allLocks() map[string]func() full {
	return map[string]func() full{
		"tas":     func() full { return new(TAS) },
		"ttas":    func() full { return new(TTAS) },
		"backoff": func() full { return new(Backoff) },
		"ticket":  func() full { return new(Ticket) },
		"clh":     func() full { return new(CLH) },
		"mcs":     func() full { return new(MCS) },
		"mcspark": func() full { return new(MCSPark) },
		"barging": func() full { return new(BargingMutex) },
		"prop":    func() full { return new(Proportional) },
		"cohort":  func() full { return NewCohortAMP() },
		"reorder": func() full { return NewReorderable(new(MCS)) },
	}
}

// TestIsFreeConformance pins the IsFree transitions the standby
// competitors rely on: held ⇒ not free, released ⇒ free.
func TestIsFreeConformance(t *testing.T) {
	for name, mk := range allLocks() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			if !l.IsFree() {
				t.Fatal("fresh lock must report free")
			}
			if !l.TryLock() {
				t.Fatal("TryLock on a free lock must succeed")
			}
			if l.IsFree() {
				t.Fatal("held lock must not report free")
			}
			l.Unlock()
			if !l.IsFree() {
				t.Fatal("released lock must report free")
			}
			// Usable again through the normal path.
			l.Lock()
			l.Unlock()
		})
	}
}

// TestMCSFIFOOrder verifies arrival-order handover: a goroutine that
// enqueues while the lock is held must acquire before one that
// enqueues after it.
func TestMCSFIFOOrder(t *testing.T) {
	for name, mk := range map[string]func() FIFOLock{
		"mcs":     func() FIFOLock { return new(MCS) },
		"mcspark": func() FIFOLock { return new(MCSPark) },
		"ticket":  func() FIFOLock { return new(Ticket) },
	} {
		t.Run(name, func(t *testing.T) {
			l := mk()
			l.Lock() // hold so waiters queue up

			const waiters = 6
			var order []int
			var mu sync.Mutex
			var wg sync.WaitGroup
			// Launch waiters with generous spacing so each Lock call is
			// (with overwhelming likelihood) enqueued before the next
			// goroutine starts.
			for i := 0; i < waiters; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					l.Lock()
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
					l.Unlock()
				}()
				time.Sleep(20 * time.Millisecond)
			}
			l.Unlock()
			wg.Wait()
			for i := 1; i < len(order); i++ {
				if order[i] < order[i-1] {
					t.Fatalf("%s violated FIFO: %v", name, order)
				}
			}
		})
	}
}

func TestBargingMutexAllowsBarging(t *testing.T) {
	// Not an ordering guarantee test — just documents that a TryLock
	// (barging CAS) can succeed the instant the lock is free even with
	// sleepers present; pthread semantics.
	var m BargingMutex
	m.Lock()
	woke := make(chan struct{})
	go func() {
		m.Lock() // sleeps
		m.Unlock()
		close(woke)
	}()
	time.Sleep(10 * time.Millisecond) // let the sleeper park
	m.Unlock()
	<-woke // the sleeper must still eventually acquire (no lost wakeup)
}

func TestBargingNoLostWakeup(t *testing.T) {
	// Repeatedly create contention bursts; a lost wakeup would hang.
	var m BargingMutex
	for round := 0; round < 200; round++ {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.Lock()
				m.Unlock()
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("lost wakeup: workers hung")
		}
	}
}

func TestTASAffinityBias(t *testing.T) {
	// With a strong big-core bias, big-class workers should win far
	// more acquisitions under contention.
	var l TAS
	l.SetAffinity(core.Big, 16)
	var bigWins, littleWins atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.LockClass(core.Big)
				bigWins.Add(1)
				l.Unlock()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.LockClass(core.Little)
				littleWins.Add(1)
				l.Unlock()
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	b, lw := bigWins.Load(), littleWins.Load()
	if b < lw {
		t.Fatalf("big-biased TAS: big=%d little=%d, want big ahead", b, lw)
	}
}

func TestTASAffinityDisabled(t *testing.T) {
	var l TAS
	l.SetAffinity(core.Big, 1) // factor < 2 disables
	l.LockClass(core.Little)   // must not hang or bias-panic
	l.Unlock()
}

func TestProportionalPolicy(t *testing.T) {
	// Single-threaded policy check via the internal queues: with N=2,
	// the release order of queued waiters must be B B L B B L ...
	p := &Proportional{N: 2}
	p.Lock() // hold

	var order []core.Class
	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(c core.Class) {
		mu.Lock()
		order = append(order, c)
		mu.Unlock()
	}
	// Enqueue 4 bigs and 4 littles (waiting while we hold the lock).
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			p.LockClass(core.Big)
			record(core.Big)
			time.Sleep(time.Millisecond)
			p.Unlock()
		}()
		go func() {
			defer wg.Done()
			p.LockClass(core.Little)
			record(core.Little)
			time.Sleep(time.Millisecond)
			p.Unlock()
		}()
	}
	time.Sleep(50 * time.Millisecond) // let everyone queue
	p.Unlock()
	wg.Wait()

	bigs, littles := 0, 0
	for _, c := range order {
		if c == core.Big {
			bigs++
		} else {
			littles++
		}
	}
	if bigs != 4 || littles != 4 {
		t.Fatalf("order incomplete: %v", order)
	}
	// The first three grants must contain at least two bigs (policy
	// N=2 admits a little only after two bigs).
	firstBigs := 0
	for _, c := range order[:3] {
		if c == core.Big {
			firstBigs++
		}
	}
	if firstBigs < 2 {
		t.Fatalf("proportional policy violated: %v", order)
	}
}
