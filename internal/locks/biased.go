package locks

import (
	"sync/atomic"

	"repro/internal/core"
)

// Biased wraps any WLock with single-owner bias in the spirit of the
// paper's asymmetric locks (and of JVM biased locking / Fissile
// Locks): once one worker is observed taking almost every acquisition,
// it is adopted as the owner and from then on acquires and releases
// with plain atomic loads and stores on a private cookie — no
// contended RMW, no queue traffic. Everyone else pays: a non-owner
// first acquires the wrapped lock, then runs an epoch/handshake grace
// period (the Go stand-in for an asymmetric membarrier) that waits
// until the owner is provably outside its critical section before the
// bias is torn down and the lock reverts to the wrapped protocol.
//
// The exclusion argument is the classic store-buffering (Dekker)
// pattern over Go's sequentially consistent sync/atomic: the owner
// publishes "inside" (epoch odd) and then checks revoked; the revoker
// publishes revoked and then checks the epoch. SC forbids both sides
// reading the other's old value, so either the owner sees the
// revocation and rolls back to the slow path, or the revoker sees the
// owner inside and waits the grace period out.
//
// The cookie is one-shot: a revoked bias never resurrects; a new
// adoption mints a fresh cookie. Adoption happens only in the
// slow-path release while the wrapped lock is held, fed either by the
// standalone windowed take counter or by an external HintAdopt from
// the shardedkv combining pipeline's per-shard CombineStats.
type Biased struct {
	inner WLock
	owner atomic.Pointer[bownerRec]
	hint  atomic.Pointer[core.Worker]
	cfg   BiasedConfig

	// Adoption window state. Guarded by the inner lock: only touched
	// in the slow-path release, which always holds it.
	cand  *core.Worker
	hits  uint32
	total uint32

	adoptions    atomic.Uint64
	revocations  atomic.Uint64
	fastAcquires atomic.Uint64
	slowAcquires atomic.Uint64
	foreignTries atomic.Uint64
}

// bownerRec is one bias cookie. epoch is written ONLY by the owner
// (load-then-store, never an RMW): even = outside the critical
// section, odd = inside. revoked is sticky — once set the cookie is
// dying and the owner's next fast-path attempt rolls back to the slow
// path. tries counts foreign TryAcquire successes absorbed against
// this cookie before one of them is allowed to revoke it.
type bownerRec struct {
	w       *core.Worker
	epoch   atomic.Uint64
	revoked atomic.Uint32
	tries   atomic.Uint32
}

// BiasedConfig tunes adoption and revocation. The zero value picks
// the defaults noted per field.
type BiasedConfig struct {
	// AdoptWindow is how many slow-path releases form one adoption
	// window (default 64). At the window boundary the dominant taker
	// is adopted if it cleared AdoptPercent.
	AdoptWindow uint32
	// AdoptPercent is the minimum take share, in percent, a single
	// worker must reach within a window to be adopted (default 90 —
	// the ROADMAP's ">90% of lock takes" signal).
	AdoptPercent uint32
	// RevokeTries is how many successful-but-foreign TryAcquires are
	// absorbed (fail without revoking) before one revokes the bias
	// (default 8). This keeps the combining pipeline's election
	// probes from tearing down a healthy bias, while guaranteeing
	// probes alone still reclaim an abandoned one.
	RevokeTries uint32
}

// BiasStats is a point-in-time counter snapshot.
type BiasStats struct {
	// Adoptions counts cookies minted; Revocations counts cookies
	// torn down (Adoptions - Revocations ∈ {0, 1} is the live bias).
	Adoptions   uint64
	Revocations uint64
	// FastAcquires are owner acquisitions that touched only the
	// cookie; SlowAcquires went through the wrapped lock. Their sum
	// is every successful acquisition.
	FastAcquires uint64
	SlowAcquires uint64
	// ForeignTries counts TryAcquire attempts that met a live foreign
	// bias (whether absorbed or revoking).
	ForeignTries uint64
}

// Add accumulates o into s (shard aggregation).
func (s *BiasStats) Add(o BiasStats) {
	s.Adoptions += o.Adoptions
	s.Revocations += o.Revocations
	s.FastAcquires += o.FastAcquires
	s.SlowAcquires += o.SlowAcquires
	s.ForeignTries += o.ForeignTries
}

// NewBiased wraps inner with bias; cfg zero value = defaults.
func NewBiased(inner WLock, cfg BiasedConfig) *Biased {
	return &Biased{inner: inner, cfg: cfg}
}

// FactoryBiased composes bias into a lock factory, for use in the
// shardedkv factory/Contended/ClassProbe stack (the store wraps the
// result with Contended, so election probes bypass the wait counters
// and real waits against a biased shard feed the skew detector).
func FactoryBiased(f Factory, cfg BiasedConfig) Factory {
	return func() WLock { return NewBiased(f(), cfg) }
}

// Inner exposes the wrapped lock.
func (b *Biased) Inner() WLock { return b.inner }

func (b *Biased) adoptWindow() uint32 {
	if b.cfg.AdoptWindow == 0 {
		return 64
	}
	return b.cfg.AdoptWindow
}

func (b *Biased) adoptPercent() uint32 {
	if b.cfg.AdoptPercent == 0 {
		return 90
	}
	return b.cfg.AdoptPercent
}

func (b *Biased) revokeTries() uint32 {
	if b.cfg.RevokeTries == 0 {
		return 8
	}
	return b.cfg.RevokeTries
}

// Stats snapshots the counters.
func (b *Biased) Stats() BiasStats {
	return BiasStats{
		Adoptions:    b.adoptions.Load(),
		Revocations:  b.revocations.Load(),
		FastAcquires: b.fastAcquires.Load(),
		SlowAcquires: b.slowAcquires.Load(),
		ForeignTries: b.foreignTries.Load(),
	}
}

// Owner reports the live bias owner, or nil when unbiased or the
// current cookie is already dying.
func (b *Biased) Owner() *core.Worker {
	if rec := b.owner.Load(); rec != nil && rec.revoked.Load() == 0 {
		return rec.w
	}
	return nil
}

// HintAdopt stages w for adoption at the next slow-path release —
// the external adoption signal (the combining pipeline calls this
// when CombineStats show one worker draining a shard). A hint
// replaces the windowed counter's verdict for that release.
func (b *Biased) HintAdopt(w *core.Worker) { b.hint.Store(w) }

// Acquire takes the lock. The owner's fast path is two plain stores
// and two loads on its cookie; everyone else (and a revoked owner)
// goes through the wrapped lock and tears any live bias down first.
func (b *Biased) Acquire(w *core.Worker) {
	if rec := b.owner.Load(); rec != nil && rec.w == w {
		e := rec.epoch.Load()
		rec.epoch.Store(e + 1) // odd: inside (owner-only write, no RMW)
		if rec.revoked.Load() == 0 {
			b.fastAcquires.Add(1)
			return
		}
		rec.epoch.Store(e + 2) // roll back outside before queueing
	}
	b.inner.Acquire(w)
	b.clearBias()
	b.slowAcquires.Add(1)
}

// clearBias revokes and unlinks any live cookie. Caller holds inner,
// so no new cookie can be adopted underneath the loop.
func (b *Biased) clearBias() {
	for {
		rec := b.owner.Load()
		if rec == nil {
			return
		}
		rec.revoked.Store(1)
		waitOutside(rec)
		if b.owner.CompareAndSwap(rec, nil) {
			b.revocations.Add(1)
		}
	}
}

// waitOutside is the grace period: spin until the cookie's epoch
// parity shows the owner outside its critical section. Once revoked
// is set the owner can never re-enter the fast path, so one observed
// even parity is terminal.
func waitOutside(rec *bownerRec) {
	var s spinner
	for rec.epoch.Load()&1 == 1 {
		s.spin()
	}
}

// Release returns the lock. Dispatch is exact: a live cookie for w at
// odd parity means w holds via the fast path (a worker that fell to
// the slow path always rolled its cookie back to even, or cleared it).
func (b *Biased) Release(w *core.Worker) {
	if rec := b.owner.Load(); rec != nil && rec.w == w && rec.epoch.Load()&1 == 1 {
		rec.epoch.Store(rec.epoch.Load() + 1) // even: outside
		return
	}
	b.slowRelease(w)
}

// slowRelease runs the adoption bookkeeping (we hold inner) and then
// releases the wrapped lock. Installing the cookie before the release
// makes adoption atomic: any worker already queued on inner revokes
// it after acquiring, via the normal handshake.
func (b *Biased) slowRelease(w *core.Worker) {
	target := b.hint.Swap(nil)
	if target == nil {
		if b.total == 0 {
			b.cand, b.hits = w, 0
		}
		b.total++
		if b.cand == w {
			b.hits++
		}
		if b.total >= b.adoptWindow() {
			if b.cand != nil && b.hits*100 >= b.total*b.adoptPercent() {
				target = b.cand
			}
			b.cand, b.hits, b.total = nil, 0, 0
		}
	} else {
		b.cand, b.hits, b.total = nil, 0, 0
	}
	if target != nil && b.owner.Load() == nil {
		b.owner.Store(&bownerRec{w: target})
		b.adoptions.Add(1)
	}
	b.inner.Release(w)
}

// TryAcquire is non-blocking in every state. The owner uses the fast
// path. A foreign try may succeed on the wrapped lock even while the
// bias is live (the inner lock is free then — the cookie IS the
// lock); the first RevokeTries-1 such successes are absorbed (inner
// released, false returned) so election probes don't kill a healthy
// bias, after which one try revokes — but only if the owner is
// provably outside its CS, since a try must not block on the grace
// period.
func (b *Biased) TryAcquire(w *core.Worker) bool {
	if rec := b.owner.Load(); rec != nil && rec.w == w {
		e := rec.epoch.Load()
		rec.epoch.Store(e + 1)
		if rec.revoked.Load() == 0 {
			b.fastAcquires.Add(1)
			return true
		}
		rec.epoch.Store(e + 2)
	}
	if !b.inner.TryAcquire(w) {
		return false
	}
	rec := b.owner.Load()
	if rec == nil {
		b.slowAcquires.Add(1)
		return true
	}
	if rec.w != w && rec.revoked.Load() == 0 {
		b.foreignTries.Add(1)
		if rec.tries.Add(1) < b.revokeTries() {
			b.inner.Release(w)
			return false
		}
	}
	rec.revoked.Store(1)
	if rec.epoch.Load()&1 == 1 {
		// Owner inside its CS: the handshake would block. Give up the
		// inner lock; the cookie stays dying and the next blocking
		// acquire (or the owner's own rollback) finishes the teardown.
		b.inner.Release(w)
		return false
	}
	if b.owner.CompareAndSwap(rec, nil) {
		b.revocations.Add(1)
	}
	b.slowAcquires.Add(1)
	return true
}

// Revoke tears down any live bias without taking the lock: it marks
// the cookie revoked, waits the epoch/handshake grace period out, and
// unlinks the cookie. The wait is unbounded if the owner is parked
// mid-CS, which makes Revoke an fsync-class operation: never call it
// while holding a shard lock (the lockheldcall analyzer enforces
// this, same as wal.Log.Commit).
func (b *Biased) Revoke(w *core.Worker) {
	rec := b.owner.Load()
	if rec == nil {
		return
	}
	rec.revoked.Store(1)
	waitOutside(rec)
	if b.owner.CompareAndSwap(rec, nil) {
		b.revocations.Add(1)
	}
}
