package locks

import (
	"sync"
	"sync/atomic"
)

// clhNode is one CLH queue cell. A waiter spins on its predecessor's
// cell, so the queue is implicit (each thread holds its own cell and
// inherits the predecessor's for reuse — the classic CLH recycling).
type clhNode struct {
	_      pad
	locked atomic.Bool
	_      pad
}

// CLH is the Craig–Landin–Hagersten queue lock: FIFO like MCS but
// spinning on the predecessor's node rather than the waiter's own.
// The paper's related work builds hierarchical NUMA locks from it
// (HCLH); here it serves as an alternative FIFO substrate for the
// reorderable lock and as a baseline.
type CLH struct {
	_    pad
	tail atomic.Pointer[clhNode]
	_    pad
	// holder state: the node we hold and the predecessor cell we will
	// reuse for our next acquisition (single holder ⇒ race-free).
	mine *clhNode
	pool sync.Pool
	once sync.Once
}

func (c *CLH) init() {
	c.once.Do(func() {
		// The queue starts with one unlocked sentinel.
		s := &clhNode{}
		c.tail.Store(s)
	})
}

func (c *CLH) getNode() *clhNode {
	if n, ok := c.pool.Get().(*clhNode); ok {
		return n
	}
	return &clhNode{}
}

// Lock acquires in FIFO order.
func (c *CLH) Lock() {
	c.init()
	n := c.getNode()
	n.locked.Store(true)
	prev := c.tail.Swap(n)
	var s spinner
	for prev.locked.Load() {
		s.spin()
	}
	// We own the lock; prev is now free for recycling.
	c.mine = n
	c.pool.Put(prev)
}

// TryLock acquires iff the lock is free with no waiters.
func (c *CLH) TryLock() bool {
	c.init()
	t := c.tail.Load()
	if t.locked.Load() {
		return false
	}
	n := c.getNode()
	n.locked.Store(true)
	if c.tail.CompareAndSwap(t, n) {
		c.mine = n
		c.pool.Put(t)
		return true
	}
	c.pool.Put(n)
	return false
}

// IsFree reports whether the lock looks free (tail unlocked).
func (c *CLH) IsFree() bool {
	c.init()
	return !c.tail.Load().locked.Load()
}

// Unlock releases the lock. The holder slot is cleared before the
// releasing store: the successor only writes its own slot after
// observing that store, so the accesses are ordered.
func (c *CLH) Unlock() {
	n := c.mine
	c.mine = nil
	n.locked.Store(false)
}
