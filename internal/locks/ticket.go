package locks

import "sync/atomic"

// Ticket is the classic FIFO ticket lock: arrivals take a ticket with a
// fetch-and-add and spin until the grant counter reaches it. Like MCS
// it preserves short-term acquisition fairness, which is exactly the
// property that collapses on AMP (paper Implication 1); it is one of
// the evaluated baselines (Figs. 8a, 8g, 9, 10).
type Ticket struct {
	_     pad
	next  atomic.Uint64
	_     pad
	owner atomic.Uint64
	_     pad
}

// Lock takes a ticket and waits for its turn.
func (t *Ticket) Lock() {
	me := t.next.Add(1) - 1
	var s spinner
	for t.owner.Load() != me {
		s.spin()
	}
}

// TryLock acquires the lock iff no one holds or awaits it.
func (t *Ticket) TryLock() bool {
	o := t.owner.Load()
	// The lock is free iff next == owner; taking ticket o via CAS both
	// checks freedom and acquires in one step.
	return t.next.CompareAndSwap(o, o+1)
}

// IsFree reports whether the lock is free with no waiters.
func (t *Ticket) IsFree() bool {
	o := t.owner.Load()
	return t.next.Load() == o
}

// Unlock grants the lock to the next ticket holder.
func (t *Ticket) Unlock() { t.owner.Add(1) }
