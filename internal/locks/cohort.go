package locks

import (
	"sync/atomic"

	"repro/internal/core"
)

// Cohort implements lock cohorting (Dice, Marathe, Shavit — the
// paper's reference [38]): a global lock plus one local lock per
// cohort. A releasing holder passes ownership of the global lock to a
// cohort-mate if one is waiting (up to a batching budget), saving the
// global handover. On NUMA the cohorts are nodes; the paper's "Target
// systems" discussion proposes exactly this as LibASL's substrate for
// future AMPs with large core counts — Reorderable accepts a Cohort as
// its FIFO layer (it satisfies FIFOLock), giving "NUMA-locality in the
// waiting queue, big-core priority on top".
//
// For the AMP build, the natural cohorts are the two core classes
// (one cluster each on the M1), so NewCohortAMP sizes it at two.
type Cohort struct {
	global Ticket
	locals []cohortLocal
	// Budget bounds consecutive in-cohort handovers before the global
	// lock is released (long-term fairness across cohorts). Zero
	// means 32.
	Budget int32
}

type cohortLocal struct {
	_ pad
	// lock is the local MCS-style lock members acquire first.
	lock MCS
	// ownsGlobal marks that the cohort currently holds the global
	// lock, so a local successor may skip the global acquisition.
	ownsGlobal atomic.Bool
	// passes counts consecutive local handovers under one global hold.
	passes atomic.Int32
	// waiters counts members queued on the local lock.
	waiters atomic.Int32
	_       pad
}

// NewCohortAMP returns a two-cohort lock (one cohort per core class).
func NewCohortAMP() *Cohort { return NewCohort(2) }

// NewCohort returns a lock with n cohorts.
func NewCohort(n int) *Cohort {
	if n < 1 {
		n = 1
	}
	return &Cohort{locals: make([]cohortLocal, n)}
}

func (c *Cohort) budget() int32 {
	if c.Budget <= 0 {
		return 32
	}
	return c.Budget
}

// LockCohort acquires as a member of cohort i.
func (c *Cohort) LockCohort(i int) {
	l := &c.locals[i%len(c.locals)]
	l.waiters.Add(1)
	l.lock.Lock()
	l.waiters.Add(-1)
	// Local lock held. If the cohort already owns the global lock the
	// previous holder passed it to us; otherwise acquire it.
	if l.ownsGlobal.Load() {
		return
	}
	c.global.Lock()
	l.ownsGlobal.Store(true)
	l.passes.Store(0)
}

// UnlockCohort releases as a member of cohort i.
func (c *Cohort) UnlockCohort(i int) {
	l := &c.locals[i%len(c.locals)]
	// Pass within the cohort when someone is waiting and the batching
	// budget allows; otherwise release globally.
	if l.waiters.Load() > 0 && l.passes.Add(1) < c.budget() {
		l.lock.Unlock() // global ownership stays with the cohort
		return
	}
	l.ownsGlobal.Store(false)
	l.passes.Store(0)
	c.global.Unlock()
	l.lock.Unlock()
}

// Lock acquires as cohort 0 (plain Locker compatibility).
func (c *Cohort) Lock() { c.LockCohort(0) }

// Unlock releases as cohort 0.
func (c *Cohort) Unlock() { c.UnlockCohort(0) }

// TryLock acquires iff both levels are immediately available
// (cohort 0).
func (c *Cohort) TryLock() bool { return c.TryLockCohort(0) }

// TryLockCohort acquires as a member of cohort i iff both the local
// and (unless the cohort already owns it) the global lock are
// immediately available. A successful try is released with
// UnlockCohort(i).
func (c *Cohort) TryLockCohort(i int) bool {
	l := &c.locals[i%len(c.locals)]
	if !l.lock.TryLock() {
		return false
	}
	if l.ownsGlobal.Load() {
		return true
	}
	if c.global.TryLock() {
		l.ownsGlobal.Store(true)
		l.passes.Store(0)
		return true
	}
	l.lock.Unlock()
	return false
}

// IsFree reports whether the global lock is free (approximation used
// by standby competitors).
func (c *Cohort) IsFree() bool { return c.global.IsFree() }

// CohortW adapts the class-to-cohort mapping for WLock use: big cores
// form cohort 0, little cores cohort 1 — each M1 cluster is a cohort.
type cohortW struct{ c *Cohort }

// WrapCohort adapts a Cohort so workers map to class cohorts.
func WrapCohort(c *Cohort) WLock { return cohortW{c} }

func (a cohortW) Acquire(w *core.Worker) { a.c.LockCohort(int(w.Class())) }
func (a cohortW) Release(w *core.Worker) { a.c.UnlockCohort(int(w.Class())) }

// TryAcquire tries as a member of the worker's class cohort, so a
// successful try is released through the same cohort's unlock path.
func (a cohortW) TryAcquire(w *core.Worker) bool { return a.c.TryLockCohort(int(w.Class())) }
