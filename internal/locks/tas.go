package locks

import (
	"sync/atomic"

	"repro/internal/core"
)

// TAS is the plain test-and-set spinlock used as the unfair baseline
// throughout the paper's evaluation. It has no queue: whoever wins the
// atomic swap owns the lock, so acquisition order is arbitrary and, on
// asymmetric hardware, systematically biased toward one core class.
//
// Because this reproduction runs on symmetric hardware, the hardware
// bias does not arise by itself; SetAffinity injects it (see DESIGN.md).
// With no affinity configured, TAS behaves like a regular unfair
// spinlock.
type TAS struct {
	_     pad
	state atomic.Uint32
	_     pad
	aff   affinity
}

// affinity emulates the asymmetric atomic-operation success rate the
// paper observed on AMP hardware (§2.2, footnote 1). The disadvantaged
// class attempts the swap only once every Factor spin iterations, while
// the favoured class attempts on every iteration, giving the favoured
// class roughly Factor× the success rate under contention.
type affinity struct {
	enabled  bool
	favoured core.Class
	factor   uint
}

// SetAffinity configures the emulated atomic-success bias: favoured
// wins roughly factor times as often as the other class under
// contention. factor < 2 disables the bias.
func (t *TAS) SetAffinity(favoured core.Class, factor uint) {
	if factor < 2 {
		t.aff = affinity{}
		return
	}
	t.aff = affinity{enabled: true, favoured: favoured, factor: factor}
}

// Lock acquires the lock with no class bias.
func (t *TAS) Lock() { t.lockBiased(false) }

// LockClass acquires the lock as a competitor of class c, honouring any
// configured affinity bias. Harness code uses this entry point; plain
// library users call Lock.
func (t *TAS) LockClass(c core.Class) {
	t.lockBiased(t.aff.enabled && c != t.aff.favoured)
}

func (t *TAS) lockBiased(handicapped bool) {
	var s spinner
	n := uint(0)
	for {
		n++
		if !handicapped || n%t.aff.factor == 0 {
			if t.state.CompareAndSwap(0, 1) {
				return
			}
		}
		s.spin()
	}
}

// TryLock acquires the lock iff it is free.
func (t *TAS) TryLock() bool { return t.state.CompareAndSwap(0, 1) }

// IsFree reports whether the lock is currently free.
func (t *TAS) IsFree() bool { return t.state.Load() == 0 }

// Unlock releases the lock.
func (t *TAS) Unlock() { t.state.Store(0) }

// TTAS is the test-and-test-and-set variant: it spins on a read until
// the lock looks free, then attempts the swap, which keeps the
// contended line in shared state between handovers.
type TTAS struct {
	_     pad
	state atomic.Uint32
	_     pad
}

// Lock acquires the lock.
func (t *TTAS) Lock() {
	var s spinner
	for {
		if t.state.Load() == 0 && t.state.CompareAndSwap(0, 1) {
			return
		}
		s.spin()
	}
}

// TryLock acquires the lock iff it is free.
func (t *TTAS) TryLock() bool {
	return t.state.Load() == 0 && t.state.CompareAndSwap(0, 1)
}

// IsFree reports whether the lock is currently free.
func (t *TTAS) IsFree() bool { return t.state.Load() == 0 }

// Unlock releases the lock.
func (t *TTAS) Unlock() { t.state.Store(0) }

// Backoff is a test-and-set lock with bounded exponential backoff
// between attempts. §3.4 of the paper notes that LibASL's standby
// competitors make little cores behave like a backoff spinlock, which
// is scalable among same-class competitors; this is that baseline.
type Backoff struct {
	_     pad
	state atomic.Uint32
	_     pad
	// MinSpin/MaxSpin bound the backoff in spin units; zero values get
	// defaults.
	MinSpin, MaxSpin uint
}

// Lock acquires the lock.
func (b *Backoff) Lock() {
	minS, maxS := b.MinSpin, b.MaxSpin
	if minS == 0 {
		minS = 4
	}
	if maxS == 0 {
		maxS = 4096
	}
	bo := newBackoff(minS, maxS)
	for {
		if b.state.Load() == 0 && b.state.CompareAndSwap(0, 1) {
			return
		}
		bo.wait()
	}
}

// TryLock acquires the lock iff it is free.
func (b *Backoff) TryLock() bool {
	return b.state.Load() == 0 && b.state.CompareAndSwap(0, 1)
}

// IsFree reports whether the lock is currently free.
func (b *Backoff) IsFree() bool { return b.state.Load() == 0 }

// Unlock releases the lock.
func (b *Backoff) Unlock() { b.state.Store(0) }
