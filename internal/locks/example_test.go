package locks_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
)

// ExampleASLMutex shows the paper's usage model (Fig. 6): classify the
// worker, annotate the latency-critical region as an epoch, lock as
// usual.
func ExampleASLMutex() {
	mu := locks.NewASLMutexDefault()
	w := core.NewWorker(core.WorkerConfig{Class: core.Little})

	counter := 0
	w.EpochStart(5) // epoch id 5, as in the paper's example
	mu.Lock(w)
	counter++
	mu.Unlock(w)
	latency := w.EpochEnd(5, int64(time.Millisecond)) // SLO: 1 ms

	fmt.Println(counter, latency >= 0)
	// Output: 1 true
}

// ExampleReorderable demonstrates the two acquisition paths of the
// reorderable lock (Algorithm 1).
func ExampleReorderable() {
	r := locks.NewReorderable(new(locks.MCS))

	// Big cores enqueue immediately.
	r.LockImmediately()
	r.Unlock()

	// Little cores stand by for up to a reorder window; on a free lock
	// they acquire instantly.
	r.LockReorder(int64(100 * time.Microsecond))
	r.Unlock()

	fmt.Println(r.IsFree())
	// Output: true
}

// ExampleASLMutex_bind shows the sync.Locker view used for APIs such
// as sync.Cond.
func ExampleASLMutex_bind() {
	mu := locks.NewASLMutexDefault()
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})

	l := mu.Bind(w) // plain sync.Locker
	l.Lock()
	l.Unlock()

	fmt.Println("ok")
	// Output: ok
}

// ExampleFlatCombining contrasts the delegation API (§5 of the paper):
// critical sections become closures executed by the combiner.
func ExampleFlatCombining() {
	var fc locks.FlatCombining
	total := 0
	for i := 1; i <= 4; i++ {
		i := i
		fc.Do(func() { total += i })
	}
	fmt.Println(total)
	// Output: 10
}
