package locks

import (
	"sync"

	"repro/internal/core"
)

// WLock is a worker-aware lock: the acquire path may depend on the
// worker's core class (ASLMutex, class-biased TAS, the proportional
// lock), while plain locks ignore it. Database engines are written
// against this interface so any lock of the evaluation can be injected
// (paper §4.2 swaps the lock under five databases).
type WLock interface {
	Acquire(w *core.Worker)
	Release(w *core.Worker)
	// TryAcquire acquires the lock iff it is immediately available,
	// without queueing or standing by. The flat-combining pipeline uses
	// it for combiner election: whoever wins the try drains the shard's
	// request queue on everyone else's behalf, so a failed try means
	// "someone else is (or is about to be) combining" and the caller
	// should keep waiting on its request instead of piling onto the
	// queue lock.
	TryAcquire(w *core.Worker) bool
}

// tryLocker is the optional try capability of a wrapped Locker
// (sync.Mutex has had it since Go 1.18; every lock in this package
// implements it).
type tryLocker interface{ TryLock() bool }

// plainW adapts any sync.Locker-style lock. try is resolved once at
// wrap time; nil means the wrapped lock cannot try.
type plainW struct {
	l   Locker
	try func() bool
}

func (p plainW) Acquire(w *core.Worker) { p.l.Lock() }
func (p plainW) Release(w *core.Worker) { p.l.Unlock() }

// TryAcquire tries the wrapped lock. A Locker without TryLock degrades
// to a blocking acquire that always reports success: mutual exclusion
// is preserved and combiner election still terminates, it just loses
// its non-blocking fast-fail (no such lock exists in this repository).
func (p plainW) TryAcquire(w *core.Worker) bool {
	if p.try != nil {
		return p.try()
	}
	p.l.Lock()
	return true
}

// Wrap adapts a class-oblivious lock to WLock.
func Wrap(l Locker) WLock {
	p := plainW{l: l}
	if tl, ok := l.(tryLocker); ok {
		p.try = tl.TryLock
	}
	return p
}

// tasW routes through TAS.LockClass so the emulated atomic-success
// bias applies.
type tasW struct{ t *TAS }

func (a tasW) Acquire(w *core.Worker) { a.t.LockClass(w.Class()) }
func (a tasW) Release(w *core.Worker) { a.t.Unlock() }

// TryAcquire bypasses the affinity bias: a single CAS either wins or
// does not, there is no emulated retry to weight.
func (a tasW) TryAcquire(w *core.Worker) bool { return a.t.TryLock() }

// WrapTAS adapts a TAS lock, honouring its affinity bias.
func WrapTAS(t *TAS) WLock { return tasW{t} }

// propW routes through Proportional.LockClass so the policy sees the
// competitor's class.
type propW struct{ p *Proportional }

func (a propW) Acquire(w *core.Worker) { a.p.LockClass(w.Class()) }
func (a propW) Release(w *core.Worker) { a.p.Unlock() }

// TryAcquire acquires iff the lock is free with no queue.
func (a propW) TryAcquire(w *core.Worker) bool { return a.p.TryLock() }

// WrapProportional adapts the proportional lock.
func WrapProportional(p *Proportional) WLock { return propW{p} }

// aslW is the ASLMutex view.
type aslW struct{ m *ASLMutex }

func (a aslW) Acquire(w *core.Worker) { a.m.Lock(w) }
func (a aslW) Release(w *core.Worker) { a.m.Unlock(w) }

// TryAcquire tries the underlying FIFO lock directly (§3.3: trylock is
// supported because the reorderable layer never modifies the base
// lock). Class plays no role in a try: there is no wait to reorder.
func (a aslW) TryAcquire(w *core.Worker) bool { return a.m.TryLock(w) }

// WrapASL adapts an ASLMutex.
func WrapASL(m *ASLMutex) WLock { return aslW{m} }

// Factory builds one lock instance per call; database engines call it
// once per lock in their topology (Table 1: slot locks, method locks,
// global locks, metadata locks...).
type Factory func() WLock

// Named lock factories covering the evaluation's comparison set.
func FactoryPthread() Factory { return func() WLock { return Wrap(new(BargingMutex)) } }

// FactorySyncMutex returns Go's standard sync.Mutex, the class-
// oblivious baseline the sharded KV benchmarks compare ASL shard locks
// against.
func FactorySyncMutex() Factory { return func() WLock { return Wrap(new(sync.Mutex)) } }

// FactoryTAS returns TAS locks with the given emulated affinity
// (factor < 2 disables the bias).
func FactoryTAS(favoured core.Class, factor uint) Factory {
	return func() WLock {
		t := new(TAS)
		t.SetAffinity(favoured, factor)
		return WrapTAS(t)
	}
}

// FactoryTicket returns ticket locks.
func FactoryTicket() Factory { return func() WLock { return Wrap(new(Ticket)) } }

// FactoryMCS returns MCS locks.
func FactoryMCS() Factory { return func() WLock { return Wrap(new(MCS)) } }

// FactoryProportional returns SHFL-PBn-style locks.
func FactoryProportional(n int) Factory {
	return func() WLock { return WrapProportional(&Proportional{N: n}) }
}

// FactoryASL returns LibASL over MCS (the paper's default stack). The
// returned locks share nothing; each epoch's window lives in the
// worker, exactly as in the paper.
func FactoryASL() Factory {
	return func() WLock { return WrapASL(NewASLMutexDefault()) }
}

// FactoryASLBlocking returns the blocking LibASL used under
// over-subscription: sleeping standby over the barging mutex.
func FactoryASLBlocking() Factory {
	return func() WLock { return WrapASL(NewASLMutex(new(BargingMutex), true)) }
}
