package locks

import (
	"sync"

	"repro/internal/core"
)

// WLock is a worker-aware lock: the acquire path may depend on the
// worker's core class (ASLMutex, class-biased TAS, the proportional
// lock), while plain locks ignore it. Database engines are written
// against this interface so any lock of the evaluation can be injected
// (paper §4.2 swaps the lock under five databases).
type WLock interface {
	Acquire(w *core.Worker)
	Release(w *core.Worker)
}

// plainW adapts any sync.Locker-style lock.
type plainW struct{ l Locker }

func (p plainW) Acquire(w *core.Worker) { p.l.Lock() }
func (p plainW) Release(w *core.Worker) { p.l.Unlock() }

// Wrap adapts a class-oblivious lock to WLock.
func Wrap(l Locker) WLock { return plainW{l} }

// tasW routes through TAS.LockClass so the emulated atomic-success
// bias applies.
type tasW struct{ t *TAS }

func (a tasW) Acquire(w *core.Worker) { a.t.LockClass(w.Class()) }
func (a tasW) Release(w *core.Worker) { a.t.Unlock() }

// WrapTAS adapts a TAS lock, honouring its affinity bias.
func WrapTAS(t *TAS) WLock { return tasW{t} }

// propW routes through Proportional.LockClass so the policy sees the
// competitor's class.
type propW struct{ p *Proportional }

func (a propW) Acquire(w *core.Worker) { a.p.LockClass(w.Class()) }
func (a propW) Release(w *core.Worker) { a.p.Unlock() }

// WrapProportional adapts the proportional lock.
func WrapProportional(p *Proportional) WLock { return propW{p} }

// aslW is the ASLMutex view.
type aslW struct{ m *ASLMutex }

func (a aslW) Acquire(w *core.Worker) { a.m.Lock(w) }
func (a aslW) Release(w *core.Worker) { a.m.Unlock(w) }

// WrapASL adapts an ASLMutex.
func WrapASL(m *ASLMutex) WLock { return aslW{m} }

// Factory builds one lock instance per call; database engines call it
// once per lock in their topology (Table 1: slot locks, method locks,
// global locks, metadata locks...).
type Factory func() WLock

// Named lock factories covering the evaluation's comparison set.
func FactoryPthread() Factory { return func() WLock { return Wrap(new(BargingMutex)) } }

// FactorySyncMutex returns Go's standard sync.Mutex, the class-
// oblivious baseline the sharded KV benchmarks compare ASL shard locks
// against.
func FactorySyncMutex() Factory { return func() WLock { return Wrap(new(sync.Mutex)) } }

// FactoryTAS returns TAS locks with the given emulated affinity
// (factor < 2 disables the bias).
func FactoryTAS(favoured core.Class, factor uint) Factory {
	return func() WLock {
		t := new(TAS)
		t.SetAffinity(favoured, factor)
		return WrapTAS(t)
	}
}

// FactoryTicket returns ticket locks.
func FactoryTicket() Factory { return func() WLock { return Wrap(new(Ticket)) } }

// FactoryMCS returns MCS locks.
func FactoryMCS() Factory { return func() WLock { return Wrap(new(MCS)) } }

// FactoryProportional returns SHFL-PBn-style locks.
func FactoryProportional(n int) Factory {
	return func() WLock { return WrapProportional(&Proportional{N: n}) }
}

// FactoryASL returns LibASL over MCS (the paper's default stack). The
// returned locks share nothing; each epoch's window lives in the
// worker, exactly as in the paper.
func FactoryASL() Factory {
	return func() WLock { return WrapASL(NewASLMutexDefault()) }
}

// FactoryASLBlocking returns the blocking LibASL used under
// over-subscription: sleeping standby over the barging mutex.
func FactoryASLBlocking() Factory {
	return func() WLock { return WrapASL(NewASLMutex(new(BargingMutex), true)) }
}
