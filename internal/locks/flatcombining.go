package locks

import (
	"sync/atomic"
)

// FlatCombining implements a delegation-style lock in the spirit of
// Hendler, Incze, Shavit and Tzafrir (the paper's reference [47]):
// threads publish their critical sections as closures; whoever wins
// the combiner election executes a batch of pending requests on their
// behalf, so the protected data never leaves one core's cache.
//
// §5 of the paper discusses delegation as the alternative to LibASL on
// AMP: placing the combiner on a big core hides the little cores' weak
// compute, but requires converting critical sections into closures —
// exactly the API difference this type makes tangible (Do(fn) instead
// of Lock/Unlock). The benchmarks compare both.
//
// This variant publishes one record per request into a Treiber-style
// list that the combiner detaches wholesale, so the list never grows
// beyond the requests currently in flight.
type FlatCombining struct {
	_    pad
	lock TAS // combiner election
	_    pad
	head atomic.Pointer[fcRecord] // publication list (LIFO)
	_    pad
	// MaxBatch bounds how many detach-and-execute passes one combiner
	// performs before handing off; zero means 8.
	MaxBatch int
}

// fcRecord is one published request. fn is written before the record
// is linked (the linking CAS publishes it); done is the response flag.
type fcRecord struct {
	_    pad
	fn   func()
	done atomic.Bool
	next *fcRecord
	_    pad
}

// Do executes fn under the lock's mutual exclusion, either directly
// (as the combiner) or by delegation to the current combiner.
func (f *FlatCombining) Do(fn func()) {
	r := &fcRecord{fn: fn}
	for {
		old := f.head.Load()
		r.next = old
		if f.head.CompareAndSwap(old, r) {
			break
		}
	}
	var s spinner
	for !r.done.Load() {
		if f.lock.TryLock() {
			f.combine()
			f.lock.Unlock()
			continue
		}
		s.spin()
	}
}

// combine detaches and executes pending requests. Called with the
// combiner lock held.
func (f *FlatCombining) combine() {
	batches := f.MaxBatch
	if batches <= 0 {
		batches = 8
	}
	for b := 0; b < batches; b++ {
		list := f.head.Swap(nil)
		if list == nil {
			return
		}
		for r := list; r != nil; r = r.next {
			r.fn()
			r.fn = nil
			r.done.Store(true)
		}
	}
}

// Pending reports the number of published, not-yet-detached requests
// (diagnostics).
func (f *FlatCombining) Pending() int {
	n := 0
	for r := f.head.Load(); r != nil; r = r.next {
		n++
	}
	return n
}
