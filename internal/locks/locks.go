// Package locks implements the real (non-simulated) lock algorithms of
// the paper and its baselines, all usable from ordinary Go code:
//
//   - TAS, TTAS and exponential-backoff test-and-set spinlocks
//   - Ticket lock
//   - MCS queue lock (spin) and MCS spin-then-park
//   - BargingMutex, a futex-style unfair blocking mutex standing in for
//     pthread_mutex_lock (see DESIGN.md substitutions)
//   - Proportional, a two-queue lock equivalent to the paper's
//     ShflLock with the proportional-based static policy (SHFL-PBn)
//   - Reorderable, the paper's Algorithm 1 on top of any FIFO lock
//   - ASLMutex, the paper's Algorithm 3 binding Reorderable to the
//     epoch/SLO feedback in internal/core
//   - Biased, a single-owner wrapper over any WLock: once a worker's
//     take-share crosses the adoption threshold its acquires become
//     plain atomic stores, and any other worker revokes the bias
//     through an epoch/handshake grace period before falling back to
//     the wrapped lock
//
// Locks here favour clarity and faithfulness to the published
// algorithms over absolute peak performance, but all avoid allocation
// on the hot path and pad contended words to cache lines.
package locks

import (
	"runtime"
	"sync"
)

// Locker is the basic lock interface; identical to sync.Locker and
// redeclared only so this package reads standalone.
type Locker = sync.Locker

// FIFOLock is a lock that admits waiters in arrival order and can
// report whether it is currently free. The reorderable lock (Algorithm
// 1) is built on this interface; MCS and Ticket implement it.
type FIFOLock interface {
	Locker
	// TryLock acquires the lock iff it is free, without queueing.
	TryLock() bool
	// IsFree reports (approximately) whether the lock is free with no
	// waiters; standby competitors poll this.
	IsFree() bool
}

// pad is inserted between contended fields to avoid false sharing. 128
// bytes covers adjacent-line prefetching on common x86 parts.
type pad [128]byte

// yieldEvery controls how often busy-wait loops yield to the Go
// scheduler. Pure spinning deadlocks when GOMAXPROCS is smaller than
// the number of spinners, so every spin loop in this package calls
// runtime.Gosched periodically.
const yieldEvery = 64

// spinner is a tiny busy-wait helper with periodic scheduler yields.
type spinner struct{ n uint }

// singleP caches whether the runtime has only one processor, in which
// case busy-waiting can never make progress and every spin must yield.
var singleP = runtime.GOMAXPROCS(0) == 1

// spin performs one wait iteration.
func (s *spinner) spin() {
	if singleP {
		runtime.Gosched()
		return
	}
	s.n++
	if s.n%yieldEvery == 0 {
		runtime.Gosched()
		return
	}
	// A short arithmetic loop approximates a PAUSE-style delay without
	// hammering the contended cache line.
	for i := 0; i < 4; i++ {
		_ = i
	}
}

// backoff is a bounded exponential backoff helper.
type backoff struct {
	cur, max uint
}

func newBackoff(initial, max uint) backoff { return backoff{cur: initial, max: max} }

// wait busy-waits for the current backoff duration (in spin units) and
// doubles it, saturating at max.
func (b *backoff) wait() {
	var s spinner
	for i := uint(0); i < b.cur; i++ {
		s.spin()
	}
	if b.cur < b.max {
		b.cur <<= 1
		if b.cur > b.max {
			b.cur = b.max
		}
	}
}
