package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// Adversarial tests for the Biased wrapper, targeting exactly the
// transitions that make biased locking easy to get wrong: the epoch
// handshake, revocation racing a release, a parked owner mid-CS, and
// TryAcquire in every bias state. The cross-family exclusion torture
// (harness_test.go) covers Biased too; these tests drive the protocol
// edges deterministically.

func biasedPair() (*Biased, *core.Worker, *core.Worker) {
	b := NewBiased(FactorySyncMutex()(), BiasedConfig{AdoptWindow: 64, RevokeTries: 2})
	owner := core.NewWorker(core.WorkerConfig{Class: core.Big})
	other := core.NewWorker(core.WorkerConfig{Class: core.Little})
	return b, owner, other
}

// adopt installs owner as the bias owner via a hinted slow take.
func adopt(t *testing.T, b *Biased, owner *core.Worker) {
	t.Helper()
	b.HintAdopt(owner)
	b.Acquire(owner)
	b.Release(owner)
	if b.Owner() != owner {
		t.Fatal("adoption did not take")
	}
}

// TestBiasedHandshakeInterleaving is the deterministic epoch-handshake
// test: with the owner inside its fast-path critical section, a
// revoker's blocking acquire must wait the grace period out (no two
// owners), and the owner's release must let it through (no lost
// wakeup). Occupancy is asserted directly.
func TestBiasedHandshakeInterleaving(t *testing.T) {
	b, owner, rev := biasedPair()
	adopt(t, b, owner)

	b.Acquire(owner) // fast path: plain atomics on the cookie
	if s := b.Stats(); s.FastAcquires != 1 {
		t.Fatalf("FastAcquires = %d, want 1", s.FastAcquires)
	}

	var inside atomic.Int32
	inside.Store(1)
	entered := make(chan struct{})
	go func() {
		b.Acquire(rev) // must run the revocation handshake
		if inside.Load() != 0 {
			t.Error("revoker entered while the owner was inside its CS")
		}
		close(entered)
	}()

	select {
	case <-entered:
		t.Fatal("revoker acquired during the owner's critical section")
	case <-time.After(30 * time.Millisecond):
	}

	inside.Store(0)
	b.Release(owner) // fast release: epoch parity flips to even
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("lost wakeup: revoker never got through the handshake")
	}
	b.Release(rev)

	s := b.Stats()
	if s.Revocations != 1 {
		t.Fatalf("Revocations = %d, want 1", s.Revocations)
	}
	// The bias is gone: the ex-owner now pays the slow path.
	b.Acquire(owner)
	b.Release(owner)
	if s2 := b.Stats(); s2.FastAcquires != s.FastAcquires || s2.SlowAcquires != s.SlowAcquires+1 {
		t.Fatalf("ex-owner did not fall to the slow path: %+v -> %+v", s, s2)
	}
}

// TestBiasedParkedOwnerMidCS parks the owner (a long sleep) inside its
// fast-path CS while another worker runs the explicit Revoke
// handshake: Revoke must not return until the owner provably left.
func TestBiasedParkedOwnerMidCS(t *testing.T) {
	b, owner, rev := biasedPair()
	adopt(t, b, owner)

	b.Acquire(owner)
	var released atomic.Bool
	revoked := make(chan struct{})
	go func() {
		b.Revoke(rev)
		if !released.Load() {
			t.Error("Revoke returned while the parked owner still held the lock")
		}
		close(revoked)
	}()

	time.Sleep(50 * time.Millisecond) // the owner is parked mid-CS
	select {
	case <-revoked:
		t.Fatal("Revoke completed during the owner's critical section")
	default:
	}
	released.Store(true)
	b.Release(owner)
	select {
	case <-revoked:
	case <-time.After(5 * time.Second):
		t.Fatal("Revoke hung after the owner released")
	}
	if b.Owner() != nil {
		t.Fatal("bias must be gone after Revoke")
	}
}

// TestBiasedTryAcquireStates pins TryAcquire in every bias state.
func TestBiasedTryAcquireStates(t *testing.T) {
	b, owner, other := biasedPair() // RevokeTries: 2

	// Unbiased: a try is a plain try.
	if !b.TryAcquire(other) {
		t.Fatal("unbiased: try on a free lock must win")
	}
	if b.TryAcquire(owner) {
		t.Fatal("unbiased: try on a held lock must fail")
	}
	b.Release(other)

	adopt(t, b, owner)

	// Biased, owner outside its CS: the owner's try is the fast path.
	if !b.TryAcquire(owner) {
		t.Fatal("owner try must win via the fast path")
	}

	// Biased, owner INSIDE its CS: a foreign try must fail in both
	// regimes — absorbed under the revoke budget, and blocked by the
	// odd epoch parity once it is allowed to revoke (a try must never
	// wait the grace period out).
	if b.TryAcquire(other) {
		t.Fatal("foreign try #1 must be absorbed")
	}
	if b.Owner() != owner {
		t.Fatal("absorbed try must not revoke")
	}
	if b.TryAcquire(other) {
		t.Fatal("foreign try #2 must fail: owner is mid-CS, handshake may not block")
	}
	b.Release(owner)

	// The cookie is now dying (revoked mid-CS) with the owner
	// outside: a foreign try completes the teardown and wins.
	if !b.TryAcquire(other) {
		t.Fatal("foreign try on a dying bias with the owner outside must win")
	}
	if b.Owner() != nil {
		t.Fatal("cookie must be unlinked after the claiming try")
	}
	b.Release(other)

	// The ex-owner's next acquire rolls back to the slow path.
	before := b.Stats()
	b.Acquire(owner)
	b.Release(owner)
	if after := b.Stats(); after.SlowAcquires != before.SlowAcquires+1 {
		t.Fatal("ex-owner must take the slow path after revocation")
	}
}

// TestBiasedRevocationRacesRelease races the owner's tight fast
// acquire/release loop against concurrent Revoke calls and blocking
// acquires, with re-adoption hints thrown in — the bias flaps while
// ops are in flight. Accounting stays exact and -race stays quiet.
func TestBiasedRevocationRacesRelease(t *testing.T) {
	b, owner, rev := biasedPair()
	iters := 20000
	revokes := 300
	if testing.Short() {
		iters, revokes = 4000, 60
	}

	var counter int64 // protected by b
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if i%512 == 0 {
				b.HintAdopt(owner) // keep re-biasing so revocation has a target
			}
			b.Acquire(owner)
			counter++
			b.Release(owner)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < revokes; i++ {
			b.Revoke(rev)
			b.Acquire(rev)
			counter++
			b.Release(rev)
			runtime.Gosched()
		}
	}()
	wg.Wait()

	if want := int64(iters + revokes); counter != want {
		t.Fatalf("lost updates: counter = %d, want %d", counter, want)
	}
	s := b.Stats()
	if s.FastAcquires+s.SlowAcquires != uint64(iters+revokes) {
		t.Fatalf("acquire accounting off: fast %d + slow %d != %d",
			s.FastAcquires, s.SlowAcquires, iters+revokes)
	}
	if live := s.Adoptions - s.Revocations; live > 1 {
		t.Fatalf("cookie leak: %d adoptions vs %d revocations", s.Adoptions, s.Revocations)
	}
}

// TestBiasedFlappingStorm cycles adopt → storm → revoke many times
// with class-mixed foreign workers on both the try and blocking
// paths. Exact accounting across every flap, and the adoption/
// revocation ledger must balance.
func TestBiasedFlappingStorm(t *testing.T) {
	b := NewBiased(FactorySyncMutex()(), BiasedConfig{AdoptWindow: 8, RevokeTries: 2})
	rounds, burst, stormers := 40, 200, 3
	if testing.Short() {
		rounds, burst = 10, 80
	}

	var counter int64 // protected by b
	var inside, overlaps atomic.Int32
	enter := func(w *core.Worker, try bool) {
		if try {
			for !b.TryAcquire(w) {
				runtime.Gosched()
			}
		} else {
			b.Acquire(w)
		}
		if inside.Add(1) != 1 {
			overlaps.Add(1)
		}
		counter++
		inside.Add(-1)
		b.Release(w)
	}

	stop := make(chan struct{})
	var stormed [8]int64
	var wg sync.WaitGroup
	for s := 0; s < stormers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: core.Class(s % 2)})
			for n := int64(0); ; n++ {
				select {
				case <-stop:
					stormed[s] = n
					return
				default:
				}
				enter(w, s%2 == 0)
				runtime.Gosched()
			}
		}(s)
	}

	owner := core.NewWorker(core.WorkerConfig{Class: core.Big})
	for r := 0; r < rounds; r++ {
		b.HintAdopt(owner)
		for i := 0; i < burst; i++ {
			enter(owner, false)
		}
	}
	close(stop)
	wg.Wait()

	want := int64(rounds * burst)
	for s := 0; s < stormers; s++ {
		want += stormed[s]
	}
	if counter != want {
		t.Fatalf("lost updates: counter = %d, want %d", counter, want)
	}
	if overlaps.Load() != 0 {
		t.Fatalf("%d overlapping critical sections", overlaps.Load())
	}
	s := b.Stats()
	if s.Adoptions == 0 {
		t.Fatal("storm never adopted a bias")
	}
	if live := s.Adoptions - s.Revocations; live > 1 {
		t.Fatalf("cookie leak: %d adoptions vs %d revocations", s.Adoptions, s.Revocations)
	}
}

// TestBiasedFactoryAndInner pins the composition surface the store
// uses: FactoryBiased builds independent *Biased locks and Inner
// exposes the wrapped lock.
func TestBiasedFactoryAndInner(t *testing.T) {
	f := FactoryBiased(FactoryMCS(), BiasedConfig{})
	l1, l2 := f(), f()
	b1, ok1 := l1.(*Biased)
	b2, ok2 := l2.(*Biased)
	if !ok1 || !ok2 {
		t.Fatal("FactoryBiased must build *Biased locks")
	}
	if b1 == b2 {
		t.Fatal("factory must mint independent locks")
	}
	if b1.Inner() == nil || b2.Inner() == nil {
		t.Fatal("Inner must expose the wrapped lock")
	}
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	b1.Acquire(w)
	b1.Release(w)
	if s := b1.Stats(); s.SlowAcquires != 1 {
		t.Fatalf("stats %+v, want 1 slow acquire", s)
	}
	if s := b2.Stats(); s.SlowAcquires != 0 {
		t.Fatal("stats must be per lock")
	}
}
