package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestReorderableImmediatePath(t *testing.T) {
	r := NewReorderable(new(MCS))
	r.LockImmediately()
	if r.IsFree() {
		t.Fatal("lock should be held")
	}
	r.Unlock()
	if !r.IsFree() {
		t.Fatal("lock should be free")
	}
}

func TestReorderableFreeFastPath(t *testing.T) {
	// A standby competitor takes a free lock immediately, regardless of
	// window size (§3.4: "no additional overhead" when uncontended).
	r := NewReorderable(new(MCS))
	start := time.Now()
	r.LockReorder(int64(time.Second))
	if e := time.Since(start); e > 100*time.Millisecond {
		t.Fatalf("free-lock reorder acquisition took %v", e)
	}
	r.Unlock()
}

func TestReorderableWindowDelaysStandby(t *testing.T) {
	// While the lock is held, a standby competitor with a window waits
	// (up to the window) before enqueueing; an immediate competitor
	// that arrives during the window overtakes it.
	r := NewReorderable(new(MCS))
	r.LockImmediately()

	var order []string
	var mu sync.Mutex
	record := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }

	var wg sync.WaitGroup
	wg.Add(2)
	standbyEntered := make(chan struct{})
	go func() {
		defer wg.Done()
		close(standbyEntered)
		r.LockReorder(int64(500 * time.Millisecond))
		record("standby")
		r.Unlock()
	}()
	<-standbyEntered
	time.Sleep(20 * time.Millisecond) // the standby is now polling
	go func() {
		defer wg.Done()
		r.LockImmediately()
		record("immediate")
		r.Unlock()
	}()
	time.Sleep(20 * time.Millisecond) // the immediate competitor is queued
	r.Unlock()
	wg.Wait()
	if len(order) != 2 || order[0] != "immediate" || order[1] != "standby" {
		t.Fatalf("order = %v, want immediate before standby (reordering)", order)
	}
}

func TestReorderableWindowExpiry(t *testing.T) {
	// Once the window expires the standby enqueues and acquires even if
	// the holder keeps the lock until then (bounded reordering).
	r := NewReorderable(new(MCS))
	r.LockImmediately()
	acquired := make(chan struct{})
	go func() {
		r.LockReorder(int64(30 * time.Millisecond))
		close(acquired)
		r.Unlock()
	}()
	time.Sleep(60 * time.Millisecond) // well past the window
	r.Unlock()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("standby competitor never acquired after window expiry")
	}
}

func TestReorderableMaxWindowClamp(t *testing.T) {
	r := NewReorderable(new(MCS))
	r.MaxWindow = int64(10 * time.Millisecond)
	r.LockImmediately()
	start := time.Now()
	done := make(chan struct{})
	go func() {
		r.LockReorder(int64(time.Hour)) // clamped to 10ms
		close(done)
		r.Unlock()
	}()
	time.Sleep(30 * time.Millisecond)
	r.Unlock()
	<-done
	if e := time.Since(start); e > 3*time.Second {
		t.Fatalf("clamped standby took %v", e)
	}
}

func TestReorderableSleepingVariant(t *testing.T) {
	r := NewReorderable(new(BargingMutex))
	r.Sleeping = true
	r.LockImmediately()
	done := make(chan struct{})
	go func() {
		r.LockReorder(int64(20 * time.Millisecond))
		close(done)
		r.Unlock()
	}()
	time.Sleep(50 * time.Millisecond)
	r.Unlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sleeping standby never acquired")
	}
}

func TestASLMutexBigUsesImmediatePath(t *testing.T) {
	m := NewASLMutexDefault()
	big := core.NewWorker(core.WorkerConfig{Class: core.Big})
	m.Lock(big)
	if m.TryLock(big) {
		t.Fatal("TryLock must fail while held")
	}
	m.Unlock(big)
}

func TestASLMutexLittleOutsideEpochUsesMaxWindow(t *testing.T) {
	m := NewASLMutexDefault()
	m.Reorderable().MaxWindow = int64(5 * time.Millisecond)
	little := core.NewWorker(core.WorkerConfig{Class: core.Little})
	// Lock is free: immediate acquisition even for standby competitors.
	start := time.Now()
	m.Lock(little)
	m.Unlock(little)
	if e := time.Since(start); e > 100*time.Millisecond {
		t.Fatalf("uncontended little acquisition took %v", e)
	}
}

func TestASLMutexMutualExclusionMixedClasses(t *testing.T) {
	m := NewASLMutexDefault()
	m.Reorderable().MaxWindow = int64(time.Millisecond)
	var counter int64
	var wg sync.WaitGroup
	iters := 3000
	if runtime.NumCPU() < 4 {
		iters = 800
	}
	for w := 0; w < 8; w++ {
		class := core.Big
		if w >= 4 {
			class = core.Little
		}
		wg.Add(1)
		go func(c core.Class) {
			defer wg.Done()
			worker := core.NewWorker(core.WorkerConfig{Class: c})
			for i := 0; i < iters; i++ {
				worker.EpochStart(0)
				m.Lock(worker)
				counter++
				m.Unlock(worker)
				worker.EpochEnd(0, int64(time.Millisecond))
			}
		}(class)
	}
	wg.Wait()
	if counter != int64(8*iters) {
		t.Fatalf("lost updates: %d", counter)
	}
}

func TestASLMutexBindLocker(t *testing.T) {
	m := NewASLMutexDefault()
	w := core.NewWorker(core.WorkerConfig{Class: core.Little})
	var l Locker = m.Bind(w)
	l.Lock()
	l.Unlock()
	// Bind must work with sync.Cond (condition-variable support).
	cond := sync.NewCond(m.Bind(w))
	fired := make(chan struct{})
	go func() {
		cond.L.Lock()
		cond.Wait()
		cond.L.Unlock()
		close(fired)
	}()
	time.Sleep(20 * time.Millisecond)
	cond.L.Lock()
	cond.Signal()
	cond.L.Unlock()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("cond.Wait never woke")
	}
}

func TestASLFeedbackConvergesUnderContention(t *testing.T) {
	// With a tight SLO and heavy big-core pressure, the little worker's
	// window must shrink from its initial value (violations) and the
	// little worker must keep acquiring (no starvation).
	m := NewASLMutexDefault()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker := core.NewWorker(core.WorkerConfig{Class: core.Big})
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Lock(worker)
				busySpin(2000)
				m.Unlock(worker)
			}
		}()
	}
	little := core.NewWorker(core.WorkerConfig{
		Class: core.Little,
		AIMD:  core.AIMDConfig{InitWindow: int64(time.Millisecond)},
	})
	var acquired atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			little.EpochStart(0)
			m.Lock(little)
			acquired.Add(1)
			m.Unlock(little)
			// SLO 0: every epoch violates by construction, so the
			// window must collapse regardless of host scheduling.
			little.EpochEnd(0, 0)
		}
	}()
	deadline := time.After(20 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for acquired.Load() < 300 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("little worker starved: only %d acquisitions", acquired.Load())
		case <-tick.C:
		}
	}
	close(stop)
	wg.Wait()
	if w := little.EpochWindow(0); w >= int64(time.Millisecond) {
		t.Fatalf("window never shrank under violations: %d", w)
	}
}

// busySpin burns roughly n iterations of CPU.
func busySpin(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}
