package analysis

// Cross-package facts — the stdlib counterpart of x/tools' analysis
// facts. A fact is a serializable statement an analyzer proves about a
// program object (a function's acquires-summary, a field's access
// discipline) or about a whole package (the accumulated lock graph).
// Facts computed while analyzing package A are written to A's .vetx
// file (gob-encoded); when go vet later analyzes a package importing A,
// the driver hands A's facts back in through vet.cfg's PackageVetx map,
// so analyzers compose across locks → shardedkv → kvserver without any
// whole-program load.
//
// Objects are keyed structurally rather than by objectpath: package
// path plus "Name" for package-level objects, "Recv.Name" for methods,
// and "Struct.field" for struct fields (resolved by scanning the
// owning package's scope). That covers every object this suite states
// facts about; objects outside those shapes (locals, fields of
// anonymous structs) simply cannot carry facts, and Export on them is
// a silent no-op.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a gob-serializable statement about a program object or
// package. Implementations must be pointers to concrete exported
// structs and are registered with gob via RegisterFactTypes.
type Fact interface {
	// AFact is a marker method (it does nothing).
	AFact()
}

// factKey identifies one stored fact: the object's package path, the
// structural object key ("" for package facts), and the concrete fact
// type's name (one object can carry one fact per type).
type factKey struct {
	Pkg  string
	Obj  string
	Type string
}

// FactStore holds the facts visible to one package's analysis: the
// decoded facts of every dependency plus the facts exported while
// analyzing the package itself. Encode writes the union, so vetx files
// are cumulative along the import DAG and transitive dependencies need
// no special handling.
type FactStore struct {
	m map[factKey]Fact
	// fieldKeys memoizes the per-package field → "Struct.field" scan.
	fieldKeys map[*types.Package]map[types.Object]string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		m:         make(map[factKey]Fact),
		fieldKeys: make(map[*types.Package]map[types.Object]string),
	}
}

func factType(f Fact) string { return reflect.TypeOf(f).String() }

// RegisterFactTypes registers every analyzer's FactTypes with gob.
// Call once before encoding or decoding vetx data (Main and the
// analysistest harness both do).
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// ObjectKey returns the structural key for obj, or "" when obj cannot
// carry facts (locals, anonymous-struct fields, nil).
func (s *FactStore) ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj := obj.(type) {
	case *types.Func:
		sig, ok := obj.Type().(*types.Signature)
		if !ok {
			return ""
		}
		if recv := sig.Recv(); recv != nil {
			rt := recv.Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			named, ok := rt.(*types.Named)
			if !ok {
				return ""
			}
			return named.Obj().Name() + "." + obj.Name()
		}
		return obj.Name()
	case *types.Var:
		if obj.IsField() {
			return s.fieldKey(obj)
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Name()
		}
		return ""
	case *types.TypeName, *types.Const:
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Name()
		}
		return ""
	}
	return ""
}

// fieldKey resolves a struct field to "Struct.field" by scanning the
// owning package's scope for the named struct type declaring it.
func (s *FactStore) fieldKey(field *types.Var) string {
	pkg := field.Pkg()
	keys, ok := s.fieldKeys[pkg]
	if !ok {
		keys = make(map[types.Object]string)
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				keys[st.Field(i)] = name + "." + st.Field(i).Name()
			}
		}
		s.fieldKeys[pkg] = keys
	}
	return keys[field]
}

// exportObject records fact about obj (no-op when obj is unkeyable).
func (s *FactStore) exportObject(obj types.Object, fact Fact) {
	key := s.ObjectKey(obj)
	if key == "" {
		return
	}
	s.m[factKey{Pkg: obj.Pkg().Path(), Obj: key, Type: factType(fact)}] = fact
}

// importObject copies a stored fact about obj into fact (a pointer to
// the matching concrete type) and reports whether one was found.
func (s *FactStore) importObject(obj types.Object, fact Fact) bool {
	key := s.ObjectKey(obj)
	if key == "" {
		return false
	}
	return s.copyInto(factKey{Pkg: obj.Pkg().Path(), Obj: key, Type: factType(fact)}, fact)
}

// exportPackage records fact about the package with the given path.
func (s *FactStore) exportPackage(path string, fact Fact) {
	s.m[factKey{Pkg: path, Type: factType(fact)}] = fact
}

// importPackage copies the stored package fact for path into fact.
func (s *FactStore) importPackage(path string, fact Fact) bool {
	return s.copyInto(factKey{Pkg: path, Type: factType(fact)}, fact)
}

func (s *FactStore) copyInto(key factKey, fact Fact) bool {
	stored, ok := s.m[key]
	if !ok {
		return false
	}
	// *fact = *stored, so the caller owns an independent copy whatever
	// the store's lifetime (mirrors the gob round trip between
	// packages).
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// vetxRecord is the on-disk form of one fact.
type vetxRecord struct {
	Pkg  string
	Obj  string // "" = package fact
	Fact Fact
}

// Encode serializes the store's facts (sorted, for deterministic
// output) into the vetx payload written after a package's analysis.
func (s *FactStore) Encode() ([]byte, error) {
	recs := make([]vetxRecord, 0, len(s.m))
	for k, f := range s.m {
		recs = append(recs, vetxRecord{Pkg: k.Pkg, Obj: k.Obj, Fact: f})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Pkg != recs[j].Pkg {
			return recs[i].Pkg < recs[j].Pkg
		}
		if recs[i].Obj != recs[j].Obj {
			return recs[i].Obj < recs[j].Obj
		}
		return factType(recs[i].Fact) < factType(recs[j].Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, fmt.Errorf("encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// AddEncoded merges a dependency's encoded vetx payload into the
// store. Empty payloads (the driver writes zero-byte vetx files for
// out-of-module packages) merge as nothing.
func (s *FactStore) AddEncoded(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var recs []vetxRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("decoding facts: %v", err)
	}
	for _, r := range recs {
		if r.Fact == nil {
			continue
		}
		s.m[factKey{Pkg: r.Pkg, Obj: r.Obj, Type: factType(r.Fact)}] = r.Fact
	}
	return nil
}

// Len returns the number of stored facts (used by tests).
func (s *FactStore) Len() int { return len(s.m) }
