package analysis

// Shared AST helpers for the repolint passes. Everything here is
// deliberately syntactic-first: the analyzers must run both over the
// real tree (full type information from export data) and over
// self-contained analysistest fixtures (which re-declare stand-ins for
// core.Worker, locks.WLock, etc.), so they key on method names and
// type NAMES rather than on package paths.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MethodCall destructures a call of the form recv.Name(args...).
// It returns ok=false for plain function calls and conversions.
func MethodCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// ExprKey renders e as a canonical lock identity string: selector
// chains print as written ("q.sh.lock"), and a trailing ".lock" field
// is stripped so a region opened by sh.electTry(w) (which acquires
// sh.lock) matches the closing sh.lock.Release(w). Expressions that
// are not pure ident/selector chains (calls, indexing) get a unique
// key and therefore never pair.
func ExprKey(e ast.Expr) string {
	s, pure := renderChain(e)
	if !pure {
		return fmt.Sprintf("<expr@%d>", e.Pos())
	}
	return strings.TrimSuffix(s, ".lock")
}

func renderChain(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		s, ok := renderChain(e.X)
		return s + "." + e.Sel.Name, ok
	case *ast.ParenExpr:
		return renderChain(e.X)
	}
	return "", false
}

// LockVerb classifies a recognized lock-protocol call.
type LockVerb int

const (
	// VerbAcquire is a blocking acquire (Acquire, Lock, RLock).
	VerbAcquire LockVerb = iota
	// VerbRelease is a release (Release, Unlock, RUnlock).
	VerbRelease
	// VerbTry is a conditional acquire (TryAcquire, TryLock): the lock
	// is held only on the call's true result.
	VerbTry
)

// LockCall matches a call against the repo's two lock protocols and
// returns the lock-bearing receiver expression:
//
//   - the worker-aware WLock protocol: X.Acquire(w) / X.Release(w) /
//     X.TryAcquire(w), exactly one argument;
//   - the sync.Locker protocol: X.Lock() / X.Unlock() / X.RLock() /
//     X.RUnlock() / X.TryLock() / X.TryRLock(), no arguments.
//
// Matching is by method name and arity only (no package check), so
// the passes work identically on the real tree and on import-free
// fixture stand-ins. Helpers that acquire under other names (electTry,
// LockCohort) are covered by the lockorder pass's per-function
// summaries instead.
func LockCall(call *ast.CallExpr) (recv ast.Expr, verb LockVerb, ok bool) {
	recv, name, isMethod := MethodCall(call)
	if !isMethod {
		return nil, 0, false
	}
	switch len(call.Args) {
	case 1:
		switch name {
		case "Acquire":
			return recv, VerbAcquire, true
		case "Release":
			return recv, VerbRelease, true
		case "TryAcquire":
			return recv, VerbTry, true
		}
	case 0:
		switch name {
		case "Lock", "RLock":
			return recv, VerbAcquire, true
		case "Unlock", "RUnlock":
			return recv, VerbRelease, true
		case "TryLock", "TryRLock":
			return recv, VerbTry, true
		}
	}
	return nil, 0, false
}

// LockClass resolves a lock-bearing receiver expression to its lock
// class — the granularity at which the lockorder pass states facts and
// ranks orders. Struct fields class as "pkgname.Type.field"
// ("shardedkv.shard.lock", "shardedkv.Store.splitMu"), package-level
// vars as "pkgname.var". Locals, parameters and call results return ""
// (untracked: a lock that never outlives a function cannot participate
// in a cross-function ordering violation).
func LockClass(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			obj := sel.Obj()
			if obj.Pkg() == nil {
				return ""
			}
			return obj.Pkg().Name() + "." + named.Obj().Name() + "." + obj.Name()
		}
		// Package-qualified package-level var (pkg.GlobalMu).
		if obj, ok := info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}

// Callee resolves a call's statically-known target function: a plain
// function, or a method whose receiver type is concrete. Interface
// method calls resolve to the interface's *types.Func, which simply
// carries no facts — the lock protocols themselves are matched by
// LockCall before summaries are consulted.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// NamedRecv resolves the named type of a method call's receiver
// expression, dereferencing one pointer. Nil when the type is unnamed
// or unknown.
func NamedRecv(info *types.Info, recv ast.Expr) *types.Named {
	if info == nil {
		return nil
	}
	tv, ok := info.Types[recv]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// NamedRecvType is NamedRecv reduced to the bare type name.
func NamedRecvType(info *types.Info, recv ast.Expr) string {
	if n := NamedRecv(info, recv); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// LeafObj resolves the object a receiver chain ends in: the variable
// for w.SetClassHint, the field for s.w.SetClassHint.
func LeafObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.ParenExpr:
		return LeafObj(info, e.X)
	}
	return nil
}

// ReferencesObj reports whether any identifier under n resolves to
// target.
func ReferencesObj(info *types.Info, n ast.Node, target types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}

// FuncNodes calls fn for every function body in the file: declared
// functions and methods (with their names) and function literals
// (named ""). Literals nested inside a function are visited in
// addition to — not instead of — the enclosing function's visit, so a
// per-function analysis sees literal bodies twice; analyzers that care
// use the node identity to dedupe or skip literals.
func FuncNodes(file *ast.File, fn func(name string, ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Name.Name, n.Type, n.Body)
			}
		case *ast.FuncLit:
			fn("", n.Type, n.Body)
		}
		return true
	})
}

// FuncParamObjs collects the types.Object of every func-typed
// parameter declared by ft — the "user callback" parameters whose
// invocation under a lock the lockheldcall pass flags.
func FuncParamObjs(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		if _, isFunc := field.Type.(*ast.FuncType); !isFunc {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}
