package analysis

// Shared AST helpers for the repolint passes. Everything here is
// deliberately syntactic-first: the analyzers must run both over the
// real tree (full type information from export data) and over
// self-contained analysistest fixtures (which re-declare stand-ins for
// core.Worker, locks.WLock, etc.), so they key on method names and
// type NAMES rather than on package paths.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MethodCall destructures a call of the form recv.Name(args...).
// It returns ok=false for plain function calls and conversions.
func MethodCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// ExprKey renders e as a canonical lock identity string: selector
// chains print as written ("q.sh.lock"), and a trailing ".lock" field
// is stripped so a region opened by sh.electTry(w) (which acquires
// sh.lock) matches the closing sh.lock.Release(w). Expressions that
// are not pure ident/selector chains (calls, indexing) get a unique
// key and therefore never pair.
func ExprKey(e ast.Expr) string {
	s, pure := renderChain(e)
	if !pure {
		return fmt.Sprintf("<expr@%d>", e.Pos())
	}
	return strings.TrimSuffix(s, ".lock")
}

func renderChain(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		s, ok := renderChain(e.X)
		return s + "." + e.Sel.Name, ok
	case *ast.ParenExpr:
		return renderChain(e.X)
	}
	return "", false
}

// NamedRecv resolves the named type of a method call's receiver
// expression, dereferencing one pointer. Nil when the type is unnamed
// or unknown.
func NamedRecv(info *types.Info, recv ast.Expr) *types.Named {
	if info == nil {
		return nil
	}
	tv, ok := info.Types[recv]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// NamedRecvType is NamedRecv reduced to the bare type name.
func NamedRecvType(info *types.Info, recv ast.Expr) string {
	if n := NamedRecv(info, recv); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// FuncNodes calls fn for every function body in the file: declared
// functions and methods (with their names) and function literals
// (named ""). Literals nested inside a function are visited in
// addition to — not instead of — the enclosing function's visit, so a
// per-function analysis sees literal bodies twice; analyzers that care
// use the node identity to dedupe or skip literals.
func FuncNodes(file *ast.File, fn func(name string, ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Name.Name, n.Type, n.Body)
			}
		case *ast.FuncLit:
			fn("", n.Type, n.Body)
		}
		return true
	})
}

// FuncParamObjs collects the types.Object of every func-typed
// parameter declared by ft — the "user callback" parameters whose
// invocation under a lock the lockheldcall pass flags.
func FuncParamObjs(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		if _, isFunc := field.Type.(*ast.FuncType); !isFunc {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}
