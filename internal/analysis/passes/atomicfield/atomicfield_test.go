package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Packages(t, "testdata/src",
		[]string{"atomic", "mixed", "mixeduser"},
		atomicfield.Analyzer)
}
