// Package atomicfield enforces all-or-nothing atomicity on struct
// fields: a field that is touched through sync/atomic anywhere in the
// program must never be read or written plainly anywhere else. Mixing
// the two is the classic torn-counter bug — the plain access races
// with the atomic ones, and -race only catches it when the interleaving
// actually fires under the detector; statically the contract is simply
// "pick one discipline per field".
//
// Two field shapes are checked:
//
//   - old-style fields (uint64 etc.) passed by address to the
//     sync/atomic functions (atomic.AddUint64(&s.n, 1)): every other
//     selector access to the same field object must also be an atomic
//     call argument. The atomic and plain sightings are exported as
//     object facts (AtomicAccessFact / PlainAccessFact) on the field,
//     so a package that atomically increments a counter declared
//     upstream — or plainly reads one that upstream increments
//     atomically — is caught across package boundaries, whichever
//     side go vet compiles first.
//   - typed atomics (atomic.Uint64, atomic.Pointer[T], ...) are safe
//     by construction through their methods, but copying one by value
//     forks the counter and tears the discipline; any use of such a
//     field that is neither a method access nor an address-of is
//     flagged locally.
//
// Matching is by package *name* ("atomic"), like every pass in this
// suite, so import-free-adjacent fixtures can declare a local atomic
// stand-in package and the analyzer behaves identically.
//
// Initialization-before-publication writes (constructors) are
// deliberately not special-cased: a justified //lint:ignore is the
// reviewable escape, mirroring go vet's own atomic checkers.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicfield",
	Doc:       "check that a field accessed via sync/atomic is never read or written plainly elsewhere",
	Run:       run,
	FactTypes: []analysis.Fact{&AtomicAccessFact{}, &PlainAccessFact{}},
}

// AtomicAccessFact marks a field as accessed through sync/atomic
// somewhere; Pos is one such site ("file:line:col").
type AtomicAccessFact struct{ Pos string }

// AFact marks AtomicAccessFact as a fact.
func (*AtomicAccessFact) AFact() {}

// PlainAccessFact marks a field as read/written plainly somewhere;
// Pos is one such site.
type PlainAccessFact struct{ Pos string }

// AFact marks PlainAccessFact as a fact.
func (*PlainAccessFact) AFact() {}

// atomicVerbs are the sync/atomic function-name prefixes that take an
// address (LoadUint64, AddInt32, CompareAndSwapPointer, OrUint32...).
var atomicVerbs = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func run(pass *analysis.Pass) error {
	atomicUses := map[*types.Var][]token.Pos{}
	plainUses := map[*types.Var][]token.Pos{}

	for _, file := range pass.Files {
		parents := parentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			if isAtomicType(field.Type()) {
				checkTypedUse(pass, parents, sel, field)
				return true
			}
			if !atomicCapable(field.Type()) {
				return true
			}
			if isAtomicCallArg(pass.TypesInfo, parents, sel) {
				atomicUses[field] = append(atomicUses[field], sel.Pos())
			} else {
				plainUses[field] = append(plainUses[field], sel.Pos())
			}
			return true
		})
	}
	for _, uses := range [2]map[*types.Var][]token.Pos{atomicUses, plainUses} {
		for _, ps := range uses {
			sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		}
	}

	// Report every plain site of a field that is atomic here or in a
	// dependency.
	for field, plains := range plainUses {
		atomicAt := ""
		if as := atomicUses[field]; len(as) > 0 {
			atomicAt = pass.Fset.Position(as[0]).String()
		} else {
			var af AtomicAccessFact
			if pass.ImportObjectFact(field, &af) {
				atomicAt = af.Pos
			}
		}
		if atomicAt == "" {
			continue
		}
		for _, p := range plains {
			pass.Reportf(p, "plain access to field %s, which is accessed via sync/atomic at %s; every access to an atomic field must go through sync/atomic", field.Name(), atomicAt)
		}
	}
	// And the symmetric case: this package is the atomic side of a
	// field a dependency touches plainly (the plain side was compiled
	// first and could not see our atomics).
	for field, atomics := range atomicUses {
		if len(plainUses[field]) > 0 {
			continue // already reported above, at the plain sites
		}
		var pf PlainAccessFact
		if pass.ImportObjectFact(field, &pf) {
			pass.Reportf(atomics[0], "atomic access to field %s, which is read/written plainly at %s; every access to an atomic field must go through sync/atomic", field.Name(), pf.Pos)
		}
	}

	for field, uses := range atomicUses {
		pass.ExportObjectFact(field, &AtomicAccessFact{Pos: pass.Fset.Position(uses[0]).String()})
	}
	for field, uses := range plainUses {
		pass.ExportObjectFact(field, &PlainAccessFact{Pos: pass.Fset.Position(uses[0]).String()})
	}
	return nil
}

// checkTypedUse flags value copies of a typed-atomic field: any use
// that is neither a method access (c.n.Add) nor an address-of (&c.n).
func checkTypedUse(pass *analysis.Pass, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr, field *types.Var) {
	p := parents[sel]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			break
		}
		p = parents[pe]
	}
	switch p := p.(type) {
	case *ast.SelectorExpr:
		return // c.n.Load(), c.n.Store(v): the methods are the API
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return // &c.n: passing the atomic by pointer is fine
		}
	}
	pass.Reportf(sel.Pos(), "atomic field %s copied by value; a %s must be used through its methods (or passed by pointer)", field.Name(), types.TypeString(field.Type(), func(p *types.Package) string { return p.Name() }))
}

// isAtomicCallArg reports whether sel appears as &sel in a call to a
// sync/atomic address-taking function (atomic.AddUint64(&s.n, 1)).
func isAtomicCallArg(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	un, ok := parents[sel].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	call, ok := parents[un].(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := fun.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[pkgID].(*types.PkgName)
	if !ok || pkgName.Imported().Name() != "atomic" {
		return false
	}
	for _, v := range atomicVerbs {
		if strings.HasPrefix(fun.Sel.Name, v) {
			return true
		}
	}
	return false
}

// isAtomicType reports whether t is a named type declared in a package
// named "atomic" (sync/atomic's Uint64, Pointer[T], ... or a fixture
// stand-in).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "atomic"
}

// atomicCapable reports whether t is one of the primitive types the
// address-taking sync/atomic functions operate on — the only fields
// whose access discipline this pass tracks (and states facts about).
func atomicCapable(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ok
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
		return true
	}
	return false
}

// parentMap records each node's syntactic parent within file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
