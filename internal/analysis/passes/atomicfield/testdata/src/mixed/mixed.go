// Package mixed exercises the in-package half of the atomicfield
// contract: mixed atomic/plain fields, clean all-atomic and all-plain
// fields, typed-atomic method use, and the value-copy violation.
package mixed

import "atomic"

// Counter mixes access disciplines across its fields.
type Counter struct {
	hits   uint64
	misses uint64
	plain  uint64
	typed  atomic.Uint64
}

// Bump is the atomic side of hits and misses.
func (c *Counter) Bump() {
	atomic.AddUint64(&c.hits, 1)
	atomic.CompareAndSwapUint64(&c.misses, 0, 1)
}

// Read tears both counters.
func (c *Counter) Read() uint64 {
	n := c.hits   // want `plain access to field hits, which is accessed via sync/atomic at .*mixed\.go`
	n += c.misses // want `plain access to field misses, which is accessed via sync/atomic at .*mixed\.go`
	return n
}

// ReadClean keeps every access on one discipline.
func (c *Counter) ReadClean() uint64 {
	c.plain++ // all-plain field: fine
	return atomic.LoadUint64(&c.hits) + c.typed.Load()
}

// Snapshot copies the typed atomic by value.
func (c *Counter) Snapshot() uint64 {
	t := c.typed // want `atomic field typed copied by value`
	return t.Load()
}

// Stats is the exported surface consumed by the mixeduser fixture:
// Ops is atomic here and read plainly there; Raw is plain here and
// touched atomically there.
type Stats struct {
	Ops uint64
	Raw uint64
}

// Inc bumps Ops atomically.
func (s *Stats) Inc() { atomic.AddUint64(&s.Ops, 1) }

// Level reads Raw plainly (the whole package agrees).
func (s *Stats) Level() uint64 { return s.Raw }
