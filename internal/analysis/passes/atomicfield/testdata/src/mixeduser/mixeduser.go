// Package mixeduser exercises the cross-package half of the
// atomicfield contract, in both directions: plainly reading a field
// whose atomic discipline is an imported fact (Stats.Ops), and
// atomically touching a field an upstream package reads plainly
// (Stats.Raw).
package mixeduser

import (
	"atomic"
	"mixed"
)

// Snapshot reads Ops plainly; mixed.Stats.Inc's atomic access arrives
// as an AtomicAccessFact on the field (the report cites the nearest
// atomic site, which here is Bump's in-package one).
func Snapshot(s *mixed.Stats) uint64 {
	return s.Ops // want `plain access to field Ops, which is accessed via sync/atomic at .*\.go`
}

// Grow is the atomic side of a field mixed reads plainly — the plain
// side compiled first, so the report lands here, on the atomic site.
func Grow(s *mixed.Stats) {
	atomic.AddUint64(&s.Raw, 1) // want `atomic access to field Raw, which is read/written plainly at .*mixed\.go`
}

// Bump stays on Ops's atomic discipline: clean.
func Bump(s *mixed.Stats) {
	atomic.AddUint64(&s.Ops, 1)
}
