// Package atomic is the fixture stand-in for sync/atomic: the
// analyzer matches the package by name, so these declarations give
// fixtures the same shapes (address-taking functions and typed
// atomics) without importing the real thing.
package atomic

// Uint64 stands in for sync/atomic's typed counter.
type Uint64 struct{ v uint64 }

// Load returns the value.
func (u *Uint64) Load() uint64 { return u.v }

// Store sets the value.
func (u *Uint64) Store(x uint64) { u.v = x }

// Add adds d and returns the new value.
func (u *Uint64) Add(d uint64) uint64 {
	u.v += d
	return u.v
}

// LoadUint64 stands in for the address-taking load.
func LoadUint64(p *uint64) uint64 { return *p }

// StoreUint64 stands in for the address-taking store.
func StoreUint64(p *uint64, v uint64) { *p = v }

// AddUint64 stands in for the address-taking add.
func AddUint64(p *uint64, d uint64) uint64 {
	*p += d
	return *p
}

// CompareAndSwapUint64 stands in for the address-taking CAS.
func CompareAndSwapUint64(p *uint64, old, new uint64) bool {
	if *p != old {
		return false
	}
	*p = new
	return true
}
