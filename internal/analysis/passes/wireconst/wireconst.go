// Package wireconst enforces the append-only wire-constant rule from
// docs/protocol.md: the exported uint8 enum families of the kvserver
// protocol — Op*, Class*, Status*, Flag* — are part of the wire
// contract, so values may only ever be appended, never renumbered,
// never reused.
//
// The check is structural, so it holds for values not yet pinned by
// docs_test.go's table checks: within each family (constants grouped
// by name prefix, in declaration order across the package) values must
// be strictly increasing. Strictly increasing declaration order
// implies both uniqueness (no two ops can alias on the wire) and
// append-only evolution (a new constant inserted mid-family or
// assigned a recycled value breaks the ordering and fails the build's
// lint gate, not a code review).
//
// Only exported constants of underlying type uint8 whose name starts
// with a family prefix participate; unexported protocol internals
// (headerLen) and the Max* limits (legitimately non-monotonic, with
// intentionally equal values) are out of scope.
package wireconst

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
	"unicode"

	"repro/internal/analysis"
)

// Analyzer is the wireconst pass.
var Analyzer = &analysis.Analyzer{
	Name: "wireconst",
	Doc:  "check that wire enum constants (Op*/Class*/Status*/Flag*) are append-only: strictly increasing, no duplicates",
	Run:  run,
}

// families are the wire enum name prefixes. A constant belongs to a
// family when its name is the prefix followed by an upper-case rune
// (so ClassBulk is in Class, but Classify would not be).
var families = []string{"Op", "Class", "Status", "Flag"}

func run(pass *analysis.Pass) error {
	last := make(map[string]struct {
		val  uint64
		name string
	})
	seen := make(map[string]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					fam := familyOf(name.Name)
					if fam == "" {
						continue
					}
					val, ok := constUint8(pass.TypesInfo, name)
					if !ok {
						continue
					}
					if seen[fam] && val <= last[fam].val {
						if val == last[fam].val {
							pass.Reportf(name.Pos(), "wire constant %s duplicates the value 0x%02x of %s; wire enums must be unique", name.Name, val, last[fam].name)
						} else {
							pass.Reportf(name.Pos(), "wire constant %s (0x%02x) declared after %s (0x%02x); wire enums are append-only — new values go at the end, strictly increasing", name.Name, val, last[fam].name, last[fam].val)
						}
						continue
					}
					last[fam] = struct {
						val  uint64
						name string
					}{val, name.Name}
					seen[fam] = true
				}
			}
		}
	}
	return nil
}

// familyOf returns the enum family a constant name belongs to, or "".
func familyOf(name string) string {
	if !ast.IsExported(name) {
		return ""
	}
	for _, fam := range families {
		rest := strings.TrimPrefix(name, fam)
		if rest != name && rest != "" && unicode.IsUpper(rune(rest[0])) {
			return fam
		}
	}
	return ""
}

// constUint8 resolves ident as a constant of underlying type uint8.
func constUint8(info *types.Info, ident *ast.Ident) (uint64, bool) {
	obj, ok := info.Defs[ident].(*types.Const)
	if !ok {
		return 0, false
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Uint8 {
		return 0, false
	}
	v, ok := constant.Uint64Val(constant.ToInt(obj.Val()))
	return v, ok
}
