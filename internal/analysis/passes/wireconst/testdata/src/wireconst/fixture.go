// Fixture for the wireconst pass: wire enum families (exported uint8
// Op*/Class*/Status*/Flag* constants) must be declared strictly
// increasing — duplicates and out-of-order (renumbered / gap-filling)
// declarations are flagged; limits, unexported constants and
// non-family names are out of scope.
package wireconst

const (
	OpGet    uint8 = 0x01
	OpPut    uint8 = 0x02
	OpDup    uint8 = 0x02 // want `wire constant OpDup duplicates the value 0x02 of OpPut`
	OpFilled uint8 = 0x01 // want `wire constant OpFilled \(0x01\) declared after OpPut \(0x02\)`
	OpStats  uint8 = 0x08
)

const (
	StatusOK        uint8 = 0x00
	StatusErr       uint8 = 0x01
	StatusErrOther  uint8 = 0x02
	StatusRecycled  uint8 = 0x01 // want `declared after StatusErrOther`
	StatusErrLatest uint8 = 0x05
)

const (
	ClassInteractive uint8 = 0x00
	ClassBulk        uint8 = 0x01
)

const FlagMore uint8 = 0x01

// Out of scope: limits are legitimately non-monotonic and may share
// values; unexported and non-uint8 constants never participate; a
// family prefix not followed by an upper-case rune is not a family.
const (
	MaxFrame    = 1 << 24
	MaxBatchOps = 1 << 16
	MaxPairs    = 1 << 16
)

const headerLen uint8 = 10

const Classless = 5

const OpaqueTag uint8 = 0x00
