package wireconst_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/wireconst"
)

func TestWireConst(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "wireconst"), wireconst.Analyzer)
}
