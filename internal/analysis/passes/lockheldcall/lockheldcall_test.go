package lockheldcall_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockheldcall"
)

func TestLockHeldCall(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "lockheldcall"), lockheldcall.Analyzer)
}
