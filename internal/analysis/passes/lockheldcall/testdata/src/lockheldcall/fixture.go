// Fixture for the lockheldcall pass: import-free stand-ins for the
// shard lock and store API, violating and conforming critical-section
// shapes — including the TryAcquire-success-branch and the negated
// early-return election form.
package lockheldcall

type Worker struct{}

type WLock struct{ held bool }

func (l *WLock) Acquire(w *Worker)         { l.held = true }
func (l *WLock) Release(w *Worker)         { l.held = false }
func (l *WLock) TryAcquire(w *Worker) bool { return !l.held }

type shard struct{ lock WLock }

func (sh *shard) electTry(w *Worker) bool { return sh.lock.TryAcquire(w) }

// Store is the fixture's stand-in for the re-entrant public API.
type Store struct{}

func (s *Store) Get(w *Worker, k uint64) int { return 0 }
func (s *Store) internalGet(k uint64) int    { return 0 }

// Log is the fixture's stand-in for wal.Log: Append/Rotate buffer and
// are legal under the shard lock; Commit/Sync/WriteCheckpoint/Close
// issue fsync and are not.
type Log struct{}

func (l *Log) Append(kind uint8, k uint64, v []byte) (uint64, error) { return 0, nil }
func (l *Log) Rotate() (uint64, error)                               { return 0, nil }
func (l *Log) Commit(lsn uint64) error                               { return nil }
func (l *Log) Sync() error                                           { return nil }
func (l *Log) WriteCheckpoint(b uint64) error                        { return nil }
func (l *Log) Close() error                                          { return nil }

// Biased is the fixture's stand-in for locks.Biased: Revoke waits out
// the owner's grace period (fsync-class) and must never run under a
// shard lock; the plain lock methods delegate and are fine.
type Biased struct{ inner WLock }

func (b *Biased) Acquire(w *Worker)         { b.inner.Acquire(w) }
func (b *Biased) Release(w *Worker)         { b.inner.Release(w) }
func (b *Biased) TryAcquire(w *Worker) bool { return b.inner.TryAcquire(w) }
func (b *Biased) Revoke(w *Worker)          {}

// --- violations ---

func badCallback(sh *shard, w *Worker, fn func(int)) {
	sh.lock.Acquire(w)
	fn(1) // want `call to user callback fn while a shard lock is held`
	sh.lock.Release(w)
}

func badSend(sh *shard, w *Worker, ch chan int) {
	sh.lock.Acquire(w)
	ch <- 1 // want `channel send while a shard lock is held`
	sh.lock.Release(w)
}

func badReentrantStore(sh *shard, w *Worker, st *Store) {
	sh.lock.Acquire(w)
	_ = st.Get(w, 1) // want `re-entrant Store.Get call while a shard lock is held`
	sh.lock.Release(w)
}

func badTrySuccessBranch(sh *shard, w *Worker, fn func(int)) {
	if sh.lock.TryAcquire(w) {
		fn(1) // want `call to user callback fn`
		sh.lock.Release(w)
	}
}

func badElectEarlyReturn(sh *shard, w *Worker, ch chan int) {
	if !sh.electTry(w) {
		return
	}
	ch <- 1 // want `channel send while a shard lock is held`
	sh.lock.Release(w)
}

func badLabeledBreakHold(sh *shard, w *Worker, ch chan int, n int) {
out:
	for i := 0; i < n; i++ {
		sh.lock.Acquire(w)
		if i == 3 {
			break out // exits the loop with the lock still held
		}
		sh.lock.Release(w)
	}
	ch <- 1 // want `channel send while a shard lock is held`
	sh.lock.Release(w)
}

func badCommitUnderLock(sh *shard, w *Worker, lg *Log) {
	sh.lock.Acquire(w)
	lsn, _ := lg.Append(1, 7, nil)
	_ = lg.Commit(lsn) // want `wal\.Log\.Commit issues fsync while a shard lock is held`
	sh.lock.Release(w)
}

func badSyncUnderElection(sh *shard, w *Worker, lg *Log) {
	if !sh.electTry(w) {
		return
	}
	_ = lg.Sync() // want `wal\.Log\.Sync issues fsync while a shard lock is held`
	sh.lock.Release(w)
}

func badCheckpointUnderLock(sh *shard, w *Worker, lg *Log) {
	sh.lock.Acquire(w)
	_ = lg.WriteCheckpoint(3) // want `wal\.Log\.WriteCheckpoint issues fsync while a shard lock is held`
	sh.lock.Release(w)
}

func badLogCloseUnderLock(sh *shard, w *Worker, lg *Log) {
	sh.lock.Acquire(w)
	_ = lg.Close() // want `wal\.Log\.Close issues fsync while a shard lock is held`
	sh.lock.Release(w)
}

func badRevokeUnderLock(sh *shard, w *Worker, b *Biased) {
	sh.lock.Acquire(w)
	b.Revoke(w) // want `locks\.Biased\.Revoke waits out the owner's grace period while a shard lock is held`
	sh.lock.Release(w)
}

func badRevokeUnderElection(sh *shard, w *Worker, b *Biased) {
	if !sh.electTry(w) {
		return
	}
	b.Revoke(w) // want `locks\.Biased\.Revoke waits out the owner's grace period while a shard lock is held`
	sh.lock.Release(w)
}

// --- conforming ---

func okAppendUnderLockCommitAfter(sh *shard, w *Worker, lg *Log) {
	sh.lock.Acquire(w)
	lsn, _ := lg.Append(1, 7, nil) // buffered append: legal under the lock
	_, _ = lg.Rotate()             // seals without fsync: legal under the lock
	sh.lock.Release(w)
	_ = lg.Commit(lsn) // the group commit runs after release
}

func okLoopAcquireRelease(sh *shard, w *Worker, fn func(int)) {
	for i := 0; i < 4; i++ {
		sh.lock.Acquire(w)
		sh.lock.Release(w)
	}
	fn(1) // released on every path around the loop
}

func okEmitAfterRelease(sh *shard, w *Worker, fn func(int)) {
	sh.lock.Acquire(w)
	v := 1
	sh.lock.Release(w)
	fn(v)
}

func okSendAfterRelease(sh *shard, w *Worker, ch chan int) {
	sh.lock.Acquire(w)
	v := 1
	sh.lock.Release(w)
	ch <- v
}

func okUnexportedHelper(sh *shard, w *Worker, st *Store) {
	sh.lock.Acquire(w)
	_ = st.internalGet(1)
	sh.lock.Release(w)
}

func okElectedThenReleased(sh *shard, w *Worker, fn func(int)) {
	if !sh.electTry(w) {
		return
	}
	v := 2
	sh.lock.Release(w)
	fn(v)
}

func okClosureDefinedNotCalled(sh *shard, w *Worker) func() int {
	sh.lock.Acquire(w)
	f := func() int { return 1 }
	sh.lock.Release(w)
	return f
}

func okReleasedInBranchTaken(sh *shard, w *Worker, ch chan int, cond bool) {
	sh.lock.Acquire(w)
	if cond {
		sh.lock.Release(w)
		ch <- 1 // released on this branch
		return
	}
	sh.lock.Release(w)
}

func okRevokeBeforeAcquire(sh *shard, w *Worker, b *Biased) {
	b.Revoke(w) // split's shape: revoke first, then the rendezvous acquire
	sh.lock.Acquire(w)
	sh.lock.Release(w)
}

func okBiasedLockMethodsUnderLock(sh *shard, w *Worker, b *Biased) {
	sh.lock.Acquire(w)
	if b.TryAcquire(w) { // delegating lock methods carry no contract
		b.Release(w)
	}
	sh.lock.Release(w)
}

func okSuppressedVisitor(sh *shard, w *Worker, fn func(int)) {
	sh.lock.Acquire(w)
	//lint:ignore lockheldcall fixture: internal visitor contractually runs under the shard lock
	fn(1)
	sh.lock.Release(w)
}
