// Package lockheldcall enforces the collect-under-lock / emit-after-
// release contract from the sharded store: while a shard lock is held
// — a region bracketed by X.Acquire(w)/X.Release(w), or opened by a
// successful X.TryAcquire(w)/X.electTry(w) — the critical section must
// stay pure engine work. Three call shapes are flagged inside a held
// region:
//
//   - invoking a func-typed parameter of the enclosing function (a
//     user callback: Range's fn, a visitor, a hook) — user code must
//     run after release, from collected results;
//   - a channel send (completing a future wakes a waiter into a world
//     where this goroutine still holds the lock; the pipeline
//     completes futures only after release);
//   - calling an exported method on a Store / AsyncStore /
//     ClassedStore / ClassedAsync value (re-entering the public API
//     acquires shard locks and can self-deadlock or invert the
//     ancestor→descendant split order);
//   - calling an fsync-issuing method on a wal.Log (Commit, Sync,
//     WriteCheckpoint, Close): the durability contract is append
//     (buffered) under the lock, ONE group commit after release —
//     an fsync inside the critical section would serialize every
//     writer on the disk. Append and Rotate never sync and stay
//     legal under the lock;
//   - calling Revoke on a locks.Biased: revocation waits out the
//     owner's grace period, which is unbounded if the owner is parked
//     mid-critical-section — the same never-under-a-shard-lock class
//     as fsync. Split revokes before its rendezvous acquire, holding
//     only splitMu.
//
// Held-region tracking runs on the control-flow graph from
// internal/analysis/cfg as a may-held dataflow: an Acquire adds the
// lock's canonical key ("sh.lock" and the "sh" of sh.electTry(w)
// canonicalize to the same key), a Release removes it, and states join
// by union at merge points, so a lock held on *any* path into a
// statement flags that statement. TryAcquire/electTry used as a branch
// condition adds the key only on the success edge — both the
// `if X.TryAcquire(w) {...}` form and the negated early-return form
// `if !X.TryAcquire(w) { return }` fall out of edge refinement, as do
// acquisitions that survive a labeled break or goto out of a loop.
// `defer X.Release(w)` keeps the region open to function end — which
// "never remove" already models — and the deferred call itself runs
// after every scanned statement, so it is not scanned. A helper that
// returns with the lock held (acquireLive) still opens no region here
// — an accepted false negative; those call sites are covered by
// convention and tests, and the cross-function case is the lockorder
// pass's territory.
package lockheldcall

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the lockheldcall pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockheldcall",
	Doc:  "check that no user callback, future completion or re-entrant store call runs while a shard lock is held",
	Run:  run,
}

// storeTypes are the receiver type names whose exported methods form
// the re-entrant public store API (matched by type name so fixtures
// can declare local stand-ins).
var storeTypes = map[string]bool{
	"Store":        true,
	"AsyncStore":   true,
	"ClassedStore": true,
	"ClassedAsync": true,
}

// walSyncMethods are the wal.Log methods that issue fsync (or block on
// one in flight). Append/Rotate/CrashDrop buffer or drop and are legal
// under a shard lock.
var walSyncMethods = map[string]bool{
	"Commit":          true,
	"Sync":            true,
	"WriteCheckpoint": true,
	"Close":           true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncNodes(file, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			c := &checker{
				pass:      pass,
				callbacks: analysis.FuncParamObjs(pass.TypesInfo, ft),
			}
			c.checkBody(body)
		})
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	callbacks map[types.Object]bool
}

// checkBody solves the may-held dataflow over body's CFG, then replays
// each reachable block from its fixed-point in-state to report
// violations exactly once per site.
func (c *checker) checkBody(body *ast.BlockStmt) {
	g := cfg.New(body)
	res := cfg.Solve(g, cfg.Flow[map[string]bool]{
		Entry:    map[string]bool{},
		Transfer: c.transfer,
		Branch: func(cond ast.Expr, st map[string]bool) (map[string]bool, map[string]bool) {
			// X.TryAcquire(w) / X.electTry(w): held only on the true
			// edge. The builder normalizes `!cond` by swapping edges,
			// so the early-return form needs no special case.
			if key, ok := tryAcquireCond(cond, c.pass.TypesInfo); ok {
				t := clone(st)
				t[key] = true
				return t, st
			}
			return st, st
		},
		Join:  union,
		Equal: sameKeys,
		Clone: clone,
	})
	for _, b := range g.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		st := clone(in)
		for _, n := range b.Nodes {
			c.scan(n, st)
			st = c.transfer(n, st)
		}
	}
}

// transfer applies one node's effect on the held set: Acquire adds,
// Release removes, everything else is a no-op.
func (c *checker) transfer(n ast.Node, held map[string]bool) map[string]bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return held
	}
	if key, kind, ok := lockOp(es.X); ok {
		held = clone(held)
		switch kind {
		case "Acquire":
			held[key] = true
		case "Release":
			delete(held, key)
		}
	}
	return held
}

// scan inspects one CFG node's subtree for violations under the
// current held set. Function-literal bodies are skipped: defining a
// closure under the lock is fine, only running one is not (a direct
// call of a literal still surfaces via its CallExpr arguments).
// Nested statement blocks are skipped too — a RangeStmt node carries
// its whole subtree, but the body's statements are scanned by their
// own blocks under their own in-states.
func (c *checker) scan(n ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	switch s := n.(type) {
	case *ast.DeferStmt:
		return // runs at function exit, after every scanned statement
	case *ast.ExprStmt:
		if _, _, ok := lockOp(s.X); ok {
			return // the region boundary itself is not a violation
		}
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		case *ast.SendStmt:
			c.pass.Reportf(n.Pos(), "channel send while a shard lock is held; complete futures after Release")
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

// checkCall flags a single call made while a lock is held.
func (c *checker) checkCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.callbacks[obj] {
			c.pass.Reportf(call.Pos(), "call to user callback %s while a shard lock is held; collect under the lock, emit after Release", id.Name)
		}
		return
	}
	recv, name, ok := analysis.MethodCall(call)
	if !ok || !ast.IsExported(name) {
		return
	}
	n := analysis.NamedRecv(c.pass.TypesInfo, recv)
	if n == nil {
		return
	}
	p := n.Obj().Pkg()
	if p == nil {
		return
	}
	// Other packages are free to name a type Store (the lsm engine
	// does) or Log; only the sharded store's API and the wal package's
	// Log — or a fixture's local stand-in — carry the contracts.
	local := p == c.pass.Pkg
	switch {
	case storeTypes[n.Obj().Name()] && (p.Name() == "shardedkv" || local):
		c.pass.Reportf(call.Pos(), "re-entrant %s.%s call while a shard lock is held risks self-deadlock or lock-order inversion", n.Obj().Name(), name)
	case n.Obj().Name() == "Log" && walSyncMethods[name] && (p.Name() == "wal" || local):
		c.pass.Reportf(call.Pos(), "wal.Log.%s issues fsync while a shard lock is held; append under the lock, group-commit after Release", name)
	case n.Obj().Name() == "Biased" && name == "Revoke" && (p.Name() == "locks" || local):
		c.pass.Reportf(call.Pos(), "locks.Biased.Revoke waits out the owner's grace period while a shard lock is held; revoke before acquiring")
	}
}

// lockOp matches X.Acquire(w) / X.Release(w) as a region boundary and
// returns the canonical lock key.
func lockOp(e ast.Expr) (key, kind string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 1 {
		return "", "", false
	}
	recv, name, isMethod := analysis.MethodCall(call)
	if !isMethod || (name != "Acquire" && name != "Release") {
		return "", "", false
	}
	return analysis.ExprKey(recv), name, true
}

// tryAcquireCond matches X.TryAcquire(w) or X.electTry(w) used as a
// condition and returns the canonical lock key.
func tryAcquireCond(e ast.Expr, info *types.Info) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	recv, name, ok := analysis.MethodCall(call)
	if !ok || (name != "TryAcquire" && name != "electTry") {
		return "", false
	}
	return analysis.ExprKey(recv), true
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func union(a, b map[string]bool) map[string]bool {
	out := clone(a)
	for k := range b {
		out[k] = true
	}
	return out
}

func sameKeys(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
