// Package lockheldcall enforces the collect-under-lock / emit-after-
// release contract from the sharded store: while a shard lock is held
// — a region bracketed by X.Acquire(w)/X.Release(w), or opened by a
// successful X.TryAcquire(w)/X.electTry(w) — the critical section must
// stay pure engine work. Three call shapes are flagged inside a held
// region:
//
//   - invoking a func-typed parameter of the enclosing function (a
//     user callback: Range's fn, a visitor, a hook) — user code must
//     run after release, from collected results;
//   - a channel send (completing a future wakes a waiter into a world
//     where this goroutine still holds the lock; the pipeline
//     completes futures only after release);
//   - calling an exported method on a Store / AsyncStore /
//     ClassedStore / ClassedAsync value (re-entering the public API
//     acquires shard locks and can self-deadlock or invert the
//     ancestor→descendant split order).
//
// Region tracking is lexical and flow-insensitive per statement list:
// an Acquire statement opens a region that a Release of the same lock
// expression in the same list closes ("sh.lock" and the "sh" of
// sh.electTry(w) canonicalize to the same key); a region still open at
// a nested block's entry is inherited by the block; releases inside a
// conditional close the region only for that branch. Successful-
// TryAcquire regions are recognized both as `if X.TryAcquire(w) {...}`
// (held inside the branch) and as the early-return form
// `if !X.TryAcquire(w) { return }` (held after the if). A helper that
// returns with the lock held (acquireLive) opens no lexical region —
// an accepted false negative; those call sites are covered by
// convention and tests.
package lockheldcall

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockheldcall pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockheldcall",
	Doc:  "check that no user callback, future completion or re-entrant store call runs while a shard lock is held",
	Run:  run,
}

// storeTypes are the receiver type names whose exported methods form
// the re-entrant public store API (matched by type name so fixtures
// can declare local stand-ins).
var storeTypes = map[string]bool{
	"Store":        true,
	"AsyncStore":   true,
	"ClassedStore": true,
	"ClassedAsync": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncNodes(file, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			c := &checker{
				pass:      pass,
				callbacks: analysis.FuncParamObjs(pass.TypesInfo, ft),
			}
			c.block(body.List, map[string]bool{})
		})
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	callbacks map[types.Object]bool
}

// block walks one statement list with the set of lock keys held at
// its entry, threading acquisitions and releases through in order.
func (c *checker) block(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		held = c.stmt(s, held)
	}
}

// stmt processes one statement under the current held set and returns
// the held set for the statements that follow it in the same list.
func (c *checker) stmt(s ast.Stmt, held map[string]bool) map[string]bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, kind, ok := lockOp(s.X); ok {
			switch kind {
			case "Acquire":
				held = clone(held)
				held[key] = true
				return held
			case "Release":
				held = clone(held)
				delete(held, key)
				return held
			}
		}
		c.scan(s, held)
		return held

	case *ast.BlockStmt:
		c.block(s.List, clone(held))
		return held

	case *ast.IfStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		// `if X.TryAcquire(w) { ... }`: held inside the branch.
		if key, ok := tryAcquireCond(s.Cond, c.pass.TypesInfo); ok {
			inner := clone(held)
			inner[key] = true
			c.block(s.Body.List, inner)
			if s.Else != nil {
				c.stmt(s.Else, clone(held))
			}
			return held
		}
		// `if !X.TryAcquire(w) { return }`: held after the if.
		if un, okNeg := s.Cond.(*ast.UnaryExpr); okNeg && un.Op.String() == "!" {
			if key, ok := tryAcquireCond(un.X, c.pass.TypesInfo); ok && terminates(s.Body) {
				c.block(s.Body.List, clone(held))
				held = clone(held)
				held[key] = true
				return held
			}
		}
		c.scanExpr(s.Cond, held)
		c.block(s.Body.List, clone(held))
		if s.Else != nil {
			c.stmt(s.Else, clone(held))
		}
		return held

	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, held)
		}
		c.block(s.Body.List, clone(held))
		return held

	case *ast.RangeStmt:
		c.scanExpr(s.X, held)
		c.block(s.Body.List, clone(held))
		return held

	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.block(cc.Body, clone(held))
			}
		}
		return held

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.block(cc.Body, clone(held))
			}
		}
		return held

	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.stmt(cc.Comm, clone(held))
				}
				c.block(cc.Body, clone(held))
			}
		}
		return held

	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)

	case *ast.DeferStmt:
		// `defer X.Release(w)` keeps the region open to function end —
		// which "never close" already models; the deferred call itself
		// runs after this lexical region, so it is not scanned.
		return held

	default:
		c.scan(s, held)
		return held
	}
}

// scan inspects a simple statement's subtree for violations under the
// current held set. Function-literal bodies are skipped: defining a
// closure under the lock is fine, only running one is not (a direct
// call of a literal still surfaces via its CallExpr arguments).
func (c *checker) scan(n ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.pass.Reportf(n.Pos(), "channel send while a shard lock is held; complete futures after Release")
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

func (c *checker) scanExpr(e ast.Expr, held map[string]bool) {
	if e != nil {
		c.scan(e, held)
	}
}

// checkCall flags a single call made while a lock is held.
func (c *checker) checkCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.callbacks[obj] {
			c.pass.Reportf(call.Pos(), "call to user callback %s while a shard lock is held; collect under the lock, emit after Release", id.Name)
		}
		return
	}
	recv, name, ok := analysis.MethodCall(call)
	if !ok || !ast.IsExported(name) {
		return
	}
	n := analysis.NamedRecv(c.pass.TypesInfo, recv)
	if n == nil || !storeTypes[n.Obj().Name()] {
		return
	}
	// Other packages are free to name a type Store (the lsm engine
	// does); only the sharded store's API — or a fixture's local
	// stand-in — is the re-entrancy hazard.
	if p := n.Obj().Pkg(); p != nil && (p.Name() == "shardedkv" || p == c.pass.Pkg) {
		c.pass.Reportf(call.Pos(), "re-entrant %s.%s call while a shard lock is held risks self-deadlock or lock-order inversion", n.Obj().Name(), name)
	}
}

// lockOp matches X.Acquire(w) / X.Release(w) as a region boundary and
// returns the canonical lock key.
func lockOp(e ast.Expr) (key, kind string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 1 {
		return "", "", false
	}
	recv, name, isMethod := analysis.MethodCall(call)
	if !isMethod || (name != "Acquire" && name != "Release") {
		return "", "", false
	}
	return analysis.ExprKey(recv), name, true
}

// tryAcquireCond matches X.TryAcquire(w) or X.electTry(w) used as a
// condition and returns the canonical lock key.
func tryAcquireCond(e ast.Expr, info *types.Info) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	recv, name, ok := analysis.MethodCall(call)
	if !ok || (name != "TryAcquire" && name != "electTry") {
		return "", false
	}
	return analysis.ExprKey(recv), true
}

// terminates reports whether a block always transfers control away
// (its last statement is a return, branch, or panic call).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
