// Package electprobe keeps the skew detector's contention counters
// clean: combiner-election probes must go through the blessed
// shard.electTry helper, never through a bare TryAcquire.
//
// The resharding heuristic (shardedkv) reads locks.Contended's
// attempts/contended ratio to decide when a shard is hot enough to
// split. Contended.TryAcquire counts a failed try as contention — the
// right semantics for sync-path users, and exactly the wrong one for
// election probes, which fail by design at every losing election and
// would make an idle-but-combined shard look contended. electTry
// probes the wrapped lock via Contended.Inner(), bypassing the
// counters; this pass makes that the only way to write an election.
//
// Flagged:
//
//   - any X.TryAcquire(...) call where X's static type is the
//     Contended wrapper (its counting TryAcquire is never an election
//     probe's business);
//   - any other X.TryAcquire(...) call outside a function named
//     electTry, TryAcquire or Acquire — the latter two names exempt
//     lock implementations and wrappers (locks package adapters,
//     Contended itself) that legitimately forward the probe downward.
package electprobe

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the electprobe pass.
var Analyzer = &analysis.Analyzer{
	Name: "electprobe",
	Doc:  "check that combiner elections use shard.electTry, not a counter-polluting bare TryAcquire",
	Run:  run,
}

// exemptFuncs are the enclosing-function names inside which a forwarded
// TryAcquire is part of the lock machinery itself.
var exemptFuncs = map[string]bool{
	"electTry":   true,
	"TryAcquire": true,
	"Acquire":    true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncNodes(file, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			checkFunc(pass, name, body)
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fname string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are visited as their own functions
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := analysis.MethodCall(call)
		if !ok || name != "TryAcquire" {
			return true
		}
		if analysis.NamedRecvType(pass.TypesInfo, recv) == "Contended" {
			pass.Reportf(call.Pos(), "TryAcquire on a locks.Contended counts a failed probe as contention; probe via Inner() inside electTry")
			return true
		}
		if !exemptFuncs[fname] {
			pass.Reportf(call.Pos(), "bare TryAcquire outside electTry: election probes must use shard.electTry so Contended counters stay clean")
		}
		return true
	})
}
