// Fixture for the electprobe pass: stand-ins for locks.WLock and
// locks.Contended, the blessed electTry shape, and the two violation
// shapes (bare probe outside electTry; probe through the counting
// Contended wrapper).
package electprobe

type Worker struct{}

type WLock struct{ held bool }

func (l *WLock) Acquire(w *Worker)         { l.held = true }
func (l *WLock) TryAcquire(w *Worker) bool { return !l.held }

// Contended mirrors locks.Contended: a wrapper whose TryAcquire counts
// a failed probe as contention.
type Contended struct {
	inner    WLock
	attempts int
}

func (c *Contended) Inner() *WLock { return &c.inner }

func (c *Contended) TryAcquire(w *Worker) bool {
	c.attempts++
	return c.inner.TryAcquire(w)
}

func (c *Contended) Acquire(w *Worker) {
	c.attempts++
	if c.inner.TryAcquire(w) {
		return
	}
	c.inner.Acquire(w)
}

type shard struct {
	lock WLock
	cont *Contended
}

// electTry is the blessed helper: probes bypass the Contended
// counters via Inner().
func (sh *shard) electTry(w *Worker) bool {
	if sh.cont != nil {
		return sh.cont.Inner().TryAcquire(w)
	}
	return sh.lock.TryAcquire(w)
}

// --- violations ---

func badBareProbe(sh *shard, w *Worker) bool {
	return sh.lock.TryAcquire(w) // want `bare TryAcquire outside electTry`
}

func badContendedProbe(c *Contended, w *Worker) bool {
	return c.TryAcquire(w) // want `TryAcquire on a locks.Contended counts a failed probe as contention`
}

// --- conforming ---

func okViaHelper(sh *shard, w *Worker) bool {
	return sh.electTry(w)
}

func okBlockingAcquire(sh *shard, w *Worker) {
	sh.lock.Acquire(w)
}
