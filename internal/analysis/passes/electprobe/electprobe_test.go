package electprobe_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/electprobe"
)

func TestElectProbe(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "electprobe"), electprobe.Analyzer)
}
