package statustext_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/statustext"
)

func TestStatusText(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "statustext"), statustext.Analyzer)
}

// TestNoStatusMapIsSilent pins the scoping rule: packages without a
// statusText map declare no naming contract, so the pass says nothing.
func TestNoStatusMapIsSilent(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "nostatusmap"), statustext.Analyzer)
}
