// Package statustext enforces the protocol's error-naming contract:
// every exported Status* wire constant must have an entry in the
// package's statusText map, so StatusText never falls back to the
// numeric "status 0xNN" form for a status the package itself defines.
//
// The failure mode this catches is purely additive drift: a new
// status constant (say StatusErrUnavailable) lands with its wire
// value appended correctly — wireconst is happy — but without a
// human-readable name, so every client error message, log line and
// docs/protocol.md row that renders through StatusText degrades to a
// hex code. The pass is silent in packages that declare no statusText
// map; where one exists, the constant set and the map keys must
// agree.
package statustext

import (
	"go/ast"
	"go/types"
	"unicode"

	"repro/internal/analysis"
)

// Analyzer is the statustext pass.
var Analyzer = &analysis.Analyzer{
	Name: "statustext",
	Doc:  "check that every exported Status* wire constant has a statusText entry",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	keys, ok := statusTextKeys(pass)
	if !ok {
		return nil // package declares no statusText map; out of scope
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !isStatusConst(name.Name) {
						continue
					}
					if !isUint8Const(pass.TypesInfo, name) {
						continue
					}
					if !keys[name.Name] {
						pass.Reportf(name.Pos(), "wire status %s has no statusText entry; StatusText falls back to a numeric code — name every status", name.Name)
					}
				}
			}
		}
	}
	return nil
}

// statusTextKeys finds the package-level `statusText` map composite
// literal and returns the set of Status* identifiers used as keys.
// The second result is false when the package has no such map.
func statusTextKeys(pass *analysis.Pass) (map[string]bool, bool) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "statusText" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					keys := make(map[string]bool)
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if id, ok := kv.Key.(*ast.Ident); ok {
							keys[id.Name] = true
						}
					}
					return keys, true
				}
			}
		}
	}
	return nil, false
}

// isStatusConst reports whether name is an exported member of the
// Status* wire family (StatusOK yes, StatusText and Statusy no — the
// prefix must be followed by an upper-case rune, mirroring wireconst's
// family rule, and StatusText is a function anyway).
func isStatusConst(name string) bool {
	const fam = "Status"
	if !ast.IsExported(name) || len(name) <= len(fam) || name[:len(fam)] != fam {
		return false
	}
	return unicode.IsUpper(rune(name[len(fam)]))
}

// isUint8Const reports whether ident defines a constant of underlying
// type uint8 (the wire-byte shape every protocol status has).
func isUint8Const(info *types.Info, ident *ast.Ident) bool {
	obj, ok := info.Defs[ident].(*types.Const)
	if !ok {
		return false
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}
