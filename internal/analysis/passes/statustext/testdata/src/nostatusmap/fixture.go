// Fixture: a package with Status* constants but NO statusText map is
// out of the statustext pass's scope — not every package that borrows
// the Status prefix renders statuses through a name table. Nothing in
// this file may be flagged.
package nostatusmap

const (
	StatusIdle    uint8 = 0
	StatusRunning uint8 = 1
)
