// Fixture for the statustext pass: every exported Status* uint8
// constant must appear as a key of the package's statusText map.
// Unexported constants, non-uint8 constants, and names where "Status"
// is not followed by an upper-case rune are out of scope.
package statustext

const (
	StatusOK          uint8 = 0x00
	StatusErr         uint8 = 0x01
	StatusErrUnnamed  uint8 = 0x02 // want `wire status StatusErrUnnamed has no statusText entry`
	StatusErrShutdown uint8 = 0x03
	statusInternal    uint8 = 0x7f
	Statusy           uint8 = 0x10
	StatusCodeMax           = 255 // untyped int, not a wire byte
)

var statusText = map[uint8]string{
	StatusOK:          "ok",
	StatusErr:         "error",
	StatusErrShutdown: "server shutting down",
}
