package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Packages(t, "testdata/src",
		[]string{"locksfix", "storefix", "consumerfix"},
		lockorder.Analyzer)
}
