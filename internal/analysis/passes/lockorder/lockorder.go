// Package lockorder builds the whole-program "lock A held while
// acquiring B" graph and checks it against the repository's canonical
// lock order.
//
// # How the graph is built
//
// Within each function, a CFG-based may-held analysis tracks the set
// of lock classes (see analysis.LockClass) that may be held at every
// program point: a direct Acquire/Lock adds its receiver's class, a
// Release/Unlock removes it, and a TryAcquire/TryLock used as a branch
// condition adds it only along the true edge. Calls compose through
// per-function summaries (AcquiresFact) — the classes a function may
// acquire, may release, and may still hold when it returns — computed
// to a fixpoint within the package and exported as object facts, so
// sh.electTry(w) (which returns holding sh.lock) and Cohort.Lock
// (which returns holding both cohort levels) shape their callers'
// held-sets across package boundaries. Every acquire that happens
// while classes are held contributes held→acquired edges; the
// per-package union rides a cumulative GraphFact package fact along
// the import DAG, so by the time kvserver is analyzed the graph spans
// locks → shardedkv → kvserver.
//
// # The canonical order
//
// This table is THE declaration of the repository's lock order —
// ARCHITECTURE.md ("Lock ordering") cites it rather than restating it:
//
//	rank 0  *.splitMu        Store.splitMu, the split rendezvous
//	rank 1  *.shard.lock     shard locks; ancestor before descendant,
//	                         same-class nesting only under splitMu
//	rank 2  everything else  engine/pipeline/server-internal locks
//	                         (AsyncStore.mu, Cohort.global, Server.mu,
//	                         serverConn.mu, ...): innermost, must not
//	                         wrap back around a shard lock
//
// Ranks are matched by class-name suffix so fixture stand-ins rank the
// same as the real tree. Three checks run on every edge added by the
// package under analysis:
//
//   - rank inversion: an edge from a higher-rank class to a strictly
//     lower-rank one (e.g. acquiring splitMu while holding a shard
//     lock) inverts the table;
//   - same-class nesting: a shard.lock→shard.lock edge is legal only
//     under splitMu (the split rendezvous walks ancestor→descendant);
//     any other class acquired while already held is a self-deadlock
//     with itself;
//   - cycles: an edge whose target can already reach its source in the
//     accumulated whole-program graph closes a deadlock-capable cycle.
//
// Static class-level tracking cannot tell shard instances apart, so
// the deliberately ordered ancestor→descendant hops the pipeline
// performs outside splitMu (execForwarded and friends) are reported
// and carry //lint:ignore justifications citing the protocol that
// makes them acyclic — the suppression is the reviewable artifact.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "check every lock acquired while another is held against the canonical splitMu → shard → engine-internal order",
	Run:       run,
	FactTypes: []analysis.Fact{&AcquiresFact{}, &GraphFact{}},
}

// AcquiresFact is the exported summary of one function's lock
// behaviour, in lock classes (sorted for deterministic encoding).
type AcquiresFact struct {
	// Acquires lists every class the function may acquire, directly or
	// through calls.
	Acquires []string
	// Releases lists every class the function may release (including
	// via defer).
	Releases []string
	// ReturnsHeld lists classes that may still be held when the
	// function returns — for a bool-returning function (electTry,
	// TryLockCohort) callers treat these as held on the true branch
	// only.
	ReturnsHeld []string
}

// AFact marks AcquiresFact as a fact.
func (*AcquiresFact) AFact() {}

// GraphFact is the cumulative held-while-acquiring graph: every edge
// observed in this package and everything it imports.
type GraphFact struct {
	Edges []Edge
}

// AFact marks GraphFact as a fact.
func (*GraphFact) AFact() {}

// Edge records one "From held while acquiring To" observation.
type Edge struct {
	From, To string
	// UnderSplitMu is true when a rank-0 class was also held, i.e. the
	// acquire happened inside the split rendezvous.
	UnderSplitMu bool
	// Pos is the acquire site ("file:line:col") and Fn the enclosing
	// function, for cross-package cycle reports.
	Pos, Fn string
}

// rankOf positions a class in the canonical table (see package doc).
func rankOf(class string) int {
	if strings.HasSuffix(class, ".splitMu") {
		return 0
	}
	if strings.HasSuffix(class, ".shard.lock") {
		return 1
	}
	return 2
}

// rankName names a rank in diagnostics.
func rankName(r int) string {
	switch r {
	case 0:
		return "splitMu"
	case 1:
		return "shard lock"
	default:
		return "engine-internal"
	}
}

// summary is the in-flight (set-form) AcquiresFact.
type summary struct {
	acquires, releases, returnsHeld map[string]bool
}

func newSummary() *summary {
	return &summary{
		acquires:    map[string]bool{},
		releases:    map[string]bool{},
		returnsHeld: map[string]bool{},
	}
}

func (s *summary) empty() bool {
	return len(s.acquires)+len(s.releases)+len(s.returnsHeld) == 0
}

func (s *summary) equal(o *summary) bool {
	return setEq(s.acquires, o.acquires) && setEq(s.releases, o.releases) && setEq(s.returnsHeld, o.returnsHeld)
}

func (s *summary) fact() *AcquiresFact {
	return &AcquiresFact{Acquires: setList(s.acquires), Releases: setList(s.releases), ReturnsHeld: setList(s.returnsHeld)}
}

func fromFact(f *AcquiresFact) *summary {
	s := newSummary()
	for _, c := range f.Acquires {
		s.acquires[c] = true
	}
	for _, c := range f.Releases {
		s.releases[c] = true
	}
	for _, c := range f.ReturnsHeld {
		s.returnsHeld[c] = true
	}
	return s
}

// localEdge is an Edge with its real source position for reporting.
type localEdge struct {
	Edge
	pos token.Pos
}

type runner struct {
	pass *analysis.Pass
	// sums holds this package's summaries (fixpoint state) and caches
	// imported ones; missing entries are cached as nil.
	sums map[*types.Func]*summary
	// edges collects held→acquired observations keyed From|To|under
	// (nil during the summary phase).
	edges map[string]*localEdge
	// fn is the function currently being analyzed (for Edge.Fn).
	fn string
}

func run(pass *analysis.Pass) error {
	r := &runner{pass: pass, sums: map[*types.Func]*summary{}}

	// Collect the package's declared functions.
	type declFn struct {
		obj  *types.Func
		name string
		body *ast.BlockStmt
	}
	var decls []declFn
	var anon []*ast.BlockStmt
	for _, file := range pass.Files {
		// Tests deliberately exercise adversarial lock shapes (double
		// TryLock, re-entry probes); their edges must not enter the
		// whole-program graph, where they would indict the conforming
		// production edges they share classes with. Suppressing only
		// their diagnostics is not enough — the edges themselves are
		// the poison.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
					decls = append(decls, declFn{obj: obj, name: n.Name.Name, body: n.Body})
				}
				return true
			case *ast.FuncLit:
				// Literal bodies run in their own dynamic context
				// (goroutines, stored callbacks): analyzed separately
				// with an empty entry held-set, never inlined into the
				// enclosing function's flow.
				anon = append(anon, n.Body)
				return true
			}
			return true
		})
	}

	// Phase 1: summaries to a fixpoint (monotone sets over a finite
	// class universe, so this terminates).
	for _, d := range decls {
		r.sums[d.obj] = newSummary()
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			r.fn = d.name
			s := r.analyzeBody(d.body)
			if !s.equal(r.sums[d.obj]) {
				r.sums[d.obj] = s
				changed = true
			}
		}
	}
	for _, d := range decls {
		s := r.sums[d.obj]
		if len(s.acquires)+len(s.releases)+len(s.returnsHeld) > 0 {
			pass.ExportObjectFact(d.obj, s.fact())
		}
	}

	// Phase 2: edge collection with the final summaries.
	r.edges = map[string]*localEdge{}
	for _, d := range decls {
		r.fn = d.name
		r.analyzeBody(d.body)
	}
	for _, body := range anon {
		r.fn = "func literal"
		r.analyzeBody(body)
	}

	// Assemble the whole-program graph: imported (already cumulative)
	// plus local. adj excludes self-edges — same-class nesting is its
	// own check, and a self-loop would make every reachability query
	// trivially cyclic.
	merged := map[string]Edge{}
	for _, imp := range pass.Pkg.Imports() {
		var gf GraphFact
		if !pass.ImportPackageFact(imp.Path(), &gf) {
			continue
		}
		for _, e := range gf.Edges {
			k := e.From + "|" + e.To + "|" + fmt.Sprint(e.UnderSplitMu)
			if _, ok := merged[k]; !ok {
				merged[k] = e
			}
		}
	}
	local := make([]*localEdge, 0, len(r.edges))
	for _, e := range r.edges {
		local = append(local, e)
	}
	sort.Slice(local, func(i, j int) bool { return local[i].pos < local[j].pos })
	adj := map[string]map[string]bool{}
	addAdj := func(e Edge) {
		if e.From == e.To {
			return
		}
		// Rank-inverting edges are diagnosed by the rank check (here
		// or in the package that added them); keeping them out of the
		// cycle graph stops one deliberate inversion from tainting
		// every conforming edge it completes a loop with.
		if rankOf(e.To) < rankOf(e.From) {
			return
		}
		if adj[e.From] == nil {
			adj[e.From] = map[string]bool{}
		}
		adj[e.From][e.To] = true
	}
	for _, e := range merged {
		addAdj(e)
	}
	for _, e := range local {
		addAdj(e.Edge)
	}

	// Checks — on locally-added edges only (imported edges were
	// checked when their package was analyzed).
	for _, e := range local {
		if e.From == e.To {
			if rankOf(e.From) == 1 {
				if !e.UnderSplitMu {
					pass.Reportf(e.pos, "shard lock acquired in %s while a shard lock is already held outside the splitMu rendezvous; ancestor→descendant nesting is only proven safe under splitMu", e.Fn)
				}
				continue
			}
			pass.Reportf(e.pos, "%s acquired in %s while already held (self-deadlock)", e.From, e.Fn)
			continue
		}
		if rf, rt := rankOf(e.From), rankOf(e.To); rt < rf {
			pass.Reportf(e.pos, "lock-order inversion in %s: acquiring %s (%s) while holding %s (%s); the canonical order is splitMu → ancestor shard → descendant shard → engine-internal (see package lockorder)", e.Fn, e.To, rankName(rt), e.From, rankName(rf))
			continue
		}
		if path := findPath(adj, e.To, e.From); path != nil {
			pass.Reportf(e.pos, "lock-order cycle in %s: acquiring %s while holding %s closes %s", e.Fn, e.To, e.From, renderCycle(e.From, path))
		}
	}

	// Export the cumulative graph for dependents.
	for _, e := range local {
		k := e.From + "|" + e.To + "|" + fmt.Sprint(e.UnderSplitMu)
		if _, ok := merged[k]; !ok {
			merged[k] = e.Edge
		}
	}
	out := GraphFact{Edges: make([]Edge, 0, len(merged))}
	for _, e := range merged {
		out.Edges = append(out.Edges, e)
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		a, b := out.Edges[i], out.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return !a.UnderSplitMu && b.UnderSplitMu
	})
	pass.ExportPackageFact(&out)
	return nil
}

// analyzeBody runs the may-held flow over one function body and
// returns its summary; when r.edges is non-nil every held→acquired
// observation is also recorded.
func (r *runner) analyzeBody(body *ast.BlockStmt) *summary {
	g := cfg.New(body)
	cur := newSummary()
	flow := cfg.Flow[map[string]bool]{
		Entry: map[string]bool{},
		Transfer: func(n ast.Node, held map[string]bool) map[string]bool {
			if _, ok := n.(*ast.DeferStmt); ok {
				// The deferred call runs at function exit, not here:
				// its releases are folded into ReturnsHeld below, and
				// treating them as immediate would silently close the
				// critical section (defer mu.Unlock() would erase the
				// held-set the very next statement depends on).
				return held
			}
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok {
					r.apply(call, held, cur)
				}
				return true
			})
			return held
		},
		Branch: func(cond ast.Expr, out map[string]bool) (map[string]bool, map[string]bool) {
			classes := r.tryClasses(cond)
			if len(classes) == 0 {
				return out, out
			}
			// Transfer added the try-acquired classes as may-held;
			// on the false edge the try failed, so strip them.
			f := setClone(out)
			for _, c := range classes {
				delete(f, c)
			}
			return out, f
		},
		Join:  setUnion,
		Equal: setEq,
		Clone: setClone,
	}
	res := cfg.Solve(g, flow)

	// ReturnsHeld = may-held at exit minus defer-released classes.
	if exit, ok := res.In[g.Exit]; ok {
		for c := range exit {
			cur.returnsHeld[c] = true
		}
	}
	for _, d := range g.Defers {
		if s := r.summaryOf(analysis.Callee(r.pass.TypesInfo, d.Call)); s != nil && !s.empty() {
			for c := range s.releases {
				delete(cur.returnsHeld, c)
				cur.releases[c] = true
			}
			continue
		}
		if recv, verb, ok := analysis.LockCall(d.Call); ok && verb == analysis.VerbRelease {
			if class := analysis.LockClass(r.pass.TypesInfo, recv); class != "" {
				delete(cur.returnsHeld, class)
				cur.releases[class] = true
			}
		}
	}
	return cur
}

// apply folds one call's lock effect into held, accumulating the
// function summary and (in phase 2) edges.
//
// A call can match both ways: x.mu.Unlock() is lexically a LockCall on
// x.mu, and Unlock may also be a summarized method (a lock front end
// whose release path unlocks an inner lock). The summary wins when it
// has one — it names the class the paired acquire used, where the
// lexical reading would invent a second class for the same lock and
// leave the held-set never cleared. The lexical path is the fallback
// for leaf primitives (sync.Mutex, interface-typed lock fields,
// fixture stand-ins) whose callees have no summary.
func (r *runner) apply(call *ast.CallExpr, held map[string]bool, cur *summary) {
	if s := r.summaryOf(analysis.Callee(r.pass.TypesInfo, call)); s != nil && !s.empty() {
		for _, c := range setList(s.acquires) {
			r.noteAcquire(call.Pos(), c, held)
			cur.acquires[c] = true
		}
		for c := range s.releases {
			delete(held, c)
			cur.releases[c] = true
		}
		for c := range s.returnsHeld {
			held[c] = true
		}
		return
	}
	if recv, verb, ok := analysis.LockCall(call); ok {
		class := analysis.LockClass(r.pass.TypesInfo, recv)
		if class == "" {
			return
		}
		switch verb {
		case analysis.VerbAcquire, analysis.VerbTry:
			// VerbTry in statement position is a may-acquire; when it
			// is a branch condition, Branch strips it from the false
			// edge afterwards.
			r.noteAcquire(call.Pos(), class, held)
			held[class] = true
			cur.acquires[class] = true
		case analysis.VerbRelease:
			delete(held, class)
			cur.releases[class] = true
		}
	}
}

// noteAcquire records held→class edges at pos (phase 2 only).
func (r *runner) noteAcquire(pos token.Pos, class string, held map[string]bool) {
	if r.edges == nil || len(held) == 0 {
		return
	}
	under := false
	for h := range held {
		if rankOf(h) == 0 {
			under = true
			break
		}
	}
	for h := range held {
		k := h + "|" + class + "|" + fmt.Sprint(under)
		if _, ok := r.edges[k]; ok {
			continue
		}
		r.edges[k] = &localEdge{
			Edge: Edge{
				From: h, To: class, UnderSplitMu: under,
				Pos: r.pass.Fset.Position(pos).String(), Fn: r.fn,
			},
			pos: pos,
		}
	}
}

// tryClasses returns the classes conditionally held by a branch
// condition: a direct TryAcquire/TryLock's class, or the callee's
// ReturnsHeld for helpers like electTry that return holding a lock.
func (r *runner) tryClasses(cond ast.Expr) []string {
	call, ok := ast.Unparen(cond).(*ast.CallExpr)
	if !ok {
		return nil
	}
	// Same precedence as apply: the callee's summary names the classes
	// the try actually leaves held; the lexical reading is the fallback
	// for unsummarized leaf primitives.
	if s := r.summaryOf(analysis.Callee(r.pass.TypesInfo, call)); s != nil && !s.empty() {
		return setList(s.returnsHeld)
	}
	if recv, verb, ok := analysis.LockCall(call); ok {
		if verb != analysis.VerbTry {
			return nil
		}
		if class := analysis.LockClass(r.pass.TypesInfo, recv); class != "" {
			return []string{class}
		}
	}
	return nil
}

// summaryOf resolves fn's summary: this package's fixpoint state, or
// an imported AcquiresFact (cached, including misses).
func (r *runner) summaryOf(fn *types.Func) *summary {
	if fn == nil {
		return nil
	}
	if s, ok := r.sums[fn]; ok {
		return s
	}
	var f AcquiresFact
	var s *summary
	if r.pass.ImportObjectFact(fn, &f) {
		s = fromFact(&f)
	}
	r.sums[fn] = s
	return s
}

// findPath returns the class chain from from to to in adj (BFS,
// deterministic neighbor order), or nil if unreachable.
func findPath(adj map[string]map[string]bool, from, to string) []string {
	if from == to {
		return []string{from}
	}
	parent := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, next := range setList(adj[n]) {
			if _, seen := parent[next]; seen {
				continue
			}
			parent[next] = n
			if next == to {
				var path []string
				for c := to; c != ""; c = parent[c] {
					path = append(path, c)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// renderCycle prints "A → B → C → A" for the cycle closed by the
// reported edge from→(path[0]...path[n]==from's holder).
func renderCycle(from string, path []string) string {
	parts := append([]string{from}, path...)
	return strings.Join(parts, " → ")
}

func setList(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func setEq(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func setClone(a map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

func setUnion(a, b map[string]bool) map[string]bool {
	for k := range b {
		a[k] = true
	}
	return a
}
