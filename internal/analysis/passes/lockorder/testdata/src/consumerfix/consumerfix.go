// Package consumerfix is the fixture stand-in for a network front end
// sitting on top of the store: its violations are only visible through
// the facts imported from locksfix and storefix — the cross-package
// half of the lockorder contract.
package consumerfix

import (
	"locksfix"
	"storefix"
)

// Server stands in for the kvserver front end.
type Server struct {
	mu locksfix.WLock
	st *storefix.Store
}

// goodServe keeps the server lock and the store call disjoint.
func (s *Server) goodServe(w *locksfix.Worker, k uint64) {
	s.mu.Acquire(w)
	s.mu.Release(w)
	s.st.Get(w, k)
}

// badServe calls into the store while holding the server lock: Get's
// imported summary says it acquires shard locks, and engine-internal
// locks must never wrap back around a shard lock.
func (s *Server) badServe(w *locksfix.Worker, k uint64) {
	s.mu.Acquire(w)
	s.st.Get(w, k) // want `lock-order inversion in badServe: acquiring storefix\.shard\.lock \(shard lock\) while holding consumerfix\.Server\.mu \(engine-internal\)`
	s.mu.Release(w)
}

// reenter double-acquires the server lock.
func (s *Server) reenter(w *locksfix.Worker) {
	s.mu.Acquire(w)
	s.mu.Acquire(w) // want `consumerfix\.Server\.mu acquired in reenter while already held \(self-deadlock\)`
	s.mu.Release(w)
}

// UseBoth follows the Pair's declared A-then-B order through the
// imported helper summaries: clean.
func UseBoth(w *locksfix.Worker, p *locksfix.Pair) {
	p.LockBoth(w)
	p.UnlockBoth(w)
}

// Invert takes the Pair backwards: B then A. The A→B edge lives in
// locksfix's exported graph, so this closes a cross-package cycle.
func Invert(w *locksfix.Worker, p *locksfix.Pair) {
	p.B.Acquire(w)
	p.A.Acquire(w) // want `lock-order cycle in Invert: acquiring locksfix\.Pair\.A while holding locksfix\.Pair\.B closes locksfix\.Pair\.B → locksfix\.Pair\.A → locksfix\.Pair\.B`
	p.A.Release(w)
	p.B.Release(w)
}

// ReenterBiased double-acquires through the biased wrapper from two
// packages away: both held-set entries come from locksfix's imported
// summaries, and the self-deadlock is reported against the delegated
// inner class even though no lock field is named at this call site.
func ReenterBiased(w *locksfix.Worker, b *locksfix.Biased) {
	b.Acquire(w)
	b.Acquire(w) // want `locksfix\.Biased\.inner acquired in ReenterBiased while already held \(self-deadlock\)`
	b.Release(w)
	b.Release(w)
}

// TryBiasedRefined exercises the try-branch refinement through the
// wrapper's summary: on the failed-try path nothing is held, so the
// Pair acquisition there is clean.
func TryBiasedRefined(w *locksfix.Worker, b *locksfix.Biased, p *locksfix.Pair) {
	if !b.TryAcquire(w) {
		p.LockBoth(w)
		p.UnlockBoth(w)
		return
	}
	b.Release(w)
}
