// Package locksfix is the fixture stand-in for internal/locks: the
// WLock protocol plus a two-level Pair whose declared internal order
// (A before B) seeds the cross-package graph that consumerfix inverts.
package locksfix

// Worker stands in for core.Worker.
type Worker struct{ ID int }

// WLock stands in for the worker-aware lock interface.
type WLock struct{ state uint32 }

// Acquire blocks until the lock is held.
func (l *WLock) Acquire(w *Worker) { l.state = 1 }

// Release unlocks.
func (l *WLock) Release(w *Worker) { l.state = 0 }

// TryAcquire acquires iff the lock is immediately available.
func (l *WLock) TryAcquire(w *Worker) bool { return true }

// Pair is a two-level lock; the declared order is A then B.
type Pair struct {
	A, B WLock
}

// LockBoth takes both levels in the declared order and returns
// holding them (its summary's ReturnsHeld carries A and B to every
// importing package).
func (p *Pair) LockBoth(w *Worker) {
	p.A.Acquire(w)
	p.B.Acquire(w)
}

// UnlockBoth releases both levels.
func (p *Pair) UnlockBoth(w *Worker) {
	p.B.Release(w)
	p.A.Release(w)
}
