// Package locksfix is the fixture stand-in for internal/locks: the
// WLock protocol plus a two-level Pair whose declared internal order
// (A before B) seeds the cross-package graph that consumerfix inverts.
package locksfix

// Worker stands in for core.Worker.
type Worker struct{ ID int }

// WLock stands in for the worker-aware lock interface.
type WLock struct{ state uint32 }

// Acquire blocks until the lock is held.
func (l *WLock) Acquire(w *Worker) { l.state = 1 }

// Release unlocks.
func (l *WLock) Release(w *Worker) { l.state = 0 }

// TryAcquire acquires iff the lock is immediately available.
func (l *WLock) TryAcquire(w *Worker) bool { return true }

// Pair is a two-level lock; the declared order is A then B.
type Pair struct {
	A, B WLock
}

// LockBoth takes both levels in the declared order and returns
// holding them (its summary's ReturnsHeld carries A and B to every
// importing package).
func (p *Pair) LockBoth(w *Worker) {
	p.A.Acquire(w)
	p.B.Acquire(w)
}

// UnlockBoth releases both levels.
func (p *Pair) UnlockBoth(w *Worker) {
	p.B.Release(w)
	p.A.Release(w)
}

// Biased stands in for the biased single-owner wrapper: every lock
// method delegates to the wrapped inner lock, so the wrapper mints no
// lock class of its own — callers' held-sets carry locksfix.Biased.inner
// through the exported summaries, and violations through the wrapper
// are diagnosed against the inner field's class.
type Biased struct{ inner WLock }

// Acquire delegates to the inner lock (the real fast path skips the
// inner RMW, but either way the caller holds the inner class).
func (b *Biased) Acquire(w *Worker) { b.inner.Acquire(w) }

// Release delegates to the inner lock.
func (b *Biased) Release(w *Worker) { b.inner.Release(w) }

// TryAcquire delegates; on success the caller holds the inner class
// (ReturnsHeld in the exported summary).
func (b *Biased) TryAcquire(w *Worker) bool { return b.inner.TryAcquire(w) }

// Revoke tears the bias down. The inner acquire/release pair stands in
// for the grace-period wait that serializes with the parked owner; the
// summary says Revoke may acquire the inner class and returns holding
// nothing.
func (b *Biased) Revoke(w *Worker) {
	b.inner.Acquire(w)
	b.inner.Release(w)
}
