// Package storefix is the fixture stand-in for internal/shardedkv:
// a Store with splitMu and shard locks, a conforming split rendezvous,
// and the two in-package violations the canonical order forbids — the
// inverted child-held-while-taking-parent acquire and a shard lock
// held while taking splitMu.
package storefix

import "locksfix"

type shard struct {
	lock  locksfix.WLock
	depth int
}

// Store stands in for the sharded store.
type Store struct {
	splitMu locksfix.WLock
	shards  []*shard
}

// electTry stands in for the combiner election probe: on success it
// returns holding sh.lock (ReturnsHeld in its exported summary).
func (sh *shard) electTry(w *locksfix.Worker) bool {
	return sh.lock.TryAcquire(w)
}

// Get is the conforming sync path: one shard lock, bracketed.
func (s *Store) Get(w *locksfix.Worker, k uint64) {
	sh := s.shards[int(k)%len(s.shards)]
	sh.lock.Acquire(w)
	sh.lock.Release(w)
}

// split is the conforming rendezvous: splitMu, then the parent shard,
// then the child — the ancestor→descendant nesting is legal because
// splitMu is held.
func (s *Store) split(w *locksfix.Worker, sh *shard) {
	s.splitMu.Acquire(w)
	sh.lock.Acquire(w)
	child := s.shards[0]
	child.lock.Acquire(w)
	child.lock.Release(w)
	sh.lock.Release(w)
	s.splitMu.Release(w)
}

// splitDeferred is split with the defer idiom: the deferred Release is
// an exit effect, so splitMu is still held at the nested shard
// acquires — the same-class nesting stays under the rendezvous and the
// function must stay clean. (A pass that applied the defer's release
// immediately would flag the nesting as outside splitMu.)
func (s *Store) splitDeferred(w *locksfix.Worker, sh *shard) {
	s.splitMu.Acquire(w)
	defer s.splitMu.Release(w)
	sh.lock.Acquire(w)
	child := s.shards[0]
	child.lock.Acquire(w)
	child.lock.Release(w)
	sh.lock.Release(w)
}

// adopt inverts the rendezvous: the child's lock is taken first, then
// the parent's, with splitMu never held.
func (s *Store) adopt(w *locksfix.Worker, parent, child *shard) {
	child.lock.Acquire(w)
	parent.lock.Acquire(w) // want `shard lock acquired in adopt while a shard lock is already held outside the splitMu rendezvous`
	parent.lock.Release(w)
	child.lock.Release(w)
}

// splitFromShard takes splitMu while holding a shard lock — backwards
// through the rank table.
func (s *Store) splitFromShard(w *locksfix.Worker, sh *shard) {
	sh.lock.Acquire(w)
	s.splitMu.Acquire(w) // want `lock-order inversion in splitFromShard: acquiring storefix\.Store\.splitMu \(splitMu\) while holding storefix\.shard\.lock \(shard lock\)`
	s.splitMu.Release(w)
	sh.lock.Release(w)
}

// maybeSplit exercises the try-branch refinement through a callee
// summary: when electTry fails nothing is held, so taking splitMu on
// that path is clean — a flow-insensitive pass would flag it.
func (s *Store) maybeSplit(w *locksfix.Worker, sh *shard) {
	if !sh.electTry(w) {
		s.splitMu.Acquire(w)
		s.splitMu.Release(w)
		return
	}
	sh.lock.Release(w)
}

// revokeBeforeSplit is the conforming biased-split shape: the bias is
// revoked while nothing is held (Revoke's summary acquires and releases
// the wrapper's inner class), then the rendezvous runs as usual.
func (s *Store) revokeBeforeSplit(w *locksfix.Worker, b *locksfix.Biased, sh *shard) {
	b.Revoke(w)
	s.splitMu.Acquire(w)
	sh.lock.Acquire(w)
	sh.lock.Release(w)
	s.splitMu.Release(w)
}

// splitUnderBias takes splitMu while holding the biased wrapper. The
// held-set tracks the wrapper's delegated class — the diagnostic names
// locksfix.Biased.inner (engine-internal rank), not the wrapper call
// site — so the inversion against rank-0 splitMu is caught through one
// level of delegation.
func (s *Store) splitUnderBias(w *locksfix.Worker, b *locksfix.Biased) {
	b.Acquire(w)
	s.splitMu.Acquire(w) // want `lock-order inversion in splitUnderBias: acquiring storefix\.Store\.splitMu \(splitMu\) while holding locksfix\.Biased\.inner \(engine-internal\)`
	s.splitMu.Release(w)
	b.Release(w)
}
