// Package classhintpair enforces the per-operation ClassHint contract
// from internal/core: a hint installed with SetClassHint is an
// operation-scoped override, never goroutine state, so every
// SetClassHint must be un-done inside the same function — either by a
// deferred restore (defer w.ClearClassHint()) or by an explicit clear
// that provably runs on every return path — and the hinted worker must
// not be captured by a goroutine spawned while the hint is live.
//
// A leaked hint is the serving-boundary failure mode: the next request
// on the connection would run under the previous request's SLO class,
// silently steering lock admission, combiner election and epoch
// feedback with a stale class. The race window is invisible to the
// race detector (Worker is single-goroutine by design), which is why
// this is a static check.
//
// Liveness runs on the control-flow graph from internal/analysis/cfg
// as a may-live dataflow: a SetClassHint adds its site to the live
// set, a ClearClassHint empties it (any clear covers any set — the
// hint is worker-global), and states join by union, so a hint that
// survives *any* path to a return or to the function's end is
// reported — including a set inside a loop whose clear a `continue`
// skips. A deferred ClearClassHint (or SetClassHint restoring a saved
// value) anywhere in the function covers every return path; the
// goroutine-escape check still applies while the hint is live.
package classhintpair

import (
	"go/ast"
	"go/token"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the classhintpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "classhintpair",
	Doc:  "check that every SetClassHint is cleared on all return paths and never escapes into a goroutine",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncNodes(file, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			checkFunc(pass, body)
		})
	}
	return nil
}

// hints is the dataflow state: the set of SetClassHint sites whose
// hint may still be live, keyed by the call's position (the value is
// the call itself, for reporting).
type hints map[token.Pos]*ast.CallExpr

// checkFunc checks one function body. Nested function literals are
// opaque here (FuncNodes visits them as functions in their own right):
// the pairing contract is per-function, because a literal outlives the
// statement that creates it.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	res := cfg.Solve(g, cfg.Flow[hints]{
		Entry:    hints{},
		Transfer: transfer,
		Join: func(a, b hints) hints {
			out := cloneHints(a)
			for p, c := range b {
				out[p] = c
			}
			return out
		},
		Equal: func(a, b hints) bool {
			if len(a) != len(b) {
				return false
			}
			for p := range a {
				if _, ok := b[p]; !ok {
					return false
				}
			}
			return true
		},
		Clone: cloneHints,
	})

	// A deferred ClearClassHint (or SetClassHint restoring a saved
	// value) covers every return path.
	hasDeferredRestore := false
	for _, d := range g.Defers {
		if _, name, ok := analysis.MethodCall(d.Call); ok && (name == "ClearClassHint" || name == "SetClassHint") {
			hasDeferredRestore = true
		}
	}

	type leak struct {
		set *ast.CallExpr
		ret token.Pos // NoPos for the fall-off-end form
	}
	var leaks []leak
	seen := map[leak]bool{}
	report := func(l leak) {
		if !seen[l] {
			seen[l] = true
			leaks = append(leaks, l)
		}
	}

	for _, b := range g.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		st := cloneHints(in)
		fallsToExit := blockEdgesTo(b, g.Exit)
		for _, n := range b.Nodes {
			// A goroutine spawned while any hint is live may capture
			// the hinted worker — defers don't help, the goroutine
			// outlives them.
			if gs, ok := n.(*ast.GoStmt); ok {
				for _, set := range sortedHints(st) {
					recv, _, _ := analysis.MethodCall(set)
					target := analysis.LeafObj(pass.TypesInfo, recv)
					if target == nil || analysis.ReferencesObj(pass.TypesInfo, gs.Call, target) {
						pass.Reportf(gs.Pos(), "goroutine spawned while a ClassHint set at line %d is live may capture the hinted worker",
							pass.Fset.Position(set.Pos()).Line)
					}
				}
			}
			if ret, ok := n.(*ast.ReturnStmt); ok && !hasDeferredRestore {
				for _, set := range sortedHints(st) {
					report(leak{set: set, ret: ret.Pos()})
				}
				fallsToExit = false // this exit is accounted for
			}
			st = transfer(n, st)
		}
		// A block that reaches Exit without a return is the implicit
		// end of the function: a hint live there was never paired.
		if fallsToExit && !hasDeferredRestore {
			for _, set := range sortedHints(st) {
				report(leak{set: set})
			}
		}
	}

	sort.Slice(leaks, func(i, j int) bool {
		if leaks[i].set.Pos() != leaks[j].set.Pos() {
			return leaks[i].set.Pos() < leaks[j].set.Pos()
		}
		return leaks[i].ret < leaks[j].ret
	})
	for _, l := range leaks {
		if l.ret == token.NoPos {
			pass.Reportf(l.set.Pos(), "SetClassHint is not paired with a defer ClearClassHint or a clear on all return paths in this function")
		} else {
			pass.Reportf(l.set.Pos(), "SetClassHint may leak: return at line %d is not preceded by ClearClassHint",
				pass.Fset.Position(l.ret).Line)
		}
	}
}

// transfer applies one node's hint effect: a SetClassHint statement
// adds its site, a ClearClassHint statement clears every live hint
// (the hint is a single worker-global slot, so any clear covers any
// set). Deferred calls have no flow effect — they run at exit and are
// handled by the deferred-restore check.
func transfer(n ast.Node, st hints) hints {
	s, ok := n.(*ast.ExprStmt)
	if !ok {
		return st
	}
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return st
	}
	_, name, ok := analysis.MethodCall(call)
	if !ok {
		return st
	}
	switch name {
	case "SetClassHint":
		st = cloneHints(st)
		st[call.Pos()] = call
	case "ClearClassHint":
		st = hints{}
	}
	return st
}

func cloneHints(st hints) hints {
	out := make(hints, len(st))
	for p, c := range st {
		out[p] = c
	}
	return out
}

// sortedHints returns the live set calls in source order, for
// deterministic reports.
func sortedHints(st hints) []*ast.CallExpr {
	out := make([]*ast.CallExpr, 0, len(st))
	for _, c := range st {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// blockEdgesTo reports whether b has an edge to target.
func blockEdgesTo(b, target *cfg.Block) bool {
	for _, s := range b.Succs {
		if s == target {
			return true
		}
	}
	return false
}
