// Package classhintpair enforces the per-operation ClassHint contract
// from internal/core: a hint installed with SetClassHint is an
// operation-scoped override, never goroutine state, so every
// SetClassHint must be un-done inside the same function — either by a
// deferred restore (defer w.ClearClassHint()) or by an explicit clear
// that provably runs on every return path — and the hinted worker must
// not be captured by a goroutine spawned while the hint is live.
//
// A leaked hint is the serving-boundary failure mode: the next request
// on the connection would run under the previous request's SLO class,
// silently steering lock admission, combiner election and epoch
// feedback with a stale class. The race window is invisible to the
// race detector (Worker is single-goroutine by design), which is why
// this is a static check.
package classhintpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the classhintpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "classhintpair",
	Doc:  "check that every SetClassHint is cleared on all return paths and never escapes into a goroutine",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncNodes(file, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			checkFunc(pass, body)
		})
	}
	return nil
}

// checkFunc checks one function body. Nested function literals are
// opaque here (FuncNodes visits them as functions in their own right):
// the pairing contract is per-function, because a literal outlives the
// statement that creates it.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	lists := stmtLists(body)

	// A deferred ClearClassHint (or SetClassHint restoring a saved
	// value) anywhere in the function covers every return path.
	hasDeferredRestore := false
	for _, list := range lists {
		for _, s := range list {
			if d, ok := s.(*ast.DeferStmt); ok {
				if _, name, ok := analysis.MethodCall(d.Call); ok && (name == "ClearClassHint" || name == "SetClassHint") {
					hasDeferredRestore = true
				}
			}
		}
	}

	for _, list := range lists {
		for i, s := range list {
			call, isSet := hintCall(s, "SetClassHint")
			if !isSet {
				continue
			}
			regionEnd := body.End()
			if !hasDeferredRestore {
				clearIdx := -1
				for j := i + 1; j < len(list); j++ {
					if _, ok := hintCall(list[j], "ClearClassHint"); ok {
						clearIdx = j
						break
					}
				}
				if clearIdx < 0 {
					pass.Reportf(call.Pos(), "SetClassHint is not paired with a defer ClearClassHint or a clear on all return paths in this function")
				} else {
					regionEnd = list[clearIdx].Pos()
					// Every return between the set and its clear must
					// itself sit behind a clear in its own block.
					for j := i + 1; j < clearIdx; j++ {
						ast.Inspect(list[j], func(n ast.Node) bool {
							if _, ok := n.(*ast.FuncLit); ok {
								return false
							}
							ret, ok := n.(*ast.ReturnStmt)
							if !ok {
								return true
							}
							if !returnCovered(lists, ret) {
								pass.Reportf(call.Pos(), "SetClassHint may leak: return at line %d is not preceded by ClearClassHint",
									pass.Fset.Position(ret.Pos()).Line)
							}
							return true
						})
					}
				}
			}
			checkGoroutineEscape(pass, body, call, regionEnd)
		}
	}
}

// hintCall matches a statement of the form recv.<method>(...).
func hintCall(s ast.Stmt, method string) (*ast.CallExpr, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if _, name, ok := analysis.MethodCall(call); !ok || name != method {
		return nil, false
	}
	return call, true
}

// returnCovered reports whether ret's innermost statement list
// contains a ClearClassHint call before the return.
func returnCovered(lists [][]ast.Stmt, ret *ast.ReturnStmt) bool {
	for _, list := range lists {
		for i, s := range list {
			if s != ast.Stmt(ret) {
				continue
			}
			for j := 0; j < i; j++ {
				if _, ok := hintCall(list[j], "ClearClassHint"); ok {
					return true
				}
			}
			return false
		}
	}
	return false
}

// checkGoroutineEscape flags a go statement spawned while the hint
// installed by set is still live (between the set and its clear, or
// anywhere after the set in the defer form) whose function references
// the hinted worker: the goroutine would observe — or race with — an
// operation-scoped override on a single-goroutine Worker.
func checkGoroutineEscape(pass *analysis.Pass, body *ast.BlockStmt, set *ast.CallExpr, regionEnd token.Pos) {
	recv, _, _ := analysis.MethodCall(set)
	target := leafObj(pass.TypesInfo, recv)
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if g.Pos() <= set.End() || g.Pos() >= regionEnd {
			return true
		}
		if target == nil || referencesObj(pass.TypesInfo, g.Call, target) {
			pass.Reportf(g.Pos(), "goroutine spawned while a ClassHint set at line %d is live may capture the hinted worker",
				pass.Fset.Position(set.Pos()).Line)
		}
		return true
	})
}

// leafObj resolves the object a receiver chain ends in: the variable
// for w.SetClassHint, the field for s.w.SetClassHint.
func leafObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.ParenExpr:
		return leafObj(info, e.X)
	}
	return nil
}

func referencesObj(info *types.Info, n ast.Node, target types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}

// stmtLists enumerates every statement list in body — block bodies,
// switch/select clause bodies — without descending into function
// literals.
func stmtLists(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			out = append(out, n.List)
		case *ast.CaseClause:
			out = append(out, n.Body)
		case *ast.CommClause:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}
