// Fixture for the classhintpair pass: import-free stand-ins for
// core.Worker, violating and conforming SetClassHint shapes. Lines
// expecting a diagnostic carry a `// want` comment.
package classhintpair

type Class int

type Worker struct {
	hinted bool
	hint   Class
}

func (w *Worker) SetClassHint(c Class) { w.hinted, w.hint = true, c }
func (w *Worker) ClearClassHint()      { w.hinted = false }

func doWork() {}

// --- violations ---

func leaks(w *Worker) {
	w.SetClassHint(1) // want `SetClassHint is not paired`
	doWork()
}

func leakyReturn(w *Worker, cond bool) {
	w.SetClassHint(1) // want `may leak: return at line \d+ is not preceded by ClearClassHint`
	if cond {
		return
	}
	w.ClearClassHint()
}

func escapesIntoGoroutine(w *Worker) {
	w.SetClassHint(1)
	go func() { doWork(); _ = w.hinted }() // want `goroutine spawned while a ClassHint set at line \d+ is live`
	w.ClearClassHint()
}

func escapesWithDefer(w *Worker) {
	w.SetClassHint(1)
	defer w.ClearClassHint()
	go func() { _ = w.hint }() // want `goroutine spawned while a ClassHint`
}

func leaksViaContinue(w *Worker, xs []int) {
	for _, x := range xs {
		w.SetClassHint(1) // want `SetClassHint is not paired`
		if x > 0 {
			continue // skips the clear below: the hint survives the loop
		}
		w.ClearClassHint()
	}
}

// --- conforming ---

func okLoopPaired(w *Worker, xs []int) {
	for _, x := range xs {
		w.SetClassHint(Class(x))
		doWork()
		w.ClearClassHint()
	}
}

func okDefer(w *Worker) {
	w.SetClassHint(1)
	defer w.ClearClassHint()
	doWork()
}

func okAllPaths(w *Worker, cond bool) int {
	w.SetClassHint(1)
	if cond {
		w.ClearClassHint()
		return 1
	}
	w.ClearClassHint()
	return 2
}

func okSwitchDefault(w *Worker, op int) int {
	w.SetClassHint(1)
	r := 0
	switch op {
	case 1:
		r = 1
	default:
		w.ClearClassHint()
		return -1
	}
	w.ClearClassHint()
	return r
}

func okGoroutineAfterClear(w *Worker) {
	w.SetClassHint(1)
	w.ClearClassHint()
	go func() { _ = w.hinted }()
}

func okGoroutineUnrelatedWorker(w, other *Worker) {
	w.SetClassHint(1)
	go func() { _ = other.hinted }()
	w.ClearClassHint()
}

func okSuppressed(w *Worker) {
	//lint:ignore classhintpair fixture: demonstrates a justified suppression the analyzer honours
	w.SetClassHint(1)
	doWork()
}
