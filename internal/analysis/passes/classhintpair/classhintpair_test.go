package classhintpair_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/classhintpair"
)

func TestClassHintPair(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "classhintpair"), classhintpair.Analyzer)
}
