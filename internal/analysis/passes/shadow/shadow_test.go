package shadow_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "shadow"), shadow.Analyzer)
}
