// Fixture for the shadow pass: a `:=` redeclaration of a same-typed
// local whose outer variable is still used after the inner scope is
// flagged; different types, package-level shadows and dead outers are
// not. The nilness-lite cases at the bottom exercise the definite-nil
// dereference check: flagged only when the variable is nil on every
// path, with `== nil` branch refinement and escape/merge exemptions.
package shadow

func produce() error { return nil }

var pkgErr error

// --- violations ---

func badShadowedErr(cond bool) error {
	var err error
	if cond {
		err := produce() // want `declaration of "err" shadows declaration at line \d+`
		_ = err
	}
	return err
}

func badShadowedValue(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := x // want `declaration of "total" shadows declaration at line \d+`
			_ = total
		}
	}
	return total
}

// --- conforming ---

func okOuterDeadAfter(cond bool) {
	err := produce()
	_ = err
	if cond {
		err := produce() // outer err never read again
		_ = err
	}
}

func okDifferentType(cond bool) error {
	var err error
	if cond {
		err := 1 // int, not error: a narrowing redeclaration
		_ = err
	}
	return err
}

func okPackageLevel(cond bool) error {
	if cond {
		pkgErr := produce() // shadows a package-level variable: idiomatic
		_ = pkgErr
	}
	return pkgErr
}

// --- nilness-lite ---

type box struct{ v int }

func fill(pp **box) { *pp = &box{} }

func badNilFieldRead() int {
	var b *box
	return b.v // want `dereference of "b", which is always nil here \(nil since line \d+\)`
}

func badNilStarDeref(cond bool) int {
	var p *int
	if cond {
		p = nil
	}
	return *p // want `dereference of "p", which is always nil here`
}

func badDerefInNilBranch(b *box) int {
	if b == nil {
		return b.v // want `dereference of "b", which is always nil here`
	}
	return 0
}

func okAssignedBeforeUse() int {
	var b *box
	b = &box{v: 1}
	return b.v
}

func okMergeUnknown(cond bool) int {
	var b *box
	if cond {
		b = new(box)
	}
	if b != nil {
		return b.v // non-nil on this edge by refinement
	}
	return 0
}

func okAddressTaken() int {
	var b *box
	fill(&b)
	return b.v
}

func okClosureCaptured() int {
	var b *box
	set := func() { b = &box{} }
	set()
	return b.v
}
