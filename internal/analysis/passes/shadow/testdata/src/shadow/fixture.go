// Fixture for the shadow pass: a `:=` redeclaration of a same-typed
// local whose outer variable is still used after the inner scope is
// flagged; different types, package-level shadows and dead outers are
// not.
package shadow

func produce() error { return nil }

var pkgErr error

// --- violations ---

func badShadowedErr(cond bool) error {
	var err error
	if cond {
		err := produce() // want `declaration of "err" shadows declaration at line \d+`
		_ = err
	}
	return err
}

func badShadowedValue(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := x // want `declaration of "total" shadows declaration at line \d+`
			_ = total
		}
	}
	return total
}

// --- conforming ---

func okOuterDeadAfter(cond bool) {
	err := produce()
	_ = err
	if cond {
		err := produce() // outer err never read again
		_ = err
	}
}

func okDifferentType(cond bool) error {
	var err error
	if cond {
		err := 1 // int, not error: a narrowing redeclaration
		_ = err
	}
	return err
}

func okPackageLevel(cond bool) error {
	if cond {
		pkgErr := produce() // shadows a package-level variable: idiomatic
		_ = pkgErr
	}
	return pkgErr
}
