// Package shadow is a stdlib reimplementation of the stock `vet
// -vettool` shadow pass (off by default in go vet), tuned for clean
// signal so it can gate CI: it reports a short variable declaration
// that shadows an in-scope local of the identical type when the
// shadowed variable is still used after the shadowing declaration's
// scope ends — the pattern where a write to the inner variable was
// plausibly meant for the outer one (the classic `err := ...` inside a
// block whose outer err is checked later).
//
// Deliberately not reported, to keep the pass quiet enough to gate:
// shadows of package-level variables, shadows of a different type
// (conversions and narrowing redeclarations are idiomatic), and
// shadows whose outer variable is never touched again (harmless reuse
// of a good name).
//
// The other stock pass the ISSUE names, nilness, is built on x/tools
// SSA; with the offline toolchain (no module proxy, stdlib only) there
// is no SSA package to build it from, so it stays gated until the
// x/tools dependency can be vendored. See ARCHITECTURE.md, "Enforced
// invariants".
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the shadow pass.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "check for shadowed same-typed locals whose outer variable is used after the inner scope",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				checkShadow(pass, id)
			}
			return true
		})
	}
	return nil
}

func checkShadow(pass *analysis.Pass, id *ast.Ident) {
	obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok {
		return
	}
	inner := pass.Pkg.Scope().Innermost(id.Pos())
	if inner == nil || inner.Parent() == nil {
		return
	}
	_, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer == obj {
		return
	}
	// Package-level shadows are idiomatic (err, ok); skip them.
	if outer.Parent() == pass.Pkg.Scope() {
		return
	}
	if !types.Identical(obj.Type(), outer.Type()) {
		return
	}
	// Only a shadow whose outer variable is used after the inner
	// scope closes can swallow a write that was meant for the outer.
	if !usedAfter(pass.TypesInfo, outer, inner.End()) {
		return
	}
	pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d; the outer variable is used after this scope",
		id.Name, pass.Fset.Position(outer.Pos()).Line)
}

func usedAfter(info *types.Info, obj types.Object, end token.Pos) bool {
	for id, used := range info.Uses {
		if used == obj && id.Pos() >= end {
			return true
		}
	}
	return false
}
