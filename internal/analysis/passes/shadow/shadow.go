// Package shadow is a stdlib reimplementation of the stock `vet
// -vettool` shadow pass (off by default in go vet), tuned for clean
// signal so it can gate CI: it reports a short variable declaration
// that shadows an in-scope local of the identical type when the
// shadowed variable is still used after the shadowing declaration's
// scope ends — the pattern where a write to the inner variable was
// plausibly meant for the outer one (the classic `err := ...` inside a
// block whose outer err is checked later).
//
// Deliberately not reported, to keep the pass quiet enough to gate:
// shadows of package-level variables, shadows of a different type
// (conversions and narrowing redeclarations are idiomatic), and
// shadows whose outer variable is never touched again (harmless reuse
// of a good name).
//
// The pass also carries a nilness-lite check built on the dataflow
// solver from internal/analysis/cfg (the stock nilness pass needs
// x/tools SSA, which the offline toolchain does not have; reaching
// nilness over the CFG covers the same definite-nil subset): a
// pointer-typed variable that is nil on *every* path into a
// dereference — declared without a value, assigned a literal nil, or
// refined to nil by the taken branch of an `== nil` test — is
// reported at the dereference. Variables whose address is taken or
// that a closure captures are not tracked, and a merge of nil and
// non-nil paths is unknown, so only guaranteed panics are flagged.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the shadow pass.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "check for shadowed same-typed locals whose outer variable is used after the inner scope, and definite-nil dereferences",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				checkShadow(pass, id)
			}
			return true
		})
		analysis.FuncNodes(file, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			checkNilness(pass, body)
		})
	}
	return nil
}

func checkShadow(pass *analysis.Pass, id *ast.Ident) {
	obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok {
		return
	}
	inner := pass.Pkg.Scope().Innermost(id.Pos())
	if inner == nil || inner.Parent() == nil {
		return
	}
	_, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer == obj {
		return
	}
	// Package-level shadows are idiomatic (err, ok); skip them.
	if outer.Parent() == pass.Pkg.Scope() {
		return
	}
	if !types.Identical(obj.Type(), outer.Type()) {
		return
	}
	// Only a shadow whose outer variable is used after the inner
	// scope closes can swallow a write that was meant for the outer.
	if !usedAfter(pass.TypesInfo, outer, inner.End()) {
		return
	}
	pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d; the outer variable is used after this scope",
		id.Name, pass.Fset.Position(outer.Pos()).Line)
}

func usedAfter(info *types.Info, obj types.Object, end token.Pos) bool {
	for id, used := range info.Uses {
		if used == obj && id.Pos() >= end {
			return true
		}
	}
	return false
}

// nilFact is one variable's reaching nilness: definitely nil or
// definitely non-nil, with the position that established it (for the
// report). Absence from the state map is "unknown".
type nilFact struct {
	isNil bool
	pos   token.Pos
}

// nilState maps pointer-typed variables to their definite nilness.
type nilState map[types.Object]nilFact

// checkNilness runs the reaching-nilness dataflow over one function
// body and reports dereferences of variables that are nil on every
// path. Function literals are analyzed as bodies in their own right by
// FuncNodes; within a body, anything a nested literal touches is
// untracked.
func checkNilness(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	untracked := untrackedObjs(info, body)
	tracked := func(id *ast.Ident) types.Object {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil || untracked[obj] {
			return nil
		}
		if _, ok := obj.Type().(*types.Pointer); !ok {
			return nil
		}
		return obj
	}

	transfer := func(n ast.Node, st nilState) nilState {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return st
			}
			st = cloneNil(st)
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := tracked(name)
					if obj == nil {
						continue
					}
					if len(vs.Values) == 0 {
						st[obj] = nilFact{isNil: true, pos: name.Pos()}
					} else if i < len(vs.Values) {
						setFromRHS(st, obj, vs.Values[i], name.Pos())
					} else {
						delete(st, obj) // multi-value initializer: unknown
					}
				}
			}
			return st
		case *ast.AssignStmt:
			st = cloneNil(st)
			paired := len(n.Lhs) == len(n.Rhs)
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := tracked(id)
				if obj == nil {
					continue
				}
				if paired {
					setFromRHS(st, obj, n.Rhs[i], id.Pos())
				} else {
					delete(st, obj) // tuple from a call: unknown
				}
			}
			return st
		case *ast.RangeStmt:
			// Only the key/value bindings are this node's effect; the
			// body's statements live in their own blocks.
			st = cloneNil(st)
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := tracked(id); obj != nil {
						delete(st, obj)
					}
				}
			}
			return st
		}
		return st
	}

	g := cfg.New(body)
	res := cfg.Solve(g, cfg.Flow[nilState]{
		Entry:    nilState{},
		Transfer: transfer,
		Branch: func(cond ast.Expr, st nilState) (nilState, nilState) {
			bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return st, st
			}
			id, ok := nilComparison(info, bin)
			if !ok {
				return st, st
			}
			obj := tracked(id)
			if obj == nil {
				return st, st
			}
			onNil, onNonNil := cloneNil(st), cloneNil(st)
			onNil[obj] = nilFact{isNil: true, pos: bin.Pos()}
			onNonNil[obj] = nilFact{isNil: false, pos: bin.Pos()}
			if bin.Op == token.EQL {
				return onNil, onNonNil
			}
			return onNonNil, onNil
		},
		Join:  joinNil,
		Equal: equalNil,
		Clone: cloneNil,
	})

	for _, b := range g.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		st := cloneNil(in)
		for _, n := range b.Nodes {
			scanNilDeref(pass, tracked, n, st)
			st = transfer(n, st)
		}
	}
}

// scanNilDeref reports *p and p.field uses under n where p is
// definitely nil. Method calls are left alone — a method with a
// pointer receiver may be deliberately nil-tolerant.
func scanNilDeref(pass *analysis.Pass, tracked func(*ast.Ident) types.Object, n ast.Node, st nilState) {
	if len(st) == 0 {
		return
	}
	report := func(id *ast.Ident) {
		obj := tracked(id)
		if obj == nil {
			return
		}
		if f, ok := st[obj]; ok && f.isNil {
			pass.Reportf(id.Pos(), "dereference of %q, which is always nil here (nil since line %d)",
				id.Name, pass.Fset.Position(f.pos).Line)
		}
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		case *ast.StarExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				report(id)
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				report(id)
			}
		}
		return true
	})
}

// setFromRHS classifies one assignment's right-hand side: literal nil,
// definitely non-nil (&x, new(T)), or unknown.
func setFromRHS(st nilState, obj types.Object, rhs ast.Expr, at token.Pos) {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if rhs.Name == "nil" {
			st[obj] = nilFact{isNil: true, pos: at}
			return
		}
	case *ast.UnaryExpr:
		if rhs.Op == token.AND {
			st[obj] = nilFact{isNil: false, pos: at}
			return
		}
	case *ast.CallExpr:
		if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "new" {
			st[obj] = nilFact{isNil: false, pos: at}
			return
		}
	}
	delete(st, obj)
}

// nilComparison matches `x == nil` / `nil != x` and returns the
// non-nil operand's identifier.
func nilComparison(info *types.Info, bin *ast.BinaryExpr) (*ast.Ident, bool) {
	isNilIdent := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
	}
	if isNilIdent(bin.Y) {
		id, ok := ast.Unparen(bin.X).(*ast.Ident)
		return id, ok
	}
	if isNilIdent(bin.X) {
		id, ok := ast.Unparen(bin.Y).(*ast.Ident)
		return id, ok
	}
	return nil, false
}

// untrackedObjs collects the variables nilness must not track: anything
// whose address is taken (&p — a callee may rebind it) and anything a
// nested function literal mentions (the literal may run between any
// two statements of the enclosing body).
func untrackedObjs(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	var inLit int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				inLit++
				walk(n.Body)
				inLit--
				return false
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							out[obj] = true
						}
					}
				}
			case *ast.Ident:
				if inLit > 0 {
					if obj := info.Uses[n]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	walk(body)
	return out
}

func cloneNil(st nilState) nilState {
	out := make(nilState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// joinNil keeps only facts both paths agree on, with the earliest
// establishing position for determinism.
func joinNil(a, b nilState) nilState {
	out := nilState{}
	for obj, fa := range a {
		fb, ok := b[obj]
		if !ok || fa.isNil != fb.isNil {
			continue
		}
		if fb.pos < fa.pos {
			fa.pos = fb.pos
		}
		out[obj] = fa
	}
	return out
}

func equalNil(a, b nilState) bool {
	if len(a) != len(b) {
		return false
	}
	for obj, fa := range a {
		fb, ok := b[obj]
		if !ok || fa.isNil != fb.isNil || fa.pos != fb.pos {
			return false
		}
	}
	return true
}
