// Package analysis is a stdlib-only reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs.
//
// The repo's concurrency contracts — ClassHint never leaks across a
// return, user callbacks never run under a shard lock, election probes
// bypass locks.Contended, wire constants are append-only — lived in
// ARCHITECTURE.md prose and spot tests until PR 6. This package turns
// them into compiler-adjacent checks: each contract is an Analyzer, the
// cmd/repolint multichecker runs them over every package via
// `go vet -vettool` (see unit.go for the driver protocol), and
// analysistest replays them over golden fixtures.
//
// Why not depend on x/tools directly? The build environment is fully
// offline (empty module cache, no proxy), so the framework subset we
// need — Analyzer/Pass/Diagnostic, a unitchecker driver, a fixture
// runner — is implemented here on go/ast + go/types alone. The API
// shape deliberately mirrors x/tools so analyzers could migrate to the
// real framework if the dependency ever becomes available.
//
// # Suppressions
//
// A diagnostic can be silenced in place with a justified directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the line immediately above the offending line or as
// a trailing comment on the line itself. The reason is mandatory — a
// bare directive suppresses nothing and is itself reported — so every
// suppression in the tree documents why the contract does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass: a named, documented check
// that inspects a type-checked package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. By convention it is a single
	// lower-case word (classhintpair, lockheldcall, ...).
	Name string
	// Doc is the analyzer's long documentation: the contract it
	// enforces, first line a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package. It reports findings
	// via pass.Report / pass.Reportf; the error return is for
	// analysis failures (not findings).
	Run func(pass *Pass) error
	// FactTypes lists pointer exemplars of every Fact type the
	// analyzer exports or imports (see facts.go). Analyzers with no
	// FactTypes see no facts and export none.
	FactTypes []Fact
}

// A Pass is one application of one Analyzer to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *FactStore
	diags *[]Diagnostic
}

// ExportObjectFact states fact about obj. obj may belong to this
// package or to an imported one (the atomicfield pass states facts
// about imported fields it sees atomic access to); either way the fact
// rides this package's vetx file to every dependent. A no-op for
// objects that cannot carry facts (locals, anonymous-struct fields).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.exportObject(obj, fact)
}

// ImportObjectFact copies the stored fact about obj into fact (a
// pointer to the matching concrete type), reporting whether one was
// found. Facts exported earlier in this same package run are visible
// too, so in-package and cross-package callee summaries read the same.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.importObject(obj, fact)
}

// ExportPackageFact states fact about the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(p.Pkg.Path(), fact)
}

// ImportPackageFact copies the stored package fact for the package
// with the given import path into fact, reporting whether one exists.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	return p.facts.importPackage(path, fact)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: message})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Run applies every analyzer to the given type-checked package and
// returns the surviving diagnostics in position order: findings in
// *_test.go files are dropped (the contracts bind production code;
// tests exercise violations deliberately), and findings silenced by a
// justified //lint:ignore directive are filtered out. Malformed
// directives (no reason) are themselves reported.
//
// facts carries the decoded facts of every dependency in and this
// package's exported facts out; nil means an empty throwaway store.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	diags = append(diags, checkDirectives(fset, files)...)
	diags = filterTestFiles(fset, diags)
	diags = applySuppressions(fset, files, diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// IsTestFile reports whether pos lies in a *_test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

func filterTestFiles(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !IsTestFile(fset, d.Pos) {
			out = append(out, d)
		}
	}
	return out
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool
	reason    string
}

// parseIgnore parses a //lint:ignore directive; ok is false for
// non-directive comments. A directive with no reason parses with
// reason == "" (the caller reports it).
func parseIgnore(text string) (d ignoreDirective, ok bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return d, false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	name, reason, _ := strings.Cut(rest, " ")
	d.analyzers = make(map[string]bool)
	for _, a := range strings.Split(name, ",") {
		if a != "" {
			d.analyzers[a] = true
		}
	}
	d.reason = strings.TrimSpace(reason)
	return d, len(d.analyzers) > 0
}

// directiveLines maps file -> line -> directive for every
// //lint:ignore comment in files.
func directiveLines(fset *token.FileSet, files []*ast.File) map[string]map[int]ignoreDirective {
	m := make(map[string]map[int]ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if m[pos.Filename] == nil {
					m[pos.Filename] = make(map[int]ignoreDirective)
				}
				m[pos.Filename][pos.Line] = d
			}
		}
	}
	return m
}

// applySuppressions drops diagnostics covered by a justified
// //lint:ignore directive on the same line or the line above.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	dirs := directiveLines(fset, files)
	if len(dirs) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if suppressed(dirs, pos.Filename, pos.Line, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func suppressed(dirs map[string]map[int]ignoreDirective, file string, line int, analyzer string) bool {
	byLine := dirs[file]
	if byLine == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if d, ok := byLine[l]; ok && d.reason != "" && d.analyzers[analyzer] {
			return true
		}
	}
	return false
}

// checkDirectives reports //lint:ignore directives with no reason:
// an unjustified suppression is itself a contract violation.
func checkDirectives(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parseIgnore(c.Text); ok && d.reason == "" {
					out = append(out, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "repolint",
						Message:  "//lint:ignore directive needs a justification: //lint:ignore <analyzer> <reason>",
					})
				}
			}
		}
	}
	return out
}
