package analysis

// This file implements the `go vet -vettool` driver protocol — the
// stdlib-only counterpart of golang.org/x/tools/go/analysis/unitchecker.
//
// go vet invokes the vettool three ways:
//
//	tool -flags         print a JSON array describing the tool's flags
//	tool -V=full        print "<name> version <ver>" (build-ID material)
//	tool <vet.cfg>      analyze one package described by the config file
//
// The vet.cfg file is JSON emitted by cmd/go into the package's work
// directory. Dependency packages are visited with VetxOnly=true purely
// so the tool can export "facts" for downstream packages; this suite
// has no cross-package facts, so those invocations just write an empty
// facts file and exit. For the packages named on the command line
// (VetxOnly=false) we parse the source files, type-check them against
// the export data cmd/go already compiled (PackageFile maps import
// paths to .a/export files in the build cache — no network, no second
// compile), run every analyzer, and print findings to stderr as
// "file:line:col: analyzer: message", exiting 2 if any survive.
//
// The per-op ClassHint is the SAL shielded-flag protocol of the paper;
// the wrapped Acquire/Release pairs are its asymmetric lock. The whole
// point of running as a vettool rather than a standalone walker is that
// `go vet` hands us fully resolved types for every package variant
// (including test variants) with build-cache-level incrementality.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the fields of cmd/go's vet.cfg that this driver
// consumes (unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the vettool entry point: it interprets the go vet driver
// protocol for the given analyzers and exits. Call it from main().
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	if len(os.Args) != 2 {
		fmt.Fprintf(os.Stderr, "usage: %s <vet.cfg>\n(this binary is a go vet -vettool; run it via `go vet -vettool=%s ./...` or `make lint`)\n", progname, os.Args[0])
		os.Exit(1)
	}
	switch arg := os.Args[1]; {
	case arg == "help", arg == "-h", arg == "--help", arg == "-help":
		fmt.Fprintf(os.Stderr, "%s: machine-checks this repository's concurrency contracts\n\nRegistered analyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(0)
	case arg == "-flags":
		// No tool-specific flags; go vet expects a JSON array.
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasPrefix(arg, "-V"):
		// Incorporated into go vet's action IDs; changing it
		// invalidates cached vet results.
		fmt.Printf("%s version repolint-1 (stdlib unitchecker)\n", progname)
		os.Exit(0)
	default:
		diags, err := runOnConfig(arg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if len(diags) > 0 {
			os.Exit(2)
		}
		os.Exit(0)
	}
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}

// runOnConfig analyzes the package described by the vet.cfg at path
// and returns rendered diagnostics.
func runOnConfig(path string, analyzers []*Analyzer) ([]string, error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return nil, rerr
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}

	// Facts file first: go vet records it as the action's output even
	// for the leaf packages we fully analyze.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	// Dependency-only visit: no facts to compute, nothing to report.
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, perr
		}
		files = append(files, f)
	}

	// Resolve imports from the export data cmd/go already built: the
	// vet.cfg maps every dependency (stdlib included) to a file in the
	// build cache, so type-checking needs no compiler and no network.
	lookup := func(importPath string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[importPath]; ok {
			importPath = p
		}
		file, ok := cfg.PackageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in vet.cfg PackageFile)", importPath)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, "amd64"),
		Error:     func(error) {}, // collect all, decide below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags, err := Run(analyzers, fset, files, pkg, info)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return out, nil
}
