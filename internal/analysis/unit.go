package analysis

// This file implements the `go vet -vettool` driver protocol — the
// stdlib-only counterpart of golang.org/x/tools/go/analysis/unitchecker.
//
// go vet invokes the vettool three ways:
//
//	tool -flags         print a JSON array describing the tool's flags
//	tool -V=full        print "<name> version <ver>" (build-ID material)
//	tool <vet.cfg>      analyze one package described by the config file
//
// The vet.cfg file is JSON emitted by cmd/go into the package's work
// directory. Dependency packages are visited with VetxOnly=true so the
// tool can export facts for downstream packages: for in-module
// dependencies the driver parses, type-checks and runs the fact-
// bearing analyzers exactly as for a leaf package, discards the
// diagnostics, and writes the gob-encoded fact set (imported facts
// plus this package's exports — vetx files are cumulative, see
// facts.go) to VetxOutput; out-of-module packages (the stdlib) carry
// no facts this suite cares about and get an empty vetx file without
// being loaded. For the packages named on the command line
// (VetxOnly=false) we additionally decode every dependency vetx named
// in PackageVetx, run every analyzer with those facts visible, and
// print findings to stderr as "file:line:col: analyzer: message",
// exiting 2 if any survive.
//
// The per-op ClassHint is the SAL shielded-flag protocol of the paper;
// the wrapped Acquire/Release pairs are its asymmetric lock. The whole
// point of running as a vettool rather than a standalone walker is that
// `go vet` hands us fully resolved types for every package variant
// (including test variants) with build-cache-level incrementality.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the fields of cmd/go's vet.cfg that this driver
// consumes (unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// modulePath is the import-path prefix of packages this suite loads
// for facts. Out-of-module dependencies (the stdlib) are never parsed:
// no analyzer states facts about them, and loading them would triple
// every vet run for nothing. Test variants ("repro/x [repro/x.test]")
// and command-line-arguments share the prefixes.
func inModule(importPath string) bool {
	return importPath == "repro" ||
		strings.HasPrefix(importPath, "repro/") ||
		strings.HasPrefix(importPath, "command-line-arguments")
}

// Main is the vettool entry point: it interprets the go vet driver
// protocol for the given analyzers and exits. Call it from main().
func Main(analyzers ...*Analyzer) {
	RegisterFactTypes(analyzers)
	progname := filepath.Base(os.Args[0])
	if len(os.Args) != 2 {
		fmt.Fprintf(os.Stderr, "usage: %s <vet.cfg>\n(this binary is a go vet -vettool; run it via `go vet -vettool=%s ./...` or `make lint`)\n", progname, os.Args[0])
		os.Exit(1)
	}
	switch arg := os.Args[1]; {
	case arg == "help", arg == "-h", arg == "--help", arg == "-help":
		fmt.Fprintf(os.Stderr, "%s: machine-checks this repository's concurrency contracts\n\nRegistered analyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(0)
	case arg == "-flags":
		// No tool-specific flags; go vet expects a JSON array.
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasPrefix(arg, "-V"):
		// Incorporated into go vet's action IDs. The version must
		// change whenever the analyzers' behaviour does, or go vet
		// serves stale cached diagnostics and .vetx facts from the
		// previous build — so, like x/tools' unitchecker, it is the
		// hash of the tool binary itself, not a hand-bumped constant.
		fmt.Printf("%s version %s (stdlib unitchecker)\n", progname, selfHash())
		os.Exit(0)
	default:
		diags, err := runOnConfig(arg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if len(diags) > 0 {
			os.Exit(2)
		}
		os.Exit(0)
	}
}

// selfHash fingerprints the running binary for -V: sha256 of the
// executable's bytes, truncated for readability. Falls back to a
// constant (no caching correctness, only a lost cache optimisation —
// vet treats every run as a new tool version only if the string
// changes, so a stable fallback just behaves like the old scheme).
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "repolint-unhashed"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "repolint-unhashed"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "repolint-unhashed"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}

// runOnConfig analyzes the package described by the vet.cfg at path
// and returns rendered diagnostics.
func runOnConfig(path string, analyzers []*Analyzer) ([]string, error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return nil, rerr
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}

	// writeVetx records the action's output; go vet insists on the
	// file existing even when there are no facts to write.
	writeVetx := func(data []byte) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, data, 0o666)
	}
	// Out-of-module packages carry no facts this suite states or
	// reads; skip the load entirely.
	if !inModule(cfg.ImportPath) {
		return nil, writeVetx(nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeVetx(nil)
			}
			return nil, perr
		}
		files = append(files, f)
	}

	// Resolve imports from the export data cmd/go already built: the
	// vet.cfg maps every dependency (stdlib included) to a file in the
	// build cache, so type-checking needs no compiler and no network.
	lookup := func(importPath string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[importPath]; ok {
			importPath = p
		}
		file, ok := cfg.PackageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in vet.cfg PackageFile)", importPath)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, "amd64"),
		Error:     func(error) {}, // collect all, decide below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx(nil)
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	// Decode every dependency's facts; the store accumulates this
	// package's exports on top during Run.
	facts := NewFactStore()
	for path, vetx := range cfg.PackageVetx {
		data, readErr := os.ReadFile(vetx)
		if readErr != nil {
			return nil, fmt.Errorf("reading facts of %s: %v", path, readErr)
		}
		if addErr := facts.AddEncoded(data); addErr != nil {
			return nil, fmt.Errorf("facts of %s: %v", path, addErr)
		}
	}

	diags, err := Run(analyzers, fset, files, pkg, info, facts)
	if err != nil {
		return nil, err
	}
	encoded, err := facts.Encode()
	if err != nil {
		return nil, err
	}
	if err := writeVetx(encoded); err != nil {
		return nil, err
	}
	// Dependency-only visit: the facts were the whole point; findings
	// are the job of the action that names this package directly.
	if cfg.VetxOnly {
		return nil, nil
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return out, nil
}
