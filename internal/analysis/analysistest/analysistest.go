// Package analysistest runs a repolint analyzer over a golden fixture
// package and matches its diagnostics against `// want` expectations —
// the stdlib counterpart of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of .go files (conventionally
// testdata/src/<name>/ next to the analyzer's test). Each line that
// should trigger a diagnostic carries a trailing comment of the form
//
//	code() // want `regexp` `another regexp`
//
// with one back-quoted (or double-quoted) regular expression per
// expected diagnostic on that line. The test fails symmetrically: a
// diagnostic with no matching expectation is "unexpected", an
// expectation with no diagnostic is "unsatisfied".
//
// Run handles the single-package case: the fixture must be import-free
// (it declares local stand-ins for Worker, WLock, Store, ...), since
// offline there is no exported package data outside a real build, and
// self-contained fixtures keep each case readable in one file anyway.
//
// Packages handles multi-package fixtures for the fact-powered passes:
// sibling directories under one testdata/src root import each other by
// directory name, are typechecked in the given (dependency) order
// against the already-checked fixture packages, and analyzer facts
// flow between them through the same gob encode/decode round trip the
// go vet driver uses — so a cross-package lockorder or atomicfield
// test exercises the real vetx serialization, not an in-memory
// shortcut. Imports outside the fixture root stay forbidden.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one `// want` regexp, keyed to its file and line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE splits a want comment's payload into quoted regexps.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run applies analyzers to the fixture package in dir and reports any
// mismatch with the fixture's `// want` expectations on t.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	// Importer-free typecheck: single-dir fixtures are self-contained
	// by contract, so any import is a fixture bug.
	files, pkg, info := load(t, fset, dir, filepath.Base(dir), nil)
	diags, err := analysis.Run(analyzers, fset, files, pkg, info, nil)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	match(t, fset, files, diags)
}

// Packages applies analyzers to multi-package fixtures: each name in
// pkgs is a directory under root (conventionally testdata/src), listed
// in dependency order — imports must point at earlier entries. Facts
// exported while analyzing one package are gob-encoded and decoded
// back for the packages that follow, exactly as the vet driver chains
// vetx files, and `// want` expectations are checked in every package.
func Packages(t *testing.T, root string, pkgs []string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	analysis.RegisterFactTypes(analyzers)

	fset := token.NewFileSet()
	imp := &fixtureImporter{pkgs: make(map[string]*types.Package)}
	var allFiles []*ast.File
	var allDiags []analysis.Diagnostic
	// encoded is the cumulative vetx payload: each package decodes the
	// union of everything before it and re-encodes with its own facts
	// added, mirroring unit.go's writeVetx chain.
	var encoded []byte
	for _, name := range pkgs {
		files, pkg, info := load(t, fset, filepath.Join(root, name), name, imp)
		imp.pkgs[name] = pkg
		allFiles = append(allFiles, files...)

		facts := analysis.NewFactStore()
		if err := facts.AddEncoded(encoded); err != nil {
			t.Fatalf("decoding facts for %s: %v", name, err)
		}
		diags, err := analysis.Run(analyzers, fset, files, pkg, info, facts)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", name, err)
		}
		allDiags = append(allDiags, diags...)
		if encoded, err = facts.Encode(); err != nil {
			t.Fatalf("encoding facts of %s: %v", name, err)
		}
	}
	match(t, fset, allFiles, allDiags)
}

// fixtureImporter resolves fixture-internal imports to the already
// typechecked sibling packages.
type fixtureImporter struct {
	pkgs map[string]*types.Package
}

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := i.pkgs[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("fixture import %q: not a fixture package (list dependencies before dependents; imports outside the fixture root are forbidden)", path)
}

// load parses and typechecks one fixture directory.
func load(t *testing.T, fset *token.FileSet, dir, pkgPath string, imp types.Importer) ([]*ast.File, *types.Package, *types.Info) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			t.Fatalf("parsing fixture: %v", perr)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	conf := &types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s (must compile): %v", dir, err)
	}
	return files, pkg, info
}

// match reconciles diagnostics with the fixtures' `// want` comments.
func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants parses every `// want` comment in the fixture.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRE.FindAllString(rest, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: malformed want comment (no quoted regexp): %s", pos, c.Text)
				}
				for _, q := range quoted {
					body := q[1 : len(q)-1]
					if q[0] == '"' {
						body = strings.ReplaceAll(body, `\"`, `"`)
					}
					re, err := regexp.Compile(body)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, q, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// claim marks the first unmatched expectation on (file, line) whose
// regexp matches msg.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
