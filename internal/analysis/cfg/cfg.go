// Package cfg builds intra-function control-flow graphs for the
// repolint dataflow passes — the stdlib counterpart of
// golang.org/x/tools/go/cfg, plus the generic forward-dataflow solver
// in solve.go.
//
// A CFG is a set of basic blocks holding the function's statements and
// branch conditions in execution order, connected by control edges.
// The builder models the full statement grammar the repo's passes need
// to be flow-sensitive about: if/else, for and range loops, labeled
// break/continue, goto (including jumps into and out of loops),
// switch/type-switch with fallthrough, select, and short-circuit
// && / || conditions (each operand gets its own block, so a dataflow
// fact can differ between `a` and `b` in `a && b`).
//
// Two deliberate simplifications, shared with x/tools:
//
//   - defer does not edge to the exit block: deferred calls are
//     appended to CFG.Defers (in source order) and the DeferStmt node
//     stays in its block, so analyses model "runs at every return"
//     explicitly — which is what the classhintpair and lockorder
//     passes want (a deferred Release/Clear covers all exits).
//   - panics and calls to runtime-terminating functions are not
//     modeled as exits; a may-analysis only becomes more conservative
//     for it.
//
// Function literals are opaque: a FuncLit appearing inside a statement
// is part of that statement's node, never traversed — literal bodies
// get their own CFG (the passes build one per FuncNodes visit).
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is one basic block: Nodes execute in order, then control
// follows one of Succs. When the block ends in a boolean branch, Cond
// is the condition (also the last entry of Nodes) and Succs[0]/[1] are
// the true/false targets. Multi-way dispatch blocks (switch, select,
// range) have Cond == nil and two or more successors.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.head", ... (for tests and dumps)
	Nodes []ast.Node
	Cond  ast.Expr
	Succs []*Block
	Preds []*Block
}

// A CFG is one function body's control-flow graph.
type CFG struct {
	Blocks []*Block // in creation order; Blocks[0] is Entry
	Entry  *Block
	Exit   *Block
	Defers []*ast.DeferStmt
}

// New builds the CFG of one function body.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{g: &CFG{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	for _, fix := range b.gotos {
		b.edge(fix.from, b.labelBlock(fix.label))
	}
	return b.g
}

// String renders the graph for tests and debugging:
//
//	b0 entry [ExprStmt] -> b1(t) b2(f)
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s [", blk.Index, blk.Kind)
		for i, n := range blk.Nodes {
			if i > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%T", n)
		}
		sb.WriteString("] ->")
		for i, s := range blk.Succs {
			tag := ""
			if blk.Cond != nil && len(blk.Succs) == 2 {
				tag = [2]string{"(t)", "(f)"}[i]
			}
			fmt.Fprintf(&sb, " b%d%s", s.Index, tag)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// targets is one entry of the break/continue resolution stack.
type targets struct {
	label string // enclosing statement's label, "" if none
	brk   *Block // break target (loops, switch, select)
	cont  *Block // continue target (loops only)
}

type gotoFixup struct {
	from  *Block
	label string
}

type builder struct {
	g   *CFG
	cur *Block // nil after a terminator (unreachable until a new block starts)
	// stack is the break/continue target stack, innermost last.
	stack []targets
	// labels maps a label name to the block control jumps to; created
	// lazily by goto (forward references) or by the labeled statement.
	labels map[string]*Block
	gotos  []gotoFixup
	// pendingLabel is the label of the labeled statement currently
	// being built, consumed by the next loop/switch/select.
	pendingLabel string
	// fallthroughTo is the next case clause's body block while a
	// switch case body is being built.
	fallthroughTo *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// block returns the current block, starting a fresh (unreachable) one
// if control cannot reach here — dead code still gets nodes, it just
// never receives dataflow input.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) { b.block().Nodes = append(b.block().Nodes, n) }

func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

// findTargets resolves a break/continue: the innermost entry, or the
// entry carrying the branch's label.
func (b *builder) findTargets(label string, needCont bool) *targets {
	for i := len(b.stack) - 1; i >= 0; i-- {
		t := &b.stack[i]
		if needCont && t.cont == nil {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the statement being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, done)
			}
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		b.edge(b.block(), head)
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			contTo = post
		}
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, done)
		} else {
			b.edge(head, body)
		}
		b.stack = append(b.stack, targets{label: label, brk: done, cont: contTo})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, contTo)
		}
		b.stack = b.stack[:len(b.stack)-1]
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.block(), head)
		}
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(b.block(), head)
		// The RangeStmt node stands for the X evaluation and the
		// per-iteration Key/Value assignment; it dispatches iterate
		// (body) vs exhausted (done).
		head.Nodes = append(head.Nodes, s)
		b.edge(head, body)
		b.edge(head, done)
		b.stack = append(b.stack, targets{label: label, brk: done, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchClauses(label, s.Body.List, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		dispatch := b.block()
		done := b.newBlock("select.done")
		b.stack = append(b.stack, targets{label: label, brk: done})
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			body := b.newBlock("select.body")
			b.edge(dispatch, body)
			b.cur = body
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, done)
			}
		}
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = done

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.block(), b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findTargets(label, false); t != nil {
				b.edge(b.block(), t.brk)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTargets(label, true); t != nil {
				b.edge(b.block(), t.cont)
			}
			b.cur = nil
		case token.GOTO:
			// Forward gotos reference blocks that may not exist yet;
			// resolve all of them after the body is built.
			b.gotos = append(b.gotos, gotoFixup{from: b.block(), label: label})
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(b.block(), b.fallthroughTo)
			}
			b.cur = nil
		}

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	default:
		// Straight-line statements: expression/assign/send/go/decl/
		// incdec/empty. The whole statement is one node; analyses walk
		// its subtree themselves (skipping FuncLits).
		b.add(s)
	}
}

// switchClauses builds the shared body structure of switch and type
// switch: one dispatch fan-out to every case body (case-selection
// order is not modeled — a may-analysis sees every arm), break to
// done, fallthrough to the next body.
func (b *builder) switchClauses(label string, clauses []ast.Stmt, assign ast.Stmt) {
	dispatch := b.block()
	done := b.newBlock("switch.done")
	bodies := make([]*Block, 0, len(clauses))
	hasDefault := false
	for _, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		// Case expressions evaluate during dispatch.
		for _, e := range cc.List {
			dispatch.Nodes = append(dispatch.Nodes, e)
		}
		bodies = append(bodies, b.newBlock("case"))
	}
	if !hasDefault {
		b.edge(dispatch, done)
	}
	b.stack = append(b.stack, targets{label: label, brk: done})
	i := 0
	for _, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		body := bodies[i]
		i++
		b.edge(dispatch, body)
		if i < len(bodies) {
			b.fallthroughTo = bodies[i]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = body
		if assign != nil {
			// The type-switch assignment rebinds per clause.
			body.Nodes = append(body.Nodes, assign)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	b.fallthroughTo = nil
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = done
}

// cond builds the control flow of a boolean condition evaluated in the
// current block, branching to t when it holds and f when it does not.
// Short-circuit operators split into per-operand blocks; negation
// swaps the targets, so the Cond recorded on a branch block is always
// a bare (non-negated) operand and Succs[0] is its true edge.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			rhs := b.newBlock("cond.rhs")
			b.cond(x.X, rhs, f)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			rhs := b.newBlock("cond.rhs")
			b.cond(x.X, t, rhs)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		}
	}
	blk := b.block()
	blk.Nodes = append(blk.Nodes, e)
	blk.Cond = e
	b.edge(blk, t)
	b.edge(blk, f)
	b.cur = nil
}
