package cfg_test

// Builder tests on the adversarial statement shapes the dataflow
// passes must survive: goto into and out of loops, defer in loops,
// labeled break/continue, switch fallthrough, and short-circuit
// && / || decomposition — each asserting the block/edge structure the
// passes rely on, plus solver fixpoint termination on the cyclic
// graphs those shapes produce.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis/cfg"
)

// build parses a function body and returns its CFG.
func build(t *testing.T, body string) *cfg.CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	// goto-into-block shapes are rejected by the type checker but not
	// the parser; the builder is purely syntactic, so that is exactly
	// what we want to stress.
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return cfg.New(fd.Body)
}

// callsIn reports whether b's nodes contain a call to the named
// function (calls are how tests tag blocks in fixture bodies).
func callsIn(b *cfg.Block, name string) bool {
	found := false
	for _, n := range b.Nodes {
		ast.Inspect(n, func(n ast.Node) bool {
			// A RangeStmt node carries its whole subtree; the body's
			// calls belong to the body block, not the head.
			if _, ok := n.(*ast.BlockStmt); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// blockCalling returns the unique block containing a call to name.
func blockCalling(t *testing.T, g *cfg.CFG, name string) *cfg.Block {
	t.Helper()
	var hit *cfg.Block
	for _, b := range g.Blocks {
		if callsIn(b, name) {
			if hit != nil {
				t.Fatalf("call %s() appears in b%d and b%d\n%s", name, hit.Index, b.Index, g)
			}
			hit = b
		}
	}
	if hit == nil {
		t.Fatalf("no block calls %s()\n%s", name, g)
	}
	return hit
}

// condBlock returns the unique branch block whose condition is the
// bare identifier name.
func condBlock(t *testing.T, g *cfg.CFG, name string) *cfg.Block {
	t.Helper()
	var hit *cfg.Block
	for _, b := range g.Blocks {
		if id, ok := b.Cond.(*ast.Ident); ok && id.Name == name {
			if hit != nil {
				t.Fatalf("cond %s appears in b%d and b%d\n%s", name, hit.Index, b.Index, g)
			}
			hit = b
		}
	}
	if hit == nil {
		t.Fatalf("no branch block on cond %s\n%s", name, g)
	}
	return hit
}

func hasEdge(from, to *cfg.Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reaches reports graph reachability from from to to.
func reaches(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestShortCircuitAnd(t *testing.T) {
	g := build(t, `
		var a, b bool
		if a && b {
			then()
		} else {
			els()
		}
		done()
	`)
	ca, cb := condBlock(t, g, "a"), condBlock(t, g, "b")
	then, els := blockCalling(t, g, "then"), blockCalling(t, g, "els")
	// a true → evaluate b; a false → short-circuit straight to else.
	if ca.Succs[0] != cb {
		t.Errorf("a's true edge should reach cond b, got b%d\n%s", ca.Succs[0].Index, g)
	}
	if ca.Succs[1] != els {
		t.Errorf("a's false edge should short-circuit to else, got b%d\n%s", ca.Succs[1].Index, g)
	}
	if cb.Succs[0] != then || cb.Succs[1] != els {
		t.Errorf("b should branch then/else, got b%d/b%d\n%s", cb.Succs[0].Index, cb.Succs[1].Index, g)
	}
}

func TestShortCircuitNegatedOr(t *testing.T) {
	g := build(t, `
		var a, b bool
		if !(a || b) {
			then()
		}
		done()
	`)
	ca, cb := condBlock(t, g, "a"), condBlock(t, g, "b")
	then, done := blockCalling(t, g, "then"), blockCalling(t, g, "done")
	// !(a || b): a true → condition false → done; a false → try b.
	if ca.Succs[0] != done {
		t.Errorf("a's true edge should skip then, got b%d\n%s", ca.Succs[0].Index, g)
	}
	if ca.Succs[1] != cb {
		t.Errorf("a's false edge should evaluate b, got b%d\n%s", ca.Succs[1].Index, g)
	}
	if cb.Succs[0] != done || cb.Succs[1] != then {
		t.Errorf("b's edges should be swapped by negation, got b%d/b%d\n%s", cb.Succs[0].Index, cb.Succs[1].Index, g)
	}
	// The recorded conditions are the bare operands — negation lives in
	// the edge order, so Branch refiners never see a ! wrapper.
	if _, ok := ca.Cond.(*ast.Ident); !ok {
		t.Errorf("cond should be the bare operand, got %T", ca.Cond)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := build(t, `
		var a, b bool
	outer:
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				if a {
					break outer
				}
				if b {
					continue outer
				}
				body()
			}
		}
		after()
	`)
	after := blockCalling(t, g, "after")
	ca, cb := condBlock(t, g, "a"), condBlock(t, g, "b")

	// break outer: the then-block jumps straight to the statement after
	// the outer loop, not the inner loop's done block.
	brk := ca.Succs[0]
	if len(brk.Succs) != 1 || brk.Succs[0] != after {
		t.Errorf("break outer should edge to after(), got %v\n%s", brk.Succs, g)
	}
	// continue outer: jumps to the outer loop's post statement (i++).
	cont := cb.Succs[0]
	if len(cont.Succs) != 1 {
		t.Fatalf("continue block should have one successor\n%s", g)
	}
	post := cont.Succs[0]
	isInc := len(post.Nodes) == 1
	if isInc {
		_, isInc = post.Nodes[0].(*ast.IncDecStmt)
	}
	if !isInc {
		t.Errorf("continue outer should edge to the outer post block (i++), got b%d %s\n%s", post.Index, post.Kind, g)
	}
	// And the loops still cycle: body can re-reach both conditions.
	body := blockCalling(t, g, "body")
	if !reaches(body, ca) || !reaches(body, cb) {
		t.Errorf("loop body should re-reach its conditions\n%s", g)
	}
}

func TestGotoIntoAndOutOfLoop(t *testing.T) {
	// goto into a loop body is a typecheck error but parses; the
	// builder is syntactic and must still produce a sane graph.
	g := build(t, `
		var a bool
		goto inside
		for i := 0; i < 3; i++ {
		inside:
			body()
			if a {
				goto after
			}
		}
		mid()
	after:
		end()
	`)
	inside := blockCalling(t, g, "body")
	end := blockCalling(t, g, "end")
	if !hasEdge(g.Entry, inside) {
		t.Errorf("goto inside should edge from entry into the loop body\n%s", g)
	}
	ca := condBlock(t, g, "a")
	jump := ca.Succs[0]
	if len(jump.Succs) != 1 || jump.Succs[0] != end {
		t.Errorf("goto after should jump out of the loop to end(), got %v\n%s", jump.Succs, g)
	}
	// mid() sits between the loop and the label and is still reachable
	// via normal loop exit, falling through into the label block.
	mid := blockCalling(t, g, "mid")
	if !hasEdge(mid, end) {
		t.Errorf("mid() should fall through into the labeled block\n%s", g)
	}
}

func TestGotoBackwardLoop(t *testing.T) {
	g := build(t, `
		var a bool
	top:
		body()
		if a {
			goto top
		}
		end()
	`)
	top := blockCalling(t, g, "body")
	ca := condBlock(t, g, "a")
	jump := ca.Succs[0]
	if len(jump.Succs) != 1 || jump.Succs[0] != top {
		t.Errorf("backward goto should close a cycle to top\n%s", g)
	}
	if !reaches(top, top.Succs[0]) || !reaches(ca, top) {
		t.Errorf("goto loop should be cyclic\n%s", g)
	}
}

func TestDeferInLoop(t *testing.T) {
	g := build(t, `
		for i := 0; i < 3; i++ {
			defer cleanup()
		}
		done()
	`)
	if len(g.Defers) != 1 {
		t.Fatalf("want 1 collected defer, got %d", len(g.Defers))
	}
	// The DeferStmt node stays in its (loop body) block, so a replay
	// sees it in source position; the exit-edge modelling is the
	// pass's job via g.Defers.
	db := blockCalling(t, g, "cleanup")
	if _, ok := db.Nodes[0].(*ast.DeferStmt); !ok {
		t.Errorf("defer should be a node of its block, got %T\n%s", db.Nodes[0], g)
	}
	done := blockCalling(t, g, "done")
	if !reaches(db, done) {
		t.Errorf("loop body should reach the loop exit\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, `
		var x int
		switch x {
		case 1:
			one()
			fallthrough
		case 2:
			two()
		case 3:
			three()
		default:
			def()
		}
		done()
	`)
	one, two, three := blockCalling(t, g, "one"), blockCalling(t, g, "two"), blockCalling(t, g, "three")
	def, done := blockCalling(t, g, "def"), blockCalling(t, g, "done")
	if !hasEdge(one, two) {
		t.Errorf("fallthrough should edge case 1 → case 2\n%s", g)
	}
	if hasEdge(one, done) {
		t.Errorf("a fallthrough case must not edge to done directly\n%s", g)
	}
	for _, b := range []*cfg.Block{two, three, def} {
		if !hasEdge(b, done) {
			t.Errorf("case b%d should edge to done\n%s", b.Index, g)
		}
	}
	// With a default clause the dispatch block cannot skip every case.
	dispatch := one.Preds[0]
	if hasEdge(dispatch, done) {
		t.Errorf("dispatch must not bypass a switch that has a default\n%s", g)
	}
	for _, b := range []*cfg.Block{one, two, three, def} {
		if !hasEdge(dispatch, b) {
			t.Errorf("dispatch should fan out to case b%d\n%s", b.Index, g)
		}
	}
}

func TestSwitchNoDefaultBypasses(t *testing.T) {
	g := build(t, `
		var x int
		switch x {
		case 1:
			one()
		}
		done()
	`)
	one, done := blockCalling(t, g, "one"), blockCalling(t, g, "done")
	dispatch := one.Preds[0]
	if !hasEdge(dispatch, done) {
		t.Errorf("switch without default should edge dispatch → done\n%s", g)
	}
}

func TestReturnAndUnreachable(t *testing.T) {
	g := build(t, `
		var a bool
		if a {
			return
		}
		live()
		return
		dead()
	`)
	ca := condBlock(t, g, "a")
	if !hasEdge(ca.Succs[0], g.Exit) {
		t.Errorf("return should edge to exit\n%s", g)
	}
	dead := blockCalling(t, g, "dead")
	if len(dead.Preds) != 0 {
		t.Errorf("statements after return should be predecessor-less\n%s", g)
	}
}

// assignedVars is a may-analysis used to exercise the solver: the set
// of variable names that may have been assigned.
func assignedVars() cfg.Flow[map[string]bool] {
	return cfg.Flow[map[string]bool]{
		Entry: map[string]bool{},
		Transfer: func(n ast.Node, st map[string]bool) map[string]bool {
			ast.Inspect(n, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							st[id.Name] = true
						}
					}
				}
				return true
			})
			return st
		},
		Join: func(a, b map[string]bool) map[string]bool {
			for k := range b {
				a[k] = true
			}
			return a
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(a map[string]bool) map[string]bool {
			c := make(map[string]bool, len(a))
			for k, v := range a {
				c[k] = v
			}
			return c
		},
	}
}

func TestSolverFixpointOnLoops(t *testing.T) {
	g := build(t, `
		var a, b bool
		x := 1
	outer:
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				if a {
					y := 2
					_ = y
					continue outer
				}
				if b {
					goto rejoin
				}
			}
		}
	rejoin:
		done()
		_ = x
	`)
	res := cfg.Solve(g, assignedVars())
	if !res.Converged {
		t.Fatalf("monotone flow must converge (%d iterations)\n%s", res.Iterations, g)
	}
	in, ok := res.In[blockCalling(t, g, "done")]
	if !ok {
		t.Fatalf("done() should be reachable\n%s", g)
	}
	for _, v := range []string{"x", "i", "j", "y"} {
		if !in[v] {
			t.Errorf("may-assigned at done() should include %q, got %v", v, in)
		}
	}
	if _, ok := res.In[g.Exit]; !ok {
		t.Errorf("exit should be reachable")
	}
}

func TestSolverBranchRefinement(t *testing.T) {
	g := build(t, `
		var ok bool
		if ok {
			held()
		} else {
			idle()
		}
	`)
	flow := cfg.Flow[map[string]bool]{
		Entry:    map[string]bool{},
		Transfer: func(n ast.Node, st map[string]bool) map[string]bool { return st },
		Branch: func(cond ast.Expr, out map[string]bool) (map[string]bool, map[string]bool) {
			tOut := map[string]bool{"held": true}
			return tOut, out
		},
		Join:  assignedVars().Join,
		Equal: assignedVars().Equal,
		Clone: assignedVars().Clone,
	}
	res := cfg.Solve(g, flow)
	if !res.Converged {
		t.Fatal("must converge")
	}
	if in := res.In[blockCalling(t, g, "held")]; !in["held"] {
		t.Errorf("true edge should carry the refinement, got %v", in)
	}
	if in := res.In[blockCalling(t, g, "idle")]; in["held"] {
		t.Errorf("false edge must not carry the refinement, got %v", in)
	}
}

func TestSolverIterationCap(t *testing.T) {
	g := build(t, `
		for {
			spin()
		}
	`)
	n := 0
	flow := cfg.Flow[int]{
		// A deliberately non-monotone flow: every visit produces a new
		// state, so only the cap stops iteration.
		Transfer: func(ast.Node, int) int { n++; return n },
		Join:     func(a, b int) int { return a + b },
		Equal:    func(a, b int) bool { return false },
		Clone:    func(a int) int { return a },
		MaxIter:  100,
	}
	res := cfg.Solve(g, flow)
	if res.Converged {
		t.Fatal("non-monotone flow should hit the iteration cap")
	}
	if res.Iterations != 100 {
		t.Fatalf("iterations = %d, want exactly the cap", res.Iterations)
	}
}

func TestSelectAndRange(t *testing.T) {
	g := build(t, `
		var ch chan int
		var xs []int
		for _, v := range xs {
			use(v)
		}
		select {
		case v := <-ch:
			recv(v)
		default:
			idle()
		}
		done()
	`)
	use, recv, idle, done := blockCalling(t, g, "use"), blockCalling(t, g, "recv"), blockCalling(t, g, "idle"), blockCalling(t, g, "done")
	// range body cycles back through the head, which can exit.
	if !reaches(use, use) {
		t.Errorf("range body should be cyclic\n%s", g)
	}
	if !reaches(use, done) || !reaches(recv, done) || !reaches(idle, done) {
		t.Errorf("all arms should reach done\n%s", g)
	}
	res := cfg.Solve(g, assignedVars())
	if !res.Converged {
		t.Fatal("must converge")
	}
	if in := res.In[done]; !in["v"] {
		t.Errorf("may-assigned at done() should include range/comm var v, got %v", in)
	}
}
