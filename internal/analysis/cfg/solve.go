package cfg

// The generic forward-dataflow solver. A pass instantiates Flow[T]
// with its state type (a lock-set, a hint map, a nilness lattice),
// Solve runs the classic worklist iteration to a fixpoint, and the
// pass then replays each reachable block's nodes against the solved
// entry states to report violations exactly once per program point.

import "go/ast"

// Flow describes one forward dataflow problem over state type T.
//
// T values handed to Transfer/Branch are owned by the callee: the
// solver always passes a Clone, so both may mutate in place.
type Flow[T any] struct {
	// Entry is the state on the function's entry edge.
	Entry T
	// Transfer applies one node's effect. Nodes are whole statements
	// for straight-line code and bare expressions for branch
	// conditions and switch case expressions.
	Transfer func(n ast.Node, state T) T
	// Branch, if non-nil, refines the block's post-state along the
	// true and false edges of a conditional block (Cond != nil,
	// exactly two successors). Both results may alias out — the solver
	// clones before joining. Nil means no refinement (tOut = fOut).
	Branch func(cond ast.Expr, out T) (tOut, fOut T)
	// Join combines two predecessor states (must be commutative,
	// associative, and monotone — typically set union or lattice meet).
	Join func(a, b T) T
	// Equal reports state equality; the fixpoint test.
	Equal func(a, b T) bool
	// Clone returns an independent deep copy.
	Clone func(T) T
	// MaxIter caps block visits (0 = DefaultMaxIter). With monotone
	// Join/Transfer over finite state the cap is never hit; Result
	// records whether it was.
	MaxIter int
}

// DefaultMaxIter is the per-solve block-visit cap when Flow.MaxIter is
// zero: far beyond any fixpoint a monotone problem on a real function
// reaches, small enough to make a non-monotone bug fail fast in tests.
const DefaultMaxIter = 50000

// Result holds a solved dataflow problem.
type Result[T any] struct {
	// In maps each reachable block to the joined state at its entry.
	// Blocks absent from the map were never reached from Entry (dead
	// code); replaying only mapped blocks skips them naturally.
	In map[*Block]T
	// Iterations counts block visits performed.
	Iterations int
	// Converged is false only when MaxIter was exhausted first.
	Converged bool
}

// Solve runs forward worklist iteration on g and returns the per-block
// entry states.
func Solve[T any](g *CFG, f Flow[T]) *Result[T] {
	maxIter := f.MaxIter
	if maxIter == 0 {
		maxIter = DefaultMaxIter
	}
	res := &Result[T]{In: make(map[*Block]T), Converged: true}

	// outOf computes a block's edge-specific out-states from its
	// in-state: index 0/1 are the true/false refinements on a
	// conditional block, everything else shares index 0.
	outOf := func(b *Block, in T) (outs [2]T, conditional bool) {
		state := f.Clone(in)
		for _, n := range b.Nodes {
			state = f.Transfer(n, state)
		}
		if b.Cond != nil && len(b.Succs) == 2 && f.Branch != nil {
			t, fl := f.Branch(b.Cond, state)
			return [2]T{f.Clone(t), f.Clone(fl)}, true
		}
		return [2]T{state, state}, false
	}

	res.In[g.Entry] = f.Clone(f.Entry)
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		if res.Iterations >= maxIter {
			res.Converged = false
			break
		}
		res.Iterations++
		b := work[0]
		work = work[1:]
		queued[b] = false

		outs, conditional := outOf(b, res.In[b])
		for i, succ := range b.Succs {
			out := outs[0]
			if conditional && i == 1 {
				out = outs[1]
			}
			old, seen := res.In[succ]
			var next T
			if seen {
				next = f.Join(f.Clone(old), f.Clone(out))
				if f.Equal(old, next) {
					continue
				}
			} else {
				next = f.Clone(out)
			}
			res.In[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return res
}
