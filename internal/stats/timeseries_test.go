package stats

import (
	"strings"
	"testing"
)

func TestTimeSeriesSorted(t *testing.T) {
	ts := NewTimeSeries(0)
	ts.Add(300, 3, Big)
	ts.Add(100, 1, Little)
	ts.Add(200, 2, Big)
	s := ts.Sorted()
	if len(s) != 3 || s[0].Time != 100 || s[1].Time != 200 || s[2].Time != 300 {
		t.Fatalf("not sorted: %+v", s)
	}
}

func TestTimeSeriesWindows(t *testing.T) {
	ts := NewTimeSeries(0)
	// Two windows of width 100: [0,100) has values 10 and 20; [100,200)
	// has value 1000 from a little core.
	ts.Add(10, 10, Big)
	ts.Add(50, 20, Big)
	ts.Add(150, 1000, Little)
	ws := ts.Windows(100)
	if len(ws) != 2 {
		t.Fatalf("expected 2 windows, got %d", len(ws))
	}
	if ws[0].Count != 2 || ws[0].Max != 20 || ws[0].Start != 0 {
		t.Errorf("window 0 wrong: %+v", ws[0])
	}
	if ws[1].Count != 1 || ws[1].Max != 1000 || ws[1].LittleP99 != 1000 {
		t.Errorf("window 1 wrong: %+v", ws[1])
	}
	if ws[0].LittleP99 != 0 {
		t.Errorf("window 0 has no little samples, LittleP99 = %d", ws[0].LittleP99)
	}
}

func TestTimeSeriesWindowsEmpty(t *testing.T) {
	ts := NewTimeSeries(0)
	if got := ts.Windows(100); got != nil {
		t.Fatalf("empty series windows = %v", got)
	}
	if got := ts.Windows(0); got != nil {
		t.Fatalf("zero width windows = %v", got)
	}
}

func TestTimeSeriesMergeAndCSV(t *testing.T) {
	a, b := NewTimeSeries(0), NewTimeSeries(0)
	a.Add(1, 10, Big)
	b.Add(2, 20, Little)
	a.Merge(b)
	a.Merge(nil)
	if a.Len() != 2 {
		t.Fatalf("merged length %d", a.Len())
	}
	csv := a.CSV()
	if !strings.HasPrefix(csv, "time_ns,latency_ns,class\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "1,10,big") || !strings.Contains(csv, "2,20,little") {
		t.Errorf("csv rows wrong:\n%s", csv)
	}
}

func TestWindowGapHandling(t *testing.T) {
	ts := NewTimeSeries(0)
	ts.Add(50, 1, Big)
	ts.Add(950, 2, Big) // window [900,1000), with a gap between
	ws := ts.Windows(100)
	if len(ws) != 2 {
		t.Fatalf("expected 2 non-empty windows, got %d", len(ws))
	}
	if ws[1].Start != 900 {
		t.Errorf("second window start = %d, want 900", ws[1].Start)
	}
}
