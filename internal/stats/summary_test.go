package stats

import (
	"strings"
	"testing"
	"time"
)

func TestClassedRecorder(t *testing.T) {
	r := NewClassedRecorder()
	for i := 0; i < 100; i++ {
		r.Record(Big, 100)
		r.Record(Little, 1000)
	}
	if r.Ops(Big) != 100 || r.Ops(Little) != 100 || r.TotalOps() != 200 {
		t.Fatalf("ops miscounted: %d/%d", r.Ops(Big), r.Ops(Little))
	}
	if got := r.ByClass(Big).P99(); got != 100 {
		t.Errorf("big P99 = %d, want 100", got)
	}
	if got := r.ByClass(Little).P99(); got != 1000 {
		t.Errorf("little P99 = %d, want 1000", got)
	}
	if got := r.Overall().P99(); got != 1000 {
		t.Errorf("overall P99 = %d, want 1000", got)
	}
	if got := r.Overall().P50(); got != 1000 && got != 100 {
		t.Errorf("overall P50 = %d, want one of the recorded values", got)
	}
}

func TestClassedRecorderMerge(t *testing.T) {
	a, b := NewClassedRecorder(), NewClassedRecorder()
	a.Record(Big, 10)
	b.Record(Little, 20)
	b.Record(Big, 30)
	a.Merge(b)
	if a.TotalOps() != 3 || a.Ops(Big) != 2 || a.Ops(Little) != 1 {
		t.Fatalf("merge miscounted: total=%d", a.TotalOps())
	}
	a.Merge(nil) // must not panic
}

func TestSummarize(t *testing.T) {
	r := NewClassedRecorder()
	for i := 0; i < 1000; i++ {
		r.Record(Big, int64(i))
	}
	s := r.Summarize("test", time.Second)
	if s.Throughput != 1000 {
		t.Errorf("throughput = %v, want 1000", s.Throughput)
	}
	if s.Name != "test" || s.BigOps != 1000 || s.LittleOps != 0 {
		t.Errorf("summary fields wrong: %+v", s)
	}
	if s.String() == "" || !strings.Contains(s.String(), "test") {
		t.Error("summary string should mention the name")
	}
	// Zero elapsed must not divide by zero.
	z := r.Summarize("z", 0)
	if z.Throughput != 0 {
		t.Errorf("zero-elapsed throughput = %v, want 0", z.Throughput)
	}
}

func TestFormatSummaries(t *testing.T) {
	rows := []Summary{
		{Name: "mcs", Throughput: 100, BigP99: 1000, LittleP99: 2000, OverallP99: 1500},
		{Name: "tas", Throughput: 200, BigP99: 500, LittleP99: 9000, OverallP99: 8000},
	}
	out := FormatSummaries(rows)
	if !strings.Contains(out, "mcs") || !strings.Contains(out, "tas") {
		t.Errorf("missing rows in output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("expected header + 2 rows:\n%s", out)
	}
}
