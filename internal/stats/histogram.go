// Package stats provides the measurement substrate shared by the real
// and simulated benchmark engines: HDR-style latency histograms with
// bounded relative error, percentile and CDF extraction, time-series
// recording for adaptivity traces, and per-core-class summaries matching
// the paper's "Big P99 / Little P99 / Overall P99" reporting.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
)

// Histogram is a log-linear histogram of non-negative int64 values
// (latencies in nanoseconds throughout this repository).
//
// Layout: values below 2^b (b = subBucketBits) are stored exactly, one
// bucket per value. Each power-of-two range [2^k, 2^(k+1)) with k >= b
// is divided into 2^(b-1) equal sub-buckets, so every recorded value is
// reproduced with relative error at most 2^(1-b) (~0.8% at the default
// precision) — the same guarantee as the HDR histogram.
//
// Histogram is not safe for concurrent use; each worker records into its
// own histogram and the harness merges them afterwards.
type Histogram struct {
	subBucketBits uint
	counts        []uint64
	total         uint64
	min           int64
	max           int64
	sum           int64
}

// DefaultSubBucketBits gives ~0.8% worst-case relative error, more than
// enough to resolve the paper's percentile plots.
const DefaultSubBucketBits = 8

// NewHistogram returns a histogram with the default precision.
func NewHistogram() *Histogram { return NewHistogramBits(DefaultSubBucketBits) }

// NewHistogramBits returns a histogram with exact buckets below
// 2^subBucketBits and 2^(subBucketBits-1) sub-buckets per octave above.
// subBucketBits must be in [2, 16].
func NewHistogramBits(subBucketBits uint) *Histogram {
	if subBucketBits < 2 || subBucketBits > 16 {
		panic(fmt.Sprintf("stats: subBucketBits %d out of range [2,16]", subBucketBits))
	}
	linear := 1 << subBucketBits
	perOctave := 1 << (subBucketBits - 1)
	octaves := 64 - int(subBucketBits) // k = b .. 63
	return &Histogram{
		subBucketBits: subBucketBits,
		counts:        make([]uint64, linear+octaves*perOctave),
		min:           int64(^uint64(0) >> 1),
	}
}

// bucketIndex maps a non-negative value to its bucket index.
func (h *Histogram) bucketIndex(v int64) int {
	b := h.subBucketBits
	u := uint64(v)
	if u < 1<<b {
		return int(u)
	}
	k := uint(63 - bits.LeadingZeros64(u)) // v in [2^k, 2^(k+1)), k >= b
	shift := k - b + 1
	sub := int((u >> shift) & ((1 << (b - 1)) - 1)) // low b-1 bits after removing the leading 1
	return (1 << b) + int(k-b)*(1<<(b-1)) + sub
}

// bucketHigh returns the highest value contained in bucket i. Using the
// highest value (HDR's highestEquivalentValue) means percentiles never
// under-report.
func (h *Histogram) bucketHigh(i int) int64 {
	b := h.subBucketBits
	if i < 1<<b {
		return int64(i)
	}
	rem := i - 1<<b
	perOctave := 1 << (b - 1)
	k := uint(rem/perOctave) + b
	sub := uint64(rem % perOctave)
	shift := k - b + 1
	base := uint64(1)<<(b-1) | sub
	high := base<<shift + 1<<shift - 1
	// The top octave's buckets overflow int64; they can only be reached
	// by values near MaxInt64, so clamp.
	if shift >= 63 || high > uint64(1<<63-1) {
		return int64(^uint64(0) >> 1)
	}
	return int64(high)
}

// Record adds one observation. Negative values are clamped to zero (they
// can arise from clock retrograde on the real engine and are always
// measurement noise).
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n observations of value v.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[h.bucketIndex(v)] += n
	h.total += n
	h.sum += v * int64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of recorded values, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Percentile returns the value at percentile p in [0, 100]. The answer
// is exact for values in the linear region and within the configured
// relative error elsewhere. Returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum > rank {
			v := h.bucketHigh(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// P50, P90, P99 and P999 are shorthands for common percentiles.
func (h *Histogram) P50() int64  { return h.Percentile(50) }
func (h *Histogram) P90() int64  { return h.Percentile(90) }
func (h *Histogram) P99() int64  { return h.Percentile(99) }
func (h *Histogram) P999() int64 { return h.Percentile(99.9) }

// Merge adds all observations of o into h. Both histograms must have the
// same precision.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if o.subBucketBits != h.subBucketBits {
		panic("stats: merging histograms of different precision")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.max = 0
	h.min = int64(^uint64(0) >> 1)
}

// CDFPoint is one point of a cumulative distribution: Probability of the
// recorded values are <= Value.
type CDFPoint struct {
	Value       int64
	Probability float64
}

// CDF returns up to maxPoints points of the empirical CDF, suitable for
// the paper's latency-CDF figures (9c, 9f, 9i, 10c, 10f). Points are
// emitted only at occupied buckets so sparse distributions stay sharp.
// maxPoints <= 0 means no downsampling.
func (h *Histogram) CDF(maxPoints int) []CDFPoint {
	if h.total == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		pts = append(pts, CDFPoint{Value: h.bucketHigh(i), Probability: float64(cum) / float64(h.total)})
	}
	if maxPoints > 1 && len(pts) > maxPoints {
		// Downsample evenly, always keeping the last point (p=1).
		out := make([]CDFPoint, 0, maxPoints)
		step := float64(len(pts)-1) / float64(maxPoints-1)
		for k := 0; k < maxPoints; k++ {
			out = append(out, pts[int(float64(k)*step+0.5)])
		}
		out[len(out)-1] = pts[len(pts)-1]
		return out
	}
	return pts
}

// ExactPercentile computes percentile p of raw samples by sorting; it is
// the oracle used by tests to validate the histogram implementation.
func ExactPercentile(samples []int64, p float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(p / 100 * float64(len(s)))
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
