package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Sample is one time-stamped observation, used for the adaptivity trace
// of Fig. 8d (per-epoch latency over wall time, split by core class).
type Sample struct {
	Time  int64 // ns since experiment start
	Value int64 // ns latency
	Class Class
}

// TimeSeries records time-stamped samples. It is not safe for
// concurrent use; workers keep their own series and the harness merges.
type TimeSeries struct {
	samples []Sample
}

// NewTimeSeries returns an empty series with the given capacity hint.
func NewTimeSeries(capHint int) *TimeSeries {
	return &TimeSeries{samples: make([]Sample, 0, capHint)}
}

// Add appends a sample.
func (t *TimeSeries) Add(timeNs, value int64, c Class) {
	t.samples = append(t.samples, Sample{Time: timeNs, Value: value, Class: c})
}

// Merge appends all samples of o.
func (t *TimeSeries) Merge(o *TimeSeries) {
	if o == nil {
		return
	}
	t.samples = append(t.samples, o.samples...)
}

// Sorted returns the samples ordered by time. The receiver's backing
// slice is sorted in place and returned.
func (t *TimeSeries) Sorted() []Sample {
	sort.Slice(t.samples, func(i, j int) bool { return t.samples[i].Time < t.samples[j].Time })
	return t.samples
}

// Len returns the number of samples.
func (t *TimeSeries) Len() int { return len(t.samples) }

// WindowStat summarises one time window of a series.
type WindowStat struct {
	Start     int64 // ns
	End       int64 // ns
	Count     int
	P99       int64
	Max       int64
	LittleP99 int64
}

// Windows partitions the series into fixed windows of width ns and
// summarises each; this is how the Fig. 8d trace is checked against the
// SLO per phase.
func (t *TimeSeries) Windows(width int64) []WindowStat {
	if width <= 0 || len(t.samples) == 0 {
		return nil
	}
	s := t.Sorted()
	var out []WindowStat
	i := 0
	for i < len(s) {
		start := s[i].Time - s[i].Time%width
		end := start + width
		h := NewHistogram()
		hl := NewHistogram()
		n := 0
		var max int64
		for i < len(s) && s[i].Time < end {
			h.Record(s[i].Value)
			if s[i].Class == Little {
				hl.Record(s[i].Value)
			}
			if s[i].Value > max {
				max = s[i].Value
			}
			n++
			i++
		}
		out = append(out, WindowStat{Start: start, End: end, Count: n, P99: h.P99(), Max: max, LittleP99: hl.P99()})
	}
	return out
}

// CSV renders the series as "time_ns,latency_ns,class" lines for
// external plotting.
func (t *TimeSeries) CSV() string {
	var b strings.Builder
	b.WriteString("time_ns,latency_ns,class\n")
	for _, s := range t.Sorted() {
		fmt.Fprintf(&b, "%d,%d,%s\n", s.Time, s.Value, s.Class)
	}
	return b.String()
}
