package stats

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// Class aliases the core-class type so recorders and the LibASL library
// share one notion of big/little. The paper reports Big P99, Little P99
// and Overall P99 for every experiment, so class-segregated recording
// is built into the substrate.
type Class = core.Class

// Big and Little re-export the class constants for brevity at call
// sites that otherwise would not import internal/core.
const (
	Big    = core.Big
	Little = core.Little
)

const numClasses = 2

// ClassedRecorder accumulates latencies split by core class plus an
// overall view, and counts completed operations for throughput. It is
// not safe for concurrent use; use one per worker and Merge.
type ClassedRecorder struct {
	perClass [numClasses]*Histogram
	overall  *Histogram
	ops      [numClasses]uint64
}

// NewClassedRecorder returns an empty recorder.
func NewClassedRecorder() *ClassedRecorder {
	r := &ClassedRecorder{overall: NewHistogram()}
	for i := range r.perClass {
		r.perClass[i] = NewHistogram()
	}
	return r
}

// Record adds one completed operation of the given class with the given
// latency in nanoseconds.
func (r *ClassedRecorder) Record(c Class, latencyNs int64) {
	r.RecordBatch(c, latencyNs, 1)
}

// RecordBatch adds one completed batched request that covered ops
// operations: one latency sample (the request's), ops counted toward
// throughput. Keeps batched rows in the same ops/s unit as point rows
// while P99 stays per request.
func (r *ClassedRecorder) RecordBatch(c Class, latencyNs int64, ops uint64) {
	r.perClass[c].Record(latencyNs)
	r.overall.Record(latencyNs)
	r.ops[c] += ops
}

// Merge folds o into r.
func (r *ClassedRecorder) Merge(o *ClassedRecorder) {
	if o == nil {
		return
	}
	for i := range r.perClass {
		r.perClass[i].Merge(o.perClass[i])
		r.ops[i] += o.ops[i]
	}
	r.overall.Merge(o.overall)
}

// Ops returns the number of completed operations of class c.
func (r *ClassedRecorder) Ops(c Class) uint64 { return r.ops[c] }

// TotalOps returns the number of completed operations across classes.
func (r *ClassedRecorder) TotalOps() uint64 {
	var t uint64
	for _, n := range r.ops {
		t += n
	}
	return t
}

// Overall returns the merged histogram across classes.
func (r *ClassedRecorder) Overall() *Histogram { return r.overall }

// ByClass returns the histogram for class c.
func (r *ClassedRecorder) ByClass(c Class) *Histogram { return r.perClass[c] }

// Summary is the per-experiment result row used throughout the harness:
// it matches the bar groups of the paper's comparison figures.
type Summary struct {
	Name       string
	Throughput float64 // operations (or epochs) per second
	BigP99     int64   // ns
	LittleP99  int64   // ns
	OverallP99 int64   // ns
	BigOps     uint64
	LittleOps  uint64
}

// Summarize converts a recorder plus the covered duration into a
// Summary row.
func (r *ClassedRecorder) Summarize(name string, elapsed time.Duration) Summary {
	sec := elapsed.Seconds()
	var thr float64
	if sec > 0 {
		thr = float64(r.TotalOps()) / sec
	}
	return Summary{
		Name:       name,
		Throughput: thr,
		BigP99:     r.perClass[Big].P99(),
		LittleP99:  r.perClass[Little].P99(),
		OverallP99: r.overall.P99(),
		BigOps:     r.ops[Big],
		LittleOps:  r.ops[Little],
	}
}

// String renders the summary as one aligned line.
func (s Summary) String() string {
	return fmt.Sprintf("%-14s thr=%11.0f ops/s  bigP99=%9s littleP99=%9s overallP99=%9s  (big=%d little=%d)",
		s.Name, s.Throughput,
		time.Duration(s.BigP99), time.Duration(s.LittleP99), time.Duration(s.OverallP99),
		s.BigOps, s.LittleOps)
}

// FormatSummaries renders rows as an aligned table with a header,
// mirroring the layout of the paper's comparison figures.
func FormatSummaries(rows []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %12s %12s %12s %10s %10s\n",
		"lock", "thr(ops/s)", "bigP99", "littleP99", "overallP99", "bigOps", "littleOps")
	for _, s := range rows {
		fmt.Fprintf(&b, "%-14s %14.0f %12s %12s %12s %10d %10d\n",
			s.Name, s.Throughput,
			time.Duration(s.BigP99), time.Duration(s.LittleP99), time.Duration(s.OverallP99),
			s.BigOps, s.LittleOps)
	}
	return b.String()
}
