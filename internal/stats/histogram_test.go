package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram should report zeros: count=%d p99=%d", h.Count(), h.P99())
	}
	if h.CDF(10) != nil {
		t.Fatal("empty histogram CDF should be nil")
	}
}

func TestHistogramExactInLinearRegion(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 256; i++ {
		h.Record(i)
	}
	if got := h.Percentile(0); got != 0 {
		t.Errorf("P0 = %d, want 0", got)
	}
	if got := h.Percentile(50); got != 128 {
		t.Errorf("P50 = %d, want 128", got)
	}
	if got := h.Percentile(100); got != 255 {
		t.Errorf("P100 = %d, want 255", got)
	}
	if h.Min() != 0 || h.Max() != 255 {
		t.Errorf("min/max = %d/%d, want 0/255", h.Min(), h.Max())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.RecordN(123456789, 1000)
	for _, p := range []float64{0, 50, 99, 99.9, 100} {
		got := h.Percentile(p)
		if relErr(got, 123456789) > 0.01 {
			t.Errorf("P%.1f = %d, want ~123456789", p, got)
		}
	}
	if h.Count() != 1000 {
		t.Errorf("count = %d, want 1000", h.Count())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative value should clamp to 0: min=%d max=%d", h.Min(), h.Max())
	}
}

func relErr(got, want int64) float64 {
	if want == 0 {
		return math.Abs(float64(got))
	}
	return math.Abs(float64(got-want)) / float64(want)
}

// TestHistogramVsOracle checks percentiles against a sort-based oracle
// on a variety of distributions.
func TestHistogramVsOracle(t *testing.T) {
	rng := prng.NewXoshiro256(42)
	distros := map[string]func() int64{
		"uniform": func() int64 { return int64(prng.Uint64n(rng, 1_000_000)) },
		"small":   func() int64 { return int64(prng.Uint64n(rng, 100)) },
		"heavy":   func() int64 { return int64(float64(prng.Uint64n(rng, 1000)) * prng.Exponential(rng, 500)) },
		"bimodal": func() int64 {
			if prng.Bool(rng, 0.9) {
				return int64(prng.Uint64n(rng, 1000))
			}
			return 1_000_000 + int64(prng.Uint64n(rng, 1_000_000))
		},
	}
	for name, gen := range distros {
		h := NewHistogram()
		samples := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := gen()
			h.Record(v)
			samples = append(samples, v)
		}
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 99.9} {
			got := h.Percentile(p)
			want := ExactPercentile(samples, p)
			// The histogram may round up to the end of a bucket; allow
			// its relative error bound (~0.8%) plus rank slack of one
			// sample value at sparse tails.
			if want > 0 && relErr(got, want) > 0.02 && absDiff(got, want) > 2 {
				t.Errorf("%s: P%v = %d, oracle %d (relErr %.4f)", name, p, got, want, relErr(got, want))
			}
		}
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestHistogramBucketRoundTrip property: every value lands in a bucket
// whose representative is within the precision bound.
func TestHistogramBucketRoundTrip(t *testing.T) {
	h := NewHistogram()
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		idx := h.bucketIndex(v)
		if idx < 0 || idx >= len(h.counts) {
			return false
		}
		hi := h.bucketHigh(idx)
		if hi < v {
			return false // representative must not under-report
		}
		return relErr(hi, v) <= 1.0/128+1e-9 || hi-v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramBucketMonotone property: bucketHigh is non-decreasing in
// the bucket index, so percentile extraction is order-correct.
func TestHistogramBucketMonotone(t *testing.T) {
	h := NewHistogram()
	prev := int64(-1)
	for i := 0; i < len(h.counts); i++ {
		hi := h.bucketHigh(i)
		if hi < prev {
			t.Fatalf("bucketHigh not monotone at %d: %d < %d", i, hi, prev)
		}
		prev = hi
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	rng := prng.NewSplitMix64(7)
	all := NewHistogram()
	for i := 0; i < 10000; i++ {
		v := int64(prng.Uint64n(rng, 1<<20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	for _, p := range []float64{50, 90, 99} {
		if a.Percentile(p) != all.Percentile(p) {
			t.Errorf("P%v: merged %d != direct %d", p, a.Percentile(p), all.Percentile(p))
		}
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestHistogramMergePrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on precision mismatch")
		}
	}()
	a := NewHistogramBits(8)
	b := NewHistogramBits(10)
	b.Record(1)
	a.Merge(b)
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.P99() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(7)
	if h.P99() != 7 || h.Count() != 1 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestCDF(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	pts := h.CDF(0)
	if len(pts) != 100 {
		t.Fatalf("expected 100 CDF points, got %d", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Probability != 1.0 {
		t.Errorf("final CDF probability = %v, want 1", last.Probability)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Probability < pts[i-1].Probability || pts[i].Value < pts[i-1].Value {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	down := h.CDF(10)
	if len(down) != 10 {
		t.Fatalf("downsampled CDF has %d points, want 10", len(down))
	}
	if down[len(down)-1].Probability != 1.0 {
		t.Error("downsampled CDF must end at p=1")
	}
}

func TestHistogramQuickPercentileOrder(t *testing.T) {
	// Property: percentiles are monotone in p.
	f := func(seed uint64) bool {
		rng := prng.NewSplitMix64(seed)
		h := NewHistogram()
		for i := 0; i < 500; i++ {
			h.Record(int64(prng.Uint64n(rng, 1<<30)))
		}
		prev := int64(0)
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
