// Package wal implements the per-shard append-only log behind
// shardedkv's durability layer.
//
// Design (mirrors ARCHITECTURE.md "Durability"):
//
//   - One Log per shard, one directory per Log. Records are
//     length-prefixed and checksummed; segments rotate at a size
//     threshold so checkpoints can truncate history.
//   - Append is cheap and is the only call allowed while the owning
//     shard lock is held: it writes into a user-space buffer and
//     never issues fsync. Commit/Sync perform group commit — the
//     first waiter becomes the sync leader, flushes and fsyncs once,
//     and every waiter whose LSN is covered piggybacks on that single
//     sync. This is what makes durability cost one fsync per combiner
//     drain instead of one per op.
//   - Replay tolerates torn tails and corrupt checksums by truncating
//     (logical) at the first bad record; it never panics. Checkpoint
//     files are complete by construction (tmp + fsync + rename), so a
//     crash mid-checkpoint leaves only an ignorable *.tmp.
//
// Lock order: Log.mu is innermost — nothing else is acquired while it
// is held. The shard lock → Log.mu edge (Append during a drain) is
// therefore safe, and the repolint lockheldcall pass machine-checks
// that Commit/Sync (the fsync-issuing calls) never run under a shard
// lock.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind tags a log record.
type Kind uint8

const (
	// KindPut records a key/value insert or overwrite.
	KindPut Kind = 1
	// KindDelete records a key removal.
	KindDelete Kind = 2
)

// Record framing: u32 payload length, u32 CRC32-C of the payload,
// then the payload (kind byte, 8-byte little-endian key, value bytes
// for puts). recHeader is the fixed prefix size.
const recHeader = 8

// maxPayload bounds a single record so a corrupt length prefix on
// replay cannot drive a huge allocation; it comfortably exceeds the
// wire protocol's MaxValueLen.
const maxPayload = 1 << 26

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log. Zero values pick the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold for the active segment.
	SegmentBytes int64
	// BufBytes sizes the user-space append buffer.
	BufBytes int
	// FS overrides the filesystem the log writes through (nil = the
	// real one). FaultFS is the fault-injection implementation.
	FS FS
}

const (
	defaultSegmentBytes = 4 << 20
	defaultBufBytes     = 64 << 10
)

// Stats is a point-in-time snapshot of a Log's counters.
// OpsPerFsync (Appended/Syncs) is the group-commit figure of merit:
// it climbs with the combiner batch size when group commit works.
type Stats struct {
	Appended  uint64 // records appended
	Syncs     uint64 // fsync batches issued (one per group commit)
	Rotations uint64
	Bytes     uint64 // payload+header bytes appended
}

// Add accumulates s2 into s (for per-store aggregation across shards).
func (s *Stats) Add(s2 Stats) {
	s.Appended += s2.Appended
	s.Syncs += s2.Syncs
	s.Rotations += s2.Rotations
	s.Bytes += s2.Bytes
}

// OpsPerFsync returns Appended/Syncs, the average number of records
// made durable per fsync.
func (s Stats) OpsPerFsync() float64 {
	if s.Syncs == 0 {
		return 0
	}
	return float64(s.Appended) / float64(s.Syncs)
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// Log is a single shard's append-only log. All methods are safe for
// concurrent use. Append may be called with the owning shard lock
// held; Commit, Sync, WriteCheckpoint and Close must not be.
type Log struct {
	dir  string
	opts Options
	fs   FS

	mu   sync.Mutex
	cond *sync.Cond // broadcast when synced advances or leadership frees

	f        File          // active segment
	w        *bufio.Writer // buffers appends into f
	segIndex uint64        // index of the active segment
	segBytes int64         // bytes appended to the active segment

	appended uint64 // LSN of the last appended record (1-based count)
	synced   uint64 // highest LSN known durable
	syncing  bool   // a group-commit leader is mid-fsync

	sealed      []File // rotated-out segments awaiting their first fsync
	needDirSync bool   // a segment file was created since the last sync

	stats  Stats
	err    error // sticky I/O error; poisons the log
	closed bool
}

// Open creates (or reuses) dir and returns a Log appending to a fresh
// segment numbered after any already present. Existing segments are
// left untouched — recovery reads them via Replay.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.BufBytes <= 0 {
		opts.BufBytes = defaultBufBytes
	}
	fs := opts.FS
	if fs == nil {
		fs = osFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	segs, _, err := listDir(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	l := &Log{dir: dir, opts: opts, fs: fs, segIndex: next}
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

func segName(idx uint64) string  { return fmt.Sprintf("seg-%016x.wal", idx) }
func ckptName(idx uint64) string { return fmt.Sprintf("ckpt-%016x.ck", idx) }

// openSegmentLocked starts segment l.segIndex. Callers hold l.mu (or
// own the Log exclusively during Open).
func (l *Log) openSegmentLocked() error {
	f, err := l.fs.Create(filepath.Join(l.dir, segName(l.segIndex)))
	if err != nil {
		return err
	}
	l.f = f
	if l.w == nil {
		l.w = bufio.NewWriterSize(f, l.opts.BufBytes)
	} else {
		l.w.Reset(f)
	}
	l.segBytes = 0
	l.needDirSync = true
	return nil
}

// Append writes one record and returns its LSN. It buffers in user
// space and never fsyncs, so it is safe (and intended) to call while
// the owning shard lock is held. Durability is only promised once
// Commit(lsn) or Sync returns.
func (l *Log) Append(kind Kind, key uint64, val []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}

	payloadLen := 1 + 8
	if kind == KindPut {
		payloadLen += len(val)
	}
	if err := writeRecord(l.w, kind, key, val); err != nil {
		l.fail(err)
		return 0, err
	}
	n := int64(recHeader + payloadLen)
	l.segBytes += n
	l.stats.Bytes += uint64(n)
	l.appended++
	l.stats.Appended++
	lsn := l.appended

	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.fail(err)
			return lsn, err
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment and opens the next one. No
// fsync happens here (rotation can run under a shard lock); the
// sealed file is fsynced by the next group-commit leader.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, l.f)
	l.segIndex++
	l.stats.Rotations++
	return l.openSegmentLocked()
}

// Rotate forces a segment boundary and returns the index of the new
// active segment: every record appended before the call lives in a
// segment with a strictly smaller index, which makes the return value
// a valid checkpoint boundary. Safe under the shard lock (no fsync).
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if err := l.rotateLocked(); err != nil {
		l.fail(err)
		return 0, err
	}
	return l.segIndex, nil
}

func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
}

// Commit blocks until every record up to and including lsn is
// durable. Concurrent committers elect one leader per round; the
// leader flushes and fsyncs once, everyone covered piggybacks.
// Commit issues fsync and must never be called with a shard lock
// held (machine-checked by repolint's lockheldcall pass).
func (l *Log) Commit(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.err == nil && !l.closed && l.synced < lsn {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		//lint:ignore lockorder leadSyncLocked is a lock hand-off, not a re-acquisition: it enters holding l.mu, drops it around the fsync so appenders keep batching, and re-takes it before returning.
		l.leadSyncLocked()
	}
	if l.err != nil {
		return l.err
	}
	if l.closed && l.synced < lsn {
		return ErrClosed
	}
	return nil
}

// Sync makes every record appended so far durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.appended
	l.mu.Unlock()
	return l.Commit(lsn)
}

// leadSyncLocked runs one group-commit round. Called with l.mu held
// and l.syncing false; returns with l.mu held.
func (l *Log) leadSyncLocked() {
	l.syncing = true
	target := l.appended
	var err error
	if err = l.w.Flush(); err != nil {
		l.syncing = false
		l.fail(err)
		return
	}
	sealed := l.sealed
	l.sealed = nil
	dirSync := l.needDirSync
	l.needDirSync = false
	active := l.f
	l.mu.Unlock()

	// The expensive part runs without the mutex so appenders keep
	// flowing into the next batch.
	if err == nil && dirSync {
		err = l.fs.SyncDir(l.dir)
	}
	for _, f := range sealed {
		if err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = active.Sync()
	}

	l.mu.Lock()
	l.stats.Syncs++
	if err != nil {
		l.fail(err)
	} else if l.synced < target {
		l.synced = target
	}
	l.syncing = false
	l.cond.Broadcast()
}

// Durable reports the highest LSN known durable.
func (l *Log) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// WriteCheckpoint writes a checkpoint covering every record in
// segments with index < boundary (obtain boundary from Rotate), then
// removes those segments and any older checkpoints. dump must emit
// the full state as of the boundary. The checkpoint becomes visible
// atomically via rename, so a crash at any point leaves either the
// old history or the new checkpoint — never a half state. Issues
// fsync; must not run under a shard lock.
func (l *Log) WriteCheckpoint(boundary uint64, dump func(emit func(key uint64, val []byte) error) error) error {
	tmp := filepath.Join(l.dir, ckptName(boundary)+".tmp")
	f, err := l.fs.CreateTrunc(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, defaultBufBytes)
	emit := func(key uint64, val []byte) error {
		return writeRecord(w, KindPut, key, val)
	}
	err = dump(emit)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		l.fs.Remove(tmp)
		return err
	}
	if rerr := l.fs.Rename(tmp, filepath.Join(l.dir, ckptName(boundary))); rerr != nil {
		l.fs.Remove(tmp)
		return rerr
	}
	if serr := l.fs.SyncDir(l.dir); serr != nil {
		return serr
	}
	// History before the boundary is now redundant. Removal is
	// best-effort: leftovers are skipped by Replay's boundary rule.
	segs, ckpts, err := listDir(l.dir)
	if err != nil {
		return nil
	}
	for _, idx := range segs {
		if idx < boundary {
			l.fs.Remove(filepath.Join(l.dir, segName(idx)))
		}
	}
	for _, idx := range ckpts {
		if idx < boundary {
			l.fs.Remove(filepath.Join(l.dir, ckptName(idx)))
		}
	}
	return nil
}

// writeRecord frames one record onto w (shared by Append and
// checkpoint emission).
func writeRecord(w *bufio.Writer, kind Kind, key uint64, val []byte) error {
	payloadLen := 1 + 8
	if kind == KindPut {
		payloadLen += len(val)
	}
	var hdr [recHeader + 9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	hdr[8] = byte(kind)
	binary.LittleEndian.PutUint64(hdr[9:17], key)
	crc := crc32.Update(0, castagnoli, hdr[8:17])
	if kind == KindPut {
		crc = crc32.Update(crc, castagnoli, val)
	}
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if kind == KindPut {
		if _, err := w.Write(val); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes, fsyncs and closes the log. Every record appended
// before Close is durable once it returns nil.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	for l.syncing {
		l.cond.Wait()
	}
	var err error
	if l.err == nil {
		if err = l.w.Flush(); err != nil {
			l.fail(err)
		}
	}
	sealed := l.sealed
	l.sealed = nil
	active := l.f
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()

	for _, f := range sealed {
		if serr := f.Sync(); err == nil {
			err = serr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if active != nil {
		if serr := active.Sync(); err == nil {
			err = serr
		}
		if cerr := active.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CrashDrop simulates kill -9 for crash tests: buffered-but-unflushed
// records vanish and file handles close without a final fsync. What
// had already reached the OS (flushed by a prior sync, rotation, or
// buffer spill) survives, exactly like a process kill on a live
// kernel. Test hook only.
func (l *Log) CrashDrop() {
	l.mu.Lock()
	for l.syncing {
		l.cond.Wait()
	}
	sealed := l.sealed
	l.sealed = nil
	active := l.f
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	for _, f := range sealed {
		f.Close()
	}
	if active != nil {
		active.Close()
	}
}

// listDir returns the sorted segment and checkpoint indices in dir.
// Unknown files (including *.tmp leftovers) are ignored.
func listDir(dir string) (segs, ckpts []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			if idx, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 16, 64); perr == nil {
				segs = append(segs, idx)
			}
		case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".ck"):
			if idx, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ck"), 16, 64); perr == nil {
				ckpts = append(ckpts, idx)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	return segs, ckpts, nil
}

// ReplayInfo summarises a Replay pass.
type ReplayInfo struct {
	Boundary  uint64 // checkpoint boundary used (0 = none)
	Records   uint64 // records delivered to fn (checkpoint + segments)
	Truncated bool   // a torn tail or corrupt record cut the tail off
}

// Replay streams a shard's durable history — newest checkpoint first,
// then every segment at or past its boundary in ascending order — to
// fn in append order. fromCkpt distinguishes the checkpoint prefix
// (distinct keys, arbitrary order, bulk-loadable) from segment
// records (strictly ordered tail). A torn tail or corrupt checksum in
// a segment truncates the stream at that point (Truncated is set) and
// replay of that shard stops: records past a hole must not be applied
// or per-key ordering breaks. A missing or empty dir replays nothing.
// Corruption inside a checkpoint file is reported as an error since
// checkpoints are complete by construction.
func Replay(dir string, fn func(kind Kind, key uint64, val []byte, fromCkpt bool) error) (ReplayInfo, error) {
	var info ReplayInfo
	segs, ckpts, err := listDir(dir)
	if err != nil {
		return info, err
	}
	if len(ckpts) > 0 {
		info.Boundary = ckpts[len(ckpts)-1]
		n, truncated, err := replayFile(filepath.Join(dir, ckptName(info.Boundary)), func(kind Kind, key uint64, val []byte) error {
			return fn(kind, key, val, true)
		})
		info.Records += n
		if err != nil {
			return info, err
		}
		if truncated {
			return info, fmt.Errorf("wal: checkpoint %s corrupt", ckptName(info.Boundary))
		}
	}
	for _, idx := range segs {
		if idx < info.Boundary {
			continue
		}
		n, truncated, err := replayFile(filepath.Join(dir, segName(idx)), func(kind Kind, key uint64, val []byte) error {
			return fn(kind, key, val, false)
		})
		info.Records += n
		if err != nil {
			return info, err
		}
		if truncated {
			info.Truncated = true
			return info, nil
		}
	}
	return info, nil
}

// replayFile streams one file's records. truncated=true means a
// malformed record ended the scan early; err is reserved for I/O and
// fn errors.
func replayFile(path string, fn func(kind Kind, key uint64, val []byte) error) (n uint64, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, defaultBufBytes)
	var hdr [recHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return n, false, nil
			}
			// Torn header.
			return n, true, nil
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if payloadLen < 9 || payloadLen > maxPayload {
			return n, true, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return n, true, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return n, true, nil
		}
		kind := Kind(payload[0])
		if kind != KindPut && kind != KindDelete {
			return n, true, nil
		}
		key := binary.LittleEndian.Uint64(payload[1:9])
		var val []byte
		if kind == KindPut {
			val = payload[9:]
		}
		if err := fn(kind, key, val); err != nil {
			return n, false, err
		}
		n++
	}
}
