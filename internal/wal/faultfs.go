package wal

import (
	"time"

	"repro/internal/fault"
)

// FaultFS is an FS that consults a fault.Registry before every
// operation. It lives in this package (rather than in internal/fault)
// because Go's nominal method-set rules mean only a type returning
// wal.File can satisfy wal.FS.
//
// Injection points (the table in ARCHITECTURE.md §10 mirrors this):
//
//	wal.open    segment create + checkpoint-tmp create
//	wal.write   every buffered write reaching a file (torn writes via short=B)
//	wal.fsync   file fsync — the group-commit failure the degraded-mode
//	            machinery exists for
//	wal.rename  checkpoint publish
//	wal.remove  history truncation after a checkpoint
//	wal.dirsync directory fsync
type FaultFS struct {
	Reg  *fault.Registry
	Base FS // nil = the real filesystem
}

func (f FaultFS) base() FS {
	if f.Base == nil {
		return osFS{}
	}
	return f.Base
}

func (f FaultFS) check(point string, n int) error {
	out := f.Reg.Eval(point, n)
	if out.Sleep > 0 {
		time.Sleep(out.Sleep)
	}
	return out.Err
}

func (f FaultFS) MkdirAll(dir string) error { return f.base().MkdirAll(dir) }

func (f FaultFS) Create(name string) (File, error) {
	if err := f.check("wal.open", 0); err != nil {
		return nil, err
	}
	file, err := f.base().Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, reg: f.Reg}, nil
}

func (f FaultFS) CreateTrunc(name string) (File, error) {
	if err := f.check("wal.open", 0); err != nil {
		return nil, err
	}
	file, err := f.base().CreateTrunc(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, reg: f.Reg}, nil
}

func (f FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check("wal.rename", 0); err != nil {
		return err
	}
	return f.base().Rename(oldpath, newpath)
}

func (f FaultFS) Remove(name string) error {
	if err := f.check("wal.remove", 0); err != nil {
		return err
	}
	return f.base().Remove(name)
}

func (f FaultFS) SyncDir(dir string) error {
	if err := f.check("wal.dirsync", 0); err != nil {
		return err
	}
	return f.base().SyncDir(dir)
}

// faultFile interposes on the write/fsync paths of one open file. A
// short=B rule on wal.write lets B bytes reach the file and then
// fails — the torn write Replay must truncate at.
type faultFile struct {
	File
	reg *fault.Registry
}

func (f *faultFile) Write(p []byte) (int, error) {
	out := f.reg.Eval("wal.write", len(p))
	if out.Sleep > 0 {
		time.Sleep(out.Sleep)
	}
	if out.Err == nil {
		return f.File.Write(p)
	}
	n := 0
	if out.Short > 0 {
		short := out.Short
		if short > len(p) {
			short = len(p)
		}
		n, _ = f.File.Write(p[:short])
	}
	return n, out.Err
}

func (f *faultFile) Sync() error {
	out := f.reg.Eval("wal.fsync", 0)
	if out.Sleep > 0 {
		time.Sleep(out.Sleep)
	}
	if out.Err != nil {
		return out.Err
	}
	return f.File.Sync()
}
