package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type rec struct {
	kind Kind
	key  uint64
	val  []byte
}

func collect(t *testing.T, dir string) ([]rec, ReplayInfo) {
	t.Helper()
	var out []rec
	info, err := Replay(dir, func(kind Kind, key uint64, val []byte, _ bool) error {
		out = append(out, rec{kind, key, append([]byte(nil), val...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out, info
}

func TestAppendCommitReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(KindPut, uint64(i), []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if _, err := l.Append(KindDelete, 7, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(last + 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, info := collect(t, dir)
	if len(recs) != 101 {
		t.Fatalf("replayed %d records, want 101", len(recs))
	}
	if info.Truncated {
		t.Fatal("unexpected truncation on clean log")
	}
	if recs[3].kind != KindPut || recs[3].key != 3 || !bytes.Equal(recs[3].val, []byte("v3")) {
		t.Fatalf("record 3 = %+v", recs[3])
	}
	if recs[100].kind != KindDelete || recs[100].key != 7 {
		t.Fatalf("record 100 = %+v", recs[100])
	}
}

// TestGroupCommitPiggyback drives many concurrent committers and
// checks durability holds while fsync count stays far below the
// record count — the group-commit invariant.
func TestGroupCommitPiggyback(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const G, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append(KindPut, uint64(g*per+i), []byte("x"))
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.Commit(lsn); err != nil {
					t.Error(err)
					return
				}
				if l.Durable() < lsn {
					t.Errorf("Commit returned with durable %d < lsn %d", l.Durable(), lsn)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appended != G*per {
		t.Fatalf("appended %d, want %d", st.Appended, G*per)
	}
	if st.Syncs == 0 || st.Syncs > st.Appended {
		t.Fatalf("syncs %d out of range (appended %d)", st.Syncs, st.Appended)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir)
	if len(recs) != G*per {
		t.Fatalf("replayed %d, want %d", len(recs), G*per)
	}
}

func TestSegmentRotationAndReplayOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := l.Append(KindPut, 42, []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Rotations == 0 {
		t.Fatal("expected rotations with a 256-byte segment threshold")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir)
	if len(recs) != n {
		t.Fatalf("replayed %d, want %d", len(recs), n)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("v%03d", i); string(r.val) != want {
			t.Fatalf("record %d out of order: got %q want %q", i, r.val, want)
		}
	}
}

func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(KindPut, uint64(i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listDir: %v %v", segs, err)
	}
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: leave 9.5 records.
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, info := collect(t, dir)
	if !info.Truncated {
		t.Fatal("torn tail not reported as truncated")
	}
	if len(recs) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(recs))
	}
}

func TestCorruptChecksumTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(KindPut, uint64(i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := listDir(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the 6th record. Each record here is
	// 8 (header) + 1 + 8 + 5 (value) = 22 bytes.
	data[5*22+recHeader+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, info := collect(t, dir)
	if !info.Truncated {
		t.Fatal("corrupt checksum not reported as truncated")
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records past corruption, want 5", len(recs))
	}
}

func TestCheckpointTruncatesHistory(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	state := map[uint64][]byte{}
	for i := 0; i < 50; i++ {
		k, v := uint64(i%10), []byte(fmt.Sprintf("v%d", i))
		if _, err := l.Append(KindPut, k, v); err != nil {
			t.Fatal(err)
		}
		state[k] = v
	}
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint(boundary, func(emit func(uint64, []byte) error) error {
		for k, v := range state {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail.
	if _, err := l.Append(KindDelete, 3, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, ckpts, _ := listDir(dir)
	if len(ckpts) != 1 || ckpts[0] != boundary {
		t.Fatalf("ckpts = %v, want [%d]", ckpts, boundary)
	}
	for _, s := range segs {
		if s < boundary {
			t.Fatalf("segment %d survived checkpoint at %d", s, boundary)
		}
	}

	got := map[uint64][]byte{}
	sawCkpt := false
	_, err = Replay(dir, func(kind Kind, key uint64, val []byte, fromCkpt bool) error {
		sawCkpt = sawCkpt || fromCkpt
		if kind == KindDelete {
			delete(got, key)
		} else {
			got[key] = append([]byte(nil), val...)
		}
		return nil
	})
	if !sawCkpt {
		t.Fatal("no records attributed to the checkpoint")
	}
	if err != nil {
		t.Fatal(err)
	}
	delete(state, 3)
	if len(got) != len(state) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(state))
	}
	for k, v := range state {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %d: got %q want %q", k, got[k], v)
		}
	}
}

// TestCrashDropLosesOnlyUncommitted pins the crash-simulation
// semantics the recovery suite builds on: committed records survive
// CrashDrop, buffered-but-uncommitted ones may vanish.
func TestCrashDropLosesOnlyUncommitted(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var committed uint64
	for i := 0; i < 20; i++ {
		lsn, err := l.Append(KindPut, uint64(i), []byte("durable"))
		if err != nil {
			t.Fatal(err)
		}
		committed = lsn
	}
	if err := l.Commit(committed); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 40; i++ {
		if _, err := l.Append(KindPut, uint64(i), []byte("volatile")); err != nil {
			t.Fatal(err)
		}
	}
	l.CrashDrop()

	recs, info := collect(t, dir)
	if info.Truncated {
		t.Fatal("clean crash drop should not look torn")
	}
	if uint64(len(recs)) < committed {
		t.Fatalf("lost committed records: replayed %d, committed %d", len(recs), committed)
	}
	if len(recs) != 20 {
		t.Fatalf("buffered records leaked to disk without flush: %d", len(recs))
	}
}

func TestMidCheckpointCrashLeavesOldHistory(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(KindPut, uint64(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-checkpoint: a partial tmp file exists but
	// was never renamed.
	if err := os.WriteFile(filepath.Join(dir, ckptName(boundary)+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	l.CrashDrop()
	recs, info := collect(t, dir)
	if info.Boundary != 0 {
		t.Fatalf("tmp checkpoint must be ignored, got boundary %d", info.Boundary)
	}
	if len(recs) != 10 {
		t.Fatalf("replayed %d, want 10", len(recs))
	}
}

func TestOpenAfterCrashStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindPut, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.CrashDrop()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(KindPut, 2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir)
	if len(recs) != 2 || recs[0].key != 1 || recs[1].key != 2 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestOpsPerFsync(t *testing.T) {
	s := Stats{Appended: 128, Syncs: 4}
	if got := s.OpsPerFsync(); got != 32 {
		t.Fatalf("OpsPerFsync = %v, want 32", got)
	}
	if (Stats{}).OpsPerFsync() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
}
