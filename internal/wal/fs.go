package wal

import (
	"io"
	"os"
)

// FS abstracts the write-side file operations a Log performs. It is
// the injection seam: tests and the chaos harness swap in FaultFS to
// reach every err != nil branch in Append/Commit/Rotate/
// WriteCheckpoint without a real failing disk. The read side (Replay)
// deliberately stays on the real filesystem — recovery faults are
// exercised with real torn/corrupt files instead. A nil Options.FS
// means the real filesystem.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens a brand-new file (O_CREATE|O_WRONLY|O_EXCL) —
	// used for segments, which must never silently overwrite.
	Create(name string) (File, error)
	// CreateTrunc opens a file, truncating any previous content —
	// used for checkpoint temporaries, which are throwaway until
	// renamed into place.
	CreateTrunc(name string) (File, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// SyncDir fsyncs a directory so created/renamed entries survive
	// a crash.
	SyncDir(dir string) error
}

// File is the slice of *os.File the Log writes through.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// osFS is the real filesystem (the default).
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
}

func (osFS) CreateTrunc(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
