package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
)

func faultOpts(reg *fault.Registry) Options {
	return Options{FS: FaultFS{Reg: reg}}
}

// replayMap replays dir into a key→value map (deletes remove).
func replayMap(t *testing.T, dir string) (map[uint64][]byte, ReplayInfo) {
	t.Helper()
	m := make(map[uint64][]byte)
	info, err := Replay(dir, func(kind Kind, key uint64, val []byte, fromCkpt bool) error {
		if kind == KindDelete {
			delete(m, key)
			return nil
		}
		m[key] = append([]byte(nil), val...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return m, info
}

// TestFsyncFailFailsAllGroupCommitWaiters pins the group-commit error
// contract: when the leader's fsync fails, every waiter covered by
// that round gets the error (not just the leader), the synced LSN
// does not advance, and nothing hangs.
func TestFsyncFailFailsAllGroupCommitWaiters(t *testing.T) {
	reg := fault.New(1)
	reg.MustAdd(fault.Rule{Point: "wal.fsync", Always: true, Act: fault.ActError})
	l, err := Open(t.TempDir(), faultOpts(reg))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	const workers = 8
	errs := make([]error, workers)
	var start, done sync.WaitGroup
	start.Add(workers)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer done.Done()
			lsn, aerr := l.Append(KindPut, uint64(i), []byte("v"))
			start.Done()
			start.Wait() // rendezvous: everyone appends before anyone commits
			if aerr != nil {
				errs[i] = aerr
				return
			}
			errs[i] = l.Commit(lsn)
		}(i)
	}
	done.Wait()

	for i, err := range errs {
		if err == nil {
			t.Errorf("waiter %d got a nil Commit error despite the failed fsync", i)
		} else if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("waiter %d got %v, want the injected error", i, err)
		}
	}
	if d := l.Durable(); d != 0 {
		t.Errorf("synced LSN advanced to %d across a failed fsync", d)
	}
	// The log is poisoned: later appends fail fast with the same error.
	if _, err := l.Append(KindPut, 99, nil); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("append after failed fsync: %v, want sticky injected error", err)
	}
}

// TestRotateFailLeavesLogReplayable: a failed segment open during
// rotation poisons the log but everything flushed before the failure
// replays. The first wal.open call is Open's initial segment; the
// second is the rotation.
func TestRotateFailLeavesLogReplayable(t *testing.T) {
	reg := fault.New(1)
	reg.MustAdd(fault.Rule{Point: "wal.open", Nth: 2, Act: fault.ActError})
	dir := t.TempDir()
	l, err := Open(dir, faultOpts(reg))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := make(map[uint64][]byte)
	for i := uint64(0); i < 50; i++ {
		v := binary.LittleEndian.AppendUint64(nil, i*7)
		if _, err := l.Append(KindPut, i, v); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want[i] = v
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if _, err := l.Rotate(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Rotate: %v, want injected error", err)
	}
	if _, err := l.Append(KindPut, 999, nil); err == nil {
		t.Fatalf("append succeeded on a poisoned log")
	}
	got, info := replayMap(t, dir)
	if info.Records != 50 || len(got) != 50 {
		t.Fatalf("replayed %d records / %d keys, want 50/50", info.Records, len(got))
	}
	for k, v := range want {
		if string(got[k]) != string(v) {
			t.Fatalf("key %d replayed %q, want %q", k, got[k], v)
		}
	}
}

// TestCheckpointRenameFailKeepsHistoryReplayable: if the checkpoint's
// rename-into-place fails, WriteCheckpoint reports it, the tmp file
// is cleaned up, and the pre-checkpoint segments still replay the full
// model.
func TestCheckpointRenameFailKeepsHistoryReplayable(t *testing.T) {
	reg := fault.New(1)
	reg.MustAdd(fault.Rule{Point: "wal.rename", Nth: 1, Act: fault.ActError})
	dir := t.TempDir()
	l, err := Open(dir, faultOpts(reg))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := make(map[uint64][]byte)
	for i := uint64(0); i < 40; i++ {
		v := binary.LittleEndian.AppendUint64(nil, i^0xabcd)
		if _, err := l.Append(KindPut, i, v); err != nil {
			t.Fatalf("append: %v", err)
		}
		want[i] = v
	}
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	dump := func(emit func(key uint64, val []byte) error) error {
		for k, v := range want {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := l.WriteCheckpoint(boundary, dump); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("WriteCheckpoint: %v, want injected rename error", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("checkpoint tmp %s left behind after failed rename", e.Name())
		}
	}
	got, info := replayMap(t, dir)
	if info.Boundary != 0 {
		t.Fatalf("replay found a checkpoint (boundary %d) after a failed publish", info.Boundary)
	}
	for k, v := range want {
		if string(got[k]) != string(v) {
			t.Fatalf("key %d replayed %q, want %q", k, got[k], v)
		}
	}
	// The log itself is still healthy — the checkpoint path never
	// touches the append stream.
	if _, err := l.Append(KindPut, 1000, nil); err != nil {
		t.Fatalf("append after failed checkpoint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestTornWriteTruncatesOnReplay: a short write mid-stream yields a
// torn tail; Replay delivers the intact prefix and reports Truncated.
func TestTornWriteTruncatesOnReplay(t *testing.T) {
	reg := fault.New(1)
	// Records below are 17+7 = 24 bytes each; the flush arrives as one
	// big write. Let two records plus a sliver of the third's header
	// through, so the tail is genuinely torn (a tear on an exact record
	// boundary would read as a clean EOF).
	reg.MustAdd(fault.Rule{Point: "wal.write", Nth: 1, Act: fault.ActShort, Bytes: 50})
	dir := t.TempDir()
	l, err := Open(dir, faultOpts(reg))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := uint64(0); i < 5; i++ {
		if _, err := l.Append(KindPut, i, []byte("v000000")[:7]); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Sync: %v, want injected torn write", err)
	}
	got, info := replayMap(t, dir)
	if !info.Truncated {
		t.Fatalf("replay of a torn segment did not report Truncated")
	}
	if info.Records != 2 || len(got) != 2 {
		t.Fatalf("replayed %d records / %d keys past a 48-byte tear, want 2/2", info.Records, len(got))
	}
}

// TestCheckpointTmpWriteFailCleansUp: an fsync failure on the tmp file
// (before the rename) aborts the checkpoint and removes the tmp.
func TestCheckpointTmpWriteFailCleansUp(t *testing.T) {
	dir := t.TempDir()
	reg := fault.New(1)
	l, err := Open(dir, faultOpts(reg))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(KindPut, 1, []byte("x")); err != nil {
		t.Fatalf("append: %v", err)
	}
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Arm only now: the next fsync is the checkpoint tmp's.
	reg.MustAdd(fault.Rule{Point: "wal.fsync", Always: true, Act: fault.ActError})
	err = l.WriteCheckpoint(boundary, func(emit func(key uint64, val []byte) error) error {
		return emit(1, []byte("x"))
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("WriteCheckpoint: %v, want injected fsync error", err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") || strings.HasSuffix(e.Name(), ".ck") {
			t.Errorf("failed checkpoint left %s behind", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); err != nil {
		t.Errorf("segment vanished after failed checkpoint: %v", err)
	}
}
