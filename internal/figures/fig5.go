package figures

import (
	"repro/internal/harness"
)

// Fig5 reproduces Figure 5: proportional execution with proportion N =
// 0..29 (big cores get N handovers per little handover) on the Bench-1
// workload. Throughput and tail latency are mutually exclusive: larger
// N buys throughput at the price of little-core latency, and no static
// point adapts to an application's actual SLO — the motivation for
// LibASL's dynamic ordering (§2.3).
func Fig5() *harness.Figure {
	f := &harness.Figure{
		ID:     "fig5",
		Title:  "Static proportions trade latency for throughput",
		XLabel: "proportion N",
		YLabel: "throughput(ops/s) / p99(ns)",
	}
	thr := harness.Series{Name: "throughput"}
	lat := harness.Series{Name: "p99"}
	pareto := harness.Series{Name: "latency-vs-throughput"}
	for n := 0; n <= 29; n++ {
		cfg := Bench1Config(KindSHFLPB, -1)
		cfg.PBn = n
		if n == 0 {
			// N=0 degenerates to little-first; the paper's point 0 is
			// the fair end of the spectrum, i.e. strict alternation.
			cfg.PBn = 1
		}
		r := RunMicro(cfg)
		p99 := float64(r.Epochs.Overall().P99())
		thr.Add(float64(n), r.Throughput)
		lat.Add(float64(n), p99)
		pareto.Add(p99, r.Throughput)
	}
	f.Series = append(f.Series, thr, lat, pareto)
	f.Note("paper: both throughput and P99 grow with N; no single N fits all SLOs")
	return f
}
