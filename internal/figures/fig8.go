package figures

import (
	"sort"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/prng"
	"repro/internal/stats"
)

// Bench1Config is Bench-1 (§4.1): every thread repeatedly executes the
// same epoch of 4 critical sections of different lengths protected by
// 2 different locks (64 shared cache lines in total), separated by a
// fixed NOP interval.
func Bench1Config(kind LockKind, sloNs int64) MicroConfig {
	return MicroConfig{
		Machine:  m1(),
		Threads:  8,
		Kind:     kind,
		NumLocks: 2,
		CS: []CSSpec{
			{Lock: 0, Ns: lines(6)},
			{Lock: 1, Ns: lines(10)},
			{Lock: 0, Ns: lines(18)},
			{Lock: 1, Ns: lines(30)},
		},
		NCS:      nops(2700), // NOP interval calibrated for heavy contention (§4.1)
		SLO:      sloNs,
		Duration: defaultDuration,
		Warmup:   defaultWarmup,
		Seed:     8,
	}
}

const microsecond = int64(1_000)
const millisecond = int64(1_000_000)

// median returns the median of xs (0 when empty).
func median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// Fig8a reproduces Figure 8a: the Bench-1 comparison of pthread, TAS,
// ticket, SHFL-PB10 and MCS against LibASL at SLOs of 0, 25, 50 and
// 65 µs, plus LibASL-MAX (maximum reordering) and LibASL-OPT (the best
// static window, obtained here from the converged window of the
// LibASL-50 run — the oracle the paper describes as impossible to set a
// priori).
func Fig8a() *harness.Figure {
	f := &harness.Figure{ID: "fig8a", Title: "Bench-1: throughput and per-class P99 under heavy contention"}
	run := func(name string, cfg MicroConfig) *MicroResult {
		r := RunMicro(cfg)
		f.Rows = append(f.Rows, r.Summary(name))
		return r
	}

	run("pthread", Bench1Config(KindPthread, -1))
	tas := Bench1Config(KindTAS, -1)
	tas.TASAff = bigAffinity // the paper: "the TAS lock shows big-core-affinity here"
	run("tas", tas)
	run("ticket", Bench1Config(KindTicket, -1))
	shfl := Bench1Config(KindSHFLPB, -1)
	shfl.PBn = 10
	run("shfl-pb10", shfl)
	run("mcs", Bench1Config(KindMCS, -1))

	run("libasl-0", Bench1Config(KindASL, 0))
	run("libasl-25", Bench1Config(KindASL, 25*microsecond))
	asl50 := run("libasl-50", Bench1Config(KindASL, 50*microsecond))
	run("libasl-65", Bench1Config(KindASL, 65*microsecond))
	run("libasl-max", Bench1Config(KindASL, -1))

	// LibASL-OPT: freeze the window LibASL-50 converged to.
	opt := Bench1Config(KindASL, 50*microsecond)
	w := median(asl50.FinalWindows)
	opt.Controller = func() core.Controller { return &core.Static{W: w} }
	run("libasl-opt", opt)
	f.Note("libasl-opt static window = %d ns (median converged window of libasl-50)", w)
	return f
}

// Fig8b reproduces Figure 8b: Bench-1 with the SLO swept from 0 to
// 100 µs. The little-core P99 must hug the y=x SLO line while
// throughput grows and then saturates.
func Fig8b() *harness.Figure {
	f := &harness.Figure{
		ID:     "fig8b",
		Title:  "Bench-1 under variant SLOs",
		XLabel: "slo(us)",
		YLabel: "p99(ns) / throughput(ops/s)",
	}
	big := harness.Series{Name: "big-p99"}
	little := harness.Series{Name: "little-p99"}
	overall := harness.Series{Name: "overall-p99"}
	thr := harness.Series{Name: "throughput"}
	for slo := int64(0); slo <= 100; slo += 10 {
		r := RunMicro(Bench1Config(KindASL, slo*microsecond))
		x := float64(slo)
		big.Add(x, float64(r.Epochs.ByClass(stats.Big).P99()))
		little.Add(x, float64(r.Epochs.ByClass(stats.Little).P99()))
		overall.Add(x, float64(r.Epochs.Overall().P99()))
		thr.Add(x, r.Throughput)
	}
	f.Series = append(f.Series, big, little, overall, thr)
	f.Note("little-p99 should track y=x (in ns: 1000*slo) once the SLO is achievable; throughput non-decreasing")
	return f
}

// Bench3Config is Bench-3 (Fig. 8c): epochs of two very different
// lengths are mixed; long epochs are ~100x longer by inserting more
// NOPs inside the epoch. Critical sections are small so the epoch
// length is dominated by the inner NOP block.
func Bench3Config(kind LockKind, sloNs int64, longRatio float64, seed uint64) MicroConfig {
	cfg := Bench1Config(kind, sloNs)
	cfg.NCS = 1000
	cfg.Seed = seed
	// Long epochs are ~100x the short epoch's execution time, obtained
	// by inserting a large NOP block inside the epoch (§4.1 Bench-3).
	// The length is calibrated so that at ratio 100% the MCS tail
	// latency reaches the 100 µs SLO, the paper's fallback point.
	const longExtra = int64(35_000)
	cfg.EpochExtra = func(now int64, rng prng.Source) int64 {
		if prng.Bool(rng, longRatio) {
			return longExtra
		}
		return 0
	}
	return cfg
}

// Fig8c reproduces Figure 8c: short/long epoch mixes at ratios 0..100%
// with the SLO fixed at 100 µs, comparing LibASL's dynamic window with
// the static-optimal LibASL-OPT and normalising throughput to MCS.
func Fig8c() *harness.Figure {
	f := &harness.Figure{
		ID:     "fig8c",
		Title:  "Bench-3: mixed epoch lengths, SLO 100us",
		XLabel: "% long epochs",
		YLabel: "throughput normalized to MCS / p99(ns)",
	}
	const slo = 100 * 1000 // 100 µs
	asl := harness.Series{Name: "libasl/mcs"}
	opt := harness.Series{Name: "libasl-opt/mcs"}
	overall := harness.Series{Name: "overall-p99"}
	little := harness.Series{Name: "little-p99"}
	for pct := 0; pct <= 100; pct += 10 {
		ratio := float64(pct) / 100
		mcsR := RunMicro(Bench3Config(KindMCS, -1, ratio, 31))
		aslR := RunMicro(Bench3Config(KindASL, slo, ratio, 31))
		// OPT freezes the converged window of the dynamic run.
		optCfg := Bench3Config(KindASL, slo, ratio, 31)
		w := median(aslR.FinalWindows)
		optCfg.Controller = func() core.Controller { return &core.Static{W: w} }
		optR := RunMicro(optCfg)

		x := float64(pct)
		if mcsR.Throughput > 0 {
			asl.Add(x, aslR.Throughput/mcsR.Throughput)
			opt.Add(x, optR.Throughput/mcsR.Throughput)
		}
		overall.Add(x, float64(aslR.Epochs.Overall().P99()))
		little.Add(x, float64(aslR.Epochs.ByClass(stats.Little).P99()))
	}
	f.Series = append(f.Series, asl, opt, overall, little)
	f.Note("paper: LibASL close to OPT (max ~20%% gap) and P99 <= SLO at all ratios; ratio=100%% falls back to FIFO")
	return f
}

// bench2Scale is the Bench-2 phase driver (Fig. 8d): epoch length
// multiplies by 128 during [100ms,200ms), returns to normal, varies
// randomly in [250ms,300ms), and becomes 1024x (SLO-impossible) from
// 300ms on.
func bench2Scale(now int64, rng prng.Source) float64 {
	switch ms := now / millisecond; {
	case ms < 100:
		return 1
	case ms < 200:
		return 128
	case ms < 250:
		return 1
	case ms < 300:
		return 1 + prng.Float64(rng)*127
	default:
		return 1024
	}
}

// Fig8d reproduces Figure 8d: the per-epoch latency trace of a highly
// variable workload under a 100 µs SLO, demonstrating the self-adaptive
// reorder window. It returns 10ms-window P99 aggregates as series plus
// the raw trace in the result for CSV export.
func Fig8d() (*harness.Figure, *stats.TimeSeries) {
	// Calibration: the base epoch is one tiny critical section in a
	// long NOP interval, so the x128 phase saturates the lock yet stays
	// SLO-feasible under reordering (big CS 5.1 µs, little exec 19 µs,
	// both within the 100 µs SLO), while the x1024 phase is infeasible
	// for everyone and must trigger the FIFO fallback.
	cfg := MicroConfig{
		Machine:     m1(),
		Threads:     8,
		Kind:        KindASL,
		NumLocks:    1,
		CS:          []CSSpec{{Lock: 0, Ns: lines(1)}},
		NCS:         12_000,
		SLO:         100 * microsecond,
		Duration:    350 * millisecond,
		Warmup:      0,
		Seed:        82,
		EpochScale:  bench2Scale,
		RecordTrace: true,
	}
	r := RunMicro(cfg)
	f := &harness.Figure{
		ID:     "fig8d",
		Title:  "Bench-2: self-adaptive reorder window under phase changes (SLO 100us)",
		XLabel: "time(ms)",
		YLabel: "p99(ns) per 10ms window",
	}
	all := harness.Series{Name: "window-p99"}
	little := harness.Series{Name: "window-little-p99"}
	for _, w := range r.Trace.Windows(10 * millisecond) {
		x := float64(w.Start) / 1e6
		all.Add(x, float64(w.P99))
		little.Add(x, float64(w.LittleP99))
	}
	f.Series = append(f.Series, all, little)
	f.Note("phases: x128 at 100ms, back at 200ms, random at 250ms, x1024 (SLO-impossible, FIFO fallback) at 300ms")
	return f, r.Trace
}

// fig8eVariants are the locks of Figures 8e/8f (Bench-4): the Fig. 4
// workload with LibASL at SLO 0, a mid SLO and a TAS-equivalent SLO,
// plus MAX. The paper uses 12 µs and 50 µs on the M1; our simulator's
// latency floor differs (MCS P99 ≈ 40 µs at 8 threads), so the SLOs
// are chosen at the same positions relative to the baselines: one
// between MCS and TAS latency, one matching TAS latency.
func fig8eVariants() []Variant {
	return []Variant{
		{Name: "mcs", Apply: func(cfg *MicroConfig) { cfg.Kind = KindMCS }},
		{Name: "tas", Apply: func(cfg *MicroConfig) { cfg.Kind = KindTAS; cfg.TASAff = bigAffinity }},
		{Name: "libasl-0", Apply: func(cfg *MicroConfig) { cfg.Kind = KindASL; cfg.SLO = 0 }},
		{Name: "libasl-90", Apply: func(cfg *MicroConfig) { cfg.Kind = KindASL; cfg.SLO = 90 * microsecond }},
		{Name: "libasl-180", Apply: func(cfg *MicroConfig) { cfg.Kind = KindASL; cfg.SLO = 180 * microsecond }},
		{Name: "libasl-max", Apply: func(cfg *MicroConfig) { cfg.Kind = KindASL; cfg.SLO = -1 }},
	}
}

// Fig8e reproduces Figure 8e: lock throughput scalability of Bench-4.
func Fig8e() *harness.Figure {
	f := scalabilityFigure("fig8e", "Bench-4: throughput scalability (64-line CS)", 64, fig8eVariants())
	f.Note("paper: LibASL-MAX does not drop when little threads join; LibASL-0 tracks MCS")
	return f
}

// Fig8f is Figure 8f: the matching acquire-to-release P99 series (it
// shares Fig8e's runs; the series are produced together there, so this
// simply re-labels). Kept separate so every paper figure has a named
// entry point.
func Fig8f() *harness.Figure {
	f := scalabilityFigure("fig8f", "Bench-4: overall tail latency (acquire to release)", 64, fig8eVariants())
	f.Note("paper: LibASL-12 matches TAS latency with better throughput scaling; LibASL caps latency near its SLO")
	return f
}

// Fig8g reproduces Figure 8g (Bench-5): the throughput speedup of
// LibASL (no SLO, maximum reordering) over each baseline as contention
// falls: threads RMW 2 shared lines with 10^n NOPs between
// acquisitions, n = 0..5. MCS-4 runs the MCS lock on the 4 big cores
// only.
func Fig8g() *harness.Figure {
	f := &harness.Figure{
		ID:     "fig8g",
		Title:  "Bench-5: LibASL speedup across contention levels",
		XLabel: "log10(nops between CS)",
		YLabel: "speedup (thr_libasl/thr_baseline - 1)",
	}
	base := func(n int64) MicroConfig {
		return MicroConfig{
			Machine:  m1(),
			Threads:  8,
			Kind:     KindMCS,
			CS:       []CSSpec{{Lock: 0, Ns: lines(2)}},
			NCS:      nops(pow10(n)),
			SLO:      -1,
			Duration: defaultDuration,
			Warmup:   defaultWarmup,
			Seed:     87,
		}
	}
	baselines := []Variant{
		{Name: "mcs-4", Apply: func(cfg *MicroConfig) { cfg.Kind = KindMCS; cfg.Threads = 4 }},
		{Name: "tas", Apply: func(cfg *MicroConfig) { cfg.Kind = KindTAS }},
		{Name: "ticket", Apply: func(cfg *MicroConfig) { cfg.Kind = KindTicket }},
		{Name: "mcs", Apply: func(cfg *MicroConfig) { cfg.Kind = KindMCS }},
		{Name: "pthread", Apply: func(cfg *MicroConfig) { cfg.Kind = KindPthread }},
		{Name: "shfl-pb10", Apply: func(cfg *MicroConfig) { cfg.Kind = KindSHFLPB; cfg.PBn = 10 }},
	}
	series := make([]harness.Series, len(baselines))
	for i, b := range baselines {
		series[i] = harness.Series{Name: b.Name}
	}
	for n := int64(0); n <= 5; n++ {
		aslCfg := base(n)
		aslCfg.Kind = KindASL
		aslThr := RunMicro(aslCfg).Throughput
		for i, b := range baselines {
			cfg := base(n)
			b.Apply(&cfg)
			thr := RunMicro(cfg).Throughput
			if thr > 0 {
				series[i].Add(float64(n), aslThr/thr-1)
			}
		}
	}
	f.Series = append(f.Series, series...)
	f.Note("paper: largest speedups at n=0; little cores help at low contention (libasl beats mcs-4); speedups shrink toward 0 as contention vanishes")
	return f
}

func pow10(n int64) int64 {
	p := int64(1)
	for i := int64(0); i < n; i++ {
		p *= 10
	}
	return p
}

// OversubConfig is Bench-6 (Figs. 8h/8i): Bench-1 with two threads per
// core. Blocking locks only: pthread (barging futex mutex), MCS-STP and
// the blocking LibASL (nanosleep standby over the pthread-style lock —
// the paper's exact substitution).
func OversubConfig(kind LockKind, sloNs int64) MicroConfig {
	cfg := Bench1Config(kind, sloNs)
	cfg.Threads = 16
	cfg.ThreadsPerCore = 2
	cfg.Sleeping = true
	cfg.Duration = 2_000 * millisecond
	cfg.Warmup = 400 * millisecond
	cfg.Seed = 86
	// Bench-6 runs Bench-1 with its original (longer) NOP interval:
	// inter-acquisition gaps must exceed the futex wake-up latency or
	// sleeping waiters can never win a barging race at all. Critical
	// sections are doubled so the big-core demand alone saturates the
	// locks — the regime where the reorder window, and therefore the
	// SLO, actually governs little-core latency.
	cfg.NCS = nops(16200)
	for i := range cfg.CS {
		cfg.CS[i].Ns *= 2
	}
	return cfg
}

// Fig8h reproduces Figure 8h: blocking locks under core
// over-subscription.
func Fig8h() *harness.Figure {
	f := &harness.Figure{ID: "fig8h", Title: "Bench-6: over-subscription (2 threads/core), blocking locks"}
	run := func(name string, cfg MicroConfig) {
		r := RunMicro(cfg)
		f.Rows = append(f.Rows, r.Summary(name))
	}
	run("pthread", OversubConfig(KindPthread, -1))
	run("mcs-stp", OversubConfig(KindMCSSTP, -1))
	run("libasl-0", OversubConfig(KindASL, 0))
	run("libasl-3", OversubConfig(KindASL, 3*millisecond))
	run("libasl-8", OversubConfig(KindASL, 8*millisecond))
	run("libasl-max", OversubConfig(KindASL, -1))
	f.Note("paper: MCS-STP collapses (wake-up latency on the FIFO critical path); blocking LibASL beats pthread by up to 80%% while holding the SLO")
	return f
}

// Fig8i reproduces Figure 8i: the SLO sweep under over-subscription.
func Fig8i() *harness.Figure {
	f := &harness.Figure{
		ID:     "fig8i",
		Title:  "Bench-6: variant SLOs under over-subscription",
		XLabel: "slo(ms)",
		YLabel: "p99(ns) / throughput(ops/s)",
	}
	big := harness.Series{Name: "big-p99"}
	little := harness.Series{Name: "little-p99"}
	overall := harness.Series{Name: "overall-p99"}
	thr := harness.Series{Name: "throughput"}
	for slo := int64(0); slo <= 10; slo++ {
		r := RunMicro(OversubConfig(KindASL, slo*millisecond))
		x := float64(slo)
		big.Add(x, float64(r.Epochs.ByClass(stats.Big).P99()))
		little.Add(x, float64(r.Epochs.ByClass(stats.Little).P99()))
		overall.Add(x, float64(r.Epochs.Overall().P99()))
		thr.Add(x, r.Throughput)
	}
	f.Series = append(f.Series, big, little, overall, thr)
	f.Note("little-p99 tracks the SLO line; throughput grows with looser SLOs")
	return f
}
