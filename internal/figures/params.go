package figures

import (
	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/simlock"
)

// Calibration constants for the simulated M1 (see EXPERIMENTS.md for
// the rationale). All durations are big-core nanoseconds; little-core
// durations follow from the machine's class factors.
const (
	// LineRMWNs is the cost of read-modify-writing one contended
	// shared cache line on a big core (the line bounces between cores,
	// so this is dominated by an L2 transfer).
	LineRMWNs = 40
	// NopNs is the cost of one NOP on a big core, times 100 (fixed
	// point so interval arithmetic stays integral): M1 big cores retire
	// NOPs several per cycle, so a NOP is a fraction of a nanosecond.
	NopNs100 = 35
	// LittleCSFactor is how much longer memory-bound critical sections
	// take on little cores. The paper measures big cores 3.75x faster
	// on Sysbench (memory-heavy); we reuse that ratio for CS work.
	LittleCSFactor = 3.75
	// LittleNCSFactor matches the paper's 1.8x NOP-execution gap.
	LittleNCSFactor = 1.8
)

// nops converts a NOP count to big-core nanoseconds.
func nops(n int64) int64 { return n * NopNs100 / 100 }

// lines converts a shared-cache-line count to big-core nanoseconds of
// critical-section work.
func lines(n int64) int64 { return n * LineRMWNs }

// m1 returns the simulated machine used by all micro-benchmarks:
// 4 big + 4 little cores with the calibrated class factors.
func m1() amp.Config {
	return amp.Config{
		Bigs:            4,
		Littles:         4,
		LittleCSFactor:  LittleCSFactor,
		LittleNCSFactor: LittleNCSFactor,
	}
}

// Affinity regimes for the TAS lock. On the M1 the direction depends on
// contention spacing (paper §2.2 footnote 1); the factors are chosen so
// the simulated TAS reproduces the paper's measured gaps (≈35% below
// MCS throughput in the little-affinity regime of Fig. 1, ≈32% above
// MCS in the big-affinity regime of Fig. 4).
var (
	littleAffinity = simlock.Affinity{Favoured: core.Little, Factor: 4}
	bigAffinity    = simlock.Affinity{Favoured: core.Big, Factor: 5}
)

// Default run lengths. Experiments run long enough for thousands of
// epochs per thread; warmup covers feedback convergence.
const (
	defaultDuration = int64(150_000_000) // 150 ms virtual
	defaultWarmup   = int64(30_000_000)  // 30 ms virtual
)
