package figures

import (
	"repro/internal/harness"
)

// collapseConfig is the shared setup of Figs. 1 and 4: every thread
// repeatedly acquires one lock, read-modify-writes csLines shared
// cache lines, releases, and executes a fixed NOP interval. Threads
// 1..4 land on big cores, 5..8 on little cores.
func collapseConfig(threads int, csLines int64, kind LockKind) MicroConfig {
	return CollapseConfig(threads, csLines, kind, false)
}

// CollapseConfig is the exported form used by the root benchmarks: the
// Fig. 1/4 workload with the TAS affinity regime selected explicitly
// (bigAffinity=false selects the little-affinity regime of Fig. 1).
func CollapseConfig(threads int, csLines int64, kind LockKind, tasBigAffinity bool) MicroConfig {
	cfg := baseCollapseConfig(threads, csLines, kind)
	if kind == KindTAS {
		if tasBigAffinity {
			cfg.TASAff = bigAffinity
		} else {
			cfg.TASAff = littleAffinity
		}
	}
	return cfg
}

func baseCollapseConfig(threads int, csLines int64, kind LockKind) MicroConfig {
	return MicroConfig{
		Machine:  m1(),
		Threads:  threads,
		Kind:     kind,
		CS:       []CSSpec{{Lock: 0, Ns: lines(csLines)}},
		NCS:      500, // calibrated so the lock saturates near 4 big threads
		SLO:      -1,  // plain locks, no epochs
		Duration: defaultDuration,
		Warmup:   defaultWarmup,
		Seed:     1,
	}
}

// scalabilityFigure sweeps thread count 1..8 for each variant and
// emits throughput and P99 acquire→release latency series.
func scalabilityFigure(id, title string, csLines int64, variants []Variant) *harness.Figure {
	f := &harness.Figure{
		ID:     id,
		Title:  title,
		XLabel: "threads",
		YLabel: "throughput(ops/s) / p99(ns)",
	}
	for _, v := range variants {
		thr := harness.Series{Name: v.Name + "/throughput"}
		lat := harness.Series{Name: v.Name + "/p99"}
		for n := 1; n <= 8; n++ {
			cfg := collapseConfig(n, csLines, KindMCS)
			v.Apply(&cfg)
			cfg.Threads = n
			r := RunMicro(cfg)
			thr.Add(float64(n), r.Throughput)
			lat.Add(float64(n), float64(r.LockSection.Overall().P99()))
		}
		f.Series = append(f.Series, thr, lat)
	}
	return f
}

// Fig1 reproduces Figure 1: on a 4+4 machine, threads RMW 4 shared
// cache lines under one lock. The MCS lock's throughput collapses once
// little cores join (1a); the TAS lock, in its little-core-affinity
// regime, collapses in both throughput and latency (1b).
func Fig1() *harness.Figure {
	f := scalabilityFigure("fig1", "Existing locks collapse on AMP (TAS little-affinity)", 4, []Variant{
		{Name: "mcs", Apply: func(cfg *MicroConfig) { cfg.Kind = KindMCS }},
		{Name: "tas", Apply: func(cfg *MicroConfig) {
			cfg.Kind = KindTAS
			cfg.TASAff = littleAffinity
		}},
	})
	f.Note("paper: MCS throughput drops >50%% from 4 to 8 threads; TAS ends ~35%% below MCS with ~6x its P99")
	return f
}

// Fig4 reproduces Figure 4: the same benchmark with 64-line critical
// sections, where the TAS lock shows big-core affinity — higher
// throughput than MCS but still a latency collapse.
func Fig4() *harness.Figure {
	f := scalabilityFigure("fig4", "TAS with big-core affinity: throughput above MCS, latency collapse", 64, []Variant{
		{Name: "mcs", Apply: func(cfg *MicroConfig) { cfg.Kind = KindMCS }},
		{Name: "tas", Apply: func(cfg *MicroConfig) {
			cfg.Kind = KindTAS
			cfg.TASAff = bigAffinity
		}},
	})
	f.Note("paper: TAS ~32%% above MCS throughput at 8 threads, with a P99 collapse for little cores")
	return f
}
