package figures

import (
	"fmt"

	"repro/internal/amp"
	"repro/internal/harness"
	"repro/internal/stats"
)

// This file reproduces the paper's closing cross-platform claim
// (§4.2): "Besides M1, we also evaluated LibASL in Hikey970 (ARM
// big.LITTLE) and a simulated Intel AMP (through per-core DVFS) ...
// LibASL brings 34~94% (Intel) and 37~87% (Hikey970) throughput
// improvement to the MCS lock while precisely maintaining the SLO in
// the same database benchmarks."

// HikeyConfig models the Hikey970 (4x Cortex-A73 @2.36GHz + 4x
// Cortex-A53 @1.8GHz). The A53 is in-order and much weaker on
// memory-bound work; the class factors are set from the published
// Geekbench-style gap.
func HikeyConfig() amp.Config {
	return amp.Config{
		Bigs:            4,
		Littles:         4,
		LittleCSFactor:  2.6,
		LittleNCSFactor: 1.6,
	}
}

// IntelDVFSConfig models the paper's simulated Intel AMP: identical
// cores with four pinned to the lowest OPP via per-core DVFS. The
// frequency ratio applies to compute and (via the uncore) partially to
// memory, so both factors track the clock ratio.
func IntelDVFSConfig() amp.Config {
	return amp.Config{
		Bigs:            4,
		Littles:         4,
		LittleCSFactor:  3.2,
		LittleNCSFactor: 3.0,
	}
}

// M1Config exposes the default machine for symmetry.
func M1Config() amp.Config { return m1() }

// PlatformRow is one database's MCS-vs-LibASL result on one platform.
type PlatformRow struct {
	Platform    string
	DB          string
	MCS         float64 // ops/s
	ASL         float64 // ops/s at the database's published SLO
	Improvement float64 // ASL/MCS - 1
	LittleP99   int64   // ns, under LibASL
	SLO         int64   // ns
}

// PlatformStudy runs every database template on every platform and
// reports the LibASL-over-MCS improvement at each database's published
// SLO, mirroring the paper's 34–94% / 37–87% summary.
func PlatformStudy() ([]PlatformRow, *harness.Figure) {
	platforms := []struct {
		name string
		cfg  amp.Config
	}{
		{"m1", M1Config()},
		{"hikey970", HikeyConfig()},
		{"intel-dvfs", IntelDVFSConfig()},
	}
	var rows []PlatformRow
	f := &harness.Figure{
		ID:     "platforms",
		Title:  "LibASL improvement over MCS across AMP platforms (paper §4.2)",
		XLabel: "database",
		YLabel: "throughput improvement (ASL/MCS - 1)",
	}
	for _, p := range platforms {
		series := harness.Series{Name: p.name}
		for i, tpl := range AllDBTemplates() {
			slo := tpl.CDFSLO
			mcsCfg := DBConfig(tpl, KindMCS, -1, 91)
			mcsCfg.Machine = p.cfg
			aslCfg := DBConfig(tpl, KindASL, slo, 91)
			aslCfg.Machine = p.cfg
			mcs := RunMicro(mcsCfg)
			asl := RunMicro(aslCfg)
			imp := 0.0
			if mcs.Throughput > 0 {
				imp = asl.Throughput/mcs.Throughput - 1
			}
			rows = append(rows, PlatformRow{
				Platform:    p.name,
				DB:          tpl.Name,
				MCS:         mcs.Throughput,
				ASL:         asl.Throughput,
				Improvement: imp,
				LittleP99:   asl.Epochs.ByClass(stats.Little).P99(),
				SLO:         slo,
			})
			series.Add(float64(i), imp)
		}
		f.Series = append(f.Series, series)
	}
	f.Note("paper: 34~94%% improvement on the Intel AMP, 37~87%% on Hikey970, SLO precisely maintained")
	return rows, f
}

// FormatPlatformRows renders the study as an aligned table.
func FormatPlatformRows(rows []PlatformRow) string {
	out := fmt.Sprintf("%-12s %-10s %12s %12s %8s %12s %12s\n",
		"platform", "db", "mcs(ops/s)", "asl(ops/s)", "imp%", "littleP99", "slo")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %-10s %12.0f %12.0f %7.0f%% %12d %12d\n",
			r.Platform, r.DB, r.MCS, r.ASL, r.Improvement*100, r.LittleP99, r.SLO)
	}
	return out
}
