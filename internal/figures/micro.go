// Package figures reproduces every figure of the paper's evaluation
// (§4) on the discrete-event AMP simulator, plus real-engine variants
// where meaningful. Each FigXX function returns a harness.Figure whose
// rows/series correspond one-to-one to the paper's plots; integration
// tests assert the qualitative shape targets listed in DESIGN.md §4.
package figures

import (
	"fmt"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/prng"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/stats"
)

// LockKind selects the lock under test in a micro-benchmark run.
type LockKind int

const (
	// KindPthread is the barging blocking mutex (pthread stand-in).
	KindPthread LockKind = iota
	// KindTAS is the test-and-set spinlock with configurable affinity.
	KindTAS
	// KindTicket is the ticket lock.
	KindTicket
	// KindMCS is the MCS queue lock.
	KindMCS
	// KindMCSSTP is spin-then-park MCS (blocking FIFO).
	KindMCSSTP
	// KindSHFLPB is ShflLock with the proportional static policy.
	KindSHFLPB
	// KindASL is LibASL (reorderable lock + SLO feedback).
	KindASL
)

// String names the kind as in the paper's legends.
func (k LockKind) String() string {
	switch k {
	case KindPthread:
		return "pthread"
	case KindTAS:
		return "tas"
	case KindTicket:
		return "ticket"
	case KindMCS:
		return "mcs"
	case KindMCSSTP:
		return "mcs-stp"
	case KindSHFLPB:
		return "shfl-pb"
	case KindASL:
		return "libasl"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// CSSpec is one critical section of the benchmark epoch: which lock
// protects it and its length in big-core nanoseconds.
type CSSpec struct {
	Lock int
	Ns   int64
}

// MicroConfig fully describes one simulator micro-benchmark run. The
// zero value is not runnable; see the Fig* constructors for the
// parameter sets mirroring the paper's benchmarks.
type MicroConfig struct {
	Machine        amp.Config
	Threads        int // total threads; bound to big cores first (paper's setup)
	ThreadsPerCore int // 1 normally; 2 for Bench-6 over-subscription
	Kind           LockKind
	TASAff         simlock.Affinity       // affinity regime for KindTAS
	PBn            int                    // proportion for KindSHFLPB (0 = 10)
	NumLocks       int                    // distinct locks (Bench-1 uses 2); 0 = 1
	CS             []CSSpec               // the epoch's critical sections
	NCS            int64                  // non-critical gap between epochs (big-core ns)
	SLO            int64                  // epoch SLO in ns; <0 = no epoch (LibASL-MAX / plain locks)
	Sleeping       bool                   // blocking LibASL over the barging mutex (Bench-6)
	ASLBaseTicket  bool                   // ablation: reorderable lock over ticket instead of MCS
	ASLFixedPoll   bool                   // ablation: fixed-interval standby polling
	Controller     func() core.Controller // override (LibASL-OPT, ablations); nil = paper AIMD
	Duration       int64                  // virtual run length, ns
	Warmup         int64                  // samples before this instant are dropped
	Seed           uint64
	// EpochOps, if set, generates the epoch's sections dynamically (the
	// database workloads draw a random operation per epoch). A section
	// with Lock < 0 is executed without any lock (MVCC reads). When
	// nil, the static CS list is used for every epoch.
	EpochOps func(now int64, rng prng.Source) []CSSpec
	// EpochScale, if set, scales every CS duration of an epoch started
	// at virtual time now (Bench-2's phase changes, Bench-3's mixes).
	EpochScale func(now int64, rng prng.Source) float64
	// EpochExtra, if set, adds inner non-critical work (ns) to each
	// epoch (Bench-3's "100x longer by inserting more NOPs").
	EpochExtra func(now int64, rng prng.Source) int64
	// RecordTrace enables the per-epoch time series (Bench-2 / Fig 8d).
	RecordTrace bool
}

// MicroResult is what one run produces.
type MicroResult struct {
	// Epochs aggregates per-epoch latency by class; throughput counts
	// completed epochs after warmup.
	Epochs *stats.ClassedRecorder
	// LockSection aggregates acquire→release latency by class
	// (Figs. 1b, 4b, 8f measure this).
	LockSection *stats.ClassedRecorder
	// Throughput is completed epochs per second of virtual time.
	Throughput float64
	// Trace is the per-epoch time series when RecordTrace is set.
	Trace *stats.TimeSeries
	// FinalWindows holds each little thread's final reorder window
	// (diagnostics for feedback convergence tests).
	FinalWindows []int64
}

// Summary converts the run into a named summary row (epoch view).
func (r *MicroResult) Summary(name string) stats.Summary {
	s := r.Epochs.Summarize(name, 0)
	s.Throughput = r.Throughput
	return s
}

// LockSummary converts the run into a summary row of the
// acquire→release view used by Figs. 1, 4, 8e, 8f.
func (r *MicroResult) LockSummary(name string) stats.Summary {
	s := r.LockSection.Summarize(name, 0)
	s.Throughput = r.Throughput
	return s
}

// acquirer abstracts class-aware lock acquisition over the simulated
// locks so the benchmark loop is lock-agnostic.
type acquirer interface {
	acquire(t *amp.Thread, w *core.Worker)
	release(t *amp.Thread, w *core.Worker)
}

type plainAcq struct{ l simlock.Lock }

func (a plainAcq) acquire(t *amp.Thread, w *core.Worker) { a.l.Lock(t) }
func (a plainAcq) release(t *amp.Thread, w *core.Worker) { a.l.Unlock(t) }

type aslAcq struct{ r *simlock.SimReorderable }

func (a aslAcq) acquire(t *amp.Thread, w *core.Worker) {
	if w.Class() == core.Big {
		a.r.LockImmediately(t)
		return
	}
	a.r.LockReorder(t, w.ReorderWindow())
}
func (a aslAcq) release(t *amp.Thread, w *core.Worker) { a.r.Unlock(t) }

// buildLocks constructs the per-run lock instances.
func buildLocks(cfg *MicroConfig) []acquirer {
	n := cfg.NumLocks
	if n <= 0 {
		n = 1
	}
	out := make([]acquirer, n)
	for i := 0; i < n; i++ {
		switch cfg.Kind {
		case KindPthread:
			out[i] = plainAcq{&simlock.SimBarging{}}
		case KindTAS:
			out[i] = plainAcq{&simlock.SimTAS{Aff: cfg.TASAff, Seed: cfg.Seed + uint64(i)}}
		case KindTicket:
			out[i] = plainAcq{&simlock.SimTicket{}}
		case KindMCS:
			out[i] = plainAcq{&simlock.SimMCS{}}
		case KindMCSSTP:
			out[i] = plainAcq{&simlock.SimMCSPark{}}
		case KindSHFLPB:
			out[i] = plainAcq{&simlock.SimProportional{N: cfg.PBn}}
		case KindASL:
			var fifo simlock.FIFO
			switch {
			case cfg.Sleeping:
				fifo = &simlock.SimBarging{}
			case cfg.ASLBaseTicket:
				fifo = &simlock.SimTicket{}
			default:
				fifo = &simlock.SimMCS{}
			}
			out[i] = aslAcq{&simlock.SimReorderable{
				Fifo:          fifo,
				Sleeping:      cfg.Sleeping,
				FixedInterval: cfg.ASLFixedPoll,
			}}
		default:
			panic("figures: unknown lock kind")
		}
	}
	return out
}

// RunMicro executes one micro-benchmark configuration on the simulator
// and collects its measurements.
func RunMicro(cfg MicroConfig) *MicroResult {
	if cfg.Threads <= 0 {
		panic("figures: Threads must be positive")
	}
	if cfg.ThreadsPerCore <= 0 {
		cfg.ThreadsPerCore = 1
	}
	if len(cfg.CS) == 0 && cfg.EpochOps == nil {
		panic("figures: benchmark needs at least one critical section")
	}
	k := sim.NewKernel()
	m := amp.NewMachine(k, cfg.Machine)
	locks := buildLocks(&cfg)

	res := &MicroResult{
		Epochs:      stats.NewClassedRecorder(),
		LockSection: stats.NewClassedRecorder(),
	}
	if cfg.RecordTrace {
		res.Trace = stats.NewTimeSeries(1 << 16)
	}
	totalCores := cfg.Machine.Bigs + cfg.Machine.Littles
	var epochsDone uint64
	littleWorkers := []*core.Worker{}

	for i := 0; i < cfg.Threads; i++ {
		// The paper binds the first threads to distinct big cores, the
		// rest to distinct little cores; over-subscription wraps around.
		coreID := i % totalCores
		tid := i
		var w *core.Worker
		spawn := func(t *amp.Thread) {
			wc := core.WorkerConfig{Class: t.Class(), Clock: t.Clock()}
			if cfg.Controller != nil {
				wc.NewController = cfg.Controller
			}
			w = core.NewWorker(wc)
			if t.Class() == core.Little {
				littleWorkers = append(littleWorkers, w)
			}
			rng := prng.NewXoshiro256(cfg.Seed ^ (0x9e3779b9*uint64(tid) + 1))
			runThread(&cfg, t, w, locks, rng, res, &epochsDone)
		}
		// Stagger starts a little so identical threads do not phase-lock.
		m.NewThread(fmt.Sprintf("t%d", i), coreID, int64(i)*137, spawn)
	}

	k.Run(cfg.Duration)
	k.Shutdown()

	measured := cfg.Duration - cfg.Warmup
	if measured > 0 {
		res.Throughput = float64(epochsDone) / (float64(measured) / 1e9)
	}
	for _, w := range littleWorkers {
		if cfg.SLO >= 0 {
			res.FinalWindows = append(res.FinalWindows, w.EpochWindow(0))
		}
	}
	return res
}

// runThread is the benchmark loop of one simulated thread: epochs of
// critical sections separated by non-critical gaps, forever (the
// kernel's time limit ends the run).
func runThread(cfg *MicroConfig, t *amp.Thread, w *core.Worker, locks []acquirer, rng prng.Source, res *MicroResult, epochsDone *uint64) {
	for {
		epochStart := t.Now()
		if cfg.SLO >= 0 {
			w.EpochStart(0)
		}
		scale := 1.0
		if cfg.EpochScale != nil {
			scale = cfg.EpochScale(epochStart, rng)
		}
		sections := cfg.CS
		if cfg.EpochOps != nil {
			sections = cfg.EpochOps(epochStart, rng)
		}
		for _, cs := range sections {
			if cs.Lock < 0 {
				// Unlocked work inside the epoch (e.g. an MVCC read).
				t.Compute(int64(float64(cs.Ns)*scale), amp.CS)
				continue
			}
			l := locks[cs.Lock%len(locks)]
			acqStart := t.Now()
			l.acquire(t, w)
			t.Compute(int64(float64(cs.Ns)*scale), amp.CS)
			l.release(t, w)
			if acqStart >= cfg.Warmup {
				res.LockSection.Record(t.Class(), t.Now()-acqStart)
			}
		}
		if cfg.EpochExtra != nil {
			if extra := cfg.EpochExtra(epochStart, rng); extra > 0 {
				t.Compute(extra, amp.NCS)
			}
		}
		var lat int64
		if cfg.SLO >= 0 {
			lat = w.EpochEnd(0, cfg.SLO)
		} else {
			lat = t.Now() - epochStart
		}
		if epochStart >= cfg.Warmup {
			res.Epochs.Record(t.Class(), lat)
			*epochsDone++
			if res.Trace != nil {
				res.Trace.Add(t.Now(), lat, t.Class())
			}
		}
		if cfg.NCS > 0 {
			t.Compute(cfg.NCS, amp.NCS)
		}
	}
}

// Compare runs the same workload once per lock configuration and
// collects summary rows; it is the engine behind all of the paper's
// bar-comparison figures.
func Compare(base MicroConfig, variants []Variant, lockView bool) *harness.Figure {
	f := &harness.Figure{}
	for _, v := range variants {
		cfg := base
		v.Apply(&cfg)
		r := RunMicro(cfg)
		if lockView {
			f.Rows = append(f.Rows, r.LockSummary(v.Name))
		} else {
			f.Rows = append(f.Rows, r.Summary(v.Name))
		}
	}
	return f
}

// Variant is one named configuration mutation in a comparison.
type Variant struct {
	Name  string
	Apply func(cfg *MicroConfig)
}
