package figures

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/prng"
	"repro/internal/stats"
)

// This file reproduces the database evaluation (Figs. 9 and 10) on the
// simulator. Each database is modelled by its lock topology from
// Table 1 and per-operation critical-section costs; the same real lock
// topologies are implemented executably in internal/dbs (run by
// cmd/dbbench), while these simulator templates regenerate the paper's
// figure shapes on an AMP-faithful substrate.

// DBTemplate describes one database's locking behaviour per epoch
// (request): the number of distinct locks and a generator that draws
// one operation's lock sections.
type DBTemplate struct {
	Name     string
	NumLocks int
	// Ops draws one request's sections. Lock -1 = unlocked work.
	Ops func(rng prng.Source) []CSSpec
	// NCS is the inter-request gap in big-core ns.
	NCS int64
	// SLOs are the figure's comparison SLO settings (ns), smallest
	// first; the bar figure runs libasl at each plus 0 and MAX.
	SLOs []int64
	// SweepMax bounds the variant-SLOs sweep (ns).
	SweepMax int64
	// CDFSLO is the SLO of the published CDF plot (ns).
	CDFSLO int64
	// TASBigAffinity selects the TAS regime the paper observed for
	// this database (§4.2: little-affinity in SQLite and Kyoto's case,
	// big-affinity in upscaledb's).
	TASBigAffinity bool
}

// op builds a section list helper.
func secs(ss ...CSSpec) []CSSpec { return ss }

// KyotoTemplate models the Kyoto-Cabinet-like engine: a brief method
// lock (lock 0) then one of 16 slot locks (locks 1..16) for the
// operation; 50% put / 50% get with gets cheaper.
func KyotoTemplate() DBTemplate {
	return DBTemplate{
		Name:     "kyoto",
		NumLocks: 5,
		Ops: func(rng prng.Source) []CSSpec {
			// Kyoto divides its bucket array into a handful of
			// mutex-guarded regions; skewed keys keep them hot.
			slot := 1 + prng.Intn(rng, 4)
			if rng.Uint64()&1 == 0 { // put
				return secs(CSSpec{Lock: 0, Ns: 100}, CSSpec{Lock: slot, Ns: lines(30)})
			}
			return secs(CSSpec{Lock: 0, Ns: 100}, CSSpec{Lock: slot, Ns: lines(15)})
		},
		NCS:            400,
		SLOs:           []int64{40 * microsecond, 70 * microsecond},
		SweepMax:       200 * microsecond,
		CDFSLO:         70 * microsecond,
		TASBigAffinity: false, // the paper: TAS shows little-affinity in Kyoto
	}
}

// UpscaleTemplate models the upscaledb-like engine: pool lock (1)
// around cursor checkout, one big global lock (0) across the tree op,
// pool lock again.
func UpscaleTemplate() DBTemplate {
	return DBTemplate{
		Name:     "upscaledb",
		NumLocks: 2,
		Ops: func(rng prng.Source) []CSSpec {
			var op CSSpec
			if rng.Uint64()&1 == 0 { // put
				op = CSSpec{Lock: 0, Ns: lines(30)}
			} else {
				op = CSSpec{Lock: 0, Ns: lines(15)}
			}
			return secs(CSSpec{Lock: 1, Ns: 50}, op, CSSpec{Lock: 1, Ns: 50})
		},
		NCS:            1200,
		SLOs:           []int64{100 * microsecond, 180 * microsecond},
		SweepMax:       400 * microsecond,
		CDFSLO:         140 * microsecond,
		TASBigAffinity: true, // the paper: TAS shows big-affinity in upscaledb
	}
}

// LMDBTemplate models the LMDB-like engine: writes hold the writer
// lock (0); reads take the metadata lock (1) briefly, read the
// snapshot without locks, then deregister under the metadata lock.
func LMDBTemplate() DBTemplate {
	return DBTemplate{
		Name:     "lmdb",
		NumLocks: 2,
		Ops: func(rng prng.Source) []CSSpec {
			if rng.Uint64()&1 == 0 { // put: COW insert path copy
				return secs(CSSpec{Lock: 0, Ns: lines(40)})
			}
			return secs(
				CSSpec{Lock: 1, Ns: 100},
				CSSpec{Lock: -1, Ns: lines(8)}, // lock-free MVCC read
				CSSpec{Lock: 1, Ns: 60},
			)
		},
		NCS:            1500,
		SLOs:           []int64{400 * microsecond, 600 * microsecond},
		SweepMax:       2000 * microsecond,
		CDFSLO:         1900 * microsecond,
		TASBigAffinity: true,
	}
}

// LevelDBTemplate models the LevelDB-like randomread: the global
// metadata lock (0) to ref a version, a lock-free read, the lock again
// to unref.
func LevelDBTemplate() DBTemplate {
	return DBTemplate{
		Name:     "leveldb",
		NumLocks: 1,
		Ops: func(rng prng.Source) []CSSpec {
			return secs(
				CSSpec{Lock: 0, Ns: lines(5)},
				CSSpec{Lock: -1, Ns: lines(9)},
				CSSpec{Lock: 0, Ns: lines(2)},
			)
		},
		NCS:            900,
		SLOs:           []int64{15 * microsecond, 30 * microsecond},
		SweepMax:       100 * microsecond,
		CDFSLO:         100 * microsecond,
		TASBigAffinity: true,
	}
}

// SQLiteTemplate models the SQLite-like engine: a brief metadata lock
// (1), then the state-machine lock (0) across the transaction. One in
// 1000 requests is an extremely long full-table scan.
func SQLiteTemplate() DBTemplate {
	count := 0
	return DBTemplate{
		Name:     "sqlite",
		NumLocks: 2,
		Ops: func(rng prng.Source) []CSSpec {
			count++
			if count%1000 == 0 { // occasional full scan of a 100k table
				return secs(CSSpec{Lock: 1, Ns: 40}, CSSpec{Lock: 0, Ns: lines(2000)})
			}
			switch prng.Intn(rng, 3) {
			case 0: // insert: SHARED→RESERVED→EXCLUSIVE escalation
				return secs(CSSpec{Lock: 1, Ns: 40}, CSSpec{Lock: 0, Ns: lines(45)})
			case 1: // simple point select
				return secs(CSSpec{Lock: 1, Ns: 40}, CSSpec{Lock: 0, Ns: lines(10)})
			default: // complex range select with non-indexed filter
				return secs(CSSpec{Lock: 1, Ns: 40}, CSSpec{Lock: 0, Ns: lines(25)})
			}
		},
		NCS:            1500,
		SLOs:           []int64{2 * millisecond, 4 * millisecond},
		SweepMax:       10 * millisecond,
		CDFSLO:         4 * millisecond,
		TASBigAffinity: false, // the paper: TAS little-affinity in SQLite
	}
}

// DBConfig builds the simulator run config for a template.
func DBConfig(t DBTemplate, kind LockKind, slo int64, seed uint64) MicroConfig {
	return MicroConfig{
		Machine:  m1(),
		Threads:  8,
		Kind:     kind,
		NumLocks: t.NumLocks,
		EpochOps: func(now int64, rng prng.Source) []CSSpec { return t.Ops(rng) },
		NCS:      t.NCS,
		SLO:      slo,
		Duration: defaultDuration,
		Warmup:   defaultWarmup,
		Seed:     seed,
	}
}

// DBComparison reproduces the bar-comparison figure (9a/9d/9g/10a/10d)
// for one database template.
func DBComparison(t DBTemplate) *harness.Figure { return DBComparisonScaled(t, 1) }

// DBComparisonScaled is DBComparison with the virtual duration divided
// by scale (scale <= 1 runs the full figure). The -short smoke path
// uses it: the figure's qualitative orderings are already stable at a
// fraction of the published duration, since the simulator's virtual
// time makes the reduced run deterministic too.
func DBComparisonScaled(t DBTemplate, scale int64) *harness.Figure {
	if scale < 1 {
		scale = 1
	}
	f := &harness.Figure{ID: t.Name + "-cmp", Title: t.Name + ": lock comparison"}
	aff := littleAffinity
	if t.TASBigAffinity {
		aff = bigAffinity
	}
	run := func(name string, cfg MicroConfig) {
		cfg.Duration /= scale
		cfg.Warmup /= scale
		r := RunMicro(cfg)
		f.Rows = append(f.Rows, r.Summary(name))
	}
	run("pthread", DBConfig(t, KindPthread, -1, 91))
	tas := DBConfig(t, KindTAS, -1, 91)
	tas.TASAff = aff
	run("tas", tas)
	run("ticket", DBConfig(t, KindTicket, -1, 91))
	shfl := DBConfig(t, KindSHFLPB, -1, 91)
	shfl.PBn = 10
	run("shfl-pb10", shfl)
	run("mcs", DBConfig(t, KindMCS, -1, 91))
	run("libasl-0", DBConfig(t, KindASL, 0, 91))
	for _, slo := range t.SLOs {
		run(fmt.Sprintf("libasl-%dus", slo/microsecond), DBConfig(t, KindASL, slo, 91))
	}
	run("libasl-max", DBConfig(t, KindASL, -1, 91))
	return f
}

// DBSLOSweep reproduces the variant-SLOs figure (9b/9e/9h/10b/10e).
func DBSLOSweep(t DBTemplate, points int) *harness.Figure {
	f := &harness.Figure{
		ID:     t.Name + "-slos",
		Title:  t.Name + ": variant SLOs",
		XLabel: "slo(us)",
		YLabel: "p99(ns) / throughput(ops/s)",
	}
	big := harness.Series{Name: "big-p99"}
	little := harness.Series{Name: "little-p99"}
	overall := harness.Series{Name: "overall-p99"}
	thr := harness.Series{Name: "throughput"}
	if points < 2 {
		points = 11
	}
	for i := 0; i < points; i++ {
		slo := t.SweepMax * int64(i) / int64(points-1)
		r := RunMicro(DBConfig(t, KindASL, slo, 91))
		x := float64(slo) / 1000
		big.Add(x, float64(r.Epochs.ByClass(stats.Big).P99()))
		little.Add(x, float64(r.Epochs.ByClass(stats.Little).P99()))
		overall.Add(x, float64(r.Epochs.Overall().P99()))
		thr.Add(x, r.Throughput)
	}
	f.Series = append(f.Series, big, little, overall, thr)
	return f
}

// DBCDF reproduces the latency-CDF figure (9c/9f/9i/10c/10f) at the
// template's published SLO.
func DBCDF(t DBTemplate) *harness.Figure { return DBCDFScaled(t, 1) }

// DBCDFScaled is DBCDF with the virtual duration divided by scale
// (-short smoke path; see DBComparisonScaled).
func DBCDFScaled(t DBTemplate, scale int64) *harness.Figure {
	if scale < 1 {
		scale = 1
	}
	cfg := DBConfig(t, KindASL, t.CDFSLO, 91)
	cfg.Duration /= scale
	cfg.Warmup /= scale
	r := RunMicro(cfg)
	return harness.CDFFigure(t.Name+"-cdf", t.Name+": latency CDF under LibASL",
		t.CDFSLO, r.Epochs.Overall(), r.Epochs.ByClass(stats.Little), 64)
}

// AllDBTemplates enumerates the five databases of Table 1.
func AllDBTemplates() []DBTemplate {
	return []DBTemplate{
		KyotoTemplate(),
		UpscaleTemplate(),
		LMDBTemplate(),
		LevelDBTemplate(),
		SQLiteTemplate(),
	}
}

// RunBench1ASL runs Bench-1 under LibASL at the given SLO; the §3.1
// profiling tool uses it as its default workload.
func RunBench1ASL(sloNs int64) *MicroResult {
	return RunMicro(Bench1Config(KindASL, sloNs))
}

// RunDBASL runs a database template under LibASL at the given SLO.
func RunDBASL(t DBTemplate, sloNs int64) *MicroResult {
	return RunMicro(DBConfig(t, KindASL, sloNs, 91))
}
