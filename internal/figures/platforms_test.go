package figures

import (
	"strings"
	"testing"

	"repro/internal/amp"
	"repro/internal/stats"
)

// platformImprovement measures LibASL-over-MCS on one platform and
// database at reduced duration.
func platformImprovement(t *testing.T, machine amp.Config, tpl DBTemplate) (float64, int64) {
	t.Helper()
	mcsCfg := DBConfig(tpl, KindMCS, -1, 91)
	aslCfg := DBConfig(tpl, KindASL, tpl.CDFSLO, 91)
	for _, c := range []*MicroConfig{&mcsCfg, &aslCfg} {
		c.Machine = machine
		c.Duration = 60_000_000
		c.Warmup = 15_000_000
	}
	mcs := RunMicro(mcsCfg)
	asl := RunMicro(aslCfg)
	if mcs.Throughput == 0 {
		t.Fatal("mcs run produced nothing")
	}
	return asl.Throughput/mcs.Throughput - 1, asl.Epochs.ByClass(stats.Little).P99()
}

func TestPlatformsImproveOverMCS(t *testing.T) {
	// The §4.2 closing claim: LibASL improves on MCS on every AMP
	// platform while holding the SLO. One representative database per
	// platform keeps the test fast.
	cases := []struct {
		name    string
		machine amp.Config
		tpl     DBTemplate
	}{
		{"m1/upscaledb", M1Config(), UpscaleTemplate()},
		{"hikey970/leveldb", HikeyConfig(), LevelDBTemplate()},
		{"intel-dvfs/lmdb", IntelDVFSConfig(), LMDBTemplate()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			imp, littleP99 := platformImprovement(t, c.machine, c.tpl)
			if imp < 0.15 {
				t.Errorf("improvement = %.0f%%, want meaningful gain", imp*100)
			}
			if float64(littleP99) > float64(c.tpl.CDFSLO)*1.2 {
				t.Errorf("little P99 %d breaks the %d SLO", littleP99, c.tpl.CDFSLO)
			}
		})
	}
}

func TestFormatPlatformRows(t *testing.T) {
	rows := []PlatformRow{{Platform: "m1", DB: "kyoto", MCS: 100, ASL: 150, Improvement: 0.5, SLO: 70_000}}
	out := FormatPlatformRows(rows)
	if !strings.Contains(out, "m1") || !strings.Contains(out, "kyoto") || !strings.Contains(out, "50%") {
		t.Fatalf("format wrong:\n%s", out)
	}
}
