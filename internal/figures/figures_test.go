package figures

import (
	"testing"

	"repro/internal/stats"
)

// These are the repository's headline integration tests: each checks
// the qualitative shape targets of one paper figure (DESIGN.md §4)
// against the simulator. Absolute values are model-dependent;
// orderings, crossovers and SLO-tracking are what the paper's claims
// rest on.

// short runs use reduced duration for the cheap direct-config tests.
func shortBench1(kind LockKind, slo int64) MicroConfig {
	cfg := Bench1Config(kind, slo)
	cfg.Duration = 60_000_000
	cfg.Warmup = 15_000_000
	return cfg
}

func TestASL0FallsBackToMCS(t *testing.T) {
	// LibASL with SLO 0 must behave like the underlying MCS lock
	// (±10%): the fallback of §3.4.
	mcs := RunMicro(shortBench1(KindMCS, -1))
	asl0 := RunMicro(shortBench1(KindASL, 0))
	ratio := asl0.Throughput / mcs.Throughput
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("libasl-0 / mcs throughput = %.3f, want ~1", ratio)
	}
	lp99 := float64(asl0.Epochs.ByClass(stats.Little).P99())
	mp99 := float64(mcs.Epochs.ByClass(stats.Little).P99())
	if lp99 > mp99*1.25 {
		t.Fatalf("libasl-0 little P99 %.0f vs mcs %.0f: fallback broken", lp99, mp99)
	}
}

func TestASLMaxBeatsAllBaselinesUnderContention(t *testing.T) {
	max := RunMicro(shortBench1(KindASL, -1)).Throughput
	for _, k := range []LockKind{KindMCS, KindTicket, KindPthread} {
		base := RunMicro(shortBench1(k, -1)).Throughput
		if max <= base {
			t.Errorf("libasl-max (%.0f) must beat %v (%.0f) on Bench-1", max, k, base)
		}
	}
}

func TestASLThroughputMonotoneInSLO(t *testing.T) {
	// Larger SLOs can only help throughput (Fig. 8b's monotone curve).
	var last float64
	for _, slo := range []int64{0, 40_000, 80_000, 120_000} {
		thr := RunMicro(shortBench1(KindASL, slo)).Throughput
		if thr < last*0.93 { // 7% tolerance for sampling noise
			t.Fatalf("throughput fell from %.0f to %.0f at SLO %d", last, thr, slo)
		}
		if thr > last {
			last = thr
		}
	}
}

func TestASLLittleP99TracksSLO(t *testing.T) {
	// The headline property (Fig. 8b): once the SLO is achievable, the
	// little-core P99 sits at the SLO (within the histogram's bucket
	// error plus scheduling slack), never far above it.
	for _, slo := range []int64{50_000, 80_000, 110_000} {
		r := RunMicro(shortBench1(KindASL, slo))
		p99 := r.Epochs.ByClass(stats.Little).P99()
		if float64(p99) > float64(slo)*1.15 {
			t.Errorf("SLO %d: little P99 %d exceeds SLO by >15%%", slo, p99)
		}
		if float64(p99) < float64(slo)*0.5 {
			t.Errorf("SLO %d: little P99 %d far below SLO — reordering not exploited", slo, p99)
		}
	}
}

func TestMCSCollapseOnLittleCores(t *testing.T) {
	// Fig. 1a: MCS throughput must drop >35% from 4 threads (bigs
	// only) to 8 threads (bigs + littles).
	at := func(n int) float64 {
		cfg := collapseConfig(n, 4, KindMCS)
		cfg.Duration = 60_000_000
		cfg.Warmup = 15_000_000
		return RunMicro(cfg).Throughput
	}
	t4, t8 := at(4), at(8)
	if t8 > t4*0.65 {
		t.Fatalf("MCS 4→8 threads: %.0f → %.0f, want >35%% collapse", t4, t8)
	}
}

func TestTASLittleAffinityCollapse(t *testing.T) {
	// Fig. 1: with little-affinity, TAS at 8 threads is below MCS in
	// throughput and far above it in P99.
	run := func(kind LockKind) *MicroResult {
		cfg := collapseConfig(8, 4, kind)
		cfg.Duration = 60_000_000
		cfg.Warmup = 15_000_000
		if kind == KindTAS {
			cfg.TASAff = littleAffinity
		}
		return RunMicro(cfg)
	}
	mcs, tas := run(KindMCS), run(KindTAS)
	if tas.Throughput >= mcs.Throughput {
		t.Errorf("little-affinity TAS throughput (%.0f) should trail MCS (%.0f)", tas.Throughput, mcs.Throughput)
	}
	if tas.LockSection.Overall().P99() < 3*mcs.LockSection.Overall().P99() {
		t.Errorf("little-affinity TAS P99 (%d) should be multiples of MCS (%d)",
			tas.LockSection.Overall().P99(), mcs.LockSection.Overall().P99())
	}
}

func TestTASBigAffinityBeatsMCSThroughput(t *testing.T) {
	// Fig. 4: big-affinity TAS beats MCS on throughput at 8 threads
	// while collapsing latency for little cores.
	run := func(kind LockKind) *MicroResult {
		cfg := collapseConfig(8, 64, kind)
		cfg.Duration = 60_000_000
		cfg.Warmup = 15_000_000
		if kind == KindTAS {
			cfg.TASAff = bigAffinity
		}
		return RunMicro(cfg)
	}
	mcs, tas := run(KindMCS), run(KindTAS)
	if tas.Throughput <= mcs.Throughput {
		t.Errorf("big-affinity TAS (%.0f) should beat MCS (%.0f)", tas.Throughput, mcs.Throughput)
	}
	if tas.LockSection.ByClass(stats.Little).P99() <= mcs.LockSection.ByClass(stats.Little).P99() {
		t.Errorf("big-affinity TAS must hurt little-core latency")
	}
}

func TestProportionalTradeoffMonotone(t *testing.T) {
	// Fig. 5: throughput and P99 both grow with the proportion N.
	thrAt := func(n int) (float64, int64) {
		cfg := Bench1Config(KindSHFLPB, -1)
		cfg.PBn = n
		cfg.Duration = 60_000_000
		cfg.Warmup = 15_000_000
		r := RunMicro(cfg)
		return r.Throughput, r.Epochs.Overall().P99()
	}
	t1, p1 := thrAt(1)
	t20, p20 := thrAt(20)
	if t20 <= t1 {
		t.Errorf("throughput should grow with N: N=1 %.0f, N=20 %.0f", t1, t20)
	}
	if p20 <= p1 {
		t.Errorf("P99 should grow with N: N=1 %d, N=20 %d", p1, p20)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := RunMicro(shortBench1(KindASL, 50_000))
	b := RunMicro(shortBench1(KindASL, 50_000))
	if a.Throughput != b.Throughput {
		t.Fatalf("same seed must reproduce identical throughput: %.0f vs %.0f", a.Throughput, b.Throughput)
	}
	if a.Epochs.Overall().P99() != b.Epochs.Overall().P99() {
		t.Fatal("same seed must reproduce identical P99")
	}
}

func TestFig8dAdaptivityPhases(t *testing.T) {
	// Cheap enough (virtual time) to run in -short as well.
	f, trace := Fig8d()
	if trace.Len() == 0 {
		t.Fatal("no trace samples")
	}
	s, ok := f.FindSeries("window-p99")
	if !ok {
		t.Fatal("missing window-p99 series")
	}
	const slo = 100_000.0
	check := func(fromMs, toMs float64, pred func(y float64) bool, what string) {
		for _, p := range s.Points {
			if p.X >= fromMs && p.X < toMs && !pred(p.Y) {
				t.Errorf("%s violated at %vms: p99=%v", what, p.X, p.Y)
			}
		}
	}
	// Steady phases: far below SLO. x128 phase (after the adaptation
	// window at 100ms): bounded by the SLO. x1024 phase: far above it
	// (FIFO fallback; the SLO is impossible).
	check(10, 100, func(y float64) bool { return y < slo/10 }, "baseline phase")
	check(110, 200, func(y float64) bool { return y < slo*1.1 }, "x128 phase under SLO")
	check(210, 250, func(y float64) bool { return y < slo/10 }, "recovery phase")
	check(250, 300, func(y float64) bool { return y < slo*1.1 }, "random phase under SLO")
	check(310, 350, func(y float64) bool { return y > slo*2 }, "x1024 fallback phase")
}

func TestFig8hOversubscription(t *testing.T) {
	// -short runs a reduced smoke slice of the same figure; the full
	// durations only sharpen the P99 estimates, not the orderings.
	dur, warm := int64(600_000_000), int64(150_000_000)
	if testing.Short() {
		dur, warm = 200_000_000, 50_000_000
	}
	short := func(kind LockKind, slo int64) MicroConfig {
		cfg := OversubConfig(kind, slo)
		cfg.Duration = dur
		cfg.Warmup = warm
		return cfg
	}
	pthread := RunMicro(short(KindPthread, -1)).Throughput
	stp := RunMicro(short(KindMCSSTP, -1)).Throughput
	asl := RunMicro(short(KindASL, 3_000_000))
	max := RunMicro(short(KindASL, -1)).Throughput
	if stp >= pthread {
		t.Errorf("MCS-STP (%.0f) must collapse below pthread (%.0f)", stp, pthread)
	}
	if asl.Throughput <= pthread {
		t.Errorf("blocking LibASL (%.0f) must beat pthread (%.0f)", asl.Throughput, pthread)
	}
	if max <= pthread {
		t.Errorf("LibASL-MAX (%.0f) must beat pthread (%.0f)", max, pthread)
	}
	if p99 := asl.Epochs.ByClass(stats.Little).P99(); p99 > 3_450_000 {
		t.Errorf("blocking LibASL little P99 %d exceeds the 3ms SLO by >15%%", p99)
	}
}

func TestDBComparisonShapes(t *testing.T) {
	// The full five-template sweep dominates this package's runtime;
	// -short keeps a one-template smoke reproduction at a third of the
	// virtual duration, which preserves every checked ordering.
	templates := AllDBTemplates()
	scale := int64(1)
	if testing.Short() {
		templates = []DBTemplate{UpscaleTemplate()}
		scale = 3
	}
	for _, tpl := range templates {
		f := DBComparisonScaled(tpl, scale)
		mcs, _ := f.FindRow("mcs")
		asl0, _ := f.FindRow("libasl-0")
		max, _ := f.FindRow("libasl-max")
		pthread, _ := f.FindRow("pthread")
		if r := asl0.Throughput / mcs.Throughput; r < 0.9 || r > 1.1 {
			t.Errorf("%s: libasl-0/mcs = %.2f, want ~1", tpl.Name, r)
		}
		if max.Throughput <= mcs.Throughput {
			t.Errorf("%s: libasl-max (%.0f) must beat mcs (%.0f)", tpl.Name, max.Throughput, mcs.Throughput)
		}
		if pthread.Throughput >= max.Throughput {
			t.Errorf("%s: pthread (%.0f) must trail libasl-max (%.0f)", tpl.Name, pthread.Throughput, max.Throughput)
		}
		tas, _ := f.FindRow("tas")
		if tpl.TASBigAffinity {
			if tas.Throughput <= mcs.Throughput {
				t.Errorf("%s: big-affinity TAS should beat MCS", tpl.Name)
			}
		} else if tas.Throughput >= mcs.Throughput*1.05 {
			t.Errorf("%s: little-affinity TAS should not beat MCS", tpl.Name)
		}
	}
}

func TestDBCDFWellFormed(t *testing.T) {
	scale := int64(1)
	if testing.Short() {
		scale = 4
	}
	f := DBCDFScaled(UpscaleTemplate(), scale)
	overall, ok := f.FindSeries("overall")
	if !ok || len(overall.Points) == 0 {
		t.Fatal("missing overall CDF")
	}
	last := overall.Points[len(overall.Points)-1]
	if last.Y != 1.0 {
		t.Fatalf("CDF must end at 1, got %v", last.Y)
	}
	for i := 1; i < len(overall.Points); i++ {
		if overall.Points[i].Y < overall.Points[i-1].Y {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestOptControllerBeatsNothing(t *testing.T) {
	// Sanity on the Compare helper and variants plumbing.
	f := Compare(shortBench1(KindMCS, -1), []Variant{
		{Name: "mcs", Apply: func(cfg *MicroConfig) { cfg.Kind = KindMCS }},
		{Name: "ticket", Apply: func(cfg *MicroConfig) { cfg.Kind = KindTicket }},
	}, false)
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	if _, ok := f.FindRow("ticket"); !ok {
		t.Fatal("missing ticket row")
	}
}
