package amp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// testConfig returns a 2+2 machine with jitter disabled so durations
// are exact.
func testConfig() Config {
	return Config{Bigs: 2, Littles: 2, LittleCSFactor: 3, LittleNCSFactor: 2, JitterPct: -1}
}

func TestMachineLayout(t *testing.T) {
	k := sim.NewKernel()
	m := NewMachine(k, testConfig())
	if len(m.Cores()) != 4 {
		t.Fatalf("cores = %d, want 4", len(m.Cores()))
	}
	for i, c := range m.Cores() {
		wantClass := core.Big
		if i >= 2 {
			wantClass = core.Little
		}
		if c.Class() != wantClass {
			t.Fatalf("core %d class = %v, want %v", i, c.Class(), wantClass)
		}
		if c.ID() != i {
			t.Fatalf("core %d has ID %d", i, c.ID())
		}
	}
}

func TestComputeScaling(t *testing.T) {
	k := sim.NewKernel()
	m := NewMachine(k, testConfig())
	var bigCS, littleCS, littleNCS int64
	m.NewThread("big", 0, 0, func(th *Thread) {
		start := th.Now()
		th.Compute(1000, CS)
		bigCS = th.Now() - start
	})
	m.NewThread("little", 2, 0, func(th *Thread) {
		start := th.Now()
		th.Compute(1000, CS)
		littleCS = th.Now() - start
		start = th.Now()
		th.Compute(1000, NCS)
		littleNCS = th.Now() - start
	})
	k.RunAll()
	if bigCS != 1000 {
		t.Errorf("big CS took %d, want 1000", bigCS)
	}
	if littleCS != 3000 {
		t.Errorf("little CS took %d, want 3000 (factor 3)", littleCS)
	}
	if littleNCS != 2000 {
		t.Errorf("little NCS took %d, want 2000 (factor 2)", littleNCS)
	}
}

func TestParkUnpark(t *testing.T) {
	cfg := testConfig()
	cfg.WakeLatency = 100
	cfg.CtxSwitch = 10
	k := sim.NewKernel()
	m := NewMachine(k, cfg)
	var sleeper *Thread
	var wokenAt int64
	m.NewThread("sleeper", 0, 0, func(th *Thread) {
		sleeper = th
		th.Park()
		wokenAt = th.Now()
	})
	m.NewThread("waker", 1, 0, func(th *Thread) {
		th.Compute(1000, NCS)
		Unpark(sleeper)
	})
	k.RunAll()
	// Wake at 1000 + WakeLatency(100) + CtxSwitch(10).
	if wokenAt != 1110 {
		t.Fatalf("woken at %d, want 1110", wokenAt)
	}
}

func TestOversubscriptionSharing(t *testing.T) {
	// Two CPU-bound threads on one core must each see ~half the core:
	// total wall time for 2x5ms of work is ~10ms.
	cfg := testConfig()
	cfg.Quantum = 1_000_000 // 1 ms
	cfg.CtxSwitch = 0
	k := sim.NewKernel()
	m := NewMachine(k, cfg)
	var done [2]int64
	for i := 0; i < 2; i++ {
		i := i
		m.NewThread("t", 0, 0, func(th *Thread) {
			th.Compute(5_000_000, NCS)
			done[i] = th.Now()
		})
	}
	k.RunAll()
	for i, d := range done {
		if d < 9_000_000 || d > 10_100_000 {
			t.Errorf("thread %d finished at %d, want ~10ms (fair sharing)", i, d)
		}
	}
}

func TestDedicatedCoreNoPreemption(t *testing.T) {
	// A single thread on a core runs its compute in one go.
	k := sim.NewKernel()
	m := NewMachine(k, testConfig())
	var finished int64
	m.NewThread("solo", 0, 0, func(th *Thread) {
		th.Compute(10_000_000, NCS)
		finished = th.Now()
	})
	k.RunAll()
	if finished != 10_000_000 {
		t.Fatalf("finished at %d, want exactly 10ms", finished)
	}
}

func TestWakePreemption(t *testing.T) {
	// A woken thread must preempt the running co-thread within the
	// preemption granularity, not wait for its full quantum.
	cfg := testConfig()
	cfg.Quantum = 10_000_000 // long quantum: preemption must not wait for it
	cfg.WakeLatency = 100
	cfg.CtxSwitch = 0
	k := sim.NewKernel()
	m := NewMachine(k, cfg)
	var sleeper *Thread
	var wokenAt int64
	m.NewThread("sleeper", 0, 0, func(th *Thread) {
		sleeper = th
		th.Park()
		wokenAt = th.Now()
	})
	m.NewThread("spinner", 0, 0, func(th *Thread) {
		th.Compute(50_000_000, NCS) // hog the core
	})
	m.NewThread("waker", 1, 0, func(th *Thread) {
		th.Compute(1_000_000, NCS)
		Unpark(sleeper)
	})
	k.RunAll()
	// Wake issued at 1ms; +100ns wake latency; preemption within 2µs.
	if wokenAt < 1_000_000 || wokenAt > 1_010_000 {
		t.Fatalf("woken at %d, want within ~4µs of 1ms (wake preemption)", wokenAt)
	}
}

func TestSleepForReleasesCPU(t *testing.T) {
	// While one thread nanosleeps, its co-thread must get the core.
	cfg := testConfig()
	cfg.CtxSwitch = 0
	k := sim.NewKernel()
	m := NewMachine(k, cfg)
	var progress int64
	m.NewThread("sleeper", 0, 0, func(th *Thread) {
		th.SleepFor(1_000_000)
	})
	m.NewThread("worker", 0, 0, func(th *Thread) {
		start := th.Now()
		th.Compute(500_000, NCS)
		progress = th.Now() - start
	})
	k.RunAll()
	if progress > 600_000 {
		t.Fatalf("worker took %d, should run while sleeper sleeps", progress)
	}
}

func TestJitterBounds(t *testing.T) {
	cfg := testConfig()
	cfg.JitterPct = 5
	cfg.Seed = 123
	k := sim.NewKernel()
	m := NewMachine(k, cfg)
	var durations []int64
	m.NewThread("t", 0, 0, func(th *Thread) {
		for i := 0; i < 100; i++ {
			s := th.Now()
			th.Compute(10_000, NCS)
			durations = append(durations, th.Now()-s)
		}
	})
	k.RunAll()
	varied := false
	for _, d := range durations {
		if d < 9_500 || d > 10_500 {
			t.Fatalf("jittered duration %d outside ±5%%", d)
		}
		if d != 10_000 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter had no effect")
	}
}

func TestYield(t *testing.T) {
	cfg := testConfig()
	cfg.CtxSwitch = 0
	cfg.Quantum = 1 << 40
	k := sim.NewKernel()
	m := NewMachine(k, cfg)
	var order []string
	m.NewThread("a", 0, 0, func(th *Thread) {
		th.Compute(100, NCS)
		order = append(order, "a1")
		th.Yield()
		order = append(order, "a2")
	})
	m.NewThread("b", 0, 0, func(th *Thread) {
		order = append(order, "b")
	})
	k.RunAll()
	if len(order) != 3 || order[0] != "a1" || order[1] != "b" || order[2] != "a2" {
		t.Fatalf("order = %v, want [a1 b a2]", order)
	}
}
