// Package amp models an asymmetric multicore processor (AMP) on top of
// the discrete-event kernel in internal/sim. It is the stand-in for the
// paper's Apple M1 testbed (see DESIGN.md, substitutions): cores carry a
// class (big or little) and per-class slowdown factors for critical and
// non-critical work; threads consume CPU time on their core; cores can
// be over-subscribed, in which case a round-robin scheduler with a
// CFS-like quantum, context-switch cost and wake-up latency arbitrates
// — the ingredients Bench-6 (Fig. 8h/8i) depends on.
//
// The model is deliberately minimal: the paper's collapse phenomena are
// functions of (a) the ratio of critical-section durations between core
// classes, (b) the atomic-operation success-rate asymmetry (modelled in
// internal/simlock), and (c) blocking/wake-up behaviour under
// over-subscription. All three are explicit parameters here.
package amp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/prng"
	"repro/internal/sim"
)

// WorkKind distinguishes critical-section work (memory-bound
// read-modify-write in the paper's benchmarks) from non-critical work
// (NOP loops). The two scale differently across core classes: on the M1
// big cores are ~3.75x faster on Sysbench but only ~1.8x faster on NOPs
// (§4, Evaluation Setup).
type WorkKind int

const (
	// CS is critical-section (memory-heavy) work.
	CS WorkKind = iota
	// NCS is non-critical-section (compute/NOP) work.
	NCS
)

// Config describes the simulated machine.
type Config struct {
	// Bigs and Littles are the core counts (4+4 on the M1).
	Bigs, Littles int
	// LittleCSFactor is how much longer a critical section takes on a
	// little core (durations are given in big-core nanoseconds).
	// Zero means 2.4.
	LittleCSFactor float64
	// LittleNCSFactor is the same for non-critical work. Zero means 1.8.
	LittleNCSFactor float64
	// Quantum is the scheduler timeslice under over-subscription.
	// Zero means 3 ms (a CFS-like granularity).
	Quantum int64
	// CtxSwitch is charged whenever a core switches threads.
	// Zero means 2 µs.
	CtxSwitch int64
	// WakeLatency is the delay between an unpark and the thread
	// becoming runnable (futex wake + scheduler latency).
	// Zero means 5 µs.
	WakeLatency int64
	// JitterPct adds deterministic pseudo-random noise of ±JitterPct
	// percent to every Compute call. Real machines never run two
	// threads in perfect phase; without noise the event-driven model
	// can lock into artificial convoys (e.g. two threads barging a
	// mutex back and forth forever). Zero means 2; negative disables.
	JitterPct float64
	// Seed drives the jitter PRNG streams.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.LittleCSFactor == 0 {
		c.LittleCSFactor = 2.4
	}
	if c.LittleNCSFactor == 0 {
		c.LittleNCSFactor = 1.8
	}
	if c.Quantum == 0 {
		c.Quantum = 3_000_000
	}
	if c.CtxSwitch == 0 {
		c.CtxSwitch = 2_000
	}
	if c.WakeLatency == 0 {
		c.WakeLatency = 5_000
	}
	if c.JitterPct == 0 {
		c.JitterPct = 2
	}
	return c
}

// M1Config returns the 4-big + 4-little default machine.
func M1Config() Config { return Config{Bigs: 4, Littles: 4} }

// Machine is a simulated AMP.
type Machine struct {
	K     *sim.Kernel
	cfg   Config
	cores []*Core
}

// NewMachine builds a machine on the given kernel.
func NewMachine(k *sim.Kernel, cfg Config) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{K: k, cfg: cfg}
	for i := 0; i < cfg.Bigs; i++ {
		m.cores = append(m.cores, &Core{m: m, id: len(m.cores), class: core.Big})
	}
	for i := 0; i < cfg.Littles; i++ {
		m.cores = append(m.cores, &Core{m: m, id: len(m.cores), class: core.Little})
	}
	return m
}

// Cores returns the machine's cores, big cores first.
func (m *Machine) Cores() []*Core { return m.cores }

// Core returns core i (big cores occupy the low indices).
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Config returns the machine configuration (after defaulting).
func (m *Machine) Config() Config { return m.cfg }

// Core is one simulated CPU core.
type Core struct {
	m       *Machine
	id      int
	class   core.Class
	current *Thread
	runq    []*Thread
	threads int // threads bound to this core (for the dedicated fast path)
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Class returns the core's class.
func (c *Core) Class() core.Class { return c.class }

// scale converts big-core nanoseconds into this core's execution time.
func (c *Core) scale(d int64, kind WorkKind) int64 {
	if c.class == core.Big || d == 0 {
		return d
	}
	f := c.m.cfg.LittleCSFactor
	if kind == NCS {
		f = c.m.cfg.LittleNCSFactor
	}
	return int64(float64(d) * f)
}

// oversubscribed reports whether CPU arbitration is needed at all.
func (c *Core) oversubscribed() bool { return c.threads > 1 }

// dispatch promotes the next runnable thread (if any) to current and
// resumes it after a context switch. Must run in kernel context with
// c.current == nil.
func (c *Core) dispatch() {
	if len(c.runq) == 0 {
		return
	}
	t := c.runq[0]
	c.runq = c.runq[1:]
	t.wakePreempt = false
	c.current = t
	t.quantumLeft = c.m.cfg.Quantum
	t.proc.Resume(c.m.cfg.CtxSwitch)
}

// leaveCPU removes t from the core (t must be current) and lets the
// next thread run.
func (c *Core) leaveCPU(t *Thread) {
	if c.current != t {
		panic(fmt.Sprintf("amp: thread %s leaving core %d it does not occupy", t.name, c.id))
	}
	c.current = nil
	c.dispatch()
}

// acquireCPU blocks t until it occupies the core.
func (c *Core) acquireCPU(t *Thread) {
	if c.current == nil && len(c.runq) == 0 {
		c.current = t
		t.quantumLeft = c.m.cfg.Quantum
		return
	}
	c.runq = append(c.runq, t)
	t.proc.Suspend() // dispatch() resumes us
}

// ready makes a previously parked thread runnable: it either takes the
// idle core directly or jumps to the front of the run queue with the
// wake-preemption flag set, so the current occupant yields at its next
// preemption point (within preemptGranularity) — CFS wake-up
// preemption. Crucially this can preempt a lock holder mid-critical-
// section, the classic over-subscription pathology Bench-6 exercises.
func (c *Core) ready(t *Thread) {
	t.wakePreempt = true
	c.runq = append([]*Thread{t}, c.runq...)
	if c.current == nil {
		c.dispatch()
	}
}

// preemptGranularity is how quickly a running thread notices a pending
// wake preemption (scheduler-tick/IPI latency).
const preemptGranularity = 2_000

// Thread is a simulated software thread bound to one core.
type Thread struct {
	m           *Machine
	core        *Core
	proc        *sim.Proc
	name        string
	quantumLeft int64
	jitter      *prng.SplitMix64
	// wakePreempt marks a freshly woken thread that should preempt the
	// core's current occupant at its next preemption point (CFS wake-up
	// preemption: a thread that slept carries vruntime credit).
	wakePreempt bool
}

// jittered perturbs a duration by the machine's configured noise.
func (t *Thread) jittered(d int64) int64 {
	pct := t.m.cfg.JitterPct
	if pct <= 0 || d == 0 {
		return d
	}
	u := prng.Float64(t.jitter) // [0,1)
	f := 1 + pct/100*(2*u-1)    // 1 ± pct%
	out := int64(float64(d) * f)
	if out < 0 {
		out = 0
	}
	return out
}

// NewThread creates a thread on core coreID whose body starts after
// startDelay. The body runs with the CPU held; Compute, Park, SleepFor
// and Yield model its interaction with the core.
func (m *Machine) NewThread(name string, coreID int, startDelay int64, body func(t *Thread)) *Thread {
	c := m.cores[coreID]
	c.threads++
	t := &Thread{m: m, core: c, name: name}
	t.jitter = prng.NewSplitMix64(m.cfg.Seed ^ (0x5bd1e995*uint64(coreID+1) + uint64(c.threads)))
	t.proc = m.K.Spawn(name, startDelay, func(p *sim.Proc) {
		t.core.acquireCPU(t)
		body(t)
		t.core.leaveCPU(t)
	})
	return t
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Core returns the thread's core.
func (t *Thread) Core() *Core { return t.core }

// Class returns the class of the thread's core.
func (t *Thread) Class() core.Class { return t.core.class }

// Proc exposes the underlying simulation process for lock
// implementations that model spinning (the thread keeps occupying its
// core while the proc is suspended on a lock queue — exactly what a
// spinning waiter does).
func (t *Thread) Proc() *sim.Proc { return t.proc }

// Now returns the current virtual time.
func (t *Thread) Now() int64 { return t.m.K.Now() }

// Clock returns a core.Clock reading virtual time, for wiring
// simulated workers to the LibASL feedback code.
func (t *Thread) Clock() core.Clock { return t.m.K.Now }

// Compute consumes d big-core nanoseconds of work of the given kind,
// scaled for this core's class, honouring preemption when the core is
// over-subscribed.
func (t *Thread) Compute(d int64, kind WorkKind) {
	remaining := t.jittered(t.core.scale(d, kind))
	if !t.core.oversubscribed() {
		if remaining > 0 {
			t.proc.Sleep(remaining)
		}
		return
	}
	for remaining > 0 {
		slice := remaining
		if slice > t.quantumLeft {
			slice = t.quantumLeft
		}
		if slice > preemptGranularity {
			slice = preemptGranularity
		}
		t.proc.Sleep(slice)
		remaining -= slice
		t.quantumLeft -= slice
		c := t.core
		switch {
		case t.quantumLeft == 0:
			if len(c.runq) > 0 {
				t.yieldCPU() // back of the run queue
			} else {
				t.quantumLeft = t.m.cfg.Quantum
			}
		case len(c.runq) > 0 && c.runq[0].wakePreempt:
			// A wake arrived: the woken thread preempts us now, even
			// mid-critical-section.
			c.runq[0].wakePreempt = false
			t.yieldCPU()
		}
	}
}

// yieldCPU moves the current thread to the back of the run queue and
// blocks until it is dispatched again.
func (t *Thread) yieldCPU() {
	c := t.core
	c.current = nil
	c.runq = append(c.runq, t)
	c.dispatch()
	t.proc.Suspend()
}

// Park releases the CPU and suspends the thread until Unpark. The
// caller must arrange the Unpark (lost wakeups are the caller's bug,
// as with real futexes).
func (t *Thread) Park() {
	t.core.leaveCPU(t)
	t.proc.Suspend()
	// Unpark → ready → dispatch resumed us; we are current again.
}

// Unpark makes the parked thread target runnable after the machine's
// wake latency. Call from any kernel context (another thread's body or
// an event callback).
func Unpark(target *Thread) {
	target.m.K.Schedule(target.m.cfg.WakeLatency, func() {
		target.core.ready(target)
	})
}

// SleepFor releases the CPU for d nanoseconds (a nanosleep), then
// re-acquires it with wake-preemption priority (a thread returning from
// sleep carries vruntime credit under CFS). Used by the blocking
// reorderable lock's standby back-off (footnote 3 of the paper).
func (t *Thread) SleepFor(d int64) {
	if !t.core.oversubscribed() {
		// Dedicated core: sleeping and spinning cost the same.
		if d > 0 {
			t.proc.Sleep(d)
		}
		return
	}
	t.core.leaveCPU(t)
	t.proc.Sleep(d)
	c := t.core
	if c.current == nil && len(c.runq) == 0 {
		c.current = t
		t.quantumLeft = t.m.cfg.Quantum
		return
	}
	t.wakePreempt = true
	c.runq = append([]*Thread{t}, c.runq...)
	t.proc.Suspend() // dispatch resumes us at the next preemption point
}

// Yield gives up the CPU to the next runnable thread, if any.
func (t *Thread) Yield() {
	if !t.core.oversubscribed() || len(t.core.runq) == 0 {
		return
	}
	c := t.core
	c.current = nil
	c.runq = append(c.runq, t)
	c.dispatch()
	t.proc.Suspend()
}
