// Package fault is a deterministic, seeded fault-injection registry.
//
// Code under test (or under chaos — see cmd/kvsoak) declares named
// injection points: "wal.fsync", "wal.write", "conn.read", … At each
// point it calls Registry.Eval and honours the Outcome: return the
// injected error, write only a prefix (a torn write), sleep, or drop
// the connection. A nil *Registry is always a no-op, so production
// paths pay one nil check and no allocation.
//
// Rules are matched in the order they were added; the first rule whose
// trigger fires decides the outcome. All randomness comes from one
// seeded SplitMix64 stream, so a (seed, schedule) pair replays the
// same fault sequence — the property the soak harness leans on to
// reproduce failures.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/prng"
)

// ErrInjected is the sentinel every injected error wraps; test code
// asserts errors.Is(err, fault.ErrInjected) to distinguish injected
// failures from real ones.
var ErrInjected = errors.New("injected fault")

// Error is the concrete injected error: which point fired and on
// which call. It wraps ErrInjected.
type Error struct {
	Point string
	Call  uint64 // 1-based call count at the point when the rule fired
}

func (e *Error) Error() string {
	return fmt.Sprintf("injected fault at %s (call %d)", e.Point, e.Call)
}

func (e *Error) Unwrap() error { return ErrInjected }

// Action says what a firing rule does to the faulted operation.
type Action uint8

const (
	// ActError fails the operation with an *Error.
	ActError Action = iota
	// ActShort lets Bytes bytes through, then fails: a torn write.
	ActShort
	// ActDelay sleeps Delay and then lets the operation proceed.
	ActDelay
	// ActDrop asks the caller to sever the underlying transport
	// (connection points only) and fail the operation.
	ActDrop
)

// Rule arms one injection point with a trigger and an action. Exactly
// one trigger field must be set: Nth (fire once, on the nth matching
// call, 1-based), Every (fire on every multiple), Prob (fire with
// that probability per call, from the registry's seeded stream),
// After (fire on every call once the point's cumulative byte count
// reaches the threshold), or Always.
type Rule struct {
	Point string

	Nth    uint64
	Every  uint64
	Prob   float64
	After  uint64
	Always bool

	// Count caps how many times the rule fires (0 = unlimited; a
	// Nth rule fires once regardless).
	Count uint64

	Act   Action
	Bytes int           // ActShort: bytes let through before the failure
	Delay time.Duration // ActDelay: how long to stall the operation
}

func (r *Rule) validate() error {
	if r.Point == "" {
		return errors.New("fault: rule has no injection point")
	}
	set := 0
	if r.Nth > 0 {
		set++
	}
	if r.Every > 0 {
		set++
	}
	if r.Prob > 0 {
		set++
	}
	if r.After > 0 {
		set++
	}
	if r.Always {
		set++
	}
	if set != 1 {
		return fmt.Errorf("fault: rule at %s must set exactly one trigger (got %d)", r.Point, set)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: rule at %s has probability %v outside [0,1]", r.Point, r.Prob)
	}
	if r.Act == ActShort && r.Bytes < 0 {
		return fmt.Errorf("fault: rule at %s has negative short-write length", r.Point)
	}
	if r.Act == ActDelay && r.Delay <= 0 {
		return fmt.Errorf("fault: delay rule at %s needs a positive duration", r.Point)
	}
	return nil
}

// Outcome is Eval's verdict for one operation at one point.
type Outcome struct {
	// Err, when non-nil, is the injected failure the operation must
	// return (after honouring Short/Drop below).
	Err error
	// Short is the number of bytes to let through before failing;
	// -1 means "none / not a short write".
	Short int
	// Sleep is an injected latency to serve before proceeding (the
	// operation itself then succeeds; Err is nil).
	Sleep time.Duration
	// Drop tells connection wrappers to sever the transport.
	Drop bool
}

type armedRule struct {
	Rule
	fires uint64
}

// Registry holds the armed rules plus per-point call/byte counters.
// Safe for concurrent use; a nil *Registry is a valid no-op.
type Registry struct {
	mu    sync.Mutex
	rng   *prng.SplitMix64
	rules []*armedRule
	calls map[string]uint64
	bytes map[string]uint64
	fired map[string]uint64
}

// New returns an empty registry whose probabilistic triggers draw
// from a SplitMix64 stream seeded with seed.
func New(seed uint64) *Registry {
	return &Registry{
		rng:   prng.NewSplitMix64(seed),
		calls: make(map[string]uint64),
		bytes: make(map[string]uint64),
		fired: make(map[string]uint64),
	}
}

// Add arms a rule. Rules are evaluated in insertion order.
func (g *Registry) Add(r Rule) error {
	if err := r.validate(); err != nil {
		return err
	}
	g.mu.Lock()
	g.rules = append(g.rules, &armedRule{Rule: r})
	g.mu.Unlock()
	return nil
}

// MustAdd is Add for hand-built test schedules; it panics on an
// invalid rule.
func (g *Registry) MustAdd(r Rule) {
	if err := g.Add(r); err != nil {
		panic(err)
	}
}

// Eval records one n-byte operation at point and returns the verdict.
// A nil registry (or no matching armed rule) allows the operation:
// the zero Outcome with Short == -1.
func (g *Registry) Eval(point string, n int) Outcome {
	out := Outcome{Short: -1}
	if g == nil {
		return out
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.calls[point]++
	call := g.calls[point]
	if n > 0 {
		g.bytes[point] += uint64(n)
	}
	for _, r := range g.rules {
		if r.Point != point || !g.triggers(r, call, g.bytes[point]) {
			continue
		}
		r.fires++
		g.fired[point]++
		switch r.Act {
		case ActError:
			out.Err = &Error{Point: point, Call: call}
		case ActShort:
			out.Err = &Error{Point: point, Call: call}
			out.Short = r.Bytes
		case ActDelay:
			out.Sleep = r.Delay
		case ActDrop:
			out.Err = &Error{Point: point, Call: call}
			out.Drop = true
		}
		return out
	}
	return out
}

func (g *Registry) triggers(r *armedRule, call, bytes uint64) bool {
	if r.Nth > 0 {
		return call == r.Nth && r.fires == 0
	}
	if r.Count > 0 && r.fires >= r.Count {
		return false
	}
	switch {
	case r.Every > 0:
		return call%r.Every == 0
	case r.Prob > 0:
		// 53 bits of the stream → uniform float64 in [0,1).
		return float64(g.rng.Uint64()>>11)/(1<<53) < r.Prob
	case r.After > 0:
		return bytes >= r.After
	case r.Always:
		return true
	}
	return false
}

// Fired returns a copy of the per-point fire counts — the soak driver
// logs these, and tests assert a schedule actually went off.
func (g *Registry) Fired() map[string]uint64 {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]uint64, len(g.fired))
	for k, v := range g.fired {
		out[k] = v
	}
	return out
}

// String renders the fire counts in point order, for logs.
func (g *Registry) String() string {
	fired := g.Fired()
	if len(fired) == 0 {
		return "no faults fired"
	}
	points := make([]string, 0, len(fired))
	for p := range fired {
		points = append(points, p)
	}
	sort.Strings(points)
	var b strings.Builder
	for i, p := range points {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", p, fired[p])
	}
	return b.String()
}

// Parse builds a registry from a comma-separated schedule, the form
// the -faults flag takes:
//
//	point:trigger:action[:count=K][,point:trigger:action...]
//
// trigger := nth=N | every=N | prob=F | after=N | always
// action  := error | short[=B] | delay=DUR | drop
//
// Example: "wal.fsync:nth=3:error,conn.write:prob=0.01:drop".
func Parse(seed uint64, spec string) (*Registry, error) {
	g := New(seed)
	if strings.TrimSpace(spec) == "" {
		return g, nil
	}
	for _, part := range strings.Split(spec, ",") {
		r, err := parseRule(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if err := g.Add(r); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func parseRule(s string) (Rule, error) {
	var r Rule
	fields := strings.Split(s, ":")
	if len(fields) < 3 || len(fields) > 4 {
		return r, fmt.Errorf("fault: rule %q is not point:trigger:action[:count=K]", s)
	}
	r.Point = fields[0]

	trig := fields[1]
	switch {
	case trig == "always":
		r.Always = true
	case strings.HasPrefix(trig, "nth="):
		n, err := strconv.ParseUint(trig[len("nth="):], 10, 64)
		if err != nil || n == 0 {
			return r, fmt.Errorf("fault: bad trigger %q in %q", trig, s)
		}
		r.Nth = n
	case strings.HasPrefix(trig, "every="):
		n, err := strconv.ParseUint(trig[len("every="):], 10, 64)
		if err != nil || n == 0 {
			return r, fmt.Errorf("fault: bad trigger %q in %q", trig, s)
		}
		r.Every = n
	case strings.HasPrefix(trig, "prob="):
		p, err := strconv.ParseFloat(trig[len("prob="):], 64)
		if err != nil || p <= 0 || p > 1 {
			return r, fmt.Errorf("fault: bad trigger %q in %q", trig, s)
		}
		r.Prob = p
	case strings.HasPrefix(trig, "after="):
		n, err := strconv.ParseUint(trig[len("after="):], 10, 64)
		if err != nil || n == 0 {
			return r, fmt.Errorf("fault: bad trigger %q in %q", trig, s)
		}
		r.After = n
	default:
		return r, fmt.Errorf("fault: unknown trigger %q in %q", trig, s)
	}

	act := fields[2]
	switch {
	case act == "error":
		r.Act = ActError
	case act == "drop":
		r.Act = ActDrop
	case act == "short":
		r.Act = ActShort
	case strings.HasPrefix(act, "short="):
		b, err := strconv.Atoi(act[len("short="):])
		if err != nil || b < 0 {
			return r, fmt.Errorf("fault: bad action %q in %q", act, s)
		}
		r.Act, r.Bytes = ActShort, b
	case strings.HasPrefix(act, "delay="):
		d, err := time.ParseDuration(act[len("delay="):])
		if err != nil || d <= 0 {
			return r, fmt.Errorf("fault: bad action %q in %q", act, s)
		}
		r.Act, r.Delay = ActDelay, d
	default:
		return r, fmt.Errorf("fault: unknown action %q in %q", act, s)
	}

	if len(fields) == 4 {
		c, ok := strings.CutPrefix(fields[3], "count=")
		if !ok {
			return r, fmt.Errorf("fault: trailing field %q in %q is not count=K", fields[3], s)
		}
		n, err := strconv.ParseUint(c, 10, 64)
		if err != nil || n == 0 {
			return r, fmt.Errorf("fault: bad count %q in %q", fields[3], s)
		}
		r.Count = n
	}
	return r, nil
}
