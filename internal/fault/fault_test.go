package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAllows(t *testing.T) {
	var g *Registry
	out := g.Eval("wal.fsync", 0)
	if out.Err != nil || out.Drop || out.Sleep != 0 || out.Short != -1 {
		t.Fatalf("nil registry injected something: %+v", out)
	}
	if g.Fired() != nil {
		t.Fatalf("nil registry reported fires")
	}
}

func TestNthFiresExactlyOnce(t *testing.T) {
	g := New(1)
	g.MustAdd(Rule{Point: "wal.fsync", Nth: 3, Act: ActError})
	for call := 1; call <= 6; call++ {
		out := g.Eval("wal.fsync", 0)
		if (out.Err != nil) != (call == 3) {
			t.Fatalf("call %d: err=%v, want fire only on call 3", call, out.Err)
		}
		if call == 3 {
			if !errors.Is(out.Err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", out.Err)
			}
			var fe *Error
			if !errors.As(out.Err, &fe) || fe.Point != "wal.fsync" || fe.Call != 3 {
				t.Fatalf("injected error carries wrong metadata: %v", out.Err)
			}
		}
	}
	if got := g.Fired()["wal.fsync"]; got != 1 {
		t.Fatalf("nth rule fired %d times, want 1", got)
	}
}

func TestEveryAndCount(t *testing.T) {
	g := New(1)
	g.MustAdd(Rule{Point: "conn.write", Every: 2, Count: 2, Act: ActDrop})
	fires := 0
	for call := 1; call <= 10; call++ {
		out := g.Eval("conn.write", 8)
		if out.Err != nil {
			fires++
			if !out.Drop {
				t.Fatalf("drop rule fired without Drop set")
			}
			if call != 2 && call != 4 {
				t.Fatalf("fired on call %d, want calls 2 and 4 only", call)
			}
		}
	}
	if fires != 2 {
		t.Fatalf("count=2 rule fired %d times", fires)
	}
}

func TestAfterBytesAndShort(t *testing.T) {
	g := New(1)
	g.MustAdd(Rule{Point: "wal.write", After: 100, Act: ActShort, Bytes: 3})
	if out := g.Eval("wal.write", 64); out.Err != nil {
		t.Fatalf("fired at 64 bytes, threshold is 100")
	}
	out := g.Eval("wal.write", 64) // cumulative 128 >= 100
	if out.Err == nil || out.Short != 3 {
		t.Fatalf("want short=3 failure at 128 bytes, got %+v", out)
	}
}

func TestProbIsSeededAndDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		g := New(seed)
		g.MustAdd(Rule{Point: "p", Prob: 0.3, Act: ActError})
		var fired []int
		for i := 0; i < 200; i++ {
			if g.Eval("p", 0).Err != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob=0.3 fired %d/200 times — trigger looks broken", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDelayOutcome(t *testing.T) {
	g := New(1)
	g.MustAdd(Rule{Point: "p", Always: true, Act: ActDelay, Delay: 5 * time.Millisecond})
	out := g.Eval("p", 0)
	if out.Err != nil || out.Sleep != 5*time.Millisecond {
		t.Fatalf("delay rule produced %+v", out)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	g := New(1)
	g.MustAdd(Rule{Point: "p", Nth: 1, Act: ActError})
	g.MustAdd(Rule{Point: "p", Always: true, Act: ActDrop})
	out := g.Eval("p", 0)
	if out.Err == nil || out.Drop {
		t.Fatalf("first rule should shadow the second on call 1: %+v", out)
	}
	out = g.Eval("p", 0)
	if !out.Drop {
		t.Fatalf("second rule should fire once the nth rule is spent: %+v", out)
	}
}

func TestParse(t *testing.T) {
	g, err := Parse(7, "wal.fsync:nth=3:error, conn.write:prob=0.5:drop, wal.write:after=4096:short=3, conn.read:every=10:delay=2ms:count=5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n := len(g.rules); n != 4 {
		t.Fatalf("parsed %d rules, want 4", n)
	}
	r := g.rules[2]
	if r.Point != "wal.write" || r.After != 4096 || r.Act != ActShort || r.Bytes != 3 {
		t.Fatalf("rule 2 parsed wrong: %+v", r.Rule)
	}
	if g.rules[3].Count != 5 || g.rules[3].Delay != 2*time.Millisecond {
		t.Fatalf("rule 3 parsed wrong: %+v", g.rules[3].Rule)
	}
	if g, err := Parse(1, ""); err != nil || len(g.rules) != 0 {
		t.Fatalf("empty spec should parse to an empty registry: %v", err)
	}
	for _, bad := range []string{
		"wal.fsync", "wal.fsync:nth=0:error", "wal.fsync:sometimes:error",
		"wal.fsync:nth=1:explode", "p:prob=1.5:error", "p:nth=1:error:count=0",
		"p:nth=1:error:extra=1",
	} {
		if _, err := Parse(1, bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestValidateRejectsAmbiguousTriggers(t *testing.T) {
	g := New(1)
	if err := g.Add(Rule{Point: "p", Nth: 1, Always: true, Act: ActError}); err == nil {
		t.Fatalf("two triggers on one rule should be rejected")
	}
	if err := g.Add(Rule{Point: "", Nth: 1, Act: ActError}); err == nil {
		t.Fatalf("empty point should be rejected")
	}
	if err := g.Add(Rule{Point: "p", Act: ActError}); err == nil {
		t.Fatalf("no trigger should be rejected")
	}
}

func TestConcurrentEval(t *testing.T) {
	g := New(1)
	g.MustAdd(Rule{Point: "p", Every: 7, Act: ActError})
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for j := 0; j < 700; j++ {
				if g.Eval("p", 1).Err != nil {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != 800 {
		t.Fatalf("every=7 over 5600 calls fired %d times, want 800", total)
	}
}
