package fault

import (
	"net"
	"time"
)

// Conn wraps a net.Conn with the registry's "conn.read" and
// "conn.write" injection points. A firing error or drop rule severs
// the underlying connection, so the peer observes a real teardown —
// the shape of failure the client's pending-call contract is tested
// against. Short rules on conn.write deliver a torn frame (a prefix
// reaches the wire, then the conn dies mid-frame).
type Conn struct {
	net.Conn
	Reg *Registry
}

// WrapConn returns c with faults from reg armed on it; with a nil
// registry it returns c unchanged.
func WrapConn(c net.Conn, reg *Registry) net.Conn {
	if reg == nil {
		return c
	}
	return &Conn{Conn: c, Reg: reg}
}

func (c *Conn) Read(p []byte) (int, error) {
	out := c.Reg.Eval("conn.read", len(p))
	if out.Sleep > 0 {
		time.Sleep(out.Sleep)
	}
	if out.Err != nil {
		_ = c.Conn.Close()
		return 0, out.Err
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	out := c.Reg.Eval("conn.write", len(p))
	if out.Sleep > 0 {
		time.Sleep(out.Sleep)
	}
	if out.Err == nil {
		return c.Conn.Write(p)
	}
	n := 0
	if out.Short > 0 {
		short := out.Short
		if short > len(p) {
			short = len(p)
		}
		n, _ = c.Conn.Write(p[:short])
	}
	_ = c.Conn.Close()
	return n, out.Err
}
