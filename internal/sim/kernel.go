// Package sim is a small discrete-event simulation kernel with
// goroutine-backed processes. It exists so the repository can model an
// asymmetric multicore machine (internal/amp) deterministically: the
// kernel runs exactly one goroutine at a time (either the event loop or
// a single resumed process), so simulated state needs no locking and a
// given seed always produces the identical event trace.
//
// Time is virtual, in int64 nanoseconds. Events fire in (time, sequence)
// order; sequence numbers break ties in scheduling order, which is what
// makes runs reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// event is one scheduled callback.
type event struct {
	at  int64
	seq uint64
	fn  func()
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Kernel owns the virtual clock, the event queue and all processes.
// All methods must be called from kernel context: inside an event
// callback, inside a process body, or before Run starts.
type Kernel struct {
	now    int64
	seq    uint64
	events eventHeap
	yield  chan struct{} // procs signal the kernel here when they block
	procs  []*Proc
	closed bool
}

// NewKernel returns an empty kernel at time 0.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time in nanoseconds.
func (k *Kernel) Now() int64 { return k.now }

// Schedule runs fn at now+delay (in kernel context). delay < 0 panics.
func (k *Kernel) Schedule(delay int64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.seq++
	heap.Push(&k.events, event{at: k.now + delay, seq: k.seq, fn: fn})
}

// Run executes events until the queue drains or virtual time exceeds
// until (inclusive). It returns the time of the last executed event.
func (k *Kernel) Run(until int64) int64 {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(event)
		if e.at > until {
			// Push back so a later Run call can continue.
			heap.Push(&k.events, e)
			k.now = until
			return k.now
		}
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		e.fn()
	}
	return k.now
}

// RunAll executes events until the queue drains.
func (k *Kernel) RunAll() int64 { return k.Run(int64(^uint64(0) >> 1)) }

// Shutdown terminates all still-blocked processes (their goroutines
// unwind via an internal panic that the process wrapper recovers).
// Call after Run when abandoning a simulation early, so goroutines do
// not leak across benchmark iterations.
func (k *Kernel) Shutdown() {
	k.closed = true
	for _, p := range k.procs {
		if p.alive && p.blocked {
			p.blocked = false
			p.resume <- struct{}{}
			<-k.yield
		}
	}
	k.procs = nil
}

// killSignal unwinds a process goroutine during Shutdown.
type killSignal struct{}

// Proc is a simulated process (the model of one software thread). Its
// body runs on a dedicated goroutine, but the kernel guarantees only
// one goroutine is ever runnable, so bodies may touch shared simulator
// state freely.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	alive   bool
	blocked bool
}

// Spawn creates a process and schedules its body to start after delay.
func (k *Kernel) Spawn(name string, delay int64, body func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	p.alive = true
	p.blocked = true // parked at the initial <-p.resume
	k.procs = append(k.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					panic(r)
				}
			}
			p.alive = false
			k.yield <- struct{}{}
		}()
		<-p.resume
		if k.closed {
			panic(killSignal{})
		}
		body(p)
	}()
	k.Schedule(delay, func() { k.handoff(p) })
	return p
}

// handoff transfers control to p until it blocks or terminates. Must
// run in kernel context.
func (k *Kernel) handoff(p *Proc) {
	if !p.alive {
		return
	}
	if !p.blocked {
		// Two wake sources raced (e.g. a timeout event and a queue
		// grant). Simulated synchronisation objects must cancel stale
		// wakeups; surfacing the bug beats silently corrupting time.
		panic("sim: resume of a process that is not blocked: " + p.name)
	}
	p.blocked = false
	p.resume <- struct{}{}
	<-k.yield
}

// Name returns the process name (for traces and tests).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() int64 { return p.k.Now() }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// yieldToKernel blocks the calling process until something resumes it.
func (p *Proc) yieldToKernel() {
	p.blocked = true
	p.k.yield <- struct{}{}
	<-p.resume
	if p.k.closed {
		panic(killSignal{})
	}
}

// Sleep suspends the process for d virtual nanoseconds.
func (p *Proc) Sleep(d int64) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		// Even a zero-length sleep is a scheduling point: other events
		// at the same timestamp that were scheduled earlier run first.
		p.k.Schedule(0, func() { p.k.handoff(p) })
		p.yieldToKernel()
		return
	}
	p.k.Schedule(d, func() { p.k.handoff(p) })
	p.yieldToKernel()
}

// Suspend blocks the process until another process or event calls
// Resume. Use WaitQueue for the common queueing patterns.
func (p *Proc) Suspend() { p.yieldToKernel() }

// Resume schedules p to continue after delay. It must only be called
// for a process that is (or is about to be) suspended via Suspend;
// resuming a sleeping process is a bug in the caller.
func (p *Proc) Resume(delay int64) {
	p.k.Schedule(delay, func() { p.k.handoff(p) })
}

// WaitQueue is a FIFO of suspended processes, the building block for
// simulated locks and schedulers.
type WaitQueue struct {
	procs []*Proc
}

// Len returns the number of waiting processes.
func (q *WaitQueue) Len() int { return len(q.procs) }

// Empty reports whether no process waits.
func (q *WaitQueue) Empty() bool { return len(q.procs) == 0 }

// Wait appends p and suspends it. The caller resumes inside kernel
// context once WakeOne/WakeAll (or Remove+Resume) releases it.
func (q *WaitQueue) Wait(p *Proc) {
	q.procs = append(q.procs, p)
	p.Suspend()
}

// WakeOne resumes the process at the head of the queue after delay and
// returns it, or nil if the queue is empty.
func (q *WaitQueue) WakeOne(delay int64) *Proc {
	if len(q.procs) == 0 {
		return nil
	}
	p := q.procs[0]
	q.procs = q.procs[1:]
	p.Resume(delay)
	return p
}

// WakeAll resumes every waiting process after delay.
func (q *WaitQueue) WakeAll(delay int64) {
	for _, p := range q.procs {
		p.Resume(delay)
	}
	q.procs = nil
}

// Remove deletes p from the queue without resuming it; it returns
// whether p was present. Used for timeout paths.
func (q *WaitQueue) Remove(p *Proc) bool {
	for i, x := range q.procs {
		if x == p {
			q.procs = append(q.procs[:i], q.procs[i+1:]...)
			return true
		}
	}
	return false
}

// PopAt removes and returns the i-th waiter without resuming it.
func (q *WaitQueue) PopAt(i int) *Proc {
	p := q.procs[i]
	q.procs = append(q.procs[:i], q.procs[i+1:]...)
	return p
}

// At returns the i-th waiter.
func (q *WaitQueue) At(i int) *Proc { return q.procs[i] }
