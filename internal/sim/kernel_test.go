package sim

import (
	"testing"
)

func TestKernelEventOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %d, want 30", k.Now())
	}
}

func TestKernelTieBreakBySchedulingOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events must fire in scheduling order: %v", got)
		}
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(10, func() { fired++ })
	k.Schedule(100, func() { fired++ })
	k.Run(50)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (second event beyond the limit)", fired)
	}
	if k.Now() != 50 {
		t.Fatalf("now = %d, want clamped to 50", k.Now())
	}
	k.Run(200) // the deferred event must still fire on a later Run
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	NewKernel().Schedule(-1, func() {})
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var times []int64
	k.Spawn("p", 0, func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(100)
		times = append(times, p.Now())
		p.Sleep(0) // zero-length sleep is a valid scheduling point
		times = append(times, p.Now())
	})
	k.RunAll()
	if len(times) != 3 || times[0] != 0 || times[1] != 100 || times[2] != 100 {
		t.Fatalf("times = %v", times)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", 0, func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	k.Spawn("b", 5, func(p *Proc) {
		order = append(order, "b5")
		p.Sleep(10)
		order = append(order, "b15")
	})
	k.RunAll()
	want := []string{"a0", "b5", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSuspendResume(t *testing.T) {
	k := NewKernel()
	var q WaitQueue
	var got []int64
	k.Spawn("waiter", 0, func(p *Proc) {
		q.Wait(p)
		got = append(got, p.Now())
	})
	k.Spawn("waker", 0, func(p *Proc) {
		p.Sleep(42)
		q.WakeOne(8)
	})
	k.RunAll()
	if len(got) != 1 || got[0] != 50 {
		t.Fatalf("waiter resumed at %v, want [50]", got)
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	k := NewKernel()
	var q WaitQueue
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, 0, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	k.Spawn("waker", 10, func(p *Proc) {
		for q.Len() > 0 {
			q.WakeOne(0)
			p.Sleep(1)
		}
	})
	k.RunAll()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("wake order = %v, want FIFO", order)
	}
}

func TestWaitQueueWakeAllAndRemove(t *testing.T) {
	k := NewKernel()
	var q WaitQueue
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", 0, func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	k.Spawn("waker", 10, func(p *Proc) {
		if q.Len() != 3 {
			t.Errorf("queue length = %d, want 3", q.Len())
		}
		q.WakeAll(0)
	})
	k.RunAll()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestShutdownKillsBlockedProcs(t *testing.T) {
	k := NewKernel()
	var q WaitQueue
	reached := false
	k.Spawn("stuck", 0, func(p *Proc) {
		q.Wait(p)
		reached = true // must never run
	})
	k.Run(1000)
	k.Shutdown()
	if reached {
		t.Fatal("blocked proc must not continue past Shutdown")
	}
}

func TestShutdownKillsUnstartedProcs(t *testing.T) {
	k := NewKernel()
	started := false
	k.Spawn("late", 1_000_000, func(p *Proc) { started = true })
	k.Run(10) // start event never fires
	k.Shutdown()
	if started {
		t.Fatal("unstarted proc body must not run")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := NewKernel()
		var trace []int64
		for i := 0; i < 5; i++ {
			i := i
			k.Spawn("p", int64(i), func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(int64(7 + i))
					trace = append(trace, int64(i)*1000000+p.Now())
				}
			})
		}
		k.RunAll()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStaleResumeOnDeadProcIgnored(t *testing.T) {
	// A resume that fires after the target terminated must be silently
	// dropped (the handoff checks liveness), not corrupt the kernel.
	k := NewKernel()
	var victim *Proc
	k.Spawn("victim", 0, func(p *Proc) {
		victim = p
		p.Suspend() // woken once by the attacker, then the body ends
	})
	k.Spawn("attacker", 10, func(p *Proc) {
		victim.Resume(0)
		victim.Resume(5) // fires after the victim has terminated
	})
	k.RunAll()
	if k.Now() != 15 {
		t.Fatalf("clock = %d, want 15 (stale resume event still advanced time)", k.Now())
	}
}
