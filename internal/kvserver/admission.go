package kvserver

import (
	"sync"
	"sync/atomic"
)

// Class-aware admission at the serving boundary. Dice & Kogan's
// concurrency-restriction argument is that a saturated lock serves
// best with FEW active threads — extra entrants only lengthen the
// convoy. The shard lock's ASL policy already restricts concurrency
// among waiters; the admission gate applies the same idea one layer
// up, before a request touches the store at all: at most BulkPerShard
// bulk-class operations may be in flight per shard, a bounded number
// more may wait passively, and everything beyond that is REJECTED
// (StatusErrAdmission) so overload sheds instead of queueing without
// bound. Interactive requests bypass the gate entirely — keeping the
// latency-sensitive fast path free of even an uncontended semaphore
// hop is the Fissile-Locks instinct applied to admission.

// AdmissionConfig bounds in-flight bulk operations.
type AdmissionConfig struct {
	// BulkPerShard is the max concurrently executing bulk ops per
	// shard (point ops gate on their key's shard; batch, scan and
	// flush ops gate on one global slot of the same width, since they
	// touch many shards). 0 means DefaultBulkPerShard; negative
	// disables the gate.
	BulkPerShard int
	// BulkWaiters is the max bulk ops allowed to WAIT per gate beyond
	// the in-flight bound before new arrivals are rejected. 0 means
	// 4 × BulkPerShard; negative means no waiting at all (reject the
	// moment the in-flight bound is hit). The bound is enforced
	// against a racy read of the waiter count, so it is approximate
	// under heavy concurrent arrival — a shed-load heuristic, not a
	// hard rail (the in-flight bound IS hard).
	BulkWaiters int
}

// DefaultBulkPerShard is the default per-shard bulk in-flight bound.
// Small on purpose: one combining drain already serves a whole ring,
// so a handful of concurrent bulk entrants saturate a shard.
const DefaultBulkPerShard = 4

// globalGate keys the gate shared by multi-shard ops.
const globalGate = -1

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.BulkPerShard == 0 {
		c.BulkPerShard = DefaultBulkPerShard
	}
	if c.BulkWaiters == 0 && c.BulkPerShard > 0 {
		c.BulkWaiters = 4 * c.BulkPerShard
	}
	return c
}

// gate is one shard's bulk admission state: a token semaphore (channel
// capacity = in-flight bound) plus a waiter counter.
type gate struct {
	tokens  chan struct{}
	waiters atomic.Int64
}

// admission is the server-wide gate set, one gate per shard id plus
// the global gate. Gates are created lazily (resharding grows the id
// space at runtime).
type admission struct {
	limit     int
	waiterCap int
	mu        sync.Mutex
	gates     map[int]*gate
	rejected  atomic.Uint64
	waited    atomic.Uint64
}

func newAdmission(cfg AdmissionConfig) *admission {
	cfg = cfg.withDefaults()
	if cfg.BulkPerShard < 0 {
		return nil // gate disabled
	}
	return &admission{
		limit:     cfg.BulkPerShard,
		waiterCap: cfg.BulkWaiters,
		gates:     make(map[int]*gate),
	}
}

func (a *admission) gateFor(shard int) *gate {
	a.mu.Lock()
	g := a.gates[shard]
	if g == nil {
		g = &gate{tokens: make(chan struct{}, a.limit)}
		a.gates[shard] = g
	}
	a.mu.Unlock()
	return g
}

// enter admits one bulk op on shard (globalGate for multi-shard ops):
// immediately when an in-flight slot is free, after a passive wait
// when the waiter bound allows, not at all otherwise. The returned
// gate must be released via exit iff admitted.
func (a *admission) enter(shard int) (*gate, bool) {
	g := a.gateFor(shard)
	select {
	case g.tokens <- struct{}{}:
		return g, true
	default:
	}
	if g.waiters.Load() >= int64(a.waiterCap) {
		a.rejected.Add(1)
		return nil, false
	}
	g.waiters.Add(1)
	a.waited.Add(1)
	g.tokens <- struct{}{}
	g.waiters.Add(-1)
	return g, true
}

// exit releases an admitted op's slot.
func (a *admission) exit(g *gate) { <-g.tokens }

// AdmissionStats is a snapshot of the gate set.
type AdmissionStats struct {
	// InFlight and Waiting are the current bulk ops holding slots and
	// blocked on slots, summed across gates (the queue-depth signal).
	InFlight, Waiting int64
	// Waited counts admissions that had to block first; Rejected
	// counts arrivals shed with StatusErrAdmission.
	Waited, Rejected uint64
}

func (a *admission) stats() AdmissionStats {
	st := AdmissionStats{
		Waited:   a.waited.Load(),
		Rejected: a.rejected.Load(),
	}
	a.mu.Lock()
	for _, g := range a.gates {
		st.InFlight += int64(len(g.tokens))
		st.Waiting += g.waiters.Load()
	}
	a.mu.Unlock()
	return st
}
