package kvserver

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoFile reads a file relative to the repository root.
func repoFile(t *testing.T, rel string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", rel))
	if err != nil {
		t.Fatalf("missing %s: %v (the docs are part of the protocol contract)", rel, err)
	}
	return string(data)
}

// TestProtocolDocMatchesCode pins docs/protocol.md to the codec: every
// opcode, class and status byte must appear in the spec with its
// exact value, the magic and the limits must match, and renumbering
// anything here without touching the doc fails CI.
func TestProtocolDocMatchesCode(t *testing.T) {
	doc := repoFile(t, "docs/protocol.md")

	row := func(name string, val uint8) string {
		return fmt.Sprintf("| `%s` | `0x%02x` |", name, val)
	}
	wantRows := map[string]uint8{
		"OpGet":                OpGet,
		"OpPut":                OpPut,
		"OpDelete":             OpDelete,
		"OpMultiGet":           OpMultiGet,
		"OpMultiPut":           OpMultiPut,
		"OpRange":              OpRange,
		"OpFlush":              OpFlush,
		"OpStats":              OpStats,
		"ClassInteractive":     ClassInteractive,
		"ClassBulk":            ClassBulk,
		"StatusOK":             StatusOK,
		"StatusErrMalformed":   StatusErrMalformed,
		"StatusErrUnknownOp":   StatusErrUnknownOp,
		"StatusErrAdmission":   StatusErrAdmission,
		"StatusErrTooLarge":    StatusErrTooLarge,
		"StatusErrShutdown":    StatusErrShutdown,
		"StatusErrUnavailable": StatusErrUnavailable,
	}
	for name, val := range wantRows {
		if !strings.Contains(doc, row(name, val)) {
			t.Errorf("docs/protocol.md lacks the row %q — spec and code drifted", row(name, val))
		}
	}

	if !strings.Contains(doc, fmt.Sprintf("%q", Magic)) {
		t.Errorf("docs/protocol.md does not state the magic %q", Magic)
	}
	// Note the division of labour: this test pins the DOC to the code
	// (every byte value above comes from the real constants), while the
	// append-only/no-renumbering rule for the enum families themselves
	// is machine-checked by the wireconst analyzer (`make lint`,
	// internal/analysis/passes/wireconst) — it no longer needs a
	// hand-maintained re-assertion here.
	limits := map[string]string{
		"MaxFrame":      "`1<<24`",
		"MaxBatchOps":   "`1<<16`",
		"MaxValueLen":   "`1<<20`",
		"MaxRangePairs": "`1<<16`",
	}
	for name, lit := range limits {
		if !strings.Contains(doc, fmt.Sprintf("| `%s` | %s |", name, lit)) {
			t.Errorf("docs/protocol.md limits table lacks %s = %s", name, lit)
		}
	}
}

// TestArchitectureDocCoversServingPath keeps ARCHITECTURE.md honest
// about the layers it promises to explain.
func TestArchitectureDocCoversServingPath(t *testing.T) {
	doc := repoFile(t, "ARCHITECTURE.md")
	for _, want := range []string{
		"kvclient", "kvserver", "admission", "shard map", "ASL",
		"combiner", "docs/protocol.md", "ClassHint",
		// The machine-checked invariants section and its analyzers.
		"Enforced invariants", "repolint", "classhintpair",
		"lockheldcall", "lockorder", "atomicfield",
		"electprobe", "wireconst", "Lock ordering",
		// The contributor-guide sections.
		"add an engine", "add a lock", "add a mix", "add an analyzer",
		// The durability layer (§9) and its load-bearing names.
		"Durability", "internal/wal", "group commit", "ops_per_fsync",
		"CURRENT", "shardedkv.KV", "Snapshotter", "Compactor",
		"SyncWait", "SyncAsync", "wal-smoke", "kvcheck",
		// The fault/degraded layer and its load-bearing names.
		"Fault handling & degraded mode", "internal/fault",
		"wal.FaultFS", "ErrInjected", "DegradedError", "IsDegraded",
		"StatusErrUnavailable", "IsRetryable", "kvsoak", "make soak",
		"statustext",
		// Biased locking (§6a) and its load-bearing names.
		"Biased locking", "locks.Biased", "revocation", "HintAdopt",
		"Revoke", "bias_revocations",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("ARCHITECTURE.md does not mention %q", want)
		}
	}
}

// TestProtocolDocCoversSyncPolicy pins the durable-server semantics
// the spec promises: the per-class sync policy section and the
// OpFlush durability-barrier note.
func TestProtocolDocCoversSyncPolicy(t *testing.T) {
	doc := repoFile(t, "docs/protocol.md")
	for _, want := range []string{
		"Sync policy", "-wal", "group commit", "durability promise",
		"OpFlush", "durable",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/protocol.md does not mention %q", want)
		}
	}
}

// TestProtocolDocCoversDegradedMode pins the degraded-mode contract:
// the spec must state that a failed durability promise maps to
// StatusErrUnavailable, that reads keep serving, and that the status
// is retryable by contract.
func TestProtocolDocCoversDegradedMode(t *testing.T) {
	doc := repoFile(t, "docs/protocol.md")
	for _, want := range []string{
		"Degraded mode", "StatusErrUnavailable", "read-only",
		"reads keep serving", "retryable", "IsRetryable",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/protocol.md does not mention %q", want)
		}
	}
}
