// Package kvserver is the network front end of the sharded
// asymmetry-aware KV layer: a length-prefixed binary protocol over TCP
// in which EVERY request carries an SLO class byte that the server
// maps to the lock class used for that operation. Interactive requests
// run big-class (ASL fast path; under the combining pipeline they
// elect and spin), bulk requests run little-class (reorder/standby at
// the lock; under the pipeline they enqueue and park) — per-request
// admission at the serving boundary, replacing per-goroutine class
// assignment. A class-aware admission gate additionally bounds
// in-flight bulk operations per shard (interactive traffic bypasses
// it), in the spirit of Dice & Kogan's concurrency restriction.
//
// The wire format is specified normatively in docs/protocol.md; this
// file is the codec. Frames are length-prefixed; the decoder treats
// every malformed input as an error (never a panic), so a hostile peer
// can at worst get its own connection closed.
//
// internal/kvclient implements the matching concurrent, pipelining
// client; cmd/kvserver is the standalone binary; cmd/kvbench -net
// drives the whole engine×mix×lock grid over the wire.
package kvserver

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/shardedkv"
)

// Magic is the 4-byte connection preamble ("aKV" + protocol version
// digit). A server closes any connection whose preamble does not match
// (see docs/protocol.md, Versioning).
const Magic = "aKV1"

// Protocol limits. The decoder enforces all of them; encoders refuse
// to build frames that break them.
const (
	// MaxFrame bounds one frame's post-length-prefix size: a malformed
	// or hostile length prefix cannot make a peer allocate more.
	MaxFrame = 1 << 24 // 16 MiB
	// MaxBatchOps bounds the element count of MultiGet/MultiPut.
	MaxBatchOps = 1 << 16
	// MaxValueLen bounds one value.
	MaxValueLen = 1 << 20 // 1 MiB
	// MaxRangePairs bounds the pairs one Range response returns; a
	// request asking for more (Limit 0 = "no limit") is clamped and
	// the response's More flag set.
	MaxRangePairs = 1 << 16
	// headerLen is the fixed request/response header after the length
	// prefix: id u64 + opcode/status u8 + class/flags u8.
	headerLen = 10
)

// Opcodes. Values are part of the wire contract (docs/protocol.md);
// never renumber, only append.
const (
	OpGet      uint8 = 0x01
	OpPut      uint8 = 0x02
	OpDelete   uint8 = 0x03
	OpMultiGet uint8 = 0x04
	OpMultiPut uint8 = 0x05
	OpRange    uint8 = 0x06
	OpFlush    uint8 = 0x07
	OpStats    uint8 = 0x08
)

// Class is the per-request SLO class byte: the client's latency
// contract, which the server maps to the lock class of the operation.
const (
	// ClassInteractive marks latency-sensitive requests: big-class at
	// the shard lock (immediate FIFO admission; elect/combine/spin on
	// the pipeline), admission-gate bypass.
	ClassInteractive uint8 = 0x00
	// ClassBulk marks throughput/batch requests: little-class at the
	// shard lock (reorder window standby; enqueue/park on the
	// pipeline), bounded per-shard in-flight admission.
	ClassBulk uint8 = 0x01
)

// Status codes. 0 is success; everything else is an error whose
// payload is a human-readable message.
const (
	StatusOK           uint8 = 0x00
	StatusErrMalformed uint8 = 0x01
	StatusErrUnknownOp uint8 = 0x02
	StatusErrAdmission uint8 = 0x03
	StatusErrTooLarge  uint8 = 0x04
	StatusErrShutdown  uint8 = 0x05
	// StatusErrUnavailable: the store refused the write's durability
	// promise (a shard is degraded after a log failure). Reads keep
	// serving; the write was NOT durably acked and is safe to retry
	// against a recovered server.
	StatusErrUnavailable uint8 = 0x06
)

// statusText names every status for errors and logs.
var statusText = map[uint8]string{
	StatusOK:             "ok",
	StatusErrMalformed:   "malformed request",
	StatusErrUnknownOp:   "unknown opcode",
	StatusErrAdmission:   "bulk admission rejected",
	StatusErrTooLarge:    "frame too large",
	StatusErrShutdown:    "server shutting down",
	StatusErrUnavailable: "store degraded",
}

// StatusText returns the name of a status code.
func StatusText(st uint8) string {
	if s, ok := statusText[st]; ok {
		return s
	}
	return fmt.Sprintf("status 0x%02x", st)
}

// Request is one decoded request frame.
type Request struct {
	ID    uint64
	Op    uint8
	Class uint8

	Key   uint64           // Get / Put / Delete
	Value []byte           // Put (aliases the frame buffer — copy to retain)
	Keys  []uint64         // MultiGet
	KVs   []shardedkv.Pair // MultiPut (values alias the frame buffer)
	Lo    uint64           // Range
	Hi    uint64           // Range
	Limit uint32           // Range: max pairs; 0 = server default
}

// wireErr builds a decode error; every malformed-input path funnels
// through here so fuzzing can assert "error, not panic".
func wireErr(format string, args ...any) error {
	return fmt.Errorf("kvserver: %s", fmt.Sprintf(format, args...))
}

// rd is a bounds-checked little reader over one frame.
type rd struct {
	b   []byte
	off int
}

func (r *rd) remain() int { return len(r.b) - r.off }

func (r *rd) u8() (uint8, error) {
	if r.remain() < 1 {
		return 0, wireErr("truncated frame: want u8 at %d, len %d", r.off, len(r.b))
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *rd) u32() (uint32, error) {
	if r.remain() < 4 {
		return 0, wireErr("truncated frame: want u32 at %d, len %d", r.off, len(r.b))
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *rd) u64() (uint64, error) {
	if r.remain() < 8 {
		return 0, wireErr("truncated frame: want u64 at %d, len %d", r.off, len(r.b))
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *rd) bytes(n int) ([]byte, error) {
	if n < 0 || r.remain() < n {
		return nil, wireErr("truncated frame: want %d bytes at %d, len %d", n, r.off, len(r.b))
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// value reads a u32-length-prefixed value, enforcing MaxValueLen.
func (r *rd) value() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxValueLen {
		return nil, wireErr("value length %d exceeds MaxValueLen %d", n, MaxValueLen)
	}
	return r.bytes(int(n))
}

// done errors unless the frame is fully consumed: trailing garbage is
// a malformed frame, not padding.
func (r *rd) done() error {
	if r.remain() != 0 {
		return wireErr("frame has %d trailing bytes", r.remain())
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from br into buf (grown as
// needed) and returns the frame bytes (length prefix stripped). io.EOF
// is returned bare on a clean close before the prefix.
func ReadFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(br, lb[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, wireErr("connection closed mid length prefix")
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n < headerLen {
		return nil, wireErr("frame length %d below header size %d", n, headerLen)
	}
	if n > MaxFrame {
		return nil, wireErr("frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, wireErr("connection closed mid frame: %v", err)
	}
	return buf, nil
}

// DecodeRequest decodes one request frame (as returned by ReadFrame).
// Slices in the result alias frame. Malformed input returns an error;
// the returned Request still carries the ID when at least the header
// decoded, so the server can answer StatusErrMalformed in-stream.
func DecodeRequest(frame []byte) (Request, error) {
	var req Request
	r := &rd{b: frame}
	var err error
	if req.ID, err = r.u64(); err != nil {
		return req, err
	}
	if req.Op, err = r.u8(); err != nil {
		return req, err
	}
	if req.Class, err = r.u8(); err != nil {
		return req, err
	}
	if req.Class != ClassInteractive && req.Class != ClassBulk {
		return req, wireErr("unknown class byte 0x%02x", req.Class)
	}
	switch req.Op {
	case OpGet, OpDelete:
		if req.Key, err = r.u64(); err != nil {
			return req, err
		}
	case OpPut:
		if req.Key, err = r.u64(); err != nil {
			return req, err
		}
		if req.Value, err = r.value(); err != nil {
			return req, err
		}
	case OpMultiGet:
		var n uint32
		if n, err = r.u32(); err != nil {
			return req, err
		}
		if n > MaxBatchOps {
			return req, wireErr("batch of %d keys exceeds MaxBatchOps %d", n, MaxBatchOps)
		}
		// Check the declared count against the bytes actually present
		// BEFORE allocating: a tiny frame must not buy a big slice.
		if int(n)*8 > r.remain() {
			return req, wireErr("batch of %d keys exceeds frame size %d", n, len(r.b))
		}
		req.Keys = make([]uint64, n)
		for i := range req.Keys {
			if req.Keys[i], err = r.u64(); err != nil {
				return req, err
			}
		}
	case OpMultiPut:
		var n uint32
		if n, err = r.u32(); err != nil {
			return req, err
		}
		if n > MaxBatchOps {
			return req, wireErr("batch of %d pairs exceeds MaxBatchOps %d", n, MaxBatchOps)
		}
		// One pair is at least key u64 + vlen u32: size-check before
		// allocating, as with MultiGet.
		if int(n)*12 > r.remain() {
			return req, wireErr("batch of %d pairs exceeds frame size %d", n, len(r.b))
		}
		req.KVs = make([]shardedkv.Pair, n)
		for i := range req.KVs {
			if req.KVs[i].Key, err = r.u64(); err != nil {
				return req, err
			}
			if req.KVs[i].Value, err = r.value(); err != nil {
				return req, err
			}
		}
	case OpRange:
		if req.Lo, err = r.u64(); err != nil {
			return req, err
		}
		if req.Hi, err = r.u64(); err != nil {
			return req, err
		}
		if req.Limit, err = r.u32(); err != nil {
			return req, err
		}
	case OpFlush, OpStats:
		// No payload.
	default:
		return req, wireErr("unknown opcode 0x%02x", req.Op)
	}
	if err := r.done(); err != nil {
		return req, err
	}
	return req, nil
}

// Frame building. Frames are appended to dst: a 4-byte length
// placeholder, the header, the payload, then the length backfilled.

func beginFrame(dst []byte, id uint64, b9, b10 uint8) ([]byte, int) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, b9, b10)
	return dst, start
}

func endFrame(dst []byte, start int) ([]byte, error) {
	n := len(dst) - start - 4
	if n > MaxFrame {
		return dst[:start], wireErr("encoded frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

func appendValue(dst, v []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(v)))
	return append(dst, v...)
}

// AppendRequest appends req as one frame to dst. It validates the
// same limits the decoder enforces, so an encoded frame always
// decodes.
func AppendRequest(dst []byte, req *Request) ([]byte, error) {
	if req.Class != ClassInteractive && req.Class != ClassBulk {
		return dst, wireErr("unknown class byte 0x%02x", req.Class)
	}
	out, start := beginFrame(dst, req.ID, req.Op, req.Class)
	switch req.Op {
	case OpGet, OpDelete:
		out = binary.BigEndian.AppendUint64(out, req.Key)
	case OpPut:
		if len(req.Value) > MaxValueLen {
			return dst, wireErr("value length %d exceeds MaxValueLen %d", len(req.Value), MaxValueLen)
		}
		out = binary.BigEndian.AppendUint64(out, req.Key)
		out = appendValue(out, req.Value)
	case OpMultiGet:
		if len(req.Keys) > MaxBatchOps {
			return dst, wireErr("batch of %d keys exceeds MaxBatchOps %d", len(req.Keys), MaxBatchOps)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(req.Keys)))
		for _, k := range req.Keys {
			out = binary.BigEndian.AppendUint64(out, k)
		}
	case OpMultiPut:
		if len(req.KVs) > MaxBatchOps {
			return dst, wireErr("batch of %d pairs exceeds MaxBatchOps %d", len(req.KVs), MaxBatchOps)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(req.KVs)))
		for _, kv := range req.KVs {
			if len(kv.Value) > MaxValueLen {
				return dst, wireErr("value length %d exceeds MaxValueLen %d", len(kv.Value), MaxValueLen)
			}
			out = binary.BigEndian.AppendUint64(out, kv.Key)
			out = appendValue(out, kv.Value)
		}
	case OpRange:
		out = binary.BigEndian.AppendUint64(out, req.Lo)
		out = binary.BigEndian.AppendUint64(out, req.Hi)
		out = binary.BigEndian.AppendUint32(out, req.Limit)
	case OpFlush, OpStats:
	default:
		return dst, wireErr("unknown opcode 0x%02x", req.Op)
	}
	return endFrame(out, start)
}

// FlagMore is the response-flag bit marking a truncated Range
// emission (the second header byte of a response carries flags).
const FlagMore uint8 = 0x01

// AppendGetResponse: found u8 | vlen u32 | v.
func AppendGetResponse(dst []byte, id uint64, v []byte, found bool) ([]byte, error) {
	out, start := beginFrame(dst, id, StatusOK, 0)
	out = append(out, boolByte(found))
	if found {
		out = appendValue(out, v)
	} else {
		out = appendValue(out, nil)
	}
	return endFrame(out, start)
}

// AppendBoolResponse: ok u8 (Put's inserted / Delete's present).
func AppendBoolResponse(dst []byte, id uint64, ok bool) ([]byte, error) {
	out, start := beginFrame(dst, id, StatusOK, 0)
	out = append(out, boolByte(ok))
	return endFrame(out, start)
}

// AppendMultiGetResponse: n u32 | n × (found u8 | vlen u32 | v).
func AppendMultiGetResponse(dst []byte, id uint64, vals [][]byte, found []bool) ([]byte, error) {
	out, start := beginFrame(dst, id, StatusOK, 0)
	out = binary.BigEndian.AppendUint32(out, uint32(len(vals)))
	for i, v := range vals {
		out = append(out, boolByte(found[i]))
		if found[i] {
			out = appendValue(out, v)
		} else {
			out = appendValue(out, nil)
		}
	}
	return endFrame(out, start)
}

// AppendMultiPutResponse: inserted u32.
func AppendMultiPutResponse(dst []byte, id uint64, inserted int) ([]byte, error) {
	out, start := beginFrame(dst, id, StatusOK, 0)
	out = binary.BigEndian.AppendUint32(out, uint32(inserted))
	return endFrame(out, start)
}

// AppendRangeResponse: n u32 | n × (key u64 | vlen u32 | v); the
// More flag marks a truncated emission.
func AppendRangeResponse(dst []byte, id uint64, kvs []shardedkv.Pair, more bool) ([]byte, error) {
	var flags uint8
	if more {
		flags |= FlagMore
	}
	out, start := beginFrame(dst, id, StatusOK, flags)
	out = binary.BigEndian.AppendUint32(out, uint32(len(kvs)))
	for _, kv := range kvs {
		out = binary.BigEndian.AppendUint64(out, kv.Key)
		out = appendValue(out, kv.Value)
	}
	return endFrame(out, start)
}

// AppendEmptyResponse: success with no payload (Flush).
func AppendEmptyResponse(dst []byte, id uint64) ([]byte, error) {
	out, start := beginFrame(dst, id, StatusOK, 0)
	return endFrame(out, start)
}

// AppendStatsResponse: raw JSON bytes (the frame delimits them).
func AppendStatsResponse(dst []byte, id uint64, jsonBody []byte) ([]byte, error) {
	out, start := beginFrame(dst, id, StatusOK, 0)
	out = append(out, jsonBody...)
	return endFrame(out, start)
}

// AppendErrorResponse: status != OK, payload = message bytes.
func AppendErrorResponse(dst []byte, id uint64, status uint8, msg string) ([]byte, error) {
	out, start := beginFrame(dst, id, status, 0)
	out = append(out, msg...)
	return endFrame(out, start)
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Response is one decoded response frame header plus its raw payload.
type Response struct {
	ID      uint64
	Status  uint8
	Flags   uint8
	Payload []byte // aliases the frame buffer
}

// DecodeResponse splits one response frame into header and payload.
func DecodeResponse(frame []byte) (Response, error) {
	var resp Response
	r := &rd{b: frame}
	var err error
	if resp.ID, err = r.u64(); err != nil {
		return resp, err
	}
	if resp.Status, err = r.u8(); err != nil {
		return resp, err
	}
	if resp.Flags, err = r.u8(); err != nil {
		return resp, err
	}
	resp.Payload = frame[r.off:]
	return resp, nil
}

// Payload decoders (client side). Each consumes a StatusOK payload of
// the corresponding op; results are copied out of the frame buffer.

// DecodeGetPayload returns (value, found).
func DecodeGetPayload(p []byte) ([]byte, bool, error) {
	r := &rd{b: p}
	f, err := r.u8()
	if err != nil {
		return nil, false, err
	}
	v, err := r.value()
	if err != nil {
		return nil, false, err
	}
	if err := r.done(); err != nil {
		return nil, false, err
	}
	if f == 0 {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// DecodeBoolPayload returns the single result byte.
func DecodeBoolPayload(p []byte) (bool, error) {
	r := &rd{b: p}
	b, err := r.u8()
	if err != nil {
		return false, err
	}
	if err := r.done(); err != nil {
		return false, err
	}
	return b != 0, nil
}

// DecodeMultiGetPayload returns per-key values and presence.
func DecodeMultiGetPayload(p []byte) ([][]byte, []bool, error) {
	r := &rd{b: p}
	n, err := r.u32()
	if err != nil {
		return nil, nil, err
	}
	if n > MaxBatchOps {
		return nil, nil, wireErr("response batch of %d exceeds MaxBatchOps %d", n, MaxBatchOps)
	}
	// One element is at least found u8 + vlen u32.
	if int(n)*5 > r.remain() {
		return nil, nil, wireErr("response batch of %d exceeds payload size %d", n, len(p))
	}
	vals := make([][]byte, n)
	found := make([]bool, n)
	for i := range vals {
		f, err := r.u8()
		if err != nil {
			return nil, nil, err
		}
		v, err := r.value()
		if err != nil {
			return nil, nil, err
		}
		if f != 0 {
			found[i] = true
			vals[i] = append([]byte(nil), v...)
		}
	}
	if err := r.done(); err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}

// DecodeMultiPutPayload returns the inserted count.
func DecodeMultiPutPayload(p []byte) (int, error) {
	r := &rd{b: p}
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if err := r.done(); err != nil {
		return 0, err
	}
	return int(n), nil
}

// DecodeRangePayload returns the pairs (copied out of the frame).
func DecodeRangePayload(p []byte) ([]shardedkv.Pair, error) {
	r := &rd{b: p}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxRangePairs {
		return nil, wireErr("range response of %d pairs exceeds MaxRangePairs %d", n, MaxRangePairs)
	}
	// One pair is at least key u64 + vlen u32.
	if int(n)*12 > r.remain() {
		return nil, wireErr("range response of %d pairs exceeds payload size %d", n, len(p))
	}
	kvs := make([]shardedkv.Pair, n)
	for i := range kvs {
		if kvs[i].Key, err = r.u64(); err != nil {
			return nil, err
		}
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		kvs[i].Value = append([]byte(nil), v...)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return kvs, nil
}
