package kvserver

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmissionInFlightBound hammers one gate from many goroutines
// and asserts the hard bound: never more than BulkPerShard holders at
// once. Run under -race this also exercises the gate's memory safety.
func TestAdmissionInFlightBound(t *testing.T) {
	const limit = 3
	a := newAdmission(AdmissionConfig{BulkPerShard: limit, BulkWaiters: 1 << 20})
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				g, ok := a.enter(0)
				if !ok {
					t.Error("rejected despite effectively unbounded waiters")
					return
				}
				cur := inFlight.Add(1)
				for {
					m := maxSeen.Load()
					if cur <= m || maxSeen.CompareAndSwap(m, cur) {
						break
					}
				}
				inFlight.Add(-1)
				a.exit(g)
			}
		}()
	}
	wg.Wait()
	if m := maxSeen.Load(); m > limit {
		t.Fatalf("observed %d concurrent holders, bound is %d", m, limit)
	}
	st := a.stats()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

// TestAdmissionRejects checks the shedding path: with no waiting
// allowed, arrivals beyond the in-flight bound are rejected and
// counted.
func TestAdmissionRejects(t *testing.T) {
	a := newAdmission(AdmissionConfig{BulkPerShard: 1, BulkWaiters: -1})
	g, ok := a.enter(0)
	if !ok {
		t.Fatal("first entry rejected")
	}
	if _, ok := a.enter(0); ok {
		t.Fatal("second entry admitted past the bound with waiting disabled")
	}
	// A different shard's gate is independent.
	g2, ok := a.enter(1)
	if !ok {
		t.Fatal("other shard's gate coupled")
	}
	a.exit(g2)
	a.exit(g)
	if _, ok := a.enter(0); !ok {
		t.Fatal("rejected after release")
	}
	st := a.stats()
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
}

// TestAdmissionWaits checks the passive-wait path: a second entrant
// within the waiter bound blocks until the first releases.
func TestAdmissionWaits(t *testing.T) {
	a := newAdmission(AdmissionConfig{BulkPerShard: 1, BulkWaiters: 4})
	g, _ := a.enter(0)
	entered := make(chan struct{})
	go func() {
		g2, ok := a.enter(0)
		if !ok {
			t.Error("waiter rejected within bound")
		} else {
			a.exit(g2)
		}
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("second entrant did not wait for the slot")
	case <-time.After(20 * time.Millisecond):
	}
	a.exit(g)
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never admitted after release")
	}
	if st := a.stats(); st.Waited == 0 {
		t.Fatalf("Waited = 0 after a blocking admission: %+v", st)
	}
}

// TestAdmissionDisabled: a negative per-shard bound turns the gate
// off entirely.
func TestAdmissionDisabled(t *testing.T) {
	if a := newAdmission(AdmissionConfig{BulkPerShard: -1}); a != nil {
		t.Fatal("negative BulkPerShard should disable the gate")
	}
}
