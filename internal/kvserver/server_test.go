// Integration tests: a live server driven through the real client
// (package kvserver_test so kvclient can be imported without a cycle).
package kvserver_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/kvclient"
	"repro/internal/kvserver"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/shardedkv"
)

// startServer builds a store from scfg, wraps it in a server with
// cfg's knobs, and returns the server plus its address. Cleanup is
// registered on t.
func startServer(t *testing.T, scfg shardedkv.Config, mod func(*kvserver.Config)) (*kvserver.Server, string) {
	t.Helper()
	st := shardedkv.New(scfg)
	cfg := kvserver.Config{
		Store:          st,
		SLOInteractive: 100 * time.Microsecond,
		SLOBulk:        2 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := kvserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

func dial(t *testing.T, addr string) *kvclient.Client {
	t.Helper()
	cl, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestClientServerBasic walks every operation once over the wire.
func TestClientServerBasic(t *testing.T) {
	_, addr := startServer(t, shardedkv.Config{Shards: 4}, nil)
	cl := dial(t, addr)

	if _, found, err := cl.Get(kvserver.ClassInteractive, 1); err != nil || found {
		t.Fatalf("get on empty store: found=%v err=%v", found, err)
	}
	ins, err := cl.Put(kvserver.ClassInteractive, 1, []byte("one"))
	if err != nil || !ins {
		t.Fatalf("put: inserted=%v err=%v", ins, err)
	}
	ins, err = cl.Put(kvserver.ClassBulk, 1, []byte("uno"))
	if err != nil || ins {
		t.Fatalf("overwrite put: inserted=%v err=%v", ins, err)
	}
	v, found, err := cl.Get(kvserver.ClassBulk, 1)
	if err != nil || !found || string(v) != "uno" {
		t.Fatalf("get: %q found=%v err=%v", v, found, err)
	}

	if _, err := cl.MultiPut(kvserver.ClassBulk, []shardedkv.Pair{
		{Key: 2, Value: []byte("two")}, {Key: 3, Value: []byte("three")},
	}); err != nil {
		t.Fatal(err)
	}
	vals, founds, err := cl.MultiGet(kvserver.ClassInteractive, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !founds[0] || !founds[1] || !founds[2] || founds[3] {
		t.Fatalf("multiget founds: %v", founds)
	}
	if string(vals[1]) != "two" {
		t.Fatalf("multiget vals: %q", vals[1])
	}

	kvs, more, err := cl.Range(kvserver.ClassBulk, 0, 100, 0)
	if err != nil || more {
		t.Fatalf("range: more=%v err=%v", more, err)
	}
	if len(kvs) != 3 || kvs[0].Key != 1 || kvs[2].Key != 3 {
		t.Fatalf("range pairs: %v", kvs)
	}
	kvs, more, err = cl.Range(kvserver.ClassBulk, 0, 100, 2)
	if err != nil || !more || len(kvs) != 2 {
		t.Fatalf("limited range: %d pairs, more=%v err=%v", len(kvs), more, err)
	}

	present, err := cl.Delete(kvserver.ClassInteractive, 2)
	if err != nil || !present {
		t.Fatalf("delete: present=%v err=%v", present, err)
	}
	if err := cl.Flush(kvserver.ClassBulk); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Interactive.Ops == 0 || st.Bulk.Ops == 0 {
		t.Fatalf("per-class ops not counted: %+v", st)
	}
	if st.Shards != 4 || st.Conns != 1 {
		t.Fatalf("stats topology: %+v", st)
	}
}

// TestPipelinedServer runs the basics against a combining-pipeline
// server (AsyncStore under the protocol).
func TestPipelinedServer(t *testing.T) {
	st := shardedkv.New(shardedkv.Config{Shards: 2})
	async := shardedkv.NewAsync(st, shardedkv.AsyncConfig{})
	srv, err := kvserver.New(kvserver.Config{Store: st, Async: async})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := dial(t, srv.Addr().String())

	for k := uint64(0); k < 128; k++ {
		class := kvserver.ClassInteractive
		if k%2 == 0 {
			class = kvserver.ClassBulk
		}
		if _, err := cl.Put(class, k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(kvserver.ClassBulk); err != nil {
		t.Fatal(err)
	}
	kvs, _, err := cl.Range(kvserver.ClassBulk, 0, 1000, 0)
	if err != nil || len(kvs) != 128 {
		t.Fatalf("range after pipelined puts: %d pairs, err=%v", len(kvs), err)
	}
	comb := async.AggregateCombineStats()
	if comb.Combined == 0 {
		t.Fatal("pipeline server executed nothing through the combiner")
	}
}

// TestClientVsModelLinearizability runs concurrent clients, each
// owning a disjoint key stripe with a local model, checking every
// response against the model and the final state against a full scan.
// Classes alternate per op, so interactive and bulk interleave on
// every connection.
func TestClientVsModelLinearizability(t *testing.T) {
	for _, eng := range shardedkv.AllEngines() {
		t.Run(eng.Name, func(t *testing.T) {
			_, addr := startServer(t, shardedkv.Config{Shards: 4, NewEngine: eng.New}, nil)

			const workers = 4
			opsPer := 1200
			if testing.Short() {
				opsPer = 250
			}
			keysPer := uint64(128)
			models := make([]map[uint64]string, workers)
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for wi := 0; wi < workers; wi++ {
				models[wi] = make(map[uint64]string)
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					cl, err := kvclient.Dial(addr)
					if err != nil {
						errs <- err
						return
					}
					defer cl.Close()
					model := models[wi]
					rng := prng.NewSplitMix64(uint64(wi) * 7919)
					base := uint64(wi) << 32
					for op := 0; op < opsPer; op++ {
						k := base + rng.Uint64()%keysPer
						class := kvserver.ClassInteractive
						if op%2 == 1 {
							class = kvserver.ClassBulk
						}
						switch rng.Uint64() % 4 {
						case 0, 1: // put
							val := fmt.Sprintf("w%d-%d", wi, op)
							ins, err := cl.Put(class, k, []byte(val))
							if err != nil {
								errs <- err
								return
							}
							_, had := model[k]
							if ins == had {
								errs <- fmt.Errorf("worker %d op %d: put inserted=%v but model had=%v", wi, op, ins, had)
								return
							}
							model[k] = val
						case 2: // get
							v, found, err := cl.Get(class, k)
							if err != nil {
								errs <- err
								return
							}
							want, had := model[k]
							if found != had || (had && string(v) != want) {
								errs <- fmt.Errorf("worker %d op %d: get %q/%v, model %q/%v", wi, op, v, found, want, had)
								return
							}
						case 3: // delete
							present, err := cl.Delete(class, k)
							if err != nil {
								errs <- err
								return
							}
							_, had := model[k]
							if present != had {
								errs <- fmt.Errorf("worker %d op %d: delete present=%v, model had=%v", wi, op, present, had)
								return
							}
							delete(model, k)
						}
					}
					// Stripe-wide final check over one batched read.
					keys := make([]uint64, 0, keysPer)
					for k := base; k < base+keysPer; k++ {
						keys = append(keys, k)
					}
					vals, founds, err := cl.MultiGet(kvserver.ClassBulk, keys)
					if err != nil {
						errs <- err
						return
					}
					for i, k := range keys {
						want, had := model[k]
						if founds[i] != had || (had && string(vals[i]) != want) {
							errs <- fmt.Errorf("worker %d final: key %d got %q/%v want %q/%v", wi, k, vals[i], founds[i], want, had)
							return
						}
					}
				}(wi)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Global final state: one full scan must equal the union of
			// the models.
			cl := dial(t, addr)
			total := 0
			for _, m := range models {
				total += len(m)
			}
			kvs, more, err := cl.Range(kvserver.ClassBulk, 0, ^uint64(0), 0)
			if err != nil || more {
				t.Fatalf("final scan: more=%v err=%v", more, err)
			}
			if len(kvs) != total {
				t.Fatalf("final scan saw %d keys, models hold %d", len(kvs), total)
			}
			for _, kv := range kvs {
				m := models[kv.Key>>32]
				if want, ok := m[kv.Key]; !ok || string(kv.Value) != want {
					t.Fatalf("final scan key %d: %q, model %q/%v", kv.Key, kv.Value, want, ok)
				}
			}
		})
	}
}

// TestClassMappingAtLock is the class-mapping contract test: every
// interactive request must reach the shard lock as big-class and
// every bulk request as little-class, whatever goroutine serves the
// connection. Probe-wrapped locks observe the effective class.
func TestClassMappingAtLock(t *testing.T) {
	var mu sync.Mutex
	var probes []*locks.ClassProbe
	scfg := shardedkv.Config{
		Shards: 4,
		NewLock: func() locks.WLock {
			p := locks.WithClassProbe(locks.FactoryASL()())
			mu.Lock()
			probes = append(probes, p)
			mu.Unlock()
			return p
		},
	}
	_, addr := startServer(t, scfg, nil)
	cl := dial(t, addr)

	sum := func() locks.ClassProbeStats {
		mu.Lock()
		defer mu.Unlock()
		var s locks.ClassProbeStats
		for _, p := range probes {
			st := p.Stats()
			s.BigAcquires += st.BigAcquires
			s.LittleAcquires += st.LittleAcquires
		}
		return s
	}

	const n = 50
	for i := uint64(0); i < n; i++ {
		if _, err := cl.Put(kvserver.ClassInteractive, i, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	after := sum()
	if after.BigAcquires != n {
		t.Fatalf("interactive ops: big acquires = %d, want %d", after.BigAcquires, n)
	}
	if after.LittleAcquires != 0 {
		t.Fatalf("interactive ops leaked %d little-class acquires", after.LittleAcquires)
	}

	for i := uint64(0); i < n; i++ {
		if _, _, err := cl.Get(kvserver.ClassBulk, i); err != nil {
			t.Fatal(err)
		}
	}
	end := sum()
	if got := end.LittleAcquires; got != n {
		t.Fatalf("bulk ops: little acquires = %d, want %d", got, n)
	}
	if end.BigAcquires != after.BigAcquires {
		t.Fatalf("bulk ops leaked big-class acquires: %d -> %d", after.BigAcquires, end.BigAcquires)
	}
}

// TestAdmissionOverServer pins one bulk op inside the (single-slot,
// no-waiting) gate via a second in-flight bulk request and asserts a
// concurrent one is shed with StatusErrAdmission while interactive
// requests sail through.
func TestAdmissionOverServer(t *testing.T) {
	scfg := shardedkv.Config{Shards: 1}
	_, addr := startServer(t, scfg, func(c *kvserver.Config) {
		c.Admission = kvserver.AdmissionConfig{BulkPerShard: 1, BulkWaiters: -1}
	})

	// Hold the single bulk slot by keeping a slow bulk op in flight:
	// many concurrent bulk writers on one connection-per-goroutine.
	const writers = 8
	var rejected, succeeded int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := kvclient.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for j := 0; j < 300; j++ {
				_, err := cl.Put(kvserver.ClassBulk, uint64(j), []byte("x"))
				mu.Lock()
				if err != nil {
					if !kvclient.IsAdmissionRejected(err) {
						mu.Unlock()
						t.Errorf("unexpected error: %v", err)
						return
					}
					rejected++
				} else {
					succeeded++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if succeeded == 0 {
		t.Fatal("every bulk op rejected — gate wedged")
	}
	if rejected == 0 {
		t.Skip("no contention materialised (single-core runner?); gate bounds covered by unit tests")
	}

	// Interactive traffic must never be shed, even with the gate full.
	cl := dial(t, addr)
	for i := 0; i < 100; i++ {
		if _, err := cl.Put(kvserver.ClassInteractive, uint64(i), []byte("y")); err != nil {
			t.Fatalf("interactive op rejected: %v", err)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BulkRejected == 0 {
		t.Fatalf("server did not count its rejections: %+v", st)
	}
	if st.Interactive.Errors != 0 {
		t.Fatalf("interactive errors: %+v", st)
	}
}

// TestGracefulClose closes the server under load: Close must return,
// all in-flight calls must resolve (success or error, never a hang),
// and later calls must fail fast.
func TestGracefulClose(t *testing.T) {
	srv, addr := startServer(t, shardedkv.Config{Shards: 2}, nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := kvclient.Dial(addr)
			if err != nil {
				return
			}
			defer cl.Close()
			for k := uint64(0); ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.Put(kvserver.ClassInteractive, k, []byte("v")); err != nil {
					return // server went away mid-run: expected
				}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with connections in flight")
	}
	close(stop)
	wg.Wait()

	if _, err := kvclient.Dial(addr); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}

// TestBadHandshakeAndOversizeFrame: protocol violations cost the
// offender its connection, nothing more.
func TestBadHandshakeAndOversizeFrame(t *testing.T) {
	_, addr := startServer(t, shardedkv.Config{Shards: 1}, nil)

	// Wrong magic: the server hangs up on the offender.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("BAD0"))
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a bad handshake")
	}
	raw.Close()

	// A well-behaved client on the same server still works.
	cl := dial(t, addr)
	if _, err := cl.Put(kvserver.ClassInteractive, 1, []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Worker runs on: value of exactly MaxValueLen is legal.
	big := make([]byte, kvserver.MaxValueLen)
	if _, err := cl.Put(kvserver.ClassBulk, 2, big); err != nil {
		t.Fatalf("max-size value refused: %v", err)
	}
	v, found, err := cl.Get(kvserver.ClassBulk, 2)
	if err != nil || !found || len(v) != kvserver.MaxValueLen {
		t.Fatalf("max-size value round trip: len=%d found=%v err=%v", len(v), found, err)
	}
}
