package kvserver_test

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/kvclient"
	"repro/internal/kvserver"
	"repro/internal/shardedkv"
	"repro/internal/wal"
)

// TestDegradedStoreMapsToUnavailable is the end-to-end degraded-mode
// check: an injected WAL fsync failure under a live server must turn
// writes into StatusErrUnavailable on the wire — retryable, typed —
// while reads on the same connection keep answering. The server must
// not wedge or close the connection.
func TestDegradedStoreMapsToUnavailable(t *testing.T) {
	reg := fault.New(1)
	reg.MustAdd(fault.Rule{Point: "wal.fsync", Nth: 1, Act: fault.ActError})
	scfg := shardedkv.Config{
		Shards: 1, // one shard: the first failed commit degrades all writes
		Durability: &shardedkv.DurabilityConfig{
			Dir:         t.TempDir(),
			Interactive: shardedkv.SyncWait,
			Bulk:        shardedkv.SyncWait,
			FS:          wal.FaultFS{Reg: reg},
		},
	}
	_, addr := startServer(t, scfg, nil)
	cl := dial(t, addr)

	// The rigged first fsync fails this write's group commit.
	_, err := cl.Put(kvserver.ClassInteractive, 1, []byte("doomed"))
	var se *kvclient.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("Put on degraded store: want *StatusError, got %v", err)
	}
	if se.Status != kvserver.StatusErrUnavailable {
		t.Fatalf("Put status = %s, want StatusErrUnavailable", kvserver.StatusText(se.Status))
	}
	if !kvclient.IsRetryable(err) {
		t.Fatalf("StatusErrUnavailable must be retryable: %v", err)
	}

	// Writes stay refused (the flip is sticky)...
	if _, err := cl.Put(kvserver.ClassBulk, 2, []byte("also doomed")); !errors.As(err, &se) ||
		se.Status != kvserver.StatusErrUnavailable {
		t.Fatalf("second Put = %v, want StatusErrUnavailable again", err)
	}
	if err := cl.Flush(kvserver.ClassInteractive); !errors.As(err, &se) ||
		se.Status != kvserver.StatusErrUnavailable {
		t.Fatalf("Flush = %v, want StatusErrUnavailable", err)
	}

	// ...but the same connection still serves reads: no false durability
	// claim for key 1 — it must read as absent or as the unacked value,
	// and the read itself must succeed at the protocol level.
	if _, _, err := cl.Get(kvserver.ClassInteractive, 1); err != nil {
		t.Fatalf("Get on degraded store must keep serving, got %v", err)
	}
	if _, _, err := cl.MultiGet(kvserver.ClassInteractive, []uint64{1, 2, 3}); err != nil {
		t.Fatalf("MultiGet on degraded store must keep serving, got %v", err)
	}
	if _, _, err := cl.Range(kvserver.ClassInteractive, 0, 100, 0); err != nil {
		t.Fatalf("Range on degraded store must keep serving, got %v", err)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("Stats on degraded store must keep serving, got %v", err)
	}
}
