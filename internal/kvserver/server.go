package kvserver

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/shardedkv"
	"repro/internal/stats"
)

// Epoch ids the server uses for per-request SLO epochs: one epoch per
// SLO class, so each class's AIMD controller learns its own reorder
// window from its own latency feedback.
const (
	epochInteractive = 0
	epochBulk        = 1
)

// Config configures a Server.
type Config struct {
	// Store is the served store (required).
	Store *shardedkv.Store
	// Async, if non-nil, routes operations through the combining
	// pipeline instead of per-op locking: interactive requests elect
	// and combine, bulk requests enqueue and park. It must wrap Store.
	Async *shardedkv.AsyncStore
	// SLOInteractive and SLOBulk are the per-class latency SLOs. A
	// positive value wraps each request of that class in an SLO epoch
	// (EpochStart/EpochEnd with the class's epoch id), so ASL shard
	// locks learn a per-class reorder window from per-request
	// feedback. 0 disables epochs for that class.
	SLOInteractive, SLOBulk time.Duration
	// Admission bounds in-flight bulk operations (see AdmissionConfig;
	// the zero value enables the gate with defaults, BulkPerShard < 0
	// disables it).
	Admission AdmissionConfig
}

// Server serves the binary protocol over TCP. One goroutine per
// connection decodes, executes and responds in request order;
// concurrency across the store comes from concurrent connections.
// Requests are executed on a per-connection core.Worker whose class is
// HINTED per request from the wire class byte — the ClassHint path —
// so one connection may interleave interactive and bulk operations and
// each still reaches the shard lock under its own class.
type Server struct {
	// st answers placement queries (ShardOf, NumShards, MapEpoch); kv
	// is the operation surface — the plain store, or the combining
	// pipeline when Config.Async is set. Every request path goes
	// through kv, so the server is front-end-agnostic past New.
	st   *shardedkv.Store
	kv   shardedkv.KV
	sloI int64
	sloB int64
	adm  *admission

	ln     net.Listener
	closed atomic.Bool
	wg     sync.WaitGroup

	mu        sync.Mutex
	conns     map[*serverConn]struct{}
	retired   *stats.ClassedRecorder // recorders of closed connections
	accepted  atomic.Uint64
	errs      [2]atomic.Uint64 // error responses by class
	badConns  atomic.Uint64    // connections dropped for protocol violations
	truncates atomic.Uint64    // Range responses clamped to MaxRangePairs
}

// New builds a server over cfg.Store (and cfg.Async when set).
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("kvserver: Config.Store is required")
	}
	if cfg.Async != nil && cfg.Async.Store() != cfg.Store {
		return nil, errors.New("kvserver: Config.Async does not wrap Config.Store")
	}
	kv := shardedkv.KV(cfg.Store)
	if cfg.Async != nil {
		kv = cfg.Async
	}
	return &Server{
		st:      cfg.Store,
		kv:      kv,
		sloI:    int64(cfg.SLOInteractive),
		sloB:    int64(cfg.SLOBulk),
		adm:     newAdmission(cfg.Admission),
		conns:   make(map[*serverConn]struct{}),
		retired: stats.NewClassedRecorder(),
	}, nil
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine. Use Addr for the bound address and Close to
// shut down.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listener address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close shuts the server down gracefully: stop accepting, let every
// connection finish its in-flight request (read sides are closed, so
// handlers fall out of their read loop after responding), and wait for
// all handlers to return. Safe to call more than once.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for sc := range s.conns {
		// Closing only the read side lets the handler finish writing
		// its current response before it notices and exits.
		if tc, ok := sc.c.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			sc.c.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed (Close) or fatal
		}
		sc := &serverConn{c: c, rec: stats.NewClassedRecorder()}
		// Registration re-checks closed under the same mutex Close
		// iterates under: Close sets the flag BEFORE it walks the
		// conn set, so either this conn lands in the walk (and gets
		// its read side closed) or it observes the flag here and
		// never starts — a conn accepted concurrently with Close can
		// not slip past both and leave Close stuck in wg.Wait.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handle(sc)
	}
}

// serverConn is one connection's state. rec is guarded by mu: the
// handler records into it, Stats() snapshots it concurrently.
type serverConn struct {
	c   net.Conn
	mu  sync.Mutex
	rec *stats.ClassedRecorder
}

func (sc *serverConn) record(class core.Class, latencyNs int64, ops uint64) {
	sc.mu.Lock()
	sc.rec.RecordBatch(class, latencyNs, ops)
	sc.mu.Unlock()
}

// handle runs one connection to completion.
func (s *Server) handle(sc *serverConn) {
	defer s.wg.Done()
	defer func() {
		sc.c.Close()
		s.mu.Lock()
		sc.mu.Lock()
		s.retired.Merge(sc.rec)
		sc.rec = stats.NewClassedRecorder()
		sc.mu.Unlock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()

	br := bufio.NewReaderSize(sc.c, 64<<10)
	bw := bufio.NewWriterSize(sc.c, 64<<10)

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != Magic {
		s.badConns.Add(1)
		return
	}

	// The per-connection worker. Base class is irrelevant: every
	// request installs its own class hint before touching the store.
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})

	var frame, out []byte
	for {
		// Classic pipelining flush: only pay the syscall when about to
		// block on an empty input buffer.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		var err error
		frame, err = ReadFrame(br, frame)
		if err != nil {
			// Clean EOF or any framing violation: drop the connection
			// (a broken length prefix poisons the whole stream — there
			// is no resynchronising inside it).
			if !errors.Is(err, io.EOF) {
				s.badConns.Add(1)
			}
			return
		}
		req, err := DecodeRequest(frame)
		if err != nil {
			// The stream is still framed (the frame read fine), so a
			// malformed PAYLOAD gets an in-stream error response.
			s.errs[lockClassOf(req.Class)].Add(1)
			out, err = AppendErrorResponse(out[:0], req.ID, StatusErrMalformed, err.Error())
			if err != nil || writeAll(bw, out) != nil {
				return
			}
			continue
		}
		out, err = s.execute(w, sc, &req, out[:0])
		if err != nil || writeAll(bw, out) != nil {
			return
		}
	}
}

func writeAll(bw *bufio.Writer, b []byte) error {
	_, err := bw.Write(b)
	return err
}

// lockClassOf maps the wire class byte to the lock class: interactive
// requests act big (lock fast path, elect/combine/spin), bulk requests
// act little (reorder standby, enqueue/park).
func lockClassOf(class uint8) core.Class {
	if class == ClassBulk {
		return core.Little
	}
	return core.Big
}

// execute runs one request and appends its response frame to out. The
// error return is for encoding failures only (they poison the stream);
// per-request errors become error-status responses.
func (s *Server) execute(w *core.Worker, sc *serverConn, req *Request, out []byte) ([]byte, error) {
	if s.closed.Load() {
		return AppendErrorResponse(out, req.ID, StatusErrShutdown, StatusText(StatusErrShutdown))
	}
	lc := lockClassOf(req.Class)

	// Stats is an admin op: no class mapping, no gate, no recording.
	if req.Op == OpStats {
		body, err := json.Marshal(s.Stats())
		if err != nil {
			return AppendErrorResponse(out, req.ID, StatusErrMalformed, err.Error())
		}
		return AppendStatsResponse(out, req.ID, body)
	}

	// Class-aware admission: bulk ops pass the bounded gate,
	// interactive ops bypass it.
	if s.adm != nil && req.Class == ClassBulk {
		shard := globalGate
		switch req.Op {
		case OpGet, OpPut, OpDelete:
			shard = s.st.ShardOf(req.Key)
		}
		g, ok := s.adm.enter(shard)
		if !ok {
			s.errs[lc].Add(1)
			return AppendErrorResponse(out, req.ID, StatusErrAdmission, StatusText(StatusErrAdmission))
		}
		defer s.adm.exit(g)
	}

	// The ClassHint path: the request's SLO class becomes the worker's
	// effective class for exactly this operation, steering the shard
	// lock's admission policy, combiner election, spin-vs-park waiting
	// and the CSPad keying. An SLO-configured class additionally runs
	// inside its class's epoch, so ASL locks learn per-class reorder
	// windows from per-request latency feedback.
	w.SetClassHint(lc)
	epoch, slo := -1, int64(0)
	if req.Class == ClassBulk && s.sloB > 0 {
		epoch, slo = epochBulk, s.sloB
	} else if req.Class == ClassInteractive && s.sloI > 0 {
		epoch, slo = epochInteractive, s.sloI
	}
	if epoch >= 0 {
		w.EpochStart(epoch)
	}
	start := w.Now()

	var encErr error
	var kvErr error
	ops := uint64(1)
	switch req.Op {
	case OpGet:
		v, ok := s.kv.Get(w, req.Key)
		out, encErr = AppendGetResponse(out, req.ID, v, ok)
	case OpPut:
		// The decoded value aliases the connection's frame buffer,
		// which the next ReadFrame reuses; the store retains values by
		// reference, so copy before storing.
		v := append([]byte(nil), req.Value...)
		ok, werr := s.kv.Put(w, req.Key, v)
		if werr != nil {
			kvErr = werr
		} else {
			out, encErr = AppendBoolResponse(out, req.ID, ok)
		}
	case OpDelete:
		ok, werr := s.kv.Delete(w, req.Key)
		if werr != nil {
			kvErr = werr
		} else {
			out, encErr = AppendBoolResponse(out, req.ID, ok)
		}
	case OpMultiGet:
		vals, found := s.kv.MultiGet(w, req.Keys)
		ops = uint64(len(req.Keys))
		out, encErr = AppendMultiGetResponse(out, req.ID, vals, found)
	case OpMultiPut:
		kvs := make([]shardedkv.Pair, len(req.KVs))
		for i, kv := range req.KVs {
			kvs[i] = shardedkv.Pair{Key: kv.Key, Value: append([]byte(nil), kv.Value...)}
		}
		inserted, werr := s.kv.MultiPut(w, kvs)
		ops = uint64(len(kvs))
		if werr != nil {
			kvErr = werr
		} else {
			out, encErr = AppendMultiPutResponse(out, req.ID, inserted)
		}
	case OpRange:
		limit := int(req.Limit)
		if limit <= 0 || limit > MaxRangePairs {
			limit = MaxRangePairs
		}
		kvs := make([]shardedkv.Pair, 0, min(limit, 64))
		more := false
		collect := func(k uint64, v []byte) bool {
			if len(kvs) == limit {
				more = true
				return false
			}
			kvs = append(kvs, shardedkv.Pair{Key: k, Value: v})
			return true
		}
		s.kv.Range(w, req.Lo, req.Hi, collect)
		if more {
			s.truncates.Add(1)
		}
		ops = uint64(max(len(kvs), 1))
		out, encErr = AppendRangeResponse(out, req.ID, kvs, more)
	case OpFlush:
		// KV.Flush is the write AND durability barrier: on the async
		// front end it drains the rings first; on either front end it
		// group-commits every shard log when durability is configured.
		// A sync failure here is how fire-and-forget (bulk) write
		// errors reach the wire.
		if ferr := s.kv.Flush(w); ferr != nil {
			kvErr = ferr
		} else {
			out, encErr = AppendEmptyResponse(out, req.ID)
		}
	default:
		if epoch >= 0 {
			w.EpochEnd(epoch, slo)
		}
		w.ClearClassHint()
		s.errs[lc].Add(1)
		return AppendErrorResponse(out, req.ID, StatusErrUnknownOp, fmt.Sprintf("opcode 0x%02x", req.Op))
	}

	lat := w.Now() - start
	if epoch >= 0 {
		w.EpochEnd(epoch, slo)
	}
	w.ClearClassHint()
	if kvErr != nil {
		// The store refused the write's durability promise (a degraded
		// shard). Reads keep serving; the client sees a retryable
		// StatusErrUnavailable, never a false ack.
		s.errs[lc].Add(1)
		return AppendErrorResponse(out, req.ID, StatusErrUnavailable, kvErr.Error())
	}
	if encErr != nil {
		// The response was too large to frame (a Range at the caps can
		// exceed MaxFrame). Report in-stream; the request itself
		// already executed.
		s.errs[lc].Add(1)
		return AppendErrorResponse(out[:0], req.ID, StatusErrTooLarge, encErr.Error())
	}
	sc.record(lc, lat, ops)
	return out, nil
}

// ClassServerStats is one SLO class's server-side view.
type ClassServerStats struct {
	// Ops counts completed operations (batch elements and scanned
	// pairs count individually, like kvbench's ops/s unit).
	Ops uint64 `json:"ops"`
	// Errors counts error-status responses sent to this class.
	Errors uint64 `json:"errors"`
	// P50Ns/P99Ns are request-latency percentiles in nanoseconds,
	// measured around store execution (decode and socket time
	// excluded).
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// ServerStats is the server's aggregate view, JSON-encoded verbatim as
// the Stats response body.
type ServerStats struct {
	Interactive ClassServerStats `json:"interactive"`
	Bulk        ClassServerStats `json:"bulk"`
	// BulkInFlight/BulkWaiting are the admission gate's current queue
	// depths; BulkWaited/BulkRejected its cumulative outcomes.
	BulkInFlight int64  `json:"bulk_inflight"`
	BulkWaiting  int64  `json:"bulk_waiting"`
	BulkWaited   uint64 `json:"bulk_waited"`
	BulkRejected uint64 `json:"bulk_rejected"`
	// Conns is the live connection count; Accepted the lifetime total;
	// BadConns the connections dropped for protocol violations.
	Conns    int    `json:"conns"`
	Accepted uint64 `json:"accepted"`
	BadConns uint64 `json:"bad_conns"`
	// RangeTruncations counts Range responses clamped to
	// MaxRangePairs.
	RangeTruncations uint64 `json:"range_truncations"`
	// Shards/MapEpoch snapshot the served store's placement.
	Shards   int    `json:"shards"`
	MapEpoch uint64 `json:"map_epoch"`
}

// Stats snapshots the server's counters: per-class ops and latency
// percentiles merged across live and closed connections, admission
// depths and outcomes, and the store's shard layout.
func (s *Server) Stats() ServerStats {
	merged := stats.NewClassedRecorder()
	s.mu.Lock()
	merged.Merge(s.retired)
	live := len(s.conns)
	for sc := range s.conns {
		sc.mu.Lock()
		merged.Merge(sc.rec)
		sc.mu.Unlock()
	}
	s.mu.Unlock()

	st := ServerStats{
		Interactive: ClassServerStats{
			Ops:    merged.Ops(core.Big),
			Errors: s.errs[core.Big].Load(),
			P50Ns:  merged.ByClass(core.Big).P50(),
			P99Ns:  merged.ByClass(core.Big).P99(),
		},
		Bulk: ClassServerStats{
			Ops:    merged.Ops(core.Little),
			Errors: s.errs[core.Little].Load(),
			P50Ns:  merged.ByClass(core.Little).P50(),
			P99Ns:  merged.ByClass(core.Little).P99(),
		},
		Conns:            live,
		Accepted:         s.accepted.Load(),
		BadConns:         s.badConns.Load(),
		RangeTruncations: s.truncates.Load(),
		Shards:           s.st.NumShards(),
		MapEpoch:         s.st.MapEpoch(),
	}
	if s.adm != nil {
		a := s.adm.stats()
		st.BulkInFlight = a.InFlight
		st.BulkWaiting = a.Waiting
		st.BulkWaited = a.Waited
		st.BulkRejected = a.Rejected
	}
	return st
}
