package kvserver

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"repro/internal/shardedkv"
)

// readBack pushes an encoded frame through ReadFrame the way a
// connection would.
func readBack(t *testing.T, wire []byte) []byte {
	t.Helper()
	frame, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return frame
}

// TestRequestRoundTrip encodes one request of every opcode, reads it
// back through the framing layer, decodes it, and compares.
func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpGet, Class: ClassInteractive, Key: 42},
		{ID: 2, Op: OpPut, Class: ClassBulk, Key: 7, Value: []byte("hello")},
		{ID: 3, Op: OpPut, Class: ClassInteractive, Key: 8, Value: nil},
		{ID: 4, Op: OpDelete, Class: ClassBulk, Key: ^uint64(0)},
		{ID: 5, Op: OpMultiGet, Class: ClassInteractive, Keys: []uint64{1, 2, 3}},
		{ID: 6, Op: OpMultiPut, Class: ClassBulk, KVs: []shardedkv.Pair{
			{Key: 1, Value: []byte("a")}, {Key: 2, Value: []byte{}},
		}},
		{ID: 7, Op: OpRange, Class: ClassBulk, Lo: 10, Hi: 99, Limit: 5},
		{ID: 8, Op: OpFlush, Class: ClassBulk},
		{ID: 9, Op: OpStats, Class: ClassInteractive},
	}
	for _, want := range reqs {
		wire, err := AppendRequest(nil, &want)
		if err != nil {
			t.Fatalf("op 0x%02x: AppendRequest: %v", want.Op, err)
		}
		got, err := DecodeRequest(readBack(t, wire))
		if err != nil {
			t.Fatalf("op 0x%02x: DecodeRequest: %v", want.Op, err)
		}
		// Empty and nil slices compare equal on the wire.
		normalize := func(r *Request) {
			if len(r.Value) == 0 {
				r.Value = nil
			}
			for i := range r.KVs {
				if len(r.KVs[i].Value) == 0 {
					r.KVs[i].Value = nil
				}
			}
			if len(r.Keys) == 0 {
				r.Keys = nil
			}
			if len(r.KVs) == 0 {
				r.KVs = nil
			}
		}
		normalize(&want)
		normalize(&got)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("op 0x%02x round trip:\nwant %+v\ngot  %+v", want.Op, want, got)
		}
	}
}

// TestResponseRoundTrip exercises every response encoder against its
// payload decoder.
func TestResponseRoundTrip(t *testing.T) {
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}

	wire, err := AppendGetResponse(nil, 1, []byte("v"), true)
	check(err)
	resp, err := DecodeResponse(readBack(t, wire))
	check(err)
	if resp.ID != 1 || resp.Status != StatusOK {
		t.Fatalf("get response header: %+v", resp)
	}
	v, found, err := DecodeGetPayload(resp.Payload)
	check(err)
	if !found || string(v) != "v" {
		t.Fatalf("get payload: %q %v", v, found)
	}

	wire, err = AppendGetResponse(nil, 2, nil, false)
	check(err)
	resp, _ = DecodeResponse(readBack(t, wire))
	if _, found, _ := DecodeGetPayload(resp.Payload); found {
		t.Fatal("missing key decoded as found")
	}

	wire, err = AppendBoolResponse(nil, 3, true)
	check(err)
	resp, _ = DecodeResponse(readBack(t, wire))
	ok, err := DecodeBoolPayload(resp.Payload)
	check(err)
	if !ok {
		t.Fatal("bool payload lost")
	}

	wire, err = AppendMultiGetResponse(nil, 4, [][]byte{[]byte("a"), nil}, []bool{true, false})
	check(err)
	resp, _ = DecodeResponse(readBack(t, wire))
	vals, founds, err := DecodeMultiGetPayload(resp.Payload)
	check(err)
	if len(vals) != 2 || !founds[0] || founds[1] || string(vals[0]) != "a" {
		t.Fatalf("multiget payload: %v %v", vals, founds)
	}

	wire, err = AppendMultiPutResponse(nil, 5, 17)
	check(err)
	resp, _ = DecodeResponse(readBack(t, wire))
	n, err := DecodeMultiPutPayload(resp.Payload)
	check(err)
	if n != 17 {
		t.Fatalf("multiput payload: %d", n)
	}

	kvs := []shardedkv.Pair{{Key: 1, Value: []byte("x")}, {Key: 2, Value: []byte("y")}}
	wire, err = AppendRangeResponse(nil, 6, kvs, true)
	check(err)
	resp, _ = DecodeResponse(readBack(t, wire))
	if resp.Flags&FlagMore == 0 {
		t.Fatal("More flag lost")
	}
	got, err := DecodeRangePayload(resp.Payload)
	check(err)
	if !reflect.DeepEqual(kvs, got) {
		t.Fatalf("range payload: %v", got)
	}

	wire, err = AppendErrorResponse(nil, 7, StatusErrAdmission, "busy")
	check(err)
	resp, _ = DecodeResponse(readBack(t, wire))
	if resp.Status != StatusErrAdmission || string(resp.Payload) != "busy" {
		t.Fatalf("error response: %+v", resp)
	}
}

// TestDecodeMalformed feeds the decoder a gallery of invalid frames;
// every one must produce an error (and no panic).
func TestDecodeMalformed(t *testing.T) {
	mk := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }
	u64 := func(v uint64) []byte { return binary.BigEndian.AppendUint64(nil, v) }
	u32 := func(v uint32) []byte { return binary.BigEndian.AppendUint32(nil, v) }

	cases := map[string][]byte{
		"empty":               {},
		"header only partial": mk(u64(1), []byte{OpGet}),
		"bad class":           mk(u64(1), []byte{OpGet, 0x7f}, u64(42)),
		"unknown opcode":      mk(u64(1), []byte{0xee, ClassBulk}),
		"get missing key":     mk(u64(1), []byte{OpGet, ClassBulk}),
		"get trailing bytes":  mk(u64(1), []byte{OpGet, ClassBulk}, u64(42), []byte{0}),
		"put huge value len":  mk(u64(1), []byte{OpPut, ClassBulk}, u64(1), u32(MaxValueLen+1)),
		"put short value":     mk(u64(1), []byte{OpPut, ClassBulk}, u64(1), u32(100), []byte("short")),
		"multiget huge n":     mk(u64(1), []byte{OpMultiGet, ClassBulk}, u32(MaxBatchOps+1)),
		"multiget short":      mk(u64(1), []byte{OpMultiGet, ClassBulk}, u32(3), u64(1)),
		"multiput short":      mk(u64(1), []byte{OpMultiPut, ClassBulk}, u32(1), u64(1)),
		"range short":         mk(u64(1), []byte{OpRange, ClassBulk}, u64(1), u64(2)),
		"flush with payload":  mk(u64(1), []byte{OpFlush, ClassBulk}, []byte{1, 2, 3}),
	}
	for name, frame := range cases {
		if _, err := DecodeRequest(frame); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestReadFrameLimits checks the framing layer's length-prefix
// defences: undersized, oversized and truncated frames all error.
func TestReadFrameLimits(t *testing.T) {
	u32 := func(v uint32) []byte { return binary.BigEndian.AppendUint32(nil, v) }
	cases := map[string][]byte{
		"below header":   u32(4),
		"above MaxFrame": u32(MaxFrame + 1),
		"truncated body": append(u32(100), []byte("not a hundred bytes")...),
		"empty prefix":   {0, 0},
	}
	for name, wire := range cases {
		_, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)), nil)
		if err == nil {
			t.Errorf("%s: read without error", name)
		}
		if name == "above MaxFrame" && !strings.Contains(err.Error(), "MaxFrame") {
			t.Errorf("oversize error does not mention MaxFrame: %v", err)
		}
	}
}

// FuzzDecodeRequest asserts the request decoder's core safety
// property: arbitrary bytes may produce an error but never a panic,
// and anything that decodes re-encodes cleanly.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []Request{
		{ID: 1, Op: OpGet, Class: ClassInteractive, Key: 42},
		{ID: 2, Op: OpPut, Class: ClassBulk, Key: 7, Value: []byte("hello")},
		{ID: 5, Op: OpMultiGet, Class: ClassInteractive, Keys: []uint64{1, 2, 3}},
		{ID: 6, Op: OpMultiPut, Class: ClassBulk, KVs: []shardedkv.Pair{{Key: 1, Value: []byte("a")}}},
		{ID: 7, Op: OpRange, Class: ClassBulk, Lo: 10, Hi: 99, Limit: 5},
		{ID: 8, Op: OpFlush, Class: ClassBulk},
	}
	for i := range seeds {
		wire, err := AppendRequest(nil, &seeds[i])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire[4:]) // strip the length prefix: fuzz the frame body
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, frame []byte) {
		req, err := DecodeRequest(frame)
		if err != nil {
			return
		}
		if _, err := AppendRequest(nil, &req); err != nil {
			t.Fatalf("decoded request fails to re-encode: %v (%+v)", err, req)
		}
	})
}

// FuzzDecodeResponsePayloads runs every client-side payload decoder
// over arbitrary bytes: errors allowed, panics not.
func FuzzDecodeResponsePayloads(f *testing.F) {
	okGet, _ := AppendGetResponse(nil, 1, []byte("v"), true)
	okRange, _ := AppendRangeResponse(nil, 2, []shardedkv.Pair{{Key: 9, Value: []byte("z")}}, false)
	f.Add(okGet[14:])   // strip prefix+header: payload bytes
	f.Add(okRange[14:]) //
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 32))
	f.Fuzz(func(t *testing.T, p []byte) {
		_, _, _ = DecodeGetPayload(p)
		_, _ = DecodeBoolPayload(p)
		_, _, _ = DecodeMultiGetPayload(p)
		_, _ = DecodeMultiPutPayload(p)
		_, _ = DecodeRangePayload(p)
		if _, err := DecodeResponse(p); err == nil && len(p) < 10 {
			t.Fatal("short frame decoded as response")
		}
	})
}
