// Package dbbench drives the paper's database evaluation (§4.2) on the
// real lock implementations: N big-class plus M little-class workers
// issue operations from a mix against a database engine, each wrapped
// in a LibASL epoch, and the harness reports throughput plus per-class
// P99 latency and the latency CDF — the contents of Figs. 9 and 10.
package dbbench

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// DB is a database engine under test. Engines are constructed with a
// lock factory so any of the evaluation's locks can be injected.
type DB interface {
	Name() string
	// Do executes one operation on behalf of worker w. The engine is
	// responsible for its own locking (its Table 1 topology) and for
	// applying the asymmetry padding inside critical sections.
	Do(w *core.Worker, rng prng.Source, op workload.OpKind)
}

// Padder injects the emulated little-core slowdown: on a symmetric
// host, little-class workers execute extra calibrated work so the
// critical-section duration ratio matches the paper's AMP (DESIGN.md
// substitutions). Engines call CS while holding their locks.
type Padder struct {
	Shim workload.AsymmetryShim
}

// DefaultPadder returns the M1-calibrated padder.
func DefaultPadder() Padder { return Padder{Shim: workload.DefaultShim()} }

// CS pads critical-section work of baseUnits spin units for w's class.
func (p Padder) CS(w *core.Worker, baseUnits int64) {
	if w.Class() == core.Big {
		return
	}
	extra := int64(float64(baseUnits) * (p.Shim.CSFactor - 1))
	if extra > 0 {
		workload.Spin(extra)
	}
}

// NCS pads non-critical work.
func (p Padder) NCS(w *core.Worker, baseUnits int64) {
	if w.Class() == core.Big {
		return
	}
	extra := int64(float64(baseUnits) * (p.Shim.NCSFactor - 1))
	if extra > 0 {
		workload.Spin(extra)
	}
}

// Config describes one benchmark run.
type Config struct {
	BigWorkers    int
	LittleWorkers int
	Duration      time.Duration
	// WarmupFrac is the fraction of Duration discarded; zero means 0.2.
	WarmupFrac float64
	// SLO is the per-epoch latency SLO in ns; < 0 runs without epochs
	// (plain locks and LibASL-MAX).
	SLO int64
	// Mix draws operation kinds; nil means the YCSB-A-style 50/50.
	Mix  *workload.Mix
	Seed uint64
	// EpochID annotates the request epoch (paper Fig. 6 usage).
	EpochID int
	// NCSUnits is calibrated spin work between operations.
	NCSUnits int64
	// Controller optionally overrides the window controller.
	Controller func() core.Controller
}

func (c Config) withDefaults() Config {
	if c.WarmupFrac <= 0 {
		c.WarmupFrac = 0.2
	}
	if c.Mix == nil {
		c.Mix = workload.YCSBA()
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	return c
}

// Result carries the measurements of one run.
type Result struct {
	Summary stats.Summary
	// Overall and Little are the epoch-latency histograms used for the
	// paper's CDF figures.
	Overall *stats.Histogram
	Little  *stats.Histogram
	// Ops is the number of completed operations after warmup.
	Ops uint64
}

// Run executes the benchmark against db.
func Run(name string, db DB, cfg Config) *Result {
	cfg = cfg.withDefaults()
	total := cfg.BigWorkers + cfg.LittleWorkers
	recs := make([]*stats.ClassedRecorder, total)
	var stop atomic.Bool
	var started sync.WaitGroup
	var done sync.WaitGroup

	warmup := time.Duration(float64(cfg.Duration) * cfg.WarmupFrac)
	begin := time.Now()
	warmupEnd := begin.Add(warmup)

	for i := 0; i < total; i++ {
		class := core.Big
		if i >= cfg.BigWorkers {
			class = core.Little
		}
		rec := stats.NewClassedRecorder()
		recs[i] = rec
		started.Add(1)
		done.Add(1)
		go func(id int, class core.Class) {
			defer done.Done()
			// Spread workers across OS threads; on a multicore host
			// this mirrors the paper's thread-per-core binding.
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			w := core.NewWorker(core.WorkerConfig{Class: class, NewController: cfg.Controller})
			rng := prng.NewXoshiro256(cfg.Seed ^ (uint64(id)*0x9e3779b97f4a7c15 + 1))
			started.Done()
			for !stop.Load() {
				op := cfg.Mix.Draw(rng.Uint64())
				var lat int64
				if cfg.SLO >= 0 {
					w.EpochStart(cfg.EpochID)
					db.Do(w, rng, op)
					lat = w.EpochEnd(cfg.EpochID, cfg.SLO)
				} else {
					s := w.Now()
					db.Do(w, rng, op)
					lat = w.Now() - s
				}
				if time.Now().After(warmupEnd) {
					rec.Record(class, lat)
				}
				if cfg.NCSUnits > 0 {
					workload.Spin(cfg.NCSUnits)
				}
			}
		}(i, class)
	}
	started.Wait()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()

	merged := stats.NewClassedRecorder()
	for _, r := range recs {
		merged.Merge(r)
	}
	measured := cfg.Duration - warmup
	res := &Result{
		Summary: merged.Summarize(name, measured),
		Overall: merged.Overall(),
		Little:  merged.ByClass(core.Little),
		Ops:     merged.TotalOps(),
	}
	return res
}
