package dbbench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/workload"
)

// countingDB is a trivial engine for harness tests.
type countingDB struct {
	lock locks.WLock
	n    int
}

func (d *countingDB) Name() string { return "counting" }
func (d *countingDB) Do(w *core.Worker, rng prng.Source, op workload.OpKind) {
	d.lock.Acquire(w)
	d.n++
	d.lock.Release(w)
}

func TestRunBasics(t *testing.T) {
	db := &countingDB{lock: locks.Wrap(new(locks.BargingMutex))}
	res := Run("counting", db, Config{
		BigWorkers:    2,
		LittleWorkers: 2,
		Duration:      300 * time.Millisecond,
		SLO:           int64(time.Millisecond),
		Seed:          1,
	})
	if res.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	if int(res.Ops) > db.n {
		t.Fatalf("recorded %d ops but engine saw only %d", res.Ops, db.n)
	}
	if res.Summary.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
	if res.Overall.Count() != res.Ops {
		t.Fatalf("overall histogram count %d != ops %d", res.Overall.Count(), res.Ops)
	}
	if res.Summary.LittleOps == 0 || res.Summary.BigOps == 0 {
		t.Fatalf("both classes must progress: %+v", res.Summary)
	}
}

func TestRunWithoutEpochs(t *testing.T) {
	db := &countingDB{lock: locks.Wrap(new(locks.BargingMutex))}
	res := Run("raw", db, Config{
		BigWorkers:    1,
		LittleWorkers: 1,
		Duration:      200 * time.Millisecond,
		SLO:           -1, // no epochs: plain latency measurement
		Seed:          2,
	})
	if res.Ops == 0 {
		t.Fatal("no operations recorded")
	}
}

func TestPadderScalesLittleOnly(t *testing.T) {
	p := DefaultPadder()
	big := core.NewWorker(core.WorkerConfig{Class: core.Big})
	little := core.NewWorker(core.WorkerConfig{Class: core.Little})
	// Big: no extra work (returns immediately). Little: measurable.
	start := time.Now()
	for i := 0; i < 1000; i++ {
		p.CS(big, 1000)
	}
	bigT := time.Since(start)
	start = time.Now()
	for i := 0; i < 1000; i++ {
		p.CS(little, 1000)
	}
	littleT := time.Since(start)
	if littleT < bigT*2 {
		t.Fatalf("padding should slow little workers: big %v little %v", bigT, littleT)
	}
}
