package simlock

import (
	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/prng"
)

// Affinity describes the asymmetric atomic-operation success rate of a
// TAS lock on AMP hardware (§2.2: "the success rate of atomic
// operations is asymmetric"). When several spinners race for a
// released lock, a competitor of the favoured class is Factor times
// more likely to win than one of the other class. Factor <= 1 or a
// zero value means symmetric arbitration.
type Affinity struct {
	Favoured core.Class
	Factor   float64
}

// weight returns the arbitration weight for class c.
func (a Affinity) weight(c core.Class) float64 {
	if a.Factor <= 1 {
		return 1
	}
	if c == a.Favoured {
		return a.Factor
	}
	return 1
}

// SimTAS models a test-and-set spinlock. Ownership of a released,
// contended lock goes to a weighted-random spinner — the weights encode
// the hardware affinity regime (little-core-affinity in Fig. 1,
// big-core-affinity in Fig. 4). A thread arriving at a free lock takes
// it immediately (barging), like a real TAS.
type SimTAS struct {
	// Aff configures the arbitration bias.
	Aff Affinity
	// Xfer configures the ownership-transfer costs.
	Xfer xfer
	// Seed seeds the arbitration PRNG (set before first use).
	Seed uint64

	rng      *prng.SplitMix64
	held     bool
	spinners []*amp.Thread
}

func (m *SimTAS) rand() *prng.SplitMix64 {
	if m.rng == nil {
		m.rng = prng.NewSplitMix64(m.Seed ^ 0xa5a5_5a5a_dead_beef)
	}
	return m.rng
}

// Lock acquires the lock, spinning (in virtual time) if held.
func (m *SimTAS) Lock(t *amp.Thread) {
	if !m.held {
		m.held = true
		m.Xfer.note(t)
		return
	}
	m.spinners = append(m.spinners, t)
	t.Proc().Suspend() // resumed as owner by Unlock's arbitration
}

// Unlock releases the lock; if spinners exist, one wins the race
// according to the affinity weights and becomes the holder.
func (m *SimTAS) Unlock(t *amp.Thread) {
	if !m.held {
		panic("simlock: SimTAS unlock while free")
	}
	if len(m.spinners) == 0 {
		m.held = false
		return
	}
	idx := m.arbitrate()
	w := m.spinners[idx]
	m.spinners = append(m.spinners[:idx], m.spinners[idx+1:]...)
	// Lock stays held; ownership transfers to the winner.
	w.Proc().Resume(m.Xfer.cost(w.Class()))
}

// arbitrate picks the index of the winning spinner by weighted draw.
func (m *SimTAS) arbitrate() int {
	if len(m.spinners) == 1 {
		return 0
	}
	total := 0.0
	for _, s := range m.spinners {
		total += m.Aff.weight(s.Class())
	}
	r := prng.Float64(m.rand()) * total
	for i, s := range m.spinners {
		r -= m.Aff.weight(s.Class())
		if r < 0 {
			return i
		}
	}
	return len(m.spinners) - 1
}

// IsFree reports whether the lock is free.
func (m *SimTAS) IsFree() bool { return !m.held }
