package simlock

import (
	"repro/internal/amp"
	"repro/internal/core"
)

// SimProportional models the paper's SHFL-PBn comparison point: a
// ShflLock driven by a proportional-based static policy. Waiters are
// segregated by core class and the release path admits exactly one
// little-core competitor after every N big-core handovers (§4,
// Evaluation Setup). Fig. 5 sweeps N.
type SimProportional struct {
	// N is the proportion (big handovers per little handover); zero
	// means 10 (SHFL-PB10).
	N int
	// Xfer configures the ownership-transfer costs.
	Xfer xfer
	// ShuffleOverhead is charged per contended handover for the
	// ShflLock shuffler's queue walk (the real lock reorders waiter
	// nodes in the MCS queue while they wait); zero means 120 ns.
	ShuffleOverhead int64

	holder      *amp.Thread
	bigQ        queue
	littleQ     queue
	sinceLittle int
}

func (m *SimProportional) n() int {
	if m.N <= 0 {
		return 10
	}
	return m.N
}

// Lock acquires the lock; waiters queue per class.
func (m *SimProportional) Lock(t *amp.Thread) {
	if m.holder == nil && m.bigQ.empty() && m.littleQ.empty() {
		m.holder = t
		m.Xfer.note(t)
		return
	}
	if t.Class() == core.Big {
		m.bigQ.push(t)
	} else {
		m.littleQ.push(t)
	}
	t.Proc().Suspend()
}

// Unlock hands the lock over per the proportional policy.
func (m *SimProportional) Unlock(t *amp.Thread) {
	if m.holder != t {
		panic("simlock: SimProportional unlock by non-holder")
	}
	var next *amp.Thread
	switch {
	case m.sinceLittle >= m.n() && !m.littleQ.empty():
		next = m.littleQ.pop()
		m.sinceLittle = 0
	case !m.bigQ.empty():
		next = m.bigQ.pop()
		m.sinceLittle++
	case !m.littleQ.empty():
		next = m.littleQ.pop()
		m.sinceLittle = 0
	default:
		m.holder = nil
		return
	}
	m.holder = next
	shuffle := m.ShuffleOverhead
	if shuffle == 0 {
		shuffle = 120
	}
	next.Proc().Resume(m.Xfer.cost(next.Class()) + shuffle)
}

// IsFree reports whether the lock is free with no waiters.
func (m *SimProportional) IsFree() bool {
	return m.holder == nil && m.bigQ.empty() && m.littleQ.empty()
}
