package simlock

import (
	"repro/internal/amp"
	"repro/internal/core"
)

// xfer models lock-ownership transfer cost. On cluster-based AMPs
// (M1, DynamIQ) each class has its own L2, so moving the lock word and
// the protected cache lines across clusters costs far more than a
// handover inside one cluster. This asymmetry is what gives class-
// batching orderings (LibASL's big-core runs) their cache-locality
// edge over policies that interleave classes (§4.1: LibASL "has a
// better cache locality by batching more big cores before passing to
// little cores").
type xfer struct {
	// Same and Cross are the intra-/inter-cluster transfer costs in
	// ns; zero values mean 60 and 300.
	Same, Cross int64

	last   core.Class
	inited bool
}

// cost returns the transfer cost for handing the lock to next and
// records next as the new holder class.
func (x *xfer) cost(next core.Class) int64 {
	same, cross := x.Same, x.Cross
	if same == 0 {
		same = 60
	}
	if cross == 0 {
		cross = 300
	}
	c := same
	if x.inited && next != x.last {
		c = cross
	}
	x.last = next
	x.inited = true
	return c
}

// note records the holder class without charging (for uncontended
// acquisitions, where the transfer happens off the critical path of
// any waiter).
func (x *xfer) note(t *amp.Thread) {
	x.last = t.Class()
	x.inited = true
}
