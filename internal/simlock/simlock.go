// Package simlock implements the paper's locks inside the discrete-
// event AMP model of internal/amp. Each lock mirrors its real
// counterpart in internal/locks, but contention, arbitration and
// handover are modelled explicitly, which is what lets the simulator
// reproduce the collapse phenomena of §2.2 on symmetric host hardware:
//
//   - SimMCS / SimTicket: strict FIFO handover (acquisition fairness)
//   - SimTAS: atomic-operation arbitration with a configurable
//     class-weighted success rate (the paper's little-/big-affinity)
//   - SimBarging: futex-style unfair blocking mutex (pthread stand-in)
//   - SimMCSPark: FIFO with parked waiters (MCS-STP)
//   - SimProportional: ShflLock with the proportional static policy
//   - SimReorderable / SimASL: the paper's Algorithms 1 and 3, reusing
//     the very same feedback controller (internal/core) as the real
//     library
//
// All lock state is mutated in kernel context only (the sim kernel runs
// one goroutine at a time), so no atomics are needed; determinism comes
// from the kernel's total event order plus seeded PRNGs.
package simlock

import (
	"repro/internal/amp"
)

// Lock is a simulated lock usable by class-aware harness code.
type Lock interface {
	// Lock acquires on behalf of thread t, blocking (in virtual time)
	// until granted.
	Lock(t *amp.Thread)
	// Unlock releases; t must be the current holder.
	Unlock(t *amp.Thread)
}

// FIFO is a simulated lock with arrival-order admission that can report
// whether it is free; the reorderable lock builds on it, mirroring
// locks.FIFOLock.
type FIFO interface {
	Lock
	IsFree() bool
}

// queue is a FIFO of waiting threads (spin-style waiters: their procs
// suspend while still occupying their core, exactly like spinning).
type queue struct {
	ts []*amp.Thread
}

func (q *queue) push(t *amp.Thread) { q.ts = append(q.ts, t) }
func (q *queue) pop() *amp.Thread {
	t := q.ts[0]
	q.ts = q.ts[1:]
	return t
}
func (q *queue) len() int    { return len(q.ts) }
func (q *queue) empty() bool { return len(q.ts) == 0 }
