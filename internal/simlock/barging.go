package simlock

import (
	"repro/internal/amp"
)

// SimBarging models a futex-style blocking mutex with barging
// (pthread_mutex_lock's behaviour under contention): a thread finding
// the lock held goes to sleep; release wakes one sleeper, but the lock
// is marked free immediately, so any running thread that arrives
// before the sleeper finishes waking seizes the lock first. Wake-up
// latency therefore stays off the critical path — the property that
// makes pthread_mutex the only usable blocking baseline when cores are
// over-subscribed (Bench-6, Fig. 8h).
type SimBarging struct {
	// WakeSyscall is the FUTEX_WAKE cost the unlocker pays when there
	// are sleepers (the syscall runs on the releasing thread, slowing
	// the holder's fast path — the reason glibc mutexes fall behind
	// spinlocks under extreme contention). Zero means 600 ns.
	WakeSyscall int64

	held     bool
	sleepers queue
}

// Lock acquires the mutex, sleeping (parked, CPU released) while held.
func (m *SimBarging) Lock(t *amp.Thread) {
	for m.held {
		m.sleepers.push(t)
		t.Park()
		// Woken: one more pass of the acquire loop. If a barger seized
		// the lock during the wake-up we re-queue, like a futex waiter.
	}
	m.held = true
}

// Unlock releases the mutex and wakes one sleeper; the wake syscall
// runs on the releasing thread.
func (m *SimBarging) Unlock(t *amp.Thread) {
	if !m.held {
		panic("simlock: SimBarging unlock while free")
	}
	m.held = false
	if !m.sleepers.empty() {
		amp.Unpark(m.sleepers.pop())
		syscall := m.WakeSyscall
		if syscall == 0 {
			syscall = 600
		}
		t.Compute(syscall, amp.NCS)
	}
}

// IsFree reports whether the mutex is free.
func (m *SimBarging) IsFree() bool { return !m.held }
