package simlock

import (
	"repro/internal/amp"
)

// SimMCS models the MCS queue lock: strict FIFO handover with a
// class-dependent ownership-transfer cost (see xfer). Waiters spin on
// their own line, so no extra cost scales with queue length.
type SimMCS struct {
	// Xfer configures the handover costs.
	Xfer   xfer
	holder *amp.Thread
	q      queue
}

// Lock acquires in FIFO order.
func (m *SimMCS) Lock(t *amp.Thread) {
	if m.holder == nil && m.q.empty() {
		m.holder = t
		m.Xfer.note(t)
		return
	}
	m.q.push(t)
	t.Proc().Suspend() // spin: the core stays occupied
}

// Unlock hands over to the queue head.
func (m *SimMCS) Unlock(t *amp.Thread) {
	if m.holder != t {
		panic("simlock: SimMCS unlock by non-holder")
	}
	if m.q.empty() {
		m.holder = nil
		return
	}
	next := m.q.pop()
	m.holder = next
	next.Proc().Resume(m.Xfer.cost(next.Class()))
}

// IsFree reports whether the lock is free with no waiters.
func (m *SimMCS) IsFree() bool { return m.holder == nil && m.q.empty() }

// QueueLen returns the number of waiting threads (for tests).
func (m *SimMCS) QueueLen() int { return m.q.len() }

// SimTicket models the ticket lock. Semantically it is FIFO like MCS,
// but all waiters spin on the shared grant counter, so every handover
// additionally pays a small per-waiter invalidation storm cost — the
// classic reason ticket locks trail MCS at high thread counts.
type SimTicket struct {
	// Xfer configures the handover costs.
	Xfer xfer
	// StormPerWaiter is the extra cost per spinning waiter; zero
	// means 25.
	StormPerWaiter int64
	holder         *amp.Thread
	q              queue
}

func (m *SimTicket) storm() int64 {
	if m.StormPerWaiter == 0 {
		return 25
	}
	return m.StormPerWaiter
}

// Lock acquires in FIFO order.
func (m *SimTicket) Lock(t *amp.Thread) {
	if m.holder == nil && m.q.empty() {
		m.holder = t
		m.Xfer.note(t)
		return
	}
	m.q.push(t)
	t.Proc().Suspend()
}

// Unlock hands over to the queue head.
func (m *SimTicket) Unlock(t *amp.Thread) {
	if m.holder != t {
		panic("simlock: SimTicket unlock by non-holder")
	}
	if m.q.empty() {
		m.holder = nil
		return
	}
	cost := m.storm() * int64(m.q.len())
	next := m.q.pop()
	m.holder = next
	next.Proc().Resume(m.Xfer.cost(next.Class()) + cost)
}

// IsFree reports whether the lock is free with no waiters.
func (m *SimTicket) IsFree() bool { return m.holder == nil && m.q.empty() }

// SimMCSPark models the spin-then-park MCS variant ("MCS-STP",
// Fig. 8h): FIFO handover to a parked waiter, paying the machine's
// wake-up latency (and any run-queue delay behind co-scheduled
// threads) on the critical path at every handover. The brief spinning
// phase of the real lock is omitted: under over-subscription the
// handover almost always outlives any reasonable spin budget, which is
// exactly the regime Bench-6 evaluates.
type SimMCSPark struct {
	holder *amp.Thread
	q      queue
}

// Lock acquires in FIFO order, parking while waiting.
func (m *SimMCSPark) Lock(t *amp.Thread) {
	if m.holder == nil && m.q.empty() {
		m.holder = t
		return
	}
	m.q.push(t)
	t.Park() // releases the CPU; Unlock unparks us as holder
}

// Unlock hands over to the queue head, waking it.
func (m *SimMCSPark) Unlock(t *amp.Thread) {
	if m.holder != t {
		panic("simlock: SimMCSPark unlock by non-holder")
	}
	if m.q.empty() {
		m.holder = nil
		return
	}
	next := m.q.pop()
	m.holder = next
	amp.Unpark(next)
}

// IsFree reports whether the lock is free with no waiters.
func (m *SimMCSPark) IsFree() bool { return m.holder == nil && m.q.empty() }
