package simlock

import (
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/sim"
)

// TestSimTASDeterministicTrace: the weighted arbitration draws from a
// seeded PRNG, so two identical runs must produce identical grant
// sequences, and a different seed must (overwhelmingly) differ.
func TestSimTASDeterministicTrace(t *testing.T) {
	trace := func(seed uint64) []core.Class {
		k := sim.NewKernel()
		m := amp.NewMachine(k, amp.Config{Bigs: 2, Littles: 2, JitterPct: -1})
		l := &SimTAS{Seed: seed, Aff: Affinity{Favoured: core.Big, Factor: 3}}
		var grants []core.Class
		for i := 0; i < 4; i++ {
			m.NewThread("t", i, int64(i), func(th *amp.Thread) {
				for j := 0; j < 50; j++ {
					l.Lock(th)
					grants = append(grants, th.Class())
					th.Compute(200, amp.CS)
					l.Unlock(th)
					th.Compute(100, amp.NCS)
				}
			})
		}
		k.RunAll()
		k.Shutdown()
		return grants
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed traces diverge at %d", i)
		}
	}
	c := trace(8)
	same := 0
	for i := range a {
		if i < len(c) && a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical arbitration")
	}
}

// TestSimASLEndToEnd wires the real feedback controller to the
// simulated reorderable lock and checks the whole loop: violations
// shrink the window, compliance grows it, and little threads keep
// completing work.
func TestSimASLEndToEnd(t *testing.T) {
	k := sim.NewKernel()
	m := amp.NewMachine(k, amp.Config{Bigs: 2, Littles: 2, LittleCSFactor: 3, JitterPct: -1})
	r := &SimReorderable{Fifo: &SimMCS{}}

	const slo = int64(20_000)
	var littleDone int
	var worker *core.Worker
	for i := 0; i < 4; i++ {
		i := i
		m.NewThread("t", i, int64(i), func(th *amp.Thread) {
			w := core.NewWorker(core.WorkerConfig{Class: th.Class(), Clock: th.Clock()})
			if i == 2 {
				worker = w
			}
			for {
				w.EpochStart(0)
				if th.Class() == core.Big {
					r.LockImmediately(th)
				} else {
					r.LockReorder(th, w.ReorderWindow())
				}
				th.Compute(1000, amp.CS)
				r.Unlock(th)
				w.EpochEnd(0, slo)
				if th.Class() == core.Little {
					littleDone++
				}
				th.Compute(500, amp.NCS)
			}
		})
	}
	k.Run(20_000_000) // 20 ms virtual
	k.Shutdown()
	if littleDone == 0 {
		t.Fatal("little threads starved")
	}
	if worker == nil {
		t.Fatal("worker not captured")
	}
	w := worker.EpochWindow(0)
	if w <= 0 || w > core.DefaultMaxWindow {
		t.Fatalf("window out of range: %d", w)
	}
}
