package simlock

import (
	"repro/internal/amp"
	"repro/internal/core"
)

// SimReorderable is the paper's reorderable lock (Algorithm 1) in the
// simulator: a bounded reorder capability over an unmodified underlying
// lock. Standby competitors poll the lock's free state at binary-
// exponentially spaced instants until their reorder window expires,
// then enqueue through the normal path. Competitors taking
// LockImmediately during the window overtake them.
//
// The underlying lock is MCS in the paper's default configuration and
// pthread_mutex (SimBarging) for the over-subscribed blocking variant
// of Bench-6 — exactly the substitution §4.1 describes.
type SimReorderable struct {
	Fifo FIFO
	// MaxWindow caps every reorder window (starvation freedom);
	// zero means core.DefaultMaxWindow.
	MaxWindow int64
	// CheckBase is the first polling interval of the standby back-off;
	// zero means 50 ns (roughly one spin-loop pass of Algorithm 1).
	CheckBase int64
	// Sleeping selects the blocking flavour: the standby competitor
	// releases its CPU between checks (nanosleep), which matters only
	// under core over-subscription.
	Sleeping bool
	// FixedInterval disables the binary-exponential back-off of the
	// standby checks and polls every CheckBase instead (ablation: the
	// paper's line 12 back-off vs naive polling).
	FixedInterval bool
}

func (r *SimReorderable) maxWindow() int64 {
	if r.MaxWindow <= 0 {
		return core.DefaultMaxWindow
	}
	return r.MaxWindow
}

func (r *SimReorderable) checkBase() int64 {
	if r.CheckBase > 0 {
		return r.CheckBase
	}
	if r.Sleeping {
		// The blocking standby waits with nanosleep, whose practical
		// granularity (timer slack + wakeup) is tens of microseconds.
		// Polling coarsely also keeps standby competitors from beating
		// woken immediate-path competitors to every free window.
		return 50_000
	}
	return 50 // one spin-loop pass of Algorithm 1
}

// LockImmediately enqueues on the underlying lock right away
// (Algorithm 1, lock_immediately).
func (r *SimReorderable) LockImmediately(t *amp.Thread) { r.Fifo.Lock(t) }

// LockReorder acquires as a standby competitor with the given window
// (Algorithm 1, lock_reorder). Kernel context makes the free-check plus
// acquire pair atomic, which a real implementation achieves by simply
// calling lock_fifo on a free lock.
func (r *SimReorderable) LockReorder(t *amp.Thread, windowNs int64) {
	if maxW := r.maxWindow(); windowNs > maxW {
		windowNs = maxW
	}
	if r.Fifo.IsFree() {
		r.Fifo.Lock(t)
		return
	}
	if windowNs > 0 {
		end := t.Now() + windowNs
		interval := r.checkBase()
		for {
			now := t.Now()
			if now >= end {
				break
			}
			d := interval
			if rem := end - now; d > rem {
				d = rem
			}
			t.SleepFor(d)
			if r.Fifo.IsFree() {
				break
			}
			if !r.FixedInterval {
				interval <<= 1 // binary exponential back-off of the checks
			}
		}
	}
	r.Fifo.Lock(t)
}

// Unlock releases through the unmodified underlying unlock.
func (r *SimReorderable) Unlock(t *amp.Thread) { r.Fifo.Unlock(t) }

// IsFree reports whether the underlying lock is free.
func (r *SimReorderable) IsFree() bool { return r.Fifo.IsFree() }
