package simlock

import (
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/sim"
)

// rig builds a 2-big + 2-little machine with jitter disabled.
func rig() (*sim.Kernel, *amp.Machine) {
	k := sim.NewKernel()
	m := amp.NewMachine(k, amp.Config{
		Bigs: 2, Littles: 2,
		LittleCSFactor: 3, LittleNCSFactor: 2,
		JitterPct: -1,
	})
	return k, m
}

// exercise runs threads (one per core, big cores first) doing iters
// lock/compute/unlock rounds and fails on any mutual-exclusion
// violation.
func exercise(t *testing.T, l Lock, threads, iters int, csNs, ncsNs int64) {
	t.Helper()
	k, m := rig()
	inside := 0
	violations := 0
	for i := 0; i < threads; i++ {
		m.NewThread("t", i, int64(i), func(th *amp.Thread) {
			for j := 0; j < iters; j++ {
				l.Lock(th)
				inside++
				if inside != 1 {
					violations++
				}
				th.Compute(csNs, amp.CS)
				inside--
				l.Unlock(th)
				th.Compute(ncsNs, amp.NCS)
			}
		})
	}
	k.RunAll()
	k.Shutdown()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
}

func allSimLocks() map[string]func() Lock {
	return map[string]func() Lock{
		"mcs":     func() Lock { return &SimMCS{} },
		"ticket":  func() Lock { return &SimTicket{} },
		"tas":     func() Lock { return &SimTAS{Seed: 1} },
		"barging": func() Lock { return &SimBarging{} },
		"mcspark": func() Lock { return &SimMCSPark{} },
		"prop":    func() Lock { return &SimProportional{} },
	}
}

func TestSimLockMutualExclusion(t *testing.T) {
	for name, mk := range allSimLocks() {
		t.Run(name, func(t *testing.T) {
			exercise(t, mk(), 4, 200, 100, 50)
		})
	}
}

func TestSimLockAllComplete(t *testing.T) {
	// Every thread must finish its iterations (no starvation with a
	// finite workload and no open-ended competition).
	for name, mk := range allSimLocks() {
		t.Run(name, func(t *testing.T) {
			k, m := rig()
			l := mk()
			done := 0
			for i := 0; i < 4; i++ {
				m.NewThread("t", i, int64(i), func(th *amp.Thread) {
					for j := 0; j < 100; j++ {
						l.Lock(th)
						th.Compute(100, amp.CS)
						l.Unlock(th)
						th.Compute(100, amp.NCS)
					}
					done++
				})
			}
			k.RunAll()
			k.Shutdown()
			if done != 4 {
				t.Fatalf("only %d/4 threads completed", done)
			}
		})
	}
}

func TestSimMCSFIFO(t *testing.T) {
	k, m := rig()
	l := &SimMCS{}
	var order []int
	holder := m.NewThread("holder", 0, 0, func(th *amp.Thread) {
		l.Lock(th)
		th.Compute(10_000, amp.CS) // hold while others queue
		l.Unlock(th)
	})
	_ = holder
	for i := 1; i < 4; i++ {
		i := i
		// Stagger arrivals: thread i enqueues at t = i*100.
		m.NewThread("w", i, int64(i)*100, func(th *amp.Thread) {
			l.Lock(th)
			order = append(order, i)
			l.Unlock(th)
		})
	}
	k.RunAll()
	k.Shutdown()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("handover order = %v, want [1 2 3]", order)
	}
}

func TestSimTASAffinityStarvesDisfavoured(t *testing.T) {
	// With an extreme big-core bias and constant contention, big
	// threads must complete far more rounds.
	k, m := rig()
	l := &SimTAS{Seed: 3, Aff: Affinity{Favoured: core.Big, Factor: 50}}
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		m.NewThread("t", i, int64(i), func(th *amp.Thread) {
			for {
				l.Lock(th)
				th.Compute(500, amp.CS)
				l.Unlock(th)
				counts[i]++
				th.Compute(10, amp.NCS)
			}
		})
	}
	k.Run(5_000_000)
	k.Shutdown()
	bigOps := counts[0] + counts[1]
	littleOps := counts[2] + counts[3]
	if bigOps < littleOps*5 {
		t.Fatalf("biased TAS: big=%d little=%d, want strong bias", bigOps, littleOps)
	}
}

func TestSimTASNeutralRoughlyFair(t *testing.T) {
	k, m := rig()
	l := &SimTAS{Seed: 3}
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		m.NewThread("t", i, int64(i), func(th *amp.Thread) {
			for {
				l.Lock(th)
				th.Compute(500, amp.CS) // same CS cost in wall time? no: class-scaled
				l.Unlock(th)
				counts[i]++
				th.Compute(10, amp.NCS)
			}
		})
	}
	k.Run(5_000_000)
	k.Shutdown()
	bigOps := counts[0] + counts[1]
	littleOps := counts[2] + counts[3]
	// Neutral arbitration: littles still complete a healthy share
	// (their longer CS slows everyone, not their win rate).
	if littleOps*4 < bigOps {
		t.Fatalf("neutral TAS skewed: big=%d little=%d", bigOps, littleOps)
	}
}

func TestSimProportionalPolicy(t *testing.T) {
	k, m := rig()
	l := &SimProportional{N: 2}
	var grants []core.Class
	// One holder keeps the lock while 3 waiters queue; then grants
	// follow the 2-bigs-then-1-little policy.
	m.NewThread("holder", 0, 0, func(th *amp.Thread) {
		l.Lock(th)
		th.Compute(5_000, amp.CS)
		l.Unlock(th)
	})
	for i := 1; i < 4; i++ {
		i := i
		m.NewThread("w", i, int64(i)*50, func(th *amp.Thread) {
			for j := 0; j < 3; j++ {
				l.Lock(th)
				grants = append(grants, th.Class())
				th.Compute(500, amp.CS)
				l.Unlock(th)
				th.Compute(100, amp.NCS)
			}
		})
	}
	k.RunAll()
	k.Shutdown()
	if len(grants) != 9 {
		t.Fatalf("grants = %d, want 9", len(grants))
	}
	// The policy admits at most 1 little per 2 big handovers while the
	// big queue is non-empty; overall littles must not dominate early.
	littleEarly := 0
	for _, c := range grants[:4] {
		if c == core.Little {
			littleEarly++
		}
	}
	if littleEarly > 2 {
		t.Fatalf("proportional policy let littles dominate: %v", grants)
	}
}

func TestSimBargingWakesSleepers(t *testing.T) {
	k, m := rig()
	l := &SimBarging{}
	completions := 0
	for i := 0; i < 4; i++ {
		m.NewThread("t", i, int64(i), func(th *amp.Thread) {
			for j := 0; j < 50; j++ {
				l.Lock(th)
				th.Compute(1000, amp.CS)
				l.Unlock(th)
				th.Compute(5000, amp.NCS)
			}
			completions++
		})
	}
	k.RunAll()
	k.Shutdown()
	if completions != 4 {
		t.Fatalf("completions = %d, want 4 (lost wakeup?)", completions)
	}
}

func TestSimMCSParkPaysWakeLatency(t *testing.T) {
	// Handover to a parked waiter must cost at least the machine wake
	// latency; SimMCS handover must be far cheaper.
	measure := func(l Lock) int64 {
		k, m := rig()
		var acquiredAt int64
		m.NewThread("holder", 0, 0, func(th *amp.Thread) {
			l.Lock(th)
			th.Compute(10_000, amp.CS)
			l.Unlock(th)
		})
		m.NewThread("waiter", 1, 100, func(th *amp.Thread) {
			l.Lock(th)
			acquiredAt = th.Now()
			l.Unlock(th)
		})
		k.RunAll()
		k.Shutdown()
		return acquiredAt
	}
	spin := measure(&SimMCS{})
	park := measure(&SimMCSPark{})
	if park <= spin {
		t.Fatalf("parked handover (%d) must be slower than spinning handover (%d)", park, spin)
	}
	if park-spin < 4_000 {
		t.Fatalf("parked handover should pay ~wake latency, delta = %d", park-spin)
	}
}

func TestSimReorderableImmediateVsStandby(t *testing.T) {
	k, m := rig()
	r := &SimReorderable{Fifo: &SimMCS{}}
	var order []string
	m.NewThread("holder", 0, 0, func(th *amp.Thread) {
		r.LockImmediately(th)
		th.Compute(20_000, amp.CS)
		r.Unlock(th)
	})
	// The standby (little, big window) starts polling at t=100.
	m.NewThread("standby", 2, 100, func(th *amp.Thread) {
		r.LockReorder(th, 1_000_000)
		order = append(order, "standby")
		r.Unlock(th)
	})
	// The immediate (big) arrives later, at t=10000, but overtakes.
	m.NewThread("imm", 1, 10_000, func(th *amp.Thread) {
		r.LockImmediately(th)
		order = append(order, "imm")
		r.Unlock(th)
	})
	k.RunAll()
	k.Shutdown()
	if len(order) != 2 || order[0] != "imm" || order[1] != "standby" {
		t.Fatalf("order = %v, want [imm standby]", order)
	}
}

func TestSimReorderableWindowExpiryEnqueues(t *testing.T) {
	k, m := rig()
	r := &SimReorderable{Fifo: &SimMCS{}}
	var standbyAt int64
	m.NewThread("holder", 0, 0, func(th *amp.Thread) {
		r.LockImmediately(th)
		th.Compute(500_000, amp.CS) // holds long past the window
		r.Unlock(th)
	})
	m.NewThread("standby", 2, 100, func(th *amp.Thread) {
		r.LockReorder(th, 50_000) // window ends at ~50µs
		standbyAt = th.Now()
		r.Unlock(th)
	})
	k.RunAll()
	k.Shutdown()
	// The standby enqueued at window expiry and acquired right after
	// the holder released at 500µs.
	if standbyAt < 500_000 || standbyAt > 520_000 {
		t.Fatalf("standby acquired at %d, want shortly after 500µs", standbyAt)
	}
}

func TestSimReorderableFreeGrab(t *testing.T) {
	k, m := rig()
	r := &SimReorderable{Fifo: &SimMCS{}}
	var at int64 = -1
	m.NewThread("standby", 2, 0, func(th *amp.Thread) {
		r.LockReorder(th, 1_000_000_000)
		at = th.Now()
		r.Unlock(th)
	})
	k.RunAll()
	k.Shutdown()
	if at != 0 {
		t.Fatalf("free lock must be taken immediately, got t=%d", at)
	}
}

func TestSimReorderableMaxWindowClamp(t *testing.T) {
	k, m := rig()
	r := &SimReorderable{Fifo: &SimMCS{}, MaxWindow: 10_000}
	var at int64
	m.NewThread("holder", 0, 0, func(th *amp.Thread) {
		r.LockImmediately(th)
		th.Compute(100_000, amp.CS)
		r.Unlock(th)
	})
	m.NewThread("standby", 2, 10, func(th *amp.Thread) {
		r.LockReorder(th, 1<<50) // clamped to 10µs: enqueues at ~10µs
		at = th.Now()
		r.Unlock(th)
	})
	k.RunAll()
	k.Shutdown()
	if at > 110_000 {
		t.Fatalf("standby acquired at %d; max-window clamp failed", at)
	}
}

func TestXferCost(t *testing.T) {
	x := &xfer{Same: 10, Cross: 100}
	if c := x.cost(core.Big); c != 10 {
		t.Fatalf("first handover = %d, want Same (uninitialised)", c)
	}
	if c := x.cost(core.Big); c != 10 {
		t.Fatalf("same-class handover = %d, want 10", c)
	}
	if c := x.cost(core.Little); c != 100 {
		t.Fatalf("cross-class handover = %d, want 100", c)
	}
	if c := x.cost(core.Little); c != 10 {
		t.Fatalf("little→little handover = %d, want 10", c)
	}
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	k, m := rig()
	l := &SimMCS{}
	var recovered any
	m.NewThread("a", 0, 0, func(th *amp.Thread) {
		l.Lock(th)
		th.Compute(1000, amp.CS)
		l.Unlock(th)
	})
	m.NewThread("b", 1, 10, func(th *amp.Thread) {
		defer func() { recovered = recover() }()
		l.Unlock(th) // not the holder
	})
	k.RunAll()
	k.Shutdown()
	if recovered == nil {
		t.Fatal("unlock by non-holder must panic")
	}
}
