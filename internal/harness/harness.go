// Package harness provides the experiment machinery shared by the
// simulator and real-engine benchmarks: result containers matching the
// paper's figure types (comparison bars, x/y series, CDFs, traces),
// aligned-text and CSV rendering, and small sweep helpers.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Point is one (x, y) pair of a series.
type Point struct {
	X, Y float64
}

// Series is one named line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Figure is the result of reproducing one paper figure: either bar rows
// (Summary per lock), line series, or both, plus free-form notes.
type Figure struct {
	ID     string // e.g. "fig8a"
	Title  string
	XLabel string
	YLabel string
	Rows   []stats.Summary
	Series []Series
	Notes  []string
}

// Note appends a free-form annotation rendered with the figure.
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Render returns an aligned-text view of the figure.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Rows) > 0 {
		b.WriteString(stats.FormatSummaries(f.Rows))
	}
	if len(f.Series) > 0 {
		if f.XLabel != "" || f.YLabel != "" {
			fmt.Fprintf(&b, "x=%s  y=%s\n", f.XLabel, f.YLabel)
		}
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%s:\n", s.Name)
			for _, p := range s.Points {
				fmt.Fprintf(&b, "  %14.3f %14.3f\n", p.X, p.Y)
			}
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the series of the figure as long-format CSV
// (series,x,y), or the rows if the figure is a bar comparison.
func (f *Figure) CSV() string {
	var b strings.Builder
	if len(f.Series) > 0 {
		b.WriteString("series,x,y\n")
		for _, s := range f.Series {
			for _, p := range s.Points {
				fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, p.X, p.Y)
			}
		}
		return b.String()
	}
	b.WriteString("name,throughput,big_p99_ns,little_p99_ns,overall_p99_ns\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%s,%.0f,%d,%d,%d\n", r.Name, r.Throughput, r.BigP99, r.LittleP99, r.OverallP99)
	}
	return b.String()
}

// FindRow returns the summary row with the given name.
func (f *Figure) FindRow(name string) (stats.Summary, bool) {
	for _, r := range f.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return stats.Summary{}, false
}

// FindSeries returns the series with the given name.
func (f *Figure) FindSeries(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// MaxY returns the maximum y value of the series.
func (s Series) MaxY() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// YAt returns the y value at the given x (exact match) and whether it
// was found.
func (s Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Monotone reports whether the series' y values are non-decreasing
// within a relative tolerance tol (0.05 allows 5% dips from the running
// maximum, absorbing sampling noise).
func (s Series) Monotone(tol float64) bool {
	best := 0.0
	for _, p := range s.Points {
		if p.Y < best*(1-tol) {
			return false
		}
		if p.Y > best {
			best = p.Y
		}
	}
	return true
}

// CDFFigure renders a latency CDF (paper Figs. 9c/9f/9i/10c/10f) from
// overall and little-core histograms.
func CDFFigure(id, title string, sloNs int64, overall, little *stats.Histogram, maxPoints int) *Figure {
	f := &Figure{ID: id, Title: title, XLabel: "latency_ns", YLabel: "cumulative probability"}
	toSeries := func(name string, pts []stats.CDFPoint) Series {
		s := Series{Name: name}
		for _, p := range pts {
			s.Add(float64(p.Value), p.Probability)
		}
		return s
	}
	f.Series = append(f.Series,
		toSeries("overall", overall.CDF(maxPoints)),
		toSeries("little", little.CDF(maxPoints)))
	f.Note("SLO=%dns halfSLO=%dns", sloNs, sloNs/2)
	return f
}

// SortRowsByName orders the figure's rows alphabetically (stable
// output for goldens).
func (f *Figure) SortRowsByName() {
	sort.SliceStable(f.Rows, func(i, j int) bool { return f.Rows[i].Name < f.Rows[j].Name })
}
