package harness

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSeriesHelpers(t *testing.T) {
	s := Series{Name: "x"}
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(3, 15)
	if m := s.MaxY(); m != 20 {
		t.Fatalf("MaxY = %v", m)
	}
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Fatalf("YAt(2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Fatal("YAt on missing x should report false")
	}
}

func TestSeriesMonotone(t *testing.T) {
	up := Series{Points: []Point{{1, 10}, {2, 20}, {3, 30}}}
	if !up.Monotone(0) {
		t.Fatal("strictly increasing series must be monotone")
	}
	noisy := Series{Points: []Point{{1, 100}, {2, 98}, {3, 120}}}
	if !noisy.Monotone(0.05) {
		t.Fatal("2% dip within 5% tolerance must pass")
	}
	falling := Series{Points: []Point{{1, 100}, {2, 50}}}
	if falling.Monotone(0.05) {
		t.Fatal("50% drop must fail monotonicity")
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	f := &Figure{ID: "figX", Title: "test figure", XLabel: "x", YLabel: "y"}
	f.Series = append(f.Series, Series{Name: "a", Points: []Point{{1, 2}}})
	f.Note("hello %d", 42)
	out := f.Render()
	for _, want := range []string{"figX", "test figure", "a:", "hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "series,x,y\n") || !strings.Contains(csv, "a,1,2") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestFigureRowsCSV(t *testing.T) {
	f := &Figure{ID: "figY"}
	f.Rows = append(f.Rows, stats.Summary{Name: "mcs", Throughput: 123, BigP99: 1, LittleP99: 2, OverallP99: 3})
	csv := f.CSV()
	if !strings.Contains(csv, "mcs,123,1,2,3") {
		t.Errorf("rows csv wrong:\n%s", csv)
	}
	if _, ok := f.FindRow("mcs"); !ok {
		t.Fatal("FindRow failed")
	}
	if _, ok := f.FindRow("nope"); ok {
		t.Fatal("FindRow found a ghost")
	}
}

func TestCDFFigure(t *testing.T) {
	overall, little := stats.NewHistogram(), stats.NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		overall.Record(i)
		if i%2 == 0 {
			little.Record(i)
		}
	}
	f := CDFFigure("cdf", "t", 500, overall, little, 16)
	ov, ok := f.FindSeries("overall")
	if !ok || len(ov.Points) == 0 || len(ov.Points) > 16 {
		t.Fatalf("overall CDF wrong: %d points", len(ov.Points))
	}
	if ov.Points[len(ov.Points)-1].Y != 1 {
		t.Fatal("CDF must end at probability 1")
	}
	if _, ok := f.FindSeries("little"); !ok {
		t.Fatal("missing little series")
	}
}

func TestSortRowsByName(t *testing.T) {
	f := &Figure{}
	f.Rows = []stats.Summary{{Name: "z"}, {Name: "a"}, {Name: "m"}}
	f.SortRowsByName()
	if f.Rows[0].Name != "a" || f.Rows[2].Name != "z" {
		t.Fatalf("rows not sorted: %v", f.Rows)
	}
}
