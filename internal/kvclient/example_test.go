package kvclient_test

import (
	"fmt"

	"repro/internal/kvclient"
	"repro/internal/kvserver"
	"repro/internal/shardedkv"
)

// Example runs a complete client/server round trip: a kvserver over
// an in-process store, a client dialling it, and one operation of
// each SLO class — the interactive Put runs big-class at the shard
// lock, the bulk Range little-class through the admission gate.
func Example() {
	st := shardedkv.New(shardedkv.Config{Shards: 4})
	srv, err := kvserver.New(kvserver.Config{Store: st})
	if err != nil {
		panic(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	defer srv.Close()

	cl, err := kvclient.Dial(srv.Addr().String())
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	inserted, _ := cl.Put(kvserver.ClassInteractive, 1, []byte("hello"))
	fmt.Printf("put inserted = %v\n", inserted)

	v, found, _ := cl.Get(kvserver.ClassInteractive, 1)
	fmt.Printf("get = %s (found %v)\n", v, found)

	cl.Put(kvserver.ClassBulk, 2, []byte("world"))
	kvs, _, _ := cl.Range(kvserver.ClassBulk, 0, 10, 0)
	for _, kv := range kvs {
		fmt.Printf("range %d = %s\n", kv.Key, kv.Value)
	}

	stats, _ := cl.Stats()
	fmt.Printf("interactive ops = %d, bulk ops = %d\n", stats.Interactive.Ops, stats.Bulk.Ops)
	// Output:
	// put inserted = true
	// get = hello (found true)
	// range 1 = hello
	// range 2 = world
	// interactive ops = 2, bulk ops = 3
}
