// Package kvclient is the concurrent, pipelining client for the
// kvserver binary protocol (docs/protocol.md). One Client multiplexes
// one TCP connection: any number of goroutines may issue requests
// concurrently, each call blocks only its own goroutine, and requests
// overlap on the wire (the response matcher pairs frames back to
// callers by request id, so responses may be consumed out of order
// even though today's server answers in order).
//
// Every operation takes the SLO class it should run under on the
// server — kvserver.ClassInteractive maps to big-class lock admission,
// kvserver.ClassBulk to little-class plus the bulk admission gate — so
// the caller's latency contract rides on each request, not on any
// connection-level state.
package kvclient

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/kvserver"
	"repro/internal/shardedkv"
)

// ErrClosed is returned by calls made after Close (or after the
// connection failed).
var ErrClosed = errors.New("kvclient: client closed")

// StatusError is a non-OK response status from the server.
type StatusError struct {
	Status  uint8
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("kvclient: server error: %s (%s)", kvserver.StatusText(e.Status), e.Message)
}

// IsAdmissionRejected reports whether err is the server shedding a
// bulk request at the admission gate (retry later, or re-issue as
// interactive if the latency contract changed).
func IsAdmissionRejected(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == kvserver.StatusErrAdmission
}

// pending is one in-flight call's completion slot.
type pending struct {
	ch chan result
}

type result struct {
	resp  kvserver.Response
	frame []byte // backing array of resp.Payload (owned by the receiver)
	err   error
}

// Client is a multiplexed connection to one kvserver. Safe for
// concurrent use; create with Dial, release with Close.
type Client struct {
	mu      sync.Mutex // guards conn writes, nextID, pending, closed
	conn    net.Conn
	bw      *bufio.Writer
	nextID  uint64
	pending map[uint64]*pending
	closed  bool
	readErr error
	wbuf    []byte

	pool sync.Pool // *pending
}

// Dial connects to a kvserver at addr and performs the protocol
// handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write([]byte(kvserver.Magic)); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]*pending),
	}
	c.pool.New = func() any { return &pending{ch: make(chan result, 1)} }
	go c.readLoop()
	return c, nil
}

// DialRetry dials addr, retrying on connection refusal until timeout —
// for harnesses that race a just-started server.
func DialRetry(addr string, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	err := c.conn.Close()
	c.failAllLocked(ErrClosed)
	c.mu.Unlock()
	return err
}

// failAllLocked completes every pending call with err (c.mu held).
func (c *Client) failAllLocked(err error) {
	for id, p := range c.pending {
		delete(c.pending, id)
		p.ch <- result{err: err}
	}
}

// readLoop is the response matcher: it owns the read side, pairing
// response frames to pending calls by id. Each frame is read into a
// fresh buffer whose ownership passes to the completed call.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		frame, err := kvserver.ReadFrame(br, nil)
		if err != nil {
			c.mu.Lock()
			if !c.closed {
				c.closed = true
				c.readErr = err
				c.conn.Close()
			}
			c.failAllLocked(c.readErr)
			c.mu.Unlock()
			return
		}
		resp, err := kvserver.DecodeResponse(frame)
		if err != nil {
			continue // unmatchable frame; the call times out with the conn
		}
		c.mu.Lock()
		p := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if p != nil {
			p.ch <- result{resp: resp, frame: frame}
		}
	}
}

// roundTrip encodes req (id assigned here), pipelines it onto the
// connection, and blocks until its response arrives.
func (c *Client) roundTrip(req *kvserver.Request) (kvserver.Response, error) {
	p := c.pool.Get().(*pending)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.pool.Put(p)
		if c.readErr != nil {
			return kvserver.Response{}, c.readErr
		}
		return kvserver.Response{}, ErrClosed
	}
	c.nextID++
	req.ID = c.nextID
	buf, err := kvserver.AppendRequest(c.wbuf[:0], req)
	if err != nil {
		c.mu.Unlock()
		c.pool.Put(p)
		return kvserver.Response{}, err
	}
	c.wbuf = buf
	c.pending[req.ID] = p
	_, werr := c.bw.Write(buf)
	if werr == nil {
		// Flush before releasing the lock: correct pipelining would
		// only flush when no other writer is queued, but tracking that
		// costs more than the write — and concurrent callers still
		// overlap request and response on the wire.
		werr = c.bw.Flush()
	}
	if werr != nil {
		// If the response somehow raced in before the write error
		// surfaced (partial flush), the slot is already unregistered
		// and carries a token — fall through and consume it.
		if _, registered := c.pending[req.ID]; registered {
			delete(c.pending, req.ID)
			c.mu.Unlock()
			c.pool.Put(p)
			return kvserver.Response{}, werr
		}
	}
	c.mu.Unlock()

	res := <-p.ch
	c.pool.Put(p)
	if res.err != nil {
		return kvserver.Response{}, res.err
	}
	if res.resp.Status != kvserver.StatusOK {
		return res.resp, &StatusError{Status: res.resp.Status, Message: string(res.resp.Payload)}
	}
	return res.resp, nil
}

// Get reads key k under class.
func (c *Client) Get(class uint8, k uint64) ([]byte, bool, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpGet, Class: class, Key: k})
	if err != nil {
		return nil, false, err
	}
	return kvserver.DecodeGetPayload(resp.Payload)
}

// Put stores k=v under class; reports insert-vs-replace. v is not
// retained after the call returns.
func (c *Client) Put(class uint8, k uint64, v []byte) (bool, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpPut, Class: class, Key: k, Value: v})
	if err != nil {
		return false, err
	}
	return kvserver.DecodeBoolPayload(resp.Payload)
}

// Delete removes k under class; reports presence.
func (c *Client) Delete(class uint8, k uint64) (bool, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpDelete, Class: class, Key: k})
	if err != nil {
		return false, err
	}
	return kvserver.DecodeBoolPayload(resp.Payload)
}

// MultiGet reads all keys in one request under class.
func (c *Client) MultiGet(class uint8, keys []uint64) ([][]byte, []bool, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpMultiGet, Class: class, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	return kvserver.DecodeMultiGetPayload(resp.Payload)
}

// MultiPut writes all pairs in one request under class; returns the
// number newly inserted.
func (c *Client) MultiPut(class uint8, kvs []shardedkv.Pair) (int, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpMultiPut, Class: class, KVs: kvs})
	if err != nil {
		return 0, err
	}
	return kvserver.DecodeMultiPutPayload(resp.Payload)
}

// Range returns pairs in [lo, hi] in ascending key order, at most
// limit of them (limit 0 = the server's cap). more reports a
// truncated emission — continue from kvs[len(kvs)-1].Key+1.
func (c *Client) Range(class uint8, lo, hi uint64, limit int) (kvs []shardedkv.Pair, more bool, err error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpRange, Class: class, Lo: lo, Hi: hi, Limit: uint32(limit)})
	if err != nil {
		return nil, false, err
	}
	kvs, err = kvserver.DecodeRangePayload(resp.Payload)
	return kvs, resp.Flags&kvserver.FlagMore != 0, err
}

// Flush drives the server-side write barrier (meaningful when the
// server runs the combining pipeline).
func (c *Client) Flush(class uint8) error {
	_, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpFlush, Class: class})
	return err
}

// Stats fetches the server's aggregate stats.
func (c *Client) Stats() (kvserver.ServerStats, error) {
	var st kvserver.ServerStats
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpStats, Class: kvserver.ClassInteractive})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp.Payload, &st); err != nil {
		return st, fmt.Errorf("kvclient: stats payload: %w", err)
	}
	return st, nil
}
