// Package kvclient is the concurrent, pipelining client for the
// kvserver binary protocol (docs/protocol.md). One Client multiplexes
// one TCP connection: any number of goroutines may issue requests
// concurrently, each call blocks only its own goroutine, and requests
// overlap on the wire (the response matcher pairs frames back to
// callers by request id, so responses may be consumed out of order
// even though today's server answers in order).
//
// Every operation takes the SLO class it should run under on the
// server — kvserver.ClassInteractive maps to big-class lock admission,
// kvserver.ClassBulk to little-class plus the bulk admission gate — so
// the caller's latency contract rides on each request, not on any
// connection-level state.
package kvclient

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/kvserver"
	"repro/internal/shardedkv"
)

// ErrClosed is returned by calls made after an explicit Close. It is
// NOT retryable: the caller asked for the teardown. A connection that
// failed underneath the client instead poisons it with a
// *RetryableError carrying the transport cause.
var ErrClosed = errors.New("kvclient: client closed")

// RetryableError marks a transport-level failure — broken or timed-out
// connection, torn response frame — after which the request's outcome
// is unknown and a fresh connection is worth trying. The write may or
// may not have been applied; callers retrying non-idempotent work own
// that ambiguity (this protocol's writes are last-writer-wins, so a
// duplicate apply is harmless).
type RetryableError struct{ Err error }

func (e *RetryableError) Error() string { return "kvclient: retryable: " + e.Err.Error() }
func (e *RetryableError) Unwrap() error { return e.Err }

// IsRetryable reports whether err is worth retrying, possibly on a new
// connection: any transport failure (*RetryableError, including
// per-request timeouts) and the server statuses that promise the
// request was not applied or will succeed later — admission shedding,
// a degraded store (StatusErrUnavailable), a draining server. ErrClosed
// and hard protocol errors (malformed, too large) are not retryable.
func IsRetryable(err error) bool {
	var re *RetryableError
	if errors.As(err, &re) {
		return true
	}
	var se *StatusError
	if errors.As(err, &se) {
		switch se.Status {
		case kvserver.StatusErrAdmission, kvserver.StatusErrUnavailable, kvserver.StatusErrShutdown:
			return true
		}
		return false
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Options tunes a Client beyond the address.
type Options struct {
	// RequestTimeout bounds each round trip (write deadline on the
	// send, response wait on the receive). A request that times out
	// fails with a *RetryableError and tears the connection down — on
	// a pipelined connection a stuck response stalls everything behind
	// it, so the conn is not worth keeping. 0 means no deadline.
	RequestTimeout time.Duration
	// WrapConn interposes on the dialed connection before any bytes
	// move — the seam the chaos harness uses to inject read/write
	// faults (internal/fault.WrapConn). nil means identity.
	WrapConn func(net.Conn) net.Conn
}

// StatusError is a non-OK response status from the server.
type StatusError struct {
	Status  uint8
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("kvclient: server error: %s (%s)", kvserver.StatusText(e.Status), e.Message)
}

// IsAdmissionRejected reports whether err is the server shedding a
// bulk request at the admission gate (retry later, or re-issue as
// interactive if the latency contract changed).
func IsAdmissionRejected(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == kvserver.StatusErrAdmission
}

// pending is one in-flight call's completion slot.
type pending struct {
	ch chan result
}

type result struct {
	resp  kvserver.Response
	frame []byte // backing array of resp.Payload (owned by the receiver)
	err   error
}

// Client is a multiplexed connection to one kvserver. Safe for
// concurrent use; create with Dial, release with Close.
type Client struct {
	timeout time.Duration

	mu      sync.Mutex // guards conn writes, nextID, pending, closed
	conn    net.Conn
	bw      *bufio.Writer
	nextID  uint64
	pending map[uint64]*pending
	closed  bool
	readErr error
	wbuf    []byte

	pool sync.Pool // *pending
}

// Dial connects to a kvserver at addr and performs the protocol
// handshake.
func Dial(addr string) (*Client, error) { return DialOpts(addr, Options{}) }

// DialOpts is Dial with Options.
func DialOpts(addr string, opts Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if opts.WrapConn != nil {
		conn = opts.WrapConn(conn)
	}
	if _, err := conn.Write([]byte(kvserver.Magic)); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		timeout: opts.RequestTimeout,
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]*pending),
	}
	c.pool.New = func() any { return &pending{ch: make(chan result, 1)} }
	go c.readLoop()
	return c, nil
}

// DialRetry dials addr, retrying on connection refusal until timeout —
// for harnesses that race a just-started server.
func DialRetry(addr string, timeout time.Duration) (*Client, error) {
	return DialRetryOpts(addr, timeout, Options{})
}

// DialRetryOpts is DialRetry with Options.
func DialRetryOpts(addr string, timeout time.Duration, opts Options) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := DialOpts(addr, opts)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	err := c.conn.Close()
	c.failAllLocked(ErrClosed)
	c.mu.Unlock()
	return err
}

// failAllLocked completes every pending call with err (c.mu held).
func (c *Client) failAllLocked(err error) {
	for id, p := range c.pending {
		delete(c.pending, id)
		p.ch <- result{err: err}
	}
}

// teardown poisons the client after a transport failure: every pending
// call — and every future call — fails with a *RetryableError carrying
// cause. No call is ever stranded: a pending slot either gets its
// response from readLoop or a failure token here, never neither.
// Idempotent; an explicit Close that got there first wins (ErrClosed).
func (c *Client) teardown(cause error) {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.readErr = &RetryableError{Err: cause}
		c.conn.Close()
	}
	if c.readErr == nil {
		c.readErr = ErrClosed
	}
	c.failAllLocked(c.readErr)
	c.mu.Unlock()
}

// readLoop is the response matcher: it owns the read side, pairing
// response frames to pending calls by id. Each frame is read into a
// fresh buffer whose ownership passes to the completed call.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		frame, err := kvserver.ReadFrame(br, nil)
		if err != nil {
			c.teardown(err)
			return
		}
		resp, err := kvserver.DecodeResponse(frame)
		if err != nil {
			// The stream's framing survived but the payload did not:
			// the connection is desynchronized beyond this response's
			// caller alone. Fail everything rather than strand the one
			// call whose frame was mangled.
			c.teardown(err)
			return
		}
		c.mu.Lock()
		p := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if p != nil {
			p.ch <- result{resp: resp, frame: frame}
		}
	}
}

// roundTrip encodes req (id assigned here), pipelines it onto the
// connection, and blocks until its response arrives.
func (c *Client) roundTrip(req *kvserver.Request) (kvserver.Response, error) {
	p := c.pool.Get().(*pending)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.pool.Put(p)
		if c.readErr != nil {
			return kvserver.Response{}, c.readErr
		}
		return kvserver.Response{}, ErrClosed
	}
	c.nextID++
	req.ID = c.nextID
	buf, err := kvserver.AppendRequest(c.wbuf[:0], req)
	if err != nil {
		c.mu.Unlock()
		c.pool.Put(p)
		return kvserver.Response{}, err
	}
	c.wbuf = buf
	c.pending[req.ID] = p
	if c.timeout > 0 {
		// Bound the send too: bw.Flush runs under c.mu, so an unbounded
		// block here (peer stopped reading, send buffer full) would
		// freeze every other caller, not just this one.
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	_, werr := c.bw.Write(buf)
	if werr == nil {
		// Flush before releasing the lock: correct pipelining would
		// only flush when no other writer is queued, but tracking that
		// costs more than the write — and concurrent callers still
		// overlap request and response on the wire.
		werr = c.bw.Flush()
	}
	c.mu.Unlock()
	if werr != nil {
		// A write error poisons the whole connection, not just this
		// call: the bufio stream may have emitted a partial frame, so
		// anything written after it would be garbage to the server.
		// teardown delivers exactly one failure token to every pending
		// slot still registered — including ours, unless the response
		// raced in first — so the receive below never blocks.
		c.teardown(werr)
	}

	var res result
	if c.timeout <= 0 {
		res = <-p.ch
	} else {
		timer := time.NewTimer(c.timeout)
		select {
		case res = <-p.ch:
			timer.Stop()
		case <-timer.C:
			c.mu.Lock()
			if _, registered := c.pending[req.ID]; registered {
				// Still ours: unregister so no late response or
				// teardown can deliver a token, then abandon the conn —
				// pipelined responses behind the stuck one are stuck
				// too, and a retry on this conn would queue behind them.
				delete(c.pending, req.ID)
				c.mu.Unlock()
				c.pool.Put(p)
				err := &RetryableError{Err: fmt.Errorf("kvclient: request timed out after %v", c.timeout)}
				c.teardown(err.Err)
				return kvserver.Response{}, err
			}
			// Photo finish: a deliverer already unregistered the slot,
			// so its token is on the channel (or about to be).
			c.mu.Unlock()
			res = <-p.ch
		}
	}
	c.pool.Put(p)
	if res.err != nil {
		return kvserver.Response{}, res.err
	}
	if res.resp.Status != kvserver.StatusOK {
		return res.resp, &StatusError{Status: res.resp.Status, Message: string(res.resp.Payload)}
	}
	return res.resp, nil
}

// Get reads key k under class.
func (c *Client) Get(class uint8, k uint64) ([]byte, bool, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpGet, Class: class, Key: k})
	if err != nil {
		return nil, false, err
	}
	return kvserver.DecodeGetPayload(resp.Payload)
}

// Put stores k=v under class; reports insert-vs-replace. v is not
// retained after the call returns.
func (c *Client) Put(class uint8, k uint64, v []byte) (bool, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpPut, Class: class, Key: k, Value: v})
	if err != nil {
		return false, err
	}
	return kvserver.DecodeBoolPayload(resp.Payload)
}

// Delete removes k under class; reports presence.
func (c *Client) Delete(class uint8, k uint64) (bool, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpDelete, Class: class, Key: k})
	if err != nil {
		return false, err
	}
	return kvserver.DecodeBoolPayload(resp.Payload)
}

// MultiGet reads all keys in one request under class.
func (c *Client) MultiGet(class uint8, keys []uint64) ([][]byte, []bool, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpMultiGet, Class: class, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	return kvserver.DecodeMultiGetPayload(resp.Payload)
}

// MultiPut writes all pairs in one request under class; returns the
// number newly inserted.
func (c *Client) MultiPut(class uint8, kvs []shardedkv.Pair) (int, error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpMultiPut, Class: class, KVs: kvs})
	if err != nil {
		return 0, err
	}
	return kvserver.DecodeMultiPutPayload(resp.Payload)
}

// Range returns pairs in [lo, hi] in ascending key order, at most
// limit of them (limit 0 = the server's cap). more reports a
// truncated emission — continue from kvs[len(kvs)-1].Key+1.
func (c *Client) Range(class uint8, lo, hi uint64, limit int) (kvs []shardedkv.Pair, more bool, err error) {
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpRange, Class: class, Lo: lo, Hi: hi, Limit: uint32(limit)})
	if err != nil {
		return nil, false, err
	}
	kvs, err = kvserver.DecodeRangePayload(resp.Payload)
	return kvs, resp.Flags&kvserver.FlagMore != 0, err
}

// Flush drives the server-side write barrier (meaningful when the
// server runs the combining pipeline).
func (c *Client) Flush(class uint8) error {
	_, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpFlush, Class: class})
	return err
}

// Stats fetches the server's aggregate stats.
func (c *Client) Stats() (kvserver.ServerStats, error) {
	var st kvserver.ServerStats
	resp, err := c.roundTrip(&kvserver.Request{Op: kvserver.OpStats, Class: kvserver.ClassInteractive})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp.Payload, &st); err != nil {
		return st, fmt.Errorf("kvclient: stats payload: %w", err)
	}
	return st, nil
}
