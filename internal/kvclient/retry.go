package kvclient

import (
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/kvserver"
	"repro/internal/prng"
	"repro/internal/shardedkv"
)

// RetryConfig tunes a Retrying client. Zero values take the defaults
// noted per field.
type RetryConfig struct {
	// MaxAttempts bounds tries per operation, first included. Default 5.
	MaxAttempts int
	// BaseBackoff is the pre-jitter sleep before the first retry; it
	// doubles per attempt up to MaxBackoff. Defaults 5ms / 500ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RequestTimeout is each underlying connection's per-request bound
	// (Options.RequestTimeout). 0 means none.
	RequestTimeout time.Duration
	// DialTimeout bounds each reconnect attempt (the server may be
	// mid-restart; DialRetryOpts keeps knocking until this elapses).
	// Default 2s.
	DialTimeout time.Duration
	// Seed feeds the backoff jitter; a fixed seed makes a chaos run's
	// retry schedule reproducible. Default 1.
	Seed uint64
	// WrapConn is passed to every dialed connection (fault injection).
	WrapConn func(net.Conn) net.Conn
}

// Retrying is a self-healing client: it owns at most one live Client,
// replays retryable failures (IsRetryable) with exponential backoff and
// jitter, and redials after transport errors — including a kill -9'd
// and restarted server. Safe for concurrent use; each goroutine's
// operation retries independently against the shared connection.
//
// Retrying writes is safe here because a transport failure leaves the
// write's outcome unknown either way, and the store's writes are
// last-writer-wins: a duplicate apply of the same value is
// indistinguishable from a single one. A caller that cannot accept
// "maybe applied twice" must not retry — use Client directly.
type Retrying struct {
	addr string
	cfg  RetryConfig

	mu       sync.Mutex
	c        *Client // current live client; nil = dial on next use
	gen      uint64  // connection generation: bumped per successful dial
	rng      *prng.SplitMix64
	closed   bool
	attempts int    // attempts the most recent do() used
	lastGen  uint64 // generation the most recent op completed on
}

// NewRetrying wraps addr. No connection is made until the first
// operation (the server may not be up yet).
func NewRetrying(addr string, cfg RetryConfig) *Retrying {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 5 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 500 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Retrying{addr: addr, cfg: cfg, rng: prng.NewSplitMix64(cfg.Seed)}
}

// Close tears down the current connection and refuses further use.
func (r *Retrying) Close() error {
	r.mu.Lock()
	r.closed = true
	c := r.c
	r.c = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// client returns the live client and its connection generation,
// dialing a fresh one (and bumping the generation) if needed.
func (r *Retrying) client() (*Client, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, 0, ErrClosed
	}
	if r.c != nil {
		return r.c, r.gen, nil
	}
	opts := Options{RequestTimeout: r.cfg.RequestTimeout, WrapConn: r.cfg.WrapConn}
	c, err := DialRetryOpts(r.addr, r.cfg.DialTimeout, opts)
	if err != nil {
		return nil, 0, err
	}
	r.c = c
	r.gen++
	return c, r.gen, nil
}

// invalidate drops c as the live client (if it still is) and closes it.
// Only transport-level failures invalidate; a StatusError rode a
// perfectly healthy connection.
func (r *Retrying) invalidate(c *Client) {
	r.mu.Lock()
	if r.c == c {
		r.c = nil
	}
	r.mu.Unlock()
	c.Close()
}

// backoff sleeps before retry attempt n (1-based): min(MaxBackoff,
// BaseBackoff<<(n-1)) scaled by a jitter factor in [0.5, 1.5) so a
// fleet of clients hitting the same failed server does not reconnect
// in lockstep.
func (r *Retrying) backoff(n int) {
	d := r.cfg.BaseBackoff << uint(n-1)
	if d <= 0 || d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	j := r.rng.Uint64()
	r.mu.Unlock()
	// [0.5, 1.5) of d.
	d = d/2 + time.Duration(j%uint64(d))
	time.Sleep(d)
}

// transport reports whether err poisoned the connection it rode on
// (a *RetryableError wraps teardown causes and timeouts); a
// StatusError is retryable but the conn stays good.
func transport(err error) bool {
	var se *StatusError
	return !errors.As(err, &se)
}

// do runs op with retries. op sees a live client; a retryable failure
// backs off and reruns it (redialing first when the failure was
// transport-level); anything else returns immediately.
func (r *Retrying) do(op func(c *Client) error) error {
	var last error
	for n := 0; n < r.cfg.MaxAttempts; n++ {
		r.mu.Lock()
		r.attempts = n + 1
		r.mu.Unlock()
		if n > 0 {
			r.backoff(n)
		}
		c, gen, err := r.client()
		if err != nil {
			if err == ErrClosed {
				return err
			}
			last = &RetryableError{Err: err} // dial failure: keep knocking
			continue
		}
		err = op(c)
		if err == nil {
			r.mu.Lock()
			r.lastGen = gen
			r.mu.Unlock()
			return nil
		}
		last = err
		if !IsRetryable(err) {
			return err
		}
		if transport(err) {
			r.invalidate(c)
		}
	}
	return last
}

// Attempts reports how many attempts the most recent operation used —
// 1 means it completed cleanly on the first try. A caller tracking
// write indeterminacy (the soak harness's zombie set) needs this: an
// op that retried may have left a duplicate frame in an abandoned
// connection that the server applies later. Meaningful only between a
// caller's own operations; concurrent goroutines see each other's
// counts.
func (r *Retrying) Attempts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts
}

// LastGen reports the connection generation the most recent successful
// operation completed on. Two successful operations with equal LastGen
// rode the same TCP connection — hence the same server process, in
// submission order. A durability-barrier caller (the soak harness's
// bulk model) needs exactly that: a Flush only covers writes acked on
// the SAME incarnation, so acks from an older generation must not be
// promoted by a Flush that succeeded on a newer one. Meaningful only
// between a caller's own operations.
func (r *Retrying) LastGen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastGen
}

// Get reads key k under class, retrying per the config.
func (r *Retrying) Get(class uint8, k uint64) (v []byte, ok bool, err error) {
	err = r.do(func(c *Client) error {
		var e error
		v, ok, e = c.Get(class, k)
		return e
	})
	return v, ok, err
}

// Put stores k=v under class, retrying per the config.
func (r *Retrying) Put(class uint8, k uint64, v []byte) (inserted bool, err error) {
	err = r.do(func(c *Client) error {
		var e error
		inserted, e = c.Put(class, k, v)
		return e
	})
	return inserted, err
}

// Delete removes k under class, retrying per the config.
func (r *Retrying) Delete(class uint8, k uint64) (present bool, err error) {
	err = r.do(func(c *Client) error {
		var e error
		present, e = c.Delete(class, k)
		return e
	})
	return present, err
}

// MultiGet reads keys under class, retrying per the config.
func (r *Retrying) MultiGet(class uint8, keys []uint64) (vals [][]byte, found []bool, err error) {
	err = r.do(func(c *Client) error {
		var e error
		vals, found, e = c.MultiGet(class, keys)
		return e
	})
	return vals, found, err
}

// MultiPut writes pairs under class, retrying per the config.
func (r *Retrying) MultiPut(class uint8, kvs []shardedkv.Pair) (inserted int, err error) {
	err = r.do(func(c *Client) error {
		var e error
		inserted, e = c.MultiPut(class, kvs)
		return e
	})
	return inserted, err
}

// Range scans [lo, hi] under class, retrying per the config.
func (r *Retrying) Range(class uint8, lo, hi uint64, limit int) (kvs []shardedkv.Pair, more bool, err error) {
	err = r.do(func(c *Client) error {
		var e error
		kvs, more, e = c.Range(class, lo, hi, limit)
		return e
	})
	return kvs, more, err
}

// Flush drives the server-side write/durability barrier, retrying per
// the config.
func (r *Retrying) Flush(class uint8) error {
	return r.do(func(c *Client) error { return c.Flush(class) })
}

// Stats fetches server stats, retrying per the config.
func (r *Retrying) Stats() (st kvserver.ServerStats, err error) {
	err = r.do(func(c *Client) error {
		var e error
		st, e = c.Stats()
		return e
	})
	return st, err
}
