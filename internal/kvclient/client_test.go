package kvclient

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kvserver"
)

// fakeServer is a scriptable single-connection peer: it accepts,
// consumes the magic preamble, and hands each decoded request to
// handle, which returns the raw response bytes to write (nil = write
// nothing). Returning writeThenDie from handle makes the server write
// the bytes and slam the connection.
type fakeServer struct {
	ln     net.Listener
	handle func(req kvserver.Request) ([]byte, bool)
	wg     sync.WaitGroup
}

func newFakeServer(t *testing.T, handle func(req kvserver.Request) ([]byte, bool)) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fs := &fakeServer{ln: ln, handle: handle}
	fs.wg.Add(1)
	go fs.serve()
	t.Cleanup(func() { ln.Close(); fs.wg.Wait() })
	return fs
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

func (fs *fakeServer) serve() {
	defer fs.wg.Done()
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.wg.Add(1)
		go func() {
			defer fs.wg.Done()
			defer conn.Close()
			var magic [4]byte
			if _, err := io.ReadFull(conn, magic[:]); err != nil {
				return
			}
			br := bufio.NewReader(conn)
			for {
				frame, err := kvserver.ReadFrame(br, nil)
				if err != nil {
					return
				}
				req, err := kvserver.DecodeRequest(frame)
				if err != nil {
					return
				}
				out, die := fs.handle(req)
				if len(out) > 0 {
					if _, err := conn.Write(out); err != nil {
						return
					}
				}
				if die {
					return
				}
			}
		}()
	}
}

func okBool(id uint64) []byte {
	out, err := kvserver.AppendBoolResponse(nil, id, true)
	if err != nil {
		panic(err)
	}
	return out
}

// TestMidFrameDropFailsAllPending is the regression test for the
// stranded-caller bug: a server that dies mid response frame must fail
// every in-flight call with a retryable error — none may block forever,
// and the client must refuse (not hang) afterwards.
func TestMidFrameDropFailsAllPending(t *testing.T) {
	const inflight = 8
	var got atomic.Int32
	release := make(chan struct{})
	fs := newFakeServer(t, func(req kvserver.Request) ([]byte, bool) {
		if int(got.Add(1)) < inflight {
			return nil, false // hold the response: keep the call pending
		}
		<-release
		// Last request: emit a torn frame — a length prefix promising 20
		// bytes, then 5 — and slam the connection under everyone.
		torn := binary.BigEndian.AppendUint32(nil, 20)
		torn = append(torn, 1, 2, 3, 4, 5)
		return torn, true
	})

	c, err := Dial(fs.addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(k uint64) {
			_, err := c.Put(kvserver.ClassInteractive, k, []byte("v"))
			errs <- err
		}(uint64(i))
	}
	// Release the torn frame only once all requests reached the server,
	// so every call is genuinely pending when the connection dies.
	for int(got.Load()) < inflight {
		time.Sleep(time.Millisecond)
	}
	close(release)

	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatalf("call %d: nil error after torn frame", i)
			}
			if !IsRetryable(err) {
				t.Fatalf("call %d: error not retryable: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("call %d stranded: no completion after torn frame", i)
		}
	}
	// The poisoned client fails fast, it does not hang.
	done := make(chan error, 1)
	go func() {
		_, err := c.Put(kvserver.ClassInteractive, 99, []byte("v"))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !IsRetryable(err) {
			t.Fatalf("post-teardown call: want retryable error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-teardown call hung")
	}
}

// TestRequestTimeoutIsRetryable: a server that swallows requests must
// not hold a deadline-bearing caller past its RequestTimeout.
func TestRequestTimeoutIsRetryable(t *testing.T) {
	fs := newFakeServer(t, func(req kvserver.Request) ([]byte, bool) {
		return nil, false // never answer
	})
	c, err := DialOpts(fs.addr(), Options{RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Put(kvserver.ClassInteractive, 1, []byte("v"))
	if err == nil {
		t.Fatal("nil error from swallowed request")
	}
	if !IsRetryable(err) {
		t.Fatalf("timeout not retryable: %v", err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", el)
	}
}

// TestRetryingHealsAcrossConnectionDeath: the first connection dies on
// its first request; the Retrying wrapper must redial and complete the
// operation on a fresh connection without surfacing an error.
func TestRetryingHealsAcrossConnectionDeath(t *testing.T) {
	var conns atomic.Int32
	fs := newFakeServer(t, func(req kvserver.Request) ([]byte, bool) {
		if conns.Add(1) == 1 {
			return nil, true // first request: die without answering
		}
		return okBool(req.ID), false
	})
	r := NewRetrying(fs.addr(), RetryConfig{
		BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		RequestTimeout: time.Second, Seed: 7,
	})
	defer r.Close()
	ins, err := r.Put(kvserver.ClassInteractive, 1, []byte("v"))
	if err != nil {
		t.Fatalf("retrying put: %v", err)
	}
	if !ins {
		t.Fatal("retrying put: want inserted=true from fake server")
	}
	if conns.Load() < 2 {
		t.Fatalf("want a second connection after the first died, got %d requests", conns.Load())
	}
}

// TestRetryingGivesUpOnNonRetryable: a hard protocol error must surface
// on the first attempt, not burn the retry budget.
func TestRetryingGivesUpOnNonRetryable(t *testing.T) {
	var calls atomic.Int32
	fs := newFakeServer(t, func(req kvserver.Request) ([]byte, bool) {
		calls.Add(1)
		out, err := kvserver.AppendErrorResponse(nil, req.ID, kvserver.StatusErrTooLarge, "nope")
		if err != nil {
			panic(err)
		}
		return out, false
	})
	r := NewRetrying(fs.addr(), RetryConfig{RequestTimeout: time.Second})
	defer r.Close()
	_, err := r.Put(kvserver.ClassInteractive, 1, []byte("v"))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != kvserver.StatusErrTooLarge {
		t.Fatalf("want StatusErrTooLarge, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("non-retryable error should not retry: %d attempts", n)
	}
}

// TestIsRetryableClassification pins the error taxonomy the soak
// harness and the Retrying wrapper depend on.
func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&RetryableError{Err: fmt.Errorf("conn reset")}, true},
		{&StatusError{Status: kvserver.StatusErrAdmission}, true},
		{&StatusError{Status: kvserver.StatusErrUnavailable}, true},
		{&StatusError{Status: kvserver.StatusErrShutdown}, true},
		{&StatusError{Status: kvserver.StatusErrMalformed}, false},
		{&StatusError{Status: kvserver.StatusErrTooLarge}, false},
		{ErrClosed, false},
		{fmt.Errorf("wrapped: %w", &RetryableError{Err: ErrClosed}), true},
		{nil, false},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
