// Package kvmodel is the shared model-equivalence harness for every
// shardedkv.KV front end: the plain Store, the combining AsyncStore, a
// classed view, a durable store mid-checkpoint — and, through the
// kvsoak chaos driver, a whole server across kill -9 restarts. Each
// harness worker owns a private key stripe (key = (i%128)*workers+wi)
// and mirrors every operation on a private map; with no cross-worker
// key sharing, every return value is exactly predictable no matter
// what splits, combiners, checkpoints, or crashes happen underneath.
//
// The package lives outside shardedkv's test files so that external
// consumers (package shardedkv_test, the soak binary's future unit
// tests) can drive the same workload; it deliberately depends only on
// the public KV surface.
package kvmodel

import (
	"bytes"
	"encoding/binary"
	"sync"

	"repro/internal/core"
	"repro/internal/prng"
	"repro/internal/shardedkv"
)

// TB is the checking hook — *testing.T satisfies it, and a non-test
// harness can adapt its own failure sink.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// VerValue encodes (key, version) so a read can be matched to the
// exact write that produced it.
func VerValue(k, ver uint64) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], k)
	binary.LittleEndian.PutUint64(b[8:], ver)
	return b[:]
}

// DecodeVerValue is VerValue's inverse; ok is false when v was not
// produced by VerValue for key k.
func DecodeVerValue(k uint64, v []byte) (ver uint64, ok bool) {
	if len(v) != 16 || binary.LittleEndian.Uint64(v[:8]) != k {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v[8:]), true
}

// Drive stresses kv with `workers` concurrent goroutines (alternating
// big/little class) for opsPer ops each, checking every return value
// against the per-worker model as it goes. ff, when non-nil, is the
// fire-and-forget write path (AsyncStore.PutAsync): that case submits
// then immediately Gets the same key, pinning the per-worker
// read-your-write FIFO contract. With ff nil the case runs an ordered
// full-stripe Range instead. Returns the union of the workers' final
// models — the store's expected live contents over [0, 128*workers).
func Drive(t TB, kv shardedkv.KV, ff func(w *core.Worker, k uint64, v []byte), workers, opsPer int) map[uint64][]byte {
	t.Helper()
	final := make(map[uint64][]byte)
	var finalMu sync.Mutex
	var work sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		work.Add(1)
		go func(wi int) {
			defer work.Done()
			class := core.Big
			if wi%2 == 1 {
				class = core.Little
			}
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewSplitMix64(uint64(wi)*0x9e3779b9 + 41)
			model := make(map[uint64][]byte)
			ver := uint64(0)
			own := func(i uint64) uint64 { return (i%128)*uint64(workers) + uint64(wi) }
			for op := 0; op < opsPer; op++ {
				k := own(rng.Uint64())
				switch rng.Uint64() % 8 {
				case 0, 1, 2:
					ver++
					v := VerValue(k, ver)
					ins, _ := kv.Put(w, k, v)
					if had := model[k] != nil; ins == had {
						t.Errorf("worker %d: Put(%d) inserted=%v, model had=%v", wi, k, ins, had)
					}
					model[k] = v
				case 3:
					v, ok := kv.Get(w, k)
					mv := model[k]
					if ok != (mv != nil) || !bytes.Equal(v, mv) {
						t.Errorf("worker %d: Get(%d) = %x,%v; model %x", wi, k, v, ok, mv)
					}
				case 4:
					present, _ := kv.Delete(w, k)
					if had := model[k] != nil; present != had {
						t.Errorf("worker %d: Delete(%d) present=%v, model had=%v", wi, k, present, had)
					}
					delete(model, k)
				case 5:
					// Batched puts over distinct owned keys.
					n := int(rng.Uint64()%5) + 2
					base := rng.Uint64()
					kvs := make([]shardedkv.Pair, n)
					wantIns := 0
					seen := map[uint64]bool{}
					for j := range kvs {
						bk := own(base + uint64(j))
						ver++
						kvs[j] = shardedkv.Pair{Key: bk, Value: VerValue(bk, ver)}
						if model[bk] == nil && !seen[bk] {
							wantIns++
						}
						seen[bk] = true
						model[bk] = kvs[j].Value
					}
					if got, _ := kv.MultiPut(w, kvs); got != wantIns {
						t.Errorf("worker %d: MultiPut inserted %d, model wants %d", wi, got, wantIns)
					}
				case 6:
					n := int(rng.Uint64()%5) + 2
					base := rng.Uint64()
					keys := make([]uint64, n)
					for j := range keys {
						keys[j] = own(base + uint64(j))
					}
					vals, oks := kv.MultiGet(w, keys)
					for j, bk := range keys {
						mv := model[bk]
						if oks[j] != (mv != nil) || !bytes.Equal(vals[j], mv) {
							t.Errorf("worker %d: MultiGet(%d) = %x,%v; model %x", wi, bk, vals[j], oks[j], mv)
						}
					}
				default:
					if ff != nil {
						// Fire-and-forget write, then a barrier via a
						// waited Get on the same shard FIFO: the ring
						// preserves this worker's order.
						ver++
						v := VerValue(k, ver)
						ff(w, k, v)
						model[k] = v
						got, ok := kv.Get(w, k)
						if !ok || !bytes.Equal(got, v) {
							t.Errorf("worker %d: Get(%d) after ff put = %x,%v; want %x", wi, k, got, ok, v)
						}
					} else {
						// Ordered scan across every worker's stripe (all
						// owned keys are < 128*workers): order must hold
						// whatever fissions underneath.
						prev, first := uint64(0), true
						kv.Range(w, 0, 128*uint64(workers), func(sk uint64, sv []byte) bool {
							if !first && sk <= prev {
								t.Errorf("Range emitted %d after %d", sk, prev)
							}
							prev, first = sk, false
							return true
						})
					}
				}
			}
			for i := uint64(0); i < 128; i++ {
				k := own(i)
				v, ok := kv.Get(w, k)
				mv := model[k]
				if ok != (mv != nil) || !bytes.Equal(v, mv) {
					t.Errorf("worker %d: final Get(%d) = %x,%v; model %x", wi, k, v, ok, mv)
				}
			}
			finalMu.Lock()
			for k, v := range model {
				final[k] = v
			}
			finalMu.Unlock()
		}(wi)
	}
	work.Wait()
	return final
}

// Verify sweeps the harness's whole key range on kv and demands it
// matches the merged model exactly — present keys with the right
// value, deleted/never-written keys absent. This is the recovery
// check: a replayed store must answer exactly as the store that took
// the workload did.
func Verify(t TB, kv shardedkv.KV, workers int, final map[uint64][]byte) {
	t.Helper()
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	for k := uint64(0); k < 128*uint64(workers); k++ {
		v, ok := kv.Get(w, k)
		mv := final[k]
		if ok != (mv != nil) || !bytes.Equal(v, mv) {
			t.Errorf("Get(%d) = %x,%v; model %x", k, v, ok, mv)
		}
	}
}
