// Package lmdbx is the LMDB-like KV engine (paper Table 1, row 3): a
// copy-on-write B+ tree with MVCC reads. Writers serialise on a single
// global writer lock; readers register in a reader table under a
// metadata lock, read an immutable snapshot without the writer lock,
// and deregister — LMDB's actual architecture. The benchmark runs 50%
// Put / 50% Get.
package lmdbx

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/dbbench"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/storage/cowbtree"
	"repro/internal/workload"
)

// readerSlot is one entry of the reader table; LMDB pins the oldest
// transaction id visible here to know which pages can be reclaimed.
type readerSlot struct {
	gen    uint64
	in_use bool
}

// DB is the engine. Construct with New.
type DB struct {
	tree     *cowbtree.Tree
	writer   locks.WLock
	metaLock locks.WLock
	readers  []readerSlot
	pad      dbbench.Padder
	keySpace uint64
	opUnits  int64
}

// Config parameterises the engine.
type Config struct {
	KeySpace    uint64 // 0 means 1 << 16
	OpUnits     int64  // 0 means 500
	ReaderSlots int    // 0 means 128
}

// New builds the engine with locks drawn from factory.
func New(factory locks.Factory, pad dbbench.Padder, cfg Config) *DB {
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 1 << 16
	}
	if cfg.OpUnits == 0 {
		cfg.OpUnits = 500
	}
	if cfg.ReaderSlots == 0 {
		cfg.ReaderSlots = 128
	}
	return &DB{
		tree:     cowbtree.New(),
		writer:   factory(),
		metaLock: factory(),
		readers:  make([]readerSlot, cfg.ReaderSlots),
		pad:      pad,
		keySpace: cfg.KeySpace,
		opUnits:  cfg.OpUnits,
	}
}

// Name implements dbbench.DB.
func (d *DB) Name() string { return "lmdb" }

// Do implements dbbench.DB.
func (d *DB) Do(w *core.Worker, rng prng.Source, op workload.OpKind) {
	k := prng.Uint64n(rng, d.keySpace)
	if op == workload.OpGet {
		// Begin a read transaction: claim a reader slot under the
		// metadata lock and capture the current root.
		d.metaLock.Acquire(w)
		snap := d.tree.Snapshot()
		slot := d.claim(snap.Gen)
		d.pad.CS(w, d.opUnits/8)
		d.metaLock.Release(w)

		// The read itself runs without any lock (MVCC).
		_, _ = snap.Get(k)
		d.pad.NCS(w, d.opUnits/2)

		// End the read transaction.
		d.metaLock.Acquire(w)
		d.readers[slot].in_use = false
		d.metaLock.Release(w)
		return
	}
	// Write transaction: the single writer lock covers the path copy.
	d.writer.Acquire(w)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], k)
	binary.LittleEndian.PutUint64(buf[8:], rng.Uint64())
	d.tree.Put(k, buf[:])
	d.pad.CS(w, d.opUnits)
	d.writer.Release(w)
}

// claim finds a free reader slot (callers hold the metadata lock).
func (d *DB) claim(gen uint64) int {
	for i := range d.readers {
		if !d.readers[i].in_use {
			d.readers[i] = readerSlot{gen: gen, in_use: true}
			return i
		}
	}
	// Reader table full: LMDB would fail the transaction; recycling
	// slot 0 keeps the benchmark running and is harmless here.
	d.readers[0] = readerSlot{gen: gen, in_use: true}
	return 0
}

// Len exposes the tree size for tests.
func (d *DB) Len() int { return d.tree.Len() }
