// Package dbs_test holds the cross-engine conformance tests: every
// database engine must run correctly single-threaded and under
// concurrent mixed-class workers with any lock of the evaluation.
package dbs_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dbbench"
	"repro/internal/dbs/kyoto"
	"repro/internal/dbs/ldb"
	"repro/internal/dbs/lmdbx"
	"repro/internal/dbs/sqlike"
	"repro/internal/dbs/upscale"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/workload"
)

// engines enumerates constructors for all five databases.
func engines(f locks.Factory) map[string]dbbench.DB {
	pad := dbbench.DefaultPadder()
	return map[string]dbbench.DB{
		"kyoto":     kyoto.New(f, pad, kyoto.Config{Slots: 4, KeySpace: 1 << 10}),
		"upscaledb": upscale.New(f, pad, upscale.Config{KeySpace: 1 << 10}),
		"lmdb":      lmdbx.New(f, pad, lmdbx.Config{KeySpace: 1 << 10}),
		"leveldb":   ldb.New(f, pad, ldb.Config{KeySpace: 1 << 10, Populate: 256}),
		"sqlite":    sqlike.New(f, pad, sqlike.Config{KeySpace: 1 << 10, Populate: 512}),
	}
}

func TestEnginesSingleWorker(t *testing.T) {
	for name, db := range engines(locks.FactoryMCS()) {
		t.Run(name, func(t *testing.T) {
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			rng := prng.NewXoshiro256(5)
			mix := workload.SQLiteMix()
			if name != "sqlite" {
				mix = workload.YCSBA()
			}
			for i := 0; i < 2000; i++ {
				db.Do(w, rng, mix.Draw(rng.Uint64()))
			}
		})
	}
}

func TestEnginesConcurrentMixedClasses(t *testing.T) {
	factories := map[string]locks.Factory{
		"pthread": locks.FactoryPthread(),
		"mcs":     locks.FactoryMCS(),
		"asl":     locks.FactoryASL(),
	}
	iters := 1500
	if runtime.NumCPU() < 4 {
		iters = 400
	}
	for fname, f := range factories {
		for name, db := range engines(f) {
			t.Run(fname+"/"+name, func(t *testing.T) {
				var wg sync.WaitGroup
				for i := 0; i < 4; i++ {
					class := core.Big
					if i >= 2 {
						class = core.Little
					}
					wg.Add(1)
					go func(id int, class core.Class) {
						defer wg.Done()
						w := core.NewWorker(core.WorkerConfig{Class: class})
						rng := prng.NewXoshiro256(uint64(id) + 11)
						mix := workload.SQLiteMix()
						if name != "sqlite" {
							mix = workload.YCSBA()
						}
						for j := 0; j < iters; j++ {
							w.EpochStart(0)
							db.Do(w, rng, mix.Draw(rng.Uint64()))
							w.EpochEnd(0, int64(time.Millisecond))
						}
					}(i, class)
				}
				done := make(chan struct{})
				go func() { wg.Wait(); close(done) }()
				select {
				case <-done:
				case <-time.After(120 * time.Second):
					t.Fatal("engine hung under concurrency")
				}
			})
		}
	}
}

func TestKyotoDataSurvives(t *testing.T) {
	db := kyoto.New(locks.FactoryMCS(), dbbench.DefaultPadder(), kyoto.Config{KeySpace: 512})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	rng := prng.NewXoshiro256(1)
	for i := 0; i < 3000; i++ {
		db.Do(w, rng, workload.OpPut)
	}
	if db.Len() == 0 || db.Len() > 512 {
		t.Fatalf("table len = %d, want in (0, 512]", db.Len())
	}
}

func TestUpscaleDataSurvives(t *testing.T) {
	db := upscale.New(locks.FactoryMCS(), dbbench.DefaultPadder(), upscale.Config{KeySpace: 512})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	rng := prng.NewXoshiro256(1)
	for i := 0; i < 3000; i++ {
		db.Do(w, rng, workload.OpPut)
	}
	if db.Len() == 0 || db.Len() > 512 {
		t.Fatalf("tree len = %d", db.Len())
	}
}

func TestLMDBReadersDontBlockWriters(t *testing.T) {
	// With MVCC, a reader in its lock-free section must not prevent a
	// writer from committing (the writer lock is independent).
	db := lmdbx.New(locks.FactoryMCS(), dbbench.DefaultPadder(), lmdbx.Config{KeySpace: 128})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	rng := prng.NewXoshiro256(2)
	for i := 0; i < 500; i++ {
		db.Do(w, rng, workload.OpPut)
		db.Do(w, rng, workload.OpGet)
	}
	if db.Len() == 0 {
		t.Fatal("no writes landed")
	}
}

func TestLevelDBSnapshotRefsBalanced(t *testing.T) {
	db := ldb.New(locks.FactoryMCS(), dbbench.DefaultPadder(), ldb.Config{KeySpace: 256, Populate: 64})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	rng := prng.NewXoshiro256(3)
	for i := 0; i < 2000; i++ {
		db.Do(w, rng, workload.OpGet)
	}
	if db.Refs() != 0 {
		t.Fatalf("leaked %d version refs", db.Refs())
	}
}

func TestSQLiteRowsGrow(t *testing.T) {
	db := sqlike.New(locks.FactoryMCS(), dbbench.DefaultPadder(), sqlike.Config{KeySpace: 256, Populate: 100})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	rng := prng.NewXoshiro256(4)
	before := db.Rows()
	for i := 0; i < 300; i++ {
		db.Do(w, rng, workload.OpInsert)
	}
	if db.Rows() != before+300 {
		t.Fatalf("rows = %d, want %d", db.Rows(), before+300)
	}
}
