// Package upscale is the upscaledb-like on-disk-style KV engine
// (paper Table 1, row 2): a B+ tree guarded by one global lock, plus a
// worker-pool lock that every request takes to check a cursor out of a
// freelist and back in. The benchmark runs 50% Put / 50% Get; in the
// paper this is the workload where the TAS lock shows big-core
// affinity (Fig. 9d).
package upscale

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/dbbench"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/storage/btree"
	"repro/internal/workload"
)

// cursor is a pooled per-request handle, as upscaledb allocates from
// its environment under a lock.
type cursor struct {
	scratch [32]byte
}

// DB is the engine. Construct with New.
type DB struct {
	tree     *btree.Tree
	global   locks.WLock
	poolLock locks.WLock
	freelist []*cursor
	pad      dbbench.Padder
	keySpace uint64
	opUnits  int64
}

// Config parameterises the engine.
type Config struct {
	KeySpace uint64 // 0 means 1 << 16
	OpUnits  int64  // 0 means 600
	Cursors  int    // freelist depth; 0 means 64
}

// New builds the engine with locks drawn from factory.
func New(factory locks.Factory, pad dbbench.Padder, cfg Config) *DB {
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 1 << 16
	}
	if cfg.OpUnits == 0 {
		cfg.OpUnits = 600
	}
	if cfg.Cursors == 0 {
		cfg.Cursors = 64
	}
	db := &DB{
		tree:     btree.New(),
		global:   factory(),
		poolLock: factory(),
		pad:      pad,
		keySpace: cfg.KeySpace,
		opUnits:  cfg.OpUnits,
	}
	for i := 0; i < cfg.Cursors; i++ {
		db.freelist = append(db.freelist, &cursor{})
	}
	return db
}

// Name implements dbbench.DB.
func (d *DB) Name() string { return "upscaledb" }

// Do implements dbbench.DB.
func (d *DB) Do(w *core.Worker, rng prng.Source, op workload.OpKind) {
	// Check a cursor out of the pool.
	d.poolLock.Acquire(w)
	var c *cursor
	if n := len(d.freelist); n > 0 {
		c = d.freelist[n-1]
		d.freelist = d.freelist[:n-1]
	} else {
		c = &cursor{}
	}
	d.pad.CS(w, d.opUnits/16)
	d.poolLock.Release(w)

	k := prng.Uint64n(rng, d.keySpace)
	d.global.Acquire(w)
	switch op {
	case workload.OpGet:
		_, _ = d.tree.Get(k)
		d.pad.CS(w, d.opUnits/2)
	default:
		binary.LittleEndian.PutUint64(c.scratch[:8], k)
		binary.LittleEndian.PutUint64(c.scratch[8:16], rng.Uint64())
		d.tree.Put(k, append([]byte(nil), c.scratch[:16]...))
		d.pad.CS(w, d.opUnits)
	}
	d.global.Release(w)

	// Return the cursor.
	d.poolLock.Acquire(w)
	d.freelist = append(d.freelist, c)
	d.poolLock.Release(w)
}

// Len exposes the tree size for tests.
func (d *DB) Len() int { return d.tree.Len() }
