// Package sqlike is the SQLite-like relational engine (paper Table 1,
// row 5). SQLite serialises writers through a database-level lock
// state machine (UNLOCKED → SHARED → RESERVED → EXCLUSIVE); the paper
// protects that state machine with the lock under test and runs a
// DEFERRED transaction of 1/3 inserts, 1/3 simple (indexed point)
// selects and 1/3 complex (range with non-indexed filter) selects,
// plus an extremely long full-table scan every 1000 executions.
package sqlike

import (
	"encoding/binary"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dbbench"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/storage/btree"
	"repro/internal/workload"
)

// Lock states of the SQLite file-locking protocol.
const (
	stateUnlocked = iota
	stateShared
	stateReserved
	stateExclusive
)

// row is one table row: an indexed column (the key), a second indexed
// column and a non-indexed payload column used by the complex query's
// filter.
type row struct {
	indexed uint64
	filter  uint64
}

// DB is the engine. Construct with New.
type DB struct {
	// stateLock guards the lock-state machine; every transaction
	// transitions through it (the contended lock of Fig. 10d).
	stateLock locks.WLock
	// metaLock guards schema/metadata lookups at statement start.
	metaLock locks.WLock

	primary   *btree.Tree // rowid -> encoded row
	secondary *btree.Tree // indexed column -> rowid
	state     int
	nextRowID uint64

	pad       dbbench.Padder
	keySpace  uint64
	opUnits   int64
	scanEvery int
	// opCount counts operations per DB to trigger the periodic scan.
	opCount atomic.Uint64
}

// Config parameterises the engine.
type Config struct {
	KeySpace  uint64 // 0 means 1 << 14 (the paper scans a 100k table)
	OpUnits   int64  // 0 means 500
	ScanEvery int    // full scan period in ops; 0 means 1000
	Populate  int    // initial rows; 0 means 20000
}

// New builds the engine with locks drawn from factory.
func New(factory locks.Factory, pad dbbench.Padder, cfg Config) *DB {
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 1 << 14
	}
	if cfg.OpUnits == 0 {
		cfg.OpUnits = 500
	}
	if cfg.ScanEvery == 0 {
		cfg.ScanEvery = 1000
	}
	if cfg.Populate == 0 {
		cfg.Populate = 20000
	}
	db := &DB{
		stateLock: factory(),
		metaLock:  factory(),
		primary:   btree.New(),
		secondary: btree.New(),
		pad:       pad,
		keySpace:  cfg.KeySpace,
		opUnits:   cfg.OpUnits,
		scanEvery: cfg.ScanEvery,
	}
	rng := prng.NewXoshiro256(0x50f7)
	for i := 0; i < cfg.Populate; i++ {
		db.insertRow(prng.Uint64n(rng, cfg.KeySpace), rng.Uint64())
	}
	return db
}

// insertRow adds a row without locking (setup and EXCLUSIVE paths).
func (d *DB) insertRow(indexed, filter uint64) {
	id := d.nextRowID
	d.nextRowID++
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], indexed)
	binary.LittleEndian.PutUint64(buf[8:], filter)
	d.primary.Put(id, append([]byte(nil), buf[:]...))
	d.secondary.Put(indexed<<20|id&((1<<20)-1), buf[:8])
}

// Name implements dbbench.DB.
func (d *DB) Name() string { return "sqlite" }

// Do implements dbbench.DB: one DEFERRED transaction. The whole
// transaction holds the state-machine lock — SQLite's database-level
// locking admits a single writer and, in the paper's shared-connection
// setup, serialises transactions on this lock; the state transitions
// inside model the DEFERRED escalation (SHARED → RESERVED →
// EXCLUSIVE), whose extra steps make writes cost more than reads.
func (d *DB) Do(w *core.Worker, rng prng.Source, op workload.OpKind) {
	// Statement compilation consults the schema under the metadata
	// lock (brief).
	d.metaLock.Acquire(w)
	d.pad.CS(w, d.opUnits/16)
	d.metaLock.Release(w)

	if n := d.opCount.Add(1); d.scanEvery > 0 && n%uint64(d.scanEvery) == 0 {
		op = workload.OpFullScan
	}

	k := prng.Uint64n(rng, d.keySpace)
	d.stateLock.Acquire(w)
	switch op {
	case workload.OpInsert:
		// DEFERRED write: SHARED on first read, RESERVED on first
		// write, EXCLUSIVE to commit.
		d.transition(w, stateShared)
		d.transition(w, stateReserved)
		d.transition(w, stateExclusive)
		d.insertRow(k, rng.Uint64())
		d.pad.CS(w, d.opUnits)
		d.transition(w, stateUnlocked)
	case workload.OpPointSelect:
		d.transition(w, stateShared)
		d.secondary.Range(k<<20, (k+1)<<20-1, func(_ uint64, _ []byte) bool { return false })
		d.pad.CS(w, d.opUnits/4)
		d.transition(w, stateUnlocked)
	case workload.OpFullScan:
		d.transition(w, stateShared)
		n := 0
		d.primary.Scan(func(_ uint64, v []byte) bool {
			n++
			return true
		})
		d.pad.CS(w, d.opUnits*8)
		d.transition(w, stateUnlocked)
	default: // complex range select with non-indexed filter
		d.transition(w, stateShared)
		matched := 0
		d.secondary.Range(k<<20, (k+64)<<20, func(_ uint64, v []byte) bool {
			// Filter on the non-indexed column via the stored row.
			if len(v) >= 8 && binary.LittleEndian.Uint64(v)%7 == 0 {
				matched++
			}
			return true
		})
		d.pad.CS(w, d.opUnits/2)
		d.transition(w, stateUnlocked)
	}
	d.stateLock.Release(w)
}

// transition moves the database lock state machine (stateLock held).
func (d *DB) transition(w *core.Worker, to int) {
	d.state = to
	d.pad.CS(w, d.opUnits/8)
}

// Rows exposes the table size for tests.
func (d *DB) Rows() int { return d.primary.Len() }
