// Package kyoto is the Kyoto-Cabinet-like in-memory KV engine of the
// paper's evaluation (Table 1, row 1): a hash table whose lock topology
// is a slot-level lock per hash partition plus a method lock taken by
// every operation. The benchmark runs 50% Put / 50% Get.
package kyoto

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/dbbench"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/storage/hashkv"
	"repro/internal/workload"
)

// DB is the engine. Construct with New.
type DB struct {
	table      *hashkv.Table
	slotLocks  []locks.WLock
	methodLock locks.WLock
	pad        dbbench.Padder
	keySpace   uint64
	// opUnits approximates one operation's critical-section work in
	// spin units; the padder scales it for little-class workers.
	opUnits int64
}

// Config parameterises the engine.
type Config struct {
	Slots    int    // lockable partitions; 0 means 16
	Buckets  int    // buckets per slot; 0 means 1024
	KeySpace uint64 // key range; 0 means 1 << 16
	OpUnits  int64  // CS padding base; 0 means 400
}

// New builds the engine with every lock drawn from factory.
func New(factory locks.Factory, pad dbbench.Padder, cfg Config) *DB {
	if cfg.Slots == 0 {
		cfg.Slots = 16
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 1024
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 1 << 16
	}
	if cfg.OpUnits == 0 {
		cfg.OpUnits = 400
	}
	db := &DB{
		table:      hashkv.New(cfg.Slots, cfg.Buckets),
		methodLock: factory(),
		pad:        pad,
		keySpace:   cfg.KeySpace,
		opUnits:    cfg.OpUnits,
	}
	for i := 0; i < cfg.Slots; i++ {
		db.slotLocks = append(db.slotLocks, factory())
	}
	return db
}

// Name implements dbbench.DB.
func (d *DB) Name() string { return "kyoto" }

// Do implements dbbench.DB: one Put or Get under the method lock and
// the key's slot lock.
func (d *DB) Do(w *core.Worker, rng prng.Source, op workload.OpKind) {
	k := prng.Uint64n(rng, d.keySpace)
	// Kyoto's method lock is a reader-writer lock taken in shared mode
	// by Put/Get; with mutexes only, we model the shared acquisition as
	// a brief critical section (bookkeeping), not held across the op.
	d.methodLock.Acquire(w)
	d.pad.CS(w, d.opUnits/8)
	d.methodLock.Release(w)

	sl := d.slotLocks[d.table.SlotOf(k)]
	sl.Acquire(w)
	switch op {
	case workload.OpGet:
		_, _ = d.table.Get(k)
		d.pad.CS(w, d.opUnits/2) // gets are cheaper than puts
	default:
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], k)
		binary.LittleEndian.PutUint64(buf[8:], rng.Uint64())
		d.table.Put(k, buf[:])
		d.pad.CS(w, d.opUnits)
	}
	sl.Release(w)
}

// Len exposes the table size for tests.
func (d *DB) Len() int { return d.table.Len() }
