// Package ldb is the LevelDB-like engine (paper Table 1, row 4). The
// paper uses db_bench's randomread: every Get "acquires a global lock
// to take a snapshot of internal database structures", reads without
// the lock, then unrefs the snapshot. The store is a mini LSM
// (memtable + immutable runs + refcounted versions).
package ldb

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/dbbench"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/storage/lsm"
	"repro/internal/workload"
)

// DB is the engine. Construct with New.
type DB struct {
	store    *lsm.Store
	metaLock locks.WLock
	pad      dbbench.Padder
	keySpace uint64
	opUnits  int64
}

// Config parameterises the engine.
type Config struct {
	KeySpace uint64 // 0 means 1 << 16
	OpUnits  int64  // 0 means 350
	Populate int    // initial keys; 0 means KeySpace/2
}

// New builds the engine and pre-populates it (randomread needs data).
func New(factory locks.Factory, pad dbbench.Padder, cfg Config) *DB {
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 1 << 16
	}
	if cfg.OpUnits == 0 {
		cfg.OpUnits = 350
	}
	if cfg.Populate == 0 {
		cfg.Populate = int(cfg.KeySpace / 2)
	}
	db := &DB{
		store:    lsm.New(0xdb),
		metaLock: factory(),
		pad:      pad,
		keySpace: cfg.KeySpace,
		opUnits:  cfg.OpUnits,
	}
	rng := prng.NewXoshiro256(0x1db)
	var buf [16]byte
	for i := 0; i < cfg.Populate; i++ {
		k := prng.Uint64n(rng, cfg.KeySpace)
		binary.LittleEndian.PutUint64(buf[:8], k)
		db.store.Put(k, append([]byte(nil), buf[:]...))
	}
	return db
}

// Name implements dbbench.DB.
func (d *DB) Name() string { return "leveldb" }

// Do implements dbbench.DB. Writes also go through the metadata lock
// (LevelDB's mutex protects the memtable switch); the paper's workload
// is read-only, but supporting puts keeps the engine complete.
func (d *DB) Do(w *core.Worker, rng prng.Source, op workload.OpKind) {
	k := prng.Uint64n(rng, d.keySpace)
	switch op {
	case workload.OpPut, workload.OpInsert:
		d.metaLock.Acquire(w)
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], k)
		d.store.Put(k, append([]byte(nil), buf[:]...))
		d.pad.CS(w, d.opUnits)
		d.metaLock.Release(w)
	default: // randomread
		// Take the snapshot under the global mutex (the contended
		// critical section of Fig. 10a).
		d.metaLock.Acquire(w)
		v := d.store.Acquire()
		d.pad.CS(w, d.opUnits/3)
		d.metaLock.Release(w)

		_, _ = v.Get(k)
		d.pad.NCS(w, d.opUnits)

		d.metaLock.Acquire(w)
		d.store.Release(v)
		d.metaLock.Release(w)
	}
}

// Refs exposes the current version refcount (tests).
func (d *DB) Refs() int { return d.store.Refs() }
