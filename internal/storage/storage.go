// Package storage declares the optional capability interfaces that
// storage engines may implement beyond shardedkv's core Engine
// surface. Callers discover capabilities by interface assertion — the
// add-an-engine recipe in ARCHITECTURE.md calls this the capability
// pattern: no type-switches on concrete engines, no registry; an
// engine opts into a fast path by implementing the method set, and
// every caller degrades gracefully when the assertion fails.
//
// Current capabilities:
//
//   - Snapshotter/Snapshot: a stable view that can be read after the
//     shard lock is released, plus a bulk Restore load for recovery.
//     Checkpointing uses it to dump shard state without stalling
//     writers; engines without it get a full dump taken under the
//     shard lock instead.
//   - Compactor: fold storage to its minimal footprint before a
//     checkpoint dump (the LSM's major compaction).
//
// shardedkv's own batch capabilities (batchRanger, unorderedScanner)
// follow the same pattern but live next to their single caller.
package storage

// Snapshot is a stable, point-in-time view of an engine's live
// contents. Range may be called without any external synchronisation
// — the view is immutable. Release returns the snapshot's resources
// and must be called exactly once, under the same external
// synchronisation (shard lock) as the Snapshot call that produced it,
// because engines may keep reference counts that are not themselves
// thread-safe.
type Snapshot interface {
	// Range calls fn for every live pair in ascending key order until
	// fn returns false.
	Range(fn func(k uint64, v []byte) bool)
	// Release unpins the snapshot. Call under the shard lock.
	Release()
}

// Snapshotter is implemented by engines that can produce a stable
// snapshot cheaply (without copying the data set) and bulk-load state
// during recovery. Snapshot must be called under the engine's
// external synchronisation (the shard lock); the returned view is
// then safe to read after the lock is dropped.
type Snapshotter interface {
	Snapshot() Snapshot
	// Restore bulk-merges pairs from src into the engine, with
	// restored pairs shadowing any existing value for the same key.
	// src streams pairs in arbitrary order. Like all mutations it
	// requires external synchronisation, but recovery calls it before
	// the store is published, so in practice it runs single-threaded.
	Restore(src func(yield func(k uint64, v []byte) bool))
}

// Compactor is implemented by engines that can fold their storage to
// a minimal footprint (dropping tombstones and shadowed versions).
// Checkpointing calls it before a snapshot dump so the checkpoint
// file reflects the compacted state. Requires the shard lock.
type Compactor interface {
	Compact()
}
