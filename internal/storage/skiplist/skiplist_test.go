package skiplist

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestPutGetDelete(t *testing.T) {
	l := New(1)
	if !l.Put(5, []byte("a")) {
		t.Fatal("insert should report true")
	}
	if l.Put(5, []byte("b")) {
		t.Fatal("replace should report false")
	}
	if v, ok := l.Get(5); !ok || string(v) != "b" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if !l.Delete(5) || l.Delete(5) {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := l.Get(5); ok {
		t.Fatal("deleted key still present")
	}
	if l.Len() != 0 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestOrderedScan(t *testing.T) {
	l := New(7)
	rng := prng.NewXoshiro256(3)
	ref := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := prng.Uint64n(rng, 10000)
		l.Put(k, nil)
		ref[k] = true
	}
	var prev uint64
	first := true
	n := 0
	l.Scan(func(k uint64, v []byte) bool {
		if !first && k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		n++
		return true
	})
	if n != len(ref) {
		t.Fatalf("scanned %d, want %d", n, len(ref))
	}
}

func TestRangeBounds(t *testing.T) {
	l := New(2)
	for i := uint64(0); i < 100; i++ {
		l.Put(i*2, nil) // even keys 0..198
	}
	var got []uint64
	l.Range(10, 20, func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v", got)
		}
	}
}

func TestDeterministicStructure(t *testing.T) {
	// Same seed + same inserts => same Bytes accounting and scan.
	build := func() *List {
		l := New(99)
		for i := uint64(0); i < 1000; i++ {
			l.Put(i*i%4096, []byte{byte(i)})
		}
		return l
	}
	a, b := build(), build()
	if a.Len() != b.Len() || a.Bytes() != b.Bytes() {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", a.Len(), a.Bytes(), b.Len(), b.Bytes())
	}
}

func TestVsReferenceMap(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := prng.NewXoshiro256(seed)
		l := New(seed)
		ref := map[uint64][]byte{}
		for i := 0; i < int(n%1500)+50; i++ {
			k := prng.Uint64n(rng, 256)
			switch prng.Uint64n(rng, 3) {
			case 0, 1:
				v := []byte{byte(k), byte(i)}
				l.Put(k, v)
				ref[k] = v
			default:
				got := l.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			}
		}
		if l.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := l.Get(k)
			if !ok || string(got) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIterator(t *testing.T) {
	l := New(77)
	for k := uint64(0); k < 100; k += 2 {
		l.Put(k, []byte{byte(k)})
	}
	it := l.Seek(11)
	var got []uint64
	for ; it.Valid(); it.Next() {
		if it.Value()[0] != byte(it.Key()) {
			t.Fatalf("iterator key %d carries wrong value", it.Key())
		}
		got = append(got, it.Key())
	}
	if len(got) != 44 || got[0] != 12 || got[len(got)-1] != 98 {
		t.Fatalf("Seek(11) walked %d keys from %v: want 44 keys 12..98", len(got), got[:min(3, len(got))])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("iterator out of order at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	if it := l.Seek(200); it.Valid() {
		t.Fatal("Seek past the last key must be invalid")
	}
	if it := New(1).Seek(0); it.Valid() {
		t.Fatal("iterator over an empty list must be invalid")
	}
}
