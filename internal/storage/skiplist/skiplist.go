// Package skiplist implements a deterministic-height skiplist keyed by
// uint64: the memtable substrate of the LevelDB-like engine. Heights
// are drawn from a per-list seeded PRNG, so a given insertion sequence
// always builds the same structure (the repository-wide reproducibility
// rule). The list itself is unsynchronised; the LSM layer arranges
// locking per Table 1 of the paper.
package skiplist

import (
	"repro/internal/prng"
)

const maxHeight = 16

type node struct {
	key   uint64
	value []byte
	next  [maxHeight]*node
	h     int
}

// List is a skiplist. Use New.
type List struct {
	head   *node
	height int
	size   int
	rng    *prng.SplitMix64
	bytes  int
}

// New returns an empty list whose tower heights derive from seed.
func New(seed uint64) *List {
	return &List{
		head:   &node{h: maxHeight},
		height: 1,
		rng:    prng.NewSplitMix64(seed),
	}
}

// Len returns the number of keys.
func (l *List) Len() int { return l.size }

// Bytes returns the approximate payload size (memtable flush trigger).
func (l *List) Bytes() int { return l.bytes }

// randomHeight draws a tower height with P(h) = 2^-h.
func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Uint64()&1 == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual locates the first node with key >= k and fills
// prev with the rightmost node before it on every level.
func (l *List) findGreaterOrEqual(k uint64, prev *[maxHeight]*node) *node {
	x := l.head
	for level := l.height - 1; level >= 0; level-- {
		for x.next[level] != nil && x.next[level].key < k {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Put inserts or replaces k. Returns true when newly inserted.
func (l *List) Put(k uint64, v []byte) bool {
	_, existed := l.PutPrev(k, v)
	return !existed
}

// PutPrev inserts or replaces k, returning the value it displaced
// (nil, false when k was absent): the prior state in the same descent
// the write needs anyway, for callers doing their own liveness
// accounting (the LSM's memtable).
func (l *List) PutPrev(k uint64, v []byte) ([]byte, bool) {
	var prev [maxHeight]*node
	n := l.findGreaterOrEqual(k, &prev)
	if n != nil && n.key == k {
		old := n.value
		l.bytes += len(v) - len(old)
		n.value = v
		return old, true
	}
	h := l.randomHeight()
	if h > l.height {
		for level := l.height; level < h; level++ {
			prev[level] = l.head
		}
		l.height = h
	}
	nn := &node{key: k, value: v, h: h}
	for level := 0; level < h; level++ {
		nn.next[level] = prev[level].next[level]
		prev[level].next[level] = nn
	}
	l.size++
	l.bytes += len(v) + 8
	return nil, false
}

// Get returns the value for k.
func (l *List) Get(k uint64) ([]byte, bool) {
	n := l.findGreaterOrEqual(k, nil)
	if n != nil && n.key == k {
		return n.value, true
	}
	return nil, false
}

// Delete removes k. Returns whether it existed.
func (l *List) Delete(k uint64) bool {
	var prev [maxHeight]*node
	n := l.findGreaterOrEqual(k, &prev)
	if n == nil || n.key != k {
		return false
	}
	for level := 0; level < n.h; level++ {
		if prev[level].next[level] == n {
			prev[level].next[level] = n.next[level]
		}
	}
	l.size--
	l.bytes -= len(n.value) + 8
	return true
}

// Iterator walks the list in ascending key order from a Seek position,
// LevelDB-memtable style. Mutating the list invalidates iterators; the
// LSM layer only advances one under the same lock that guards writes.
type Iterator struct{ n *node }

// Seek returns an iterator positioned at the first key >= k.
func (l *List) Seek(k uint64) Iterator {
	return Iterator{n: l.findGreaterOrEqual(k, nil)}
}

// Valid reports whether the iterator is positioned on an entry.
func (it Iterator) Valid() bool { return it.n != nil }

// Key returns the current key; the iterator must be Valid.
func (it Iterator) Key() uint64 { return it.n.key }

// Value returns the current value; the iterator must be Valid.
func (it Iterator) Value() []byte { return it.n.value }

// Next advances to the following key.
func (it *Iterator) Next() { it.n = it.n.next[0] }

// Range visits keys in [lo, hi] in order until fn returns false.
func (l *List) Range(lo, hi uint64, fn func(k uint64, v []byte) bool) {
	n := l.findGreaterOrEqual(lo, nil)
	for n != nil && n.key <= hi {
		if !fn(n.key, n.value) {
			return
		}
		n = n.next[0]
	}
}

// Scan visits every key in order.
func (l *List) Scan(fn func(k uint64, v []byte) bool) {
	l.Range(0, ^uint64(0), fn)
}
