package lsm

import (
	"testing"

	"repro/internal/prng"
)

func TestPutGet(t *testing.T) {
	s := New(1)
	s.FlushBytes = 1 << 10 // small, to force freezes
	for i := uint64(0); i < 2000; i++ {
		s.Put(i, []byte{byte(i)})
	}
	for i := uint64(0); i < 2000; i++ {
		v, ok := s.Get(i)
		if !ok || v[0] != byte(i) {
			t.Fatalf("Get(%d) = %v,%v", i, v, ok)
		}
	}
	if s.Runs() == 0 {
		t.Fatal("expected at least one frozen run")
	}
}

func TestOverwriteAcrossFreeze(t *testing.T) {
	s := New(2)
	s.FlushBytes = 256
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 50; i++ {
			s.Put(i, []byte{byte(round)})
		}
	}
	for i := uint64(0); i < 50; i++ {
		v, ok := s.Get(i)
		if !ok || v[0] != 9 {
			t.Fatalf("Get(%d) = %v,%v; newest write must win across runs", i, v, ok)
		}
	}
}

func TestSnapshotStability(t *testing.T) {
	s := New(3)
	s.FlushBytes = 512
	for i := uint64(0); i < 100; i++ {
		s.Put(i, []byte("old"))
	}
	// Force the memtable into a run so the version captures it.
	for i := uint64(100); i < 400; i++ {
		s.Put(i, []byte("pad"))
	}
	v := s.Acquire()
	seqAt := v.Seq()
	for i := uint64(0); i < 100; i++ {
		s.Put(i, []byte("new"))
	}
	for i := uint64(400); i < 1000; i++ {
		s.Put(i, []byte("more"))
	}
	// The pinned version still answers from its frozen view.
	got, ok := v.Get(5)
	if !ok || string(got) != "old" {
		t.Fatalf("snapshot read = %q,%v, want old", got, ok)
	}
	if v.Seq() != seqAt {
		t.Fatal("version seq changed under a pin")
	}
	s.Release(v)
}

func TestAcquireReleaseRefcount(t *testing.T) {
	s := New(4)
	v1 := s.Acquire()
	v2 := s.Acquire()
	if s.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", s.Refs())
	}
	s.Release(v1)
	s.Release(v2)
	if s.Refs() != 0 {
		t.Fatalf("refs = %d, want 0", s.Refs())
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New(5)
	v := s.Acquire()
	s.Release(v)
	s.Release(v)
}

func TestCompactionBoundsRuns(t *testing.T) {
	s := New(6)
	s.FlushBytes = 128
	rng := prng.NewXoshiro256(1)
	for i := 0; i < 20000; i++ {
		s.Put(prng.Uint64n(rng, 5000), []byte{1, 2, 3, 4})
	}
	if s.Runs() > 8 {
		t.Fatalf("run stack grew unbounded: %d", s.Runs())
	}
	// Everything remains readable post-compaction.
	found := 0
	for k := uint64(0); k < 5000; k++ {
		if _, ok := s.Get(k); ok {
			found++
		}
	}
	if found < 4000 {
		t.Fatalf("only %d/5000 keys found after compaction", found)
	}
}

func TestDeleteBasic(t *testing.T) {
	s := New(8)
	if s.Delete(1) {
		t.Fatal("delete of absent key reported true")
	}
	if !s.Put(1, []byte("a")) {
		t.Fatal("first put must report insert")
	}
	if s.Put(1, []byte("b")) {
		t.Fatal("second put must report replace")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.Delete(1) {
		t.Fatal("delete of live key reported false")
	}
	if s.Delete(1) {
		t.Fatal("double delete reported true")
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("deleted key still readable")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if !s.Put(1, []byte("c")) {
		t.Fatal("put over a tombstone must report insert")
	}
	if v, ok := s.Get(1); !ok || string(v) != "c" {
		t.Fatalf("Get after re-put = %q,%v", v, ok)
	}
}

func TestDeleteShadowsAcrossFreeze(t *testing.T) {
	s := New(9)
	s.FlushBytes = 256
	for i := uint64(0); i < 200; i++ {
		s.Put(i, []byte("live"))
	}
	// Deletes land in a newer memtable/run than the values they kill.
	for i := uint64(0); i < 200; i += 2 {
		if !s.Delete(i) {
			t.Fatalf("Delete(%d) reported absent", i)
		}
	}
	for i := uint64(0); i < 200; i++ {
		_, ok := s.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) ok=%v, want %v", i, ok, want)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

func TestCompactDropsTombstones(t *testing.T) {
	s := New(10)
	s.FlushBytes = 512
	const n = 2000
	for i := uint64(0); i < n; i++ {
		s.Put(i, []byte("payload-xxxxxxxx"))
	}
	// Delete a majority, then compact: the footprint must shrink to
	// roughly the survivors — tombstones must not linger as entries.
	for i := uint64(0); i < n; i++ {
		if i%4 != 0 {
			s.Delete(i)
		}
	}
	beforeEntries, beforeBytes := s.RunEntries(), s.RunBytes()
	s.Compact()
	afterEntries, afterBytes := s.RunEntries(), s.RunBytes()
	if afterEntries >= beforeEntries || afterBytes >= beforeBytes {
		t.Fatalf("footprint did not shrink: entries %d -> %d, bytes %d -> %d",
			beforeEntries, afterEntries, beforeBytes, afterBytes)
	}
	if want := n / 4; afterEntries != want {
		t.Fatalf("post-compaction entries = %d, want exactly the %d survivors", afterEntries, want)
	}
	if s.Runs() != 1 {
		t.Fatalf("Runs = %d after full compaction, want 1", s.Runs())
	}
	for i := uint64(0); i < n; i++ {
		_, ok := s.Get(i)
		if want := i%4 == 0; ok != want {
			t.Fatalf("Get(%d) ok=%v after compaction, want %v", i, ok, want)
		}
	}
}

func TestBottomMergeDropsTombstones(t *testing.T) {
	// Drive enough churn through a tiny memtable that the freeze-path
	// merge (not an explicit Compact) repeatedly rebuilds the bottom
	// run; deleted keys must not survive in it forever.
	s := New(11)
	s.FlushBytes = 128
	const keys = 400
	for i := uint64(0); i < keys; i++ {
		s.Put(i, []byte{1, 2, 3, 4})
	}
	for i := uint64(0); i < keys; i++ {
		if i%8 != 0 {
			s.Delete(i)
		}
	}
	// Churn a small disjoint keyspace so compaction keeps folding the
	// old tombstones into the bottom.
	for r := 0; r < 40; r++ {
		for i := uint64(keys); i < keys+40; i++ {
			s.Put(i, []byte{5, 6, 7, 8})
		}
	}
	if got, want := s.Len(), keys/8+40; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	// Every entry beyond the live count is transient shadowing in the
	// upper runs; the bulk of the 350 dropped keys must be gone.
	if s.RunEntries() > 3*s.Len() {
		t.Fatalf("run entries %d dwarf live count %d; tombstones piling up", s.RunEntries(), s.Len())
	}
	for i := uint64(0); i < keys; i++ {
		_, ok := s.Get(i)
		if want := i%8 == 0; ok != want {
			t.Fatalf("Get(%d) ok=%v, want %v", i, ok, want)
		}
	}
}

func TestRangeMergedIterator(t *testing.T) {
	s := New(12)
	s.FlushBytes = 256 // several runs plus a live memtable
	ref := map[uint64][]byte{}
	rng := prng.NewXoshiro256(99)
	for i := 0; i < 5000; i++ {
		k := prng.Uint64n(rng, 600)
		switch prng.Uint64n(rng, 4) {
		case 0:
			if s.Delete(k) != (ref[k] != nil) {
				t.Fatalf("op %d: Delete(%d) disagrees with reference", i, k)
			}
			delete(ref, k)
		default:
			v := []byte{byte(i), byte(i >> 8)}
			s.Put(k, v)
			ref[k] = v
		}
	}
	check := func(lo, hi uint64) {
		t.Helper()
		var got []uint64
		last := uint64(0)
		s.Range(lo, hi, func(k uint64, v []byte) bool {
			if len(got) > 0 && k <= last {
				t.Fatalf("Range[%d,%d] emitted %d after %d: out of order", lo, hi, k, last)
			}
			last = k
			got = append(got, k)
			if want := ref[k]; string(v) != string(want) {
				t.Fatalf("Range[%d,%d] key %d = %v, want %v", lo, hi, k, v, want)
			}
			return true
		})
		want := 0
		for k := range ref {
			if k >= lo && k <= hi {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Range[%d,%d] yielded %d keys, want %d", lo, hi, len(got), want)
		}
	}
	check(0, ^uint64(0))
	check(100, 299)
	check(599, 599)
	check(700, 800) // empty
	// Early stop.
	n := 0
	s.Range(0, ^uint64(0), func(uint64, []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early-stopped Range visited %d keys, want 10", n)
	}
}

func TestVsReferenceMap(t *testing.T) {
	s := New(7)
	s.FlushBytes = 1 << 11
	rng := prng.NewXoshiro256(21)
	ref := map[uint64]byte{}
	for i := 0; i < 30000; i++ {
		k := prng.Uint64n(rng, 2048)
		v := byte(i)
		s.Put(k, []byte{v})
		ref[k] = v
	}
	for k, v := range ref {
		got, ok := s.Get(k)
		if !ok || got[0] != v {
			t.Fatalf("Get(%d) = %v,%v, want %d", k, got, ok, v)
		}
	}
}

// TestSnapshotRangeStable pins the Snapshotter substrate: a pinned
// version's Range must see exactly the live state at freeze time,
// unaffected by later writes.
func TestSnapshotRangeStable(t *testing.T) {
	s := New(3)
	s.FlushBytes = 1 << 10
	for i := uint64(0); i < 500; i++ {
		s.Put(i, []byte{byte(i)})
	}
	s.Delete(7)
	v := s.Snapshot()
	defer s.Release(v)

	// Post-snapshot churn must be invisible to v.
	for i := uint64(0); i < 500; i += 2 {
		s.Delete(i)
	}
	s.Put(7, []byte{99})

	got := map[uint64]byte{}
	var prev uint64
	first := true
	v.Range(func(k uint64, val []byte) bool {
		if !first && k <= prev {
			t.Fatalf("Version.Range out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		got[k] = val[0]
		return true
	})
	if len(got) != 499 {
		t.Fatalf("snapshot saw %d keys, want 499", len(got))
	}
	if _, ok := got[7]; ok {
		t.Fatal("snapshot resurrected deleted key 7")
	}
	if got[3] != 3 {
		t.Fatalf("snapshot value for 3 = %d", got[3])
	}
}

// TestLoadShadowsAndCounts pins the recovery bulk-load: loaded pairs
// win over existing state and the live count stays exact.
func TestLoadShadowsAndCounts(t *testing.T) {
	s := New(5)
	s.Put(1, []byte{1})
	s.Put(2, []byte{2})
	s.Delete(2)
	s.Load([]uint64{2, 3}, [][]byte{{22}, {33}})
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for k, want := range map[uint64]byte{1: 1, 2: 22, 3: 33} {
		v, ok := s.Get(k)
		if !ok || v[0] != want {
			t.Fatalf("Get(%d) = %v,%v want %d", k, v, ok, want)
		}
	}
	// A later Put still shadows the loaded run.
	s.Put(3, []byte{44})
	if v, _ := s.Get(3); v[0] != 44 {
		t.Fatalf("post-load Put lost: %v", v)
	}
}
