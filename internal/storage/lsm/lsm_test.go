package lsm

import (
	"testing"

	"repro/internal/prng"
)

func TestPutGet(t *testing.T) {
	s := New(1)
	s.FlushBytes = 1 << 10 // small, to force freezes
	for i := uint64(0); i < 2000; i++ {
		s.Put(i, []byte{byte(i)})
	}
	for i := uint64(0); i < 2000; i++ {
		v, ok := s.Get(i)
		if !ok || v[0] != byte(i) {
			t.Fatalf("Get(%d) = %v,%v", i, v, ok)
		}
	}
	if s.Runs() == 0 {
		t.Fatal("expected at least one frozen run")
	}
}

func TestOverwriteAcrossFreeze(t *testing.T) {
	s := New(2)
	s.FlushBytes = 256
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 50; i++ {
			s.Put(i, []byte{byte(round)})
		}
	}
	for i := uint64(0); i < 50; i++ {
		v, ok := s.Get(i)
		if !ok || v[0] != 9 {
			t.Fatalf("Get(%d) = %v,%v; newest write must win across runs", i, v, ok)
		}
	}
}

func TestSnapshotStability(t *testing.T) {
	s := New(3)
	s.FlushBytes = 512
	for i := uint64(0); i < 100; i++ {
		s.Put(i, []byte("old"))
	}
	// Force the memtable into a run so the version captures it.
	for i := uint64(100); i < 400; i++ {
		s.Put(i, []byte("pad"))
	}
	v := s.Acquire()
	seqAt := v.Seq()
	for i := uint64(0); i < 100; i++ {
		s.Put(i, []byte("new"))
	}
	for i := uint64(400); i < 1000; i++ {
		s.Put(i, []byte("more"))
	}
	// The pinned version still answers from its frozen view.
	got, ok := v.Get(5)
	if !ok || string(got) != "old" {
		t.Fatalf("snapshot read = %q,%v, want old", got, ok)
	}
	if v.Seq() != seqAt {
		t.Fatal("version seq changed under a pin")
	}
	s.Release(v)
}

func TestAcquireReleaseRefcount(t *testing.T) {
	s := New(4)
	v1 := s.Acquire()
	v2 := s.Acquire()
	if s.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", s.Refs())
	}
	s.Release(v1)
	s.Release(v2)
	if s.Refs() != 0 {
		t.Fatalf("refs = %d, want 0", s.Refs())
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New(5)
	v := s.Acquire()
	s.Release(v)
	s.Release(v)
}

func TestCompactionBoundsRuns(t *testing.T) {
	s := New(6)
	s.FlushBytes = 128
	rng := prng.NewXoshiro256(1)
	for i := 0; i < 20000; i++ {
		s.Put(prng.Uint64n(rng, 5000), []byte{1, 2, 3, 4})
	}
	if s.Runs() > 8 {
		t.Fatalf("run stack grew unbounded: %d", s.Runs())
	}
	// Everything remains readable post-compaction.
	found := 0
	for k := uint64(0); k < 5000; k++ {
		if _, ok := s.Get(k); ok {
			found++
		}
	}
	if found < 4000 {
		t.Fatalf("only %d/5000 keys found after compaction", found)
	}
}

func TestVsReferenceMap(t *testing.T) {
	s := New(7)
	s.FlushBytes = 1 << 11
	rng := prng.NewXoshiro256(21)
	ref := map[uint64]byte{}
	for i := 0; i < 30000; i++ {
		k := prng.Uint64n(rng, 2048)
		v := byte(i)
		s.Put(k, []byte{v})
		ref[k] = v
	}
	for k, v := range ref {
		got, ok := s.Get(k)
		if !ok || got[0] != v {
			t.Fatalf("Get(%d) = %v,%v, want %d", k, got, ok, v)
		}
	}
}
