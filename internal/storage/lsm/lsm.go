// Package lsm is a miniature log-structured merge store: an active
// memtable (skiplist), frozen immutable runs, and reference-counted
// versions used for LevelDB-style snapshots. It is the substrate of
// the LevelDB-like engine; the paper's db_bench randomread workload
// takes "a snapshot of internal database structures" under a global
// metadata lock — this package supplies the version/snapshot machinery
// and the engine in internal/dbs/ldb supplies the locking.
//
// Deletes are first-class: Delete writes a tombstone that shadows any
// older value of the key through Get and Range, and compaction drops
// tombstones whenever it produces the bottom-most run (nothing older
// remains to shadow), so deleted keys stop paying run-footprint and
// read-amplification rent. Range is a merged iterator over the
// memtable and the run stack with newest-wins shadowing, the same
// resolution order as Get.
package lsm

import (
	"sort"

	"repro/internal/storage/skiplist"
)

// tombstone marks a deleted key inside the memtable and runs. Matching
// is by backing-array identity, not content, so no caller-supplied
// value can collide with it.
var tombstone = []byte{0}

// isTomb reports whether v is the tombstone marker.
func isTomb(v []byte) bool { return len(v) == 1 && &v[0] == &tombstone[0] }

// run is one immutable sorted run (a flushed memtable).
type run struct {
	keys   []uint64
	values [][]byte
}

func (r *run) get(k uint64) ([]byte, bool) {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= k })
	if i < len(r.keys) && r.keys[i] == k {
		return r.values[i], true
	}
	return nil, false
}

// Version is an immutable view: a frozen memtable prefix plus the run
// stack at freeze time. Reads against a Version need no locks, exactly
// like reads against a LevelDB snapshot.
type Version struct {
	runs []*run // newest first
	refs int
	seq  uint64
}

// Seq returns the version's sequence number.
func (v *Version) Seq() uint64 { return v.seq }

// Get reads k from the version (newest run wins; a tombstone shadows
// older runs and reads as absent).
func (v *Version) Get(k uint64) ([]byte, bool) {
	for _, r := range v.runs {
		if val, ok := r.get(k); ok {
			if isTomb(val) {
				return nil, false
			}
			return val, true
		}
	}
	return nil, false
}

// Store is the mutable LSM. All mutating methods and version
// acquisition must be externally synchronised (the engine's metadata
// lock); reads through an acquired Version are lock-free.
type Store struct {
	mem      *skiplist.List
	versions *Version // current
	seq      uint64
	live     int
	// FlushBytes triggers a memtable freeze; zero means 1<<18.
	FlushBytes int
}

// New returns an empty store.
func New(seed uint64) *Store {
	return &Store{
		mem:      skiplist.New(seed),
		versions: &Version{seq: 0},
	}
}

func (s *Store) flushBytes() int {
	if s.FlushBytes == 0 {
		return 1 << 18
	}
	return s.FlushBytes
}

// Put writes k=v into the memtable, freezing it into a run when full.
// It returns true when k was not live before (an insert), false on a
// replace: the prior state comes back from the memtable write's own
// descent (PutPrev), and the run stack is consulted only when the
// memtable had no entry at all.
func (s *Store) Put(k uint64, v []byte) bool {
	prev, existed := s.mem.PutPrev(k, v)
	var wasLive bool
	if existed {
		wasLive = !isTomb(prev)
	} else {
		_, wasLive = s.versions.Get(k)
	}
	s.seq++
	if !wasLive {
		s.live++
	}
	if s.mem.Bytes() >= s.flushBytes() {
		s.freeze()
	}
	return !wasLive
}

// Delete removes k by writing a tombstone that shadows older runs; the
// tombstone itself is dropped when compaction reaches the bottom of
// the stack. Returns whether k was live. Deleting a dead key writes
// nothing — there is no older value to shadow.
func (s *Store) Delete(k uint64) bool {
	if v, ok := s.mem.Get(k); ok {
		if isTomb(v) {
			return false
		}
	} else if _, live := s.versions.Get(k); !live {
		return false
	}
	s.mem.Put(k, tombstone)
	s.seq++
	s.live--
	if s.mem.Bytes() >= s.flushBytes() {
		s.freeze()
	}
	return true
}

// Len returns the number of live keys.
func (s *Store) Len() int { return s.live }

// freeze turns the memtable into an immutable run and installs a new
// current version. Old versions remain readable by their holders. A
// run frozen onto an empty stack is bottom-most, so its tombstones
// have nothing to shadow and are dropped immediately.
func (s *Store) freeze() {
	bottom := len(s.versions.runs) == 0
	r := &run{}
	s.mem.Scan(func(k uint64, v []byte) bool {
		if bottom && isTomb(v) {
			return true
		}
		r.keys = append(r.keys, k)
		r.values = append(r.values, v)
		return true
	})
	newRuns := s.versions.runs
	if len(r.keys) > 0 {
		newRuns = append([]*run{r}, newRuns...)
	}
	// Trivial compaction: merge the oldest runs when the stack deepens,
	// keeping read amplification bounded. The merge output becomes the
	// bottom-most run, so mergeRuns drops tombstones.
	if len(newRuns) > 6 {
		merged := mergeRuns(newRuns[4:])
		newRuns = newRuns[:4:4]
		if len(merged.keys) > 0 {
			newRuns = append(newRuns, merged)
		}
	}
	s.versions = &Version{runs: newRuns, seq: s.seq}
	s.mem = skiplist.New(s.seq ^ 0x9e3779b97f4a7c15)
}

// mergeRuns merges sorted runs, newest first, into one. The result is
// always installed as the bottom-most run of the stack, so tombstones
// are resolved here and dropped: a deleted key vanishes from the
// output instead of shadowing runs that no longer exist below it.
func mergeRuns(rs []*run) *run {
	seen := map[uint64][]byte{}
	order := []uint64{}
	for _, r := range rs { // newest first: first write wins
		for i, k := range r.keys {
			if _, ok := seen[k]; !ok {
				seen[k] = r.values[i]
				order = append(order, k)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := &run{}
	for _, k := range order {
		if v := seen[k]; !isTomb(v) {
			out.keys = append(out.keys, k)
			out.values = append(out.values, v)
		}
	}
	return out
}

// Compact freezes the memtable and folds the whole run stack into one
// tombstone-free run (a full major compaction). Pinned versions keep
// reading their old stacks.
func (s *Store) Compact() {
	if s.mem.Len() == 0 && len(s.versions.runs) <= 1 {
		// Already fully compacted: every path that leaves a single run
		// (bottom-most freeze or merge) dropped its tombstones.
		return
	}
	s.freeze()
	if len(s.versions.runs) == 0 {
		return
	}
	merged := mergeRuns(s.versions.runs)
	var runs []*run
	if len(merged.keys) > 0 {
		runs = []*run{merged}
	}
	s.versions = &Version{runs: runs, seq: s.seq}
}

// Get reads k from the live store (memtable, then runs; a tombstone at
// any level reads as absent). Must be called under the metadata lock;
// snapshot reads use Acquire instead.
func (s *Store) Get(k uint64) ([]byte, bool) {
	if v, ok := s.mem.Get(k); ok {
		if isTomb(v) {
			return nil, false
		}
		return v, true
	}
	return s.versions.Get(k)
}

// Range calls fn for each live key in [lo, hi] in ascending order until
// fn returns false: a merged iterator over the memtable and every run,
// resolving each key at its newest occurrence (memtable first, then
// runs newest-to-oldest) and skipping tombstones — the same shadowing
// order as Get. Must be called under the metadata lock.
func (s *Store) Range(lo, hi uint64, fn func(k uint64, v []byte) bool) {
	mem := s.mem.Seek(lo)
	runs := s.versions.runs
	idx := make([]int, len(runs))
	for i, r := range runs {
		idx[i] = sort.Search(len(r.keys), func(j int) bool { return r.keys[j] >= lo })
	}
	for {
		// Smallest in-range key across all sources.
		var best uint64
		have := false
		if mem.Valid() && mem.Key() <= hi {
			best, have = mem.Key(), true
		}
		for i, r := range runs {
			if idx[i] < len(r.keys) && r.keys[idx[i]] <= hi {
				if k := r.keys[idx[i]]; !have || k < best {
					best, have = k, true
				}
			}
		}
		if !have {
			return
		}
		// The newest source holding best supplies the value; every
		// source holding best advances past its shadowed copy.
		var v []byte
		picked := false
		if mem.Valid() && mem.Key() == best {
			v, picked = mem.Value(), true
			mem.Next()
		}
		for i, r := range runs {
			if idx[i] < len(r.keys) && r.keys[idx[i]] == best {
				if !picked {
					v, picked = r.values[idx[i]], true
				}
				idx[i]++
			}
		}
		if !isTomb(v) && !fn(best, v) {
			return
		}
	}
}

// Range calls fn for each live key in the version in ascending order
// until fn returns false — the run-stack half of Store.Range, with the
// same newest-wins shadowing and tombstone skipping. A Version is
// immutable, so unlike Store.Range this needs no external lock; it is
// the read side of the Snapshotter capability used by checkpoint
// dumps.
func (v *Version) Range(fn func(k uint64, val []byte) bool) {
	runs := v.runs
	idx := make([]int, len(runs))
	for {
		var best uint64
		have := false
		for i, r := range runs {
			if idx[i] < len(r.keys) {
				if k := r.keys[idx[i]]; !have || k < best {
					best, have = k, true
				}
			}
		}
		if !have {
			return
		}
		var val []byte
		picked := false
		for i, r := range runs {
			if idx[i] < len(r.keys) && r.keys[idx[i]] == best {
				if !picked {
					val, picked = r.values[idx[i]], true
				}
				idx[i]++
			}
		}
		if !isTomb(val) && !fn(best, val) {
			return
		}
	}
}

// Snapshot freezes the memtable and pins the resulting version: a
// stable view of the full store contents whose reads need no lock.
// Must be called under the metadata lock; pair with Release.
func (s *Store) Snapshot() *Version {
	if s.mem.Len() > 0 {
		s.freeze()
	}
	return s.Acquire()
}

// Load bulk-merges pairs into the store as one immutable run placed
// newest in the stack, so loaded pairs shadow any existing value for
// the same key. keys must be strictly ascending and aligned with
// values; no pair may be a tombstone. This is the recovery fast path:
// a checkpoint's worth of state lands in one run with no memtable
// churn or per-op freeze checks.
func (s *Store) Load(keys []uint64, values [][]byte) {
	if len(keys) == 0 {
		return
	}
	if s.mem.Len() > 0 {
		// The memtable would shadow the loaded run; fold it below.
		s.freeze()
	}
	for _, k := range keys {
		if _, live := s.versions.Get(k); !live {
			s.live++
		}
	}
	r := &run{keys: keys, values: values}
	s.seq++
	s.versions = &Version{runs: append([]*run{r}, s.versions.runs...), seq: s.seq}
}

// Acquire pins and returns the current version (snapshot acquisition;
// LevelDB's db_bench randomread does this per read under the global
// mutex).
func (s *Store) Acquire() *Version {
	s.versions.refs++
	return s.versions
}

// Release unpins a version previously acquired.
func (s *Store) Release(v *Version) {
	v.refs--
	if v.refs < 0 {
		panic("lsm: version released more times than acquired")
	}
}

// Refs exposes the current version's pin count (tests).
func (s *Store) Refs() int { return s.versions.refs }

// MemLen returns the memtable key count (tests).
func (s *Store) MemLen() int { return s.mem.Len() }

// Runs returns the current run-stack depth (tests).
func (s *Store) Runs() int { return len(s.versions.runs) }

// RunEntries returns the total entry count across the current
// version's runs, tombstones included — the footprint compaction is
// meant to shrink.
func (s *Store) RunEntries() int {
	n := 0
	for _, r := range s.versions.runs {
		n += len(r.keys)
	}
	return n
}

// RunBytes returns the approximate byte footprint of the current
// version's runs (8 per key plus payload, the memtable's accounting).
func (s *Store) RunBytes() int {
	n := 0
	for _, r := range s.versions.runs {
		n += 8 * len(r.keys)
		for _, v := range r.values {
			n += len(v)
		}
	}
	return n
}
