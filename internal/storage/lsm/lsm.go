// Package lsm is a miniature log-structured merge store: an active
// memtable (skiplist), frozen immutable runs, and reference-counted
// versions used for LevelDB-style snapshots. It is the substrate of
// the LevelDB-like engine; the paper's db_bench randomread workload
// takes "a snapshot of internal database structures" under a global
// metadata lock — this package supplies the version/snapshot machinery
// and the engine in internal/dbs/ldb supplies the locking.
package lsm

import (
	"sort"

	"repro/internal/storage/skiplist"
)

// run is one immutable sorted run (a flushed memtable).
type run struct {
	keys   []uint64
	values [][]byte
}

func (r *run) get(k uint64) ([]byte, bool) {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= k })
	if i < len(r.keys) && r.keys[i] == k {
		return r.values[i], true
	}
	return nil, false
}

// Version is an immutable view: a frozen memtable prefix plus the run
// stack at freeze time. Reads against a Version need no locks, exactly
// like reads against a LevelDB snapshot.
type Version struct {
	runs []*run // newest first
	refs int
	seq  uint64
}

// Seq returns the version's sequence number.
func (v *Version) Seq() uint64 { return v.seq }

// Get reads k from the version (newest run wins).
func (v *Version) Get(k uint64) ([]byte, bool) {
	for _, r := range v.runs {
		if val, ok := r.get(k); ok {
			return val, true
		}
	}
	return nil, false
}

// Store is the mutable LSM. All mutating methods and version
// acquisition must be externally synchronised (the engine's metadata
// lock); reads through an acquired Version are lock-free.
type Store struct {
	mem      *skiplist.List
	versions *Version // current
	seq      uint64
	// FlushBytes triggers a memtable freeze; zero means 1<<18.
	FlushBytes int
}

// New returns an empty store.
func New(seed uint64) *Store {
	return &Store{
		mem:      skiplist.New(seed),
		versions: &Version{seq: 0},
	}
}

func (s *Store) flushBytes() int {
	if s.FlushBytes == 0 {
		return 1 << 18
	}
	return s.FlushBytes
}

// Put writes k=v into the memtable, freezing it into a run when full.
func (s *Store) Put(k uint64, v []byte) {
	s.mem.Put(k, v)
	s.seq++
	if s.mem.Bytes() >= s.flushBytes() {
		s.freeze()
	}
}

// freeze turns the memtable into an immutable run and installs a new
// current version. Old versions remain readable by their holders.
func (s *Store) freeze() {
	r := &run{}
	s.mem.Scan(func(k uint64, v []byte) bool {
		r.keys = append(r.keys, k)
		r.values = append(r.values, v)
		return true
	})
	newRuns := append([]*run{r}, s.versions.runs...)
	// Trivial compaction: merge the oldest runs when the stack deepens,
	// keeping read amplification bounded.
	if len(newRuns) > 6 {
		merged := mergeRuns(newRuns[4:])
		newRuns = append(newRuns[:4:4], merged)
	}
	s.versions = &Version{runs: newRuns, seq: s.seq}
	s.mem = skiplist.New(s.seq ^ 0x9e3779b97f4a7c15)
}

// mergeRuns merges sorted runs, newest first, into one.
func mergeRuns(rs []*run) *run {
	type kv struct {
		k uint64
		v []byte
	}
	seen := map[uint64]kv{}
	order := []uint64{}
	for _, r := range rs { // newest first: first write wins
		for i, k := range r.keys {
			if _, ok := seen[k]; !ok {
				seen[k] = kv{k, r.values[i]}
				order = append(order, k)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := &run{}
	for _, k := range order {
		out.keys = append(out.keys, k)
		out.values = append(out.values, seen[k].v)
	}
	return out
}

// Get reads k from the live store (memtable, then runs). Must be
// called under the metadata lock; snapshot reads use Acquire instead.
func (s *Store) Get(k uint64) ([]byte, bool) {
	if v, ok := s.mem.Get(k); ok {
		return v, true
	}
	return s.versions.Get(k)
}

// Acquire pins and returns the current version (snapshot acquisition;
// LevelDB's db_bench randomread does this per read under the global
// mutex).
func (s *Store) Acquire() *Version {
	s.versions.refs++
	return s.versions
}

// Release unpins a version previously acquired.
func (s *Store) Release(v *Version) {
	v.refs--
	if v.refs < 0 {
		panic("lsm: version released more times than acquired")
	}
}

// Refs exposes the current version's pin count (tests).
func (s *Store) Refs() int { return s.versions.refs }

// MemLen returns the memtable key count (tests).
func (s *Store) MemLen() int { return s.mem.Len() }

// Runs returns the current run-stack depth (tests).
func (s *Store) Runs() int { return len(s.versions.runs) }
