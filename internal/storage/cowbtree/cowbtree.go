// Package cowbtree implements a copy-on-write B+ tree with immutable
// snapshot roots: the storage substrate of the LMDB-like engine. A
// writer produces a new root by path-copying; readers hold a Snapshot
// (an old root) and can read it without any synchronisation while
// writers commit new versions — exactly LMDB's MVCC design, where the
// single writer lock and the reader-table locks are the only locks
// (paper Table 1).
package cowbtree

import "sync/atomic"

const degree = 32

type node struct {
	keys     []uint64
	children []*node
	values   [][]byte
}

func (n *node) isLeaf() bool { return n.children == nil }

// Snapshot is an immutable tree version; safe for concurrent readers.
type Snapshot struct {
	root *node
	size int
	// Gen is the commit generation this snapshot belongs to.
	Gen uint64
}

// Tree holds the current version; writers mutate via Commit-style Puts
// under an external writer lock. The current-version pointer itself is
// atomic, so readers may take snapshots without holding the writer
// lock — the same way LMDB readers read the meta page lock-free.
type Tree struct {
	cur atomic.Pointer[Snapshot]
}

// New returns an empty tree at generation 0.
func New() *Tree {
	t := &Tree{}
	t.cur.Store(&Snapshot{root: &node{}})
	return t
}

// Snapshot returns the current version. Callers may read it freely
// even while a writer commits new versions (those copy their path).
func (t *Tree) Snapshot() Snapshot { return *t.cur.Load() }

// Len returns the key count of the current version.
func (t *Tree) Len() int { return t.cur.Load().size }

func search(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get reads k from the snapshot.
func (s Snapshot) Get(k uint64) ([]byte, bool) {
	n := s.root
	if n == nil {
		return nil, false
	}
	for !n.isLeaf() {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			i++
		}
		n = n.children[i]
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.values[i], true
	}
	return nil, false
}

// Range calls fn over [lo, hi] in order until fn returns false.
func (s Snapshot) Range(lo, hi uint64, fn func(k uint64, v []byte) bool) {
	s.walk(s.root, lo, hi, fn)
}

func (s Snapshot) walk(n *node, lo, hi uint64, fn func(uint64, []byte) bool) bool {
	if n == nil {
		return true
	}
	if n.isLeaf() {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return false
			}
			if !fn(k, n.values[i]) {
				return false
			}
		}
		return true
	}
	for i := range n.children {
		// Prune subtrees wholly outside [lo, hi].
		if i > 0 && n.keys[i-1] > hi {
			return false
		}
		if i < len(n.keys) && n.keys[i] < lo {
			continue
		}
		if !s.walk(n.children[i], lo, hi, fn) {
			return false
		}
	}
	return true
}

// Len returns the snapshot's key count.
func (s Snapshot) Len() int { return s.size }

// Put inserts or replaces k in a new version (path copy). The caller
// must hold the writer lock; readers of older snapshots are unaffected.
func (t *Tree) Put(k uint64, v []byte) bool {
	cur := t.cur.Load()
	newRoot, inserted, sep, right := insertCOW(cur.root, k, v)
	if right != nil {
		newRoot = &node{keys: []uint64{sep}, children: []*node{newRoot, right}}
	}
	size := cur.size
	if inserted {
		size++
	}
	t.cur.Store(&Snapshot{root: newRoot, size: size, Gen: cur.Gen + 1})
	return inserted
}

// insertCOW returns a copied node with k/v applied, plus split info.
func insertCOW(n *node, k uint64, v []byte) (*node, bool, uint64, *node) {
	if n.isLeaf() {
		i := search(n.keys, k)
		c := &node{
			keys:   make([]uint64, len(n.keys), len(n.keys)+1),
			values: make([][]byte, len(n.values), len(n.values)+1),
		}
		copy(c.keys, n.keys)
		copy(c.values, n.values)
		if i < len(c.keys) && c.keys[i] == k {
			c.values[i] = v
			return c, false, 0, nil
		}
		c.keys = append(c.keys, 0)
		copy(c.keys[i+1:], c.keys[i:])
		c.keys[i] = k
		c.values = append(c.values, nil)
		copy(c.values[i+1:], c.values[i:])
		c.values[i] = v
		if len(c.keys) > degree {
			mid := len(c.keys) / 2
			right := &node{
				keys:   append([]uint64(nil), c.keys[mid:]...),
				values: append([][]byte(nil), c.values[mid:]...),
			}
			c.keys = c.keys[:mid:mid]
			c.values = c.values[:mid:mid]
			return c, true, right.keys[0], right
		}
		return c, true, 0, nil
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	child, inserted, sep, right := insertCOW(n.children[i], k, v)
	c := &node{
		keys:     append([]uint64(nil), n.keys...),
		children: append([]*node(nil), n.children...),
	}
	c.children[i] = child
	if right != nil {
		c.keys = append(c.keys, 0)
		copy(c.keys[i+1:], c.keys[i:])
		c.keys[i] = sep
		c.children = append(c.children, nil)
		copy(c.children[i+2:], c.children[i+1:])
		c.children[i+1] = right
		if len(c.keys) > degree {
			mid := len(c.keys) / 2
			sep2 := c.keys[mid]
			r2 := &node{
				keys:     append([]uint64(nil), c.keys[mid+1:]...),
				children: append([]*node(nil), c.children[mid+1:]...),
			}
			c.keys = c.keys[:mid:mid]
			c.children = c.children[: mid+1 : mid+1]
			return c, inserted, sep2, r2
		}
	}
	return c, inserted, 0, nil
}

// Delete removes k in a new version; lazy underflow like the mutable
// tree.
func (t *Tree) Delete(k uint64) bool {
	cur := t.cur.Load()
	root, deleted := deleteCOW(cur.root, k)
	if !deleted {
		return false
	}
	t.cur.Store(&Snapshot{root: root, size: cur.size - 1, Gen: cur.Gen + 1})
	return true
}

func deleteCOW(n *node, k uint64) (*node, bool) {
	if n.isLeaf() {
		i := search(n.keys, k)
		if i >= len(n.keys) || n.keys[i] != k {
			return n, false
		}
		c := &node{
			keys:   append([]uint64(nil), n.keys[:i]...),
			values: append([][]byte(nil), n.values[:i]...),
		}
		c.keys = append(c.keys, n.keys[i+1:]...)
		c.values = append(c.values, n.values[i+1:]...)
		return c, true
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	child, deleted := deleteCOW(n.children[i], k)
	if !deleted {
		return n, false
	}
	c := &node{
		keys:     append([]uint64(nil), n.keys...),
		children: append([]*node(nil), n.children...),
	}
	c.children[i] = child
	return c, true
}
