package cowbtree

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestPutGet(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 2000; i++ {
		tr.Put(i, []byte{byte(i)})
	}
	if tr.Len() != 2000 {
		t.Fatalf("len = %d", tr.Len())
	}
	s := tr.Snapshot()
	for i := uint64(0); i < 2000; i++ {
		v, ok := s.Get(i)
		if !ok || v[0] != byte(i) {
			t.Fatalf("Get(%d) = %v,%v", i, v, ok)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	// The core MVCC property: a snapshot taken before writes must not
	// observe them — this is what lets the LMDB-like engine read
	// without the writer lock.
	tr := New()
	for i := uint64(0); i < 500; i++ {
		tr.Put(i, []byte("old"))
	}
	snap := tr.Snapshot()
	gen := snap.Gen
	for i := uint64(0); i < 500; i++ {
		tr.Put(i, []byte("new"))
	}
	tr.Put(9999, []byte("extra"))
	// The old snapshot still sees old values and no phantom keys.
	for i := uint64(0); i < 500; i++ {
		if v, ok := snap.Get(i); !ok || string(v) != "old" {
			t.Fatalf("snapshot polluted at %d: %q", i, v)
		}
	}
	if _, ok := snap.Get(9999); ok {
		t.Fatal("snapshot sees a key inserted after it was taken")
	}
	if snap.Gen != gen {
		t.Fatal("snapshot generation changed")
	}
	// The current version sees everything.
	cur := tr.Snapshot()
	if v, _ := cur.Get(42); string(v) != "new" {
		t.Fatal("current version missing new values")
	}
	if _, ok := cur.Get(9999); !ok {
		t.Fatal("current version missing new key")
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 300; i++ {
		tr.Put(i, nil)
	}
	snap := tr.Snapshot()
	if !tr.Delete(7) || tr.Delete(7) {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := tr.Snapshot().Get(7); ok {
		t.Fatal("deleted key visible in new version")
	}
	if _, ok := snap.Get(7); !ok {
		t.Fatal("old snapshot lost a key after delete")
	}
	if tr.Len() != 299 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestRange(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 1000; i++ {
		tr.Put(i*3, nil)
	}
	var got []uint64
	tr.Snapshot().Range(10, 31, func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{12, 15, 18, 21, 24, 27, 30}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
}

func TestGenerationsMonotone(t *testing.T) {
	tr := New()
	last := tr.Snapshot().Gen
	for i := uint64(0); i < 100; i++ {
		tr.Put(i, nil)
		g := tr.Snapshot().Gen
		if g <= last {
			t.Fatalf("generation not monotone: %d after %d", g, last)
		}
		last = g
	}
}

func TestVsReferenceMap(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := prng.NewXoshiro256(seed)
		tr := New()
		ref := map[uint64][]byte{}
		for i := 0; i < int(n%1200)+50; i++ {
			k := prng.Uint64n(rng, 300)
			switch prng.Uint64n(rng, 3) {
			case 0, 1:
				v := []byte{byte(k), byte(i)}
				tr.Put(k, v)
				ref[k] = v
			default:
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		s := tr.Snapshot()
		for k, v := range ref {
			got, ok := s.Get(k)
			if !ok || string(got) != string(v) {
				return false
			}
		}
		count := 0
		s.Range(0, ^uint64(0), func(k uint64, v []byte) bool { count++; return true })
		return count == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
