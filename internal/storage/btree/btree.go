// Package btree implements an in-memory B+ tree with linked leaves:
// the ordered-map substrate under the upscaledb-like engine (and, in
// its copy-on-write variant, the LMDB-like engine). Keys and values
// are uint64/[]byte; the tree itself is unsynchronised — the database
// layers place locks around it exactly where Table 1 of the paper says
// each system locks.
package btree

// degree is the maximum number of keys per node; chosen so nodes span
// a few cache lines, like a page-based tree's fanout scaled to memory.
const degree = 32

type node struct {
	keys     []uint64
	children []*node // nil for leaves
	values   [][]byte
	next     *node // leaf chain for range scans
}

func (n *node) isLeaf() bool { return n.children == nil }

// Tree is a B+ tree. The zero value is not usable; call New.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// search returns the index of the first key >= k.
func search(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value for k and whether it exists.
func (t *Tree) Get(k uint64) ([]byte, bool) {
	n := t.root
	for !n.isLeaf() {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			i++ // interior separator equal to k: the key lives right
		}
		n = n.children[i]
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.values[i], true
	}
	return nil, false
}

// Put inserts or replaces the value for k. It returns true if the key
// was newly inserted.
func (t *Tree) Put(k uint64, v []byte) bool {
	inserted, splitKey, right := t.insert(t.root, k, v)
	if right != nil {
		t.root = &node{
			keys:     []uint64{splitKey},
			children: []*node{t.root, right},
		}
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert adds k/v under n, returning whether a new key was added plus
// a split (separator key and new right sibling) if n overflowed.
func (t *Tree) insert(n *node, k uint64, v []byte) (bool, uint64, *node) {
	if n.isLeaf() {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.values[i] = v
			return false, 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.values = append(n.values, nil)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = v
		if len(n.keys) > degree {
			sk, right := n.splitLeaf()
			return true, sk, right
		}
		return true, 0, nil
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	inserted, sk, right := t.insert(n.children[i], k, v)
	if right != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sk
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
		if len(n.keys) > degree {
			sk2, r2 := n.splitInterior()
			return inserted, sk2, r2
		}
	}
	return inserted, 0, nil
}

// splitLeaf splits a full leaf, returning the separator and the new
// right sibling; the receiver keeps the low half.
func (n *node) splitLeaf() (uint64, *node) {
	mid := len(n.keys) / 2
	right := &node{
		keys:   append([]uint64(nil), n.keys[mid:]...),
		values: append([][]byte(nil), n.values[mid:]...),
		next:   n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.values = n.values[:mid:mid]
	n.next = right
	return right.keys[0], right
}

// splitInterior splits a full interior node.
func (n *node) splitInterior() (uint64, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes k, returning whether it existed. Underflow is handled
// lazily (nodes may become sparse but never invalid), which matches
// the behaviour of store-level trees that defer compaction.
func (t *Tree) Delete(k uint64) bool {
	n := t.root
	for !n.isLeaf() {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			i++
		}
		n = n.children[i]
	}
	i := search(n.keys, k)
	if i >= len(n.keys) || n.keys[i] != k {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	t.size--
	return true
}

// Range calls fn for each key in [lo, hi] in ascending order until fn
// returns false.
func (t *Tree) Range(lo, hi uint64, fn func(k uint64, v []byte) bool) {
	n := t.root
	for !n.isLeaf() {
		i := search(n.keys, lo)
		if i < len(n.keys) && n.keys[i] == lo {
			i++
		}
		n = n.children[i]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, n.values[i]) {
				return
			}
		}
		n = n.next
	}
}

// Scan visits every key in order (a full-table scan).
func (t *Tree) Scan(fn func(k uint64, v []byte) bool) {
	t.Range(0, ^uint64(0), fn)
}

// Min returns the smallest key, or false when empty.
func (t *Tree) Min() (uint64, bool) {
	n := t.root
	for !n.isLeaf() {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return 0, false
	}
	return n.keys[0], true
}
