package btree

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestPutGet(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 1000; i++ {
		if !tr.Put(i*7%1000, []byte(fmt.Sprint(i*7%1000))) {
			t.Fatalf("key %d inserted twice?", i*7%1000)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d, want 1000", tr.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		v, ok := tr.Get(i)
		if !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := tr.Get(1000); ok {
		t.Fatal("found a key that was never inserted")
	}
}

func TestPutReplace(t *testing.T) {
	tr := New()
	tr.Put(5, []byte("a"))
	if tr.Put(5, []byte("b")) {
		t.Fatal("replacement must report inserted=false")
	}
	if v, _ := tr.Get(5); string(v) != "b" {
		t.Fatalf("value = %q, want b", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 500; i++ {
		tr.Put(i, []byte{byte(i)})
	}
	for i := uint64(0); i < 500; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 250 {
		t.Fatalf("len = %d, want 250", tr.Len())
	}
	for i := uint64(0); i < 500; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
}

func TestRange(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Put(i*10, nil)
	}
	var got []uint64
	tr.Range(95, 305, func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250, 260, 270, 280, 290, 300}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Put(i, nil)
	}
	count := 0
	tr.Range(0, 99, func(k uint64, v []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d keys", count)
	}
}

func TestScanOrdered(t *testing.T) {
	tr := New()
	rng := prng.NewXoshiro256(9)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := prng.Uint64n(rng, 1_000_000)
		tr.Put(k, nil)
		seen[k] = true
	}
	var prev uint64
	first := true
	n := 0
	tr.Scan(func(k uint64, v []byte) bool {
		if !first && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		if !seen[k] {
			t.Fatalf("scan produced phantom key %d", k)
		}
		prev, first = k, false
		n++
		return true
	})
	if n != len(seen) {
		t.Fatalf("scan visited %d keys, want %d", n, len(seen))
	}
}

func TestMin(t *testing.T) {
	tr := New()
	if _, ok := tr.Min(); ok {
		t.Fatal("empty tree has no min")
	}
	tr.Put(42, nil)
	tr.Put(7, nil)
	if k, ok := tr.Min(); !ok || k != 7 {
		t.Fatalf("min = %d,%v", k, ok)
	}
}

// TestVsReferenceMap property: arbitrary operation sequences keep the
// tree equivalent to a map plus sortedness.
func TestVsReferenceMap(t *testing.T) {
	f := func(seed uint64, opsCount uint16) bool {
		rng := prng.NewXoshiro256(seed)
		tr := New()
		ref := map[uint64][]byte{}
		for i := 0; i < int(opsCount%2000)+100; i++ {
			k := prng.Uint64n(rng, 512) // small key space forces collisions
			switch prng.Uint64n(rng, 3) {
			case 0, 1:
				v := []byte{byte(k), byte(i)}
				tr.Put(k, v)
				ref[k] = v
			case 2:
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || string(got) != string(v) {
				return false
			}
		}
		n := 0
		tr.Scan(func(k uint64, v []byte) bool { n++; return true })
		return n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSequential(t *testing.T) {
	tr := New()
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		tr.Put(i, nil)
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	count := 0
	tr.Scan(func(k uint64, v []byte) bool {
		if uint64(count) != k {
			t.Fatalf("scan key %d at position %d", k, count)
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("scanned %d", count)
	}
}
