// Package hashkv is a chained hash table partitioned into fixed slots:
// the storage substrate of the Kyoto-Cabinet-like engine, whose lock
// topology (paper Table 1) is a slot-level lock per partition plus a
// global method lock. The table itself is unsynchronised; the engine
// layer locks the slot that owns a key.
package hashkv

import "repro/internal/prng"

// entry is one chained key/value pair.
type entry struct {
	key  uint64
	val  []byte
	next *entry
}

// Slot is one independently lockable partition.
type Slot struct {
	buckets []*entry
	size    int
}

// Table is a fixed-slot hash KV store.
type Table struct {
	slots []Slot
}

// New builds a table with the given slot count and per-slot bucket
// count. Kyoto Cabinet's hash DB similarly divides its bucket array
// into lockable regions.
func New(slots, bucketsPerSlot int) *Table {
	t := &Table{slots: make([]Slot, slots)}
	for i := range t.slots {
		t.slots[i].buckets = make([]*entry, bucketsPerSlot)
	}
	return t
}

// NumSlots returns the slot count.
func (t *Table) NumSlots() int { return len(t.slots) }

// SlotOf maps a key to its slot index; the engine locks this slot.
func (t *Table) SlotOf(k uint64) int {
	return int(mix(k) % uint64(len(t.slots)))
}

// mix is a strong 64-bit finalizer (splitmix64's, shared via prng) so
// adjacent keys spread across slots.
func mix(x uint64) uint64 { return prng.Mix64(x) }

func (t *Table) slotAndBucket(k uint64) (*Slot, int) {
	s := &t.slots[t.SlotOf(k)]
	return s, int(mix(k^0xabcdef) % uint64(len(s.buckets)))
}

// Put stores k=v. The caller must hold k's slot lock. Returns true on
// insert, false on replace.
func (t *Table) Put(k uint64, v []byte) bool {
	s, b := t.slotAndBucket(k)
	for e := s.buckets[b]; e != nil; e = e.next {
		if e.key == k {
			e.val = v
			return false
		}
	}
	s.buckets[b] = &entry{key: k, val: v, next: s.buckets[b]}
	s.size++
	return true
}

// Get reads k. The caller must hold k's slot lock.
func (t *Table) Get(k uint64) ([]byte, bool) {
	s, b := t.slotAndBucket(k)
	for e := s.buckets[b]; e != nil; e = e.next {
		if e.key == k {
			return e.val, true
		}
	}
	return nil, false
}

// Delete removes k. The caller must hold k's slot lock.
func (t *Table) Delete(k uint64) bool {
	s, b := t.slotAndBucket(k)
	for p := &s.buckets[b]; *p != nil; p = &(*p).next {
		if (*p).key == k {
			*p = (*p).next
			s.size--
			return true
		}
	}
	return false
}

// Len sums all slot sizes; callers must hold all slot locks (or accept
// an approximate answer), as with Kyoto's count method.
func (t *Table) Len() int {
	n := 0
	for i := range t.slots {
		n += t.slots[i].size
	}
	return n
}
