// Package hashkv is a chained hash table partitioned into fixed slots:
// the storage substrate of the Kyoto-Cabinet-like engine, whose lock
// topology (paper Table 1) is a slot-level lock per partition plus a
// global method lock. The table itself is unsynchronised; the engine
// layer locks the slot that owns a key.
package hashkv

import (
	"sort"

	"repro/internal/prng"
)

// entry is one chained key/value pair.
type entry struct {
	key  uint64
	val  []byte
	next *entry
}

// maxLoad is the average chain length that triggers bucket doubling:
// past it, lookups pay chain walks instead of hash spread.
const maxLoad = 4

// Slot is one independently lockable partition. On growable tables
// (NewGrowing) its bucket array doubles when the load factor passes
// maxLoad, so chains stay O(1) on average however many keys the slot
// absorbs.
type Slot struct {
	buckets []*entry
	size    int
}

// grow doubles the bucket array and rehashes every chained entry. The
// caller holds the slot lock (the same contract as Put), so the relink
// is private to this slot; entry nodes are reused, not reallocated.
func (s *Slot) grow() {
	old := s.buckets
	s.buckets = make([]*entry, 2*len(old))
	for _, e := range old {
		for e != nil {
			next := e.next
			b := bucketIndex(e.key, len(s.buckets))
			e.next = s.buckets[b]
			s.buckets[b] = e
			e = next
		}
	}
}

// Table is a fixed-slot hash KV store.
type Table struct {
	slots    []Slot
	growable bool
}

// New builds a table with the given slot count and per-slot bucket
// count. Kyoto Cabinet's hash DB similarly divides its bucket array
// into lockable regions; like Kyoto's, the bucket count is fixed for
// life, so the figure engines built on New keep the cost profile the
// paper measures. Use NewGrowing where chains must stay bounded.
func New(slots, bucketsPerSlot int) *Table {
	t := &Table{slots: make([]Slot, slots)}
	for i := range t.slots {
		t.slots[i].buckets = make([]*entry, bucketsPerSlot)
	}
	return t
}

// NewGrowing builds a table whose slots double their bucket arrays
// once average chain length passes maxLoad (the serving-layer choice:
// bounded chains at the price of an occasional in-lock rehash).
func NewGrowing(slots, bucketsPerSlot int) *Table {
	t := New(slots, bucketsPerSlot)
	t.growable = true
	return t
}

// NumSlots returns the slot count.
func (t *Table) NumSlots() int { return len(t.slots) }

// SlotOf maps a key to its slot index; the engine locks this slot.
func (t *Table) SlotOf(k uint64) int {
	return int(mix(k) % uint64(len(t.slots)))
}

// mix is a strong 64-bit finalizer (splitmix64's, shared via prng) so
// adjacent keys spread across slots.
func mix(x uint64) uint64 { return prng.Mix64(x) }

// bucketIndex maps a key into an n-bucket array (growth recomputes it
// with the new n).
func bucketIndex(k uint64, n int) int {
	return int(mix(k^0xabcdef) % uint64(n))
}

func (t *Table) slotAndBucket(k uint64) (*Slot, int) {
	s := &t.slots[t.SlotOf(k)]
	return s, bucketIndex(k, len(s.buckets))
}

// Put stores k=v. The caller must hold k's slot lock. Returns true on
// insert, false on replace.
func (t *Table) Put(k uint64, v []byte) bool {
	s, b := t.slotAndBucket(k)
	for e := s.buckets[b]; e != nil; e = e.next {
		if e.key == k {
			e.val = v
			return false
		}
	}
	s.buckets[b] = &entry{key: k, val: v, next: s.buckets[b]}
	s.size++
	if t.growable && s.size > maxLoad*len(s.buckets) {
		s.grow()
	}
	return true
}

// Get reads k. The caller must hold k's slot lock.
func (t *Table) Get(k uint64) ([]byte, bool) {
	s, b := t.slotAndBucket(k)
	for e := s.buckets[b]; e != nil; e = e.next {
		if e.key == k {
			return e.val, true
		}
	}
	return nil, false
}

// Delete removes k. The caller must hold k's slot lock.
func (t *Table) Delete(k uint64) bool {
	s, b := t.slotAndBucket(k)
	for p := &s.buckets[b]; *p != nil; p = &(*p).next {
		if (*p).key == k {
			*p = (*p).next
			s.size--
			return true
		}
	}
	return false
}

// Range calls fn for each key in [lo, hi] in ascending order until fn
// returns false. The table is unordered, so Range collects the
// matching pairs from every chain and sorts them — O(n) walk plus
// O(m log m) in the match count m. Callers must hold all slot locks,
// as with Len.
func (t *Table) Range(lo, hi uint64, fn func(k uint64, v []byte) bool) {
	type kv struct {
		k uint64
		v []byte
	}
	var out []kv
	for si := range t.slots {
		s := &t.slots[si]
		for _, e := range s.buckets {
			for ; e != nil; e = e.next {
				if e.key >= lo && e.key <= hi {
					out = append(out, kv{e.key, e.val})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	for _, p := range out {
		if !fn(p.k, p.v) {
			return
		}
	}
}

// Scan visits every entry in chain order — unordered — until fn
// returns false: the raw single walk batched range serving builds on
// (Range is the ordered flavour). Callers must hold all slot locks.
func (t *Table) Scan(fn func(k uint64, v []byte) bool) {
	for si := range t.slots {
		s := &t.slots[si]
		for _, e := range s.buckets {
			for ; e != nil; e = e.next {
				if !fn(e.key, e.val) {
					return
				}
			}
		}
	}
}

// NumBuckets returns slot i's current bucket count (dynamic once
// growth kicks in; tests assert on it).
func (t *Table) NumBuckets(slot int) int { return len(t.slots[slot].buckets) }

// Len sums all slot sizes; callers must hold all slot locks (or accept
// an approximate answer), as with Kyoto's count method.
func (t *Table) Len() int {
	n := 0
	for i := range t.slots {
		n += t.slots[i].size
	}
	return n
}
