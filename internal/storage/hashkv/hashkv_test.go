package hashkv

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestPutGetDelete(t *testing.T) {
	h := New(16, 64)
	if !h.Put(1, []byte("a")) {
		t.Fatal("insert should report true")
	}
	if h.Put(1, []byte("b")) {
		t.Fatal("replace should report false")
	}
	if v, ok := h.Get(1); !ok || string(v) != "b" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if !h.Delete(1) || h.Delete(1) {
		t.Fatal("delete semantics wrong")
	}
	if h.Len() != 0 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestSlotMappingStable(t *testing.T) {
	h := New(16, 64)
	for k := uint64(0); k < 1000; k++ {
		a, b := h.SlotOf(k), h.SlotOf(k)
		if a != b {
			t.Fatal("SlotOf must be deterministic")
		}
		if a < 0 || a >= h.NumSlots() {
			t.Fatalf("slot %d out of range", a)
		}
	}
}

func TestSlotDistribution(t *testing.T) {
	h := New(16, 64)
	counts := make([]int, 16)
	for k := uint64(0); k < 16000; k++ {
		counts[h.SlotOf(k)]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("slot %d badly skewed: %d/16000", i, c)
		}
	}
}

func TestChainCollisions(t *testing.T) {
	// Tiny table: every bucket chains heavily; all keys must survive.
	h := New(2, 2)
	for k := uint64(0); k < 500; k++ {
		h.Put(k, []byte{byte(k)})
	}
	if h.Len() != 500 {
		t.Fatalf("len = %d", h.Len())
	}
	for k := uint64(0); k < 500; k++ {
		v, ok := h.Get(k)
		if !ok || v[0] != byte(k) {
			t.Fatalf("Get(%d) failed", k)
		}
	}
}

func TestVsReferenceMap(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := prng.NewXoshiro256(seed)
		h := New(8, 32)
		ref := map[uint64][]byte{}
		for i := 0; i < int(n%1500)+50; i++ {
			k := prng.Uint64n(rng, 400)
			switch prng.Uint64n(rng, 3) {
			case 0, 1:
				v := []byte{byte(k), byte(i)}
				h.Put(k, v)
				ref[k] = v
			default:
				got := h.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			}
		}
		if h.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := h.Get(k)
			if !ok || string(got) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
