package hashkv

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestPutGetDelete(t *testing.T) {
	h := New(16, 64)
	if !h.Put(1, []byte("a")) {
		t.Fatal("insert should report true")
	}
	if h.Put(1, []byte("b")) {
		t.Fatal("replace should report false")
	}
	if v, ok := h.Get(1); !ok || string(v) != "b" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if !h.Delete(1) || h.Delete(1) {
		t.Fatal("delete semantics wrong")
	}
	if h.Len() != 0 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestSlotMappingStable(t *testing.T) {
	h := New(16, 64)
	for k := uint64(0); k < 1000; k++ {
		a, b := h.SlotOf(k), h.SlotOf(k)
		if a != b {
			t.Fatal("SlotOf must be deterministic")
		}
		if a < 0 || a >= h.NumSlots() {
			t.Fatalf("slot %d out of range", a)
		}
	}
}

func TestSlotDistribution(t *testing.T) {
	h := New(16, 64)
	counts := make([]int, 16)
	for k := uint64(0); k < 16000; k++ {
		counts[h.SlotOf(k)]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("slot %d badly skewed: %d/16000", i, c)
		}
	}
}

func TestChainCollisions(t *testing.T) {
	// Tiny table: every bucket chains heavily; all keys must survive.
	h := New(2, 2)
	for k := uint64(0); k < 500; k++ {
		h.Put(k, []byte{byte(k)})
	}
	if h.Len() != 500 {
		t.Fatalf("len = %d", h.Len())
	}
	for k := uint64(0); k < 500; k++ {
		v, ok := h.Get(k)
		if !ok || v[0] != byte(k) {
			t.Fatalf("Get(%d) failed", k)
		}
	}
}

func TestBucketGrowthBoundsChains(t *testing.T) {
	// One slot, tiny initial bucket array: without growth, chains reach
	// n/4; with load-factor doubling they stay O(maxLoad).
	h := NewGrowing(1, 4)
	const n = 10_000
	for k := uint64(0); k < n; k++ {
		h.Put(k, []byte{byte(k)})
	}
	if h.Len() != n {
		t.Fatalf("len = %d, want %d", h.Len(), n)
	}
	if got := h.NumBuckets(0); got < n/(2*maxLoad) {
		t.Fatalf("buckets stayed at %d for %d keys; growth never triggered", got, n)
	}
	longest := 0
	for _, e := range h.slots[0].buckets {
		l := 0
		for ; e != nil; e = e.next {
			l++
		}
		if l > longest {
			longest = l
		}
	}
	// Average load is <= maxLoad by construction; any chain far past it
	// means the rehash scattered badly.
	if longest > 8*maxLoad {
		t.Fatalf("longest chain %d after growth; want O(%d)", longest, maxLoad)
	}
	// Everything must survive the rehashes, and deletes still work.
	for k := uint64(0); k < n; k++ {
		if v, ok := h.Get(k); !ok || v[0] != byte(k) {
			t.Fatalf("Get(%d) lost after growth", k)
		}
	}
	for k := uint64(0); k < n; k += 2 {
		if !h.Delete(k) {
			t.Fatalf("Delete(%d) missed after growth", k)
		}
	}
	if h.Len() != n/2 {
		t.Fatalf("len = %d after deletes, want %d", h.Len(), n/2)
	}
	// Plain New stays fixed-bucket, preserving the Kyoto-like figure
	// engine's cost profile.
	fixed := New(1, 4)
	for k := uint64(0); k < 100; k++ {
		fixed.Put(k, nil)
	}
	if got := fixed.NumBuckets(0); got != 4 {
		t.Fatalf("fixed table grew to %d buckets; New must never grow", got)
	}
}

func TestRangeOrdered(t *testing.T) {
	h := New(4, 8)
	for k := uint64(0); k < 1000; k += 3 {
		h.Put(k, []byte{byte(k)})
	}
	var got []uint64
	last := uint64(0)
	h.Range(100, 499, func(k uint64, v []byte) bool {
		if len(got) > 0 && k <= last {
			t.Fatalf("Range emitted %d after %d: out of order", k, last)
		}
		if v[0] != byte(k) {
			t.Fatalf("Range key %d carries wrong value", k)
		}
		last = k
		got = append(got, k)
		return true
	})
	want := 0
	for k := uint64(100); k < 500; k++ {
		if k%3 == 0 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Range yielded %d keys, want %d", len(got), want)
	}
	// Early stop.
	n := 0
	h.Range(0, ^uint64(0), func(uint64, []byte) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early-stopped Range visited %d keys, want 1", n)
	}
}

func TestVsReferenceMap(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := prng.NewXoshiro256(seed)
		h := New(8, 32)
		ref := map[uint64][]byte{}
		for i := 0; i < int(n%1500)+50; i++ {
			k := prng.Uint64n(rng, 400)
			switch prng.Uint64n(rng, 3) {
			case 0, 1:
				v := []byte{byte(k), byte(i)}
				h.Put(k, v)
				ref[k] = v
			default:
				got := h.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			}
		}
		if h.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := h.Get(k)
			if !ok || string(got) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
