// Package workload provides the building blocks of the paper's
// micro-benchmarks for the real (non-simulated) engine: contended
// cache-line read-modify-write critical sections, calibrated NOP-style
// delay loops, and the asymmetry shim that makes a symmetric host
// behave like an AMP (little-class workers execute proportionally more
// work per logical unit — see DESIGN.md substitutions).
package workload

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// CacheLine is one padded cache line of shared state.
type CacheLine struct {
	v atomic.Uint64
	_ [120]byte
}

// SharedLines is the contended array the critical sections mutate,
// mirroring the paper's "read-modify-write N shared cache lines".
type SharedLines struct {
	lines []CacheLine
}

// NewSharedLines allocates n shared lines.
func NewSharedLines(n int) *SharedLines {
	return &SharedLines{lines: make([]CacheLine, n)}
}

// Len returns the number of lines.
func (s *SharedLines) Len() int { return len(s.lines) }

// RMW read-modify-writes lines [0, n); callers must hold the protecting
// lock — the operations are atomic only so the race detector stays
// quiet if a test misuses the harness, not for correctness.
func (s *SharedLines) RMW(n int) {
	if n > len(s.lines) {
		n = len(s.lines)
	}
	for i := 0; i < n; i++ {
		s.lines[i].v.Store(s.lines[i].v.Load() + 1)
	}
}

// Sum returns the sum of all lines (used by tests to check no lost
// updates).
func (s *SharedLines) Sum() uint64 {
	var t uint64
	for i := range s.lines {
		t += s.lines[i].v.Load()
	}
	return t
}

// Spin burns approximately n units of calibrated CPU work (the paper's
// NOP loops). The unit is one pass of a small arithmetic loop; use
// Calibrate to convert between units and wall time on this host.
func Spin(n int64) {
	var sink uint64 = 0x9e3779b9
	for i := int64(0); i < n; i++ {
		sink ^= sink << 13
		sink ^= sink >> 7
		sink ^= sink << 17
	}
	spinSink.Store(sink)
}

// spinSink defeats dead-code elimination of Spin.
var spinSink atomic.Uint64

// Calibration reports how long one Spin unit takes on this host.
type Calibration struct {
	NsPerUnit float64
}

// Calibrate measures the cost of one Spin unit. It runs for a few
// milliseconds; harnesses call it once at startup.
func Calibrate() Calibration {
	const probe = 1 << 20
	// Warm up, then measure.
	Spin(probe / 4)
	start := time.Now()
	Spin(probe)
	elapsed := time.Since(start)
	ns := float64(elapsed.Nanoseconds()) / probe
	if ns <= 0 {
		ns = 1
	}
	return Calibration{NsPerUnit: ns}
}

// Units converts a wall-time target into Spin units.
func (c Calibration) Units(d time.Duration) int64 {
	u := int64(float64(d.Nanoseconds()) / c.NsPerUnit)
	if u < 1 {
		u = 1
	}
	return u
}

// AsymmetryShim scales logical work per worker class: the host is
// symmetric, so little-class workers run each critical section
// CSFactor times and each non-critical gap NCSFactor times longer than
// big-class workers. This preserves the quantity the paper's analysis
// depends on — the ratio of critical-section durations across classes.
type AsymmetryShim struct {
	CSFactor  float64 // e.g. 3.75 (the paper's Sysbench gap)
	NCSFactor float64 // e.g. 1.8 (the paper's NOP gap)
}

// DefaultShim returns the M1-calibrated factors used across the
// benchmarks.
func DefaultShim() AsymmetryShim { return AsymmetryShim{CSFactor: 3.75, NCSFactor: 1.8} }

// CSUnits scales critical-section work for the given class.
func (a AsymmetryShim) CSUnits(base int64, c core.Class) int64 {
	if c == core.Big {
		return base
	}
	return int64(float64(base) * a.CSFactor)
}

// NCSUnits scales non-critical work for the given class.
func (a AsymmetryShim) NCSUnits(base int64, c core.Class) int64 {
	if c == core.Big {
		return base
	}
	return int64(float64(base) * a.NCSFactor)
}

// OpKind is a database benchmark operation type.
type OpKind int

const (
	// OpPut inserts or updates a key.
	OpPut OpKind = iota
	// OpGet reads a key.
	OpGet
	// OpInsert is a SQL-style row insert.
	OpInsert
	// OpPointSelect is an indexed point query.
	OpPointSelect
	// OpRangeSelect is a range query with a non-indexed filter.
	OpRangeSelect
	// OpFullScan is a full-table scan.
	OpFullScan
	// OpScan is a KV range scan: an ordered walk of [lo, hi] whose
	// critical-section length depends on how many keys the range
	// holds.
	OpScan
)

// String names the operation.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpInsert:
		return "insert"
	case OpPointSelect:
		return "point-select"
	case OpRangeSelect:
		return "range-select"
	case OpFullScan:
		return "full-scan"
	case OpScan:
		return "scan"
	default:
		return "unknown"
	}
}

// Mix draws operations according to fixed proportions.
type Mix struct {
	kinds []OpKind
}

// NewMix builds a mix from (kind, weight) pairs; weights are relative
// integer proportions.
func NewMix(pairs ...struct {
	Kind   OpKind
	Weight int
}) *Mix {
	m := &Mix{}
	for _, p := range pairs {
		for i := 0; i < p.Weight; i++ {
			m.kinds = append(m.kinds, p.Kind)
		}
	}
	return m
}

// YCSBA returns the 50% put / 50% get mix the paper uses for the
// KV-store benchmarks (referencing YCSB-A).
func YCSBA() *Mix {
	return &Mix{kinds: []OpKind{OpPut, OpGet}}
}

// SQLiteMix returns the paper's SQLite mix: 1/3 insert, 1/3 simple
// (point) select, 1/3 complex (range) select.
func SQLiteMix() *Mix {
	return &Mix{kinds: []OpKind{OpInsert, OpPointSelect, OpRangeSelect}}
}

// Draw picks an operation using the caller's PRNG value.
func (m *Mix) Draw(r uint64) OpKind {
	return m.kinds[int(r%uint64(len(m.kinds)))]
}
