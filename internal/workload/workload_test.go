package workload

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/prng"
)

func TestSharedLinesRMW(t *testing.T) {
	s := NewSharedLines(8)
	for i := 0; i < 10; i++ {
		s.RMW(4)
	}
	if got := s.Sum(); got != 40 {
		t.Fatalf("sum = %d, want 40 (4 lines x 10 rounds)", got)
	}
	s.RMW(100) // clamped to Len
	if got := s.Sum(); got != 48 {
		t.Fatalf("sum = %d, want 48", got)
	}
	if s.Len() != 8 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestCalibrate(t *testing.T) {
	cal := Calibrate()
	if cal.NsPerUnit <= 0 || cal.NsPerUnit > 1000 {
		t.Fatalf("implausible calibration: %v ns/unit", cal.NsPerUnit)
	}
	u := cal.Units(time.Microsecond)
	if u < 1 {
		t.Fatalf("units = %d", u)
	}
	// The calibrated conversion should be within an order of magnitude
	// when re-measured (CI hosts are noisy; this is a sanity bound).
	start := time.Now()
	Spin(u * 1000)
	per := float64(time.Since(start).Nanoseconds()) / float64(u*1000)
	if per <= 0 || per/cal.NsPerUnit > 10 || cal.NsPerUnit/per > 10 {
		t.Fatalf("re-measured %v ns/unit vs calibrated %v", per, cal.NsPerUnit)
	}
}

func TestAsymmetryShim(t *testing.T) {
	shim := DefaultShim()
	if shim.CSUnits(100, core.Big) != 100 {
		t.Fatal("big class must be unscaled")
	}
	if got := shim.CSUnits(100, core.Little); got != 375 {
		t.Fatalf("little CS units = %d, want 375", got)
	}
	if got := shim.NCSUnits(100, core.Little); got != 180 {
		t.Fatalf("little NCS units = %d, want 180", got)
	}
}

func TestMixes(t *testing.T) {
	rng := prng.NewXoshiro256(1)
	counts := map[OpKind]int{}
	m := YCSBA()
	for i := 0; i < 10000; i++ {
		counts[m.Draw(rng.Uint64())]++
	}
	if counts[OpPut] < 4500 || counts[OpGet] < 4500 {
		t.Fatalf("YCSB-A mix skewed: %v", counts)
	}
	sm := SQLiteMix()
	counts = map[OpKind]int{}
	for i := 0; i < 30000; i++ {
		counts[sm.Draw(rng.Uint64())]++
	}
	for _, k := range []OpKind{OpInsert, OpPointSelect, OpRangeSelect} {
		if counts[k] < 9000 {
			t.Fatalf("SQLite mix skewed: %v", counts)
		}
	}
}

func TestNewMixWeights(t *testing.T) {
	type pair = struct {
		Kind   OpKind
		Weight int
	}
	m := NewMix(pair{OpGet, 3}, pair{OpPut, 1})
	rng := prng.NewXoshiro256(9)
	counts := map[OpKind]int{}
	for i := 0; i < 40000; i++ {
		counts[m.Draw(rng.Uint64())]++
	}
	ratio := float64(counts[OpGet]) / float64(counts[OpPut])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weighted mix ratio = %v, want ~3", ratio)
	}
}

func TestOpKindStrings(t *testing.T) {
	for _, k := range []OpKind{OpPut, OpGet, OpInsert, OpPointSelect, OpRangeSelect, OpFullScan} {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("missing name for op %d", int(k))
		}
	}
}
