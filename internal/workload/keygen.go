package workload

import (
	"math"

	"repro/internal/prng"
)

// This file provides key generators for the KV-service benchmarks:
// uniform keys and the YCSB-style bounded zipfian distribution used to
// model skewed key popularity (a few shards hot, the rest cold —
// the regime where per-shard admission control earns its keep).

// KeyGen draws keys in [0, N) using the caller's PRNG.
type KeyGen interface {
	// Draw returns the next key.
	Draw(src prng.Source) uint64
	// N returns the keyspace size.
	N() uint64
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct{ n uint64 }

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n uint64) *Uniform {
	if n == 0 {
		n = 1
	}
	return &Uniform{n: n}
}

// N returns the keyspace size.
func (u *Uniform) N() uint64 { return u.n }

// Draw returns a uniform key.
func (u *Uniform) Draw(src prng.Source) uint64 { return prng.Uint64n(src, u.n) }

// Zipf draws keys from a bounded zipfian distribution over [0, N)
// (rank 0 most popular) using the Gray et al. "quickly generating
// billion-record synthetic databases" method, the same construction as
// YCSB's ZipfianGenerator. Theta in (0, 1); YCSB's default is 0.99.
//
// Construction is O(N) (one zeta sum); Draw is O(1). A Zipf value is
// immutable after construction and safe for concurrent Draw calls,
// each with its own PRNG.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // pow(0.5, theta), hoisted out of Draw
}

// NewZipf builds a zipfian generator over [0, n) with skew theta.
// theta outside (0, 1) panics; use NewUniform for no skew.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		n = 1
	}
	if theta <= 0 || theta >= 1 {
		panic("workload: zipf theta must be in (0, 1)")
	}
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	z := &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// N returns the keyspace size.
func (z *Zipf) N() uint64 { return z.n }

// Draw returns the next zipfian key; rank 0 is the hottest.
func (z *Zipf) Draw(src prng.Source) uint64 {
	u := prng.Float64(src)
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// ReadHeavy returns the KV service's read-dominated mix: 95% get / 5%
// put (YCSB-B's proportions).
func ReadHeavy() *Mix {
	kinds := make([]OpKind, 0, 20)
	for i := 0; i < 19; i++ {
		kinds = append(kinds, OpGet)
	}
	return &Mix{kinds: append(kinds, OpPut)}
}

// WriteHeavy returns the write-dominated mix: 80% put / 20% get.
func WriteHeavy() *Mix {
	return &Mix{kinds: []OpKind{OpPut, OpPut, OpPut, OpPut, OpGet}}
}

// ScanHeavy returns the scan-dominated mix: 95% range scan / 5% put
// (YCSB-E's proportions — short ranges with occasional inserts). Scans
// are the long, data-dependent critical sections that stress a shard
// lock's reorder window.
func ScanHeavy() *Mix {
	kinds := make([]OpKind, 0, 20)
	for i := 0; i < 19; i++ {
		kinds = append(kinds, OpScan)
	}
	return &Mix{kinds: append(kinds, OpPut)}
}
