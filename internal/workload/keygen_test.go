package workload

import (
	"testing"

	"repro/internal/prng"
)

func TestZipfBoundsAndSkew(t *testing.T) {
	const n = 1000
	z := NewZipf(n, 0.99)
	if z.N() != n {
		t.Fatalf("N = %d", z.N())
	}
	rng := prng.NewSplitMix64(1)
	counts := make([]int, n)
	const draws = 200_000
	for i := 0; i < draws; i++ {
		k := z.Draw(rng)
		if k >= n {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	// Zipf(0.99): rank 0 carries a large constant share; the head must
	// dominate and the tail must still be reachable.
	if counts[0] < draws/20 {
		t.Errorf("rank 0 drawn %d of %d; distribution not skewed", counts[0], draws)
	}
	if counts[0] <= counts[n-1] {
		t.Errorf("rank 0 (%d) should dominate rank %d (%d)", counts[0], n-1, counts[n-1])
	}
	tail := 0
	for _, c := range counts[n/2:] {
		tail += c
	}
	if tail == 0 {
		t.Error("upper half of keyspace never drawn; tail unreachable")
	}
	// Top-1% of keys should carry well over half the mass at theta 0.99
	// over 1000 keys (the hot-shard regime the KV benchmarks model).
	head := 0
	for _, c := range counts[:n/100] {
		head += c
	}
	if head < draws/4 {
		t.Errorf("top 1%% of keys carry only %d of %d draws", head, draws)
	}
}

func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(512, 0.9)
	a, b := prng.NewSplitMix64(7), prng.NewSplitMix64(7)
	for i := 0; i < 1000; i++ {
		if z.Draw(a) != z.Draw(b) {
			t.Fatal("same seed must reproduce the same key sequence")
		}
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(64)
	rng := prng.NewSplitMix64(3)
	counts := make([]int, 64)
	for i := 0; i < 64_000; i++ {
		k := u.Draw(rng)
		if k >= 64 {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	for k, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("key %d drawn %d times of 64000; not uniform", k, c)
		}
	}
}

func TestServiceMixProportions(t *testing.T) {
	count := func(m *Mix, k OpKind) int {
		rng := prng.NewSplitMix64(11)
		c := 0
		for i := 0; i < 10_000; i++ {
			if m.Draw(rng.Uint64()) == k {
				c++
			}
		}
		return c
	}
	if gets := count(ReadHeavy(), OpGet); gets < 9_300 || gets > 9_700 {
		t.Errorf("ReadHeavy gets = %d of 10000, want ~9500", gets)
	}
	if puts := count(WriteHeavy(), OpPut); puts < 7_600 || puts > 8_400 {
		t.Errorf("WriteHeavy puts = %d of 10000, want ~8000", puts)
	}
}
