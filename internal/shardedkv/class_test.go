package shardedkv

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
)

// probeStore builds a one-shard store whose lock is wrapped with a
// ClassProbe, returning both. One shard means every op hits the probe.
func probeStore(t *testing.T) (*Store, *locks.ClassProbe) {
	t.Helper()
	var mu sync.Mutex
	var probes []*locks.ClassProbe
	st := New(Config{
		Shards: 1,
		NewLock: func() locks.WLock {
			p := locks.WithClassProbe(locks.FactoryASL()())
			mu.Lock()
			probes = append(probes, p)
			mu.Unlock()
			return p
		},
	})
	mu.Lock()
	defer mu.Unlock()
	if len(probes) != 1 {
		t.Fatalf("expected 1 probe-wrapped lock, got %d", len(probes))
	}
	return st, probes[0]
}

// TestClassedStoreOverridesLockClass asserts the core serving-boundary
// property: an op issued through As(c) is observed at the shard lock
// as class c, whatever the worker's base class.
func TestClassedStoreOverridesLockClass(t *testing.T) {
	st, probe := probeStore(t)
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})

	st.As(core.Little).Put(w, 1, []byte("a"))
	st.As(core.Little).Get(w, 1)
	st.As(core.Little).Delete(w, 1)
	after := probe.Stats()
	if after.LittleAcquires != 3 {
		t.Fatalf("little-class view: little acquires = %d, want 3 (stats %+v)", after.LittleAcquires, after)
	}
	if after.BigAcquires != 0 {
		t.Fatalf("little-class view leaked %d big acquires", after.BigAcquires)
	}

	st.As(core.Big).Put(w, 2, []byte("b"))
	st.As(core.Big).MultiGet(w, []uint64{1, 2})
	end := probe.Stats()
	if got := end.BigAcquires; got != 2 {
		t.Fatalf("big-class view: big acquires = %d, want 2", got)
	}

	// The override must not outlive the op.
	if w.ClassHinted() || w.Class() != core.Big {
		t.Fatalf("hint leaked: hinted=%v class=%v", w.ClassHinted(), w.Class())
	}
}

// TestClassedViewRestoresOuterHint checks nesting: a view call inside
// an already-hinted scope restores the OUTER hint, not the base class.
func TestClassedViewRestoresOuterHint(t *testing.T) {
	st, _ := probeStore(t)
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	w.SetClassHint(core.Little)
	st.As(core.Big).Put(w, 7, []byte("x"))
	if !w.ClassHinted() || w.Class() != core.Little {
		t.Fatalf("outer hint lost: hinted=%v class=%v", w.ClassHinted(), w.Class())
	}
	w.ClearClassHint()
}

// TestClassedAsyncOverride drives the pipeline through classed views
// on both classes and checks results plus hint restoration. The lock
// class of the executing combiner is not asserted here (a concurrent
// combiner of either class may execute any op — that is the point of
// combining); what must hold is correctness and hint hygiene.
func TestClassedAsyncOverride(t *testing.T) {
	st := New(Config{Shards: 2})
	a := NewAsync(st, AsyncConfig{})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})

	bulk := a.As(core.Little)
	inter := a.As(core.Big)
	for k := uint64(0); k < 64; k++ {
		if k%2 == 0 {
			bulk.Put(w, k, []byte{byte(k)})
		} else {
			inter.Put(w, k, []byte{byte(k)})
		}
	}
	bulk.PutAsync(w, 100, []byte("ff"))
	bulk.Flush(w)
	for k := uint64(0); k < 64; k++ {
		v, ok := inter.Get(w, k)
		if !ok || len(v) != 1 || v[0] != byte(k) {
			t.Fatalf("key %d: got %v ok=%v", k, v, ok)
		}
	}
	if v, ok := bulk.Get(w, 100); !ok || string(v) != "ff" {
		t.Fatalf("fire-and-forget write lost: %q ok=%v", v, ok)
	}
	n := 0
	bulk.Range(w, 0, 200, func(uint64, []byte) bool { n++; return true })
	if n != 65 {
		t.Fatalf("range saw %d keys, want 65", n)
	}
	if w.ClassHinted() {
		t.Fatal("hint leaked out of async view ops")
	}
	a.Close(w)
}
