package shardedkv

import (
	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/wal"
)

// This file implements the copy-on-write shard map behind dynamic
// resharding: the store's data-placement function is no longer the
// fixed hash-modulo of a static shard array but an immutable two-level
// directory swapped atomically on every split. The design is the
// lock-fission counterpart of the paper's asymmetry-aware admission:
// where Fissile Locks (Dice & Kogan) split one saturated lock into
// finer-grained ones, the store splits one saturated SHARD — lock and
// engine together — once measured skew shows the zipf head has made it
// a convoy, and "Avoiding Scalability Collapse by Restricting
// Concurrency" supplies the doctrine of reacting to measured
// saturation rather than static configuration.
//
// Layout: the base directory has one group per configured shard (any
// count, preserving the seed store's Mix64(k) % Shards routing when no
// split has happened). Each group holds a power-of-two slice of shard
// pointers indexed by the hash's high bits — an extendible-hashing
// subdirectory. Splitting a shard of local depth d either doubles its
// group's slice (when the shard spans the whole slice) or just rewrites
// the entries pointing at it, installing two children of depth d+1 that
// partition the parent's keys by sub-index bit d.
//
// Concurrency protocol:
//
//   - Readers load the map pointer, locate a shard, and ACQUIRE ITS
//     LOCK before touching the engine. The map they read may be one
//     split stale by then, so every post-acquire path re-checks the
//     shard's forward pointer: a split parent forwards (under its own
//     lock, before release) to its two children, and the reader hops —
//     releasing the stale lock, acquiring the child's — until it lands
//     on a live shard. Forward pointers only ever go nil → non-nil, so
//     the chase is bounded by the number of splits taken.
//   - Splits serialise on the store's split mutex, rendezvous ONLY the
//     affected shard (its lock is held across drain, key partition, map
//     swap, and forward installation), and never touch another shard's
//     lock — the rest of the store serves traffic throughout.
type shardMap struct {
	// epoch counts map generations: one per split. Snapshot-aware
	// callers compare epochs to detect that placement moved under them.
	epoch uint64
	// groups[g] is base slot g's subdirectory, indexed by high hash
	// bits; always a power-of-two length.
	groups [][]*shard
	// shards is the distinct live shard set in ascending id order (ids
	// are creation ordinals, so the seed shards keep their 0..n-1
	// positions and children append after).
	shards []*shard
}

// maxSplitDepth bounds one lineage's split chain. Each level doubles
// the group's subdirectory (2^depth pointers), and subIdx only has 32
// hash bits to route on — but the practical argument bites first: a
// shard still hot after this many fissions is hot on too few keys for
// fission to spread (the single-hot-key limit), so further splits
// would burn budget and memory for nothing.
const maxSplitDepth = 16

// splitRecord forwards a split parent to its children: bit is the
// sub-index bit that routes between them (the parent's depth at split
// time). Installed under the parent's lock; immutable afterwards.
type splitRecord struct {
	bit  uint
	kids [2]*shard
}

// child returns the child owning hash h.
func (f *splitRecord) child(h uint64) *shard {
	return f.kids[(subIdx(h)>>f.bit)&1]
}

// hashOf is the store's placement hash (splitmix64's finalizer, as in
// the seed's ShardOf).
func hashOf(k uint64) uint64 { return prng.Mix64(k) }

// subIdx extracts the subdirectory index bits. The base directory
// consumes the hash modulo the group count (all 64 bits when the count
// is not a power of two, the low bits when it is), so the subdirectory
// walks the high 32 bits instead — independent enough for placement,
// and deterministic, which is all correctness needs.
func subIdx(h uint64) uint64 { return h >> 32 }

// locate returns the shard owning hash h under this map.
func (m *shardMap) locate(h uint64) *shard {
	g := m.groups[h%uint64(len(m.groups))]
	return g[subIdx(h)&uint64(len(g)-1)]
}

// withSplit returns a new map with parent replaced by its two kids:
// the groups slice is copied, the parent's group subdirectory is
// copied (doubling it when the parent spanned the whole slice), and
// the distinct-shard list swaps parent for kids. The receiver is never
// modified — readers keep whatever snapshot they hold.
func (m *shardMap) withSplit(parent *shard, kids [2]*shard) *shardMap {
	nm := &shardMap{epoch: m.epoch + 1}
	nm.groups = make([][]*shard, len(m.groups))
	copy(nm.groups, m.groups)
	g := m.groups[parent.group]
	if len(g) == 1<<parent.depth {
		// The parent's slice spans the whole subdirectory: double it,
		// replicating the existing pattern into the new top bit.
		ng := make([]*shard, 2*len(g))
		for i := range ng {
			ng[i] = g[i&(len(g)-1)]
		}
		g = ng
	} else {
		g = append([]*shard(nil), g...)
	}
	for p := range g {
		if g[p] == parent {
			g[p] = kids[(uint(p)>>parent.depth)&1]
		}
	}
	nm.groups[parent.group] = g
	nm.shards = make([]*shard, 0, len(m.shards)+1)
	for _, sh := range m.shards {
		if sh != parent {
			nm.shards = append(nm.shards, sh)
		}
	}
	// Kids carry the highest ids yet, so appending keeps ascending order.
	nm.shards = append(nm.shards, kids[0], kids[1])
	return nm
}

// newShard builds one shard. Caller holds splitMu (or is in Open).
// With durability on it also opens the shard's log in the live
// generation directory; ids are creation ordinals, so the log
// directory name doubles as the replay position (recovery replays
// shard dirs in ascending id order — parents strictly before their
// split children).
func (s *Store) newShard(id, group int, depth uint) (*shard, error) {
	sh := &shard{id: id, group: group, depth: depth}
	inner := s.newLock()
	if s.bias {
		// Bias sits UNDER the contention counter: a foreign acquire
		// against a live bias must fail the counter's opening try (the
		// absorbed probe) so the skew detector sees the traffic, and
		// electTry's probes must reach the bias fast path directly.
		b := locks.NewBiased(inner, s.biasCfg)
		sh.biased = b
		inner = b
	}
	if s.contend {
		c := locks.WithContention(inner)
		sh.lock, sh.cont = c, c
	} else {
		sh.lock = inner
	}
	sh.eng = s.newEngine(id)
	if s.dur != nil {
		lg, err := wal.Open(shardWalDir(s.dur.genDir, id), s.dur.opts)
		if err != nil {
			return nil, err
		}
		sh.wal = lg
		s.dur.track(sh, lg)
	}
	return sh, nil
}

// acquireLive locks and returns the live shard owning hash h, chasing
// split forwards from the given starting shard (a possibly stale
// snapshot's answer).
func (s *Store) acquireLiveFrom(w *core.Worker, sh *shard, h uint64) *shard {
	for {
		sh.lock.Acquire(w)
		f := sh.forward.Load()
		if f == nil {
			return sh
		}
		sh.lock.Release(w)
		sh = f.child(h)
	}
}

// acquireLive locates h in the current map and locks its live shard.
func (s *Store) acquireLive(w *core.Worker, h uint64) *shard {
	return s.acquireLiveFrom(w, s.smap.Load().locate(h), h)
}

// forEachLive visits every live shard covering the key space exactly
// once, starting from the current snapshot and descending into split
// children when a snapshot shard has moved. fn runs with the shard's
// lock held; the traversal never holds two locks at once.
func (s *Store) forEachLive(w *core.Worker, fn func(sh *shard)) {
	m := s.smap.Load()
	work := append(make([]*shard, 0, len(m.shards)), m.shards...)
	for len(work) > 0 {
		sh := work[len(work)-1]
		work = work[:len(work)-1]
		sh.lock.Acquire(w)
		if f := sh.forward.Load(); f != nil {
			sh.lock.Release(w)
			work = append(work, f.kids[0], f.kids[1])
			continue
		}
		//lint:ignore lockheldcall fn is forEachLive's internal per-shard visitor and must run under the shard lock (that is the helper's contract); the public Range/MultiRange callers pass collect-only closures and emit after release.
		fn(sh)
		sh.lock.Release(w)
	}
}

// split replaces sh with two children partitioning its keys by the
// next hash bit. It serialises with other splits, holds only sh's lock
// for the whole rendezvous, and returns false when sh already moved or
// the shard budget is spent. The sequence under sh's lock matters:
//
//  1. drain sh's async ring (queued ops must execute against the
//     engine they were routed to while it is still authoritative),
//  2. partition the engine's keys into the children via Range,
//  3. attach pipeline rings to the children (before they are
//     reachable, so no submitter ever finds a shard without a ring),
//  4. install the forward pointer,
//  5. drain the ring AGAIN, now through the forward (requests that
//     slipped in between steps 1 and 4 execute against the live
//     children, still in FIFO order, before anything can route to
//     the children's own rings),
//  6. swap the map (new arrivals route straight to the children).
//
// Forward-before-swap is what preserves each worker's program order
// across the split: an op whose submit returned before step 6 has
// either executed (steps 1/5) or sits in a ring the same worker's
// next op also resolves to. A producer that enqueues on sh's ring
// after step 5 (it located sh through a stale map snapshot) observes
// the forward pointer post-publish and drives the retired ring dry
// before its submit returns (see AsyncStore.submit), so nothing is
// ever stranded behind the swap.
func (s *Store) split(w *core.Worker, sh *shard) bool {
	s.splitMu.Lock()
	defer s.splitMu.Unlock()
	m := s.smap.Load()
	if s.maxShards > 0 && len(m.shards)+1 > s.maxShards {
		return false
	}
	if sh.depth >= maxSplitDepth {
		return false
	}
	// Revoke the parent's bias before the rendezvous: Revoke is
	// fsync-class (it waits the epoch/handshake grace period out, so it
	// must never run under a shard lock — here we hold only splitMu),
	// and doing it explicitly covers the one case the rendezvous
	// acquire would not — the splitter itself being the adopted owner,
	// whose fast path would carry the cookie across the handoff. Any
	// bias re-adopted between here and the acquire belongs to another
	// worker, and the foreign blocking acquire below tears that one
	// down through the same handshake. Either way the parent's bias is
	// provably dead before any key moves to a child; children start
	// unbiased and learn their own owner from their own traffic.
	if sh.biased != nil {
		sh.biased.Revoke(w)
	}
	sh.lock.Acquire(w)
	if sh.forward.Load() != nil {
		// Lost a race with an earlier split of the same shard (the
		// caller chose it from a stale snapshot).
		sh.lock.Release(w)
		return false
	}
	var pend []*request
	a := s.async.Load()
	if a != nil {
		a.drainForSplit(w, sh, &pend)
	}
	var kids [2]*shard
	for i := range kids {
		// Children get fresh, empty logs: the rehomed keys below stay
		// covered by the parent's log, which is retained until the next
		// checkpoint's generation flip, and ascending-id replay order
		// applies the parent's history before any child record.
		kid, err := s.newShard(s.nextID, sh.group, sh.depth+1)
		if err != nil {
			// Child log open failed (disk trouble). Abort the split:
			// nothing has been published, the parent stays live. The
			// first child's (empty, unpublished) log closes after
			// Release — Close fsyncs and must not run under the lock.
			sh.lock.Release(w)
			if i == 1 && kids[0].wal != nil {
				_ = kids[0].wal.Close()
			}
			s.completePending(pend)
			return false
		}
		kids[i] = kid
		s.nextID++
	}
	part := func(k uint64, v []byte) bool {
		kids[(subIdx(hashOf(k))>>sh.depth)&1].eng.Put(k, v)
		return true
	}
	// Partitioning needs every pair but no order: engines exposing an
	// unordered Scan (the hash table, whose Range pays a full sort)
	// rehome their keys in one plain walk.
	if us, ok := sh.eng.(unorderedScanner); ok {
		us.Scan(part)
	} else {
		sh.eng.Range(0, ^uint64(0), part)
	}
	if a != nil {
		a.attachShard(kids[0], sh.pipe.Load())
		a.attachShard(kids[1], sh.pipe.Load())
	}
	s.splits.Add(1)
	sh.forward.Store(&splitRecord{bit: sh.depth, kids: kids})
	if a != nil {
		a.drainForSplit(w, sh, &pend)
	}
	// Fold counters after the last drain that can touch sh's engine:
	// forwarded ops bump the children (live in the new map), so sh's
	// totals are final here.
	s.foldRetired(sh)
	// Drop the engine: every key now lives in the children, and no
	// path reads a forwarded shard's engine (exec and forEachLive both
	// require forward == nil), so holding it would retain a full
	// pre-split snapshot per split for as long as the shard stays
	// reachable through the pipeline's ring history.
	sh.eng = nil
	s.smap.Store(m.withSplit(sh, kids))
	sh.lock.Release(w)
	// Sync-wait writes drained during the rendezvous were applied and
	// logged but not yet durable; their futures were held back so the
	// drain never fsyncs under sh's lock. Commit and complete them now.
	s.completePending(pend)
	return true
}
