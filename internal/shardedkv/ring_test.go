package shardedkv

import (
	"runtime"
	"sync"
	"testing"
)

// TestRingFIFO checks single-threaded order, emptiness, and the
// capacity bound.
func TestRingFIFO(t *testing.T) {
	r := newReqRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	if !r.Empty() || r.dequeue() != nil {
		t.Fatal("new ring must be empty")
	}
	reqs := make([]*request, 8)
	for i := range reqs {
		reqs[i] = &request{key: uint64(i)}
		if !r.enqueue(reqs[i]) {
			t.Fatalf("enqueue %d failed below capacity", i)
		}
	}
	if r.enqueue(&request{}) {
		t.Fatal("enqueue succeeded on a full ring")
	}
	for i := range reqs {
		got := r.dequeue()
		if got != reqs[i] {
			t.Fatalf("dequeue %d: got %v, want key %d", i, got, i)
		}
	}
	if !r.Empty() || r.dequeue() != nil {
		t.Fatal("drained ring must be empty")
	}
}

// TestRingWrapLaps drives the cursors through several laps with the
// ring near-full, exercising the sequence-number recycling.
func TestRingWrapLaps(t *testing.T) {
	r := newReqRing(3) // rounds up to 4
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	next := uint64(0)
	want := uint64(0)
	for lap := 0; lap < 10; lap++ {
		for r.enqueue(&request{key: next}) {
			next++
		}
		// Drain half, refill, drain fully: order must survive wrap.
		for i := 0; i < 2; i++ {
			if got := r.dequeue(); got == nil || got.key != want {
				t.Fatalf("lap %d: got %v, want key %d", lap, got, want)
			}
			want++
		}
	}
	for !r.Empty() {
		if got := r.dequeue(); got == nil || got.key != want {
			t.Fatalf("final drain: got %v, want key %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("consumed %d, produced %d", want, next)
	}
}

// TestRingConcurrentProducers runs many producers against a single
// consumer (the MPSC contract): every request must arrive exactly
// once, and each producer's requests must arrive in its enqueue order.
// Run with -race; the seq-number publication protocol is the subject.
func TestRingConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	r := newReqRing(64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				req := &request{key: uint64(p)<<32 | uint64(i)}
				for !r.enqueue(req) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	seen := make([]int, producers)
	total := 0
	for total < producers*perProd {
		req := r.dequeue()
		if req == nil {
			runtime.Gosched()
			continue
		}
		p, i := int(req.key>>32), int(req.key&0xffffffff)
		if i != seen[p] {
			t.Fatalf("producer %d: got seq %d, want %d (per-producer FIFO broken)", p, i, seen[p])
		}
		seen[p]++
		total++
	}
	wg.Wait()
	if !r.Empty() {
		t.Fatal("ring must be empty after consuming everything")
	}
}
