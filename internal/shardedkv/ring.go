package shardedkv

import (
	"sync/atomic"
)

// reqRing is the per-shard request queue of the combining pipeline: a
// bounded lock-free ring in the style of Vyukov's array queue, used
// here as an MPSC — any number of producers enqueue concurrently, and
// dequeue is only ever called by the current combiner, i.e. under the
// shard lock (so consumers are serialised even though the combiner
// identity changes between batches).
//
// Each slot carries a sequence number that encodes its state relative
// to the head/tail cursors: seq == pos means "free for the producer
// claiming position pos", seq == pos+1 means "published, readable by
// the consumer at position pos". Producers claim a position with a CAS
// on tail, write the request, then publish by advancing the slot's
// sequence — so a consumer can never observe a half-written slot (it
// sees the old sequence and treats the ring as momentarily empty).
//
// A full ring reports failure instead of blocking; the pipeline falls
// back to direct execution, which bounds memory and keeps enqueue
// wait-free for producers.
type reqRing struct {
	mask  uint64
	slots []ringSlot
	_     [64]byte
	tail  atomic.Uint64 // next position producers claim
	_     [64]byte
	head  atomic.Uint64 // next position the combiner consumes
	_     [64]byte
}

// ringSlot is one ring entry. req is a plain field: it is published by
// the seq store and read back only after the matching seq load, which
// order the accesses.
type ringSlot struct {
	seq atomic.Uint64
	req *request
}

// newReqRing builds a ring with the given capacity, rounded up to a
// power of two (minimum 2).
func newReqRing(capacity int) *reqRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &reqRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *reqRing) Cap() int { return len(r.slots) }

// enqueue publishes req; false means the ring is full.
func (r *reqRing) enqueue(req *request) bool {
	pos := r.tail.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.req = req
				slot.seq.Store(pos + 1)
				return true
			}
			pos = r.tail.Load()
		case diff < 0:
			// The consumer has not yet freed this slot: the ring is
			// one full lap behind.
			return false
		default:
			// Another producer claimed pos; chase the tail.
			pos = r.tail.Load()
		}
	}
}

// dequeue pops the oldest published request, or nil when the ring is
// empty or its head slot is still being published. Must only be called
// by the current combiner (with the shard lock held).
func (r *reqRing) dequeue() *request {
	pos := r.head.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return nil
	}
	req := slot.req
	slot.req = nil
	r.head.Store(pos + 1)
	// Free the slot for the producer one lap ahead.
	slot.seq.Store(pos + r.mask + 1)
	return req
}

// Empty reports whether the ring holds no claimed positions. A
// producer between its tail CAS and its publish makes Empty false,
// which is the conservative direction for the pipeline's drain loops.
func (r *reqRing) Empty() bool { return r.head.Load() == r.tail.Load() }

// Len approximates the number of in-flight requests.
func (r *reqRing) Len() uint64 {
	t, h := r.tail.Load(), r.head.Load()
	if t < h {
		return 0
	}
	return t - h
}

// headPos and tailPos expose the cursors for Flush's
// "everything enqueued before now" cut-off.
func (r *reqRing) headPos() uint64 { return r.head.Load() }
func (r *reqRing) tailPos() uint64 { return r.tail.Load() }
