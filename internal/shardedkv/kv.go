package shardedkv

import "repro/internal/core"

// KV is the one store surface every front end implements: the plain
// synchronous Store, the combining AsyncStore, and the fixed-class
// views either returns from As. Consumers that do not care which
// concurrency front end (or SLO class binding) they are handed — the
// network server's request loop, the benchmark driver, the model
// checker's harness — program against this and let the caller pick
// the implementation.
//
// Contracts shared by all implementations:
//
//   - Every method takes the calling goroutine's own *core.Worker;
//     workers are not shareable.
//   - Put/MultiPut retain value slices by reference until applied (and,
//     under durability, until logged) — callers must not reuse buffers.
//   - Range/MultiRange results are ascending-key and per-shard
//     consistent; fn never runs under a shard lock.
//   - Writes return an error exactly when their durability promise
//     failed: nil without durability configured, *DegradedError once
//     the owning shard's log has failed (degraded.go). A non-nil
//     error is never a durability ack, whatever the other results
//     say; reads keep serving on a degraded shard.
//   - Flush is the write/durability barrier: every operation submitted
//     before it is applied, and with durability configured, fsynced.
//     Fire-and-forget write failures surface here.
//   - Close makes the handle (and for AsyncStore-backed handles, the
//     pipeline) unusable; it does NOT imply the underlying engines are
//     gone — split views share one Store, and closing one view closes
//     the shared front end exactly once.
//   - Stats snapshots the underlying Store's per-shard counters; views
//     and the async front end report the same store-level numbers.
type KV interface {
	Get(w *core.Worker, k uint64) ([]byte, bool)
	Put(w *core.Worker, k uint64, v []byte) (bool, error)
	Delete(w *core.Worker, k uint64) (bool, error)
	MultiGet(w *core.Worker, keys []uint64) ([][]byte, []bool)
	MultiPut(w *core.Worker, kvs []Pair) (int, error)
	Range(w *core.Worker, lo, hi uint64, fn func(k uint64, v []byte) bool)
	MultiRange(w *core.Worker, reqs []RangeReq) [][]Pair
	Flush(w *core.Worker) error
	Close(w *core.Worker)
	Stats() []ShardStats
}

// The four front ends below are the complete implementation set; the
// asserts keep interface drift a compile error rather than a runtime
// surprise in whichever consumer noticed last.
var (
	_ KV = (*Store)(nil)
	_ KV = (*AsyncStore)(nil)
	_ KV = ClassedStore{}
	_ KV = ClassedAsync{}
)
