package shardedkv

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/wal"
)

// Degraded-mode suite: a shard whose log fails must flip read-only —
// writes fail fast with *DegradedError, no write is falsely acked as
// durable, reads keep serving — and a restart without the fault must
// recover every write acked before the failure.

// degCfg is durCfg with fault injection threaded into every shard log
// through the wal.FS seam.
func degCfg(dir string, reg *fault.Registry) Config {
	cfg := durCfg(dir, nil)
	cfg.Durability.FS = wal.FaultFS{Reg: reg, Base: nil}
	return cfg
}

// TestDegradedShardFailsWritesServesReads drives sync-waited writes
// into a store whose WAL fsync is rigged to fail once; after the first
// failed commit the owning shard must refuse writes with a typed,
// inspectable error while reads — including of keys written before the
// failure — keep answering. A restart without faults must serve every
// key acked before the failure.
func TestDegradedShardFailsWritesServesReads(t *testing.T) {
	dir := t.TempDir()
	reg := fault.New(1)
	// Shards batch appends, so "nth fsync" maps to an unpredictable op;
	// fire on the 3rd fsync so some writes land first.
	reg.MustAdd(fault.Rule{Point: "wal.fsync", Nth: 3, Act: fault.ActError})
	st := New(degCfg(dir, reg))
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})

	var acked []uint64
	var failedShard uint64
	sawFailure := false
	for k := uint64(0); k < 400; k++ {
		_, err := st.Put(w, k, verValue(k, 1))
		if err == nil {
			if !sawFailure {
				acked = append(acked, k)
			} else {
				// Other shards stay writable; only the degraded one
				// refuses. Still a valid ack.
				acked = append(acked, k)
			}
			continue
		}
		var de *DegradedError
		if !errors.As(err, &de) {
			t.Fatalf("Put(%d): error is not *DegradedError: %v", k, err)
		}
		if !IsDegraded(err) {
			t.Fatalf("IsDegraded(%v) = false", err)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("degraded cause lost the injected sentinel: %v", err)
		}
		sawFailure = true
		failedShard = uint64(de.Shard)
	}
	if !sawFailure {
		t.Fatal("no write failed; the injected fsync fault never fired")
	}
	if st.DegradedShards() != 1 {
		t.Fatalf("DegradedShards = %d, want 1 (first cause wins, flip is one-way)", st.DegradedShards())
	}
	t.Logf("shard %d degraded; %d writes acked", failedShard, len(acked))

	// Reads keep serving on the degraded store — every acked key must
	// still answer from memory.
	for _, k := range acked {
		if v, ok := st.Get(w, k); !ok || !bytes.Equal(v, verValue(k, 1)) {
			t.Errorf("degraded-mode Get(%d) = %x,%v; want the acked value", k, v, ok)
		}
	}
	// A write routed to the degraded shard still fails (sticky), and
	// Flush reports the shard too.
	if err := st.Flush(w); !IsDegraded(err) {
		t.Errorf("Flush on a degraded store = %v; want degraded", err)
	}
	st.CrashDrop()

	// Restart without faults: recovery must replay every acked write.
	// (Sync-waited acks were durable before they returned; the failed
	// write was never acked, so the model has no claim on it.)
	st2 := New(durCfg(dir, nil))
	for _, k := range acked {
		if v, ok := st2.Get(w, k); !ok || !bytes.Equal(v, verValue(k, 1)) {
			t.Errorf("post-recovery Get(%d) = %x,%v; lost a sync-acked write", k, v, ok)
		}
	}
	st2.Close(w)
}

// TestDegradedPipelineSyncWaiters runs the failure through the
// combining pipeline: sync-wait futures whose group commit fails must
// complete with the typed degraded error — not hang, not report
// success — and later writes to the shard fail fast.
func TestDegradedPipelineSyncWaiters(t *testing.T) {
	dir := t.TempDir()
	reg := fault.New(1)
	reg.MustAdd(fault.Rule{Point: "wal.fsync", Nth: 2, Act: fault.ActError})
	st := New(degCfg(dir, reg))
	a := NewAsync(st, AsyncConfig{MaxBatch: 8, RingSize: 32})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})

	failures := 0
	for k := uint64(0); k < 300; k++ {
		_, err := a.Put(w, k, verValue(k, 1))
		if err != nil {
			if !IsDegraded(err) {
				t.Fatalf("pipeline Put(%d): want degraded error, got %v", k, err)
			}
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no pipeline write failed; the injected fault never reached a waiter")
	}
	// The pipeline itself must not wedge: reads and a final drain still work.
	if _, ok := a.Get(w, 0); !ok {
		t.Error("pipeline Get(0) lost a written key after degrade")
	}
	if err := a.Flush(w); !IsDegraded(err) {
		t.Errorf("pipeline Flush = %v; want degraded", err)
	}
	a.Close(w)
}

// TestDegradedBulkSurfacesAtFlush: fire-and-forget (bulk-policy)
// writes cannot return their commit error inline; the contract is that
// the failure surfaces at the next Flush.
func TestDegradedBulkSurfacesAtFlush(t *testing.T) {
	dir := t.TempDir()
	reg := fault.New(1)
	reg.MustAdd(fault.Rule{Point: "wal.fsync", Always: true, Act: fault.ActError})
	cfg := degCfg(dir, reg)
	// Bulk policy: appends buffer, fsync happens at Flush.
	cfg.Durability.Interactive = SyncAsync
	cfg.Durability.Bulk = SyncAsync
	st := New(cfg)
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	for k := uint64(0); k < 32; k++ {
		if _, err := st.Put(w, k, verValue(k, 1)); err != nil {
			t.Fatalf("async-policy Put(%d) failed inline: %v", k, err)
		}
	}
	if err := st.Flush(w); !IsDegraded(err) {
		t.Fatalf("Flush = %v; want the deferred fsync failure as a degraded error", err)
	}
	if st.DegradedShards() == 0 {
		t.Fatal("no shard recorded as degraded after a failed Flush")
	}
	st.CrashDrop()
}
