package shardedkv

import (
	"errors"
	"fmt"
)

// Degraded mode: when a shard's log fails (a failed append, group
// commit, or Flush-time sync), the shard flips read-only instead of
// panicking or silently dropping durability. The rules:
//
//   - Reads (Get/MultiGet/Range/MultiRange) keep serving from the
//     in-memory engine.
//   - Writes on the degraded shard fail fast with *DegradedError
//     (errors.Is/As-able; IsDegraded is the convenience check). A
//     write that was already applied but whose group commit failed
//     returns the error too — the caller got no durability ack, so
//     the write is indeterminate, never falsely acked.
//   - Fire-and-forget (async) writes surface at the next Flush, which
//     syncs every log and reports the first failure.
//   - The flip is one-way: recovery is a restart, which replays the
//     durable prefix (wal.Replay truncates at the torn tail).
//
// The WAL's own sticky error (wal.Log poisons itself on the first I/O
// failure) guarantees the engine and the log cannot drift apart: once
// the log refuses appends, the shard refuses applies. Writes append
// to the log BEFORE touching the engine, so the in-memory state is
// always a prefix-consistent replay of the log.

// DegradedError is the typed failure every write on a degraded shard
// returns. Cause is the first I/O error that degraded the shard.
type DegradedError struct {
	Shard int
	Cause error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("shardedkv: shard %d degraded (read-only): %v", e.Shard, e.Cause)
}

func (e *DegradedError) Unwrap() error { return e.Cause }

// IsDegraded reports whether err (anywhere in its chain) is a
// degraded-shard failure.
func IsDegraded(err error) bool {
	var de *DegradedError
	return errors.As(err, &de)
}

// degrade flips sh read-only, first cause wins. Safe with or without
// the shard lock held (the flag is an atomic pointer), and safe to
// call concurrently from commit waiters racing the append path.
func (s *Store) degrade(sh *shard, cause error) *DegradedError {
	de := &DegradedError{Shard: sh.id, Cause: cause}
	if sh.degraded.CompareAndSwap(nil, de) {
		s.degradeEvents.Add(1)
		return de
	}
	return sh.degraded.Load()
}

// DegradedShards counts the shards that have flipped read-only over
// the store's lifetime (split-retired ones included). Zero on a
// healthy store; the soak harness and server stats watch it.
func (s *Store) DegradedShards() uint64 { return s.degradeEvents.Load() }
