package shardedkv_test

// Model-equivalence checks with biased shard locks enabled: the
// adopt/revoke lifecycle must be invisible to every KV return value,
// whatever splits and combiner elections happen underneath. The tests
// live in the external test package to reuse the shared
// internal/kvmodel harness (see durable_model_test.go).

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvmodel"
	"repro/internal/locks"
	"repro/internal/shardedkv"
)

// biasStressCfg is a deliberately hair-trigger tuning: tiny adoption
// windows and a one-percent share threshold make the bias adopt on
// essentially every window and revoke on the next foreign acquire, so
// a multi-worker stress crosses the adopt/revoke transition constantly
// instead of once.
func biasStressCfg() locks.BiasedConfig {
	return locks.BiasedConfig{AdoptWindow: 4, AdoptPercent: 1, RevokeTries: 2}
}

// TestBiasSplitLinearizableVsModel is the sync-store model equivalence
// with biased locks flapping under mixed-class traffic while forced
// splits retire biased parents mid-stress. All four engines; run with
// -race.
func TestBiasSplitLinearizableVsModel(t *testing.T) {
	const workers = 6
	opsPer := 3_000
	if testing.Short() {
		opsPer = 600
	}
	for _, spec := range shardedkv.AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := shardedkv.New(shardedkv.Config{
				Shards:     4,
				NewEngine:  spec.New,
				Reshard:    modelReshard(),
				Bias:       true,
				BiasConfig: biasStressCfg(),
			})
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := core.NewWorker(core.WorkerConfig{Class: core.Big})
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					st.ForceSplit(w, i%64)
					time.Sleep(200 * time.Microsecond)
				}
			}()
			kvmodel.Drive(t, st, nil, workers, opsPer)
			close(stop)
			wg.Wait()
			if st.ReshardStats().Splits == 0 {
				t.Error("stress ran without a single split; the test lost its point")
			}
			bs := st.AggregateBiasStats()
			if bs.Adoptions == 0 || bs.Revocations == 0 {
				t.Errorf("bias never cycled: %+v; the hair-trigger config should flap", bs)
			}
			if live := bs.Adoptions - bs.Revocations; live > uint64(st.NumShards()) {
				t.Errorf("cookie ledger off: %d adoptions vs %d revocations across %d shards",
					bs.Adoptions, bs.Revocations, st.NumShards())
			}
		})
	}
}

// TestAsyncBiasSplitLinearizableVsModel runs the same equivalence
// through the combining pipeline: combiner elections probe biased
// locks, noteTake streaks stage adoption hints, and forced splits
// revoke biased parents before the children take over. Run with -race.
func TestAsyncBiasSplitLinearizableVsModel(t *testing.T) {
	const workers = 6
	opsPer := 3_000
	if testing.Short() {
		opsPer = 600
	}
	for _, spec := range shardedkv.AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := shardedkv.New(shardedkv.Config{
				Shards:     4,
				NewEngine:  spec.New,
				Reshard:    modelReshard(),
				Bias:       true,
				BiasConfig: biasStressCfg(),
			})
			a := shardedkv.NewAsync(st, shardedkv.AsyncConfig{MaxBatch: 8, RingSize: 32})
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := core.NewWorker(core.WorkerConfig{Class: core.Big})
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					st.ForceSplit(w, i%64)
					time.Sleep(300 * time.Microsecond)
				}
			}()
			kvmodel.Drive(t, a, a.PutAsync, workers, opsPer)
			close(stop)
			wg.Wait()
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			if err := a.Flush(w); err != nil {
				t.Fatalf("flush: %v", err)
			}
			if st.ReshardStats().Splits == 0 {
				t.Error("async stress ran without a single split")
			}
			if bs := st.AggregateBiasStats(); bs.Adoptions == 0 || bs.Revocations == 0 {
				t.Errorf("bias never cycled under the pipeline: %+v", bs)
			}
		})
	}
}

// TestBiasAsyncAdoptionAndSplitRevocation drives a single-owner hot
// shard through the pipeline — the scenario bias exists for — and pins
// the full lifecycle: the noteTake streak stages the adoption hint,
// the owner's takes go fast-path, and a forced split of the biased
// shard revokes the bias (via split's explicit Revoke: the splitter
// here IS the owner, the case the rendezvous acquire alone would
// miss) before the children serve. Values stay model-exact throughout.
func TestBiasAsyncAdoptionAndSplitRevocation(t *testing.T) {
	ops := 3_000
	if testing.Short() {
		ops = 800
	}
	st := shardedkv.New(shardedkv.Config{
		Shards:  1,
		Reshard: modelReshard(),
		Bias:    true, // default BiasedConfig: the production tuning
	})
	a := shardedkv.NewAsync(st, shardedkv.AsyncConfig{})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	model := make(map[uint64][]byte)

	put := func(k uint64, ver uint64) {
		v := kvmodel.VerValue(k, ver)
		if _, err := a.Put(w, k, v); err != nil {
			t.Fatalf("put(%d): %v", k, err)
		}
		model[k] = v
	}
	check := func(k uint64) {
		t.Helper()
		v, ok := a.Get(w, k)
		if mv := model[k]; ok != (mv != nil) || !bytes.Equal(v, mv) {
			t.Fatalf("Get(%d) = %x,%v; model %x", k, v, ok, mv)
		}
	}

	for i := 0; i < ops; i++ {
		k := uint64(i % 64)
		put(k, uint64(i))
		check(k)
	}
	bs := st.AggregateBiasStats()
	if bs.Adoptions == 0 {
		t.Fatalf("single-owner hot shard never adopted a bias: %+v", bs)
	}
	if bs.FastAcquires == 0 {
		t.Fatalf("owner never took the fast path after adoption: %+v", bs)
	}

	if !st.ForceSplit(w, 0) {
		t.Fatal("forced split refused")
	}
	after := st.AggregateBiasStats()
	if after.Revocations <= bs.Revocations {
		t.Fatalf("split did not revoke the parent's bias: %+v -> %+v", bs, after)
	}

	// The children serve the same data, and the owner re-earns its bias
	// on the hot child through fresh streaks.
	for k := uint64(0); k < 64; k++ {
		check(k)
	}
	for i := 0; i < ops; i++ {
		k := uint64(i % 8) // hotter: fewer keys, same worker
		put(k, uint64(ops+i))
		check(k)
	}
	final := st.AggregateBiasStats()
	if final.Adoptions <= after.Adoptions {
		t.Errorf("no re-adoption on the split children: %+v -> %+v", after, final)
	}
}

// TestBiasSyncWindowedAdoption pins the standalone windowed-counter
// adoption path (no pipeline, no Contended wrapper): a store built
// with Bias alone adopts a solo writer after one default window, the
// writer's later ops ride the fast path, and one op from a foreign
// worker revokes the bias through the grace-period handshake.
func TestBiasSyncWindowedAdoption(t *testing.T) {
	st := shardedkv.New(shardedkv.Config{Shards: 1, Bias: true})
	owner := core.NewWorker(core.WorkerConfig{Class: core.Big})
	foreign := core.NewWorker(core.WorkerConfig{Class: core.Little})

	// The default adoption window is 64 slow releases; 100 solo ops
	// cross it with margin.
	for i := 0; i < 100; i++ {
		if _, err := st.Put(owner, uint64(i), []byte{byte(i)}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	bs := st.AggregateBiasStats()
	if bs.Adoptions != 1 {
		t.Fatalf("Adoptions = %d, want exactly 1 from the windowed counter", bs.Adoptions)
	}
	if bs.FastAcquires == 0 {
		t.Fatalf("no fast-path acquires after adoption: %+v", bs)
	}

	if v, ok := st.Get(foreign, 7); !ok || !bytes.Equal(v, []byte{7}) {
		t.Fatalf("foreign Get(7) = %x,%v through the revocation", v, ok)
	}
	if bs = st.AggregateBiasStats(); bs.Revocations != 1 {
		t.Fatalf("Revocations = %d, want 1 after the foreign acquire", bs.Revocations)
	}

	// Ex-owner still serves correctly, now via the wrapped lock.
	if v, ok := st.Get(owner, 8); !ok || !bytes.Equal(v, []byte{8}) {
		t.Fatalf("ex-owner Get(8) = %x,%v", v, ok)
	}
}
