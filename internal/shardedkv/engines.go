package shardedkv

import (
	"repro/internal/storage/btree"
	"repro/internal/storage/hashkv"
	"repro/internal/storage/lsm"
	"repro/internal/storage/skiplist"
)

// This file adapts the four storage substrates to the Engine
// interface. Each adapter assumes the shard lock serialises access,
// matching the substrates' own contracts ("the caller must hold the
// slot lock" etc.).

// hashEngine wraps the Kyoto-style chained hash table. The table's own
// slot partitioning is collapsed to a single slot: partitioning is the
// Store's job here, and one shard = one independently locked region.
type hashEngine struct{ t *hashkv.Table }

// NewHashEngine returns a hash-table engine with the given bucket
// count (0 means 256).
func NewHashEngine(buckets int) Engine {
	if buckets <= 0 {
		buckets = 256
	}
	return &hashEngine{t: hashkv.New(1, buckets)}
}

func (e *hashEngine) Get(k uint64) ([]byte, bool) { return e.t.Get(k) }
func (e *hashEngine) Put(k uint64, v []byte) bool { return e.t.Put(k, v) }
func (e *hashEngine) Delete(k uint64) bool        { return e.t.Delete(k) }
func (e *hashEngine) Len() int                    { return e.t.Len() }

// btreeEngine wraps the in-place B+tree.
type btreeEngine struct{ t *btree.Tree }

// NewBTreeEngine returns a B+tree engine.
func NewBTreeEngine() Engine { return &btreeEngine{t: btree.New()} }

func (e *btreeEngine) Get(k uint64) ([]byte, bool) { return e.t.Get(k) }
func (e *btreeEngine) Put(k uint64, v []byte) bool { return e.t.Put(k, v) }
func (e *btreeEngine) Delete(k uint64) bool        { return e.t.Delete(k) }
func (e *btreeEngine) Len() int                    { return e.t.Len() }

// skiplistEngine wraps the LevelDB-style skiplist.
type skiplistEngine struct{ l *skiplist.List }

// NewSkiplistEngine returns a skiplist engine seeded for tower-height
// draws.
func NewSkiplistEngine(seed uint64) Engine {
	return &skiplistEngine{l: skiplist.New(seed)}
}

func (e *skiplistEngine) Get(k uint64) ([]byte, bool) { return e.l.Get(k) }
func (e *skiplistEngine) Put(k uint64, v []byte) bool { return e.l.Put(k, v) }
func (e *skiplistEngine) Delete(k uint64) bool        { return e.l.Delete(k) }
func (e *skiplistEngine) Len() int                    { return e.l.Len() }

// lsmEngine wraps the LSM store. The substrate has no delete and does
// not report insert-vs-replace, so the adapter prefixes every stored
// value with a one-byte tag (liveTag or tombTag) and keeps a live-key
// set for O(1) existence checks on the write path (sparing a full
// memtable+runs lookup per Put/Delete); tombstones stay in the LSM
// (where only compaction could drop them) but are invisible through
// the Engine interface.
type lsmEngine struct {
	s    *lsm.Store
	live map[uint64]struct{}
}

const (
	liveTag = 0x00
	tombTag = 0x01
)

// NewLSMEngine returns an LSM engine. FlushBytes 0 keeps the
// substrate's default memtable size.
func NewLSMEngine(seed uint64, flushBytes int) Engine {
	s := lsm.New(seed)
	s.FlushBytes = flushBytes
	return &lsmEngine{s: s, live: make(map[uint64]struct{})}
}

func (e *lsmEngine) Get(k uint64) ([]byte, bool) {
	v, ok := e.s.Get(k)
	if !ok || len(v) == 0 || v[0] == tombTag {
		return nil, false
	}
	return v[1:], true
}

func (e *lsmEngine) Put(k uint64, v []byte) bool {
	_, existed := e.live[k]
	tagged := make([]byte, 1+len(v))
	tagged[0] = liveTag
	copy(tagged[1:], v)
	e.s.Put(k, tagged)
	e.live[k] = struct{}{}
	return !existed
}

func (e *lsmEngine) Delete(k uint64) bool {
	if _, existed := e.live[k]; !existed {
		return false
	}
	e.s.Put(k, []byte{tombTag})
	delete(e.live, k)
	return true
}

func (e *lsmEngine) Len() int { return len(e.live) }

// EngineSpec names an engine constructor so benchmarks and tests can
// sweep the full engine set.
type EngineSpec struct {
	Name string
	New  func(shard int) Engine
}

// AllEngines returns the four engine constructors, deterministically
// seeded per shard where the substrate takes a seed.
func AllEngines() []EngineSpec {
	return []EngineSpec{
		{Name: "hashkv", New: func(int) Engine { return NewHashEngine(256) }},
		{Name: "btree", New: func(int) Engine { return NewBTreeEngine() }},
		{Name: "skiplist", New: func(i int) Engine { return NewSkiplistEngine(uint64(i)*0x9e3779b97f4a7c15 + 1) }},
		{Name: "lsm", New: func(i int) Engine { return NewLSMEngine(uint64(i)*0xbf58476d1ce4e5b9+1, 1<<16) }},
	}
}
