package shardedkv

import (
	"sort"

	"repro/internal/storage"
	"repro/internal/storage/btree"
	"repro/internal/storage/hashkv"
	"repro/internal/storage/lsm"
	"repro/internal/storage/skiplist"
)

// This file adapts the four storage substrates to the Engine
// interface. Each adapter assumes the shard lock serialises access,
// matching the substrates' own contracts ("the caller must hold the
// slot lock" etc.).

// hashEngine wraps the Kyoto-style chained hash table. The table's own
// slot partitioning is collapsed to a single slot: partitioning is the
// Store's job here, and one shard = one independently locked region.
type hashEngine struct{ t *hashkv.Table }

// NewHashEngine returns a hash-table engine with the given initial
// bucket count (0 means 256). The table grows its bucket array under
// load, so chains stay bounded however many keys the shard absorbs.
func NewHashEngine(buckets int) Engine {
	if buckets <= 0 {
		buckets = 256
	}
	return &hashEngine{t: hashkv.NewGrowing(1, buckets)}
}

func (e *hashEngine) Get(k uint64) ([]byte, bool) { return e.t.Get(k) }
func (e *hashEngine) Put(k uint64, v []byte) bool { return e.t.Put(k, v) }
func (e *hashEngine) Delete(k uint64) bool        { return e.t.Delete(k) }
func (e *hashEngine) Len() int                    { return e.t.Len() }

// Range is ordered even though the table is not: the substrate
// collects matching chain entries and sorts them under the shard lock.
func (e *hashEngine) Range(lo, hi uint64, fn func(k uint64, v []byte) bool) {
	e.t.Range(lo, hi, fn)
}

// Scan walks every pair in chain order — no sort. Split partitioning
// (shardmap.go) uses it so rehoming a hash shard's keys costs one
// walk, not a full collect-and-sort.
func (e *hashEngine) Scan(fn func(k uint64, v []byte) bool) {
	e.t.Scan(fn)
}

// BatchRange serves a whole request batch in ONE chain walk: the
// table's Range costs a full O(n) walk regardless of span, so running
// it per request would multiply that walk (and its sort) by the batch
// size while the shard lock is held. Requests are merged into disjoint
// segments, each walked entry is matched against them by binary
// search, and the single sorted match list is sliced per request.
func (e *hashEngine) BatchRange(reqs []RangeReq, emit func(req int, k uint64, v []byte)) {
	segs := make([]RangeReq, 0, len(reqs))
	for _, r := range reqs {
		if r.Lo <= r.Hi {
			segs = append(segs, r)
		}
	}
	if len(segs) == 0 {
		return
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Lo < segs[j].Lo })
	merged := segs[:1]
	for _, sg := range segs[1:] {
		if last := &merged[len(merged)-1]; sg.Lo <= last.Hi {
			if sg.Hi > last.Hi {
				last.Hi = sg.Hi
			}
		} else {
			merged = append(merged, sg)
		}
	}
	type kv struct {
		k uint64
		v []byte
	}
	var matched []kv
	e.t.Scan(func(k uint64, v []byte) bool {
		// Disjoint segments sorted by Lo are sorted by Hi too.
		i := sort.Search(len(merged), func(i int) bool { return merged[i].Hi >= k })
		if i < len(merged) && merged[i].Lo <= k {
			matched = append(matched, kv{k, v})
		}
		return true
	})
	sort.Slice(matched, func(i, j int) bool { return matched[i].k < matched[j].k })
	for ri, r := range reqs {
		i := sort.Search(len(matched), func(i int) bool { return matched[i].k >= r.Lo })
		for ; i < len(matched) && matched[i].k <= r.Hi; i++ {
			emit(ri, matched[i].k, matched[i].v)
		}
	}
}

// btreeEngine wraps the in-place B+tree.
type btreeEngine struct{ t *btree.Tree }

// NewBTreeEngine returns a B+tree engine.
func NewBTreeEngine() Engine { return &btreeEngine{t: btree.New()} }

func (e *btreeEngine) Get(k uint64) ([]byte, bool) { return e.t.Get(k) }
func (e *btreeEngine) Put(k uint64, v []byte) bool { return e.t.Put(k, v) }
func (e *btreeEngine) Delete(k uint64) bool        { return e.t.Delete(k) }
func (e *btreeEngine) Len() int                    { return e.t.Len() }

func (e *btreeEngine) Range(lo, hi uint64, fn func(k uint64, v []byte) bool) {
	e.t.Range(lo, hi, fn)
}

// skiplistEngine wraps the LevelDB-style skiplist.
type skiplistEngine struct{ l *skiplist.List }

// NewSkiplistEngine returns a skiplist engine seeded for tower-height
// draws.
func NewSkiplistEngine(seed uint64) Engine {
	return &skiplistEngine{l: skiplist.New(seed)}
}

func (e *skiplistEngine) Get(k uint64) ([]byte, bool) { return e.l.Get(k) }
func (e *skiplistEngine) Put(k uint64, v []byte) bool { return e.l.Put(k, v) }
func (e *skiplistEngine) Delete(k uint64) bool        { return e.l.Delete(k) }
func (e *skiplistEngine) Len() int                    { return e.l.Len() }

func (e *skiplistEngine) Range(lo, hi uint64, fn func(k uint64, v []byte) bool) {
	e.l.Range(lo, hi, fn)
}

// lsmEngine wraps the LSM store. The substrate now has first-class
// tombstone deletes, insert-vs-replace reporting, a live-key count,
// and a merged Range iterator, so the adapter is a thin delegation:
// values pass through by reference (no tag-byte copy) and there is no
// shadow key set to keep in sync.
type lsmEngine struct{ s *lsm.Store }

// NewLSMEngine returns an LSM engine. FlushBytes 0 keeps the
// substrate's default memtable size.
func NewLSMEngine(seed uint64, flushBytes int) Engine {
	s := lsm.New(seed)
	s.FlushBytes = flushBytes
	return &lsmEngine{s: s}
}

func (e *lsmEngine) Get(k uint64) ([]byte, bool) { return e.s.Get(k) }
func (e *lsmEngine) Put(k uint64, v []byte) bool { return e.s.Put(k, v) }
func (e *lsmEngine) Delete(k uint64) bool        { return e.s.Delete(k) }
func (e *lsmEngine) Len() int                    { return e.s.Len() }

func (e *lsmEngine) Range(lo, hi uint64, fn func(k uint64, v []byte) bool) {
	e.s.Range(lo, hi, fn)
}

// The LSM is the one substrate with native snapshot machinery, so its
// adapter opts into the storage capability interfaces: checkpoints
// freeze-and-pin a Version under the shard lock and dump it lock-free
// afterwards, recovery bulk-loads checkpoint state as a single run,
// and Compact folds the run stack before a dump. The other adapters
// deliberately implement none of these — they exercise shardedkv's
// full-dump fallback.
var (
	_ storage.Snapshotter = (*lsmEngine)(nil)
	_ storage.Compactor   = (*lsmEngine)(nil)
)

// lsmSnap adapts a pinned lsm.Version to storage.Snapshot.
type lsmSnap struct {
	s *lsm.Store
	v *lsm.Version
}

func (sn lsmSnap) Range(fn func(k uint64, v []byte) bool) { sn.v.Range(fn) }
func (sn lsmSnap) Release()                               { sn.s.Release(sn.v) }

func (e *lsmEngine) Snapshot() storage.Snapshot {
	return lsmSnap{s: e.s, v: e.s.Snapshot()}
}

func (e *lsmEngine) Restore(src func(yield func(k uint64, v []byte) bool)) {
	var keys []uint64
	var vals [][]byte
	src(func(k uint64, v []byte) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	sk := make([]uint64, len(keys))
	sv := make([][]byte, len(vals))
	for i, o := range order {
		sk[i], sv[i] = keys[o], vals[o]
	}
	e.s.Load(sk, sv)
}

func (e *lsmEngine) Compact() { e.s.Compact() }

// EngineSpec names an engine constructor so benchmarks and tests can
// sweep the full engine set.
type EngineSpec struct {
	Name string
	New  func(shard int) Engine
}

// AllEngines returns the four engine constructors, deterministically
// seeded per shard where the substrate takes a seed.
func AllEngines() []EngineSpec {
	return []EngineSpec{
		{Name: "hashkv", New: func(int) Engine { return NewHashEngine(256) }},
		{Name: "btree", New: func(int) Engine { return NewBTreeEngine() }},
		{Name: "skiplist", New: func(i int) Engine { return NewSkiplistEngine(uint64(i)*0x9e3779b97f4a7c15 + 1) }},
		{Name: "lsm", New: func(i int) Engine { return NewLSMEngine(uint64(i)*0xbf58476d1ce4e5b9+1, 1<<16) }},
	}
}
