package shardedkv

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/wal"
)

// This file wires the per-shard write-ahead log (internal/wal) into
// the store. The shape follows the combining pipeline's asymmetry
// argument one layer down: the combiner already batches up to
// MaxBatchEff ops under one lock take, so durability rides the same
// batch — records are appended (buffered, no fsync) while the shard
// lock is held and ONE group-commit fsync runs after release, with
// every waiter of the batch piggybacking on it. The plain Store gets
// the same economics from wal.Commit's leader election: concurrent
// writers' commits collapse into one in-flight sync.
//
// Sync policy is per SLO class, riding the PR 5 class plumbing:
// interactive (big-class) writes wait for the group commit, bulk
// (little-class) writes ack after the buffered append and become
// durable with a later batch, a Flush, or Close. See syncWaitFor.
//
// The on-disk layout is generation-based:
//
//	dir/CURRENT            — "gen-N\n", flipped by atomic rename
//	dir/gen-N/shard-<id>/  — one wal.Log directory per shard
//
// Recovery (openDurable) replays the CURRENT generation's shard
// streams in ascending shard id into the fresh store's engines,
// checkpoints the result into a NEW generation, flips CURRENT, and
// deletes the old one — so a crash at any recovery point restarts
// cleanly from whichever generation CURRENT names. Ascending-id
// replay is correct across splits because ids are creation ordinals:
// a parent's records (everything up to its split) always apply before
// its children's (everything after), preserving per-key last-write-
// wins without fence records.

// SyncPolicy says when a write acks relative to its group commit.
type SyncPolicy uint8

const (
	// SyncDefault resolves to the class default: interactive waits,
	// bulk acks asynchronously.
	SyncDefault SyncPolicy = iota
	// SyncWait completes the write only after its record is fsynced
	// (riding the batch's single group commit).
	SyncWait
	// SyncAsync completes the write after the buffered append; the
	// record becomes durable with a later group commit, Flush, or
	// Close. A crash may lose async-acked writes (never the per-key
	// order of what survives).
	SyncAsync
)

// DurabilityConfig enables the per-shard WAL.
type DurabilityConfig struct {
	// Dir is the log root. If it holds a previous run's generation,
	// New replays it (recovery) before serving.
	Dir string
	// SegmentBytes is the per-shard segment rotation threshold
	// (0 = the wal package default).
	SegmentBytes int64
	// Interactive and Bulk pick each SLO class's sync policy;
	// SyncDefault means interactive=SyncWait, bulk=SyncAsync. The
	// kvserver wire class maps to these end-to-end (class byte →
	// ClassHint → this policy).
	Interactive, Bulk SyncPolicy
	// FS overrides the filesystem every shard log writes through
	// (nil = the real one). wal.FaultFS threads fault injection in:
	// the degraded-mode tests and cmd/kvserver's -faults flag use it.
	FS wal.FS
}

// durability is the store-side state behind Config.Durability.
type durability struct {
	root   string // config Dir
	genDir string // current generation's directory
	opts   wal.Options
	// wait[class] says whether a write of that class blocks on group
	// commit (indexed by core.Class: Big = interactive, Little = bulk).
	wait [2]bool

	// ckptMu serialises checkpoints; it also serialises every
	// Snapshot/Release pair, which is the external synchronisation
	// storage.Snapshot requires for its refcount.
	ckptMu sync.Mutex

	// mu guards logs, the append-only list of every shard log ever
	// opened (split-retired parents included — their files are part of
	// the durable history until the next generation flip). Each entry
	// keeps its owning shard so a Flush-time sync failure can degrade
	// the right shard (degraded.go).
	mu   sync.Mutex
	logs []logRef
}

// logRef pairs a shard with its log in the durability tracking list.
type logRef struct {
	sh *shard
	lg *wal.Log
}

func (d *durability) track(sh *shard, lg *wal.Log) {
	d.mu.Lock()
	d.logs = append(d.logs, logRef{sh: sh, lg: lg})
	d.mu.Unlock()
}

func (d *durability) allLogs() []logRef {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append(make([]logRef, 0, len(d.logs)), d.logs...)
}

// resolveWait maps a class's configured policy to wait-or-not.
func resolveWait(p SyncPolicy, def bool) bool {
	switch p {
	case SyncWait:
		return true
	case SyncAsync:
		return false
	default:
		return def
	}
}

// syncWaitFor reports whether a write by w (under its effective
// class, ClassHint included) must wait for group commit.
func (s *Store) syncWaitFor(w *core.Worker) bool {
	if s.dur == nil {
		return false
	}
	return s.dur.wait[w.Class()]
}

// shardWalDir names shard id's log directory inside gen.
func shardWalDir(gen string, id int) string {
	return filepath.Join(gen, fmt.Sprintf("shard-%d", id))
}

const currentFile = "CURRENT"

// readCurrentGen returns the generation CURRENT names (0 = none).
func readCurrentGen(root string) (int, error) {
	data, err := os.ReadFile(filepath.Join(root, currentFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	name := strings.TrimSpace(string(data))
	n, err := strconv.Atoi(strings.TrimPrefix(name, "gen-"))
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("shardedkv: malformed %s: %q", currentFile, name)
	}
	return n, nil
}

// writeCurrentGen atomically points CURRENT at gen n.
func writeCurrentGen(root string, n int) error {
	tmp := filepath.Join(root, currentFile+".tmp")
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("gen-%d\n", n)), 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		err = f.Sync()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(root, currentFile)); err != nil {
		return err
	}
	return syncDirFS(root)
}

func syncDirFS(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func genDirName(root string, n int) string {
	return filepath.Join(root, fmt.Sprintf("gen-%d", n))
}

// openDurable is called from New after the shard map is built but
// before the store is published: it replays the previous generation
// (if any) into the engines, opens this generation's logs via the
// shards already created, checkpoints the recovered state, and flips
// CURRENT. Single-threaded — nothing else can see the store yet.
func openDurable(s *Store, cfg *DurabilityConfig) error {
	oldGen, err := readCurrentGen(cfg.Dir)
	if err != nil {
		return err
	}
	if oldGen > 0 {
		if rerr := s.replayGeneration(genDirName(cfg.Dir, oldGen)); rerr != nil {
			return rerr
		}
		// Checkpoint the recovered state into the new generation so the
		// old one's files carry no information the new one lacks.
		if cerr := s.checkpointAll(); cerr != nil {
			return cerr
		}
	}
	if werr := writeCurrentGen(cfg.Dir, oldGen+1); werr != nil {
		return werr
	}
	// Every generation but the live one is garbage: older ones are
	// fully checkpointed into this one, newer ones are debris from a
	// crash mid-recovery that never flipped CURRENT.
	ents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return err
	}
	live := fmt.Sprintf("gen-%d", oldGen+1)
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "gen-") && e.Name() != live {
			if err := os.RemoveAll(filepath.Join(cfg.Dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayGeneration streams every shard directory of gen (ascending
// shard id — parents strictly before their split children) into the
// unpublished store's engines. Checkpoint records of one shard hold
// distinct keys, so they are buffered per target shard and bulk-loaded
// through the storage.Snapshotter capability where the engine has it;
// segment records apply one by one in log order.
func (s *Store) replayGeneration(gen string) error {
	ents, err := os.ReadDir(gen)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var ids []int
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		if id, perr := strconv.Atoi(strings.TrimPrefix(e.Name(), "shard-")); perr == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	m := s.smap.Load()
	for _, id := range ids {
		dir := shardWalDir(gen, id)
		// Buffer the checkpoint prefix per target shard for bulk load;
		// everything after the checkpoint applies directly.
		type batch struct {
			keys []uint64
			vals [][]byte
		}
		ckpt := map[*shard]*batch{}
		flush := func() {
			for sh, b := range ckpt {
				if sn, ok := sh.eng.(storage.Snapshotter); ok {
					bb := b
					sn.Restore(func(yield func(k uint64, v []byte) bool) {
						for i, k := range bb.keys {
							if !yield(k, bb.vals[i]) {
								return
							}
						}
					})
				} else {
					for i, k := range b.keys {
						sh.eng.Put(k, b.vals[i])
					}
				}
			}
			clear(ckpt)
		}
		flushed := false
		_, err := wal.Replay(dir, func(kind wal.Kind, key uint64, val []byte, fromCkpt bool) error {
			sh := m.locate(hashOf(key))
			if fromCkpt {
				b := ckpt[sh]
				if b == nil {
					b = &batch{}
					ckpt[sh] = b
				}
				b.keys = append(b.keys, key)
				b.vals = append(b.vals, append([]byte(nil), val...))
				return nil
			}
			if !flushed {
				// The checkpoint prefix is over; land it before any
				// segment record so log order is preserved.
				flushed = true
				flush()
			}
			if kind == wal.KindDelete {
				sh.eng.Delete(key)
			} else {
				sh.eng.Put(key, append([]byte(nil), val...))
			}
			return nil
		})
		if err != nil {
			return err
		}
		flush()
	}
	return nil
}

// checkpointAll rotates and checkpoints every live shard. Pre-publish
// only (no locks); the concurrent path is Store.Checkpoint.
func (s *Store) checkpointAll() error {
	for _, sh := range s.smap.Load().shards {
		if sh.wal == nil {
			continue
		}
		boundary, err := sh.wal.Rotate()
		if err != nil {
			return err
		}
		eng := sh.eng
		if err := sh.wal.WriteCheckpoint(boundary, func(emit func(k uint64, v []byte) error) error {
			var werr error
			eng.Range(0, ^uint64(0), func(k uint64, v []byte) bool {
				werr = emit(k, v)
				return werr == nil
			})
			return werr
		}); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint dumps every live shard's state into its log directory
// and truncates the segments the dump covers. Per shard it holds the
// lock only for the cheap half — segment rotation plus snapshot
// acquisition (storage.Snapshotter) or, for engines without that
// capability, an in-memory full dump — and writes the checkpoint file
// (the fsync half) after release. Checkpoints serialise on an
// internal mutex; concurrent writers are never blocked beyond the
// ordinary shard-lock hold.
func (s *Store) Checkpoint(w *core.Worker) error {
	if s.dur == nil {
		return nil
	}
	s.dur.ckptMu.Lock()
	defer s.dur.ckptMu.Unlock()

	type task struct {
		lg       *wal.Log
		boundary uint64
		snap     storage.Snapshot
		dump     []Pair
	}
	var tasks []task
	var lockErr error
	//lint:ignore lockorder ckptMu is an outer coordination mutex, not an engine-internal lock: it is only ever taken lock-free at the top of Checkpoint (never under a shard lock or splitMu), so ckptMu → shard-lock cannot form a cycle with the canonical splitMu → shard → engine-internal chain.
	s.forEachLive(w, func(sh *shard) {
		if sh.wal == nil || lockErr != nil {
			return
		}
		boundary, err := sh.wal.Rotate()
		if err != nil {
			lockErr = err
			return
		}
		t := task{lg: sh.wal, boundary: boundary}
		if c, ok := sh.eng.(storage.Compactor); ok {
			c.Compact()
		}
		if sn, ok := sh.eng.(storage.Snapshotter); ok {
			t.snap = sn.Snapshot()
		} else {
			sh.eng.Range(0, ^uint64(0), func(k uint64, v []byte) bool {
				t.dump = append(t.dump, Pair{Key: k, Value: v})
				return true
			})
		}
		tasks = append(tasks, t)
	})

	var err error
	for _, t := range tasks {
		werr := t.lg.WriteCheckpoint(t.boundary, func(emit func(k uint64, v []byte) error) error {
			var ierr error
			if t.snap != nil {
				t.snap.Range(func(k uint64, v []byte) bool {
					ierr = emit(k, v)
					return ierr == nil
				})
			} else {
				for _, kv := range t.dump {
					if ierr = emit(kv.Key, kv.Value); ierr != nil {
						break
					}
				}
			}
			return ierr
		})
		if t.snap != nil {
			t.snap.Release()
		}
		if werr != nil && err == nil {
			err = werr
		}
	}
	if lockErr != nil && err == nil {
		err = lockErr
	}
	return err
}

// Flush is the durability barrier of the plain store: it group-
// commits every record appended so far on every shard log (live and
// split-retired). Async-acked (bulk) writes are durable once it
// returns nil. A sync failure degrades the owning shard and is
// reported here — this is where fire-and-forget write errors surface.
// Without Config.Durability it is a no-op.
func (s *Store) Flush(w *core.Worker) error {
	return s.syncLogs()
}

// syncLogs fsyncs every log ever opened, degrading the shard behind
// any log whose sync fails, and returns the first failure. Never
// called under a shard lock.
func (s *Store) syncLogs() error {
	if s.dur == nil {
		return nil
	}
	var first error
	for _, ref := range s.dur.allLogs() {
		if err := ref.lg.Sync(); err != nil {
			de := s.degrade(ref.sh, err)
			if first == nil {
				first = de
			}
		}
	}
	return first
}

// Close stops the reshard loop (if running) and syncs and closes
// every shard log; the store must be quiesced. I/O errors are sticky
// inside the logs and surface through Checkpoint and Flush — Close
// itself is best-effort, matching the KV interface shape.
func (s *Store) Close(w *core.Worker) {
	s.StopReshard()
	if s.dur == nil {
		return
	}
	for _, ref := range s.dur.allLogs() {
		_ = ref.lg.Close()
	}
}

// WalStats aggregates the wal counters across every shard log ever
// opened. Zero when durability is off. Appended/Syncs is the
// ops-per-fsync the group commit exists to raise above 1.
func (s *Store) WalStats() wal.Stats {
	var agg wal.Stats
	if s.dur == nil {
		return agg
	}
	for _, ref := range s.dur.allLogs() {
		agg.Add(ref.lg.Stats())
	}
	return agg
}

// CrashDrop simulates kill -9 for the crash-point recovery tests and
// the chaos harness: every log drops its user-space buffers and closes
// without a final sync. Test hook; see wal.Log.CrashDrop.
func (s *Store) CrashDrop() {
	s.StopReshard()
	if s.dur == nil {
		return
	}
	for _, ref := range s.dur.allLogs() {
		ref.lg.CrashDrop()
	}
}
