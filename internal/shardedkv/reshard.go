package shardedkv

import (
	"time"

	"repro/internal/core"
)

// This file drives dynamic resharding: a background skew detector
// samples the per-shard counters (ops share from ShardStats, lock-wait
// fraction from the locks.Contended wrappers) over fixed observation
// windows and splits a shard that has sustained a configurable skew
// factor — the measured-saturation reaction of "Avoiding Scalability
// Collapse by Restricting Concurrency", applied to shard fission
// instead of admission. The split itself (shardmap.go) rendezvouses
// only the affected shard; the detector never stalls the store.

// ReshardConfig tunes the skew detector. The zero value of any field
// takes the documented default.
type ReshardConfig struct {
	// SkewFactor is the split threshold as a multiple of a fair shard
	// share: a shard is a candidate when its window ops share exceeds
	// SkewFactor / liveShards. Default 3 (a shard serving 3x its fair
	// share is a convoy, not noise).
	SkewFactor float64
	// Window is the observation-window length. Default 100ms.
	Window time.Duration
	// Sustain is how many consecutive windows a shard must qualify
	// before it splits — one-window spikes are noise. Default 2.
	Sustain int
	// MinOps is the minimum window op count (whole store) below which
	// no judgement is made; idle stores never split. Default 1024.
	MinOps uint64
	// MinContention is the minimum lock-wait fraction (contended
	// attempts / attempts, from the locks.Contended wrapper) a
	// candidate must show in the window: a skewed-but-uncontended
	// shard is merely popular, and splitting it buys nothing.
	// Default 0.02.
	MinContention float64
	// MinQueueDepth is the pipeline's saturation signal: a shard also
	// qualifies when its combining ring's recent depth estimate
	// reaches this bound, meaning requests queue faster than the
	// combiner drains. Combiner-election probes deliberately bypass
	// the lock-wait counter (they fail by design whenever combining is
	// healthy), so a pipelined hot shard splits only when its queue
	// outruns the drain bound — fission buys nothing while one
	// combiner absorbs the convoy. Default 32 (the initial adaptive
	// drain bound).
	MinQueueDepth uint64
	// MaxShards bounds the live shard count (splits stop there).
	// Default 8x the initial count.
	MaxShards int
	// Manual disables the background detector: splits happen only via
	// ForceSplit. Tests and benchmarks that want deterministic split
	// points use this.
	Manual bool
}

// withDefaults fills zero fields.
func (c ReshardConfig) withDefaults(initialShards int) ReshardConfig {
	if c.SkewFactor <= 0 {
		c.SkewFactor = 3
	}
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.Sustain <= 0 {
		c.Sustain = 2
	}
	if c.MinOps == 0 {
		c.MinOps = 1024
	}
	if c.MinContention == 0 {
		c.MinContention = 0.02
	}
	if c.MinQueueDepth == 0 {
		c.MinQueueDepth = adaptiveInitBatch
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 8 * initialShards
	}
	return c
}

// ReshardStats snapshots the resharding trajectory.
type ReshardStats struct {
	// Splits counts shards split since creation (each split retires
	// one shard and creates two).
	Splits uint64
	// Events counts reshard decisions: detector windows that split at
	// least one shard, plus one per successful ForceSplit.
	Events uint64
	// Shards is the current live shard count; Epoch the shard-map
	// generation (one per split).
	Shards int
	Epoch  uint64
}

// ReshardStats returns the store's resharding counters (zero-valued
// splits/events on a store without resharding).
func (s *Store) ReshardStats() ReshardStats {
	m := s.smap.Load()
	return ReshardStats{
		Splits: s.splits.Load(),
		Events: s.events.Load(),
		Shards: len(m.shards),
		Epoch:  m.epoch,
	}
}

// ForceSplit splits the shard currently owning k, regardless of skew.
// Reports whether a split happened (false when the shard budget is
// spent or the shard moved concurrently). Exposed for tests, the
// kvbench smoke path, and operators that know a hotspot in advance.
func (s *Store) ForceSplit(w *core.Worker, k uint64) bool {
	sh := s.smap.Load().locate(hashOf(k))
	if !s.split(w, sh) {
		return false
	}
	s.events.Add(1)
	return true
}

// reshardDetector is the background skew watcher.
type reshardDetector struct {
	cfg  ReshardConfig
	stop chan struct{}
	done chan struct{}
}

// startReshard records the reshard configuration and, unless Manual,
// spawns the detector goroutine. Called once from New.
func (s *Store) startReshard(cfg ReshardConfig) {
	cfg = cfg.withDefaults(s.NumShards())
	s.maxShards = cfg.MaxShards
	d := &reshardDetector{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	s.detector = d
	if cfg.Manual {
		close(d.done)
		return
	}
	go s.reshardLoop(d)
}

// StopReshard stops the background detector and waits for it to exit.
// Idempotent; a no-op on stores without resharding. The store remains
// fully usable (ForceSplit included) afterwards.
func (s *Store) StopReshard() {
	d := s.detector
	if d == nil || d.cfg.Manual {
		return
	}
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	<-d.done
}

// shardWindow is one shard's counter snapshot for windowed deltas.
type shardWindow struct {
	ops, attempts, contended uint64
	sustained                int
}

// reshardLoop is the detector body: every Window it computes each live
// shard's op share and lock-wait fraction over the window (deltas
// against the previous tick) and splits any shard that qualified for
// Sustain consecutive windows. The loop owns its worker; splits
// rendezvous only the shard being split.
func (s *Store) reshardLoop(d *reshardDetector) {
	defer close(d.done)
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	prev := make(map[int]*shardWindow)
	ticker := time.NewTicker(d.cfg.Window)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
		}
		m := s.smap.Load()
		cur := make(map[int]*shardWindow, len(m.shards))
		var total uint64
		type candidate struct {
			sh    *shard
			share float64
		}
		var cands []candidate
		for _, sh := range m.shards {
			st := sh.stats()
			win := &shardWindow{ops: st.Ops() + st.Scans, attempts: st.LockAttempts, contended: st.LockContended}
			cur[sh.id] = win
			p := prev[sh.id]
			if p == nil {
				// First window for this shard (new child or first
				// tick): its counters-since-birth are a valid window
				// delta (it was born at zero), so they stay in the
				// denominator — excluding them would inflate every
				// other shard's share right after a split — but the
				// shard itself is not judged until next tick.
				total += win.ops
				continue
			}
			win.sustained = p.sustained
			opsD := win.ops - p.ops
			total += opsD
			attD := win.attempts - p.attempts
			conD := win.contended - p.contended
			contFrac := 0.0
			if attD > 0 {
				contFrac = float64(conD) / float64(attD)
			}
			queued := false
			if q := sh.pipe.Load(); q != nil {
				hw := q.hwRecent.Load()
				queued = hw >= d.cfg.MinQueueDepth
				// Age the estimate here too: drains decay it, but a ring
				// gone fully idle (traffic moved to the sync path) never
				// drains again, and a frozen burst-era high-water must
				// not read as permanent saturation. Real pressure
				// re-raises it at every enqueue.
				q.hwRecent.Store(hw * 3 / 4)
			}
			if contFrac >= d.cfg.MinContention || queued {
				cands = append(cands, candidate{sh: sh, share: float64(opsD)})
			} else {
				win.sustained = 0
			}
		}
		if total < d.cfg.MinOps {
			// Too idle to judge; windows don't accumulate across lulls.
			for _, win := range cur {
				win.sustained = 0
			}
			prev = cur
			continue
		}
		// Clamp the share threshold below 1: on a small store (live
		// shards <= SkewFactor) the raw ratio is unreachable — a share
		// tops out at 1.0 — and the detector would be silently inert
		// exactly where a convoy hurts most. 0.9 still demands a
		// near-total monopoly before a two-shard store splits.
		threshold := min(d.cfg.SkewFactor/float64(len(m.shards)), 0.9)
		split := false
		for _, c := range cands {
			win := cur[c.sh.id]
			if c.share/float64(total) <= threshold {
				win.sustained = 0
				continue
			}
			win.sustained++
			if win.sustained < d.cfg.Sustain {
				continue
			}
			win.sustained = 0
			if s.split(w, c.sh) {
				split = true
			}
		}
		if split {
			s.events.Add(1)
		}
		prev = cur
	}
}
