package shardedkv_test

// The crash-vs-model headliners live in the external test package:
// they drive the store purely through its public KV surface via the
// shared internal/kvmodel harness (which imports shardedkv, so the
// internal test package cannot use it without an import cycle).

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvmodel"
	"repro/internal/shardedkv"
)

// modelReshard mirrors the internal tests' manualReshard: detector
// off, split points deterministic, budget bounded.
func modelReshard() *shardedkv.ReshardConfig {
	return &shardedkv.ReshardConfig{Manual: true, MaxShards: 48}
}

// modelDurCfg builds a store config over dir with every write
// sync-waited, so the model is exact after a crash with no Flush:
// each op was durable before it returned.
func modelDurCfg(dir string, eng func(int) shardedkv.Engine) shardedkv.Config {
	return shardedkv.Config{
		Shards:    4,
		NewEngine: eng,
		Reshard:   modelReshard(),
		Durability: &shardedkv.DurabilityConfig{
			Dir:         dir,
			Interactive: shardedkv.SyncWait,
			Bulk:        shardedkv.SyncWait,
		},
	}
}

// TestDurableRecoveryVsModel is the headline crash check on all four
// engines: the shared KV-model harness hammers a durable store while a
// splitter keeps forcing splits (so children's fresh logs and retired
// parents' logs both carry live history), then the store either closes
// cleanly or is killed; the reopened store must match the merged model
// key for key. Run with -race.
func TestDurableRecoveryVsModel(t *testing.T) {
	const workers = 4
	opsPer := 1_500
	if testing.Short() {
		opsPer = 300
	}
	for _, spec := range shardedkv.AllEngines() {
		for _, kill := range []string{"close", "crash"} {
			t.Run(spec.Name+"/"+kill, func(t *testing.T) {
				dir := t.TempDir()
				st := shardedkv.New(modelDurCfg(dir, spec.New))
				stop := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := core.NewWorker(core.WorkerConfig{Class: core.Big})
					for i := uint64(0); ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						st.ForceSplit(w, i%64)
						time.Sleep(300 * time.Microsecond)
					}
				}()
				final := kvmodel.Drive(t, st, nil, workers, opsPer)
				close(stop)
				wg.Wait()
				if st.ReshardStats().Splits == 0 {
					t.Error("no split fired; the split-vs-WAL interaction went untested")
				}
				w := core.NewWorker(core.WorkerConfig{Class: core.Big})
				if kill == "close" {
					st.Close(w)
				} else {
					// Every op sync-waited, so nothing in the model is
					// allowed to be lost to the kill.
					st.CrashDrop()
				}
				st2 := shardedkv.New(modelDurCfg(dir, spec.New))
				kvmodel.Verify(t, st2, workers, final)
				st2.Close(w)
			})
		}
	}
}

// TestDurableAsyncPipelineRecovery runs the same model equivalence
// through the combining AsyncStore — fire-and-forget writes included —
// with splits firing mid-stress, then kills the store after a Flush
// (the pipeline write barrier, which also group-commits every log) and
// verifies the replayed store against the model. This is the
// batch-append-one-fsync path of the tentpole under crash. Run with
// -race.
func TestDurableAsyncPipelineRecovery(t *testing.T) {
	const workers = 4
	opsPer := 1_000
	if testing.Short() {
		opsPer = 250
	}
	for _, spec := range shardedkv.AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := modelDurCfg(dir, spec.New)
			// Default class policies: bulk writes ack async and rely on
			// the final Flush for durability — the crash must not lose
			// them once Flush returned.
			cfg.Durability.Interactive = shardedkv.SyncDefault
			cfg.Durability.Bulk = shardedkv.SyncDefault
			st := shardedkv.New(cfg)
			a := shardedkv.NewAsync(st, shardedkv.AsyncConfig{MaxBatch: 8, RingSize: 32})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := core.NewWorker(core.WorkerConfig{Class: core.Big})
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					st.ForceSplit(w, i%64)
					time.Sleep(400 * time.Microsecond)
				}
			}()
			final := kvmodel.Drive(t, a, a.PutAsync, workers, opsPer)
			close(stop)
			wg.Wait()
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			if err := a.Flush(w); err != nil {
				t.Fatalf("flush: %v", err)
			}
			ws := st.WalStats()
			if ws.Appended == 0 || ws.Syncs == 0 {
				t.Fatalf("pipeline ran without logging: %+v", ws)
			}
			t.Logf("wal: %d records / %d fsyncs = %.2f ops/fsync",
				ws.Appended, ws.Syncs, ws.OpsPerFsync())
			st.CrashDrop()
			st2 := shardedkv.New(modelDurCfg(dir, spec.New))
			kvmodel.Verify(t, st2, workers, final)
			st2.Close(w)
		})
	}
}
