package shardedkv

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/prng"
)

// stressValue encodes key ^ salt so any reader can validate that a
// value it observes belongs to the key it asked for (detects cross-key
// and cross-shard corruption).
func stressValue(k uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], k^0xa5a5a5a5a5a5a5a5)
	return b[:]
}

func checkStressValue(t *testing.T, k uint64, v []byte) {
	t.Helper()
	if len(v) != 8 || binary.LittleEndian.Uint64(v)^0xa5a5a5a5a5a5a5a5 != k {
		t.Errorf("key %d: corrupt value %x", k, v)
	}
}

// runStress hammers one store with a mixed big/little worker pool and
// verifies (a) every observed value matches its key, and (b) the
// insert/delete accounting reconciles exactly with the final Len —
// shard locks serialise the engine mutations, so the booleans returned
// by Put/Delete/MultiPut are exact.
func runStress(t *testing.T, st *Store, workers, opsPer int) {
	var inserts, deletes atomic.Int64
	var wg sync.WaitGroup
	const keyspace = 512
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			class := core.Big
			if wi%2 == 1 {
				class = core.Little
			}
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewSplitMix64(uint64(wi)*0x9e3779b9 + 7)
			for op := 0; op < opsPer; op++ {
				k := rng.Uint64() % keyspace
				switch rng.Uint64() % 6 {
				case 0, 1:
					if ins, _ := st.Put(w, k, stressValue(k)); ins {
						inserts.Add(1)
					}
				case 2:
					if v, ok := st.Get(w, k); ok {
						checkStressValue(t, k, v)
					}
				case 3:
					if del, _ := st.Delete(w, k); del {
						deletes.Add(1)
					}
				case 4:
					// Range scan under churn: keys must arrive in strict
					// ascending order and every value must match its key.
					lo := k
					hi := lo + rng.Uint64()%64
					prev, first := uint64(0), true
					st.Range(w, lo, hi, func(sk uint64, sv []byte) bool {
						if sk < lo || sk > hi {
							t.Errorf("Range[%d,%d] emitted out-of-range key %d", lo, hi, sk)
						}
						if !first && sk <= prev {
							t.Errorf("Range[%d,%d] emitted %d after %d", lo, hi, sk, prev)
						}
						prev, first = sk, false
						checkStressValue(t, sk, sv)
						return true
					})
				default:
					n := int(rng.Uint64()%6) + 2
					if rng.Uint64()&1 == 0 {
						kvs := make([]Pair, n)
						for j := range kvs {
							bk := rng.Uint64() % keyspace
							kvs[j] = Pair{Key: bk, Value: stressValue(bk)}
						}
						n, _ := st.MultiPut(w, kvs)
						inserts.Add(int64(n))
					} else {
						keys := make([]uint64, n)
						for j := range keys {
							keys[j] = rng.Uint64() % keyspace
						}
						vals, oks := st.MultiGet(w, keys)
						for j := range keys {
							if oks[j] {
								checkStressValue(t, keys[j], vals[j])
							}
						}
					}
				}
			}
		}(wi)
	}
	wg.Wait()
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	wantLen := int(inserts.Load() - deletes.Load())
	if got := st.Len(w); got != wantLen {
		t.Fatalf("final Len %d != inserts %d - deletes %d", got, inserts.Load(), deletes.Load())
	}
	live := 0
	for k := uint64(0); k < keyspace; k++ {
		if v, ok := st.Get(w, k); ok {
			checkStressValue(t, k, v)
			live++
		}
	}
	if live != wantLen {
		t.Fatalf("live scan found %d keys, accounting says %d", live, wantLen)
	}
}

// TestConcurrentStress runs the stress mix on every engine under the
// default ASL shard locks. Run with -race; that is the point.
func TestConcurrentStress(t *testing.T) {
	workers := 8
	opsPer := 4_000
	if testing.Short() {
		opsPer = 800
	}
	for _, spec := range AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := New(Config{Shards: 8, NewEngine: spec.New})
			runStress(t, st, workers, opsPer)
		})
	}
}

// TestConcurrentScanStress dedicates half the pool to long scans
// (Range and MultiRange over wide windows) while the other half churns
// point writes — the data-dependent-length critical sections the
// reorder window targets. Run with -race; every observed pair must be
// internally consistent even though the scan is only per-shard atomic.
func TestConcurrentScanStress(t *testing.T) {
	const keyspace = 2048
	opsPer := 2_000
	if testing.Short() {
		opsPer = 400
	}
	for _, spec := range AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := New(Config{Shards: 8, NewEngine: spec.New})
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			for k := uint64(0); k < keyspace; k += 2 {
				st.Put(w, k, stressValue(k))
			}
			var wg sync.WaitGroup
			for wi := 0; wi < 8; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					class := core.Big
					if wi%2 == 1 {
						class = core.Little
					}
					w := core.NewWorker(core.WorkerConfig{Class: class})
					rng := prng.NewSplitMix64(uint64(wi)*0xdeadbeef + 11)
					scanner := wi%2 == 0
					for op := 0; op < opsPer; op++ {
						k := rng.Uint64() % keyspace
						if !scanner {
							if rng.Uint64()&1 == 0 {
								st.Put(w, k, stressValue(k))
							} else {
								st.Delete(w, k)
							}
							continue
						}
						if rng.Uint64()&1 == 0 {
							prev, first := uint64(0), true
							st.Range(w, k, k+256, func(sk uint64, sv []byte) bool {
								if !first && sk <= prev {
									t.Errorf("Range emitted %d after %d", sk, prev)
								}
								prev, first = sk, false
								checkStressValue(t, sk, sv)
								return true
							})
						} else {
							for _, res := range st.MultiRange(w, []RangeReq{
								{Lo: k, Hi: k + 64},
								{Lo: k + 512, Hi: k + 640},
							}) {
								for i, kv := range res {
									if i > 0 && kv.Key <= res[i-1].Key {
										t.Errorf("MultiRange emitted %d after %d", kv.Key, res[i-1].Key)
									}
									checkStressValue(t, kv.Key, kv.Value)
								}
							}
						}
					}
				}(wi)
			}
			wg.Wait()
		})
	}
}

// TestConcurrentStressAcrossLocks repeats the stress run on the
// hash engine under each lock family the benchmarks compare, so the
// layer is race-clean regardless of the injected lock.
func TestConcurrentStressAcrossLocks(t *testing.T) {
	opsPer := 3_000
	if testing.Short() {
		opsPer = 600
	}
	for _, lf := range []struct {
		name string
		f    locks.Factory
	}{
		{"asl", locks.FactoryASL()},
		{"mcs", locks.FactoryMCS()},
		{"pthread", locks.FactoryPthread()},
		{"sync-mutex", locks.FactorySyncMutex()},
	} {
		t.Run(lf.name, func(t *testing.T) {
			st := New(Config{Shards: 8, NewLock: lf.f})
			runStress(t, st, 8, opsPer)
		})
	}
}
