package shardedkv

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/prng"
	"repro/internal/workload"
)

// manualReshard returns a reshard config with the detector off: splits
// fire only when the test forces them, so split points are
// deterministic. The budget keeps stress runs from fissioning into
// hundreds of micro-shards (every post-split op pays a per-shard visit
// on scans, so an unbounded budget turns the scan mix quadratic).
func manualReshard() *ReshardConfig {
	return &ReshardConfig{Manual: true, MaxShards: 48}
}

// TestForceSplitPreservesData splits shards repeatedly on every engine
// — including re-splitting children, which doubles the group
// subdirectory — and checks that no key is lost, Len reconciles,
// ordered Range still covers everything, and the map epoch advances
// once per split.
func TestForceSplitPreservesData(t *testing.T) {
	const keys = 2048
	for _, spec := range AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := New(Config{Shards: 4, NewEngine: spec.New, Reshard: manualReshard()})
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			for k := uint64(0); k < keys; k += 2 {
				st.Put(w, k, stressValue(k))
			}
			if got := st.NumShards(); got != 4 {
				t.Fatalf("seed NumShards = %d, want 4", got)
			}
			// Split the shard owning key 0, then the shards owning a few
			// more keys; re-splitting the same keys' homes forces
			// children (and directory doublings) deeper.
			splitKeys := []uint64{0, 0, 0, 2, 4, 8, 16}
			for i, sk := range splitKeys {
				epoch := st.MapEpoch()
				if !st.ForceSplit(w, sk) {
					t.Fatalf("ForceSplit %d (key %d) refused", i, sk)
				}
				if got := st.MapEpoch(); got != epoch+1 {
					t.Fatalf("split %d: epoch %d -> %d, want +1", i, epoch, got)
				}
			}
			rs := st.ReshardStats()
			if rs.Splits != uint64(len(splitKeys)) || rs.Events != uint64(len(splitKeys)) {
				t.Fatalf("ReshardStats = %+v, want %d splits/events", rs, len(splitKeys))
			}
			if rs.Shards != 4+len(splitKeys) {
				t.Fatalf("NumShards = %d after %d splits of 4, want %d", rs.Shards, len(splitKeys), 4+len(splitKeys))
			}
			// Every key still answers, through point reads and the scan.
			for k := uint64(0); k < keys; k++ {
				v, ok := st.Get(w, k)
				if want := k%2 == 0; ok != want {
					t.Fatalf("Get(%d) ok=%v, want %v", k, ok, want)
				} else if ok {
					checkStressValue(t, k, v)
				}
			}
			if got := st.Len(w); got != keys/2 {
				t.Fatalf("Len = %d, want %d", got, keys/2)
			}
			seen, prev, first := 0, uint64(0), true
			st.Range(w, 0, keys-1, func(k uint64, v []byte) bool {
				if !first && k <= prev {
					t.Fatalf("Range emitted %d after %d", k, prev)
				}
				prev, first = k, false
				checkStressValue(t, k, v)
				seen++
				return true
			})
			if seen != keys/2 {
				t.Fatalf("Range visited %d keys, want %d", seen, keys/2)
			}
		})
	}
}

// TestSplitRefusalAtMaxShards pins the shard budget: splits stop at
// MaxShards and report refusal.
func TestSplitRefusalAtMaxShards(t *testing.T) {
	st := New(Config{Shards: 2, Reshard: &ReshardConfig{Manual: true, MaxShards: 4}})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	st.Put(w, 1, stressValue(1))
	splits := 0
	for i := 0; i < 10; i++ {
		if st.ForceSplit(w, uint64(i)) {
			splits++
		}
	}
	if got := st.NumShards(); got > 4 {
		t.Fatalf("NumShards = %d, budget was 4", got)
	}
	if splits != 2 {
		t.Fatalf("%d splits succeeded under a 2->4 budget, want 2", splits)
	}
}

// TestSplitDepthCap pins the lineage bound: one key's home shard can
// split at most maxSplitDepth times, however large the shard budget —
// past that, the heat is too concentrated for fission to spread (and
// the subdirectory doubling would outgrow the hash bits).
func TestSplitDepthCap(t *testing.T) {
	st := New(Config{Shards: 1, Reshard: &ReshardConfig{Manual: true, MaxShards: 1 << 20}})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	st.Put(w, 42, stressValue(42))
	splits := 0
	for st.ForceSplit(w, 42) {
		splits++
		if splits > 2*maxSplitDepth {
			t.Fatal("lineage splits did not stop")
		}
	}
	if splits != maxSplitDepth {
		t.Fatalf("key 42's lineage split %d times, want %d", splits, maxSplitDepth)
	}
	if v, ok := st.Get(w, 42); !ok {
		t.Fatal("key lost across depth-capped splits")
	} else {
		checkStressValue(t, 42, v)
	}
}

// TestAggregateStatsSurviveSplits checks that a split folds the
// retired shard's counters into the aggregate instead of losing them.
func TestAggregateStatsSurviveSplits(t *testing.T) {
	st := New(Config{Shards: 2, Reshard: manualReshard()})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	for k := uint64(0); k < 300; k++ {
		st.Put(w, k, stressValue(k))
	}
	for k := uint64(0); k < 100; k++ {
		st.Get(w, k)
	}
	before := st.AggregateStats()
	if before.Puts != 300 || before.Gets != 100 {
		t.Fatalf("pre-split aggregate = %+v", before)
	}
	for _, sk := range []uint64{0, 1, 2, 3} {
		st.ForceSplit(w, sk)
	}
	after := st.AggregateStats()
	if after.Puts != 300 || after.Gets != 100 {
		t.Fatalf("post-split aggregate lost history: %+v", after)
	}
	if after.LockAttempts == 0 {
		t.Fatal("reshard-enabled store must track lock attempts")
	}
}

// TestTrackContentionStats checks the contention plumbing without
// resharding: TrackContention populates the ShardStats lock counters.
func TestTrackContentionStats(t *testing.T) {
	st := New(Config{Shards: 2, TrackContention: true})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	for k := uint64(0); k < 64; k++ {
		st.Put(w, k, stressValue(k))
	}
	agg := st.AggregateStats()
	if agg.LockAttempts < 64 {
		t.Fatalf("LockAttempts = %d, want >= 64", agg.LockAttempts)
	}
	if agg.LockContended > agg.LockAttempts {
		t.Fatalf("LockContended %d > LockAttempts %d", agg.LockContended, agg.LockAttempts)
	}
	// Without tracking, the counters stay zero.
	st2 := New(Config{Shards: 2})
	st2.Put(w, 1, stressValue(1))
	if s := st2.AggregateStats(); s.LockAttempts != 0 {
		t.Fatalf("untracked store reports %d lock attempts", s.LockAttempts)
	}
}

// TestAsyncSplitNoLostOps is the ring-migration drain check: workers
// hammer shared keys through the pipeline (including fire-and-forget
// writes) with exact insert/delete accounting while splits force rings
// to migrate; after a Flush, the store's Len must reconcile exactly and
// every combining counter must account for every op. Run with -race.
func TestAsyncSplitNoLostOps(t *testing.T) {
	const workers = 6
	opsPer := 3_000
	if testing.Short() {
		opsPer = 600
	}
	st := New(Config{Shards: 2, Reshard: manualReshard()})
	a := NewAsync(st, AsyncConfig{RingSize: 64}) // adaptive batching on
	var inserts, deletes, ffPuts atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := core.NewWorker(core.WorkerConfig{Class: core.Big})
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st.ForceSplit(w, i)
			time.Sleep(250 * time.Microsecond)
		}
	}()
	const keyspace = 512
	var work sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		work.Add(1)
		go func(wi int) {
			defer work.Done()
			class := core.Big
			if wi%2 == 1 {
				class = core.Little
			}
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewSplitMix64(uint64(wi)*77 + 13)
			for op := 0; op < opsPer; op++ {
				k := rng.Uint64() % keyspace
				switch rng.Uint64() % 6 {
				case 0, 1:
					if ins, _ := a.Put(w, k, stressValue(k)); ins {
						inserts.Add(1)
					}
				case 2:
					if v, ok := a.Get(w, k); ok {
						checkStressValue(t, k, v)
					}
				case 3:
					if del, _ := a.Delete(w, k); del {
						deletes.Add(1)
					}
				case 4:
					// Fire-and-forget: insert accounting is reconciled
					// via a disjoint high-key stripe (one key per
					// worker/op pair, never deleted).
					hk := keyspace + uint64(wi)*uint64(opsPer) + uint64(op)
					a.PutAsync(w, hk, stressValue(hk))
					ffPuts.Add(1)
				default:
					lo := k
					prev, first := uint64(0), true
					a.Range(w, lo, lo+64, func(sk uint64, sv []byte) bool {
						if !first && sk <= prev {
							t.Errorf("Range emitted %d after %d", sk, prev)
						}
						prev, first = sk, false
						checkStressValue(t, sk, sv)
						return true
					})
				}
			}
		}(wi)
	}
	work.Wait()
	close(stop)
	wg.Wait()
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	a.Flush(w)
	wantLen := int(inserts.Load()-deletes.Load()) + int(ffPuts.Load())
	if got := st.Len(w); got != wantLen {
		t.Fatalf("final Len %d != inserts %d - deletes %d + ff %d",
			got, inserts.Load(), deletes.Load(), ffPuts.Load())
	}
	if st.ReshardStats().Splits == 0 {
		t.Error("no splits fired; the test lost its point")
	}
	agg := a.AggregateCombineStats()
	if agg.Combined == 0 || agg.LockTakes == 0 {
		t.Fatalf("no combining recorded: %+v", agg)
	}
}

// TestPutAsyncFireAndForget pins the fire-and-forget contract: the
// call returns without waiting, Flush is the write barrier, the ops
// are fully accounted in the combining stats, and DeleteAsync composes.
func TestPutAsyncFireAndForget(t *testing.T) {
	st := New(Config{Shards: 4})
	a := NewAsync(st, AsyncConfig{})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	const n = 512
	for k := uint64(0); k < n; k++ {
		a.PutAsync(w, k, stressValue(k))
	}
	a.Flush(w)
	if got := st.Len(w); got != n {
		t.Fatalf("Len after Flush = %d, want %d", got, n)
	}
	for k := uint64(0); k < n; k++ {
		v, ok := a.Get(w, k)
		if !ok {
			t.Fatalf("key %d missing after PutAsync+Flush", k)
		}
		checkStressValue(t, k, v)
	}
	for k := uint64(0); k < n; k += 2 {
		a.DeleteAsync(w, k)
	}
	a.Flush(w)
	if got := st.Len(w); got != n/2 {
		t.Fatalf("Len after DeleteAsync+Flush = %d, want %d", got, n/2)
	}
	agg := a.AggregateCombineStats()
	wantOps := uint64(n + n/2 + n) // ff puts + ff deletes + waited gets
	if agg.Combined != wantOps {
		t.Fatalf("Combined = %d, want %d (every async op accounted once)", agg.Combined, wantOps)
	}
}

// TestAdaptiveMaxBatch drives one hot shard with an adaptive pipeline
// and checks the bound machinery: the effective bound is exposed, and
// under real parallelism with deep queues it grows past the old fixed
// default on the hot shard while drains keep every op accounted.
func TestAdaptiveMaxBatch(t *testing.T) {
	const workers = 8
	opsPer := 2_000
	if testing.Short() {
		opsPer = 500
	}
	st := New(Config{
		Shards: 1,
		CSPad:  func(w *core.Worker) { workload.Spin(2_000) },
	})
	a := NewAsync(st, AsyncConfig{RingSize: 256})
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// All big: the little cap must not hide the growth.
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			rng := prng.NewSplitMix64(uint64(wi)*3 + 1)
			for op := 0; op < opsPer; op++ {
				k := rng.Uint64() % 1024
				if rng.Uint64()&1 == 0 {
					a.Put(w, k, stressValue(k))
				} else {
					a.Get(w, k)
				}
			}
		}(wi)
	}
	wg.Wait()
	agg := a.AggregateCombineStats()
	if want := uint64(workers * opsPer); agg.Combined != want {
		t.Fatalf("Combined = %d, want exactly %d", agg.Combined, want)
	}
	if agg.MaxBatchEff == 0 {
		t.Fatal("MaxBatchEff not exposed")
	}
	t.Logf("adaptive: %d ops / %d takes = %.2f ops/take, depthHW %d, effective bound %d",
		agg.Combined, agg.LockTakes, agg.OpsPerLockTake(), agg.DepthHW, agg.MaxBatchEff)
	// Growth needs queues deeper than the initial bound, which needs
	// real parallelism; only assert where the scheduler can provide it.
	if runtime.GOMAXPROCS(0) >= 4 && agg.DepthHW >= 2*adaptiveInitBatch {
		if agg.MaxBatchEff <= adaptiveInitBatch {
			t.Errorf("bound stayed at %d despite depthHW %d", agg.MaxBatchEff, agg.DepthHW)
		}
	}
	// A fixed-batch store must report the fixed bound.
	st2 := New(Config{Shards: 1})
	a2 := NewAsync(st2, AsyncConfig{MaxBatch: 16})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	a2.Put(w, 1, stressValue(1))
	if eff := a2.AggregateCombineStats().MaxBatchEff; eff != 16 {
		t.Fatalf("fixed MaxBatchEff = %d, want 16", eff)
	}
}

// TestReshardDetectorSplitsHotShard runs the background detector
// against a deliberately skewed load (every op on one shard) with an
// aggressive window and checks that it splits within the deadline —
// the end-to-end smoke of the measure-then-split loop.
func TestReshardDetectorSplitsHotShard(t *testing.T) {
	st := New(Config{
		Shards: 4,
		CSPad:  func(w *core.Worker) { workload.Spin(500) },
		Reshard: &ReshardConfig{
			SkewFactor:    1.5,
			Window:        10 * time.Millisecond,
			Sustain:       2,
			MinOps:        64,
			MinContention: 0.001,
			MaxShards:     16,
		},
	})
	defer st.StopReshard()
	// One hot key pins all traffic to one shard; several workers make
	// the lock measurably contended.
	hot := uint64(7)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for wi := 0; wi < 4; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			for !stop.Load() {
				st.Put(w, hot, stressValue(hot))
				st.Get(w, hot)
			}
		}(wi)
	}
	deadline := time.After(10 * time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for st.ReshardStats().Splits == 0 {
		select {
		case <-deadline:
			stop.Store(true)
			wg.Wait()
			t.Fatalf("detector never split: %+v, agg %+v", st.ReshardStats(), st.AggregateStats())
		case <-tick.C:
		}
	}
	stop.Store(true)
	wg.Wait()
	rs := st.ReshardStats()
	if rs.Events == 0 || rs.Shards <= 4 {
		t.Fatalf("ReshardStats after detector split = %+v", rs)
	}
	// The hot key still answers.
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	if v, ok := st.Get(w, hot); !ok {
		t.Fatal("hot key lost across detector split")
	} else {
		checkStressValue(t, hot, v)
	}
}
