package shardedkv_test

// The split-under-load model-equivalence checks live in the external
// test package so they can use the shared internal/kvmodel harness
// (see durable_model_test.go for the import-cycle reasoning).

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvmodel"
	"repro/internal/shardedkv"
)

// TestSplitUnderLoadLinearizable is the split-under-load equivalence
// check of the sync store: every worker owns a disjoint key set and
// mirrors each op on a private model, so return values are exactly
// predictable, while a splitter thread keeps forcing splits on hot
// keys mid-stress. All four engines; run with -race.
func TestSplitUnderLoadLinearizable(t *testing.T) {
	const workers = 6
	opsPer := 3_000
	if testing.Short() {
		opsPer = 600
	}
	for _, spec := range shardedkv.AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := shardedkv.New(shardedkv.Config{Shards: 4, NewEngine: spec.New, Reshard: modelReshard()})
			var wg sync.WaitGroup
			stop := make(chan struct{})
			// The splitter forces a split every few hundred
			// microseconds, cycling the target key so different shards
			// (and later their children) split while ops are in flight.
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := core.NewWorker(core.WorkerConfig{Class: core.Big})
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					st.ForceSplit(w, i%64)
					time.Sleep(200 * time.Microsecond)
				}
			}()
			// The shared KV-model harness does the striped
			// drive-and-check; this test contributes the concurrent
			// splitter.
			kvmodel.Drive(t, st, nil, workers, opsPer)
			close(stop)
			wg.Wait()
			if st.ReshardStats().Splits == 0 {
				t.Error("stress ran without a single split; the test lost its point")
			}
		})
	}
}

// TestAsyncSplitLinearizableVsModel runs the same model equivalence
// through the combining pipeline while splits fire mid-stress: ring
// drains, forwarding, and direct fallbacks must all land each op on
// the engine that owns its key at execution time. Run with -race.
func TestAsyncSplitLinearizableVsModel(t *testing.T) {
	const workers = 6
	opsPer := 3_000
	if testing.Short() {
		opsPer = 600
	}
	for _, spec := range shardedkv.AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := shardedkv.New(shardedkv.Config{Shards: 4, NewEngine: spec.New, Reshard: modelReshard()})
			// Small ring + small fixed batch: wraps, elections, and
			// ring-full direct paths all cross the splits.
			a := shardedkv.NewAsync(st, shardedkv.AsyncConfig{MaxBatch: 8, RingSize: 32})
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := core.NewWorker(core.WorkerConfig{Class: core.Big})
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					st.ForceSplit(w, i%64)
					time.Sleep(300 * time.Microsecond)
				}
			}()
			// Same shared harness as the sync test, but through the
			// pipeline, with PutAsync as the fire-and-forget hook so the
			// read-your-write FIFO contract is pinned mid-split.
			kvmodel.Drive(t, a, a.PutAsync, workers, opsPer)
			close(stop)
			wg.Wait()
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			if err := a.Flush(w); err != nil {
				t.Fatalf("flush: %v", err)
			}
			if st.ReshardStats().Splits == 0 {
				t.Error("async stress ran without a single split")
			}
		})
	}
}
