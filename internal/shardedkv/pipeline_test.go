package shardedkv

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/prng"
	"repro/internal/workload"
)

// verValue encodes (key, version) so a read can be matched to the
// exact write that produced it.
func verValue(k, ver uint64) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], k)
	binary.LittleEndian.PutUint64(b[8:], ver)
	return b[:]
}

// TestAsyncLinearizableVsModel checks the pipeline against a
// single-threaded model store: every worker owns a disjoint key set
// and mirrors each async op on a private map, so each op's RETURN
// value (get bytes + found, put inserted, delete present) is exactly
// predictable — any combiner bug that drops, duplicates, reorders, or
// cross-wires a queued request shows up as a mismatch. Workers share
// shards and rings, so the combining machinery itself is fully
// concurrent. Run with -race.
func TestAsyncLinearizableVsModel(t *testing.T) {
	const workers = 8
	opsPer := 4_000
	if testing.Short() {
		opsPer = 800
	}
	st := New(Config{Shards: 4})
	// Small ring + small batch: force wraps, elections, and ring-full
	// direct fallbacks, not just the happy path.
	a := NewAsync(st, AsyncConfig{MaxBatch: 8, RingSize: 32})
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			class := core.Big
			if wi%2 == 1 {
				class = core.Little
			}
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewSplitMix64(uint64(wi)*0x9e3779b9 + 101)
			model := make(map[uint64][]byte)
			ver := uint64(0)
			// own maps a small index space onto this worker's keys.
			own := func(i uint64) uint64 { return (i%256)*workers + uint64(wi) }
			for op := 0; op < opsPer; op++ {
				k := own(rng.Uint64())
				switch rng.Uint64() % 8 {
				case 0, 1, 2:
					ver++
					v := verValue(k, ver)
					inserted, _ := a.Put(w, k, v)
					_, had := model[k]
					if inserted == had {
						t.Errorf("worker %d: Put(%d) inserted=%v, model had=%v", wi, k, inserted, had)
					}
					model[k] = v
				case 3, 4, 5:
					v, ok := a.Get(w, k)
					mv, mok := model[k]
					if ok != mok || !bytes.Equal(v, mv) {
						t.Errorf("worker %d: Get(%d) = %x,%v; model %x,%v", wi, k, v, ok, mv, mok)
					}
				case 6:
					present, _ := a.Delete(w, k)
					_, had := model[k]
					if present != had {
						t.Errorf("worker %d: Delete(%d) present=%v, model had=%v", wi, k, present, had)
					}
					delete(model, k)
				default:
					// Batched flavour over distinct owned keys.
					n := int(rng.Uint64()%5) + 2
					base := rng.Uint64()
					if rng.Uint64()&1 == 0 {
						kvs := make([]Pair, n)
						for j := range kvs {
							bk := own(base + uint64(j))
							ver++
							kvs[j] = Pair{Key: bk, Value: verValue(bk, ver)}
						}
						wantIns := 0
						for _, kv := range kvs {
							if _, had := model[kv.Key]; !had {
								wantIns++
							}
							model[kv.Key] = kv.Value
						}
						if got, _ := a.MultiPut(w, kvs); got != wantIns {
							t.Errorf("worker %d: MultiPut inserted %d, model wants %d", wi, got, wantIns)
						}
					} else {
						keys := make([]uint64, n)
						for j := range keys {
							keys[j] = own(base + uint64(j))
						}
						vals, oks := a.MultiGet(w, keys)
						for j, bk := range keys {
							mv, mok := model[bk]
							if oks[j] != mok || !bytes.Equal(vals[j], mv) {
								t.Errorf("worker %d: MultiGet(%d) = %x,%v; model %x,%v",
									wi, bk, vals[j], oks[j], mv, mok)
							}
						}
					}
				}
			}
			// Final state: every owned key must read back exactly as
			// the model says, through the pipeline.
			for i := uint64(0); i < 256; i++ {
				k := own(i)
				v, ok := a.Get(w, k)
				mv, mok := model[k]
				if ok != mok || !bytes.Equal(v, mv) {
					t.Errorf("worker %d: final Get(%d) = %x,%v; model %x,%v", wi, k, v, ok, mv, mok)
				}
			}
		}(wi)
	}
	wg.Wait()
}

// TestAsyncSharedStress is the shared-key counterpart: the runStress
// mix (value integrity + exact insert/delete accounting) driven
// through the pipeline on every engine, with ordered Range checks
// under churn. Run with -race.
func TestAsyncSharedStress(t *testing.T) {
	opsPer := 3_000
	if testing.Short() {
		opsPer = 600
	}
	for _, spec := range AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := New(Config{Shards: 8, NewEngine: spec.New})
			a := NewAsync(st, AsyncConfig{MaxBatch: 8, RingSize: 64})
			var inserts, deletes atomic.Int64
			var wg sync.WaitGroup
			const keyspace = 512
			for wi := 0; wi < 8; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					class := core.Big
					if wi%2 == 1 {
						class = core.Little
					}
					w := core.NewWorker(core.WorkerConfig{Class: class})
					rng := prng.NewSplitMix64(uint64(wi)*0xabcdef + 3)
					for op := 0; op < opsPer; op++ {
						k := rng.Uint64() % keyspace
						switch rng.Uint64() % 6 {
						case 0, 1:
							if ins, _ := a.Put(w, k, stressValue(k)); ins {
								inserts.Add(1)
							}
						case 2:
							if v, ok := a.Get(w, k); ok {
								checkStressValue(t, k, v)
							}
						case 3:
							if del, _ := a.Delete(w, k); del {
								deletes.Add(1)
							}
						case 4:
							lo := k
							hi := lo + rng.Uint64()%64
							prev, first := uint64(0), true
							a.Range(w, lo, hi, func(sk uint64, sv []byte) bool {
								if sk < lo || sk > hi {
									t.Errorf("Range[%d,%d] emitted out-of-range key %d", lo, hi, sk)
								}
								if !first && sk <= prev {
									t.Errorf("Range[%d,%d] emitted %d after %d", lo, hi, sk, prev)
								}
								prev, first = sk, false
								checkStressValue(t, sk, sv)
								return true
							})
						default:
							n := int(rng.Uint64()%6) + 2
							if rng.Uint64()&1 == 0 {
								kvs := make([]Pair, n)
								for j := range kvs {
									// Distinct keys: the pipeline does not
									// order duplicate keys within a batch.
									bk := (rng.Uint64() + uint64(j)) % keyspace
									kvs[j] = Pair{Key: bk, Value: stressValue(bk)}
								}
								n, _ := a.MultiPut(w, kvs)
								inserts.Add(int64(n))
							} else {
								for _, res := range a.MultiRange(w, []RangeReq{
									{Lo: k, Hi: k + 32},
									{Lo: k + 128, Hi: k + 160},
								}) {
									for i, kv := range res {
										if i > 0 && kv.Key <= res[i-1].Key {
											t.Errorf("MultiRange emitted %d after %d", kv.Key, res[i-1].Key)
										}
										checkStressValue(t, kv.Key, kv.Value)
									}
								}
							}
						}
					}
				}(wi)
			}
			wg.Wait()
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			a.Flush(w)
			wantLen := int(inserts.Load() - deletes.Load())
			if got := st.Len(w); got != wantLen {
				t.Fatalf("final Len %d != inserts %d - deletes %d", got, inserts.Load(), deletes.Load())
			}
			agg := a.AggregateCombineStats()
			if agg.Combined == 0 || agg.LockTakes == 0 {
				t.Fatalf("no combining recorded: %+v", agg)
			}
		})
	}
}

// TestAsyncMultiPutDistinctKeysDuplicateFree re-checks the MultiPut
// insert count against duplicate-free batches (the only case whose
// count is defined under concurrent execution).
func TestAsyncMultiPutInsertCount(t *testing.T) {
	st := New(Config{Shards: 4})
	a := NewAsync(st, AsyncConfig{})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	kvs := make([]Pair, 64)
	for i := range kvs {
		kvs[i] = Pair{Key: uint64(i), Value: stressValue(uint64(i))}
	}
	if got, _ := a.MultiPut(w, kvs); got != 64 {
		t.Fatalf("first MultiPut inserted %d, want 64", got)
	}
	if got, _ := a.MultiPut(w, kvs); got != 0 {
		t.Fatalf("second MultiPut inserted %d, want 0", got)
	}
	if got := st.Len(w); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
}

// TestAsyncFlushUnderLoad checks Flush's cut-off guarantee: it must
// return even while other workers keep the rings busy (it drains the
// pre-call prefix, not the world).
func TestAsyncFlushUnderLoad(t *testing.T) {
	st := New(Config{Shards: 4})
	a := NewAsync(st, AsyncConfig{MaxBatch: 4, RingSize: 32})
	var stop atomic.Bool
	var wg sync.WaitGroup
	for wi := 0; wi < 4; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: core.Little})
			rng := prng.NewSplitMix64(uint64(wi) + 17)
			for !stop.Load() {
				k := rng.Uint64() % 1024
				a.Put(w, k, stressValue(k))
			}
		}(wi)
	}
	flushed := make(chan struct{})
	go func() {
		w := core.NewWorker(core.WorkerConfig{Class: core.Big})
		for i := 0; i < 50; i++ {
			a.Flush(w)
		}
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-time.After(30 * time.Second):
		t.Fatal("Flush did not return under sustained enqueue load")
	}
	stop.Store(true)
	wg.Wait()
}

// TestAsyncCloseSemantics: Close drains, is idempotent, makes further
// pipeline use panic, and leaves the wrapped Store usable.
func TestAsyncCloseSemantics(t *testing.T) {
	st := New(Config{Shards: 4})
	a := NewAsync(st, AsyncConfig{})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	for k := uint64(0); k < 128; k++ {
		a.Put(w, k, stressValue(k))
	}
	a.Close(w)
	a.Close(w) // idempotent
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Get after Close must panic")
			}
		}()
		a.Get(w, 1)
	}()
	// The synchronous store is unaffected, and holds everything the
	// pipeline wrote.
	if got := st.Len(w); got != 128 {
		t.Fatalf("Store.Len after Close = %d, want 128", got)
	}
	if v, ok := st.Get(w, 5); !ok {
		t.Fatal("key 5 missing after Close")
	} else {
		checkStressValue(t, 5, v)
	}
}

// TestAsyncCombinerStarvationBound pins every op to ONE shard (the
// zipf-hot regime taken to its limit) and checks that a single
// little-class worker still completes a fixed op budget while six
// big-class workers hammer the same ring: the FIFO request ring bounds
// how often a queued op can be overtaken, so combining must not buy
// throughput with little-class starvation.
func TestAsyncCombinerStarvationBound(t *testing.T) {
	st := New(Config{Shards: 1})
	a := NewAsync(st, AsyncConfig{MaxBatch: 8, RingSize: 64})
	var stop atomic.Bool
	var wg sync.WaitGroup
	for wi := 0; wi < 6; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			rng := prng.NewSplitMix64(uint64(wi)*31 + 7)
			for !stop.Load() {
				k := rng.Uint64() % 4096
				if rng.Uint64()&1 == 0 {
					a.Put(w, k, stressValue(k))
				} else {
					a.Get(w, k)
				}
			}
		}(wi)
	}
	littleOps := 400
	if testing.Short() {
		littleOps = 100
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := core.NewWorker(core.WorkerConfig{Class: core.Little})
		for i := 0; i < littleOps; i++ {
			k := uint64(i)
			a.Put(w, k, stressValue(k))
			if v, ok := a.Get(w, k); !ok {
				t.Errorf("little worker lost its own write for key %d", k)
			} else {
				checkStressValue(t, k, v)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("little-class worker starved on the hot shard")
	}
	stop.Store(true)
	wg.Wait()
}

// TestAsyncCombiningBatches drives a single hot shard hard enough that
// combining must actually batch: every async op is accounted for
// exactly once, and under real parallelism the ops-per-lock-take ratio
// exceeds 1 (the whole point of the pipeline).
func TestAsyncCombiningBatches(t *testing.T) {
	const workers = 8
	opsPer := 2_000
	if testing.Short() {
		opsPer = 500
	}
	st := New(Config{
		Shards: 1,
		// A calibrated pad lengthens the critical section so queues
		// form, as in the kvbench AMP emulation.
		CSPad: func(w *core.Worker) { workload.Spin(2_000) },
	})
	a := NewAsync(st, AsyncConfig{MaxBatch: 16, RingSize: 128})
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			class := core.Big
			if wi%2 == 1 {
				class = core.Little
			}
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewSplitMix64(uint64(wi)*13 + 5)
			for op := 0; op < opsPer; op++ {
				k := rng.Uint64() % 1024
				if rng.Uint64()&1 == 0 {
					a.Put(w, k, stressValue(k))
				} else {
					a.Get(w, k)
				}
			}
		}(wi)
	}
	wg.Wait()
	agg := a.AggregateCombineStats()
	if want := uint64(workers * opsPer); agg.Combined != want {
		t.Fatalf("Combined = %d, want exactly %d (every async op accounted once)", agg.Combined, want)
	}
	if agg.LockTakes == 0 {
		t.Fatal("no lock takes recorded")
	}
	t.Logf("combining: %d ops / %d takes = %.2f ops/take, %d direct, %d handoffs, depthHW %d, big/little takes %d/%d",
		agg.Combined, agg.LockTakes, agg.OpsPerLockTake(), agg.Direct, agg.Handoffs, agg.DepthHW,
		agg.BigTakes, agg.LittleTakes)
	if runtime.GOMAXPROCS(0) >= 4 {
		if r := agg.OpsPerLockTake(); r <= 1.1 {
			t.Errorf("ops-per-lock-take = %.2f; combining is not batching", r)
		}
		if agg.DepthHW == 0 {
			t.Error("queue depth high-water is zero under a hot shard")
		}
	}
}

// TestAsyncRangeCallbackLockFree proves the pipeline's collect-then-
// emit contract: the Range callback runs strictly after every shard
// lock is released, so it may re-enter both the pipeline and the
// store. The shard locks are not reentrant — a violation deadlocks
// rather than silently passing.
func TestAsyncRangeCallbackLockFree(t *testing.T) {
	st := New(Config{Shards: 4})
	a := NewAsync(st, AsyncConfig{})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	for k := uint64(0); k < 64; k++ {
		a.Put(w, k, stressValue(k))
	}
	visited := 0
	a.Range(w, 0, 63, func(k uint64, v []byte) bool {
		checkStressValue(t, k, v)
		// Re-enter on every shard: ShardOf hashes, so k+1..k+4 cover
		// several shards across the walk.
		a.Get(w, k+1)
		a.Put(w, 1_000+k, stressValue(1_000+k))
		st.Get(w, k)
		visited++
		return true
	})
	if visited != 64 {
		t.Fatalf("visited %d keys, want 64", visited)
	}
}
