package shardedkv

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// This file implements the asynchronous combining front end over
// Store: a flat-combining request pipeline in the spirit of Hendler,
// Incze, Shavit and Tzafrir (the paper's reference [47]), specialised
// for the asymmetric-core setting of the source paper.
//
// Every shard gets a lock-free MPSC request ring. Callers build a
// request (Get/Put/Delete/Range plus a future), enqueue it, and wait
// for completion — spinning or parking according to their core class.
// Whoever wins the shard lock's TryAcquire becomes the combiner and
// drains the ring: up to the drain bound, queued operations execute
// against the engine under ONE Acquire/Release, completing futures as
// they go. Once a weak core has paid for the lock it amortises the
// cost over the whole queue instead of forcing a handoff per op — the
// combining extension of the paper's handoff-policy argument, and a
// direct application of Dice & Kogan's concurrency-restriction point:
// the hot shard's lock admits one thread, everyone else delegates.
//
// The asymmetry-aware twist is combiner election bias: big-class
// workers attempt election on every waiting pass while little-class
// workers hold back (and eventually park), so under mixed traffic the
// strong cores do the combining and the weak cores merely enqueue.
// Since the critical-section cost is paid by the EXECUTING worker, an
// op a little core enqueued runs at big-core speed when a big core
// combines it — on real AMP hardware that is the whole win; under the
// CSPad emulation the pad is keyed to the combiner's class for the
// same reason. Election bias is a preference, not a dependency:
// little workers still elect (and always serve themselves eventually),
// so the pipeline is live with no big cores at all.
//
// The drain bound is adaptive by default (AsyncConfig.MaxBatch == 0):
// each shard's bound starts at the old fixed default of 32 and doubles
// while drains saturate it and the observed queue depth keeps up,
// decaying back when the ring runs dry — so a zipf-hot shard's
// combiner drains deeper per lock take while cold shards stay
// latency-lean. Big-class combiners use the full bound; little-class
// combiners cap at the old default, the drain-side mirror of the
// election bias (big cores do the deep batches). A combiner on a hot
// shard also lingers a bounded few microseconds when its ring runs
// momentarily dry, picking up in-flight producers instead of paying
// them a fresh lock take each.
//
// Resharding (shardmap.go) threads through the pipeline: rings follow
// the shard map. A split drains the parent's ring under the split
// rendezvous, spawns rings for the children before they are reachable,
// and installs a forward pointer; a combiner that later drains a
// request from the retired parent's ring routes it to the live child
// (point ops hop by key hash; ranges collect across all live
// descendants and merge), so no enqueued op is ever lost or executed
// against a stale engine.

// opKind is a pipeline request type.
type opKind uint8

const (
	opGet opKind = iota
	opPut
	opDelete
	opRange
)

// Future states. A request starts pending, is flipped to done by
// exactly one completer, and passes through parked only while its
// owner blocks on the wake channel.
const (
	futPending uint32 = iota
	futDone
	futParked
)

// request is one queued operation plus its future. Requests are
// pooled: the completer's complete() call is its last touch, after
// which the owner is free to read the results and recycle it. A
// fire-and-forget request (ff) has no waiting owner; the completer
// recycles it instead of completing the future.
type request struct {
	kind opKind
	ff   bool       // fire-and-forget: recycle on execution, nobody waits
	key  uint64     // Get/Put/Delete key
	val  []byte     // Put value (retained by reference, as in Store.Put)
	rng  []RangeReq // opRange: spans to collect on one shard

	// syncWait marks a waited write whose class demands group commit:
	// the executor appends to the shard's log as usual but the drain
	// holds the future back (in its pend list) and completes it only
	// after releasing the shard lock and committing the record — the
	// combiner's whole batch rides ONE fsync, and the fsync never runs
	// under a shard lock.
	syncWait bool

	// Results, written by the executor before complete().
	rval  []byte   // Get: stored value
	rok   bool     // Get: found / Put: inserted / Delete: was present
	parts [][]Pair // opRange: parts[i] is rng[i]'s slice of this shard
	lg    *wal.Log // log the write was appended to (nil without durability)
	lsn   uint64   // its LSN in lg
	sh    *shard   // executing shard of a logged write (degrade target)
	err   error    // write failure (degraded shard / log error)

	state atomic.Uint32
	wake  chan struct{} // buffered(1); one token per park/wake pair
	timer *time.Timer   // lazily built; parks are timed for liveness
}

// isDone reports completion.
func (r *request) isDone() bool { return r.state.Load() == futDone }

// complete publishes the result and wakes a parked owner. This is the
// completer's LAST touch of r: the owner may recycle it immediately
// after observing done.
func (r *request) complete() {
	if r.state.Swap(futDone) == futParked {
		r.wake <- struct{}{}
	}
}

// parkWait blocks the owner for at most d or until completion;
// reports whether the request completed. The CAS pair with complete()
// guarantees the wake channel is drained on every path, so pooled
// requests never carry a stale token.
func (r *request) parkWait(d time.Duration) bool {
	if !r.state.CompareAndSwap(futPending, futParked) {
		return true // completed before we could park
	}
	if r.timer == nil {
		r.timer = time.NewTimer(d)
	} else {
		r.timer.Reset(d)
	}
	select {
	case <-r.wake:
		r.timer.Stop()
		return true
	case <-r.timer.C:
		if !r.state.CompareAndSwap(futParked, futPending) {
			// complete() won the race and has sent (or is about to
			// send) the wake token; consume it before recycling.
			<-r.wake
			return true
		}
		return false
	}
}

// Combiner election cadence. Big-class waiters try on every bigElect'th
// pass starting immediately; little-class waiters only every
// littleElect'th pass, so a present big core wins the election race.
// Littles park after a short spin (they are the latency-tolerant
// class); bigs spin much longer before giving up the CPU.
const (
	bigElect        = 4
	littleElect     = 128
	littleParkAfter = 1 << 9
	bigParkAfter    = 1 << 14
	minParkSlice    = 50 * time.Microsecond
	maxParkSlice    = time.Millisecond
)

// Adaptive drain-bound tuning (AsyncConfig.MaxBatch == 0). The bound
// starts at the old fixed default, doubles while drains saturate it
// (and the recent queue depth justifies it), and halves when the ring
// runs dry. Little-class combiners cap their drains at the old
// default; deep batches belong to big cores.
const (
	adaptiveInitBatch = 32
	adaptiveMinBatch  = 8
	adaptiveMaxBatch  = 1024
	adaptiveLittleCap = 32
	// lingerSpins bounds the combiner's dry-ring linger on a hot shard
	// (hwRecent >= lingerMinDepth): a few hundred spin units trade a
	// hair of hold time for whole lock takes saved by the producers
	// arriving meanwhile.
	lingerSpins    = 384
	lingerMinDepth = 4
)

// pipeSpinner mirrors the locks package's internal spin helper: short
// busy loops with periodic scheduler yields, so waiters make progress
// even when GOMAXPROCS is smaller than the worker count.
type pipeSpinner struct{ n uint }

func (s *pipeSpinner) spin() {
	s.n++
	if s.n%64 == 0 {
		runtime.Gosched()
		return
	}
	for i := 0; i < 4; i++ {
		_ = i
	}
}

// AsyncConfig configures an AsyncStore.
type AsyncConfig struct {
	// MaxBatch bounds the operations a combiner executes under one
	// lock take. 0 (the default) selects the adaptive per-shard bound
	// described above; a positive value fixes the bound for every
	// shard. Reaching the bound releases the lock (so big-core FIFO
	// entrants and sync-path users get their turn) and re-elects if
	// the ring is still non-empty.
	MaxBatch int
	// RingSize is the per-shard queue capacity, rounded up to a power
	// of two; 0 means 256. A full ring falls back to direct execution
	// under the shard lock, so enqueue never blocks on space.
	RingSize int
}

// pipeShard is one shard's pipeline state: the request ring plus
// combining counters and the adaptive drain bound. It follows the
// shard, not a fixed index: splits retire a pipeShard along with its
// shard and attach fresh ones to the children.
type pipeShard struct {
	sh   *shard
	ring *reqRing
	// fixed is the configured MaxBatch (0 = adaptive via bound).
	fixed int
	bound atomic.Int64
	// hwRecent is a decaying queue-depth estimate: raised like depthHW
	// at enqueue, decayed by idle drains. The adaptive bound grows
	// toward it, never past it.
	hwRecent atomic.Uint64
	// executed counts ring requests applied to the engine (and logged,
	// under durability), i.e. the ring position up to which effects are
	// real. It trails the ring's head cursor, which advances at dequeue
	// time: Flush/Close must wait on executed, not head, or a request a
	// concurrent combiner has dequeued but not yet run would count as
	// flushed. A sync-wait request's FUTURE may complete after the
	// cursor covers it (the combiner commits post-release); only its
	// owner waits on that.
	executed  atomic.Uint64
	lockTakes atomic.Uint64
	combined  atomic.Uint64
	direct    atomic.Uint64
	handoffs  atomic.Uint64
	depthHW   atomic.Uint64
	// takesBy counts lock takes per electing class, indexed by
	// core.Class (Big = 0, Little = 1).
	takesBy [2]atomic.Uint64
	last    atomic.Pointer[core.Worker]
	// streak counts consecutive lock takes by the same worker — the
	// adoption signal for a biased shard lock (Config.Bias). Guarded by
	// the shard lock: every noteTake caller holds it.
	streak uint64
	_      [64]byte
}

// biasAdoptStreak is how many consecutive async-path lock takes by one
// worker stage a bias-adoption hint on the shard's biased lock. A
// worker that wins this many takes in a row with nobody interleaving
// is the per-shard CombineStats expression of the ROADMAP's ">90% of
// lock takes from one worker" signal — each take here is a whole
// combining batch, so 16 consecutive takes is hundreds to thousands of
// uncontested operations. The hint is consumed by the very Release
// that follows the drain (adoption happens in the biased lock's
// slow-path release, which the hinting worker is about to run).
const biasAdoptStreak = 16

// noteTake records one async-path lock take by worker w.
func (q *pipeShard) noteTake(w *core.Worker) {
	q.lockTakes.Add(1)
	q.takesBy[w.Class()].Add(1)
	if prev := q.last.Swap(w); prev != nil && prev != w {
		q.handoffs.Add(1)
		q.streak = 0
	}
	if b := q.sh.biased; b != nil {
		q.streak++
		if q.streak >= biasAdoptStreak && b.Owner() != w {
			b.HintAdopt(w)
		}
	}
}

// noteDepth folds the current queue depth into the high-water mark and
// the decaying recent-depth estimate.
func (q *pipeShard) noteDepth() {
	d := q.ring.Len()
	for {
		hw := q.depthHW.Load()
		if d <= hw || q.depthHW.CompareAndSwap(hw, d) {
			break
		}
	}
	for {
		hw := q.hwRecent.Load()
		if d <= hw || q.hwRecent.CompareAndSwap(hw, d) {
			return
		}
	}
}

// drainBound returns the bound this combiner's drain should use.
func (q *pipeShard) drainBound(w *core.Worker) int {
	if q.fixed > 0 {
		return q.fixed
	}
	b := int(q.bound.Load())
	if w.Class() == core.Little && b > adaptiveLittleCap {
		b = adaptiveLittleCap
	}
	return b
}

// adapt updates the adaptive bound after a drain of n ops ran with the
// given bound. Only full-bound (big-class) drains grow the shared
// bound; any dry drain decays it (the recent-depth estimate decays in
// decayDepth, fixed-bound pipelines included). Runs under the shard
// lock, so updates are serialised; the plain stores racing a
// concurrent noteDepth CAS are advisory-only.
func (q *pipeShard) adapt(n, used int) {
	b := int(q.bound.Load())
	if used != b {
		return
	}
	switch {
	case n >= used && !q.ring.Empty():
		hw := q.hwRecent.Load()
		nb := min(b*2, adaptiveMaxBatch, q.ring.Cap())
		if nb > b && uint64(b) <= hw {
			q.bound.Store(int64(nb))
		}
	case n*4 < b && q.ring.Empty():
		if b > adaptiveMinBatch {
			q.bound.Store(int64(max(b/2, adaptiveMinBatch)))
		}
	}
}

// decayDepth ages the recent-depth estimate after a drain that ran the
// ring dry. Runs under the shard lock for every drain, fixed bound or
// adaptive — the skew detector's queue-pressure gate reads hwRecent,
// so it must subside on idle rings either way, or one startup burst
// would read as permanent saturation. The plain store racing a
// concurrent producer's CAS-max is advisory-only, like noteDepth's.
func (q *pipeShard) decayDepth() {
	hw := q.hwRecent.Load()
	q.hwRecent.Store(hw * 3 / 4) // integer decay that reaches 0
}

// CombineStats is a snapshot of one shard's combining counters.
type CombineStats struct {
	// LockTakes counts shard-lock acquisitions made on the async path
	// (combiner elections won plus ring-full direct takes).
	LockTakes uint64
	// Combined counts operations executed on the async path. Combined
	// / LockTakes is the ops-per-lock-take the pipeline exists to
	// raise above 1.
	Combined uint64
	// Direct counts ring-full fallbacks (executed solo under a
	// blocking acquire; their ops and takes are included above).
	Direct uint64
	// Handoffs counts lock takes won by a different worker than the
	// previous combiner — combiner identity churn.
	Handoffs uint64
	// DepthHW is the queue-depth high-water mark observed at enqueue.
	DepthHW uint64
	// MaxBatchEff is the drain bound currently in effect: the
	// configured fixed MaxBatch, or the adaptive bound the shard has
	// grown/decayed to.
	MaxBatchEff uint64
	// BigTakes and LittleTakes split LockTakes by the elector's class;
	// under mixed traffic the election bias should keep BigTakes well
	// ahead.
	BigTakes, LittleTakes uint64
}

// OpsPerLockTake returns Combined/LockTakes (0 when idle).
func (c CombineStats) OpsPerLockTake() float64 {
	if c.LockTakes == 0 {
		return 0
	}
	return float64(c.Combined) / float64(c.LockTakes)
}

// stats snapshots this pipeShard's counters.
func (q *pipeShard) stats() CombineStats {
	eff := uint64(q.fixed)
	if q.fixed == 0 {
		eff = uint64(q.bound.Load())
	}
	return CombineStats{
		LockTakes:   q.lockTakes.Load(),
		Combined:    q.combined.Load(),
		Direct:      q.direct.Load(),
		Handoffs:    q.handoffs.Load(),
		DepthHW:     q.depthHW.Load(),
		MaxBatchEff: eff,
		BigTakes:    q.takesBy[core.Big].Load(),
		LittleTakes: q.takesBy[core.Little].Load(),
	}
}

// AsyncStore is the combining front end. It wraps a Store and shares
// its shard locks, so async and plain synchronous calls on the same
// Store interleave safely (sync holders simply delay the combiner).
// All methods are safe for concurrent use; as everywhere in this
// repository, each goroutine must own its *core.Worker. A Store
// accepts at most one AsyncStore over its lifetime (the rings are
// threaded through the shard map).
type AsyncStore struct {
	st       *Store
	fixed    int
	ringSize int
	pool     sync.Pool
	closed   atomic.Bool
	// mu guards all: the append-only list of every pipeShard ever
	// attached, retired parents included — Flush and the stats
	// aggregates walk history, not just the live map.
	mu  sync.Mutex
	all []*pipeShard
}

// NewAsync builds a combining front end over st and attaches it to
// the store's shard map (so dynamic resharding threads the rings
// through splits). Panics if st already has an AsyncStore.
func NewAsync(st *Store, cfg AsyncConfig) *AsyncStore {
	if cfg.MaxBatch < 0 {
		cfg.MaxBatch = 0
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	a := &AsyncStore{st: st, fixed: cfg.MaxBatch, ringSize: cfg.RingSize}
	a.pool.New = func() any { return &request{wake: make(chan struct{}, 1)} }
	st.attachAsync(a)
	return a
}

// attachAsync registers a as st's pipeline front end and threads a
// pipeShard onto every live shard. splitMu serialises this against
// splits, so every shard reachable from any map has a ring from here
// on.
func (s *Store) attachAsync(a *AsyncStore) {
	s.splitMu.Lock()
	defer s.splitMu.Unlock()
	if !s.async.CompareAndSwap(nil, a) {
		panic("shardedkv: Store already has an AsyncStore attached")
	}
	for _, sh := range s.smap.Load().shards {
		a.attachShard(sh, nil)
	}
}

// attachShard threads a fresh pipeShard onto sh. Called under splitMu
// (from attachAsync, or from split before the children are published).
// A split child inherits its parent's adaptive state — the hot shard's
// grown bound and depth estimate carry over instead of re-learning
// from cold, since the children split the same traffic.
func (a *AsyncStore) attachShard(sh *shard, parent *pipeShard) {
	q := &pipeShard{sh: sh, ring: newReqRing(a.ringSize), fixed: a.fixed}
	q.bound.Store(adaptiveInitBatch)
	if parent != nil {
		q.bound.Store(parent.bound.Load())
		q.hwRecent.Store(parent.hwRecent.Load())
	}
	sh.pipe.Store(q)
	a.mu.Lock()
	a.all = append(a.all, q)
	a.mu.Unlock()
}

// pipes snapshots the all list.
func (a *AsyncStore) pipes() []*pipeShard {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append(make([]*pipeShard, 0, len(a.all)), a.all...)
}

// Store returns the wrapped synchronous store (for Stats, Len, or
// direct calls).
func (a *AsyncStore) Store() *Store { return a.st }

// Stats snapshots the wrapped store's per-shard counters (KV surface;
// combining-specific numbers live in CombineStats).
func (a *AsyncStore) Stats() []ShardStats { return a.st.Stats() }

func (a *AsyncStore) newReq(kind opKind) *request {
	r := a.pool.Get().(*request)
	r.kind = kind
	r.state.Store(futPending)
	return r
}

// putReq recycles r. Result slices escape to callers, so every
// reference is dropped here.
func (a *AsyncStore) putReq(r *request) {
	r.val, r.rval, r.rng, r.parts = nil, nil, nil, nil
	r.rok, r.ff, r.syncWait = false, false, false
	r.lg, r.lsn, r.sh, r.err = nil, 0, nil, nil
	a.pool.Put(r)
}

// finish hands a just-executed request back: waited requests complete
// their future (the owner recycles), fire-and-forget requests recycle
// right here — nobody is coming back for them.
func (a *AsyncStore) finish(r *request) {
	if r.ff {
		a.putReq(r)
		return
	}
	r.complete()
}

// finishOrDefer finishes r, or parks it on pend when its future must
// wait for group commit. Called with the executing shard's lock held;
// the deferral is what keeps wal.Commit off the locked path.
func (a *AsyncStore) finishOrDefer(r *request, pend *[]*request) {
	if r.syncWait && r.lg != nil {
		*pend = append(*pend, r)
		return
	}
	a.finish(r)
}

// completePending commits and completes the sync-wait requests a drain
// held back. Every shard lock must be released first: Commit fsyncs
// (or piggybacks on the leader already doing so), and commits in pend
// order make one call per log do the real work — later entries find
// their LSN already durable. A failed commit degrades the executing
// shard and publishes the typed error on every covered future — the
// whole held-back batch was promised the same fsync, so none of it
// may falsely ack.
func (s *Store) completePending(pend []*request) {
	for _, r := range pend {
		if r.err == nil {
			if err := r.lg.Commit(r.lsn); err != nil {
				r.err = s.degrade(r.sh, err)
			}
		}
		r.complete()
	}
}

func (a *AsyncStore) checkOpen() {
	if a.closed.Load() {
		panic("shardedkv: AsyncStore used after Close")
	}
}

// pipeOf returns the pipeShard owning key k under the current map.
func (a *AsyncStore) pipeOf(k uint64) *pipeShard {
	return a.st.smap.Load().locate(hashOf(k)).pipe.Load()
}

// exec runs one request against the shard's engine; the caller holds
// the shard lock and sh is live (not forwarded). The CSPad and the
// store's per-shard counters apply exactly as on the synchronous path,
// with the pad keyed to the EXECUTING worker's class: combining by a
// big core makes a little core's op cheap, which is the point.
func (a *AsyncStore) exec(w *core.Worker, sh *shard, r *request) {
	switch r.kind {
	case opGet:
		r.rval, r.rok = sh.eng.Get(r.key)
		a.st.pad(w)
		sh.gets.Add(1)
	case opPut:
		if sh.wal != nil {
			if de := sh.degraded.Load(); de != nil {
				r.err = de
				return
			}
			lsn, err := sh.wal.Append(wal.KindPut, r.key, r.val)
			if err != nil {
				r.err = a.st.degrade(sh, err)
				return
			}
			r.lsn, r.lg, r.sh = lsn, sh.wal, sh
		}
		r.rok = sh.eng.Put(r.key, r.val)
		a.st.pad(w)
		sh.puts.Add(1)
	case opDelete:
		if sh.wal != nil {
			if de := sh.degraded.Load(); de != nil {
				r.err = de
				return
			}
			lsn, err := sh.wal.Append(wal.KindDelete, r.key, nil)
			if err != nil {
				r.err = a.st.degrade(sh, err)
				return
			}
			r.lsn, r.lg, r.sh = lsn, sh.wal, sh
		}
		r.rok = sh.eng.Delete(r.key)
		a.st.pad(w)
		sh.deletes.Add(1)
	case opRange:
		// Collect under the lock, complete the future, and let the
		// OWNER run its callback after release — a combiner must never
		// execute user code while it holds the shard lock (the same
		// collect-then-emit contract as Store.Range).
		a.st.collectShardRanges(w, sh, r.rng, r.parts)
	}
}

// execForwarded executes a request drained from a retired (split)
// shard's ring: the request was routed before the split, so its data
// now lives in the children. The caller holds the retired shard's
// lock; descendant locks are taken ancestor→descendant, which splits
// only ever extend, so the order is acyclic.
func (a *AsyncStore) execForwarded(w *core.Worker, f *splitRecord, r *request) {
	if r.kind == opRange {
		a.execRangeMulti(w, []*shard{f.kids[0], f.kids[1]}, r)
		return
	}
	h := hashOf(r.key)
	sh := a.st.acquireLiveFrom(w, f.child(h), h)
	a.exec(w, sh, r)
	sh.lock.Release(w)
}

// execRangeMulti collects an opRange request across every live shard
// reachable from work (descending through further splits) and merges
// the per-engine slices so r.parts keeps its ascending-key contract.
func (a *AsyncStore) execRangeMulti(w *core.Worker, work []*shard, r *request) {
	var per [][][]Pair // per visited live shard: parts per span
	for len(work) > 0 {
		sh := work[len(work)-1]
		work = work[:len(work)-1]
		sh.lock.Acquire(w)
		if f := sh.forward.Load(); f != nil {
			sh.lock.Release(w)
			work = append(work, f.kids[0], f.kids[1])
			continue
		}
		parts := make([][]Pair, len(r.rng))
		a.st.collectShardRanges(w, sh, r.rng, parts)
		sh.lock.Release(w)
		per = append(per, parts)
	}
	lists := make([][]Pair, len(per))
	for i := range r.rng {
		for j, parts := range per {
			lists[j] = parts[i]
		}
		r.parts[i] = mergeKV(lists)
	}
}

// drain executes queued requests up to the drain bound; the caller
// holds q's shard lock. On a retired ring every request forwards to
// the live children. An adaptive combiner whose ring runs momentarily
// dry on a hot shard lingers briefly for in-flight producers before
// giving the lock up. Returns the number executed. Sync-wait writes
// are applied and logged here but their futures land on pend; the
// caller completes them after release (see completePending).
func (a *AsyncStore) drain(w *core.Worker, q *pipeShard, pend *[]*request) int {
	sh := q.sh
	f := sh.forward.Load() // stable: forward only changes under this lock
	bound := q.drainBound(w)
	adaptive := q.fixed == 0
	n, linger := 0, 0
	var s pipeSpinner
	for n < bound {
		r := q.ring.dequeue()
		if r == nil {
			if adaptive && n > 0 && linger < lingerSpins && q.hwRecent.Load() >= lingerMinDepth {
				linger++
				s.spin()
				continue
			}
			break
		}
		if f == nil {
			a.exec(w, sh, r)
		} else {
			a.execForwarded(w, f, r)
		}
		a.finishOrDefer(r, pend)
		q.executed.Add(1)
		n++
	}
	if n > 0 {
		q.combined.Add(uint64(n))
	}
	if q.ring.Empty() && n < bound {
		q.decayDepth()
	}
	if adaptive {
		q.adapt(n, bound)
	}
	return n
}

// tryCombine runs ONE combiner election on q's shard; a win drains at
// most the bound's worth of queued ops under a single lock take.
// Reports whether it actually drained work — callers spin-wait on
// false, which also covers the won-but-empty case (a producer stalled
// between its ring claim and its publish). A failed TryAcquire means
// whoever holds the lock is either a combiner (and is draining) or a
// sync-path user of the shared lock (and will release soon) — the
// caller keeps waiting on its own future either way. Bounding each
// call to one take keeps a busy shard from turning its current
// combiner into a permanent server: between batches the lock is
// released, FIFO entrants and sync-path users get their turn, and the
// ex-combiner re-checks its own future before volunteering again.
func (a *AsyncStore) tryCombine(w *core.Worker, q *pipeShard) bool {
	if q.ring.Empty() {
		return false
	}
	if !q.sh.electTry(w) {
		return false
	}
	// Count the take only when it drains something: empty takes must
	// not dilute the ops-per-lock-take metric.
	var pend []*request
	//lint:ignore lockorder drain hops retired→descendant shard locks in the order splits created them (see execForwarded); class-level tracking cannot see the instance order that makes this acyclic
	n := a.drain(w, q, &pend)
	if n > 0 {
		q.noteTake(w)
	}
	q.sh.lock.Release(w)
	a.st.completePending(pend)
	return n > 0
}

// drainForSplit empties sh's ring inside the split rendezvous (the
// splitter holds sh's lock). It runs twice per split: before the keys
// move (forward unset — ops execute against sh's still-authoritative
// engine) and again after the forward pointer is installed (requests
// that slipped into the ring meanwhile execute against the live
// children, still in FIFO order, before the map swap makes the
// children reachable). Requests that land even later are driven by
// their own submitters (see submit). Sync-wait futures accumulate on
// pend for the splitter to complete once the rendezvous lock drops.
func (a *AsyncStore) drainForSplit(w *core.Worker, sh *shard, pend *[]*request) {
	q := sh.pipe.Load()
	if q == nil {
		return
	}
	f := sh.forward.Load()
	// The post-forward pass must clear every request published before
	// the forward store (those producers read forward == nil and rely
	// on THIS drain). A producer's claim precedes its publish, so all
	// of them sit below the tail read here — drain to that position,
	// spinning through a slot whose producer is between claim and
	// publish rather than treating it as empty (a later slot may
	// already be published behind it, and breaking would strand it).
	// Claims landing after this tail read observe the forward pointer
	// post-publish and drive themselves (see submit).
	target := q.ring.tailPos()
	n := 0
	var sp pipeSpinner
	for {
		r := q.ring.dequeue()
		if r == nil {
			if f != nil && q.ring.headPos() < target {
				sp.spin()
				continue
			}
			break
		}
		if f == nil {
			a.exec(w, sh, r)
		} else {
			a.execForwarded(w, f, r)
		}
		a.finishOrDefer(r, pend)
		q.executed.Add(1)
		n++
	}
	if n > 0 {
		q.combined.Add(uint64(n))
		q.noteTake(w)
	}
}

// execDirect is the ring-full fallback: execute r solo under a
// blocking acquire of the LIVE shard (hopping split forwards like the
// synchronous path), then drain whatever is queued there — the ring
// was full a moment ago, so there is combining work to amortise the
// take over.
//
// Before executing r, everything enqueued on q before the failed ring
// claim is driven to execution. Without this, the direct path could
// overtake the SAME worker's still-queued fire-and-forget predecessor
// on this ring and break its program order (same-key ops always
// resolve to the same ring, split forwarding included, so this local
// guard is the whole FIFO story).
func (a *AsyncStore) execDirect(w *core.Worker, q *pipeShard, r *request) {
	target := q.ring.tailPos()
	var sp pipeSpinner
	for q.executed.Load() < target {
		if !a.tryCombine(w, q) {
			sp.spin()
		}
	}
	sh := q.sh
	for {
		sh.lock.Acquire(w)
		f := sh.forward.Load()
		if f == nil {
			break
		}
		sh.lock.Release(w)
		if r.kind == opRange {
			// The shard's span coverage split under us: collect across
			// the live descendants instead of hopping (a range belongs
			// to the whole subtree, not one child).
			a.execRangeMulti(w, []*shard{f.kids[0], f.kids[1]}, r)
			q.noteTake(w)
			q.direct.Add(1)
			q.combined.Add(1)
			a.finish(r)
			return
		}
		sh = f.child(hashOf(r.key))
	}
	lq := sh.pipe.Load()
	lq.noteTake(w)
	lq.direct.Add(1)
	a.exec(w, sh, r)
	lq.combined.Add(1)
	var pend []*request
	a.drain(w, lq, &pend)
	sh.lock.Release(w)
	a.finishOrDefer(r, &pend)
	a.st.completePending(pend)
}

// await drives the waiting side of one enqueued request: spin, attempt
// combiner election at the class's cadence, park when patience runs
// out. Parks are timed, so even a worst-case interleaving (combiner
// released just before we parked, nobody else awake) only costs one
// park slice, not liveness.
func (a *AsyncStore) await(w *core.Worker, q *pipeShard, r *request) {
	big := w.Class() == core.Big
	elect, parkAfter := littleElect, littleParkAfter
	if big {
		elect, parkAfter = bigElect, bigParkAfter
	}
	slice := minParkSlice
	var s pipeSpinner
	for pass := 0; ; pass++ {
		if r.isDone() {
			return
		}
		// Both classes sit out one cadence before their first try —
		// a request enqueued while a combiner is active is usually
		// drained within a few passes, and electing before that just
		// buys a singleton batch. Bigs re-try every few passes
		// (strong cores combine); littles wait out a much longer
		// cadence, giving any big-core waiter the win before serving
		// themselves.
		if pass%elect == elect-1 {
			if a.tryCombine(w, q) && r.isDone() {
				return
			}
		}
		if pass >= parkAfter {
			if r.parkWait(slice) {
				return
			}
			if slice < maxParkSlice {
				slice *= 2
			}
			continue
		}
		s.spin()
	}
}

// submit enqueues r on q (or executes it directly when the ring is
// full) without waiting for completion — except onto a ring whose
// shard split under us: then submit drives the retired ring dry
// before returning, so r (and everything queued before it) has
// executed and no later op of this worker can overtake it via the
// children's fresh rings. The check is a post-publish re-read of the
// forward pointer: if it reads nil here, the enqueue is ordered
// before the split's own final drain (seq-cst), which will execute r;
// if it reads non-nil, this worker drains. Either way program order
// per worker survives resharding — the property PutAsync's FIFO
// contract leans on. After the drive loop r may already be recycled
// (fire-and-forget requests are freed by whoever executes them), so
// r is not touched again.
func (a *AsyncStore) submit(w *core.Worker, q *pipeShard, r *request) {
	if !q.ring.enqueue(r) {
		a.execDirect(w, q, r)
		return
	}
	q.noteDepth()
	if q.sh.forward.Load() == nil {
		return
	}
	var s pipeSpinner
	for !q.ring.Empty() || q.executed.Load() < q.ring.headPos() {
		if !a.tryCombine(w, q) {
			s.spin()
		}
	}
}

// run submits r on q and waits for it.
func (a *AsyncStore) run(w *core.Worker, q *pipeShard, r *request) {
	a.submit(w, q, r)
	if !r.isDone() {
		a.await(w, q, r)
	}
}

// Get reads k through the pipeline on behalf of worker w.
func (a *AsyncStore) Get(w *core.Worker, k uint64) ([]byte, bool) {
	a.checkOpen()
	r := a.newReq(opGet)
	r.key = k
	a.run(w, a.pipeOf(k), r)
	v, ok := r.rval, r.rok
	a.putReq(r)
	return v, ok
}

// Put stores k=v through the pipeline; reports insert-vs-replace. As
// with Store.Put, v is retained by reference until the op executes.
// With durability on and a sync-wait class, the call returns only
// after the record is fsynced — riding whichever group commit the
// executing combiner's batch leads or joins. A log failure surfaces
// here as Store.Put's typed error: the executing combiner records it
// on the future (degrading the shard) and the owner reads it back.
func (a *AsyncStore) Put(w *core.Worker, k uint64, v []byte) (bool, error) {
	a.checkOpen()
	r := a.newReq(opPut)
	r.key, r.val = k, v
	r.syncWait = a.st.syncWaitFor(w)
	a.run(w, a.pipeOf(k), r)
	ok, err := r.rok, r.err
	a.putReq(r)
	return ok, err
}

// Delete removes k through the pipeline; reports presence. Sync
// policy and degraded-mode behaviour as in Put.
func (a *AsyncStore) Delete(w *core.Worker, k uint64) (bool, error) {
	a.checkOpen()
	r := a.newReq(opDelete)
	r.key = k
	r.syncWait = a.st.syncWaitFor(w)
	a.run(w, a.pipeOf(k), r)
	ok, err := r.rok, r.err
	a.putReq(r)
	return ok, err
}

// PutAsync stores k=v fire-and-forget: the request is submitted and
// the call returns without waiting for execution. The future recycles
// the moment a combiner executes it, so sustained writers pay zero
// wait and zero completion traffic; ordering with this worker's later
// ops on the same key is preserved in every path — the ring is FIFO,
// the ring-overflow fallback drives queued predecessors first, and a
// shard split drains its ring before the children become reachable —
// so a worker always reads its own async write. v is retained by
// reference until execution — do not reuse the buffer. Flush (or
// Close) is the write barrier: after it returns, every PutAsync
// submitted before it is applied.
func (a *AsyncStore) PutAsync(w *core.Worker, k uint64, v []byte) {
	a.checkOpen()
	r := a.newReq(opPut)
	r.ff = true
	r.key, r.val = k, v
	a.submit(w, a.pipeOf(k), r)
}

// DeleteAsync removes k fire-and-forget, with PutAsync's semantics.
func (a *AsyncStore) DeleteAsync(w *core.Worker, k uint64) {
	a.checkOpen()
	r := a.newReq(opDelete)
	r.ff = true
	r.key = k
	a.submit(w, a.pipeOf(k), r)
}

// MultiGet reads all keys through the pipeline: every request is
// enqueued up front (one per key, fanned out across the shard rings so
// combiners on different shards work in parallel), then awaited.
// vals[i] and ok[i] correspond to keys[i].
func (a *AsyncStore) MultiGet(w *core.Worker, keys []uint64) (vals [][]byte, ok []bool) {
	a.checkOpen()
	vals = make([][]byte, len(keys))
	ok = make([]bool, len(keys))
	reqs := make([]*request, len(keys))
	qs := make([]*pipeShard, len(keys))
	for i, k := range keys {
		r := a.newReq(opGet)
		r.key = k
		reqs[i] = r
		qs[i] = a.pipeOf(k)
		a.submit(w, qs[i], r)
	}
	for i, r := range reqs {
		if !r.isDone() {
			a.await(w, qs[i], r)
		}
		vals[i], ok[i] = r.rval, r.rok
		a.putReq(r)
	}
	return vals, ok
}

// MultiPut writes all pairs through the pipeline (submit all, then
// await all); returns the number of newly inserted keys. Unlike
// Store.MultiPut, duplicate keys within the batch may execute in any
// order relative to each other — the pipeline preserves per-ring FIFO,
// which is per-shard arrival order, not batch order.
func (a *AsyncStore) MultiPut(w *core.Worker, kvs []Pair) (int, error) {
	a.checkOpen()
	reqs := make([]*request, len(kvs))
	qs := make([]*pipeShard, len(kvs))
	sw := a.st.syncWaitFor(w)
	for i, kv := range kvs {
		r := a.newReq(opPut)
		r.key, r.val = kv.Key, kv.Value
		r.syncWait = sw
		reqs[i] = r
		qs[i] = a.pipeOf(kv.Key)
		a.submit(w, qs[i], r)
	}
	inserted := 0
	var firstErr error
	for i, r := range reqs {
		if !r.isDone() {
			a.await(w, qs[i], r)
		}
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
		} else if r.rok {
			inserted++
		}
		a.putReq(r)
	}
	return inserted, firstErr
}

// collectRanges pushes one opRange request per live shard (each
// carrying the whole span set), awaits them all, and merges the
// per-shard slices per request. out[i] is reqs[i]'s result in
// ascending key order. The view matches Store.MultiRange: per-shard
// consistent, all spans seeing each shard at the same instant. A shard
// that splits mid-flight serves its request from the live children
// (see execForwarded), so the union still covers the key space exactly
// once.
func (a *AsyncStore) collectRanges(w *core.Worker, reqs []RangeReq) [][]Pair {
	m := a.st.smap.Load()
	rs := make([]*request, len(m.shards))
	qs := make([]*pipeShard, len(m.shards))
	for si, sh := range m.shards {
		r := a.newReq(opRange)
		r.rng = reqs
		r.parts = make([][]Pair, len(reqs))
		rs[si] = r
		qs[si] = sh.pipe.Load()
		a.submit(w, qs[si], r)
	}
	parts := make([][][]Pair, len(reqs)) // parts[request][shard]
	for ri := range parts {
		parts[ri] = make([][]Pair, len(rs))
	}
	for si, r := range rs {
		if !r.isDone() {
			a.await(w, qs[si], r)
		}
		for ri := range reqs {
			parts[ri][si] = r.parts[ri]
		}
		a.putReq(r)
	}
	out := make([][]Pair, len(reqs))
	for ri := range reqs {
		out[ri] = mergeKV(parts[ri])
	}
	return out
}

// Range calls fn for every key in [lo, hi] in ascending key order.
// Collection runs through the pipeline (one combiner-executed request
// per shard, so shards are collected in parallel when combiners are
// active); fn runs in the CALLER, strictly after every shard lock has
// been released — a combiner never executes user callbacks.
func (a *AsyncStore) Range(w *core.Worker, lo, hi uint64, fn func(k uint64, v []byte) bool) {
	a.checkOpen()
	res := a.collectRanges(w, []RangeReq{{Lo: lo, Hi: hi}})
	for _, kv := range res[0] {
		if !fn(kv.Key, kv.Value) {
			return
		}
	}
}

// MultiRange executes all range requests through the pipeline; out[i]
// is request i's result in ascending key order.
func (a *AsyncStore) MultiRange(w *core.Worker, reqs []RangeReq) [][]Pair {
	a.checkOpen()
	if len(reqs) == 0 {
		return make([][]Pair, 0)
	}
	return a.collectRanges(w, reqs)
}

// Flush blocks until every request enqueued before the call has
// executed, combining on the caller's worker where it can. This is the
// PutAsync/DeleteAsync write barrier. Concurrent enqueuers may extend
// the drain (their requests slot in behind the cut-off), but the
// pre-Flush prefix is guaranteed done on return — rings retired by
// splits included, since the walk covers every ring ever attached.
// With durability on it is a durability barrier too, and the place
// fire-and-forget write failures surface: a failed sync degrades the
// shard and returns the typed error.
func (a *AsyncStore) Flush(w *core.Worker) error {
	for _, q := range a.pipes() {
		target := q.ring.tailPos()
		var s pipeSpinner
		// Wait on the executed cursor, not the ring head: a request a
		// concurrent combiner has dequeued but not yet run is not
		// flushed.
		for q.executed.Load() < target {
			if !a.tryCombine(w, q) {
				s.spin()
			}
		}
	}
	// One group commit per shard log covers every write applied above.
	return a.st.syncLogs()
}

// Close flushes the rings and marks the pipeline closed: subsequent
// pipeline calls panic. Callers must have quiesced (a submitter racing
// Close keeps its own liveness — owners always self-serve — but its op
// may execute after Close returns). The underlying Store stays usable,
// resharding included (splits after Close attach rings that simply
// stay empty).
func (a *AsyncStore) Close(w *core.Worker) {
	if a.closed.Swap(true) {
		return
	}
	for {
		qs := a.pipes()
		for _, q := range qs {
			var s pipeSpinner
			for !q.ring.Empty() || q.executed.Load() < q.ring.headPos() {
				if !a.tryCombine(w, q) {
					s.spin()
				}
			}
		}
		// A split during the drain may have attached fresh rings;
		// sweep again until the set is stable.
		if len(a.pipes()) == len(qs) {
			break
		}
	}
	// Drained writes are applied but possibly only buffered in the
	// logs; sync them so Close is a durability point. The logs stay
	// open — the Store owns their lifecycle (Store.Close).
	a.st.syncLogs()
}

// CombineStats snapshots every ring's combining counters in attach
// order: the seed shards first, then split children as they were
// created (rings retired by splits keep their history here).
func (a *AsyncStore) CombineStats() []CombineStats {
	qs := a.pipes()
	out := make([]CombineStats, len(qs))
	for i, q := range qs {
		out[i] = q.stats()
	}
	return out
}

// AggregateCombineStats sums CombineStats across shards (DepthHW and
// MaxBatchEff take the max).
func (a *AsyncStore) AggregateCombineStats() CombineStats {
	var agg CombineStats
	for _, c := range a.CombineStats() {
		agg.LockTakes += c.LockTakes
		agg.Combined += c.Combined
		agg.Direct += c.Direct
		agg.Handoffs += c.Handoffs
		if c.DepthHW > agg.DepthHW {
			agg.DepthHW = c.DepthHW
		}
		if c.MaxBatchEff > agg.MaxBatchEff {
			agg.MaxBatchEff = c.MaxBatchEff
		}
		agg.BigTakes += c.BigTakes
		agg.LittleTakes += c.LittleTakes
	}
	return agg
}

// String summarises the pipeline layout.
func (a *AsyncStore) String() string {
	batch := "adaptive"
	if a.fixed > 0 {
		batch = fmt.Sprint(a.fixed)
	}
	return fmt.Sprintf("shardedkv.AsyncStore{rings: %d, maxBatch: %s, ringSize: %d}",
		len(a.pipes()), batch, a.ringSize)
}
