package shardedkv

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// This file implements the asynchronous combining front end over
// Store: a flat-combining request pipeline in the spirit of Hendler,
// Incze, Shavit and Tzafrir (the paper's reference [47]), specialised
// for the asymmetric-core setting of the source paper.
//
// Every shard gets a lock-free MPSC request ring. Callers build a
// request (Get/Put/Delete/Range plus a future), enqueue it, and wait
// for completion — spinning or parking according to their core class.
// Whoever wins the shard lock's TryAcquire becomes the combiner and
// drains the ring: up to MaxBatch queued operations execute against
// the engine under ONE Acquire/Release, completing futures as they
// go. Once a weak core has paid for the lock it amortises the cost
// over the whole queue instead of forcing a handoff per op — the
// combining extension of the paper's handoff-policy argument, and a
// direct application of Dice & Kogan's concurrency-restriction point:
// the hot shard's lock admits one thread, everyone else delegates.
//
// The asymmetry-aware twist is combiner election bias: big-class
// workers attempt election on every waiting pass while little-class
// workers hold back (and eventually park), so under mixed traffic the
// strong cores do the combining and the weak cores merely enqueue.
// Since the critical-section cost is paid by the EXECUTING worker, an
// op a little core enqueued runs at big-core speed when a big core
// combines it — on real AMP hardware that is the whole win; under the
// CSPad emulation the pad is keyed to the combiner's class for the
// same reason. Election bias is a preference, not a dependency:
// little workers still elect (and always serve themselves eventually),
// so the pipeline is live with no big cores at all.

// opKind is a pipeline request type.
type opKind uint8

const (
	opGet opKind = iota
	opPut
	opDelete
	opRange
)

// Future states. A request starts pending, is flipped to done by
// exactly one completer, and passes through parked only while its
// owner blocks on the wake channel.
const (
	futPending uint32 = iota
	futDone
	futParked
)

// request is one queued operation plus its future. Requests are
// pooled: the completer's complete() call is its last touch, after
// which the owner is free to read the results and recycle it.
type request struct {
	kind opKind
	key  uint64     // Get/Put/Delete key
	val  []byte     // Put value (retained by reference, as in Store.Put)
	rng  []RangeReq // opRange: spans to collect on one shard

	// Results, written by the executor before complete().
	rval  []byte // Get: stored value
	rok   bool   // Get: found / Put: inserted / Delete: was present
	parts [][]KV // opRange: parts[i] is rng[i]'s slice of this shard

	state atomic.Uint32
	wake  chan struct{} // buffered(1); one token per park/wake pair
	timer *time.Timer   // lazily built; parks are timed for liveness
}

// isDone reports completion.
func (r *request) isDone() bool { return r.state.Load() == futDone }

// complete publishes the result and wakes a parked owner. This is the
// completer's LAST touch of r: the owner may recycle it immediately
// after observing done.
func (r *request) complete() {
	if r.state.Swap(futDone) == futParked {
		r.wake <- struct{}{}
	}
}

// parkWait blocks the owner for at most d or until completion;
// reports whether the request completed. The CAS pair with complete()
// guarantees the wake channel is drained on every path, so pooled
// requests never carry a stale token.
func (r *request) parkWait(d time.Duration) bool {
	if !r.state.CompareAndSwap(futPending, futParked) {
		return true // completed before we could park
	}
	if r.timer == nil {
		r.timer = time.NewTimer(d)
	} else {
		r.timer.Reset(d)
	}
	select {
	case <-r.wake:
		r.timer.Stop()
		return true
	case <-r.timer.C:
		if !r.state.CompareAndSwap(futParked, futPending) {
			// complete() won the race and has sent (or is about to
			// send) the wake token; consume it before recycling.
			<-r.wake
			return true
		}
		return false
	}
}

// Combiner election cadence. Big-class waiters try on every bigElect'th
// pass starting immediately; little-class waiters only every
// littleElect'th pass, so a present big core wins the election race.
// Littles park after a short spin (they are the latency-tolerant
// class); bigs spin much longer before giving up the CPU.
const (
	bigElect        = 4
	littleElect     = 128
	littleParkAfter = 1 << 9
	bigParkAfter    = 1 << 14
	minParkSlice    = 50 * time.Microsecond
	maxParkSlice    = time.Millisecond
)

// pipeSpinner mirrors the locks package's internal spin helper: short
// busy loops with periodic scheduler yields, so waiters make progress
// even when GOMAXPROCS is smaller than the worker count.
type pipeSpinner struct{ n uint }

func (s *pipeSpinner) spin() {
	s.n++
	if s.n%64 == 0 {
		runtime.Gosched()
		return
	}
	for i := 0; i < 4; i++ {
		_ = i
	}
}

// AsyncConfig configures an AsyncStore.
type AsyncConfig struct {
	// MaxBatch bounds the operations a combiner executes under one
	// lock take; 0 means 32. Reaching the bound releases the lock (so
	// big-core FIFO entrants and sync-path users get their turn) and
	// re-elects if the ring is still non-empty.
	MaxBatch int
	// RingSize is the per-shard queue capacity, rounded up to a power
	// of two; 0 means 256. A full ring falls back to direct execution
	// under the shard lock, so enqueue never blocks on space.
	RingSize int
}

// pipeShard is one shard's pipeline state: the request ring plus
// combining counters.
type pipeShard struct {
	ring *reqRing
	// executed counts ring requests executed AND completed, i.e. the
	// ring position up to which results are real. It trails the ring's
	// head cursor, which advances at dequeue time: Flush/Close must
	// wait on executed, not head, or a request a concurrent combiner
	// has dequeued but not yet run would count as flushed.
	executed  atomic.Uint64
	lockTakes atomic.Uint64
	combined  atomic.Uint64
	direct    atomic.Uint64
	handoffs  atomic.Uint64
	depthHW   atomic.Uint64
	// takesBy counts lock takes per electing class, indexed by
	// core.Class (Big = 0, Little = 1).
	takesBy [2]atomic.Uint64
	last    atomic.Pointer[core.Worker]
	_       [64]byte
}

// noteTake records one async-path lock take by worker w.
func (q *pipeShard) noteTake(w *core.Worker) {
	q.lockTakes.Add(1)
	q.takesBy[w.Class()].Add(1)
	if prev := q.last.Swap(w); prev != nil && prev != w {
		q.handoffs.Add(1)
	}
}

// noteDepth folds the current queue depth into the high-water mark.
func (q *pipeShard) noteDepth() {
	d := q.ring.Len()
	for {
		hw := q.depthHW.Load()
		if d <= hw || q.depthHW.CompareAndSwap(hw, d) {
			return
		}
	}
}

// CombineStats is a snapshot of one shard's combining counters.
type CombineStats struct {
	// LockTakes counts shard-lock acquisitions made on the async path
	// (combiner elections won plus ring-full direct takes).
	LockTakes uint64
	// Combined counts operations executed on the async path. Combined
	// / LockTakes is the ops-per-lock-take the pipeline exists to
	// raise above 1.
	Combined uint64
	// Direct counts ring-full fallbacks (executed solo under a
	// blocking acquire; their ops and takes are included above).
	Direct uint64
	// Handoffs counts lock takes won by a different worker than the
	// previous combiner — combiner identity churn.
	Handoffs uint64
	// DepthHW is the queue-depth high-water mark observed at enqueue.
	DepthHW uint64
	// BigTakes and LittleTakes split LockTakes by the elector's class;
	// under mixed traffic the election bias should keep BigTakes well
	// ahead.
	BigTakes, LittleTakes uint64
}

// OpsPerLockTake returns Combined/LockTakes (0 when idle).
func (c CombineStats) OpsPerLockTake() float64 {
	if c.LockTakes == 0 {
		return 0
	}
	return float64(c.Combined) / float64(c.LockTakes)
}

// AsyncStore is the combining front end. It wraps a Store and shares
// its shard locks, so async and plain synchronous calls on the same
// Store interleave safely (sync holders simply delay the combiner).
// All methods are safe for concurrent use; as everywhere in this
// repository, each goroutine must own its *core.Worker.
type AsyncStore struct {
	st     *Store
	qs     []pipeShard
	max    int
	pool   sync.Pool
	closed atomic.Bool
}

// NewAsync builds a combining front end over st.
func NewAsync(st *Store, cfg AsyncConfig) *AsyncStore {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	a := &AsyncStore{st: st, max: cfg.MaxBatch, qs: make([]pipeShard, st.NumShards())}
	for i := range a.qs {
		a.qs[i].ring = newReqRing(cfg.RingSize)
	}
	a.pool.New = func() any { return &request{wake: make(chan struct{}, 1)} }
	return a
}

// Store returns the wrapped synchronous store (for Stats, Len, or
// direct calls).
func (a *AsyncStore) Store() *Store { return a.st }

func (a *AsyncStore) newReq(kind opKind) *request {
	r := a.pool.Get().(*request)
	r.kind = kind
	r.state.Store(futPending)
	return r
}

// putReq recycles r. Result slices escape to callers, so every
// reference is dropped here.
func (a *AsyncStore) putReq(r *request) {
	r.val, r.rval, r.rng, r.parts = nil, nil, nil, nil
	r.rok = false
	a.pool.Put(r)
}

func (a *AsyncStore) checkOpen() {
	if a.closed.Load() {
		panic("shardedkv: AsyncStore used after Close")
	}
}

// exec runs one request against the shard's engine; the caller holds
// the shard lock. The CSPad and the store's per-shard counters apply
// exactly as on the synchronous path, with the pad keyed to the
// EXECUTING worker's class: combining by a big core makes a little
// core's op cheap, which is the point.
func (a *AsyncStore) exec(w *core.Worker, sh *shard, r *request) {
	switch r.kind {
	case opGet:
		r.rval, r.rok = sh.eng.Get(r.key)
		a.st.pad(w)
		sh.gets.Add(1)
	case opPut:
		r.rok = sh.eng.Put(r.key, r.val)
		a.st.pad(w)
		sh.puts.Add(1)
	case opDelete:
		r.rok = sh.eng.Delete(r.key)
		a.st.pad(w)
		sh.deletes.Add(1)
	case opRange:
		// Collect under the lock, complete the future, and let the
		// OWNER run its callback after release — a combiner must never
		// execute user code while it holds the shard lock (the same
		// collect-then-emit contract as Store.Range).
		if br, ok := sh.eng.(batchRanger); ok && len(r.rng) > 1 {
			br.BatchRange(r.rng, func(ri int, k uint64, v []byte) {
				r.parts[ri] = append(r.parts[ri], KV{Key: k, Value: v})
			})
			a.st.pad(w)
		} else {
			for i, rr := range r.rng {
				sh.eng.Range(rr.Lo, rr.Hi, func(k uint64, v []byte) bool {
					r.parts[i] = append(r.parts[i], KV{Key: k, Value: v})
					return true
				})
				a.st.pad(w)
			}
		}
		sh.scans.Add(uint64(len(r.rng)))
	}
}

// drain executes up to MaxBatch queued requests; the caller holds the
// shard lock. Returns the number executed.
func (a *AsyncStore) drain(w *core.Worker, si int) int {
	sh := &a.st.shards[si]
	q := &a.qs[si]
	n := 0
	for n < a.max {
		r := q.ring.dequeue()
		if r == nil {
			break
		}
		a.exec(w, sh, r)
		r.complete()
		q.executed.Add(1)
		n++
	}
	if n > 0 {
		q.combined.Add(uint64(n))
	}
	return n
}

// tryCombine runs ONE combiner election on shard si; a win drains at
// most MaxBatch queued ops under a single lock take. Reports whether
// it actually drained work — callers spin-wait on false, which also
// covers the won-but-empty case (a producer stalled between its ring
// claim and its publish). A failed TryAcquire means whoever holds the
// lock is either a combiner (and is draining) or a sync-path user of
// the shared lock (and will release soon) — the caller keeps waiting
// on its own future either way. Bounding each call to one take keeps
// a busy shard from turning its current combiner into a permanent
// server: between batches the lock is released, FIFO entrants and
// sync-path users get their turn, and the ex-combiner re-checks its
// own future before volunteering again.
func (a *AsyncStore) tryCombine(w *core.Worker, si int) bool {
	sh := &a.st.shards[si]
	q := &a.qs[si]
	if q.ring.Empty() {
		return false
	}
	if !sh.lock.TryAcquire(w) {
		return false
	}
	// Count the take only when it drains something: empty takes must
	// not dilute the ops-per-lock-take metric.
	n := a.drain(w, si)
	if n > 0 {
		q.noteTake(w)
	}
	sh.lock.Release(w)
	return n > 0
}

// execDirect is the ring-full fallback: execute r solo under a
// blocking acquire, then drain whatever is queued — the ring was full
// a moment ago, so there is combining work to amortise the take over.
func (a *AsyncStore) execDirect(w *core.Worker, si int, r *request) {
	sh := &a.st.shards[si]
	q := &a.qs[si]
	sh.lock.Acquire(w)
	q.noteTake(w)
	q.direct.Add(1)
	a.exec(w, sh, r)
	q.combined.Add(1)
	a.drain(w, si)
	sh.lock.Release(w)
	r.complete()
}

// await drives the waiting side of one enqueued request: spin, attempt
// combiner election at the class's cadence, park when patience runs
// out. Parks are timed, so even a worst-case interleaving (combiner
// released just before we parked, nobody else awake) only costs one
// park slice, not liveness.
func (a *AsyncStore) await(w *core.Worker, si int, r *request) {
	big := w.Class() == core.Big
	elect, parkAfter := littleElect, littleParkAfter
	if big {
		elect, parkAfter = bigElect, bigParkAfter
	}
	slice := minParkSlice
	var s pipeSpinner
	for pass := 0; ; pass++ {
		if r.isDone() {
			return
		}
		// Both classes sit out one cadence before their first try —
		// a request enqueued while a combiner is active is usually
		// drained within a few passes, and electing before that just
		// buys a singleton batch. Bigs re-try every few passes
		// (strong cores combine); littles wait out a much longer
		// cadence, giving any big-core waiter the win before serving
		// themselves.
		if pass%elect == elect-1 {
			if a.tryCombine(w, si) && r.isDone() {
				return
			}
		}
		if pass >= parkAfter {
			if r.parkWait(slice) {
				return
			}
			if slice < maxParkSlice {
				slice *= 2
			}
			continue
		}
		s.spin()
	}
}

// submit enqueues r on shard si (or executes it directly when the ring
// is full) without waiting for completion.
func (a *AsyncStore) submit(w *core.Worker, si int, r *request) {
	q := &a.qs[si]
	if !q.ring.enqueue(r) {
		a.execDirect(w, si, r)
		return
	}
	q.noteDepth()
}

// run submits r on shard si and waits for it.
func (a *AsyncStore) run(w *core.Worker, si int, r *request) {
	a.submit(w, si, r)
	if !r.isDone() {
		a.await(w, si, r)
	}
}

// Get reads k through the pipeline on behalf of worker w.
func (a *AsyncStore) Get(w *core.Worker, k uint64) ([]byte, bool) {
	a.checkOpen()
	r := a.newReq(opGet)
	r.key = k
	a.run(w, a.st.ShardOf(k), r)
	v, ok := r.rval, r.rok
	a.putReq(r)
	return v, ok
}

// Put stores k=v through the pipeline; reports insert-vs-replace. As
// with Store.Put, v is retained by reference until the op executes.
func (a *AsyncStore) Put(w *core.Worker, k uint64, v []byte) bool {
	a.checkOpen()
	r := a.newReq(opPut)
	r.key, r.val = k, v
	a.run(w, a.st.ShardOf(k), r)
	ok := r.rok
	a.putReq(r)
	return ok
}

// Delete removes k through the pipeline; reports presence.
func (a *AsyncStore) Delete(w *core.Worker, k uint64) bool {
	a.checkOpen()
	r := a.newReq(opDelete)
	r.key = k
	a.run(w, a.st.ShardOf(k), r)
	ok := r.rok
	a.putReq(r)
	return ok
}

// MultiGet reads all keys through the pipeline: every request is
// enqueued up front (one per key, fanned out across the shard rings so
// combiners on different shards work in parallel), then awaited.
// vals[i] and ok[i] correspond to keys[i].
func (a *AsyncStore) MultiGet(w *core.Worker, keys []uint64) (vals [][]byte, ok []bool) {
	a.checkOpen()
	vals = make([][]byte, len(keys))
	ok = make([]bool, len(keys))
	reqs := make([]*request, len(keys))
	for i, k := range keys {
		r := a.newReq(opGet)
		r.key = k
		reqs[i] = r
		a.submit(w, a.st.ShardOf(k), r)
	}
	for i, r := range reqs {
		if !r.isDone() {
			a.await(w, a.st.ShardOf(keys[i]), r)
		}
		vals[i], ok[i] = r.rval, r.rok
		a.putReq(r)
	}
	return vals, ok
}

// MultiPut writes all pairs through the pipeline (submit all, then
// await all); returns the number of newly inserted keys. Unlike
// Store.MultiPut, duplicate keys within the batch may execute in any
// order relative to each other — the pipeline preserves per-ring FIFO,
// which is per-shard arrival order, not batch order.
func (a *AsyncStore) MultiPut(w *core.Worker, kvs []KV) (inserted int) {
	a.checkOpen()
	reqs := make([]*request, len(kvs))
	for i, kv := range kvs {
		r := a.newReq(opPut)
		r.key, r.val = kv.Key, kv.Value
		reqs[i] = r
		a.submit(w, a.st.ShardOf(kv.Key), r)
	}
	for i, r := range reqs {
		if !r.isDone() {
			a.await(w, a.st.ShardOf(kvs[i].Key), r)
		}
		if r.rok {
			inserted++
		}
		a.putReq(r)
	}
	return inserted
}

// collectRanges pushes one opRange request per shard (each carrying
// the whole span set), awaits them all, and merges the per-shard
// slices per request. out[i] is reqs[i]'s result in ascending key
// order. The view matches Store.MultiRange: per-shard consistent, all
// spans seeing each shard at the same instant.
func (a *AsyncStore) collectRanges(w *core.Worker, reqs []RangeReq) [][]KV {
	nsh := len(a.qs)
	rs := make([]*request, nsh)
	for si := 0; si < nsh; si++ {
		r := a.newReq(opRange)
		r.rng = reqs
		r.parts = make([][]KV, len(reqs))
		rs[si] = r
		a.submit(w, si, r)
	}
	parts := make([][][]KV, len(reqs)) // parts[request][shard]
	for ri := range parts {
		parts[ri] = make([][]KV, nsh)
	}
	for si, r := range rs {
		if !r.isDone() {
			a.await(w, si, r)
		}
		for ri := range reqs {
			parts[ri][si] = r.parts[ri]
		}
		a.putReq(r)
	}
	out := make([][]KV, len(reqs))
	for ri := range reqs {
		out[ri] = mergeKV(parts[ri])
	}
	return out
}

// Range calls fn for every key in [lo, hi] in ascending key order.
// Collection runs through the pipeline (one combiner-executed request
// per shard, so shards are collected in parallel when combiners are
// active); fn runs in the CALLER, strictly after every shard lock has
// been released — a combiner never executes user callbacks.
func (a *AsyncStore) Range(w *core.Worker, lo, hi uint64, fn func(k uint64, v []byte) bool) {
	a.checkOpen()
	res := a.collectRanges(w, []RangeReq{{Lo: lo, Hi: hi}})
	for _, kv := range res[0] {
		if !fn(kv.Key, kv.Value) {
			return
		}
	}
}

// MultiRange executes all range requests through the pipeline; out[i]
// is request i's result in ascending key order.
func (a *AsyncStore) MultiRange(w *core.Worker, reqs []RangeReq) [][]KV {
	a.checkOpen()
	if len(reqs) == 0 {
		return make([][]KV, 0)
	}
	return a.collectRanges(w, reqs)
}

// Flush blocks until every request enqueued before the call has
// executed, combining on the caller's worker where it can. Concurrent
// enqueuers may extend the drain (their requests slot in behind the
// cut-off), but the pre-Flush prefix is guaranteed done on return.
func (a *AsyncStore) Flush(w *core.Worker) {
	for si := range a.qs {
		q := &a.qs[si]
		target := q.ring.tailPos()
		var s pipeSpinner
		// Wait on the executed cursor, not the ring head: a request a
		// concurrent combiner has dequeued but not yet run is not
		// flushed.
		for q.executed.Load() < target {
			if !a.tryCombine(w, si) {
				s.spin()
			}
		}
	}
}

// Close flushes the rings and marks the pipeline closed: subsequent
// pipeline calls panic. Callers must have quiesced (a submitter racing
// Close keeps its own liveness — owners always self-serve — but its op
// may execute after Close returns). The underlying Store stays usable.
func (a *AsyncStore) Close(w *core.Worker) {
	if a.closed.Swap(true) {
		return
	}
	for si := range a.qs {
		q := &a.qs[si]
		var s pipeSpinner
		for !q.ring.Empty() || q.executed.Load() < q.ring.headPos() {
			if !a.tryCombine(w, si) {
				s.spin()
			}
		}
	}
}

// CombineStats snapshots every shard's combining counters.
func (a *AsyncStore) CombineStats() []CombineStats {
	out := make([]CombineStats, len(a.qs))
	for i := range a.qs {
		q := &a.qs[i]
		out[i] = CombineStats{
			LockTakes:   q.lockTakes.Load(),
			Combined:    q.combined.Load(),
			Direct:      q.direct.Load(),
			Handoffs:    q.handoffs.Load(),
			DepthHW:     q.depthHW.Load(),
			BigTakes:    q.takesBy[core.Big].Load(),
			LittleTakes: q.takesBy[core.Little].Load(),
		}
	}
	return out
}

// AggregateCombineStats sums CombineStats across shards (DepthHW takes
// the max).
func (a *AsyncStore) AggregateCombineStats() CombineStats {
	var agg CombineStats
	for _, c := range a.CombineStats() {
		agg.LockTakes += c.LockTakes
		agg.Combined += c.Combined
		agg.Direct += c.Direct
		agg.Handoffs += c.Handoffs
		if c.DepthHW > agg.DepthHW {
			agg.DepthHW = c.DepthHW
		}
		agg.BigTakes += c.BigTakes
		agg.LittleTakes += c.LittleTakes
	}
	return agg
}

// String summarises the pipeline layout.
func (a *AsyncStore) String() string {
	return fmt.Sprintf("shardedkv.AsyncStore{shards: %d, maxBatch: %d, ring: %d}",
		len(a.qs), a.max, a.qs[0].ring.Cap())
}
